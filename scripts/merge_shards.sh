#!/usr/bin/env sh
# Merges bench shard chunks (figure sweeps, ablation_design,
# ablation_policy) into the final bench output.
#
# A sharded sweep splits the (point, instance, algorithm) work items of a
# bench across N independent processes (or machines):
#
#   build/bench/fig3_vary_n --instances=100 --shard=0/4 --chunk=fig3.0.chunk
#   build/bench/fig3_vary_n --instances=100 --shard=1/4 --chunk=fig3.1.chunk
#   build/bench/fig3_vary_n --instances=100 --shard=2/4 --chunk=fig3.2.chunk
#   build/bench/fig3_vary_n --instances=100 --shard=3/4 --chunk=fig3.3.chunk
#   scripts/merge_shards.sh fig3.*.chunk > fig3.txt
#
# The merged output is byte-identical to the unsharded run (same
# --instances/--months/--seed, any --jobs): chunks carry raw hexfloat
# samples, and the merge replays the bench's own deterministic reduction.
#
# Usage:
#   scripts/merge_shards.sh [--csv=PREFIX] chunk...
#   BUILD_DIR=other-build scripts/merge_shards.sh chunk...
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
BIN="$BUILD_DIR/bench/merge_shards"

if [ ! -x "$BIN" ]; then
  echo "building $BIN ..." >&2
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" -j --target merge_shards >/dev/null
fi

exec "$BIN" "$@"
