#!/usr/bin/env sh
# Runs the google-benchmark micro benches with JSON output to start (and
# extend) the repo's perf trajectory. The resulting BENCH_micro.json is
# checked in so successive PRs can diff hot-path timings.
#
# Usage:
#   scripts/bench_json.sh                 # full suite -> BENCH_micro.json
#   scripts/bench_json.sh --quick        # hot-path subset (fast)
#   scripts/bench_json.sh --filter=REGEX # custom --benchmark_filter
#   OUT=path.json scripts/bench_json.sh  # alternate output file
set -eu

cd "$(dirname "$0")/.."
OUT="${OUT:-BENCH_micro.json}"
BIN=build/bench/micro_algorithms

if [ ! -x "$BIN" ]; then
  echo "building $BIN ..." >&2
  cmake -B build -S . >/dev/null
  cmake --build build -j --target micro_algorithms >/dev/null
fi

FILTER=""
for arg in "$@"; do
  case "$arg" in
    --quick)
      # The distance-cache, simd-kernel, parallel-sweep, planner-hot-path
      # and simulator-loop trajectory benches.
      FILTER="--benchmark_filter=BM_(TwoOpt|TwoOptCached|OrOpt|OrOptCached|DistanceCacheBuild|SimdDistanceMatrix|SimdArgminScan|ParallelSweep|ApproPlan|ApproPlanJobs|ApproInsertion|SplitImprove|MinMaxKTours|Simulate)" ;;
    --filter=*)
      FILTER="--benchmark_filter=${arg#--filter=}" ;;
    *)
      echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# benchmark_repetitions=1 keeps the file append-diffable run to run; raise
# it locally when chasing noise.
"$BIN" $FILTER \
  --benchmark_format=json \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json >/dev/null
echo "wrote $OUT" >&2
