#!/usr/bin/env bash
# One-shot reproduction: build, test, run every figure bench and ablation,
# and collect outputs under ./reproduction/.
#
#   scripts/reproduce.sh [--paper]     # --paper uses 100 instances/point
set -euo pipefail
cd "$(dirname "$0")/.."

INSTANCES=10
if [[ "${1:-}" == "--paper" ]]; then
  INSTANCES=100
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

OUT=reproduction
mkdir -p "$OUT"

echo "== Fig. 3 (vary n, K=2) =="
./build/bench/fig3_vary_n   --instances="$INSTANCES" --csv="$OUT/fig3" | tee "$OUT/fig3.txt"
echo "== Fig. 4 (vary b_max, n=1000) =="
./build/bench/fig4_vary_bmax --instances="$INSTANCES" --csv="$OUT/fig4" | tee "$OUT/fig4.txt"
echo "== Fig. 5 (vary K, n=1000) =="
./build/bench/fig5_vary_k   --instances="$INSTANCES" --csv="$OUT/fig5" | tee "$OUT/fig5.txt"
echo "== design ablation =="
./build/bench/ablation_design | tee "$OUT/ablation_design.txt"
echo "== dispatch-policy ablation =="
./build/bench/ablation_policy | tee "$OUT/ablation_policy.txt"
echo "== empirical approximation ratio =="
./build/bench/approx_ratio    | tee "$OUT/approx_ratio.txt"
echo "== micro benches =="
./build/bench/micro_algorithms --benchmark_min_time=0.05 | tee "$OUT/micro.txt"

echo
echo "All outputs collected under $OUT/."
