#!/usr/bin/env sh
# Byte-identity check for the sharded bench path: runs each shardable
# bench once unsharded and once as three --shard=i/3 slices merged with
# merge_shards, and `cmp`s the outputs. Any drift — a reduction-order
# change, a lossy chunk encoding, a mapping bug — fails the script.
#
# Small grids on purpose: this validates the sharding machinery, not the
# figures. Takes well under a minute on a laptop build.
#
# Usage:
#   scripts/check_shard_merge.sh
#   BUILD_DIR=other-build scripts/check_shard_merge.sh
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
BENCH="$BUILD_DIR/bench"

for bin in fig3_vary_n ablation_design ablation_policy merge_shards; do
  if [ ! -x "$BENCH/$bin" ]; then
    echo "building $bin ..." >&2
    cmake -B "$BUILD_DIR" -S . >/dev/null
    cmake --build "$BUILD_DIR" -j --target "$bin" >/dev/null
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# check <name> <bench binary> [bench args...]: unsharded vs 3-way merged.
check() {
  name="$1"; bin="$2"; shift 2
  "$BENCH/$bin" "$@" > "$TMP/$name.full.txt"
  for i in 0 1 2; do
    "$BENCH/$bin" "$@" --shard="$i/3" --chunk="$TMP/$name.$i.chunk" \
      > /dev/null
  done
  "$BENCH/merge_shards" "$TMP/$name.0.chunk" "$TMP/$name.1.chunk" \
    "$TMP/$name.2.chunk" > "$TMP/$name.merged.txt"
  if ! cmp -s "$TMP/$name.full.txt" "$TMP/$name.merged.txt"; then
    echo "FAIL: $name sharded+merged output differs from unsharded" >&2
    diff "$TMP/$name.full.txt" "$TMP/$name.merged.txt" >&2 || true
    exit 1
  fi
  echo "OK: $name"
}

check figure          fig3_vary_n     --instances=2 --months=0.25
check ablation_design ablation_design --n=120 --chargers=2 --rounds=3
check ablation_policy ablation_policy --n=100 --chargers=2 --instances=2 \
                                      --months=1

echo "shard merge byte-identity: all checks passed"
