#!/usr/bin/env sh
# Validates the tracing layer end-to-end:
#
#   1. Runs a tiny fig3 sweep with --trace-out and checks the emitted
#      JSON against the "mcharge.trace.v1" schema (python3 when
#      available, a grep fallback otherwise), including presence and
#      non-zero counts of the load-bearing spans (planner phases,
#      executor, simulator round loop, matching engine).
#   2. Runs the BM_ObsOverhead micro-bench pair and asserts the
#      tracing-enabled run stays within a noise margin of the disabled
#      run (the layer's contract is < 1% overhead on instrumented
#      workloads; the CI gate allows 25% to absorb shared-runner noise).
#   3. Regression-diffs traced phase timings against the checked-in
#      BENCH_micro.json: BM_ApproPlan/200 is re-run with
#      MCHARGE_TRACE_OUT set, so its appro.plan span times the exact
#      workload the baseline bench measured, and the per-call seconds
#      must agree with the baseline within loose bounds ([1/20x, 20x]).
#      This is a tripwire for spans measuring the wrong scope (e.g.
#      timing one phase but attributing the whole plan), not a perf gate.
#
# Usage:
#   scripts/check_trace.sh
#   BUILD_DIR=other-build scripts/check_trace.sh
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

for bin in bench/fig3_vary_n bench/micro_algorithms; do
  if [ ! -x "$BUILD_DIR/$bin" ]; then
    echo "building $bin ..." >&2
    cmake -B "$BUILD_DIR" -S . >/dev/null
    cmake --build "$BUILD_DIR" -j --target "$(basename "$bin")" >/dev/null
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# ---- 1. schema validation on a real traced run ------------------------
"$BUILD_DIR/bench/fig3_vary_n" --nmin=200 --nmax=200 --instances=2 \
  --months=0.5 --trace-out="$TMP/trace.json" >/dev/null
[ -s "$TMP/trace.json" ] || { echo "FAIL: trace.json not written" >&2; exit 1; }

if command -v python3 >/dev/null 2>&1; then
  python3 - "$TMP/trace.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("schema") == "mcharge.trace.v1", doc.get("schema")
metrics = doc["metrics"]
assert isinstance(metrics, list) and metrics, "empty metrics"
by_name = {}
for m in metrics:
    assert set(m) >= {"name", "kind", "count"}, m
    assert m["kind"] in ("span", "counter", "gauge"), m
    if m["kind"] == "span":
        assert "total_s" in m and m["total_s"] >= 0.0, m
    by_name[m["name"]] = m
names = sorted(by_name)
assert names == [m["name"] for m in metrics], "metrics not sorted by name"
# blossom.* spans only fire when auto-dispatch picks the sparse engine,
# which depends on instance scale — so they are not required here.
for required in ("appro.plan", "appro.k_tours", "appro.insertion",
                 "exec.multinode", "sim.round", "sim.select_scan"):
    assert required in by_name, f"missing span: {required}"
    assert by_name[required]["count"] > 0, f"zero count: {required}"
print("trace schema: OK (%d metrics)" % len(metrics))
EOF
else
  # Grep fallback: schema tag plus the load-bearing span names.
  grep -q '"schema": "mcharge.trace.v1"' "$TMP/trace.json"
  for required in appro.plan appro.k_tours exec.multinode sim.round; do
    grep -q "\"$required\"" "$TMP/trace.json" || {
      echo "FAIL: missing span $required" >&2; exit 1; }
  done
  echo "trace schema: OK (grep fallback)"
fi

# ---- 2. enabled-vs-disabled overhead ---------------------------------
"$BUILD_DIR/bench/micro_algorithms" \
  --benchmark_filter='BM_ObsOverhead' \
  --benchmark_format=json \
  --benchmark_out="$TMP/overhead.json" \
  --benchmark_out_format=json >/dev/null

if command -v python3 >/dev/null 2>&1; then
  python3 - "$TMP/overhead.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
times = {b["name"]: b["real_time"] for b in doc["benchmarks"]}
off, on = times["BM_ObsOverhead/0"], times["BM_ObsOverhead/1"]
ratio = on / off
print("obs overhead: off=%.3fms on=%.3fms ratio=%.4f" %
      (off, on, ratio))
assert ratio < 1.25, f"tracing overhead out of bounds: {ratio:.4f}"
EOF
else
  echo "obs overhead: SKIPPED (python3 unavailable)"
fi

# ---- 3. phase-timing regression diff vs BENCH_micro.json -------------
if command -v python3 >/dev/null 2>&1 && [ -f BENCH_micro.json ]; then
  MCHARGE_TRACE_OUT="$TMP/trace_micro.json" \
    "$BUILD_DIR/bench/micro_algorithms" \
    --benchmark_filter='BM_ApproPlan/200$' \
    --benchmark_format=json \
    --benchmark_out="$TMP/approplan.json" \
    --benchmark_out_format=json >/dev/null
  python3 - "$TMP/trace_micro.json" BENCH_micro.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
with open(sys.argv[2]) as f:
    bench = json.load(f)
plan = next(m for m in trace["metrics"] if m["name"] == "appro.plan")
per_call_s = plan["total_s"] / plan["count"]
ref = [b for b in bench["benchmarks"] if b["name"] == "BM_ApproPlan/200"]
if not ref:
    print("phase regression: SKIPPED (no BM_ApproPlan/200 in baseline)")
    sys.exit(0)
unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[ref[0]["time_unit"]]
ref_s = ref[0]["real_time"] * unit
ratio = per_call_s / ref_s
print("appro.plan: traced=%.4fms baseline=%.4fms ratio=%.3f" %
      (per_call_s * 1e3, ref_s * 1e3, ratio))
assert 1.0 / 20.0 < ratio < 20.0, \
    f"appro.plan span drifted {ratio:.3f}x from BENCH_micro baseline"
EOF
else
  echo "phase regression: SKIPPED (python3 or BENCH_micro.json unavailable)"
fi

# ---- 4. sparse blossom warm-start regression gate --------------------
# BM_Blossom/1024/1 regressed once before (warm re-solves whose exit
# duals priced dirty forced an extra full solve round); this gate trips
# if the sparse engine drifts more than 1.35x from the checked-in
# baseline — roughly the 70 ms budget at 1024 — while staying loose
# enough to absorb shared-runner noise.
if command -v python3 >/dev/null 2>&1 && [ -f BENCH_micro.json ]; then
  "$BUILD_DIR/bench/micro_algorithms" \
    --benchmark_filter='BM_Blossom/1024/1$' \
    --benchmark_format=json \
    --benchmark_out="$TMP/blossom1024.json" \
    --benchmark_out_format=json >/dev/null
  python3 - "$TMP/blossom1024.json" BENCH_micro.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    run = json.load(f)
with open(sys.argv[2]) as f:
    bench = json.load(f)
cur = next(b for b in run["benchmarks"] if b["name"] == "BM_Blossom/1024/1")
ref = [b for b in bench["benchmarks"] if b["name"] == "BM_Blossom/1024/1"]
if not ref:
    print("blossom gate: SKIPPED (no BM_Blossom/1024/1 in baseline)")
    sys.exit(0)
unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
cur_s = cur["real_time"] * unit[cur["time_unit"]]
ref_s = ref[0]["real_time"] * unit[ref[0]["time_unit"]]
ratio = cur_s / ref_s
print("BM_Blossom/1024/1: run=%.1fms baseline=%.1fms ratio=%.3f" %
      (cur_s * 1e3, ref_s * 1e3, ratio))
assert ratio < 1.35, \
    f"sparse blossom at 1024 drifted {ratio:.3f}x from BENCH_micro baseline"
EOF
else
  echo "blossom gate: SKIPPED (python3 or BENCH_micro.json unavailable)"
fi

echo "trace checks: all passed"
