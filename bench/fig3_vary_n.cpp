// Reproduces Fig. 3 of the paper: the five algorithms as the network size
// n sweeps 200..1200 with K = 2 mobile chargers.
//   (a) average longest tour duration;  (b) average dead duration/sensor.
//
// Extra flags: --nmin=200 --nmax=1200 --nstep=200 --chargers=2
#include "figure_common.h"
#include "trace_common.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const bench::TraceOutput trace(flags);
  const auto settings = bench::SweepSettings::from_flags(flags);
  const auto n_min = static_cast<std::size_t>(flags.get_int("nmin", 200));
  const auto n_max = static_cast<std::size_t>(flags.get_int("nmax", 1200));
  const auto n_step = static_cast<std::size_t>(flags.get_int("nstep", 200));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 2));

  bench::FigureSweep sweep("Fig. 3", "n", settings);
  for (std::size_t n = n_min; n <= n_max; n += n_step) {
    std::fprintf(stderr, "fig3: n = %zu ...\n", n);
    model::NetworkConfig config;
    config.num_chargers = k;
    sweep.add_point(std::to_string(n), [&](Rng& rng) {
      return model::make_instance(config, n, rng, settings.layout);
    });
  }
  return sweep.finish();
}
