// Reproduces Fig. 3 of the paper: the five algorithms as the network size
// n sweeps 200..1200 with K = 2 mobile chargers.
//   (a) average longest tour duration;  (b) average dead duration/sensor.
//
// Extra flags: --nmin=200 --nmax=1200 --nstep=200 --chargers=2
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const auto settings = bench::SweepSettings::from_flags(flags);
  const auto n_min = static_cast<std::size_t>(flags.get_int("nmin", 200));
  const auto n_max = static_cast<std::size_t>(flags.get_int("nmax", 1200));
  const auto n_step = static_cast<std::size_t>(flags.get_int("nstep", 200));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 2));

  const auto algorithms = bench::paper_algorithms();
  std::vector<std::string> labels;
  std::vector<bench::PointResult> points;
  for (std::size_t n = n_min; n <= n_max; n += n_step) {
    std::fprintf(stderr, "fig3: n = %zu ...\n", n);
    model::NetworkConfig config;
    config.num_chargers = k;
    points.push_back(bench::run_point(
        settings, algorithms,
        [&](Rng& rng) {
          return model::make_instance(config, n, rng, settings.layout);
        }));
    labels.push_back(std::to_string(n));
  }
  bench::emit_figure("Fig. 3", "n", labels, algorithms, points, settings);
  return 0;
}
