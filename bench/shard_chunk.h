// Shard-chunk files for the figure benches.
//
// A figure sweep run with --shard=i/N computes only the (point, instance,
// algorithm) work items whose global index is congruent to i mod N and
// writes the raw per-item simulator outputs to a chunk file instead of
// printing tables. merge_shards reads the N chunks, replays the exact
// deterministic reduction the unsharded bench performs (instance-order
// RunningStats merges), and emits the figure — byte-identical to the
// unsharded stdout, because the per-item doubles round-trip exactly
// through the %a hexfloat encoding and the reduction code is shared.
//
// Format (text, line-based, tab after the keyword):
//   mcharge-chunk	1
//   figure	Fig. 3
//   knob	n
//   seed	1
//   instances	10
//   months	0x1.8p+3
//   shard	0/4
//   algo	Appro            (one line per algorithm, in order)
//   label	200              (one line per sweep point, in order)
//   item	p inst a tour dead violations   (tour/dead in %a)
//   end	42               (item count, as a truncation guard)
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace mcharge::bench {

struct ChunkItem {
  std::size_t point = 0;
  std::size_t inst = 0;
  std::size_t algo = 0;
  double tour = 0.0;
  double dead = 0.0;
  std::size_t violations = 0;
};

struct ChunkFile {
  std::string figure;
  std::string knob;
  std::uint64_t seed = 0;
  std::size_t instances = 0;
  double months = 0.0;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::vector<std::string> algo_names;
  std::vector<std::string> labels;
  std::vector<ChunkItem> items;
};

inline bool write_chunk(const std::string& path, const ChunkFile& chunk) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "mcharge-chunk\t1\n");
  std::fprintf(f, "figure\t%s\n", chunk.figure.c_str());
  std::fprintf(f, "knob\t%s\n", chunk.knob.c_str());
  std::fprintf(f, "seed\t%llu\n",
               static_cast<unsigned long long>(chunk.seed));
  std::fprintf(f, "instances\t%zu\n", chunk.instances);
  std::fprintf(f, "months\t%a\n", chunk.months);
  std::fprintf(f, "shard\t%zu/%zu\n", chunk.shard_index, chunk.shard_count);
  for (const auto& name : chunk.algo_names) {
    std::fprintf(f, "algo\t%s\n", name.c_str());
  }
  for (const auto& label : chunk.labels) {
    std::fprintf(f, "label\t%s\n", label.c_str());
  }
  for (const ChunkItem& it : chunk.items) {
    std::fprintf(f, "item\t%zu %zu %zu %a %a %zu\n", it.point, it.inst,
                 it.algo, it.tour, it.dead, it.violations);
  }
  std::fprintf(f, "end\t%zu\n", chunk.items.size());
  return std::fclose(f) == 0;
}

/// Parses a chunk file. On failure returns false and sets *error.
inline bool read_chunk(const std::string& path, ChunkFile* chunk,
                       std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) {
    *error = path + ": cannot open";
    return false;
  }
  *chunk = ChunkFile{};
  bool saw_magic = false, saw_end = false;
  char line[512];
  auto fail = [&](const std::string& why) {
    *error = path + ": " + why;
    std::fclose(f);
    return false;
  };
  while (std::fgets(line, sizeof line, f)) {
    const std::size_t len = std::strlen(line);
    if (len > 0 && line[len - 1] == '\n') line[len - 1] = '\0';
    char* tab = std::strchr(line, '\t');
    if (!tab) return fail(std::string("malformed line: ") + line);
    *tab = '\0';
    const std::string key = line;
    const char* value = tab + 1;
    if (key == "mcharge-chunk") {
      if (std::string(value) != "1") return fail("unsupported version");
      saw_magic = true;
    } else if (!saw_magic) {
      return fail("missing mcharge-chunk header");
    } else if (key == "figure") {
      chunk->figure = value;
    } else if (key == "knob") {
      chunk->knob = value;
    } else if (key == "seed") {
      unsigned long long seed = 0;
      if (std::sscanf(value, "%llu", &seed) != 1) return fail("bad seed");
      chunk->seed = seed;
    } else if (key == "instances") {
      if (std::sscanf(value, "%zu", &chunk->instances) != 1) {
        return fail("bad instances");
      }
    } else if (key == "months") {
      if (std::sscanf(value, "%la", &chunk->months) != 1) {
        return fail("bad months");
      }
    } else if (key == "shard") {
      if (std::sscanf(value, "%zu/%zu", &chunk->shard_index,
                      &chunk->shard_count) != 2) {
        return fail("bad shard");
      }
    } else if (key == "algo") {
      chunk->algo_names.emplace_back(value);
    } else if (key == "label") {
      chunk->labels.emplace_back(value);
    } else if (key == "item") {
      ChunkItem it;
      if (std::sscanf(value, "%zu %zu %zu %la %la %zu", &it.point, &it.inst,
                      &it.algo, &it.tour, &it.dead, &it.violations) != 6) {
        return fail("bad item line");
      }
      chunk->items.push_back(it);
    } else if (key == "end") {
      std::size_t count = 0;
      if (std::sscanf(value, "%zu", &count) != 1 ||
          count != chunk->items.size()) {
        return fail("item count mismatch (truncated file?)");
      }
      saw_end = true;
    } else {
      return fail("unknown key: " + key);
    }
  }
  std::fclose(f);
  if (!saw_end) return fail("missing end marker (truncated file?)");
  return true;
}

}  // namespace mcharge::bench
