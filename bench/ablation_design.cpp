// Ablation bench for algorithm Appro's design choices (DESIGN.md section 4):
//  * tour construction inside the K-optimal closed tour substrate
//    (nearest-neighbor / greedy-edge / double-tree / Christofides);
//  * 2-opt / Or-opt improvement on vs off;
//  * MIS scan order for S_I and V'_H (index / min-degree / priority-by-tau).
//
// Measures the executed longest charge delay on fresh charging rounds
// (not the simulator loop, which would mix in request-dynamics noise).
//
// Flags: --n=1000 --chargers=2 --rounds=10 --seed=1
#include <cstdio>
#include <iostream>

#include "baselines/greedy_cover.h"
#include "core/appro.h"
#include "model/charging_problem.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mcharge;

model::ChargingProblem random_round(std::size_t n, std::size_t k, Rng& rng) {
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  return model::ChargingProblem(std::move(pts), std::move(deficits),
                                {50.0, 50.0}, 2.7, 1.0, k);
}

struct Variant {
  std::string name;
  core::ApproOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 1000));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 2));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 10));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::vector<Variant> variants;
  {
    Variant v{"default (christofides+improve)", {}};
    variants.push_back(v);
  }
  for (auto [label, builder] :
       {std::pair{"builder=nearest-neighbor", tsp::TourBuilder::kNearestNeighbor},
        std::pair{"builder=greedy-edge", tsp::TourBuilder::kGreedyEdge},
        std::pair{"builder=double-tree", tsp::TourBuilder::kDoubleTree}}) {
    Variant v{label, {}};
    v.options.tour.builder = builder;
    variants.push_back(v);
  }
  {
    Variant v{"no 2-opt / no or-opt", {}};
    v.options.tour.improve.use_two_opt = false;
    v.options.tour.improve.use_or_opt = false;
    v.options.tour.improve_segments = false;
    variants.push_back(v);
  }
  {
    Variant v{"2-opt only (no or-opt)", {}};
    v.options.tour.improve.use_or_opt = false;
    variants.push_back(v);
  }
  {
    Variant v{"mis=min-degree", {}};
    v.options.gc_mis_order = graph::MisOrder::kMinDegree;
    v.options.h_mis_order = graph::MisOrder::kMinDegree;
    variants.push_back(v);
  }
  {
    Variant v{"mis=priority(tau)", {}};
    v.options.gc_mis_order = graph::MisOrder::kPriority;
    v.options.h_mis_order = graph::MisOrder::kPriority;
    variants.push_back(v);
  }
  {
    Variant v{"insertion=cheapest-detour", {}};
    v.options.insertion = core::InsertionRule::kCheapestNeighborDetour;
    variants.push_back(v);
  }

  Table table({"variant", "mean_delay_h", "max_delay_h", "mean_stops",
               "mean_wait_s", "violations"});
  auto measure = [&](const std::string& name, const sched::Scheduler& algo) {
    RunningStats delay, stops, wait;
    std::size_t violations = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      Rng rng(seed * 31 + r * 977);
      const auto problem = random_round(n, k, rng);
      const auto schedule = sched::execute_plan(problem, algo.plan(problem));
      violations += sched::verify_schedule(problem, schedule).size();
      delay.add(schedule.longest_delay() / 3600.0);
      stops.add(static_cast<double>(schedule.num_stops()));
      wait.add(schedule.total_wait());
    }
    table.start_row();
    table.add(name);
    table.add(delay.mean(), 3);
    table.add(delay.max(), 3);
    table.add(stops.mean(), 1);
    table.add(wait.mean(), 1);
    table.add(static_cast<long long>(violations));
  };
  for (const auto& variant : variants) {
    measure(variant.name, core::ApproScheduler(variant.options));
  }
  // Structural comparator: greedy max-coverage stops without the MIS +
  // overlap-graph machinery (waiting resolves its conflicts).
  measure("greedy-cover (no MIS/H)", baselines::GreedyCoverScheduler());
  std::printf("Appro design ablation: n=%zu, K=%zu, %zu fresh rounds\n\n", n,
              k, rounds);
  table.print(std::cout);
  return 0;
}
