// Ablation bench for algorithm Appro's design choices (DESIGN.md section 4):
//  * tour construction inside the K-optimal closed tour substrate
//    (nearest-neighbor / greedy-edge / double-tree / Christofides);
//  * 2-opt / Or-opt improvement on vs off;
//  * MIS scan order for S_I and V'_H (index / min-degree / priority-by-tau).
//
// Measures the executed longest charge delay on fresh charging rounds
// (not the simulator loop, which would mix in request-dynamics noise).
//
// Flags: --n=1000 --chargers=2 --rounds=10 --seed=1 --jobs=0 --plan-jobs=0
//        [--shard=i/N --chunk=PATH]
// (--jobs: worker threads; 0 = all hardware threads. Output is identical
// for every job count — each (variant, round) work item reseeds itself.
// --plan-jobs: worker threads inside each scheduler invocation, also
// output-identical for every value; 0 = the scheduler's own configuration.
// --shard/--chunk: compute only this shard's items and write a chunk file
// for merge_shards; the merged table is byte-identical to unsharded.)
#include <cstdio>
#include <iostream>
#include <memory>
#include <utility>

#include "ablation_common.h"

#include "baselines/greedy_cover.h"
#include "core/appro.h"
#include "model/charging_problem.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "trace_common.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mcharge;

model::ChargingProblem random_round(std::size_t n, std::size_t k, Rng& rng) {
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  return model::ChargingProblem(std::move(pts), std::move(deficits),
                                {50.0, 50.0}, 2.7, 1.0, k);
}

struct Variant {
  std::string name;
  core::ApproOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const bench::TraceOutput trace(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 1000));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 2));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 10));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto jobs = static_cast<std::size_t>(flags.get_int("jobs", 0));
  const auto plan_jobs =
      static_cast<std::size_t>(flags.get_int("plan-jobs", 0));
  const auto shard = bench::ShardSpec::from_flags(flags);

  std::vector<Variant> variants;
  {
    Variant v{"default (christofides+improve)", {}};
    variants.push_back(v);
  }
  for (auto [label, builder] :
       {std::pair{"builder=nearest-neighbor", tsp::TourBuilder::kNearestNeighbor},
        std::pair{"builder=greedy-edge", tsp::TourBuilder::kGreedyEdge},
        std::pair{"builder=double-tree", tsp::TourBuilder::kDoubleTree}}) {
    Variant v{label, {}};
    v.options.tour.builder = builder;
    variants.push_back(v);
  }
  {
    Variant v{"no 2-opt / no or-opt", {}};
    v.options.tour.improve.use_two_opt = false;
    v.options.tour.improve.use_or_opt = false;
    v.options.tour.improve_segments = false;
    variants.push_back(v);
  }
  {
    Variant v{"2-opt only (no or-opt)", {}};
    v.options.tour.improve.use_or_opt = false;
    variants.push_back(v);
  }
  {
    Variant v{"mis=min-degree", {}};
    v.options.gc_mis_order = graph::MisOrder::kMinDegree;
    v.options.h_mis_order = graph::MisOrder::kMinDegree;
    variants.push_back(v);
  }
  {
    Variant v{"mis=priority(tau)", {}};
    v.options.gc_mis_order = graph::MisOrder::kPriority;
    v.options.h_mis_order = graph::MisOrder::kPriority;
    variants.push_back(v);
  }
  {
    Variant v{"insertion=cheapest-detour", {}};
    v.options.insertion = core::InsertionRule::kCheapestNeighborDetour;
    variants.push_back(v);
  }

  // Full roster up front (variants plus the structural comparator: greedy
  // max-coverage without the MIS + overlap-graph machinery) so the rounds
  // flatten into one (variant, round) work list.
  std::vector<std::pair<std::string, std::unique_ptr<sched::Scheduler>>> algos;
  for (const auto& variant : variants) {
    algos.emplace_back(variant.name,
                       std::make_unique<core::ApproScheduler>(variant.options));
  }
  algos.emplace_back("greedy-cover (no MIS/H)",
                     std::make_unique<baselines::GreedyCoverScheduler>());

  std::vector<bench::DesignItem> results(algos.size() * rounds);
  parallel_for(
      results.size(),
      [&](std::size_t idx) {
        if (!shard.mine(idx)) return;
        const std::size_t a = idx / rounds;
        const std::size_t r = idx % rounds;
        Rng rng(derive_seed(seed, r));  // same round problem for all variants
        const auto problem = random_round(n, k, rng);
        const auto schedule = sched::execute_plan(
            problem, algos[a].second->plan_with_jobs(problem, plan_jobs));
        bench::DesignItem& item = results[idx];
        item.violations = sched::verify_schedule(problem, schedule).size();
        item.delay_h = schedule.longest_delay() / 3600.0;
        item.stops = static_cast<double>(schedule.num_stops());
        item.wait_s = schedule.total_wait();
        item.present = true;
      },
      jobs);

  std::vector<std::string> algo_names;
  for (const auto& algo : algos) algo_names.push_back(algo.first);

  if (shard.active()) {
    bench::ChunkFile chunk;
    chunk.kind = "ablation_design";
    chunk.seed = seed;
    chunk.instances = rounds;
    chunk.shard_index = shard.index;
    chunk.shard_count = shard.count;
    chunk.params = {{"n", std::to_string(n)},
                    {"chargers", std::to_string(k)}};
    chunk.algo_names = algo_names;
    for (std::size_t a = 0; a < algos.size(); ++a) {
      for (std::size_t r = 0; r < rounds; ++r) {
        const bench::DesignItem& item = results[a * rounds + r];
        if (!item.present) continue;
        chunk.items.push_back(
            {0, r, a, item.violations, {item.delay_h, item.stops, item.wait_s}});
      }
    }
    return bench::finish_shard(shard, chunk);
  }

  bench::emit_design_ablation(n, k, rounds, algo_names, results);
  return 0;
}
