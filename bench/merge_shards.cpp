// Merges --shard=i/N chunk files from a sharded bench (figure sweeps,
// ablation_design, ablation_policy) back into the bench output. Usage:
//
//   merge_shards [--csv=PREFIX] chunk0 chunk1 ... chunkN-1
//
// The merged stdout is byte-identical to the unsharded bench run with the
// same settings: the chunks carry the raw per-item simulator doubles in
// hexfloat (exact round-trip), and this tool replays the same
// deterministic reduction and table printer the bench itself uses
// (bench::reduce_point + bench::emit_figure for figures,
// bench::emit_design_ablation / bench::emit_policy_ablation for the
// ablations). The chunk's `kind` header selects the replay path.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ablation_common.h"
#include "figure_common.h"
#include "shard_chunk.h"

namespace {

using namespace mcharge;

bool item_in_range(const bench::ChunkItem& it, std::size_t num_points,
                   std::size_t num_insts, std::size_t num_algos,
                   std::size_t num_values) {
  return it.point < num_points && it.inst < num_insts &&
         it.algo < num_algos && it.values.size() == num_values;
}

int fail(const char* why) {
  std::fprintf(stderr, "merge_shards: %s\n", why);
  return 1;
}

int merge_figure(const std::vector<bench::ChunkFile>& chunks,
                 const CliFlags& flags) {
  const bench::ChunkFile& head = chunks.front();
  const std::size_t num_algos = head.algo_names.size();
  const std::size_t num_points = head.labels.size();
  const std::size_t stride = head.instances * num_algos;
  std::vector<std::vector<bench::ItemSample>> samples(
      num_points, std::vector<bench::ItemSample>(stride));
  for (const auto& c : chunks) {
    for (const bench::ChunkItem& it : c.items) {
      if (!item_in_range(it, num_points, head.instances, num_algos, 2)) {
        return fail("item out of range");
      }
      bench::ItemSample& slot =
          samples[it.point][it.inst * num_algos + it.algo];
      if (slot.present) return fail("duplicate item");
      slot = {it.values[0], it.values[1], it.violations, true};
    }
  }
  for (std::size_t p = 0; p < num_points; ++p) {
    for (std::size_t idx = 0; idx < stride; ++idx) {
      if (!samples[p][idx].present) {
        std::fprintf(stderr,
                     "merge_shards: missing item (point %zu, instance %zu, "
                     "algorithm %zu)\n",
                     p, idx / num_algos, idx % num_algos);
        return 1;
      }
    }
  }

  bench::SweepSettings settings;
  settings.instances = head.instances;
  settings.months = head.months;
  settings.seed = head.seed;
  settings.csv_prefix = flags.get("csv", "");
  std::vector<bench::PointResult> points;
  points.reserve(num_points);
  for (const auto& s : samples) {
    points.push_back(bench::reduce_point(settings, num_algos, s));
  }
  bench::emit_figure(head.figure, head.knob, head.labels, head.algo_names,
                     points, settings);
  return 0;
}

bool parse_param(const bench::ChunkFile& chunk, const char* name,
                 std::size_t* out) {
  const std::string value = chunk.param(name);
  return !value.empty() && std::sscanf(value.c_str(), "%zu", out) == 1;
}

int merge_ablation_design(const std::vector<bench::ChunkFile>& chunks) {
  const bench::ChunkFile& head = chunks.front();
  std::size_t n = 0, k = 0;
  if (!parse_param(head, "n", &n) || !parse_param(head, "chargers", &k)) {
    return fail("ablation_design chunk missing n/chargers params");
  }
  const std::size_t num_algos = head.algo_names.size();
  const std::size_t rounds = head.instances;
  std::vector<bench::DesignItem> items(num_algos * rounds);
  for (const auto& c : chunks) {
    for (const bench::ChunkItem& it : c.items) {
      if (!item_in_range(it, 1, rounds, num_algos, 3)) {
        return fail("item out of range");
      }
      bench::DesignItem& slot = items[it.algo * rounds + it.inst];
      if (slot.present) return fail("duplicate item");
      slot = {it.values[0], it.values[1], it.values[2], it.violations, true};
    }
  }
  for (std::size_t a = 0; a < num_algos; ++a) {
    for (std::size_t r = 0; r < rounds; ++r) {
      if (!items[a * rounds + r].present) {
        std::fprintf(stderr,
                     "merge_shards: missing item (variant %zu, round %zu)\n",
                     a, r);
        return 1;
      }
    }
  }
  bench::emit_design_ablation(n, k, rounds, head.algo_names, items);
  return 0;
}

int merge_ablation_policy(const std::vector<bench::ChunkFile>& chunks) {
  const bench::ChunkFile& head = chunks.front();
  std::size_t n = 0, k = 0;
  if (!parse_param(head, "n", &n) || !parse_param(head, "chargers", &k)) {
    return fail("ablation_policy chunk missing n/chargers params");
  }
  const std::size_t num_algos = head.algo_names.size();
  const std::size_t num_policies = head.labels.size();
  const std::size_t instances = head.instances;
  std::vector<bench::PolicyItem> items(num_algos * num_policies * instances);
  for (const auto& c : chunks) {
    for (const bench::ChunkItem& it : c.items) {
      if (!item_in_range(it, num_policies, instances, num_algos, 5)) {
        return fail("item out of range");
      }
      bench::PolicyItem& slot =
          items[(it.algo * num_policies + it.point) * instances + it.inst];
      if (slot.present) return fail("duplicate item");
      slot = {it.values[0], it.values[1], it.values[2], it.values[3],
              it.values[4], true};
    }
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!items[i].present) {
      std::fprintf(stderr, "merge_shards: missing item (flat index %zu)\n", i);
      return 1;
    }
  }
  bench::emit_policy_ablation(n, k, instances, head.months, head.algo_names,
                              head.labels, items);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) paths.emplace_back(argv[i]);
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: merge_shards [--csv=PREFIX] chunk0 chunk1 ...\n");
    return 2;
  }

  std::vector<bench::ChunkFile> chunks(paths.size());
  std::string error;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!bench::read_chunk(paths[i], &chunks[i], &error)) {
      std::fprintf(stderr, "merge_shards: %s\n", error.c_str());
      return 1;
    }
  }

  // Every chunk must come from the same run (same kind, settings and
  // grids), and together they must cover each shard exactly once.
  const bench::ChunkFile& head = chunks.front();
  std::vector<char> shard_seen(head.shard_count, 0);
  for (const auto& c : chunks) {
    if (c.kind != head.kind || c.figure != head.figure ||
        c.knob != head.knob || c.seed != head.seed ||
        c.instances != head.instances || c.months != head.months ||
        c.shard_count != head.shard_count || c.params != head.params ||
        c.algo_names != head.algo_names || c.labels != head.labels) {
      return fail("chunks disagree on run settings (mixing different runs?)");
    }
    if (c.shard_index >= c.shard_count || shard_seen[c.shard_index]) {
      std::fprintf(stderr, "merge_shards: duplicate or bad shard %zu/%zu\n",
                   c.shard_index, c.shard_count);
      return 1;
    }
    shard_seen[c.shard_index] = 1;
  }
  for (std::size_t s = 0; s < head.shard_count; ++s) {
    if (!shard_seen[s]) {
      std::fprintf(stderr, "merge_shards: shard %zu/%zu missing\n", s,
                   head.shard_count);
      return 1;
    }
  }

  if (head.kind == "figure") return merge_figure(chunks, flags);
  if (head.kind == "ablation_design") return merge_ablation_design(chunks);
  if (head.kind == "ablation_policy") return merge_ablation_policy(chunks);
  std::fprintf(stderr, "merge_shards: unknown chunk kind '%s'\n",
               head.kind.c_str());
  return 1;
}
