// Merges --shard=i/N chunk files from a figure bench back into the
// figure output. Usage:
//
//   merge_shards [--csv=PREFIX] chunk0 chunk1 ... chunkN-1
//
// The merged stdout is byte-identical to the unsharded bench run with the
// same settings: the chunks carry the raw per-item simulator doubles in
// hexfloat (exact round-trip), and this tool replays the same
// instance-order reduction (bench::reduce_point) and table printer
// (bench::emit_figure) the bench itself uses.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "figure_common.h"
#include "shard_chunk.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) paths.emplace_back(argv[i]);
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: merge_shards [--csv=PREFIX] chunk0 chunk1 ...\n");
    return 2;
  }

  std::vector<bench::ChunkFile> chunks(paths.size());
  std::string error;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!bench::read_chunk(paths[i], &chunks[i], &error)) {
      std::fprintf(stderr, "merge_shards: %s\n", error.c_str());
      return 1;
    }
  }

  // Every chunk must come from the same sweep (same figure, settings and
  // point grid), and together they must cover each shard exactly once.
  const bench::ChunkFile& head = chunks.front();
  std::vector<char> shard_seen(head.shard_count, 0);
  for (const auto& c : chunks) {
    if (c.figure != head.figure || c.knob != head.knob ||
        c.seed != head.seed || c.instances != head.instances ||
        c.months != head.months || c.shard_count != head.shard_count ||
        c.algo_names != head.algo_names || c.labels != head.labels) {
      std::fprintf(stderr,
                   "merge_shards: chunks disagree on sweep settings "
                   "(mixing different runs?)\n");
      return 1;
    }
    if (c.shard_index >= c.shard_count || shard_seen[c.shard_index]) {
      std::fprintf(stderr, "merge_shards: duplicate or bad shard %zu/%zu\n",
                   c.shard_index, c.shard_count);
      return 1;
    }
    shard_seen[c.shard_index] = 1;
  }
  for (std::size_t s = 0; s < head.shard_count; ++s) {
    if (!shard_seen[s]) {
      std::fprintf(stderr, "merge_shards: shard %zu/%zu missing\n", s,
                   head.shard_count);
      return 1;
    }
  }

  const std::size_t num_algos = head.algo_names.size();
  const std::size_t num_points = head.labels.size();
  const std::size_t stride = head.instances * num_algos;
  std::vector<std::vector<bench::ItemSample>> samples(
      num_points, std::vector<bench::ItemSample>(stride));
  for (const auto& c : chunks) {
    for (const bench::ChunkItem& it : c.items) {
      if (it.point >= num_points || it.inst >= head.instances ||
          it.algo >= num_algos) {
        std::fprintf(stderr, "merge_shards: item out of range\n");
        return 1;
      }
      bench::ItemSample& slot = samples[it.point][it.inst * num_algos + it.algo];
      if (slot.present) {
        std::fprintf(stderr,
                     "merge_shards: duplicate item (point %zu, instance "
                     "%zu, algorithm %zu)\n",
                     it.point, it.inst, it.algo);
        return 1;
      }
      slot = {it.tour, it.dead, it.violations, true};
    }
  }
  for (std::size_t p = 0; p < num_points; ++p) {
    for (std::size_t idx = 0; idx < stride; ++idx) {
      if (!samples[p][idx].present) {
        std::fprintf(stderr,
                     "merge_shards: missing item (point %zu, instance %zu, "
                     "algorithm %zu)\n",
                     p, idx / num_algos, idx % num_algos);
        return 1;
      }
    }
  }

  bench::SweepSettings settings;
  settings.instances = head.instances;
  settings.months = head.months;
  settings.seed = head.seed;
  settings.csv_prefix = flags.get("csv", "");
  std::vector<bench::PointResult> points;
  points.reserve(num_points);
  for (const auto& s : samples) {
    points.push_back(bench::reduce_point(settings, num_algos, s));
  }
  bench::emit_figure(head.figure, head.knob, head.labels, head.algo_names,
                     points, settings);
  return 0;
}
