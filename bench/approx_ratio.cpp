// Empirical approximation quality of algorithm Appro.
//
// Theorem 1 proves rho = 40*pi*(tau_max/tau_min) + 1 (~157 at the paper's
// 20% threshold) — a worst-case certificate, not a prediction. This bench
// measures what Appro actually achieves:
//   * vs the EXACT optimum on tiny instances (core::exact_min_longest_delay);
//   * vs the delay lower bounds (core::delay_lower_bound) on paper-scale
//     instances, where the exact optimum is out of reach. Appro/LB is an
//     upper bound on Appro/OPT.
//
// Flags: --tiny_instances=200 --tiny_n=5 --big_instances=20 --big_n=1000
//        --chargers=2 --seed=1
#include <cstdio>
#include <iostream>

#include "core/appro.h"
#include "core/bounds.h"
#include "core/exact.h"
#include "schedule/execute.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace mcharge;

model::ChargingProblem random_round(std::size_t n, std::size_t k, Rng& rng,
                                    double field, double t_lo, double t_hi) {
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, field), rng.uniform(0.0, field)});
    deficits.push_back(rng.uniform(t_lo, t_hi));
  }
  return model::ChargingProblem(std::move(pts), std::move(deficits),
                                {field / 2, field / 2}, 2.7, 1.0, k);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto tiny_instances =
      static_cast<std::size_t>(flags.get_int("tiny_instances", 200));
  const auto tiny_n = static_cast<std::size_t>(flags.get_int("tiny_n", 5));
  const auto big_instances =
      static_cast<std::size_t>(flags.get_int("big_instances", 20));
  const auto big_n = static_cast<std::size_t>(flags.get_int("big_n", 1000));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 2));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  core::ApproScheduler appro;

  // --- tiny instances: Appro vs exact optimum ---
  SampleSet vs_exact;
  SampleSet lb_vs_exact;  // how tight the lower bound itself is
  for (std::size_t i = 0; i < tiny_instances; ++i) {
    Rng rng(seed * 40503 + i * 769);
    const std::size_t n = 2 + rng.below(tiny_n - 1);
    const auto p = random_round(n, k, rng, 40.0, 50.0, 400.0);
    const auto exact = core::exact_min_longest_delay(p);
    const double got =
        sched::execute_plan(p, appro.plan(p)).longest_delay();
    if (exact.longest_delay > 0.0) {
      vs_exact.add(got / exact.longest_delay);
      lb_vs_exact.add(core::delay_lower_bound(p) / exact.longest_delay);
    }
  }

  // --- paper-scale instances: Appro vs lower bound ---
  SampleSet vs_bound;
  for (std::size_t i = 0; i < big_instances; ++i) {
    Rng rng(seed * 74093 + i * 331);
    const auto p = random_round(big_n, k, rng, 100.0, 3456.0, 5400.0);
    const double got =
        sched::execute_plan(p, appro.plan(p)).longest_delay();
    const double bound = core::delay_lower_bound(p);
    if (bound > 0.0) vs_bound.add(got / bound);
  }

  Table table({"comparison", "samples", "mean", "median", "p95", "max"});
  auto emit = [&](const char* name, const SampleSet& s) {
    table.start_row();
    table.add(name);
    table.add(static_cast<long long>(s.count()));
    table.add(s.mean(), 3);
    table.add(s.median(), 3);
    table.add(s.quantile(0.95), 3);
    table.add(s.quantile(1.0), 3);
  };
  emit("Appro / exact OPT (tiny)", vs_exact);
  emit("lower bound / exact OPT (tiny)", lb_vs_exact);
  emit("Appro / lower bound (paper-scale)", vs_bound);

  std::printf("Empirical approximation quality (proved rho ~ 157 at the "
              "paper's parameters)\n\n");
  table.print(std::cout);
  std::printf("\ntiny: %zu instances, n in [2, %zu], K=%zu | paper-scale: "
              "%zu instances, n=%zu\n",
              tiny_instances, tiny_n, k, big_instances, big_n);
  return 0;
}
