// Shared reduction + emission for the two ablation benches, factored out
// so merge_shards can replay them from chunk files: the unsharded bench
// and the merged shards run the exact same instance-order reduction over
// the exact same per-item doubles, making the outputs byte-identical by
// construction.
//
// Both benches share the sharding flags:
//   --shard=i/N     run only work items with global index = i mod N and
//                   write a chunk file instead of the table
//   --chunk=PATH    chunk file path for --shard mode
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "shard_chunk.h"

#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcharge::bench {

/// --shard=i/N / --chunk=PATH parsing, shared by the ablation benches
/// (the figure benches carry the same fields inside SweepSettings).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;
  std::string chunk_path;

  bool active() const { return count > 1; }
  /// True when work item `idx` belongs to this shard.
  bool mine(std::size_t idx) const {
    return count <= 1 || idx % count == index;
  }

  static ShardSpec from_flags(const CliFlags& flags) {
    ShardSpec s;
    const std::string shard = flags.get("shard", "");
    if (shard.empty()) return s;
    if (std::sscanf(shard.c_str(), "%zu/%zu", &s.index, &s.count) != 2 ||
        s.count == 0 || s.index >= s.count) {
      std::fprintf(stderr, "bad --shard=%s (want i/N with 0 <= i < N)\n",
                   shard.c_str());
      std::exit(2);
    }
    s.chunk_path = flags.get("chunk", "");
    if (s.count > 1 && s.chunk_path.empty()) {
      std::fprintf(stderr, "--shard requires --chunk=PATH\n");
      std::exit(2);
    }
    return s;
  }
};

/// Writes a shard's chunk file and prints the one-line receipt the figure
/// benches also emit. Returns the process exit code.
inline int finish_shard(const ShardSpec& shard, const ChunkFile& chunk) {
  if (!write_chunk(shard.chunk_path, chunk)) {
    std::fprintf(stderr, "cannot write chunk file %s\n",
                 shard.chunk_path.c_str());
    return 1;
  }
  std::printf("shard %zu/%zu: %zu item(s) -> %s\n", shard.index, shard.count,
              chunk.items.size(), shard.chunk_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// ablation_design: one item per (variant, round), variant-major.

struct DesignItem {
  double delay_h = 0.0;
  double stops = 0.0;
  double wait_s = 0.0;
  std::size_t violations = 0;
  bool present = false;
};

/// Reduces the (variant, round) grid in round order per variant and prints
/// the design-ablation table. `items` is variant-major (a * rounds + r).
inline void emit_design_ablation(std::size_t n, std::size_t k,
                                 std::size_t rounds,
                                 const std::vector<std::string>& algo_names,
                                 const std::vector<DesignItem>& items) {
  Table table({"variant", "mean_delay_h", "max_delay_h", "mean_stops",
               "mean_wait_s", "violations"});
  for (std::size_t a = 0; a < algo_names.size(); ++a) {
    RunningStats delay, stops, wait;
    std::size_t violations = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      const DesignItem& item = items[a * rounds + r];
      delay.add(item.delay_h);
      stops.add(item.stops);
      wait.add(item.wait_s);
      violations += item.violations;
    }
    table.start_row();
    table.add(algo_names[a]);
    table.add(delay.mean(), 3);
    table.add(delay.max(), 3);
    table.add(stops.mean(), 1);
    table.add(wait.mean(), 1);
    table.add(static_cast<long long>(violations));
  }
  std::printf("Appro design ablation: n=%zu, K=%zu, %zu fresh rounds\n\n", n,
              k, rounds);
  table.print(std::cout);
}

// ---------------------------------------------------------------------------
// ablation_policy: one item per (algorithm, policy, instance),
// algorithm-major then policy.

struct PolicyItem {
  double rounds = 0.0;
  double batch = 0.0;
  double tour_h = 0.0;
  double dead_min = 0.0;
  double stops_ratio = 1.0;
  bool present = false;
};

/// Reduces the (algorithm, policy, instance) grid in instance order per
/// cell and prints the policy-ablation table. `items` is indexed as
/// (a * num_policies + p) * instances + i.
inline void emit_policy_ablation(std::size_t n, std::size_t k,
                                 std::size_t instances, double months,
                                 const std::vector<std::string>& algo_names,
                                 const std::vector<std::string>& policy_names,
                                 const std::vector<PolicyItem>& items) {
  Table table({"algorithm", "policy", "rounds", "mean_batch",
               "mean_tour_h", "dead_min_per_sensor", "charged_per_batch"});
  for (std::size_t a = 0; a < algo_names.size(); ++a) {
    for (std::size_t p = 0; p < policy_names.size(); ++p) {
      RunningStats rounds, batch, tour, dead, stops_ratio;
      for (std::size_t i = 0; i < instances; ++i) {
        const PolicyItem& item =
            items[(a * policy_names.size() + p) * instances + i];
        rounds.add(item.rounds);
        batch.add(item.batch);
        tour.add(item.tour_h);
        dead.add(item.dead_min);
        stops_ratio.add(item.stops_ratio);
      }
      table.start_row();
      table.add(algo_names[a]);
      table.add(policy_names[p]);
      table.add(rounds.mean(), 0);
      table.add(batch.mean(), 1);
      table.add(tour.mean(), 2);
      table.add(dead.mean(), 1);
      table.add(stops_ratio.mean(), 3);
    }
  }
  std::printf("Dispatch-policy ablation: n=%zu, K=%zu, %zu instance(s), "
              "%.1f months\n\n",
              n, k, instances, months);
  table.print(std::cout);
}

}  // namespace mcharge::bench
