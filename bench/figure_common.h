// Shared harness for the figure-reproduction benches.
//
// Each paper figure plots, for the five algorithms, (a) the average longest
// tour duration (hours) and (b) the average dead duration per sensor
// (minutes) over a monitoring period, as one experiment knob sweeps. The
// harness runs `instances` random WRSN instances per sweep point, feeds
// each through the year-long (configurable) simulator under every
// algorithm, and prints both series as tables + CSV.
//
// Common flags (all benches):
//   --instances=N   instances per point           (default 10; paper: 100)
//   --months=M      monitoring period in months   (default 12, as the paper)
//   --seed=S        base RNG seed                 (default 1)
//   --jobs=N        worker threads; 0 = all hardware threads (default),
//                   1 = serial. Output is byte-identical for every N.
//   --sim-jobs=N    worker threads *inside* each simulation's per-sensor
//                   scans (default 1 = serial; 0 = all hardware threads).
//                   Byte-identical for every N; useful when a single huge
//                   instance dominates instead of many parallel items.
//   --plan-jobs=N   worker threads inside each scheduler invocation
//                   (per-segment tour improvement + eager travel-cache
//                   fill; default 0 = the scheduler's own configuration).
//                   Byte-identical for every N, same caveat as --sim-jobs:
//                   only pays when one huge instance dominates.
//   --mcv-budget=J  usable MCV battery capacity in joules (default 0 =
//                   unlimited). Enabling it routes every round through the
//                   budgeted executor: tours that would overdraw abort at
//                   the exhaustion point and the orphaned stops are pushed
//                   to the next round (RecoveryPolicy::kDefer).
//   --csv=PREFIX    also write PREFIX_a.csv / PREFIX_b.csv
//   --shard=i/N     run only work items with global index = i mod N and
//                   write a chunk file instead of tables (requires --chunk).
//                   Merging the N chunks with merge_shards reproduces the
//                   unsharded output byte for byte.
//   --chunk=PATH    chunk file path for --shard mode
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "shard_chunk.h"

#include "baselines/aa.h"
#include "baselines/kedf.h"
#include "baselines/kminmax.h"
#include "baselines/netwrap.h"
#include "core/appro.h"
#include "sim/simulation.h"
#include "util/assert.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcharge::bench {

inline std::vector<sched::SchedulerPtr> paper_algorithms() {
  std::vector<sched::SchedulerPtr> out;
  out.push_back(std::make_unique<core::ApproScheduler>());
  out.push_back(std::make_unique<baselines::KEdfScheduler>());
  out.push_back(std::make_unique<baselines::NetwrapScheduler>());
  out.push_back(std::make_unique<baselines::AaScheduler>());
  out.push_back(std::make_unique<baselines::KMinMaxScheduler>());
  return out;
}

struct SweepSettings {
  std::size_t instances = 10;
  double months = 12.0;
  std::uint64_t seed = 1;
  /// Worker threads for the (instance, algorithm) work items; 0 = all
  /// hardware threads, 1 = serial. Never affects the numbers, only speed.
  std::size_t jobs = 0;
  /// Worker threads inside each simulation's per-sensor scans
  /// (SimConfig::jobs). Defaults to serial: the item-level fan-out above
  /// already saturates the machine on normal sweeps, so nested pools
  /// would only add contention. Raise it for single-instance runs at
  /// large n. Never affects the numbers, only speed.
  std::size_t sim_jobs = 1;
  /// Worker threads inside each scheduler invocation (SimConfig::plan_jobs:
  /// per-segment tour improvement and the eager travel-cache fill).
  /// Defaults to 0 = the scheduler's own configuration, for the same
  /// reason as sim_jobs. Never affects the numbers, only speed.
  std::size_t plan_jobs = 0;
  /// MCV battery capacity in joules; 0 (default) = unlimited, taking the
  /// unbudgeted simulator path byte for byte (SimConfig::mcv_budget).
  double mcv_budget_j = 0.0;
  std::string csv_prefix;  ///< empty = no CSV files
  /// Sensor placement. The paper uses uniform; --layout=clustered/grid
  /// checks that the conclusions survive other deployment shapes.
  model::FieldLayout layout = model::FieldLayout::kUniform;
  /// Sharding (--shard=i/N): this process computes only the work items
  /// whose global index (across all sweep points) is i mod N, and writes
  /// them to `chunk_path` for merge_shards. 1 = unsharded.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::string chunk_path;

  static SweepSettings from_flags(const CliFlags& flags) {
    SweepSettings s;
    s.instances = static_cast<std::size_t>(flags.get_int("instances", 10));
    s.months = flags.get_double("months", 12.0);
    s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    s.jobs = static_cast<std::size_t>(flags.get_int("jobs", 0));
    s.sim_jobs = static_cast<std::size_t>(flags.get_int("sim-jobs", 1));
    s.plan_jobs = static_cast<std::size_t>(flags.get_int("plan-jobs", 0));
    s.mcv_budget_j = flags.get_double("mcv-budget", 0.0);
    s.csv_prefix = flags.get("csv", "");
    const std::string layout = flags.get("layout", "uniform");
    if (layout == "clustered") s.layout = model::FieldLayout::kClustered;
    if (layout == "grid") s.layout = model::FieldLayout::kGrid;
    const std::string shard = flags.get("shard", "");
    if (!shard.empty()) {
      if (std::sscanf(shard.c_str(), "%zu/%zu", &s.shard_index,
                      &s.shard_count) != 2 ||
          s.shard_count == 0 || s.shard_index >= s.shard_count) {
        std::fprintf(stderr, "bad --shard=%s (want i/N with 0 <= i < N)\n",
                     shard.c_str());
        std::exit(2);
      }
      s.chunk_path = flags.get("chunk", "");
      if (s.shard_count > 1 && s.chunk_path.empty()) {
        std::fprintf(stderr, "--shard requires --chunk=PATH\n");
        std::exit(2);
      }
    }
    return s;
  }
};

/// One sweep point: a label value (e.g. n) and a configured instance
/// factory. The harness owns averaging across instances and algorithms.
struct PointResult {
  std::vector<double> longest_tour_hours;   ///< per algorithm (mean)
  std::vector<double> dead_minutes;         ///< per algorithm (mean)
  std::vector<double> tour_stddev;          ///< across instances
  std::vector<double> dead_stddev;          ///< across instances
  std::size_t violations = 0;
};

/// Raw simulator output of one (instance, algorithm) work item. `present`
/// is false for items assigned to other shards.
struct ItemSample {
  double tour = 0.0;
  double dead = 0.0;
  std::size_t violations = 0;
  bool present = false;
};

/// Runs the work items of one sweep point and returns the raw per-item
/// samples (instances * num_algos slots, instance-major).
///
/// One work item per (instance, algorithm) pair: the item regenerates
/// its instance from a seed derived only from the instance index (all
/// algorithms see the same instance, and no state crosses items), runs
/// the year-long simulation, and records into its own slot. The mapping
/// of items to threads therefore cannot influence any number. Under
/// --shard=i/N, items whose global index (point_idx * items-per-point +
/// local index) is not congruent to i are skipped and left absent.
template <typename MakeInstance>
std::vector<ItemSample> run_point_samples(
    const SweepSettings& settings,
    const std::vector<sched::SchedulerPtr>& algorithms,
    MakeInstance&& make_instance, std::size_t point_idx = 0) {
  sim::SimConfig sim_config;
  sim_config.monitoring_period_s = settings.months * 30.0 * 86400.0;
  sim_config.jobs = settings.sim_jobs;
  sim_config.plan_jobs = settings.plan_jobs;
  sim_config.mcv_budget.capacity_j = settings.mcv_budget_j;

  const std::size_t num_algos = algorithms.size();
  const std::size_t stride = settings.instances * num_algos;
  std::vector<ItemSample> items(stride);
  parallel_for(
      items.size(),
      [&](std::size_t idx) {
        if (settings.shard_count > 1 &&
            (point_idx * stride + idx) % settings.shard_count !=
                settings.shard_index) {
          return;
        }
        const std::size_t inst = idx / num_algos;
        const std::size_t a = idx % num_algos;
        Rng rng(derive_seed(settings.seed, inst));
        const model::WrsnInstance instance = make_instance(rng);
        const auto r = sim::simulate(instance, *algorithms[a], sim_config);
        // A run cut off by the max_rounds safety cap is a partial
        // measurement — averaging it into the figure would silently skew
        // the series. (kHorizonMidRound is fine: the last round of a
        // loaded run routinely straddles the end of the period.)
        MCHARGE_ASSERT(
            r.truncated_reason != sim::TruncationReason::kMaxRounds,
            "figure point hit SimConfig::max_rounds — results are partial");
        items[idx].tour = r.mean_longest_delay_hours();
        items[idx].dead = r.mean_dead_minutes_per_sensor;
        items[idx].violations = r.verify_violations;
        items[idx].present = true;
      },
      settings.jobs);
  return items;
}

/// Deterministic single-threaded reduction of a point's samples, in
/// instance order. Shared by the unsharded path and merge_shards, so the
/// merged figures are byte-identical by construction: each item
/// contributed exactly one sample, and rebuilding a one-sample
/// RunningStats from the stored double reproduces its state exactly.
inline PointResult reduce_point(const SweepSettings& settings,
                                std::size_t num_algos,
                                const std::vector<ItemSample>& items) {
  std::vector<RunningStats> tour(num_algos);
  std::vector<RunningStats> dead(num_algos);
  PointResult result;
  for (std::size_t inst = 0; inst < settings.instances; ++inst) {
    for (std::size_t a = 0; a < num_algos; ++a) {
      const ItemSample& item = items[inst * num_algos + a];
      RunningStats item_tour, item_dead;
      item_tour.add(item.tour);
      item_dead.add(item.dead);
      tour[a].merge(item_tour);
      dead[a].merge(item_dead);
      result.violations += item.violations;
    }
  }
  for (std::size_t a = 0; a < num_algos; ++a) {
    result.longest_tour_hours.push_back(tour[a].mean());
    result.dead_minutes.push_back(dead[a].mean());
    result.tour_stddev.push_back(tour[a].stddev());
    result.dead_stddev.push_back(dead[a].stddev());
  }
  return result;
}

template <typename MakeInstance>
PointResult run_point(const SweepSettings& settings,
                      const std::vector<sched::SchedulerPtr>& algorithms,
                      MakeInstance&& make_instance) {
  return reduce_point(
      settings, algorithms.size(),
      run_point_samples(settings, algorithms, make_instance));
}

inline std::vector<std::string> algorithm_names(
    const std::vector<sched::SchedulerPtr>& algorithms) {
  std::vector<std::string> names;
  names.reserve(algorithms.size());
  for (const auto& a : algorithms) names.push_back(a->name());
  return names;
}

/// Prints the two series ((a) tour duration, (b) dead duration) and
/// optionally writes CSVs. Takes algorithm names rather than scheduler
/// instances so merge_shards can emit figures from chunk headers alone.
inline void emit_figure(const std::string& figure, const std::string& knob,
                        const std::vector<std::string>& knob_values,
                        const std::vector<std::string>& algo_names,
                        const std::vector<PointResult>& points,
                        const SweepSettings& settings) {
  std::vector<std::string> headers{knob};
  for (const auto& name : algo_names) headers.push_back(name);
  // Both outputs also carry per-algorithm stddev columns (across the
  // replicated instances) so plots can show error bars.
  std::vector<std::string> csv_headers = headers;
  for (const auto& name : algo_names) csv_headers.push_back(name + "_sd");

  Table tour(csv_headers);
  Table dead(csv_headers);
  std::size_t violations = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    tour.start_row();
    tour.add(knob_values[i]);
    for (double v : points[i].longest_tour_hours) tour.add(v, 2);
    for (double v : points[i].tour_stddev) tour.add(v, 2);
    dead.start_row();
    dead.add(knob_values[i]);
    for (double v : points[i].dead_minutes) dead.add(v, 1);
    for (double v : points[i].dead_stddev) dead.add(v, 1);
    violations += points[i].violations;
  }

  std::printf("\n%s(a): average longest tour duration (hours)\n",
              figure.c_str());
  tour.print(std::cout);
  std::printf("\n%s(b): average dead duration per sensor (minutes)\n",
              figure.c_str());
  dead.print(std::cout);
  std::printf("\nschedule verifier violations across all runs: %zu\n",
              violations);
  std::printf("settings: %zu instance(s)/point, %.1f-month horizon "
              "(paper: 100 instances, 12 months)\n",
              settings.instances, settings.months);
  if (!settings.csv_prefix.empty()) {
    tour.write_csv(settings.csv_prefix + "_a.csv");
    dead.write_csv(settings.csv_prefix + "_b.csv");
    std::printf("CSV written to %s_a.csv / %s_b.csv\n",
                settings.csv_prefix.c_str(), settings.csv_prefix.c_str());
  }
}

/// Drives a whole figure sweep: the bench main adds one point per knob
/// value, then finish() either prints the figure (unsharded) or writes
/// this shard's chunk file for merge_shards.
class FigureSweep {
 public:
  FigureSweep(std::string figure, std::string knob, SweepSettings settings)
      : figure_(std::move(figure)),
        knob_(std::move(knob)),
        settings_(std::move(settings)),
        algorithms_(paper_algorithms()) {}

  const SweepSettings& settings() const { return settings_; }
  const std::vector<sched::SchedulerPtr>& algorithms() const {
    return algorithms_;
  }

  template <typename MakeInstance>
  void add_point(std::string label, MakeInstance&& make_instance) {
    samples_.push_back(run_point_samples(settings_, algorithms_,
                                         make_instance, samples_.size()));
    labels_.push_back(std::move(label));
  }

  /// Emits the figure (or the chunk). Returns the process exit code.
  int finish() const {
    if (settings_.shard_count > 1) return write_shard_chunk();
    std::vector<PointResult> points;
    points.reserve(samples_.size());
    for (const auto& s : samples_) {
      points.push_back(reduce_point(settings_, algorithms_.size(), s));
    }
    emit_figure(figure_, knob_, labels_, algorithm_names(algorithms_), points,
                settings_);
    return 0;
  }

 private:
  int write_shard_chunk() const {
    ChunkFile chunk;
    chunk.kind = "figure";
    chunk.figure = figure_;
    chunk.knob = knob_;
    chunk.seed = settings_.seed;
    chunk.instances = settings_.instances;
    chunk.months = settings_.months;
    chunk.shard_index = settings_.shard_index;
    chunk.shard_count = settings_.shard_count;
    chunk.algo_names = algorithm_names(algorithms_);
    chunk.labels = labels_;
    for (std::size_t p = 0; p < samples_.size(); ++p) {
      for (std::size_t idx = 0; idx < samples_[p].size(); ++idx) {
        const ItemSample& item = samples_[p][idx];
        if (!item.present) continue;
        chunk.items.push_back({p, idx / algorithms_.size(),
                               idx % algorithms_.size(), item.violations,
                               {item.tour, item.dead}});
      }
    }
    if (!write_chunk(settings_.chunk_path, chunk)) {
      std::fprintf(stderr, "cannot write chunk file %s\n",
                   settings_.chunk_path.c_str());
      return 1;
    }
    std::printf("shard %zu/%zu: %zu item(s) -> %s\n", settings_.shard_index,
                settings_.shard_count, chunk.items.size(),
                settings_.chunk_path.c_str());
    return 0;
  }

  std::string figure_;
  std::string knob_;
  SweepSettings settings_;
  std::vector<sched::SchedulerPtr> algorithms_;
  std::vector<std::string> labels_;
  std::vector<std::vector<ItemSample>> samples_;
};

}  // namespace mcharge::bench
