// Shared harness for the figure-reproduction benches.
//
// Each paper figure plots, for the five algorithms, (a) the average longest
// tour duration (hours) and (b) the average dead duration per sensor
// (minutes) over a monitoring period, as one experiment knob sweeps. The
// harness runs `instances` random WRSN instances per sweep point, feeds
// each through the year-long (configurable) simulator under every
// algorithm, and prints both series as tables + CSV.
//
// Common flags (all benches):
//   --instances=N   instances per point           (default 10; paper: 100)
//   --months=M      monitoring period in months   (default 12, as the paper)
//   --seed=S        base RNG seed                 (default 1)
//   --jobs=N        worker threads; 0 = all hardware threads (default),
//                   1 = serial. Output is byte-identical for every N.
//   --csv=PREFIX    also write PREFIX_a.csv / PREFIX_b.csv
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/aa.h"
#include "baselines/kedf.h"
#include "baselines/kminmax.h"
#include "baselines/netwrap.h"
#include "core/appro.h"
#include "sim/simulation.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcharge::bench {

inline std::vector<sched::SchedulerPtr> paper_algorithms() {
  std::vector<sched::SchedulerPtr> out;
  out.push_back(std::make_unique<core::ApproScheduler>());
  out.push_back(std::make_unique<baselines::KEdfScheduler>());
  out.push_back(std::make_unique<baselines::NetwrapScheduler>());
  out.push_back(std::make_unique<baselines::AaScheduler>());
  out.push_back(std::make_unique<baselines::KMinMaxScheduler>());
  return out;
}

struct SweepSettings {
  std::size_t instances = 10;
  double months = 12.0;
  std::uint64_t seed = 1;
  /// Worker threads for the (instance, algorithm) work items; 0 = all
  /// hardware threads, 1 = serial. Never affects the numbers, only speed.
  std::size_t jobs = 0;
  std::string csv_prefix;  ///< empty = no CSV files
  /// Sensor placement. The paper uses uniform; --layout=clustered/grid
  /// checks that the conclusions survive other deployment shapes.
  model::FieldLayout layout = model::FieldLayout::kUniform;

  static SweepSettings from_flags(const CliFlags& flags) {
    SweepSettings s;
    s.instances = static_cast<std::size_t>(flags.get_int("instances", 10));
    s.months = flags.get_double("months", 12.0);
    s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    s.jobs = static_cast<std::size_t>(flags.get_int("jobs", 0));
    s.csv_prefix = flags.get("csv", "");
    const std::string layout = flags.get("layout", "uniform");
    if (layout == "clustered") s.layout = model::FieldLayout::kClustered;
    if (layout == "grid") s.layout = model::FieldLayout::kGrid;
    return s;
  }
};

/// One sweep point: a label value (e.g. n) and a configured instance
/// factory. The harness owns averaging across instances and algorithms.
struct PointResult {
  std::vector<double> longest_tour_hours;   ///< per algorithm (mean)
  std::vector<double> dead_minutes;         ///< per algorithm (mean)
  std::vector<double> tour_stddev;          ///< across instances
  std::vector<double> dead_stddev;          ///< across instances
  std::size_t violations = 0;
};

template <typename MakeInstance>
PointResult run_point(const SweepSettings& settings,
                      const std::vector<sched::SchedulerPtr>& algorithms,
                      MakeInstance&& make_instance) {
  sim::SimConfig sim_config;
  sim_config.monitoring_period_s = settings.months * 30.0 * 86400.0;

  // One work item per (instance, algorithm) pair: the item regenerates
  // its instance from a seed derived only from the instance index (all
  // algorithms see the same instance, and no state crosses items), runs
  // the year-long simulation, and records into its own slot. The mapping
  // of items to threads therefore cannot influence any number.
  const std::size_t num_algos = algorithms.size();
  struct ItemResult {
    RunningStats tour, dead;
    std::size_t violations = 0;
  };
  std::vector<ItemResult> items(settings.instances * num_algos);
  parallel_for(
      items.size(),
      [&](std::size_t idx) {
        const std::size_t inst = idx / num_algos;
        const std::size_t a = idx % num_algos;
        Rng rng(derive_seed(settings.seed, inst));
        const model::WrsnInstance instance = make_instance(rng);
        const auto r = sim::simulate(instance, *algorithms[a], sim_config);
        items[idx].tour.add(r.mean_longest_delay_hours());
        items[idx].dead.add(r.mean_dead_minutes_per_sensor);
        items[idx].violations = r.verify_violations;
      },
      settings.jobs);

  // Deterministic reduction on the calling thread, in instance order.
  std::vector<RunningStats> tour(num_algos);
  std::vector<RunningStats> dead(num_algos);
  PointResult result;
  for (std::size_t inst = 0; inst < settings.instances; ++inst) {
    for (std::size_t a = 0; a < num_algos; ++a) {
      const ItemResult& item = items[inst * num_algos + a];
      tour[a].merge(item.tour);
      dead[a].merge(item.dead);
      result.violations += item.violations;
    }
  }
  for (std::size_t a = 0; a < num_algos; ++a) {
    result.longest_tour_hours.push_back(tour[a].mean());
    result.dead_minutes.push_back(dead[a].mean());
    result.tour_stddev.push_back(tour[a].stddev());
    result.dead_stddev.push_back(dead[a].stddev());
  }
  return result;
}

/// Prints the two series ((a) tour duration, (b) dead duration) and
/// optionally writes CSVs.
inline void emit_figure(const std::string& figure, const std::string& knob,
                        const std::vector<std::string>& knob_values,
                        const std::vector<sched::SchedulerPtr>& algorithms,
                        const std::vector<PointResult>& points,
                        const SweepSettings& settings) {
  std::vector<std::string> headers{knob};
  for (const auto& a : algorithms) headers.push_back(a->name());
  // Both outputs also carry per-algorithm stddev columns (across the
  // replicated instances) so plots can show error bars.
  std::vector<std::string> csv_headers = headers;
  for (const auto& a : algorithms) csv_headers.push_back(a->name() + "_sd");

  Table tour(csv_headers);
  Table dead(csv_headers);
  std::size_t violations = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    tour.start_row();
    tour.add(knob_values[i]);
    for (double v : points[i].longest_tour_hours) tour.add(v, 2);
    for (double v : points[i].tour_stddev) tour.add(v, 2);
    dead.start_row();
    dead.add(knob_values[i]);
    for (double v : points[i].dead_minutes) dead.add(v, 1);
    for (double v : points[i].dead_stddev) dead.add(v, 1);
    violations += points[i].violations;
  }

  std::printf("\n%s(a): average longest tour duration (hours)\n",
              figure.c_str());
  tour.print(std::cout);
  std::printf("\n%s(b): average dead duration per sensor (minutes)\n",
              figure.c_str());
  dead.print(std::cout);
  std::printf("\nschedule verifier violations across all runs: %zu\n",
              violations);
  std::printf("settings: %zu instance(s)/point, %.1f-month horizon "
              "(paper: 100 instances, 12 months)\n",
              settings.instances, settings.months);
  if (!settings.csv_prefix.empty()) {
    tour.write_csv(settings.csv_prefix + "_a.csv");
    dead.write_csv(settings.csv_prefix + "_b.csv");
    std::printf("CSV written to %s_a.csv / %s_b.csv\n",
                settings.csv_prefix.c_str(), settings.csv_prefix.c_str());
  }
}

}  // namespace mcharge::bench
