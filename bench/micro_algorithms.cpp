// google-benchmark micro benches for the algorithmic substrates and the
// end-to-end Appro pipeline: MIS construction, overlap graph, blossom-step
// matching, Christofides, min-max splitting, plan execution, and full
// scheduling at the paper's instance sizes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "assignment/hungarian.h"
#include "cluster/kmeans.h"
#include "core/appro.h"
#include "core/bounds.h"
#include "core/exact.h"
#include "core/overlap_graph.h"
#include "core/replan.h"
#include "figure_common.h"
#include "geometry/field.h"
#include "graph/mis.h"
#include "graph/mst.h"
#include "graph/unit_disk.h"
#include "matching/blossom.h"
#include "matching/matching.h"
#include "model/charging_problem.h"
#include "obs/obs.h"
#include "schedule/execute.h"
#include "tsp/construct.h"
#include "tsp/exact.h"
#include "tsp/improve.h"
#include "tsp/split.h"
#include "util/rng.h"
#include "util/simd.h"

namespace {

using namespace mcharge;

model::ChargingProblem make_round(std::size_t n, std::size_t k,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  return model::ChargingProblem(std::move(pts), std::move(deficits),
                                {50.0, 50.0}, 2.7, 1.0, k);
}

tsp::TourProblem make_tour_problem(std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  tsp::TourProblem p;
  p.sites = geom::uniform_field(m, 100.0, 100.0, rng);
  for (std::size_t i = 0; i < m; ++i) {
    p.service.push_back(rng.uniform(0.0, 5400.0));
  }
  p.depot = {50.0, 50.0};
  return p;
}

void BM_UnitDiskGraph(benchmark::State& state) {
  Rng rng(1);
  const auto pts =
      geom::uniform_field(static_cast<std::size_t>(state.range(0)), 100.0,
                          100.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::unit_disk_graph(pts, 2.7));
  }
}
BENCHMARK(BM_UnitDiskGraph)->Arg(200)->Arg(600)->Arg(1200);

void BM_MaximalIndependentSet(benchmark::State& state) {
  Rng rng(2);
  const auto pts =
      geom::uniform_field(static_cast<std::size_t>(state.range(0)), 100.0,
                          100.0, rng);
  const auto g = graph::unit_disk_graph(pts, 2.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::maximal_independent_set(g));
  }
}
BENCHMARK(BM_MaximalIndependentSet)->Arg(200)->Arg(600)->Arg(1200);

void BM_OverlapGraph(benchmark::State& state) {
  const auto problem =
      make_round(static_cast<std::size_t>(state.range(0)), 2, 3);
  const auto gc = core::charging_graph(problem);
  const auto s_i = graph::maximal_independent_set(gc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::overlap_graph(problem, s_i));
  }
}
BENCHMARK(BM_OverlapGraph)->Arg(200)->Arg(600)->Arg(1200);

void BM_ExactMatching(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  const matching::WeightFn w = [&](std::uint32_t a, std::uint32_t b) {
    return geom::distance(pts[a], pts[b]);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::exact_min_weight_matching(n, w));
  }
}
BENCHMARK(BM_ExactMatching)->Arg(8)->Arg(12)->Arg(16);

void BM_LocalSearchMatching(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  const matching::WeightFn w = [&](std::uint32_t a, std::uint32_t b) {
    return geom::distance(pts[a], pts[b]);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::local_search_matching(n, w));
  }
}
BENCHMARK(BM_LocalSearchMatching)->Arg(50)->Arg(150)->Arg(400);

void BM_BlossomMatching(benchmark::State& state) {
  Rng rng(19);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  const matching::WeightFn w = [&](std::uint32_t a, std::uint32_t b) {
    return geom::distance(pts[a], pts[b]);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::blossom_min_weight_matching(n, w));
  }
}
BENCHMARK(BM_BlossomMatching)->Arg(50)->Arg(150)->Arg(256)
    ->Unit(benchmark::kMillisecond);

matching::MatchingOptions engine_options(std::int64_t engine) {
  matching::MatchingOptions opts;
  switch (engine) {
    case 0:
      opts.engine = matching::MatchingEngine::kDenseBlossom;
      break;
    case 1:
      opts.engine = matching::MatchingEngine::kSparseBlossom;
      break;
    default:
      opts.engine = matching::MatchingEngine::kLocalSearch;
      break;
  }
  return opts;
}

void BM_Blossom(benchmark::State& state) {
  // Engine shoot-out on uniform fields: arg0 = n, arg1 = engine
  // (0 = dense blossom, 1 = sparse price-and-repair, 2 = local search).
  // Dense is exact but O(n^2) memory / O(n^3) time, so its series stops
  // at 256; sparse and local search run through n = 4096.
  Rng rng(19);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  const auto opts = engine_options(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::min_weight_euclidean_matching(pts, opts));
  }
}
BENCHMARK(BM_Blossom)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Unit(benchmark::kMillisecond);

void BM_ChristofidesMatching(benchmark::State& state) {
  // The matching step alone, on the REAL odd-degree MST vertex set a
  // Christofides run produces over arg0 uniform sites (the odd set is
  // roughly 40% of the sites); arg1 = engine as in BM_Blossom.
  const auto p = make_tour_problem(static_cast<std::size_t>(state.range(0)), 6);
  p.ensure_distance_cache();
  std::vector<geom::Point> vertices = p.sites;
  vertices.insert(vertices.begin(), p.depot);
  const auto mst =
      graph::prim_mst(vertices.size(), [&](std::uint32_t a, std::uint32_t b) {
        return geom::distance(vertices[a], vertices[b]);
      });
  std::vector<std::size_t> degree(vertices.size(), 0);
  for (const auto& e : mst) {
    ++degree[e.u];
    ++degree[e.v];
  }
  std::vector<geom::Point> odd;
  for (std::size_t v = 0; v < vertices.size(); ++v) {
    if (degree[v] % 2 == 1) odd.push_back(vertices[v]);
  }
  const auto opts = engine_options(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(matching::min_weight_euclidean_matching(odd, opts));
  }
  state.counters["odd"] = static_cast<double>(odd.size());
}
BENCHMARK(BM_ChristofidesMatching)
    ->Args({350, 0})
    ->Args({350, 1})
    ->Args({350, 2})
    ->Args({1200, 0})
    ->Args({1200, 1})
    ->Args({1200, 2})
    ->Unit(benchmark::kMillisecond);

void BM_ChristofidesTour(benchmark::State& state) {
  const auto p =
      make_tour_problem(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsp::christofides_tour(p));
  }
}
BENCHMARK(BM_ChristofidesTour)->Arg(50)->Arg(150)->Arg(350);

void BM_TwoOpt(benchmark::State& state) {
  const auto p =
      make_tour_problem(static_cast<std::size_t>(state.range(0)), 7);
  const auto base = tsp::nearest_neighbor_tour(p);
  p.drop_distance_cache();  // measure the uncached (on-the-fly) hot path
  for (auto _ : state) {
    auto tour = base;
    benchmark::DoNotOptimize(tsp::two_opt(p, tour));
  }
}
BENCHMARK(BM_TwoOpt)->Arg(50)->Arg(150)->Arg(350)->Arg(1200);

void BM_TwoOptCached(benchmark::State& state) {
  // Identical workload to BM_TwoOpt, but served from the precomputed
  // distance matrix. Produces bit-identical tours; the delta between the
  // two benches is pure distance-recomputation overhead.
  const auto p =
      make_tour_problem(static_cast<std::size_t>(state.range(0)), 7);
  const auto base = tsp::nearest_neighbor_tour(p);
  p.ensure_distance_cache();
  for (auto _ : state) {
    auto tour = base;
    benchmark::DoNotOptimize(tsp::two_opt(p, tour));
  }
}
BENCHMARK(BM_TwoOptCached)->Arg(50)->Arg(150)->Arg(350)->Arg(1200);

void BM_OrOpt(benchmark::State& state) {
  const auto p =
      make_tour_problem(static_cast<std::size_t>(state.range(0)), 7);
  const auto base = tsp::nearest_neighbor_tour(p);
  p.drop_distance_cache();
  for (auto _ : state) {
    auto tour = base;
    benchmark::DoNotOptimize(tsp::or_opt(p, tour));
  }
}
BENCHMARK(BM_OrOpt)->Arg(50)->Arg(150)->Arg(350);

void BM_OrOptCached(benchmark::State& state) {
  const auto p =
      make_tour_problem(static_cast<std::size_t>(state.range(0)), 7);
  const auto base = tsp::nearest_neighbor_tour(p);
  p.ensure_distance_cache();
  for (auto _ : state) {
    auto tour = base;
    benchmark::DoNotOptimize(tsp::or_opt(p, tour));
  }
}
BENCHMARK(BM_OrOptCached)->Arg(50)->Arg(150)->Arg(350);

void BM_DistanceCacheBuild(benchmark::State& state) {
  const auto p =
      make_tour_problem(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    p.drop_distance_cache();
    p.ensure_distance_cache();
    benchmark::DoNotOptimize(p.distance(0, 1));
  }
}
BENCHMARK(BM_DistanceCacheBuild)->Arg(50)->Arg(150)->Arg(350)->Arg(1200);

// Raw kernel throughput of the SIMD layer (util/simd.h), independent of
// the TourProblem plumbing. The active backend is whatever dispatch
// picked (override with MCHARGE_SIMD=scalar|avx2|avx512 to compare).

void BM_SimdDistanceMatrix(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<double> xs(m), ys(m), out(m * m);
  for (std::size_t i = 0; i < m; ++i) {
    xs[i] = rng.uniform(0.0, 100.0);
    ys[i] = rng.uniform(0.0, 100.0);
  }
  for (auto _ : state) {
    simd::distance_matrix(xs.data(), ys.data(), m, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetLabel(simd::backend_name(simd::active_backend()));
}
BENCHMARK(BM_SimdDistanceMatrix)->Arg(350)->Arg(1200);

void BM_SimdArgminScan(benchmark::State& state) {
  // Fused distance + lowest-index argmin against a fixed query point, the
  // inner step of nearest_neighbor_tour and the assignment sweeps.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<double> xs(n), ys(n);
  std::vector<unsigned char> skip(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform(0.0, 100.0);
    ys[i] = rng.uniform(0.0, 100.0);
    skip[i] = rng.uniform(0.0, 1.0) < 0.5 ? 1 : 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::argmin_distance_masked(xs.data(), ys.data(), n, 50.0, 50.0,
                                     skip.data()));
  }
  state.SetLabel(simd::backend_name(simd::active_backend()));
}
BENCHMARK(BM_SimdArgminScan)->Arg(350)->Arg(1200);

void BM_MinMaxKTours(benchmark::State& state) {
  const auto p = make_tour_problem(300, 8);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsp::min_max_k_tours(p, k));
  }
}
BENCHMARK(BM_MinMaxKTours)->Arg(1)->Arg(2)->Arg(5);

void BM_SplitImprove(benchmark::State& state) {
  // min_max_k_tours with the per-segment improvement fanned out over
  // `jobs` workers (MinMaxTourOptions::jobs). The k segments improve
  // independently into their own slots, so the result is byte-identical
  // at every job count; on a multi-core machine jobs > 1 shows the
  // wall-clock headroom of the per-charger decomposition (this is the
  // planner's dominant parallel section).
  const auto p = make_tour_problem(600, 8);
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto jobs = static_cast<std::size_t>(state.range(1));
  tsp::MinMaxTourOptions options;
  options.jobs = jobs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsp::min_max_k_tours(p, k, options));
  }
}
BENCHMARK(BM_SplitImprove)
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond);

void BM_ApproPlan(benchmark::State& state) {
  const auto problem =
      make_round(static_cast<std::size_t>(state.range(0)), 2, 9);
  core::ApproScheduler appro;
  for (auto _ : state) {
    benchmark::DoNotOptimize(appro.plan(problem));
  }
}
BENCHMARK(BM_ApproPlan)->Arg(200)->Arg(600)->Arg(1200)
    ->Unit(benchmark::kMillisecond);

void BM_ApproPlanJobs(benchmark::State& state) {
  // Same plan as BM_ApproPlan/1200 (byte-identical by the determinism
  // contract) with the planner's parallel sections on `jobs` workers.
  // Kept separate from BM_ApproPlan so its single-argument series stays
  // comparable across BENCH_micro.json snapshots.
  const auto problem =
      make_round(static_cast<std::size_t>(state.range(0)), 2, 9);
  core::ApproScheduler appro;
  const auto jobs = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(appro.plan_with_jobs(problem, jobs));
  }
}
BENCHMARK(BM_ApproPlanJobs)
    ->Args({1200, 2})
    ->Args({1200, 8})
    ->Unit(benchmark::kMillisecond);

void BM_ApproInsertion(benchmark::State& state) {
  // The step-6 insertion phase in isolation: range(1) == 0 runs the
  // incremental path (cached f_N, dirty-set invalidation, suffix-only
  // finish recompute, tombstoned pending), range(1) == 1 the legacy
  // reference (full rescans + whole-tour recompute + mid-vector erase).
  // Both produce byte-identical plans (tests/appro_incremental_test.cpp);
  // the delta is the tentpole's insertion-phase win. Steps 1-5 are
  // included in both runs, so read the difference, not the ratio.
  const auto problem =
      make_round(static_cast<std::size_t>(state.range(0)), 2, 9);
  core::ApproOptions options;
  options.legacy_insertion = state.range(1) != 0;
  core::ApproScheduler appro(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(appro.plan(problem));
  }
  state.SetLabel(options.legacy_insertion ? "legacy" : "incremental");
}
BENCHMARK(BM_ApproInsertion)
    ->Args({600, 0})
    ->Args({600, 1})
    ->Args({1200, 0})
    ->Args({1200, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ApproPlanAndExecute(benchmark::State& state) {
  const auto problem =
      make_round(static_cast<std::size_t>(state.range(0)), 2, 10);
  core::ApproScheduler appro;
  for (auto _ : state) {
    const auto plan = appro.plan(problem);
    benchmark::DoNotOptimize(sched::execute_plan(problem, plan));
  }
}
BENCHMARK(BM_ApproPlanAndExecute)->Arg(200)->Arg(600)->Arg(1200)
    ->Unit(benchmark::kMillisecond);

void BM_ExecutePlanOnly(benchmark::State& state) {
  const auto problem =
      make_round(static_cast<std::size_t>(state.range(0)), 2, 11);
  core::ApproScheduler appro;
  const auto plan = appro.plan(problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::execute_plan(problem, plan));
  }
}
BENCHMARK(BM_ExecutePlanOnly)->Arg(200)->Arg(600)->Arg(1200);

void BM_Hungarian(benchmark::State& state) {
  Rng rng(12);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.uniform(0.0, 100.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(assignment::solve_assignment(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(16)->Arg(64)->Arg(256);

void BM_KMeans(benchmark::State& state) {
  Rng rng(13);
  const auto pts = geom::uniform_field(
      static_cast<std::size_t>(state.range(0)), 100.0, 100.0, rng);
  for (auto _ : state) {
    Rng seeder(14);
    benchmark::DoNotOptimize(cluster::kmeans(pts, 5, seeder));
  }
}
BENCHMARK(BM_KMeans)->Arg(200)->Arg(1200);

void BM_HeldKarp(benchmark::State& state) {
  const auto p =
      make_tour_problem(static_cast<std::size_t>(state.range(0)), 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsp::held_karp_travel_time(p));
  }
}
BENCHMARK(BM_HeldKarp)->Arg(10)->Arg(14)->Arg(17);

void BM_DelayLowerBound(benchmark::State& state) {
  const auto problem =
      make_round(static_cast<std::size_t>(state.range(0)), 2, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::delay_lower_bound(problem));
  }
}
BENCHMARK(BM_DelayLowerBound)->Arg(200)->Arg(1200);

void BM_ExactTinySolver(benchmark::State& state) {
  const auto problem =
      make_round(static_cast<std::size_t>(state.range(0)), 2, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exact_min_longest_delay(problem));
  }
}
BENCHMARK(BM_ExactTinySolver)->Arg(4)->Arg(5)->Arg(6);

void BM_ReplanMidRound(benchmark::State& state) {
  const auto problem =
      make_round(static_cast<std::size_t>(state.range(0)), 3, 18);
  core::ApproScheduler appro;
  const auto schedule = sched::execute_plan(problem, appro.plan(problem));
  const auto fleet = core::fleet_state_at(problem, schedule,
                                          0.4 * schedule.longest_delay());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::replan_from(problem, fleet));
  }
}
BENCHMARK(BM_ReplanMidRound)->Arg(200)->Arg(600)->Arg(1200)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelSweep(benchmark::State& state) {
  // One small figure-bench sweep point (3 instances x 5 algorithms, a
  // half-month horizon) under the given worker count. On a multi-core
  // machine the jobs > 1 runs show the wall-clock scaling of the
  // (instance, algorithm) work-item decomposition; the statistics are
  // byte-identical at every job count.
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const auto algorithms = bench::paper_algorithms();
  bench::SweepSettings settings;
  settings.instances = 3;
  settings.months = 0.5;
  settings.seed = 21;
  settings.jobs = jobs;
  model::NetworkConfig config;
  config.num_chargers = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench::run_point(settings, algorithms, [&](Rng& rng) {
          return model::make_instance(config, 200, rng);
        }));
  }
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_Simulate(benchmark::State& state) {
  // One month of simulated time under Appro at n sensors with the given
  // SimConfig::jobs (0 = all hardware threads). Exercises the SoA drain
  // scans (simd::crossing_min / simd::advance_select_below) plus the
  // per-round scheduling; results are byte-identical at every job count,
  // only the wall clock moves. shard_grain is left at its default, so
  // jobs > 1 only splits the scans once n clears it — exactly the
  // production heuristic under test.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto jobs = static_cast<std::size_t>(state.range(1));
  Rng rng(23);
  model::NetworkConfig config;
  config.num_chargers = 4;
  const auto instance = model::make_instance(config, n, rng);
  core::ApproScheduler appro;
  sim::SimConfig sim_config;
  sim_config.monitoring_period_s = 30.0 * 86400.0;
  sim_config.jobs = jobs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(instance, appro, sim_config));
  }
}
BENCHMARK(BM_Simulate)
    ->Args({200, 1})
    ->Args({1200, 1})
    ->Args({5000, 1})
    ->Args({5000, 0})
    ->Unit(benchmark::kMillisecond);

void BM_ObsOverhead(benchmark::State& state) {
  // Cost of the tracing layer on an instrumented end-to-end workload:
  // arg0 = 0 runs a full Appro plan with tracing off (only the per-site
  // static-init branch in the path), arg0 = 1 with tracing on (clock
  // reads + relaxed atomics at every span/counter). The contract is that
  // the enabled/disabled ratio stays within noise (< 1% overhead) —
  // scripts/check_trace.sh regression-checks exactly this pair. Under
  // -DMCHARGE_NO_OBS both variants time the macro-free binary.
  Rng rng(31);
  const auto pts = geom::uniform_field(400, 100.0, 100.0, rng);
  std::vector<double> deficits;
  deficits.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  auto pts_copy = pts;
  const model::ChargingProblem problem(std::move(pts_copy),
                                       std::move(deficits), {50.0, 50.0},
                                       2.7, 1.0, 3);
  obs::reset();
  const obs::EnabledScope scope(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ApproScheduler().plan(problem));
  }
}
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

// google-benchmark owns argv (and rejects unknown --flags), so the
// tracing hookup rides on the environment instead: MCHARGE_TRACE_OUT=PATH
// enables the obs layer for the whole run and writes the accumulated
// TraceReport as mcharge.trace.v1 JSON on exit. scripts/check_trace.sh
// uses this to diff span timings against the benches measuring the same
// code (e.g. appro.plan vs BM_ApproPlan).
int main(int argc, char** argv) {
  const char* trace_out = std::getenv("MCHARGE_TRACE_OUT");
  if (trace_out != nullptr && trace_out[0] != '\0') {
    mcharge::obs::reset();
    mcharge::obs::set_enabled(true);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (trace_out != nullptr && trace_out[0] != '\0') {
    mcharge::obs::set_enabled(false);
    if (mcharge::obs::write_trace_json(trace_out)) {
      std::fprintf(stderr, "trace: wrote %s\n", trace_out);
    } else {
      std::fprintf(stderr, "trace: FAILED to write %s\n", trace_out);
      return 1;
    }
  }
  return 0;
}
