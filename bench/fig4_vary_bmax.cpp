// Reproduces Fig. 4 of the paper: the five algorithms as the maximum data
// rate b_max sweeps 10..50 kbps with n = 1000 sensors and K = 2 chargers
// (b_min stays 1 kbps).
//   (a) average longest tour duration;  (b) average dead duration/sensor.
//
// Extra flags: --n=1000 --chargers=2
#include "figure_common.h"
#include "trace_common.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const bench::TraceOutput trace(flags);
  const auto settings = bench::SweepSettings::from_flags(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 1000));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 2));

  bench::FigureSweep sweep("Fig. 4", "b_max_kbps", settings);
  for (int bmax_kbps = 10; bmax_kbps <= 50; bmax_kbps += 10) {
    std::fprintf(stderr, "fig4: b_max = %d kbps ...\n", bmax_kbps);
    model::NetworkConfig config;
    config.num_chargers = k;
    config.rate_max_bps = bmax_kbps * 1e3;
    sweep.add_point(std::to_string(bmax_kbps), [&](Rng& rng) {
      return model::make_instance(config, n, rng, settings.layout);
    });
  }
  return sweep.finish();
}
