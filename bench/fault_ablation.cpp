// Recovery-policy ablation under rising MCV breakdown rates.
//
// Sweeps the per-round breakdown probability over {0, 0.1, 0.25, 0.5} with
// travel/charging jitter and dispatch delays switched on, and runs the
// year-long simulation under each RecoveryPolicy (defer / graft / replan)
// with algorithm Appro. Reported per cell: dead minutes per sensor, mean
// longest tour, total breakdowns, orphans recovered vs deferred, and the
// extra delay the recovery itself cost. The bench hard-fails if any
// executed (possibly partial) schedule has verifier violations or a run
// hits the max_rounds safety cap — the acceptance gate for the fault layer.
//
// Flags: --n=400 --chargers=3 --instances=5 --months=6 --seed=1
//        --fault-seed=1 --jobs=0 [--csv=PREFIX]
// (--jobs: worker threads; 0 = all hardware threads. Output is identical
// for every job count — each (policy, rate, instance) work item reseeds
// itself from the instance index alone.)
#include <cstdio>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "core/appro.h"
#include "core/replan.h"
#include "model/network.h"
#include "sim/simulation.h"
#include "trace_common.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const bench::TraceOutput trace(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 400));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 3));
  const auto instances =
      static_cast<std::size_t>(flags.get_int("instances", 5));
  const double months = flags.get_double("months", 6.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto fault_seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
  const auto jobs = static_cast<std::size_t>(flags.get_int("jobs", 0));
  const std::string csv = flags.get("csv", "");

  struct Policy {
    const char* name;
    core::RecoveryPolicy policy;
  };
  const Policy policies[] = {
      {"defer", core::RecoveryPolicy::kDefer},
      {"graft", core::RecoveryPolicy::kGraft},
      {"replan", core::RecoveryPolicy::kReplan},
  };
  const double rates[] = {0.0, 0.1, 0.25, 0.5};
  constexpr std::size_t kNumPolicies = std::size(policies);
  constexpr std::size_t kNumRates = std::size(rates);

  struct Item {
    double dead_min = 0.0;
    double tour_h = 0.0;
    double breakdowns = 0.0;
    double recovered = 0.0;
    double deferred = 0.0;
    double extra_delay_min = 0.0;
    std::size_t violations = 0;
    bool capped = false;  ///< hit max_rounds — invalidates the run
  };

  core::ApproScheduler appro;
  // One work item per (policy, rate, instance): the instance regenerates
  // from the instance index alone, so every (policy, rate) cell simulates
  // the same instance stream under the same fault stream — the policies
  // face identical breakdowns.
  std::vector<Item> items(kNumPolicies * kNumRates * instances);
  parallel_for(
      items.size(),
      [&](std::size_t idx) {
        const std::size_t p = idx / (kNumRates * instances);
        const std::size_t r = idx / instances % kNumRates;
        const std::size_t i = idx % instances;
        model::NetworkConfig config;
        config.num_chargers = k;
        Rng rng(derive_seed(seed, i));
        const auto instance = model::make_instance(config, n, rng);
        sim::SimConfig sim_config;
        sim_config.monitoring_period_s = months * 30.0 * 86400.0;
        sim_config.faults.seed = derive_seed(fault_seed, i);
        sim_config.faults.mcv_breakdown_prob = rates[r];
        sim_config.faults.travel_jitter = 0.1;
        sim_config.faults.charge_jitter = 0.05;
        sim_config.faults.dispatch_delay_prob = 0.1;
        sim_config.faults.dispatch_delay_max_s = 1800.0;
        sim_config.recovery = policies[p].policy;
        const auto result = sim::simulate(instance, appro, sim_config);
        Item& item = items[idx];
        item.dead_min = result.mean_dead_minutes_per_sensor;
        item.tour_h = result.mean_longest_delay_hours();
        item.breakdowns = static_cast<double>(result.mcv_breakdowns);
        item.recovered = static_cast<double>(result.recovered_sensors);
        item.deferred = static_cast<double>(result.deferred_sensors);
        item.extra_delay_min = result.extra_recovery_delay_s / 60.0;
        item.violations = result.verify_violations;
        item.capped =
            result.truncated_reason == sim::TruncationReason::kMaxRounds;
      },
      jobs);

  std::size_t violations = 0;
  std::size_t capped = 0;
  for (const Item& item : items) {
    violations += item.violations;
    if (item.capped) ++capped;
  }

  Table table({"policy", "p_break", "dead_min", "tour_h", "breakdowns",
               "recovered", "deferred", "extra_delay_min"});
  for (std::size_t p = 0; p < kNumPolicies; ++p) {
    for (std::size_t r = 0; r < kNumRates; ++r) {
      Item mean;
      for (std::size_t i = 0; i < instances; ++i) {
        const Item& item = items[(p * kNumRates + r) * instances + i];
        mean.dead_min += item.dead_min;
        mean.tour_h += item.tour_h;
        mean.breakdowns += item.breakdowns;
        mean.recovered += item.recovered;
        mean.deferred += item.deferred;
        mean.extra_delay_min += item.extra_delay_min;
      }
      const double d = static_cast<double>(instances);
      table.start_row();
      table.add(policies[p].name);
      table.add(rates[r], 2);
      table.add(mean.dead_min / d, 1);
      table.add(mean.tour_h / d, 2);
      table.add(mean.breakdowns / d, 1);
      table.add(mean.recovered / d, 1);
      table.add(mean.deferred / d, 1);
      table.add(mean.extra_delay_min / d, 1);
    }
  }

  std::printf("\nrecovery-policy ablation: Appro, n=%zu, K=%zu, "
              "%.1f-month horizon, %zu instance(s)/cell\n",
              n, k, months, instances);
  std::printf("jitter: travel 10%%, charge 5%%; dispatch delay: "
              "p=0.1, <=30 min\n");
  table.print(std::cout);
  std::printf("\nschedule verifier violations across all runs: %zu\n",
              violations);
  if (!csv.empty()) {
    table.write_csv(csv + ".csv");
    std::printf("CSV written to %s.csv\n", csv.c_str());
  }
  if (violations > 0) {
    std::fprintf(stderr, "FAIL: verifier violations under faults\n");
    return 1;
  }
  if (capped > 0) {
    std::fprintf(stderr, "FAIL: %zu run(s) hit the max_rounds cap\n", capped);
    return 1;
  }
  return 0;
}
