// Recovery-policy ablation under rising MCV breakdown rates.
//
// Sweeps the per-round breakdown probability over {0, 0.1, 0.25, 0.5} with
// travel/charging jitter and dispatch delays switched on, and runs the
// year-long simulation under each RecoveryPolicy (defer / graft / replan)
// with algorithm Appro. Reported per cell: dead minutes per sensor, mean
// longest tour, total breakdowns, orphans recovered vs deferred, and the
// extra delay the recovery itself cost. The bench hard-fails if any
// executed (possibly partial) schedule has verifier violations or a run
// hits the max_rounds safety cap — the acceptance gate for the fault layer.
//
// A second table sweeps the MCV battery budget instead of the breakdown
// rate: a metering pass per instance (capacity pinned effectively
// unlimited, record_tour_energy on) captures every per-tour energy draw,
// then each policy re-runs the simulation with the capacity pinned to
// the {1.0, 0.95, 0.85} quantiles of that distribution. Breakdown
// coin-flips are off in this table so every abort is a battery
// exhaustion; the tightest budget must abort at least 10% of tours or
// the bench fails — the acceptance gate for the energy layer.
//
// Flags: --n=400 --chargers=3 --instances=5 --months=6 --seed=1
//        --fault-seed=1 --jobs=0 --mcv-budget=J --budget-sweep=1
//        [--csv=PREFIX]
// (--jobs: worker threads; 0 = all hardware threads. Output is identical
// for every job count — each (policy, rate, instance) work item reseeds
// itself from the instance index alone. --mcv-budget: fixed capacity in
// joules for the breakdown-rate table, 0 = unlimited. --budget-sweep=0
// skips the budget table.)
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "core/appro.h"
#include "core/replan.h"
#include "model/network.h"
#include "sim/simulation.h"
#include "trace_common.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const bench::TraceOutput trace(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 400));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 3));
  const auto instances =
      static_cast<std::size_t>(flags.get_int("instances", 5));
  const double months = flags.get_double("months", 6.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto fault_seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
  const auto jobs = static_cast<std::size_t>(flags.get_int("jobs", 0));
  const double mcv_budget_j = flags.get_double("mcv-budget", 0.0);
  const bool budget_sweep = flags.get_int("budget-sweep", 1) != 0;
  const std::string csv = flags.get("csv", "");

  struct Policy {
    const char* name;
    core::RecoveryPolicy policy;
  };
  const Policy policies[] = {
      {"defer", core::RecoveryPolicy::kDefer},
      {"graft", core::RecoveryPolicy::kGraft},
      {"replan", core::RecoveryPolicy::kReplan},
  };
  const double rates[] = {0.0, 0.1, 0.25, 0.5};
  constexpr std::size_t kNumPolicies = std::size(policies);
  constexpr std::size_t kNumRates = std::size(rates);

  struct Item {
    double dead_min = 0.0;
    double tour_h = 0.0;
    double breakdowns = 0.0;
    double recovered = 0.0;
    double deferred = 0.0;
    double extra_delay_min = 0.0;
    std::size_t violations = 0;
    bool capped = false;  ///< hit max_rounds — invalidates the run
  };

  core::ApproScheduler appro;
  // One work item per (policy, rate, instance): the instance regenerates
  // from the instance index alone, so every (policy, rate) cell simulates
  // the same instance stream under the same fault stream — the policies
  // face identical breakdowns.
  std::vector<Item> items(kNumPolicies * kNumRates * instances);
  parallel_for(
      items.size(),
      [&](std::size_t idx) {
        const std::size_t p = idx / (kNumRates * instances);
        const std::size_t r = idx / instances % kNumRates;
        const std::size_t i = idx % instances;
        model::NetworkConfig config;
        config.num_chargers = k;
        Rng rng(derive_seed(seed, i));
        const auto instance = model::make_instance(config, n, rng);
        sim::SimConfig sim_config;
        sim_config.monitoring_period_s = months * 30.0 * 86400.0;
        sim_config.faults.seed = derive_seed(fault_seed, i);
        sim_config.faults.mcv_breakdown_prob = rates[r];
        sim_config.faults.travel_jitter = 0.1;
        sim_config.faults.charge_jitter = 0.05;
        sim_config.faults.dispatch_delay_prob = 0.1;
        sim_config.faults.dispatch_delay_max_s = 1800.0;
        sim_config.recovery = policies[p].policy;
        sim_config.mcv_budget.capacity_j = mcv_budget_j;
        const auto result = sim::simulate(instance, appro, sim_config);
        Item& item = items[idx];
        item.dead_min = result.mean_dead_minutes_per_sensor;
        item.tour_h = result.mean_longest_delay_hours();
        item.breakdowns = static_cast<double>(result.mcv_breakdowns);
        item.recovered = static_cast<double>(result.recovered_sensors);
        item.deferred = static_cast<double>(result.deferred_sensors);
        item.extra_delay_min = result.extra_recovery_delay_s / 60.0;
        item.violations = result.verify_violations;
        item.capped =
            result.truncated_reason == sim::TruncationReason::kMaxRounds;
      },
      jobs);

  std::size_t violations = 0;
  std::size_t capped = 0;
  for (const Item& item : items) {
    violations += item.violations;
    if (item.capped) ++capped;
  }

  Table table({"policy", "p_break", "dead_min", "tour_h", "breakdowns",
               "recovered", "deferred", "extra_delay_min"});
  for (std::size_t p = 0; p < kNumPolicies; ++p) {
    for (std::size_t r = 0; r < kNumRates; ++r) {
      Item mean;
      for (std::size_t i = 0; i < instances; ++i) {
        const Item& item = items[(p * kNumRates + r) * instances + i];
        mean.dead_min += item.dead_min;
        mean.tour_h += item.tour_h;
        mean.breakdowns += item.breakdowns;
        mean.recovered += item.recovered;
        mean.deferred += item.deferred;
        mean.extra_delay_min += item.extra_delay_min;
      }
      const double d = static_cast<double>(instances);
      table.start_row();
      table.add(policies[p].name);
      table.add(rates[r], 2);
      table.add(mean.dead_min / d, 1);
      table.add(mean.tour_h / d, 2);
      table.add(mean.breakdowns / d, 1);
      table.add(mean.recovered / d, 1);
      table.add(mean.deferred / d, 1);
      table.add(mean.extra_delay_min / d, 1);
    }
  }

  std::printf("\nrecovery-policy ablation: Appro, n=%zu, K=%zu, "
              "%.1f-month horizon, %zu instance(s)/cell\n",
              n, k, months, instances);
  std::printf("jitter: travel 10%%, charge 5%%; dispatch delay: "
              "p=0.1, <=30 min\n");
  table.print(std::cout);
  std::printf("\nschedule verifier violations across all runs: %zu\n",
              violations);
  if (!csv.empty()) {
    table.write_csv(csv + ".csv");
    std::printf("CSV written to %s.csv\n", csv.c_str());
  }

  // --- MCV battery-budget sweep -------------------------------------------
  // Calibrates per instance: a metering run with an effectively unlimited
  // capacity records every per-tour draw, and the sweep places the
  // capacity at quantiles of that distribution. Coin-flip breakdowns stay
  // off so every abort in this table is a battery exhaustion, which keeps
  // the abort column attributable to the budget alone.
  bool budget_fail = false;
  if (budget_sweep) {
    const double quantiles[] = {1.0, 0.95, 0.85};
    constexpr std::size_t kNumFactors = std::size(quantiles);
    const auto base_sim_config = [&](std::size_t i) {
      sim::SimConfig sc;
      sc.monitoring_period_s = months * 30.0 * 86400.0;
      sc.faults.seed = derive_seed(fault_seed, i);
      sc.faults.travel_jitter = 0.1;
      sc.faults.charge_jitter = 0.05;
      sc.faults.dispatch_delay_prob = 0.1;
      sc.faults.dispatch_delay_max_s = 1800.0;
      return sc;
    };

    // Metering pass: one run per instance, capacity high enough that
    // nothing aborts (1e15 J keeps spent() exact to sub-joule ulps), with
    // record_tour_energy on to capture every per-tour draw unconstrained.
    // The sweep anchors the capacity on quantiles of that distribution: a
    // capacity at quantile q leaves roughly a (1-q) fraction of the
    // metered tours infeasible, so cap_q = 0.85 starves ~15% of tours on
    // the first pass and deferral load can only push that up. The two
    // naive anchors both fail: the peak alone (all cap_q = 1.0 rows)
    // starves only the extreme tail (< 1% aborts), while the mean sits so
    // deep in the distribution that deferrals cascade and every row
    // saturates near 100% aborts.
    std::vector<std::vector<double>> draws(instances);
    parallel_for(
        instances,
        [&](std::size_t i) {
          model::NetworkConfig config;
          config.num_chargers = k;
          Rng rng(derive_seed(seed, i));
          const auto instance = model::make_instance(config, n, rng);
          sim::SimConfig sc = base_sim_config(i);
          sc.mcv_budget.capacity_j = 1e15;
          sc.record_tour_energy = true;
          auto r = sim::simulate(instance, appro, sc);
          draws[i] = std::move(r.mcv_tour_energy_j);
          std::sort(draws[i].begin(), draws[i].end());
        },
        jobs);
    const auto quantile_j = [&](std::size_t i, double q) {
      const auto& d = draws[i];
      if (d.empty()) return 0.0;
      const double pos = q * static_cast<double>(d.size() - 1);
      return d[static_cast<std::size_t>(pos)];
    };

    struct BudgetItem {
      double dead_min = 0.0;
      double tour_h = 0.0;
      double energy_aborts = 0.0;
      double abort_frac = 0.0;
      double extra_delay_min = 0.0;
      std::size_t violations = 0;
      bool capped = false;
    };
    std::vector<BudgetItem> bitems(kNumPolicies * kNumFactors * instances);
    parallel_for(
        bitems.size(),
        [&](std::size_t idx) {
          const std::size_t p = idx / (kNumFactors * instances);
          const std::size_t f = idx / instances % kNumFactors;
          const std::size_t i = idx % instances;
          model::NetworkConfig config;
          config.num_chargers = k;
          Rng rng(derive_seed(seed, i));
          const auto instance = model::make_instance(config, n, rng);
          sim::SimConfig sc = base_sim_config(i);
          sc.recovery = policies[p].policy;
          sc.mcv_budget.capacity_j = quantile_j(i, quantiles[f]);
          const auto r = sim::simulate(instance, appro, sc);
          BudgetItem& item = bitems[idx];
          item.dead_min = r.mean_dead_minutes_per_sensor;
          item.tour_h = r.mean_longest_delay_hours();
          item.energy_aborts = static_cast<double>(r.mcv_energy_exhausted);
          const double tours =
              static_cast<double>(r.rounds) * static_cast<double>(k);
          item.abort_frac =
              tours > 0.0 ? item.energy_aborts / tours : 0.0;
          item.extra_delay_min = r.extra_recovery_delay_s / 60.0;
          item.violations = r.verify_violations;
          item.capped =
              r.truncated_reason == sim::TruncationReason::kMaxRounds;
        },
        jobs);

    Table budget_table({"policy", "cap_q", "dead_min", "tour_h",
                        "energy_aborts", "abort_pct", "extra_delay_min"});
    double tightest_abort_frac = 0.0;
    for (std::size_t p = 0; p < kNumPolicies; ++p) {
      for (std::size_t f = 0; f < kNumFactors; ++f) {
        BudgetItem mean;
        for (std::size_t i = 0; i < instances; ++i) {
          const BudgetItem& item =
              bitems[(p * kNumFactors + f) * instances + i];
          mean.dead_min += item.dead_min;
          mean.tour_h += item.tour_h;
          mean.energy_aborts += item.energy_aborts;
          mean.abort_frac += item.abort_frac;
          mean.extra_delay_min += item.extra_delay_min;
          violations += item.violations;
          if (item.capped) ++capped;
        }
        const double d = static_cast<double>(instances);
        if (f == kNumFactors - 1) {
          tightest_abort_frac = std::max(tightest_abort_frac,
                                         mean.abort_frac / d);
        }
        budget_table.start_row();
        budget_table.add(policies[p].name);
        budget_table.add(quantiles[f], 2);
        budget_table.add(mean.dead_min / d, 1);
        budget_table.add(mean.tour_h / d, 2);
        budget_table.add(mean.energy_aborts / d, 1);
        budget_table.add(100.0 * mean.abort_frac / d, 1);
        budget_table.add(mean.extra_delay_min / d, 1);
      }
    }

    std::printf("\nMCV battery-budget sweep: capacity = the cap_q quantile "
                "of the metered per-tour draws,\nbreakdown coin-flips off "
                "(every abort below is a battery exhaustion)\n");
    budget_table.print(std::cout);
    if (!csv.empty()) {
      budget_table.write_csv(csv + "_budget.csv");
      std::printf("CSV written to %s_budget.csv\n", csv.c_str());
    }
    if (tightest_abort_frac < 0.10) {
      std::fprintf(stderr,
                   "FAIL: tightest budget aborted only %.1f%% of tours "
                   "(want >= 10%%)\n",
                   100.0 * tightest_abort_frac);
      budget_fail = true;
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "FAIL: verifier violations under faults\n");
    return 1;
  }
  if (capped > 0) {
    std::fprintf(stderr, "FAIL: %zu run(s) hit the max_rounds cap\n", capped);
    return 1;
  }
  return budget_fail ? 1 : 0;
}
