// Reproduces Fig. 5 of the paper: the five algorithms as the number of
// mobile chargers K sweeps 1..5 with n = 1000 sensors.
//   (a) average longest tour duration;  (b) average dead duration/sensor.
//
// Extra flags: --n=1000 --kmax=5
#include "figure_common.h"
#include "trace_common.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const bench::TraceOutput trace(flags);
  const auto settings = bench::SweepSettings::from_flags(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 1000));
  const auto k_max = static_cast<std::size_t>(flags.get_int("kmax", 5));

  bench::FigureSweep sweep("Fig. 5", "K", settings);
  for (std::size_t k = 1; k <= k_max; ++k) {
    std::fprintf(stderr, "fig5: K = %zu ...\n", k);
    model::NetworkConfig config;
    config.num_chargers = k;
    sweep.add_point(std::to_string(k), [&](Rng& rng) {
      return model::make_instance(config, n, rng, settings.layout);
    });
  }
  return sweep.finish();
}
