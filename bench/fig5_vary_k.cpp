// Reproduces Fig. 5 of the paper: the five algorithms as the number of
// mobile chargers K sweeps 1..5 with n = 1000 sensors.
//   (a) average longest tour duration;  (b) average dead duration/sensor.
//
// Extra flags: --n=1000 --kmax=5
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const auto settings = bench::SweepSettings::from_flags(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 1000));
  const auto k_max = static_cast<std::size_t>(flags.get_int("kmax", 5));

  const auto algorithms = bench::paper_algorithms();
  std::vector<std::string> labels;
  std::vector<bench::PointResult> points;
  for (std::size_t k = 1; k <= k_max; ++k) {
    std::fprintf(stderr, "fig5: K = %zu ...\n", k);
    model::NetworkConfig config;
    config.num_chargers = k;
    points.push_back(bench::run_point(
        settings, algorithms,
        [&](Rng& rng) {
          return model::make_instance(config, n, rng, settings.layout);
        }));
    labels.push_back(std::to_string(k));
  }
  bench::emit_figure("Fig. 5", "K", labels, algorithms, points, settings);
  return 0;
}
