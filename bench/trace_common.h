// --trace-out=PATH support for the figure / ablation / fault benches.
//
// Constructing a TraceOutput from the parsed CliFlags turns the tracing
// layer (src/obs) on for the rest of main() when the flag is present; on
// destruction the accumulated TraceReport is written as versioned JSON
// (schema "mcharge.trace.v1") to PATH and a one-line note goes to stderr.
// stdout is never touched, so the benches' CSV/figure output is
// unchanged — and because observation is behavioral no-op by contract
// (see tests/obs_test.cpp), the numbers in that output are too. Without
// the flag (or under -DMCHARGE_NO_OBS=ON, where the report is empty and
// tracing is compiled out) this is inert.
#pragma once

#include <cstdio>
#include <string>

#include "obs/obs.h"
#include "util/cli.h"

namespace mcharge::bench {

class TraceOutput {
 public:
  explicit TraceOutput(const CliFlags& flags)
      : path_(flags.get("trace-out", "")) {
    if (!path_.empty()) {
      obs::reset();
      obs::set_enabled(true);
    }
  }

  ~TraceOutput() {
    if (path_.empty()) return;
    obs::set_enabled(false);
    if (obs::write_trace_json(path_)) {
      std::fprintf(stderr, "trace: wrote %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "trace: FAILED to write %s\n", path_.c_str());
    }
  }

  TraceOutput(const TraceOutput&) = delete;
  TraceOutput& operator=(const TraceOutput&) = delete;

 private:
  std::string path_;
};

}  // namespace mcharge::bench
