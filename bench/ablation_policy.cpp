// Dispatch-policy ablation: on-demand fleet departures (the paper's
// implicit policy) versus epoch-based departures (daily / weekly), under
// algorithm Appro and the strongest one-to-one baseline.
//
// Epochs trade request latency for batch size — and batch size is what
// multi-node charging feeds on: large epochs concentrate requests so each
// sojourn charges more sensors. The bench quantifies both sides (dead time
// up, tour efficiency up).
//
// Flags: --n=1000 --chargers=2 --instances=5 --months=12 --seed=1 --jobs=0
//        --plan-jobs=0 [--shard=i/N --chunk=PATH]
// (--jobs: worker threads; 0 = all hardware threads. Output is identical
// for every job count — each (algorithm, policy, instance) work item
// reseeds itself from the instance index alone. --plan-jobs: worker
// threads inside each scheduler invocation, also output-identical for
// every value; 0 = the scheduler's own configuration. --shard/--chunk: compute
// only this shard's items and write a chunk file for merge_shards; the
// merged table is byte-identical to unsharded.)
#include <cstdio>
#include <iostream>
#include <iterator>
#include <vector>

#include "ablation_common.h"

#include "baselines/kminmax.h"
#include "core/appro.h"
#include "model/network.h"
#include "sim/simulation.h"
#include "trace_common.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const bench::TraceOutput trace(flags);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 1000));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 2));
  const auto instances =
      static_cast<std::size_t>(flags.get_int("instances", 5));
  const double months = flags.get_double("months", 12.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto jobs = static_cast<std::size_t>(flags.get_int("jobs", 0));
  const auto plan_jobs =
      static_cast<std::size_t>(flags.get_int("plan-jobs", 0));
  const auto shard = bench::ShardSpec::from_flags(flags);

  struct Policy {
    const char* name;
    double epoch_s;
  };
  const Policy policies[] = {
      {"on-demand", 0.0},
      {"epoch=6h", 6.0 * 3600.0},
      {"epoch=1d", 86400.0},
      {"epoch=3d", 3.0 * 86400.0},
  };

  core::ApproScheduler appro;
  baselines::KMinMaxScheduler kminmax;
  const sched::Scheduler* algorithms[] = {
      static_cast<const sched::Scheduler*>(&appro),
      static_cast<const sched::Scheduler*>(&kminmax)};
  constexpr std::size_t kNumAlgos = std::size(algorithms);
  constexpr std::size_t kNumPolicies = std::size(policies);

  // One work item per (algorithm, policy, instance) triple; the instance
  // is regenerated from a seed derived from its index alone, so every
  // (algorithm, policy) cell simulates the same instance stream.
  std::vector<bench::PolicyItem> items(kNumAlgos * kNumPolicies * instances);
  parallel_for(
      items.size(),
      [&](std::size_t idx) {
        if (!shard.mine(idx)) return;
        const std::size_t a = idx / (kNumPolicies * instances);
        const std::size_t p = idx / instances % kNumPolicies;
        const std::size_t i = idx % instances;
        model::NetworkConfig config;
        config.num_chargers = k;
        Rng rng(derive_seed(seed, i));
        const auto instance = model::make_instance(config, n, rng);
        sim::SimConfig sim_config;
        sim_config.monitoring_period_s = months * 30.0 * 86400.0;
        sim_config.dispatch_epoch_s = policies[p].epoch_s;
        sim_config.record_rounds = true;
        sim_config.plan_jobs = plan_jobs;
        const auto r = sim::simulate(instance, *algorithms[a], sim_config);
        bench::PolicyItem& item = items[idx];
        item.rounds = static_cast<double>(r.rounds);
        item.batch = r.round_batch_size.mean();
        item.tour_h = r.mean_longest_delay_hours();
        item.dead_min = r.mean_dead_minutes_per_sensor;
        // Multi-node efficiency proxy: charge events per... sojourn stops
        // are not directly in SimResult; batch/charged ratio suffices.
        double charged = 0.0, batches = 0.0;
        for (const auto& round : r.rounds_log) {
          charged += static_cast<double>(round.charged);
          batches += static_cast<double>(round.batch);
        }
        item.stops_ratio = batches > 0.0 ? charged / batches : 1.0;
        item.present = true;
      },
      jobs);

  std::vector<std::string> algo_names;
  for (const auto* algo : algorithms) algo_names.push_back(algo->name());
  std::vector<std::string> policy_names;
  for (const auto& policy : policies) policy_names.push_back(policy.name);

  if (shard.active()) {
    bench::ChunkFile chunk;
    chunk.kind = "ablation_policy";
    chunk.seed = seed;
    chunk.instances = instances;
    chunk.months = months;
    chunk.shard_index = shard.index;
    chunk.shard_count = shard.count;
    chunk.params = {{"n", std::to_string(n)},
                    {"chargers", std::to_string(k)}};
    chunk.algo_names = algo_names;
    chunk.labels = policy_names;
    for (std::size_t a = 0; a < kNumAlgos; ++a) {
      for (std::size_t p = 0; p < kNumPolicies; ++p) {
        for (std::size_t i = 0; i < instances; ++i) {
          const bench::PolicyItem& item =
              items[(a * kNumPolicies + p) * instances + i];
          if (!item.present) continue;
          chunk.items.push_back({p, i, a, 0,
                                 {item.rounds, item.batch, item.tour_h,
                                  item.dead_min, item.stops_ratio}});
        }
      }
    }
    return bench::finish_shard(shard, chunk);
  }

  bench::emit_policy_ablation(n, k, instances, months, algo_names,
                              policy_names, items);
  return 0;
}
