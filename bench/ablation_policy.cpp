// Dispatch-policy ablation: on-demand fleet departures (the paper's
// implicit policy) versus epoch-based departures (daily / weekly), under
// algorithm Appro and the strongest one-to-one baseline.
//
// Epochs trade request latency for batch size — and batch size is what
// multi-node charging feeds on: large epochs concentrate requests so each
// sojourn charges more sensors. The bench quantifies both sides (dead time
// up, tour efficiency up).
//
// Flags: --n=1000 --chargers=2 --instances=5 --months=12 --seed=1
#include <cstdio>
#include <iostream>

#include "baselines/kminmax.h"
#include "core/appro.h"
#include "model/network.h"
#include "sim/simulation.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 1000));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 2));
  const auto instances =
      static_cast<std::size_t>(flags.get_int("instances", 5));
  const double months = flags.get_double("months", 12.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  struct Policy {
    const char* name;
    double epoch_s;
  };
  const Policy policies[] = {
      {"on-demand", 0.0},
      {"epoch=6h", 6.0 * 3600.0},
      {"epoch=1d", 86400.0},
      {"epoch=3d", 3.0 * 86400.0},
  };

  core::ApproScheduler appro;
  baselines::KMinMaxScheduler kminmax;

  Table table({"algorithm", "policy", "rounds", "mean_batch",
               "mean_tour_h", "dead_min_per_sensor", "charged_per_batch"});
  for (const sched::Scheduler* algo :
       {static_cast<const sched::Scheduler*>(&appro),
        static_cast<const sched::Scheduler*>(&kminmax)}) {
    for (const Policy& policy : policies) {
      RunningStats rounds, batch, tour, dead, stops_ratio;
      for (std::size_t i = 0; i < instances; ++i) {
        model::NetworkConfig config;
        config.num_chargers = k;
        Rng rng(seed * 1201 + i * 37);
        const auto instance = model::make_instance(config, n, rng);
        sim::SimConfig sim_config;
        sim_config.monitoring_period_s = months * 30.0 * 86400.0;
        sim_config.dispatch_epoch_s = policy.epoch_s;
        sim_config.record_rounds = true;
        const auto r = sim::simulate(instance, *algo, sim_config);
        rounds.add(static_cast<double>(r.rounds));
        batch.add(r.round_batch_size.mean());
        tour.add(r.mean_longest_delay_hours());
        dead.add(r.mean_dead_minutes_per_sensor);
        // Multi-node efficiency proxy: charge events per... sojourn stops
        // are not directly in SimResult; batch/charged ratio suffices.
        double charged = 0.0, batches = 0.0;
        for (const auto& round : r.rounds_log) {
          charged += static_cast<double>(round.charged);
          batches += static_cast<double>(round.batch);
        }
        stops_ratio.add(batches > 0.0 ? charged / batches : 1.0);
      }
      table.start_row();
      table.add(algo->name());
      table.add(policy.name);
      table.add(rounds.mean(), 0);
      table.add(batch.mean(), 1);
      table.add(tour.mean(), 2);
      table.add(dead.mean(), 1);
      table.add(stops_ratio.mean(), 3);
    }
  }
  std::printf("Dispatch-policy ablation: n=%zu, K=%zu, %zu instance(s), "
              "%.1f months\n\n",
              n, k, instances, months);
  table.print(std::cout);
  return 0;
}
