// Differential tests for the incremental planner hot path.
//
// Two independent reference implementations are frozen in this file:
//  * ApproOptions::legacy_insertion — the O(|P|^2 * deg) insertion phase
//    (full f_N rescans, whole-tour finish recomputation, mid-vector
//    erase), kept alive in src/core/appro.cpp behind the flag;
//  * reference::two_opt / or_opt / improve_tour — the pre-cache restart
//    loops, copied verbatim from the original src/tsp/improve.cpp.
//
// The claim under test is BITWISE identity, the repo-wide determinism
// contract: the incremental insertion, the exact-replay local-search
// caches, and every jobs / SIMD-backend setting must reproduce the
// reference plans and tours bit for bit — same tours, same stats, same
// gains — across problem sizes, insertion rules and seeds. memcmp on a
// flat serialization keeps the comparison honest (no epsilon anywhere).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/appro.h"
#include "model/charging_problem.h"
#include "tsp/improve.h"
#include "tsp/tour_problem.h"
#include "util/rng.h"
#include "util/simd.h"

namespace mcharge {
namespace {

/// Pins a backend for a scope; restores the previous one on exit.
class BackendGuard {
 public:
  explicit BackendGuard(simd::Backend b) : prev_(simd::active_backend()) {
    active_ = simd::set_backend(b);
  }
  ~BackendGuard() { simd::set_backend(prev_); }
  simd::Backend active() const { return active_; }

 private:
  simd::Backend prev_;
  simd::Backend active_;
};

/// All backends this build + CPU can actually run.
std::vector<simd::Backend> supported_backends() {
  std::vector<simd::Backend> out{simd::Backend::kScalar};
  for (simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kAvx512}) {
    BackendGuard guard(b);
    if (guard.active() == b) out.push_back(b);
  }
  return out;
}

/// One fresh charging round, the bench generator's shape (uniform field,
/// deficits within the paper's battery range).
model::ChargingProblem random_round(std::size_t n, std::size_t k,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  return model::ChargingProblem(std::move(pts), std::move(deficits),
                                {50.0, 50.0}, 2.7, 1.0, k);
}

/// Flat, unambiguous byte image of a plan (every field length-prefixed),
/// so memcmp equality == structural equality.
std::vector<unsigned char> serialize(const sched::ChargingPlan& plan) {
  std::vector<unsigned char> out;
  const auto put = [&out](const void* p, std::size_t bytes) {
    const auto* b = static_cast<const unsigned char*>(p);
    out.insert(out.end(), b, b + bytes);
  };
  const auto put_u64 = [&put](std::uint64_t v) { put(&v, sizeof v); };
  put_u64(static_cast<std::uint64_t>(plan.mode));
  put_u64(plan.tours.size());
  for (const auto& tour : plan.tours) {
    put_u64(tour.size());
    put(tour.data(), tour.size() * sizeof(std::uint32_t));
  }
  put_u64(plan.starts.size());
  for (const geom::Point& p : plan.starts) {
    put(&p.x, sizeof p.x);
    put(&p.y, sizeof p.y);
  }
  return out;
}

bool bytes_equal(const std::vector<unsigned char>& a,
                 const std::vector<unsigned char>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

void expect_stats_equal(const core::ApproStats& a, const core::ApproStats& b) {
  EXPECT_EQ(a.v_s, b.v_s);
  EXPECT_EQ(a.s_i, b.s_i);
  EXPECT_EQ(a.v_h, b.v_h);
  EXPECT_EQ(a.h_max_degree, b.h_max_degree);
  EXPECT_EQ(a.inserted_case_one, b.inserted_case_one);
  EXPECT_EQ(a.inserted_case_two, b.inserted_case_two);
  EXPECT_EQ(a.dropped_covered, b.dropped_covered);
}

// ---------------------------------------------------------------------------
// Reference local search: the original restart loops of src/tsp/improve.cpp
// (no exact-replay caches, no convergence skips), frozen here so the cached
// production code has an in-tree witness of the semantics it must replay.

namespace reference {

double leg(const tsp::TourProblem& p, const tsp::Tour& t, std::ptrdiff_t i,
           std::ptrdiff_t j) {
  const bool i_depot = i < 0 || i >= static_cast<std::ptrdiff_t>(t.size());
  const bool j_depot = j < 0 || j >= static_cast<std::ptrdiff_t>(t.size());
  if (i_depot && j_depot) return 0.0;
  if (i_depot) return p.travel_depot(t[static_cast<std::size_t>(j)]);
  if (j_depot) return p.travel_depot(t[static_cast<std::size_t>(i)]);
  return p.travel(t[static_cast<std::size_t>(i)],
                  t[static_cast<std::size_t>(j)]);
}

void mirror_tour(const tsp::TourProblem& problem, const tsp::Tour& tour,
                 std::vector<double>& px, std::vector<double>& py) {
  const std::size_t m = tour.size();
  px.resize(m + 1);
  py.resize(m + 1);
  for (std::size_t p = 0; p < m; ++p) {
    px[p] = problem.sites[tour[p]].x;
    py[p] = problem.sites[tour[p]].y;
  }
  px[m] = problem.depot.x;
  py[m] = problem.depot.y;
}

double leg_time(const std::vector<double>& px, const std::vector<double>& py,
                double speed, std::size_t k) {
  const double dx = px[k] - px[k + 1];
  const double dy = py[k] - py[k + 1];
  return std::sqrt(dx * dx + dy * dy) / speed;
}

void fill_leg_times(const std::vector<double>& px,
                    const std::vector<double>& py, double speed,
                    std::vector<double>& tc) {
  const std::size_t m = px.size() - 1;
  tc.resize(m);
  for (std::size_t k = 0; k < m; ++k) tc[k] = leg_time(px, py, speed, k);
}

double two_opt(const tsp::TourProblem& problem, tsp::Tour& tour,
               const tsp::ImproveOptions& options) {
  const std::size_t m = tour.size();
  if (m < 2) return 0.0;
  std::vector<double> px, py, tc;
  mirror_tour(problem, tour, px, py);
  fill_leg_times(px, py, problem.speed, tc);

  double saved = 0.0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i + 1 < m; ++i) {
      const auto ip = static_cast<std::ptrdiff_t>(i);
      const double ax = i == 0 ? problem.depot.x : px[i - 1];
      const double ay = i == 0 ? problem.depot.y : py[i - 1];
      double bx = px[i];
      double by = py[i];
      double base = leg(problem, tour, ip - 1, ip);
      const std::size_t j_end = i == 0 ? m - 1 : m;
      std::size_t j = i + 1;
      while (j < j_end) {
        const std::size_t hit = simd::two_opt_scan(
            px.data(), py.data(), tc.data(), j, j_end, ax, ay, bx, by,
            problem.speed, base, options.min_gain);
        if (hit == simd::kNpos) break;
        const auto jp = static_cast<std::ptrdiff_t>(hit);
        const double before =
            leg(problem, tour, ip - 1, ip) + leg(problem, tour, jp, jp + 1);
        const double after =
            leg(problem, tour, ip - 1, jp) + leg(problem, tour, ip, jp + 1);
        std::reverse(tour.begin() + ip, tour.begin() + jp + 1);
        std::reverse(px.begin() + ip, px.begin() + jp + 1);
        std::reverse(py.begin() + ip, py.begin() + jp + 1);
        std::reverse(tc.begin() + ip, tc.begin() + jp);
        tc[hit] = leg_time(px, py, problem.speed, hit);
        if (i > 0) tc[i - 1] = leg_time(px, py, problem.speed, i - 1);
        saved += before - after;
        improved = true;
        bx = px[i];
        by = py[i];
        base = leg(problem, tour, ip - 1, ip);
        j = hit + 1;
      }
    }
    if (!improved) break;
  }
  return saved;
}

double or_opt(const tsp::TourProblem& problem, tsp::Tour& tour,
              const tsp::ImproveOptions& options) {
  const auto m = static_cast<std::ptrdiff_t>(tour.size());
  if (m < 3) return 0.0;
  std::vector<double> px, py, tc;
  double saved = 0.0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    mirror_tour(problem, tour, px, py);
    fill_leg_times(px, py, problem.speed, tc);
    for (std::ptrdiff_t len = 1; len <= 3 && len < m; ++len) {
      for (std::ptrdiff_t i = 0; i + len <= m && !improved; ++i) {
        const double removal_gain = leg(problem, tour, i - 1, i) +
                                    leg(problem, tour, i + len - 1, i + len) -
                                    leg(problem, tour, i - 1, i + len);
        if (removal_gain <= options.min_gain) continue;
        const double threshold = removal_gain - options.min_gain;
        const double ix = px[static_cast<std::size_t>(i)];
        const double iy = py[static_cast<std::size_t>(i)];
        const double ex = px[static_cast<std::size_t>(i + len - 1)];
        const double ey = py[static_cast<std::size_t>(i + len - 1)];
        std::ptrdiff_t k = -2;  // -2: no improving position found
        if (i > 0) {
          const double depot_cost = leg(problem, tour, -1, i) +
                                    leg(problem, tour, i + len - 1, 0) -
                                    leg(problem, tour, -1, 0);
          if (depot_cost < threshold) k = -1;
        }
        if (k == -2 && i >= 2) {
          const std::size_t hit = simd::or_opt_scan(
              px.data(), py.data(), tc.data(), 0,
              static_cast<std::size_t>(i - 1), ix, iy, ex, ey, problem.speed,
              threshold);
          if (hit != simd::kNpos) k = static_cast<std::ptrdiff_t>(hit);
        }
        if (k == -2) {
          const std::size_t hit = simd::or_opt_scan(
              px.data(), py.data(), tc.data(),
              static_cast<std::size_t>(i + len), static_cast<std::size_t>(m),
              ix, iy, ex, ey, problem.speed, threshold);
          if (hit != simd::kNpos) k = static_cast<std::ptrdiff_t>(hit);
        }
        if (k == -2) continue;
        const double insert_cost = leg(problem, tour, k, i) +
                                   leg(problem, tour, i + len - 1, k + 1) -
                                   leg(problem, tour, k, k + 1);
        tsp::Tour segment(tour.begin() + i, tour.begin() + i + len);
        tour.erase(tour.begin() + i, tour.begin() + i + len);
        const std::ptrdiff_t dest = k < i ? k + 1 : k + 1 - len;
        tour.insert(tour.begin() + dest, segment.begin(), segment.end());
        saved += removal_gain - insert_cost;
        improved = true;
      }
      if (improved) break;
    }
    if (!improved) break;
  }
  return saved;
}

double improve_tour(const tsp::TourProblem& problem, tsp::Tour& tour,
                    const tsp::ImproveOptions& options) {
  double saved = 0.0;
  for (std::size_t round = 0; round < options.max_passes; ++round) {
    double round_gain = 0.0;
    // Qualified: the unqualified names would also find tsp:: via ADL.
    if (options.use_two_opt) {
      round_gain += reference::two_opt(problem, tour, options);
    }
    if (options.use_or_opt) {
      round_gain += reference::or_opt(problem, tour, options);
    }
    saved += round_gain;
    if (round_gain <= options.min_gain) break;
  }
  return saved;
}

}  // namespace reference

tsp::TourProblem random_tour_problem(std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  tsp::TourProblem problem;
  for (std::size_t i = 0; i < m; ++i) {
    problem.sites.push_back({rng.uniform(0.0, 100.0),
                             rng.uniform(0.0, 100.0)});
    problem.service.push_back(rng.uniform(100.0, 4000.0));
  }
  problem.depot = {50.0, 50.0};
  problem.speed = 1.0;
  return problem;
}

tsp::Tour identity_tour(std::size_t m) {
  tsp::Tour tour(m);
  for (std::size_t i = 0; i < m; ++i) tour[i] = static_cast<tsp::SiteId>(i);
  return tour;
}

const std::vector<std::size_t> kTourSizes = {0, 1, 2, 3, 4, 5, 8,
                                             13, 30, 75, 150, 350};

// ---------------------------------------------------------------------------

TEST(ImproveCache, TwoOptMatchesReferenceRestartLoop) {
  for (std::size_t m : kTourSizes) {
    const tsp::TourProblem problem = random_tour_problem(m, 1000 + m);
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      tsp::Tour expected = identity_tour(m);
      const double ref_gain = reference::two_opt(problem, expected, {});
      tsp::Tour actual = identity_tour(m);
      const double gain = tsp::two_opt(problem, actual, {});
      EXPECT_EQ(expected, actual) << "m=" << m
                                  << " backend=" << static_cast<int>(b);
      EXPECT_EQ(ref_gain, gain) << "m=" << m;
    }
  }
}

TEST(ImproveCache, OrOptMatchesReferenceRestartLoop) {
  for (std::size_t m : kTourSizes) {
    const tsp::TourProblem problem = random_tour_problem(m, 2000 + m);
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      tsp::Tour expected = identity_tour(m);
      const double ref_gain = reference::or_opt(problem, expected, {});
      tsp::Tour actual = identity_tour(m);
      const double gain = tsp::or_opt(problem, actual, {});
      EXPECT_EQ(expected, actual) << "m=" << m
                                  << " backend=" << static_cast<int>(b);
      EXPECT_EQ(ref_gain, gain) << "m=" << m;
    }
  }
}

TEST(ImproveCache, ImproveTourMatchesReferenceAlternation) {
  for (std::size_t m : kTourSizes) {
    const tsp::TourProblem problem = random_tour_problem(m, 3000 + m);
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      tsp::Tour expected = identity_tour(m);
      const double ref_gain = reference::improve_tour(problem, expected, {});
      tsp::Tour actual = identity_tour(m);
      const double gain = tsp::improve_tour(problem, actual, {});
      EXPECT_EQ(expected, actual) << "m=" << m
                                  << " backend=" << static_cast<int>(b);
      EXPECT_EQ(ref_gain, gain) << "m=" << m;
    }
  }
}

// The move/pass budget is part of the observable semantics: the cached
// or_opt counts applied moves where the reference counts restart passes
// (one move each), and the cached two_opt counts full sweeps — both must
// truncate at exactly the same tour.
TEST(ImproveCache, TruncatedBudgetsMatchReference) {
  for (std::size_t max_passes : {std::size_t{1}, std::size_t{2},
                                 std::size_t{3}, std::size_t{7}}) {
    tsp::ImproveOptions options;
    options.max_passes = max_passes;
    for (std::size_t m : {std::size_t{30}, std::size_t{150}}) {
      const tsp::TourProblem problem = random_tour_problem(m, 4000 + m);
      {
        tsp::Tour expected = identity_tour(m);
        const double ref_gain = reference::two_opt(problem, expected, options);
        tsp::Tour actual = identity_tour(m);
        const double gain = tsp::two_opt(problem, actual, options);
        EXPECT_EQ(expected, actual) << "two_opt m=" << m
                                    << " passes=" << max_passes;
        EXPECT_EQ(ref_gain, gain);
      }
      {
        tsp::Tour expected = identity_tour(m);
        const double ref_gain = reference::or_opt(problem, expected, options);
        tsp::Tour actual = identity_tour(m);
        const double gain = tsp::or_opt(problem, actual, options);
        EXPECT_EQ(expected, actual) << "or_opt m=" << m
                                    << " passes=" << max_passes;
        EXPECT_EQ(ref_gain, gain);
      }
    }
  }
}

// Partially-disabled operators exercise the improve_tour skip logic's
// edge cases (or_clean must never suppress a two_opt-only round).
TEST(ImproveCache, ImproveTourOperatorSubsetsMatchReference) {
  for (bool use_two : {true, false}) {
    for (bool use_or : {true, false}) {
      tsp::ImproveOptions options;
      options.use_two_opt = use_two;
      options.use_or_opt = use_or;
      for (std::size_t m : {std::size_t{75}, std::size_t{150}}) {
        const tsp::TourProblem problem = random_tour_problem(m, 5000 + m);
        tsp::Tour expected = identity_tour(m);
        const double ref_gain =
            reference::improve_tour(problem, expected, options);
        tsp::Tour actual = identity_tour(m);
        const double gain = tsp::improve_tour(problem, actual, options);
        EXPECT_EQ(expected, actual)
            << "m=" << m << " two=" << use_two << " or=" << use_or;
        EXPECT_EQ(ref_gain, gain);
      }
    }
  }
}

// ---------------------------------------------------------------------------

struct RoundCase {
  std::size_t n;
  std::vector<std::uint64_t> seeds;
};

// The acceptance matrix: {legacy, incremental} x insertion rules x jobs
// {0, 1, 4, 8} x every supported SIMD backend, memcmp'd plan + stats.
// The larger sizes keep one seed each to bound runtime.
TEST(ApproIncremental, PlansMatchLegacyByteForByte) {
  const std::vector<RoundCase> cases = {
      {50, {1, 2, 3, 4}}, {200, {1, 2}}, {1200, {9}}};
  for (const RoundCase& c : cases) {
    for (std::uint64_t seed : c.seeds) {
      const model::ChargingProblem problem = random_round(c.n, 2, seed);
      for (core::InsertionRule rule :
           {core::InsertionRule::kAfterMaxFinishNeighbor,
            core::InsertionRule::kCheapestNeighborDetour}) {
        for (simd::Backend b : supported_backends()) {
          BackendGuard guard(b);
          core::ApproOptions legacy;
          legacy.insertion = rule;
          legacy.legacy_insertion = true;
          core::ApproStats legacy_stats;
          const std::vector<unsigned char> want =
              serialize(core::ApproScheduler(legacy).plan_with_stats(
                  problem, &legacy_stats));
          for (std::size_t jobs : {std::size_t{0}, std::size_t{1},
                                   std::size_t{4}, std::size_t{8}}) {
            core::ApproOptions incremental;
            incremental.insertion = rule;
            incremental.jobs = jobs;
            core::ApproStats stats;
            const std::vector<unsigned char> got =
                serialize(core::ApproScheduler(incremental).plan_with_stats(
                    problem, &stats));
            EXPECT_TRUE(bytes_equal(want, got))
                << "n=" << c.n << " seed=" << seed << " jobs=" << jobs
                << " rule=" << static_cast<int>(rule)
                << " backend=" << static_cast<int>(b);
            expect_stats_equal(legacy_stats, stats);
          }
        }
      }
    }
  }
}

// plan_with_jobs is a pure thread-count override: every hint must return
// the bits of plan(), and a hint equal to the configured jobs must not
// re-instantiate the scheduler path differently either.
TEST(ApproIncremental, PlanWithJobsIsByteIdenticalToPlan) {
  const model::ChargingProblem problem = random_round(300, 3, 11);
  const core::ApproScheduler scheduler;
  const std::vector<unsigned char> want = serialize(scheduler.plan(problem));
  for (std::size_t jobs : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                           std::size_t{4}, std::size_t{8}}) {
    EXPECT_TRUE(bytes_equal(want,
                            serialize(scheduler.plan_with_jobs(problem, jobs))))
        << "jobs=" << jobs;
  }
  // Via the Scheduler base interface, as the simulator calls it.
  const sched::Scheduler& base = scheduler;
  EXPECT_TRUE(bytes_equal(want, serialize(base.plan_with_jobs(problem, 4))));
}

// A scheduler configured parallel must equal the serial default, and the
// legacy path must ignore the jobs knob the same way.
TEST(ApproIncremental, ConfiguredJobsMatchSerialDefault) {
  for (std::uint64_t seed : {21, 22}) {
    const model::ChargingProblem problem = random_round(400, 4, seed);
    const std::vector<unsigned char> want =
        serialize(core::ApproScheduler().plan(problem));
    for (std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
      core::ApproOptions options;
      options.jobs = jobs;
      EXPECT_TRUE(bytes_equal(
          want, serialize(core::ApproScheduler(options).plan(problem))))
          << "jobs=" << jobs << " seed=" << seed;
      options.legacy_insertion = true;
      EXPECT_TRUE(bytes_equal(
          want, serialize(core::ApproScheduler(options).plan(problem))))
          << "legacy jobs=" << jobs << " seed=" << seed;
    }
  }
}

// Tight clusters produce a dense charging graph with large H-degrees and
// a big pending set relative to V'_H, so the incremental path's
// tombstone list crosses its half-dead compaction threshold repeatedly
// (every pick tombstones a slot). The byte-compare proves the compacted
// alive order matches the erase-based reference order.
TEST(ApproIncremental, DenseOverlapStressesCompaction) {
  Rng rng(77);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < 600; ++i) {
    // Tight clusters: 20 cluster centers, 30 sensors each.
    const double cx = 5.0 + 90.0 * static_cast<double>(i % 20) / 19.0;
    const double cy = rng.uniform(10.0, 90.0);
    pts.push_back({cx + rng.uniform(-2.0, 2.0), cy + rng.uniform(-2.0, 2.0)});
    deficits.push_back(3456.0);
  }
  const model::ChargingProblem problem(std::move(pts), std::move(deficits),
                                       {50.0, 50.0}, 2.7, 1.0, 2);
  core::ApproOptions legacy;
  legacy.legacy_insertion = true;
  core::ApproStats legacy_stats, stats;
  const auto want = serialize(
      core::ApproScheduler(legacy).plan_with_stats(problem, &legacy_stats));
  const auto got =
      serialize(core::ApproScheduler().plan_with_stats(problem, &stats));
  EXPECT_TRUE(bytes_equal(want, got));
  expect_stats_equal(legacy_stats, stats);
  // The scenario indeed forces a non-trivial insertion phase.
  EXPECT_GT(stats.inserted_case_one + stats.inserted_case_two, 20u);
}

}  // namespace
}  // namespace mcharge
