// Tests for the schedule module: plan execution (multi-node with conflict
// waiting, one-to-one) and the independent verifier.
#include <gtest/gtest.h>

#include <cmath>

#include "model/charging_problem.h"
#include "schedule/estimate.h"
#include "schedule/execute.h"
#include "schedule/plan.h"
#include "schedule/verify.h"
#include "util/rng.h"

namespace mcharge::sched {
namespace {

using model::ChargingProblem;

// Layout helpers -----------------------------------------------------------

/// Three sensors on a line 2 m apart, gamma 2.7, depot at origin offset.
ChargingProblem line3(std::size_t chargers = 2) {
  return ChargingProblem({{10, 0}, {12, 0}, {14, 0}}, {100.0, 50.0, 200.0},
                         {0, 0}, 2.7, 1.0, chargers);
}

/// Two isolated sensors 60 m apart.
ChargingProblem far2(std::size_t chargers = 2) {
  return ChargingProblem({{20, 0}, {80, 0}}, {100.0, 300.0}, {50, 0}, 2.7,
                         1.0, chargers);
}

// Multi-node execution -----------------------------------------------------

TEST(ExecuteMultiNode, SingleStopChargesWholeDisk) {
  const auto p = line3(1);
  ChargingPlan plan;
  plan.mode = ChargeMode::kMultiNode;
  plan.tours = {{1}};  // parking at the middle sensor covers all three
  const auto schedule = execute_plan(p, plan);
  ASSERT_EQ(schedule.mcvs.size(), 1u);
  ASSERT_EQ(schedule.mcvs[0].sojourns.size(), 1u);
  const Sojourn& s = schedule.mcvs[0].sojourns[0];
  EXPECT_EQ(s.charged, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(s.arrival, 12.0);           // travel from (0,0) to (12,0)
  EXPECT_DOUBLE_EQ(s.duration(), 200.0);       // max deficit in the disk
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].return_time, 12.0 + 200.0 + 12.0);
  EXPECT_TRUE(schedule.all_charged());
  EXPECT_TRUE(verify_schedule(p, schedule).empty());
}

TEST(ExecuteMultiNode, SecondStopSkipsAlreadyCharged) {
  const auto p = line3(1);
  ChargingPlan plan;
  plan.tours = {{0, 2}};  // stop at 0 (covers 0,1), then 2 (covers 1,2)
  const auto schedule = execute_plan(p, plan);
  const auto& sojourns = schedule.mcvs[0].sojourns;
  ASSERT_EQ(sojourns.size(), 2u);
  EXPECT_EQ(sojourns[0].charged, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_DOUBLE_EQ(sojourns[0].duration(), 100.0);
  // Sensor 1 is already charged, so only 2 remains: tau' = 200.
  EXPECT_EQ(sojourns[1].charged, (std::vector<std::uint32_t>{2}));
  EXPECT_DOUBLE_EQ(sojourns[1].duration(), 200.0);
  EXPECT_TRUE(verify_schedule(p, schedule).empty());
}

TEST(ExecuteMultiNode, ConflictForcesWaiting) {
  // Two MCVs sent to locations 0 and 2 of the line: their disks share
  // sensor 1, so the second to arrive must wait for the first to finish.
  const auto p = line3(2);
  ChargingPlan plan;
  plan.tours = {{0}, {2}};
  const auto schedule = execute_plan(p, plan);
  EXPECT_TRUE(verify_schedule(p, schedule).empty());
  EXPECT_GT(schedule.total_wait(), 0.0);
  // MCV 0 arrives at x=10 at t=10 and charges until t=110; MCV 1 arrives
  // at x=14 at t=14 and must wait until 110.
  const Sojourn& s0 = schedule.mcvs[0].sojourns[0];
  const Sojourn& s1 = schedule.mcvs[1].sojourns[0];
  EXPECT_DOUBLE_EQ(s0.start, 10.0);
  EXPECT_DOUBLE_EQ(s0.finish, 110.0);
  EXPECT_DOUBLE_EQ(s1.arrival, 14.0);
  EXPECT_DOUBLE_EQ(s1.start, 110.0);
  // Sensor 1 was grabbed by the earlier sojourn; MCV 1 charges only 2.
  EXPECT_EQ(s1.charged, (std::vector<std::uint32_t>{2}));
  EXPECT_DOUBLE_EQ(s1.duration(), 200.0);
}

TEST(ExecuteMultiNode, NoConflictWhenFarApart) {
  const auto p = far2(2);
  ChargingPlan plan;
  plan.tours = {{0}, {1}};
  const auto schedule = execute_plan(p, plan);
  EXPECT_DOUBLE_EQ(schedule.total_wait(), 0.0);
  EXPECT_TRUE(verify_schedule(p, schedule).empty());
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].return_time, 30.0 + 100.0 + 30.0);
  EXPECT_DOUBLE_EQ(schedule.mcvs[1].return_time, 30.0 + 300.0 + 30.0);
  EXPECT_DOUBLE_EQ(schedule.longest_delay(), 360.0);
}

TEST(ExecuteMultiNode, EmptyTours) {
  const auto p = far2(3);
  ChargingPlan plan;
  plan.tours = {{0, 1}, {}, {}};
  const auto schedule = execute_plan(p, plan);
  EXPECT_DOUBLE_EQ(schedule.mcvs[1].return_time, 0.0);
  EXPECT_DOUBLE_EQ(schedule.mcvs[2].return_time, 0.0);
  EXPECT_TRUE(schedule.all_charged());
}

TEST(ExecuteMultiNode, EmptyProblem) {
  ChargingProblem p({}, {}, {0, 0}, 2.7, 1.0, 2);
  ChargingPlan plan;
  plan.tours = {{}, {}};
  const auto schedule = execute_plan(p, plan);
  EXPECT_DOUBLE_EQ(schedule.longest_delay(), 0.0);
  EXPECT_TRUE(verify_schedule(p, schedule).empty());
}

TEST(ExecuteMultiNode, ZeroDeficitSensorsMakeZeroLengthStops) {
  ChargingProblem p({{10, 0}, {40, 0}}, {0.0, 0.0}, {0, 0}, 2.7, 1.0, 1);
  ChargingPlan plan;
  plan.tours = {{0, 1}};
  const auto schedule = execute_plan(p, plan);
  EXPECT_DOUBLE_EQ(schedule.longest_delay(), 80.0);  // pure travel
  EXPECT_TRUE(schedule.all_charged());
  EXPECT_TRUE(verify_schedule(p, schedule).empty());
}

// One-to-one execution -----------------------------------------------------

TEST(ExecuteOneToOne, ChargesOnlyTarget) {
  const auto p = line3(1);
  ChargingPlan plan;
  plan.mode = ChargeMode::kOneToOne;
  plan.tours = {{0, 1, 2}};
  const auto schedule = execute_plan(p, plan);
  const auto& sojourns = schedule.mcvs[0].sojourns;
  ASSERT_EQ(sojourns.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sojourns[i].charged, std::vector<std::uint32_t>{
                                       static_cast<std::uint32_t>(i)});
    EXPECT_DOUBLE_EQ(sojourns[i].duration(), p.charge_seconds(
                                                 static_cast<std::uint32_t>(i)));
  }
  // Delay: 10 travel + 100 + 2 + 50 + 2 + 200 + 14 back.
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].return_time, 10 + 100 + 2 + 50 + 2 + 200 + 14);
  EXPECT_TRUE(verify_schedule(p, schedule).empty());
}

TEST(ExecuteOneToOne, NoConflictSemanticsEvenWhenClose) {
  // One-to-one chargers may work adjacent sensors concurrently.
  const auto p = line3(2);
  ChargingPlan plan;
  plan.mode = ChargeMode::kOneToOne;
  plan.tours = {{0, 1}, {2}};
  const auto schedule = execute_plan(p, plan);
  EXPECT_DOUBLE_EQ(schedule.total_wait(), 0.0);
  EXPECT_TRUE(schedule.all_charged());
  EXPECT_TRUE(verify_schedule(p, schedule).empty());
}

TEST(ExecuteOneToOne, DuplicateTargetChargedOnce) {
  // Two MCVs race to the same sensor: the one-to-one executor must let the
  // earlier arrival charge it and turn the later visit into a zero-length
  // stop.
  ChargingProblem p({{10, 0}, {40, 0}}, {100.0, 100.0}, {0, 0}, 2.7, 1.0,
                    2);
  ChargingPlan plan;
  plan.mode = ChargeMode::kOneToOne;
  plan.tours = {{0}, {1}};
  // Same target via two plans is rejected (node-disjointness); emulate the
  // race through the schedule-level invariant instead: each sensor is
  // charged by exactly one sojourn even when coverage overlaps.
  const auto schedule = execute_plan(p, plan);
  std::size_t charges = 0;
  for (const auto& mcv : schedule.mcvs) {
    for (const auto& s : mcv.sojourns) charges += s.charged.size();
  }
  EXPECT_EQ(charges, 2u);
  EXPECT_TRUE(verify_schedule(p, schedule).empty());
}

TEST(ExecuteMultiNode, ThreeWayConflictFullySerialized) {
  // Three stops whose disks pairwise intersect only at the shared sensor
  // 3; each stop also owns a private sensor. The executor must serialize
  // all three charging intervals.
  ChargingProblem p({{10, 0}, {14, 0}, {12, 2.5}, {12, 0}},
                    {500.0, 400.0, 300.0, 200.0}, {0, 0}, 2.7, 1.0, 3);
  ASSERT_TRUE(p.overlapping(0, 1));
  ASSERT_TRUE(p.overlapping(0, 2));
  ASSERT_TRUE(p.overlapping(1, 2));
  ChargingPlan plan;
  plan.tours = {{0}, {1}, {2}};
  const auto schedule = execute_plan(p, plan);
  const auto violations = verify_schedule(p, schedule);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations[0]);
  // All four sensors charged despite only three stops.
  EXPECT_TRUE(schedule.all_charged());
  // Both later MCVs queued behind the first: 500 s for the second stop
  // plus 900 s for the third, minus their travel head-starts.
  EXPECT_GT(schedule.total_wait(), 900.0);
}

// Verifier -----------------------------------------------------------------

TEST(Verify, DetectsSimultaneousConflict) {
  const auto p = line3(2);
  // Hand-craft an invalid schedule: both MCVs charge overlapping disks at
  // the same time.
  ChargingSchedule bad;
  bad.mode = ChargeMode::kMultiNode;
  bad.mcvs.resize(2);
  Sojourn a;
  a.location = 0;
  a.arrival = a.start = 10.0;
  a.finish = 110.0;
  a.charged = {0, 1};
  Sojourn b;
  b.location = 2;
  b.arrival = b.start = 14.0;
  b.finish = 214.0;
  b.charged = {2};
  bad.mcvs[0].sojourns = {a};
  bad.mcvs[0].return_time = 120.0;
  bad.mcvs[1].sojourns = {b};
  bad.mcvs[1].return_time = 228.0;
  bad.charged_at = {110.0, 110.0, 214.0};
  const auto violations = verify_schedule(p, bad);
  bool found = false;
  for (const auto& v : violations) {
    if (v.find("simultaneous charging conflict") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Verify, DetectsUncoveredSensor) {
  const auto p = far2(1);
  ChargingPlan plan;
  plan.tours = {{0}};  // sensor 1 is 60 m away: never charged
  const auto schedule = execute_plan(p, plan);
  const auto violations = verify_schedule(p, schedule);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("uncovered"), std::string::npos);
  // With coverage not required, the schedule is otherwise valid.
  VerifyOptions opts;
  opts.require_full_coverage = false;
  EXPECT_TRUE(verify_schedule(p, schedule, opts).empty());
}

TEST(Verify, DetectsUndercharge) {
  const auto p = far2(1);
  ChargingPlan plan;
  plan.tours = {{0, 1}};
  auto schedule = execute_plan(p, plan);
  // Corrupt: shorten the first sojourn below the needed duration.
  schedule.mcvs[0].sojourns[0].finish =
      schedule.mcvs[0].sojourns[0].start + 1.0;
  const auto violations = verify_schedule(p, schedule);
  bool found = false;
  for (const auto& v : violations) {
    if (v.find("undercharge") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Verify, DetectsRevisitedLocation) {
  const auto p = far2(2);
  ChargingSchedule bad;
  bad.mode = ChargeMode::kOneToOne;
  bad.mcvs.resize(2);
  Sojourn s;
  s.location = 0;
  s.arrival = s.start = 30.0;
  s.finish = 130.0;
  s.charged = {0};
  bad.mcvs[0].sojourns = {s};
  bad.mcvs[0].return_time = 160.0;
  Sojourn dup = s;
  dup.charged = {};
  bad.mcvs[1].sojourns = {dup};
  bad.mcvs[1].return_time = 160.0;
  bad.charged_at = {130.0, kNeverCharged};
  VerifyOptions opts;
  opts.require_full_coverage = false;
  const auto violations = verify_schedule(p, bad, opts);
  bool found = false;
  for (const auto& v : violations) {
    if (v.find("revisited") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Verify, DetectsChargeOutsideRange) {
  const auto p = far2(1);
  ChargingSchedule bad;
  bad.mode = ChargeMode::kMultiNode;
  bad.mcvs.resize(1);
  Sojourn s;
  s.location = 0;
  s.arrival = s.start = 30.0;
  s.finish = 330.0;
  s.charged = {0, 1};  // sensor 1 is 60 m away — not chargeable from 0
  bad.mcvs[0].sojourns = {s};
  bad.mcvs[0].return_time = 360.0;
  bad.charged_at = {330.0, 330.0};
  const auto violations = verify_schedule(p, bad);
  bool found = false;
  for (const auto& v : violations) {
    if (v.find("outside range") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EnergyUse, MatchesHandComputation) {
  const auto p = far2(2);  // sensors at (20,0) and (80,0), depot (50,0)
  ChargingPlan plan;
  plan.tours = {{0}, {1}};
  const auto schedule = execute_plan(p, plan);
  const auto use = schedule.energy_use(p, 10.0);
  ASSERT_EQ(use.size(), 2u);
  // MCV 0: 30 m out + 30 m back at 10 J/m; 100 s charging at 2 W.
  EXPECT_DOUBLE_EQ(use[0].locomotion_j, 600.0);
  EXPECT_DOUBLE_EQ(use[0].delivered_j, 200.0);
  // MCV 1: same travel; 300 s charging.
  EXPECT_DOUBLE_EQ(use[1].locomotion_j, 600.0);
  EXPECT_DOUBLE_EQ(use[1].delivered_j, 600.0);
}

TEST(EnergyUse, EmptyTourUsesNothing) {
  const auto p = far2(2);
  ChargingPlan plan;
  plan.tours = {{0, 1}, {}};
  const auto schedule = execute_plan(p, plan);
  const auto use = schedule.energy_use(p);
  EXPECT_DOUBLE_EQ(use[1].locomotion_j, 0.0);
  EXPECT_DOUBLE_EQ(use[1].delivered_j, 0.0);
  EXPECT_GT(use[0].locomotion_j, 0.0);
}

TEST(EnergyUse, MultiNodeDeliversAtLeastTotalDeficitEnergy) {
  // The transmitter runs for max-deficit at each stop, so energy radiated
  // >= the energy any single sensor needed; with de-duplication the sum
  // across stops is at least the largest per-stop need (not the sum of all
  // sensors' needs, since one transmission feeds many receivers).
  const auto p = line3(1);
  ChargingPlan plan;
  plan.tours = {{1}};  // covers all three sensors in one stop
  const auto schedule = execute_plan(p, plan);
  const auto use = schedule.energy_use(p);
  EXPECT_DOUBLE_EQ(use[0].delivered_j, 200.0 * 2.0);  // tau' = 200 s at 2 W
}

// Estimator (Eq. (5)) ------------------------------------------------------

TEST(Estimate, MatchesHandComputedBound) {
  const auto p = line3(1);
  ChargingPlan plan;
  plan.tours = {{0, 2}};
  const auto bounds = estimate_tour_bounds(p, plan);
  ASSERT_EQ(bounds.size(), 1u);
  // tau(0) = max(t0,t1) = 100; tau(2) = max(t1,t2) = 200.
  EXPECT_DOUBLE_EQ(bounds[0], 10.0 + 100.0 + 4.0 + 200.0 + 14.0);
  // Executed delay uses tau' (sensor 1 de-duplicated) and is <= the bound.
  const auto schedule = execute_plan(p, plan);
  EXPECT_LE(schedule.mcvs[0].return_time, bounds[0] + 1e-9);
}

TEST(Estimate, OneToOneEstimateIsExact) {
  const auto p = line3(1);
  ChargingPlan plan;
  plan.mode = ChargeMode::kOneToOne;
  plan.tours = {{0, 1, 2}};
  const auto schedule = execute_plan(p, plan);
  EXPECT_DOUBLE_EQ(estimate_longest_delay_bound(p, plan),
                   schedule.longest_delay());
}

TEST(Estimate, EmptyTourIsZero) {
  const auto p = line3(2);
  ChargingPlan plan;
  plan.tours = {{}, {1}};
  const auto bounds = estimate_tour_bounds(p, plan);
  EXPECT_DOUBLE_EQ(bounds[0], 0.0);
  EXPECT_GT(bounds[1], 0.0);
}

class EstimateUpperBounds : public ::testing::TestWithParam<int> {};

TEST_P(EstimateUpperBounds, ExecutedDelayNeverExceedsBoundWithoutWaiting) {
  // The paper's T'(k) <= T(k) claim, checked on conflict-free plans:
  // assign far-apart location clusters to distinct MCVs.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1511 + 7);
  const std::size_t n = 20 + rng.below(60);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    // Two widely separated bands so per-band tours never conflict.
    const double x_base = i % 2 == 0 ? 0.0 : 500.0;
    pts.push_back({x_base + rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0)});
    deficits.push_back(rng.uniform(10.0, 2000.0));
  }
  ChargingProblem p(std::move(pts), std::move(deficits), {280.0, 30.0}, 2.7,
                    1.0, 2);
  ChargingPlan plan;
  plan.tours.assign(2, {});
  for (std::uint32_t v = 0; v < n; ++v) plan.tours[v % 2].push_back(v);
  const auto schedule = execute_plan(p, plan);
  ASSERT_DOUBLE_EQ(schedule.total_wait(), 0.0);
  const auto bounds = estimate_tour_bounds(p, plan);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_LE(schedule.mcvs[k].return_time, bounds[k] + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimateUpperBounds, ::testing::Range(0, 10));

// Randomized end-to-end property: arbitrary (valid) plans execute to
// conflict-free schedules.
class ExecutorProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorProperty, RandomPlansAlwaysConflictFree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2029 + 7);
  const std::size_t n = 30 + rng.below(60);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(10.0, 4000.0));
  }
  const std::size_t k = 1 + rng.below(4);
  ChargingProblem p(std::move(pts), std::move(deficits), {50, 50}, 2.7, 1.0, k);

  // Random partition of a random subset of locations into K tours.
  ChargingPlan plan;
  plan.tours.assign(k, {});
  for (std::uint32_t v = 0; v < n; ++v) {
    if (rng.uniform() < 0.7) plan.tours[rng.below(k)].push_back(v);
  }
  const auto schedule = execute_plan(p, plan);
  VerifyOptions opts;
  opts.require_full_coverage = false;
  const auto violations = verify_schedule(p, schedule, opts);
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace mcharge::sched
