// Tests for the exact tiny-instance solver and the delay lower bounds,
// including the empirical-approximation-ratio property for Appro.
#include <gtest/gtest.h>

#include <cmath>

#include "core/appro.h"
#include "core/bounds.h"
#include "core/exact.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/rng.h"

namespace mcharge::core {
namespace {

using model::ChargingProblem;

ChargingProblem tiny_problem(std::size_t n, std::size_t k, Rng& rng,
                             double field = 40.0) {
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, field), rng.uniform(0.0, field)});
    deficits.push_back(rng.uniform(50.0, 400.0));
  }
  return ChargingProblem(std::move(pts), std::move(deficits),
                         {field / 2, field / 2}, 2.7, 1.0, k);
}

// ---------- exact solver ----------

TEST(Exact, EmptyProblem) {
  ChargingProblem p({}, {}, {0, 0}, 2.7, 1.0, 2);
  const auto result = exact_min_longest_delay(p);
  EXPECT_DOUBLE_EQ(result.longest_delay, 0.0);
}

TEST(Exact, SingleSensorIsOutAndBack) {
  ChargingProblem p({{3.0, 4.0}}, {100.0}, {0, 0}, 2.7, 1.0, 2);
  const auto result = exact_min_longest_delay(p);
  EXPECT_NEAR(result.longest_delay, 5.0 + 100.0 + 5.0, 1e-9);
}

TEST(Exact, TwoFarSensorsSplitAcrossChargers) {
  // Two sensors symmetric about the depot: with K=2 each MCV takes one.
  ChargingProblem p({{10, 0}, {-10, 0}}, {100.0, 100.0}, {0, 0}, 2.7, 1.0,
                    2);
  const auto result = exact_min_longest_delay(p);
  EXPECT_NEAR(result.longest_delay, 10 + 100 + 10, 1e-9);
  // With K=1 they must be chained.
  ChargingProblem p1({{10, 0}, {-10, 0}}, {100.0, 100.0}, {0, 0}, 2.7, 1.0,
                     1);
  const auto r1 = exact_min_longest_delay(p1);
  EXPECT_NEAR(r1.longest_delay, 10 + 100 + 20 + 100 + 10, 1e-9);
}

TEST(Exact, ExploitsMultiNodeCoverage) {
  // Three sensors in one disk around the middle one: a single stop at the
  // middle charges all three in max(t) time.
  ChargingProblem p({{10, 0}, {12, 0}, {14, 0}}, {100.0, 50.0, 200.0},
                    {0, 0}, 2.7, 1.0, 1);
  const auto result = exact_min_longest_delay(p);
  EXPECT_NEAR(result.longest_delay, 12 + 200 + 12, 1e-9);
  ASSERT_EQ(result.plan.total_stops(), 1u);
}

TEST(Exact, RedundantStopCanHelp) {
  // Stop A covers {0,1}; a second MCV stopping at 1 directly can take the
  // slow sensor 1, leaving A with only the fast sensor 0. The exact value
  // must be strictly below the single-stop plan's delay.
  //
  // Geometry: sensors at x=10 and x=12 (within one disk), deficits 10 and
  // 1000. Single stop at either location: ~ 10..12 travel + 1000.
  // Two MCVs cannot charge them simultaneously (shared disk) — but MCV2
  // can wait... with waiting, still serialized: 1010 + travel. So the
  // optimum is the single-stop (or serialized) plan; this documents that
  // the solver handles overlapping stops without crashing and returns the
  // serialized optimum.
  ChargingProblem p({{10, 0}, {12, 0}}, {10.0, 1000.0}, {0, 0}, 2.7, 1.0, 2);
  const auto result = exact_min_longest_delay(p);
  const auto schedule = sched::execute_plan(p, result.plan);
  EXPECT_TRUE(schedule.all_charged());
  EXPECT_TRUE(sched::verify_schedule(p, schedule).empty());
  EXPECT_LE(result.longest_delay, 12 + 1000 + 12 + 1e-9);
}

class ExactNeverWorseThanAppro : public ::testing::TestWithParam<int> {};

TEST_P(ExactNeverWorseThanAppro, OnTinyInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7681 + 5);
  const std::size_t n = 2 + rng.below(4);  // 2..5
  const std::size_t k = 1 + rng.below(2);  // 1..2
  const auto p = tiny_problem(n, k, rng);
  const auto exact = exact_min_longest_delay(p);
  ApproScheduler appro;
  const auto schedule = sched::execute_plan(p, appro.plan(p));
  EXPECT_TRUE(schedule.all_charged());
  EXPECT_LE(exact.longest_delay, schedule.longest_delay() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactNeverWorseThanAppro,
                         ::testing::Range(0, 12));

class EmpiricalApproxRatio : public ::testing::TestWithParam<int> {};

TEST_P(EmpiricalApproxRatio, ApproWithinFiveOfOptimal) {
  // The proven ratio is 40*pi*(tau_max/tau_min)+1; empirically Appro sits
  // far below it. Assert a generous 5x on tiny instances.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 12289 + 11);
  const std::size_t n = 3 + rng.below(3);  // 3..5
  const auto p = tiny_problem(n, 2, rng);
  const auto exact = exact_min_longest_delay(p);
  ApproScheduler appro;
  const double appro_delay =
      sched::execute_plan(p, appro.plan(p)).longest_delay();
  EXPECT_LE(appro_delay, 5.0 * exact.longest_delay + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmpiricalApproxRatio, ::testing::Range(0, 12));

// ---------- lower bounds ----------

TEST(Bounds, EmptyProblemIsZero) {
  ChargingProblem p({}, {}, {0, 0}, 2.7, 1.0, 2);
  EXPECT_DOUBLE_EQ(delay_lower_bound(p), 0.0);
}

TEST(Bounds, SingleSensorBoundIsTight) {
  ChargingProblem p({{30.0, 0.0}}, {500.0}, {0, 0}, 2.7, 1.0, 1);
  const auto bounds = delay_lower_bounds(p);
  // 2 * (30 - 2.7) + 500; the optimum is 2*30 + 500 (stops co-located
  // with sensors), so the bound must not exceed it.
  EXPECT_NEAR(bounds.hardest_sensor, 2.0 * 27.3 + 500.0, 1e-9);
  const auto exact = exact_min_longest_delay(p);
  EXPECT_LE(bounds.best(), exact.longest_delay + 1e-9);
}

class BoundsBelowExact : public ::testing::TestWithParam<int> {};

TEST_P(BoundsBelowExact, OnTinyInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 24593 + 3);
  const std::size_t n = 2 + rng.below(4);
  const std::size_t k = 1 + rng.below(3);
  const auto p = tiny_problem(n, k, rng);
  const auto exact = exact_min_longest_delay(p);
  EXPECT_LE(delay_lower_bound(p), exact.longest_delay + 1e-6)
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsBelowExact, ::testing::Range(0, 16));

TEST(Bounds, ChargingVolumeScalesWithK) {
  Rng rng(9);
  const auto p2 = tiny_problem(6, 2, rng);
  ChargingProblem p4(std::vector<geom::Point>(p2.positions()),
                     std::vector<double>(p2.charge_seconds()), p2.depot(),
                     p2.gamma(), p2.speed(), 4);
  const auto b2 = delay_lower_bounds(p2);
  const auto b4 = delay_lower_bounds(p4);
  EXPECT_NEAR(b4.charging_volume, b2.charging_volume / 2.0, 1e-9);
  EXPECT_LE(b4.best(), b2.best() + 1e-9);
}

TEST(Bounds, BelowApproOnRealScale) {
  // On realistic instances the bound must sit below what Appro achieves
  // (it is a lower bound on OPT <= Appro).
  Rng rng(31);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  ChargingProblem p(std::move(pts), std::move(deficits), {50, 50}, 2.7, 1.0,
                    2);
  ApproScheduler appro;
  const double appro_delay =
      sched::execute_plan(p, appro.plan(p)).longest_delay();
  const double bound = delay_lower_bound(p);
  EXPECT_GT(bound, 0.0);
  EXPECT_LE(bound, appro_delay);
}

}  // namespace
}  // namespace mcharge::core
