// Tests for the round-based WRSN simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/kminmax.h"
#include "core/appro.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace mcharge::sim {
namespace {

model::WrsnInstance tiny_instance(std::size_t n, std::uint64_t seed) {
  model::NetworkConfig config;
  Rng rng(seed);
  return model::make_instance(config, n, rng);
}

TEST(Simulate, EmptyNetworkNoActivity) {
  model::WrsnInstance instance;
  instance.config = model::NetworkConfig{};
  core::ApproScheduler appro;
  const auto result = simulate(instance, appro);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_DOUBLE_EQ(result.total_dead_seconds, 0.0);
}

TEST(Simulate, NoRequestsWhenDrawIsZero) {
  auto instance = tiny_instance(20, 1);
  for (auto& w : instance.consumption_w) w = 0.0;
  core::ApproScheduler appro;
  const auto result = simulate(instance, appro);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.sensors_charged, 0u);
}

TEST(Simulate, ShortHorizonStopsBeforeFirstRequest) {
  auto instance = tiny_instance(20, 2);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 60.0;  // one minute: nothing crosses 20%
  const auto result = simulate(instance, appro, config);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Simulate, ChargingHappensOverAYear) {
  auto instance = tiny_instance(60, 3);
  core::ApproScheduler appro;
  const auto result = simulate(instance, appro);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_GT(result.sensors_charged, 0u);
  EXPECT_EQ(result.verify_violations, 0u);
  EXPECT_GT(result.round_longest_delay_s.mean(), 0.0);
  EXPECT_GE(result.busy_fraction, 0.0);
  EXPECT_LE(result.busy_fraction, 1.0);
}

TEST(Simulate, DeterministicForSameInstance) {
  auto instance = tiny_instance(50, 4);
  core::ApproScheduler appro;
  const auto a = simulate(instance, appro);
  const auto b = simulate(instance, appro);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_DOUBLE_EQ(a.total_dead_seconds, b.total_dead_seconds);
  EXPECT_DOUBLE_EQ(a.round_longest_delay_s.mean(),
                   b.round_longest_delay_s.mean());
}

TEST(Simulate, DeadTimeBoundedByHorizon) {
  auto instance = tiny_instance(40, 5);
  baselines::KMinMaxScheduler kminmax;
  const auto result = simulate(instance, kminmax);
  EXPECT_LE(result.total_dead_seconds,
            40.0 * SimConfig{}.monitoring_period_s + 1.0);
  EXPECT_GE(result.total_dead_seconds, 0.0);
  EXPECT_NEAR(result.mean_dead_minutes_per_sensor,
              result.total_dead_seconds / 40.0 / 60.0, 1e-9);
}

TEST(Simulate, HotterNetworkChargesMore) {
  // Scaling every sensor's draw up should produce at least as many charge
  // events.
  auto cool = tiny_instance(40, 6);
  auto hot = cool;
  for (auto& w : hot.consumption_w) w *= 3.0;
  core::ApproScheduler appro;
  const auto cool_result = simulate(cool, appro);
  const auto hot_result = simulate(hot, appro);
  EXPECT_GT(hot_result.sensors_charged, cool_result.sensors_charged);
}

TEST(Simulate, BatchSizesReasonable) {
  auto instance = tiny_instance(80, 7);
  core::ApproScheduler appro;
  const auto result = simulate(instance, appro);
  EXPECT_GE(result.round_batch_size.min(), 1.0);
  EXPECT_LE(result.round_batch_size.max(), 80.0);
}

TEST(Simulate, PerSensorMetricsConsistent) {
  auto instance = tiny_instance(50, 9);
  core::ApproScheduler appro;
  const auto result = simulate(instance, appro);
  ASSERT_EQ(result.dead_seconds_per_sensor.size(), 50u);
  ASSERT_EQ(result.charges_per_sensor.size(), 50u);
  double dead_sum = 0.0;
  std::size_t charges_sum = 0;
  for (std::size_t v = 0; v < 50; ++v) {
    dead_sum += result.dead_seconds_per_sensor[v];
    charges_sum += result.charges_per_sensor[v];
  }
  EXPECT_NEAR(dead_sum, result.total_dead_seconds, 1e-6);
  EXPECT_EQ(charges_sum, result.sensors_charged);
  EXPECT_GE(result.max_dead_minutes_per_sensor(), 0.0);
}

TEST(Simulate, RoundLogRecordedOnDemand) {
  auto instance = tiny_instance(50, 10);
  core::ApproScheduler appro;
  SimConfig config;
  const auto without = simulate(instance, appro, config);
  EXPECT_TRUE(without.rounds_log.empty());
  config.record_rounds = true;
  const auto with = simulate(instance, appro, config);
  ASSERT_EQ(with.rounds_log.size(), with.rounds);
  double prev_dispatch = -1.0;
  std::size_t charged = 0;
  for (const auto& round : with.rounds_log) {
    EXPECT_GT(round.dispatch_time, prev_dispatch);
    prev_dispatch = round.dispatch_time;
    EXPECT_GE(round.batch, round.charged);
    EXPECT_GE(round.batch, 1u);
    charged += round.charged;
  }
  EXPECT_EQ(charged, with.sensors_charged);
}

TEST(Simulate, EpochPolicyAlignsDispatches) {
  auto instance = tiny_instance(60, 11);
  core::ApproScheduler appro;
  SimConfig config;
  config.dispatch_epoch_s = 86400.0;  // daily fleet departures
  config.record_rounds = true;
  const auto result = simulate(instance, appro, config);
  for (const auto& round : result.rounds_log) {
    const double phase =
        std::fmod(round.dispatch_time, config.dispatch_epoch_s);
    EXPECT_LT(std::min(phase, config.dispatch_epoch_s - phase), 1e-3)
        << "dispatch at " << round.dispatch_time;
  }
}

TEST(Simulate, EpochPolicyBatchesMoreThanOnDemand) {
  auto instance = tiny_instance(80, 12);
  core::ApproScheduler appro;
  SimConfig on_demand;
  SimConfig weekly;
  weekly.dispatch_epoch_s = 7.0 * 86400.0;
  const auto a = simulate(instance, appro, on_demand);
  const auto b = simulate(instance, appro, weekly);
  if (a.rounds > 0 && b.rounds > 0) {
    EXPECT_GE(b.round_batch_size.mean(), a.round_batch_size.mean());
    EXPECT_LE(b.rounds, a.rounds);
  }
}

TEST(Simulate, PartialChargingShortensRoundsButAddsThem) {
  auto instance = tiny_instance(80, 13);
  for (auto& w : instance.consumption_w) w *= 3.0;  // enough activity
  core::ApproScheduler appro;
  SimConfig full;
  SimConfig partial;
  partial.charge_target_fraction = 0.5;
  const auto f = simulate(instance, appro, full);
  const auto p = simulate(instance, appro, partial);
  ASSERT_GT(f.rounds, 0u);
  ASSERT_GT(p.rounds, 0u);
  // Half-charging: sensors come back sooner -> more charge events.
  EXPECT_GT(p.sensors_charged, f.sensors_charged);
  // Each visit transfers less energy, so rounds are shorter on average.
  EXPECT_LT(p.round_longest_delay_s.mean(), f.round_longest_delay_s.mean());
}

TEST(Simulate, FullTargetMatchesDefaultBehaviour) {
  auto instance = tiny_instance(40, 14);
  core::ApproScheduler appro;
  SimConfig a;
  SimConfig b;
  b.charge_target_fraction = 1.0;
  const auto ra = simulate(instance, appro, a);
  const auto rb = simulate(instance, appro, b);
  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_DOUBLE_EQ(ra.total_dead_seconds, rb.total_dead_seconds);
}

TEST(Simulate, MonthlyDeadBucketsSumToTotal) {
  auto instance = tiny_instance(80, 17);
  for (auto& w : instance.consumption_w) w *= 6.0;  // force saturation
  instance.config.num_chargers = 1;
  core::ApproScheduler appro;
  const auto result = simulate(instance, appro);
  ASSERT_EQ(result.dead_seconds_by_month.size(), 13u);  // ceil(365/30)
  double sum = 0.0;
  for (double s : result.dead_seconds_by_month) {
    EXPECT_GE(s, 0.0);
    // A 30-day bucket holds at most 30 days per sensor.
    EXPECT_LE(s, 80.0 * 30.0 * 86400.0 + 1.0);
    sum += s;
  }
  EXPECT_NEAR(sum, result.total_dead_seconds,
              1e-6 * std::max(1.0, result.total_dead_seconds));
}

TEST(Simulate, SaturatedFleetDeadTimeGrowsOverTheYear) {
  auto instance = tiny_instance(120, 18);
  for (auto& w : instance.consumption_w) w *= 6.0;
  instance.config.num_chargers = 1;
  core::ApproScheduler appro;
  const auto result = simulate(instance, appro);
  const auto& buckets = result.dead_seconds_by_month;
  ASSERT_GE(buckets.size(), 12u);
  // Late-year months carry far more dead time than the first month (the
  // backlog builds).
  const double early = buckets[0] + buckets[1];
  const double late = buckets[9] + buckets[10];
  EXPECT_GT(late, early);
}

TEST(Simulate, RequestLatencyTracked) {
  auto instance = tiny_instance(60, 15);
  core::ApproScheduler appro;
  const auto result = simulate(instance, appro);
  ASSERT_GT(result.sensors_charged, 0u);
  // One latency sample per completed charge (within the horizon).
  EXPECT_EQ(result.request_latency_s.count(), result.sensors_charged);
  // Latency is at least the travel+charge floor (> 0) and bounded by the
  // horizon.
  EXPECT_GT(result.request_latency_s.min(), 0.0);
  EXPECT_LT(result.request_latency_s.max(),
            SimConfig{}.monitoring_period_s);
}

TEST(Simulate, LatencyWorsensWhenFleetShrinks) {
  auto big = tiny_instance(100, 16);
  for (auto& w : big.consumption_w) w *= 4.0;  // load the fleet
  auto small_fleet = big;
  small_fleet.config.num_chargers = 1;
  auto large_fleet = big;
  large_fleet.config.num_chargers = 4;
  core::ApproScheduler appro;
  const auto slow = simulate(small_fleet, appro);
  const auto fast = simulate(large_fleet, appro);
  EXPECT_GT(slow.request_latency_s.mean(), fast.request_latency_s.mean());
}

TEST(SnapDispatchToEpoch, BoundaryAndMidEpochCases) {
  // Exactly on a boundary: stays put.
  EXPECT_DOUBLE_EQ(86400.0, snap_dispatch_to_epoch(86400.0, 86400.0, 0.0));
  // A hair above a boundary from lazy-update FP noise, fleet home long
  // before: the 1e-12 fudge keeps the dispatch from slipping a whole
  // epoch.
  EXPECT_DOUBLE_EQ(86400.0,
                   snap_dispatch_to_epoch(86400.0 + 1e-9, 86400.0, 0.0));
  // Mid-epoch: the next boundary.
  EXPECT_DOUBLE_EQ(172800.0,
                   snap_dispatch_to_epoch(100000.0, 86400.0, 90000.0));
}

TEST(SnapDispatchToEpoch, NeverDispatchesBeforeFleetReturn) {
  // Regression: the fleet returns a hair *after* an epoch boundary —
  // closer than the 1e-12 relative fudge — so the fudged ceil rounds the
  // dispatch DOWN onto that boundary, i.e. before the fleet is home.
  const double epoch = 86400.0;
  const double fleet_ready = 86400.0 + 1e-8;
  const double snapped = snap_dispatch_to_epoch(fleet_ready, epoch,
                                                fleet_ready);
  EXPECT_GE(snapped, fleet_ready);
  EXPECT_DOUBLE_EQ(2.0 * epoch, snapped);
}

TEST(Simulate, InitialLevelBelowThresholdClampsRequestTime) {
  // Regression: sensors that START below the request threshold never
  // crossed it, so reconstructing the crossing from the linear draw lands
  // before t = 0. With a slow draw the un-clamped reconstruction is
  // minus (threshold - level) / draw ~ -1.08e6 s, inflating every
  // first-round latency sample past the 2-day horizon.
  auto instance = tiny_instance(30, 19);
  for (auto& w : instance.consumption_w) w = 1e-3;
  core::ApproScheduler appro;
  SimConfig config;
  config.initial_level_fraction = 0.1;  // below the 20% threshold
  config.monitoring_period_s = 2.0 * 86400.0;
  const auto result = simulate(instance, appro, config);
  ASSERT_GT(result.sensors_charged, 0u);
  EXPECT_GT(result.request_latency_s.min(), 0.0);
  EXPECT_LE(result.request_latency_s.max(), config.monitoring_period_s);
}

TEST(Simulate, BusyFractionMatchesRoundsLogWithCensoredRound) {
  // busy_fraction semantics: sum over rounds of min(d + D, T_M) - d.
  // Saturate a one-MCV fleet so rounds run back to back and the final
  // round is still out at the horizon (the censored case).
  auto instance = tiny_instance(80, 20);
  for (auto& w : instance.consumption_w) w *= 6.0;
  instance.config.num_chargers = 1;
  core::ApproScheduler appro;
  SimConfig config;
  config.record_rounds = true;
  config.monitoring_period_s = 40.0 * 86400.0;
  const auto result = simulate(instance, appro, config);
  ASSERT_GT(result.rounds, 0u);
  const auto& last = result.rounds_log.back();
  ASSERT_GT(last.dispatch_time + last.longest_delay_s,
            config.monitoring_period_s)
      << "fleet not saturated; the censored-round case is untested";
  double busy = 0.0;
  for (const auto& round : result.rounds_log) {
    if (round.longest_delay_s > 0.0) {
      busy += std::min(round.dispatch_time + round.longest_delay_s,
                       config.monitoring_period_s) -
              round.dispatch_time;
    }
  }
  // A censored round still covers the horizon: the denominator stays T_M.
  EXPECT_EQ(result.truncated_reason, TruncationReason::kHorizonMidRound);
  EXPECT_DOUBLE_EQ(busy / config.monitoring_period_s, result.busy_fraction);
  EXPECT_LE(result.busy_fraction, 1.0);
}

TEST(Simulate, BusyFractionScalesByElapsedTimeOnMaxRoundsTruncation) {
  // A run cut off by the round budget has only simulated the prefix up to
  // the fleet's last return; dividing its busy seconds by the full-year
  // horizon would report near-zero utilization for a fleet that was in
  // fact out almost continuously.
  auto instance = tiny_instance(80, 22);
  for (auto& w : instance.consumption_w) w *= 6.0;  // saturate one MCV
  instance.config.num_chargers = 1;
  core::ApproScheduler appro;
  SimConfig config;
  config.record_rounds = true;
  config.max_rounds = 6;  // stop long before the year ends
  const auto result = simulate(instance, appro, config);
  ASSERT_EQ(result.rounds, 6u);
  ASSERT_EQ(result.truncated_reason, TruncationReason::kMaxRounds);
  const double horizon = config.monitoring_period_s;
  double busy = 0.0;
  double ready = 0.0;  // the fleet's availability instant after each round
  for (const auto& round : result.rounds_log) {
    if (round.longest_delay_s > 0.0) {
      busy += std::min(round.dispatch_time + round.longest_delay_s, horizon) -
              round.dispatch_time;
      ready = round.dispatch_time + round.longest_delay_s;
    } else {
      ready = round.dispatch_time + config.empty_round_backoff_s;
    }
  }
  ASSERT_GT(busy, 0.0);
  ASSERT_LT(ready, horizon) << "instance ran the full horizon; the "
                               "kMaxRounds case is untested";
  // The denominator is the elapsed simulated time (the fleet's last
  // return), not the full horizon the run never reached.
  EXPECT_DOUBLE_EQ(result.busy_fraction, busy / std::min(ready, horizon));
  EXPECT_GT(result.busy_fraction, busy / horizon);
  EXPECT_LE(result.busy_fraction, 1.0);
}

namespace {
/// Scheduler that plans nothing: every round is degenerate, exercising
/// the empty-round backoff path.
class NoOpScheduler : public sched::Scheduler {
 public:
  std::string name() const override { return "NoOp"; }
  sched::ChargingPlan plan(const model::ChargingProblem&) const override {
    return {};
  }
};
}  // namespace

TEST(Simulate, EmptyRoundBackoffIsIdleNotBusy) {
  auto instance = tiny_instance(20, 21);
  NoOpScheduler noop;
  SimConfig config;
  config.max_rounds = 5;  // the no-op scheduler would spin forever
  const auto result = simulate(instance, noop, config);
  EXPECT_EQ(result.rounds, 5u);
  EXPECT_EQ(result.sensors_charged, 0u);
  // Degenerate rounds contribute no busy time.
  EXPECT_DOUBLE_EQ(result.busy_fraction, 0.0);
}

TEST(Simulate, RespectsMaxRounds) {
  auto instance = tiny_instance(30, 8);
  core::ApproScheduler appro;
  SimConfig config;
  config.max_rounds = 2;
  const auto result = simulate(instance, appro, config);
  EXPECT_LE(result.rounds, 2u);
}

}  // namespace
}  // namespace mcharge::sim
