// End-to-end integration tests: all five algorithms through the full
// pipeline (instance -> rounds -> plans -> execution -> metrics), plus the
// headline comparative claims of the paper at reduced scale.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/aa.h"
#include "baselines/kedf.h"
#include "baselines/kminmax.h"
#include "baselines/netwrap.h"
#include "core/appro.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace mcharge {
namespace {

/// Scales every sensor's draw, moving the network into the saturated load
/// regime the paper evaluates at n >= ~1000 without paying n >= 1000 test
/// runtimes: what separates the algorithms is the ratio of request arrival
/// rate to fleet charging throughput, not n itself.
model::WrsnInstance heat(model::WrsnInstance instance, double factor) {
  for (auto& w : instance.consumption_w) w *= factor;
  return instance;
}

std::vector<sched::SchedulerPtr> all_schedulers() {
  std::vector<sched::SchedulerPtr> out;
  out.push_back(std::make_unique<core::ApproScheduler>());
  out.push_back(std::make_unique<baselines::KEdfScheduler>());
  out.push_back(std::make_unique<baselines::NetwrapScheduler>());
  out.push_back(std::make_unique<baselines::AaScheduler>());
  out.push_back(std::make_unique<baselines::KMinMaxScheduler>());
  return out;
}

TEST(Integration, AllAlgorithmsSurviveAYear) {
  model::NetworkConfig config;
  Rng rng(100);
  const auto instance = model::make_instance(config, 120, rng);
  for (const auto& scheduler : all_schedulers()) {
    const auto result = sim::simulate(instance, *scheduler);
    EXPECT_GT(result.rounds, 0u) << scheduler->name();
    EXPECT_EQ(result.verify_violations, 0u) << scheduler->name();
    EXPECT_GT(result.sensors_charged, 0u) << scheduler->name();
  }
}

TEST(Integration, ApproBeatsOneToOneBaselinesOnTourDuration) {
  // The paper's headline (Fig. 3(a)): under load, Appro's longest tour
  // duration is far below every one-to-one baseline.
  model::NetworkConfig config;
  Rng rng(101);
  const auto instance = heat(model::make_instance(config, 300, rng), 4.0);

  core::ApproScheduler appro;
  const double appro_delay =
      sim::simulate(instance, appro).round_longest_delay_s.mean();
  for (const auto& scheduler : all_schedulers()) {
    if (scheduler->name() == "Appro") continue;
    const double other =
        sim::simulate(instance, *scheduler).round_longest_delay_s.mean();
    EXPECT_LT(appro_delay, other) << "vs " << scheduler->name();
  }
}

TEST(Integration, ApproDeadTimeNoWorseThanBaselines) {
  model::NetworkConfig config;
  Rng rng(102);
  const auto instance = heat(model::make_instance(config, 300, rng), 4.0);
  core::ApproScheduler appro;
  const double appro_dead =
      sim::simulate(instance, appro).total_dead_seconds;
  for (const auto& scheduler : all_schedulers()) {
    if (scheduler->name() == "Appro") continue;
    const double other = sim::simulate(instance, *scheduler).total_dead_seconds;
    EXPECT_LE(appro_dead, other * 1.05 + 60.0) << "vs " << scheduler->name();
  }
}

TEST(Integration, MoreChargersReduceApproDelay) {
  // Fig. 5(a)'s shape: delay drops sharply from K=1 to K=2.
  model::NetworkConfig config;
  Rng rng(103);
  config.num_chargers = 1;
  const auto base = heat(model::make_instance(config, 300, rng), 4.0);
  core::ApproScheduler appro;
  const double k1 = sim::simulate(base, appro).round_longest_delay_s.mean();
  auto instance2 = base;
  instance2.config.num_chargers = 2;
  const double k2 =
      sim::simulate(instance2, appro).round_longest_delay_s.mean();
  EXPECT_LT(k2, k1);
}

TEST(Integration, HigherDataRateIncreasesLoad) {
  // Fig. 4's shape: larger b_max -> more to-be-charged sensors -> longer
  // tours (for the same algorithm).
  model::NetworkConfig low, high;
  low.rate_max_bps = 10e3;
  high.rate_max_bps = 50e3;
  Rng rng_low(104), rng_high(104);
  const auto slow = model::make_instance(low, 120, rng_low);
  const auto fast = model::make_instance(high, 120, rng_high);
  core::ApproScheduler appro;
  const auto slow_result = sim::simulate(slow, appro);
  const auto fast_result = sim::simulate(fast, appro);
  EXPECT_GT(fast_result.sensors_charged, slow_result.sensors_charged);
}

TEST(Integration, ClusteredFieldAlsoFeasible) {
  model::NetworkConfig config;
  Rng rng(105);
  const auto instance =
      model::make_instance(config, 150, rng, model::FieldLayout::kClustered);
  for (const auto& scheduler : all_schedulers()) {
    const auto result = sim::simulate(instance, *scheduler);
    EXPECT_EQ(result.verify_violations, 0u) << scheduler->name();
  }
}

TEST(Integration, GridFieldAlsoFeasible) {
  model::NetworkConfig config;
  Rng rng(106);
  const auto instance =
      model::make_instance(config, 100, rng, model::FieldLayout::kGrid);
  core::ApproScheduler appro;
  const auto result = sim::simulate(instance, appro);
  EXPECT_EQ(result.verify_violations, 0u);
}

TEST(Integration, DepotOffCenterStillWorks) {
  model::NetworkConfig config;
  config.depot = {0.0, 0.0};  // corner depot, BS still center
  Rng rng(107);
  const auto instance = model::make_instance(config, 100, rng);
  for (const auto& scheduler : all_schedulers()) {
    const auto result = sim::simulate(instance, *scheduler);
    EXPECT_EQ(result.verify_violations, 0u) << scheduler->name();
  }
}

}  // namespace
}  // namespace mcharge
