// Tests for the model module: instance generation and ChargingProblem.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "model/charging_problem.h"
#include "model/network.h"
#include "util/rng.h"

namespace mcharge::model {
namespace {

TEST(MakeInstance, PaperDefaultsPopulated) {
  NetworkConfig config;
  Rng rng(1);
  const auto instance = make_instance(config, 500, rng);
  EXPECT_EQ(instance.num_sensors(), 500u);
  EXPECT_EQ(instance.rate_bps.size(), 500u);
  EXPECT_EQ(instance.consumption_w.size(), 500u);
  for (std::size_t v = 0; v < 500; ++v) {
    EXPECT_GE(instance.rate_bps[v], config.rate_min_bps);
    EXPECT_LT(instance.rate_bps[v], config.rate_max_bps);
    EXPECT_GT(instance.consumption_w[v], 0.0);
    EXPECT_GE(instance.positions[v].x, 0.0);
    EXPECT_LE(instance.positions[v].x, config.field_width);
  }
}

TEST(MakeInstance, LayoutsProduceRequestedCount) {
  NetworkConfig config;
  Rng rng(2);
  for (auto layout :
       {FieldLayout::kUniform, FieldLayout::kClustered, FieldLayout::kGrid}) {
    const auto instance = make_instance(config, 123, rng, layout);
    EXPECT_EQ(instance.num_sensors(), 123u);
  }
}

TEST(MakeInstance, DeterministicGivenSeed) {
  NetworkConfig config;
  Rng a(7), b(7);
  const auto x = make_instance(config, 100, a);
  const auto y = make_instance(config, 100, b);
  for (std::size_t v = 0; v < 100; ++v) {
    EXPECT_DOUBLE_EQ(x.positions[v].x, y.positions[v].x);
    EXPECT_DOUBLE_EQ(x.rate_bps[v], y.rate_bps[v]);
    EXPECT_DOUBLE_EQ(x.consumption_w[v], y.consumption_w[v]);
  }
}

TEST(WrsnInstance, DepletionSeconds) {
  NetworkConfig config;
  Rng rng(3);
  auto instance = make_instance(config, 10, rng);
  instance.consumption_w[0] = 2.0;  // easy arithmetic: 10.8 kJ battery
  EXPECT_DOUBLE_EQ(instance.depletion_seconds(0, 1.0, 0.2),
                   0.8 * 10.8e3 / 2.0);
  instance.consumption_w[1] = 0.0;
  EXPECT_TRUE(std::isinf(instance.depletion_seconds(1, 1.0, 0.0)));
}

TEST(NetworkConfig, ChargeSecondsMatchesPaper) {
  NetworkConfig config;
  // Full battery from empty: 10.8 kJ / 2 W = 1.5 hours (Section VI-A).
  EXPECT_DOUBLE_EQ(config.charge_seconds(config.battery_capacity_j), 5400.0);
}

TEST(MakeInstance, ZeroSensors) {
  NetworkConfig config;
  Rng rng(8);
  const auto instance = make_instance(config, 0, rng);
  EXPECT_EQ(instance.num_sensors(), 0u);
}

TEST(MakeInstance, MinEnergyRoutingChangesConsumption) {
  NetworkConfig hop, energy_cfg;
  energy_cfg.routing = energy::RoutingPolicy::kMinEnergy;
  Rng a(9), b(9);
  const auto with_hop = make_instance(hop, 400, a);
  const auto with_energy = make_instance(energy_cfg, 400, b);
  // Same field (same seed), different relay structure -> some sensor's
  // draw must differ.
  bool any_diff = false;
  for (std::size_t v = 0; v < 400; ++v) {
    EXPECT_DOUBLE_EQ(with_hop.positions[v].x, with_energy.positions[v].x);
    if (std::abs(with_hop.consumption_w[v] - with_energy.consumption_w[v]) >
        1e-12) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

// ---------- ChargingProblem ----------

ChargingProblem small_problem() {
  // Three sensors on a line, 2 m apart; gamma = 2.7 covers neighbors but
  // not the two ends of the line (distance 4).
  std::vector<geom::Point> pts{{0, 0}, {2, 0}, {4, 0}};
  std::vector<double> t{100.0, 50.0, 200.0};
  return ChargingProblem(std::move(pts), std::move(t), {1.0, 10.0}, 2.7, 1.0,
                         2);
}

TEST(ChargingProblem, CoverageSets) {
  const auto p = small_problem();
  EXPECT_EQ(p.coverage(0), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(p.coverage(1), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(p.coverage(2), (std::vector<std::uint32_t>{1, 2}));
}

TEST(ChargingProblem, TauIsMaxOverCoverage) {
  const auto p = small_problem();
  EXPECT_DOUBLE_EQ(p.tau(0), 100.0);
  EXPECT_DOUBLE_EQ(p.tau(1), 200.0);
  EXPECT_DOUBLE_EQ(p.tau(2), 200.0);
}

TEST(ChargingProblem, OverlappingPredicate) {
  const auto p = small_problem();
  // 0 and 2 are 4 m apart (> gamma) but share sensor 1 in coverage.
  EXPECT_TRUE(p.overlapping(0, 2));
  EXPECT_TRUE(p.overlapping(0, 1));
  EXPECT_TRUE(p.overlapping(0, 0));
}

TEST(ChargingProblem, NonOverlappingWhenFar) {
  std::vector<geom::Point> pts{{0, 0}, {50, 50}};
  ChargingProblem p(std::move(pts), {10.0, 10.0}, {0, 0}, 2.7, 1.0, 1);
  EXPECT_FALSE(p.overlapping(0, 1));
}

TEST(ChargingProblem, TravelTimes) {
  const auto p = small_problem();
  EXPECT_DOUBLE_EQ(p.travel(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(p.travel_depot(0), std::hypot(1.0, 10.0));
}

TEST(ChargingProblem, SpeedDividesTravel) {
  std::vector<geom::Point> pts{{0, 0}, {10, 0}};
  ChargingProblem p(std::move(pts), {1.0, 1.0}, {0, 0}, 1.0, 2.0, 1);
  EXPECT_DOUBLE_EQ(p.travel(0, 1), 5.0);
}

TEST(ChargingProblem, ResidualLifetimeDefaultsInfinite) {
  auto p = small_problem();
  EXPECT_TRUE(std::isinf(p.residual_lifetime(0)));
  p.set_residual_lifetimes({3.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(p.residual_lifetime(1), 2.0);
}

TEST(ChargingProblem, ChargingRateDefaultAndSetter) {
  auto p = small_problem();
  EXPECT_DOUBLE_EQ(p.charging_rate_w(), 2.0);
  p.set_charging_rate(5.0);
  EXPECT_DOUBLE_EQ(p.charging_rate_w(), 5.0);
}

TEST(ChargingProblem, EmptyProblem) {
  ChargingProblem p({}, {}, {0, 0}, 2.7, 1.0, 2);
  EXPECT_EQ(p.size(), 0u);
}

TEST(ChargingProblem, CoincidentSensorsShareCoverage) {
  std::vector<geom::Point> pts{{5, 5}, {5, 5}};
  ChargingProblem p(std::move(pts), {10.0, 20.0}, {0, 0}, 2.7, 1.0, 1);
  EXPECT_EQ(p.coverage(0).size(), 2u);
  EXPECT_DOUBLE_EQ(p.tau(0), 20.0);
}

}  // namespace
}  // namespace mcharge::model
