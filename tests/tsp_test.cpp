// Tests for TSP construction, improvement, and min-max K splitting.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "geometry/field.h"
#include "tsp/construct.h"
#include "tsp/exact.h"
#include "tsp/improve.h"
#include "tsp/split.h"
#include "tsp/tour_problem.h"
#include "util/rng.h"

namespace mcharge::tsp {
namespace {

TourProblem random_problem(std::size_t m, Rng& rng, double max_service = 100.0) {
  TourProblem p;
  p.sites = geom::uniform_field(m, 100.0, 100.0, rng);
  p.service.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    p.service.push_back(rng.uniform(0.0, max_service));
  }
  p.depot = {50.0, 50.0};
  p.speed = 1.0;
  return p;
}

/// Held-Karp exact TSP over sites + depot for tiny instances; returns the
/// optimal closed-tour travel time.
double exact_travel(const TourProblem& p) {
  const std::size_t m = p.size();
  std::vector<SiteId> perm(m);
  std::iota(perm.begin(), perm.end(), SiteId{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    Tour t(perm.begin(), perm.end());
    best = std::min(best, tour_travel_time(p, t));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

// ---------- delay accounting ----------

TEST(TourProblem, DelayComponents) {
  TourProblem p;
  p.sites = {{53.0, 50.0}, {53.0, 54.0}};
  p.service = {10.0, 20.0};
  p.depot = {50.0, 50.0};
  p.speed = 1.0;
  const Tour tour{0, 1};
  EXPECT_DOUBLE_EQ(tour_service_time(p, tour), 30.0);
  EXPECT_DOUBLE_EQ(tour_travel_time(p, tour), 3.0 + 4.0 + 5.0);
  EXPECT_DOUBLE_EQ(tour_delay(p, tour), 42.0);
}

TEST(TourProblem, EmptyTourZeroDelay) {
  TourProblem p;
  p.depot = {0, 0};
  EXPECT_DOUBLE_EQ(tour_delay(p, {}), 0.0);
}

TEST(TourProblem, SpeedScalesTravelOnly) {
  TourProblem p;
  p.sites = {{10.0, 0.0}};
  p.service = {7.0};
  p.depot = {0.0, 0.0};
  p.speed = 2.0;
  EXPECT_DOUBLE_EQ(tour_delay(p, {0}), 10.0 + 7.0);
}

TEST(TourProblem, IsCompleteTour) {
  TourProblem p;
  p.sites = {{0, 0}, {1, 1}, {2, 2}};
  p.service = {0, 0, 0};
  EXPECT_TRUE(is_complete_tour(p, {2, 0, 1}));
  EXPECT_FALSE(is_complete_tour(p, {0, 1}));
  EXPECT_FALSE(is_complete_tour(p, {0, 1, 1}));
  EXPECT_FALSE(is_complete_tour(p, {0, 1, 5}));
}

// ---------- constructors ----------

class BuilderProperty
    : public ::testing::TestWithParam<std::tuple<int, TourBuilder>> {};

TEST_P(BuilderProperty, ProducesCompleteTour) {
  const auto [seed, builder] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 1009 + 5);
  const std::size_t m = 1 + rng.below(60);
  const TourProblem p = random_problem(m, rng);
  const Tour tour = build_tour(p, builder);
  EXPECT_TRUE(is_complete_tour(p, tour));
}

INSTANTIATE_TEST_SUITE_P(
    AllBuilders, BuilderProperty,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(TourBuilder::kNearestNeighbor,
                                         TourBuilder::kGreedyEdge,
                                         TourBuilder::kDoubleTree,
                                         TourBuilder::kChristofides)));

TEST(Builders, EmptyAndSingleSite) {
  TourProblem p;
  p.depot = {0, 0};
  for (auto b : {TourBuilder::kNearestNeighbor, TourBuilder::kGreedyEdge,
                 TourBuilder::kDoubleTree, TourBuilder::kChristofides}) {
    EXPECT_TRUE(build_tour(p, b).empty());
  }
  p.sites = {{3, 4}};
  p.service = {1.0};
  for (auto b : {TourBuilder::kNearestNeighbor, TourBuilder::kGreedyEdge,
                 TourBuilder::kDoubleTree, TourBuilder::kChristofides}) {
    const Tour t = build_tour(p, b);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], 0u);
  }
}

class ChristofidesQuality : public ::testing::TestWithParam<int> {};

TEST_P(ChristofidesQuality, Within1point5OfExactOnTinyInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 11);
  const std::size_t m = 3 + rng.below(5);  // 3..7 sites
  const TourProblem p = random_problem(m, rng);
  const Tour tour = christofides_tour(p);
  const double opt = exact_travel(p);
  EXPECT_LE(tour_travel_time(p, tour), 1.5 * opt + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChristofidesQuality, ::testing::Range(0, 10));

class DoubleTreeQuality : public ::testing::TestWithParam<int> {};

TEST_P(DoubleTreeQuality, Within2OfExactOnTinyInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 29);
  const std::size_t m = 3 + rng.below(5);
  const TourProblem p = random_problem(m, rng);
  const Tour tour = double_tree_tour(p);
  EXPECT_LE(tour_travel_time(p, tour), 2.0 * exact_travel(p) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoubleTreeQuality, ::testing::Range(0, 10));

// ---------- exact (Held-Karp) ----------

class HeldKarpVsEnumeration : public ::testing::TestWithParam<int> {};

TEST_P(HeldKarpVsEnumeration, MatchesPermutationOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 7);
  const std::size_t m = 1 + rng.below(7);  // 1..7 (enumeration stays cheap)
  const TourProblem p = random_problem(m, rng);
  EXPECT_NEAR(held_karp_travel_time(p), exact_travel(p), 1e-9);
  const Tour tour = held_karp_tour(p);
  EXPECT_TRUE(is_complete_tour(p, tour));
  EXPECT_NEAR(tour_travel_time(p, tour), exact_travel(p), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeldKarpVsEnumeration, ::testing::Range(0, 10));

TEST(HeldKarp, EmptyProblem) {
  TourProblem p;
  p.depot = {0, 0};
  EXPECT_DOUBLE_EQ(held_karp_travel_time(p), 0.0);
  EXPECT_TRUE(held_karp_tour(p).empty());
}

TEST(HeldKarp, MediumInstanceLowerBoundsHeuristics) {
  Rng rng(55);
  const TourProblem p = random_problem(14, rng);
  const double opt = held_karp_travel_time(p);
  for (auto b : {TourBuilder::kNearestNeighbor, TourBuilder::kGreedyEdge,
                 TourBuilder::kDoubleTree, TourBuilder::kChristofides}) {
    const Tour tour = build_tour(p, b);
    EXPECT_GE(tour_travel_time(p, tour), opt - 1e-9)
        << "builder " << static_cast<int>(b);
  }
}

TEST(HeldKarp, TwoOptNeverBeatsExact) {
  for (int seed = 0; seed < 5; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 13 + 3);
    const TourProblem p = random_problem(10, rng);
    Tour tour = nearest_neighbor_tour(p);
    improve_tour(p, tour);
    EXPECT_GE(tour_travel_time(p, tour),
              held_karp_travel_time(p) - 1e-9);
  }
}

// ---------- improvement ----------

TEST(TwoOpt, UncrossesSquare) {
  TourProblem p;
  p.sites = {{0, 0}, {10, 10}, {10, 0}, {0, 10}};
  p.service = {0, 0, 0, 0};
  p.depot = {0, -5};
  // Crossing order: 0 -> 1 -> 2 -> 3.
  Tour tour{0, 1, 2, 3};
  const double before = tour_travel_time(p, tour);
  const double saved = two_opt(p, tour);
  EXPECT_GT(saved, 0.0);
  EXPECT_NEAR(tour_travel_time(p, tour), before - saved, 1e-9);
  EXPECT_TRUE(is_complete_tour(p, tour));
}

class ImproveProperty : public ::testing::TestWithParam<int> {};

TEST_P(ImproveProperty, NeverIncreasesTravelAndStaysComplete) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 401 + 3);
  const std::size_t m = 2 + rng.below(50);
  const TourProblem p = random_problem(m, rng);
  Tour tour = nearest_neighbor_tour(p);
  const double before = tour_travel_time(p, tour);
  const double saved = improve_tour(p, tour);
  EXPECT_GE(saved, 0.0);
  EXPECT_NEAR(tour_travel_time(p, tour), before - saved, 1e-6);
  EXPECT_TRUE(is_complete_tour(p, tour));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImproveProperty, ::testing::Range(0, 8));

TEST(OrOpt, RelocatesObviousOutlier) {
  // Line of sites visited out of order (20 before 10); relocating the
  // single site x=10 to the front saves 20 m.
  TourProblem p;
  p.sites = {{10, 0}, {20, 0}, {30, 0}, {40, 0}};
  p.service = {0, 0, 0, 0};
  p.depot = {0, 0};
  Tour tour{1, 0, 2, 3};  // 0 -> 20 -> 10 -> 30 -> 40 -> 0 = 100 m
  const double saved = or_opt(p, tour);
  EXPECT_NEAR(saved, 20.0, 1e-9);
  EXPECT_EQ(tour, (Tour{0, 1, 2, 3}));
}

// ---------- splitting ----------

TEST(Split, SingleChargerKeepsWholeTour) {
  Rng rng(1);
  const TourProblem p = random_problem(20, rng);
  Tour tour = nearest_neighbor_tour(p);
  const auto result = split_min_max(p, tour, 1);
  ASSERT_EQ(result.tours.size(), 1u);
  EXPECT_TRUE(is_complete_tour(p, result.tours[0]));
  EXPECT_NEAR(result.max_delay, tour_delay(p, tour), 1e-9);
}

TEST(Split, EmptyProblem) {
  TourProblem p;
  p.depot = {0, 0};
  const auto result = split_min_max(p, {}, 3);
  ASSERT_EQ(result.tours.size(), 3u);
  for (const auto& t : result.tours) EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(result.max_delay, 0.0);
}

class SplitProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitProperty, PartitionPreservedAndDelayConsistent) {
  const auto [seed, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 61 + 13);
  const std::size_t m = 1 + rng.below(80);
  const TourProblem p = random_problem(m, rng, 500.0);
  Tour tour = nearest_neighbor_tour(p);
  two_opt(p, tour);
  const auto result = split_min_max(p, tour, static_cast<std::size_t>(k));
  ASSERT_EQ(result.tours.size(), static_cast<std::size_t>(k));

  // Union of segments is exactly the site set, in tour order.
  Tour combined;
  for (const auto& seg : result.tours) {
    combined.insert(combined.end(), seg.begin(), seg.end());
  }
  EXPECT_EQ(combined, tour);

  // Reported max delay matches recomputation and never exceeds the whole
  // tour's delay.
  double recomputed = 0.0;
  for (const auto& seg : result.tours) {
    recomputed = std::max(recomputed, tour_delay(p, seg));
  }
  EXPECT_NEAR(result.max_delay, recomputed, 1e-9);
  EXPECT_LE(result.max_delay, tour_delay(p, tour) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitProperty,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(1, 2, 3, 5)));

/// Brute force: best max-delay over all ways to cut `tour` into <= k
/// consecutive segments (exponential; tiny inputs only).
double brute_force_split(const TourProblem& p, const Tour& tour,
                         std::size_t k) {
  const std::size_t m = tour.size();
  double best = std::numeric_limits<double>::infinity();
  // Each of the m-1 gaps is cut or not; <= k segments means <= k-1 cuts.
  const std::uint32_t gaps = m > 0 ? static_cast<std::uint32_t>(m - 1) : 0;
  for (std::uint32_t mask = 0; mask < (1u << gaps); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(mask)) > k - 1) continue;
    double worst = 0.0;
    Tour segment;
    for (std::size_t i = 0; i < m; ++i) {
      segment.push_back(tour[i]);
      const bool cut = i < gaps && (mask & (1u << i));
      if (cut || i + 1 == m) {
        worst = std::max(worst, tour_delay(p, segment));
        segment.clear();
      }
    }
    best = std::min(best, worst);
  }
  return best;
}

class SplitOptimality : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(SplitOptimality, BinarySearchMatchesBruteForceCut) {
  const auto [seed, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 131 + 71);
  const std::size_t m = 2 + rng.below(11);  // 2..12 sites
  const TourProblem p = random_problem(m, rng, 400.0);
  const Tour tour = nearest_neighbor_tour(p);
  const auto split = split_min_max(p, tour, static_cast<std::size_t>(k));
  const double brute = brute_force_split(p, tour, static_cast<std::size_t>(k));
  EXPECT_NEAR(split.max_delay, brute, 1e-6 * std::max(1.0, brute));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitOptimality,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(Split, MoreChargersNeverWorse) {
  Rng rng(17);
  const TourProblem p = random_problem(60, rng, 300.0);
  Tour tour = nearest_neighbor_tour(p);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= 5; ++k) {
    const auto result = split_min_max(p, tour, k);
    EXPECT_LE(result.max_delay, prev + 1e-9);
    prev = result.max_delay;
  }
}

TEST(Split, LowerBoundRespected) {
  // Max delay can never be below the hardest single site.
  Rng rng(23);
  const TourProblem p = random_problem(40, rng, 1000.0);
  Tour tour = nearest_neighbor_tour(p);
  double hardest = 0.0;
  for (SiteId v = 0; v < p.size(); ++v) {
    hardest = std::max(hardest, 2.0 * p.travel_depot(v) + p.service[v]);
  }
  const auto result = split_min_max(p, tour, 4);
  EXPECT_GE(result.max_delay, hardest - 1e-9);
}

// Energy of a depot-rooted segment under a SegmentEnergyCap's cost model.
double segment_energy(const TourProblem& p, const Tour& s,
                      const SegmentEnergyCap& cap) {
  if (s.empty()) return 0.0;
  double travel = p.travel_depot(s.front()) + p.travel_depot(s.back());
  double service = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i + 1 < s.size()) travel += p.travel(s[i], s[i + 1]);
    service += p.service[s[i]];
  }
  return travel * cap.travel_power_w + service * cap.service_power_w;
}

TEST(Split, DisabledEnergyCapIsByteIdentical) {
  Rng rng(29);
  const TourProblem p = random_problem(50, rng, 400.0);
  Tour tour = nearest_neighbor_tour(p);
  const auto plain = split_min_max(p, tour, 3);
  SegmentEnergyCap cap;  // budget 0 = disabled; cost fields must be inert
  cap.travel_power_w = 135.0;
  cap.service_power_w = 2.0;
  const auto capped = split_min_max(p, tour, 3, cap);
  ASSERT_EQ(plain.tours.size(), capped.tours.size());
  for (std::size_t i = 0; i < plain.tours.size(); ++i) {
    EXPECT_EQ(plain.tours[i], capped.tours[i]);
  }
  EXPECT_EQ(plain.max_delay, capped.max_delay);
}

TEST(Split, EnergyCapBoundsEverySegmentWhenRoomAllows) {
  Rng rng(31);
  const TourProblem p = random_problem(40, rng, 400.0);
  Tour tour = nearest_neighbor_tour(p);
  SegmentEnergyCap cap;
  cap.travel_power_w = 135.0;
  cap.service_power_w = 2.0;
  // A third of the whole tour's energy: binding (an uncapped 2-way split
  // must overdraw it) yet feasible with room for extra segments.
  cap.budget_j = segment_energy(p, tour, cap) / 3.0;
  const auto uncapped = split_min_max(p, tour, 2);
  bool overdraw = false;
  for (const auto& s : uncapped.tours) {
    overdraw = overdraw || segment_energy(p, s, cap) > cap.budget_j;
  }
  ASSERT_TRUE(overdraw) << "cap not binding; test instance too easy";

  const auto capped = split_min_max(p, tour, 20, cap);
  Tour combined;
  for (const auto& s : capped.tours) {
    EXPECT_LE(segment_energy(p, s, cap),
              cap.budget_j * (1.0 + 1e-12) + 1e-9);
    combined.insert(combined.end(), s.begin(), s.end());
  }
  EXPECT_EQ(combined, tour);  // still a partition in tour order
}

TEST(Split, InfeasibleEnergyCapFallsBackToUncapped) {
  Rng rng(37);
  const TourProblem p = random_problem(30, rng, 400.0);
  Tour tour = nearest_neighbor_tour(p);
  SegmentEnergyCap cap;
  cap.travel_power_w = 135.0;
  cap.service_power_w = 2.0;
  cap.budget_j = 1e-3;  // nothing multi-site fits; k = 1 cannot satisfy it
  const auto fallback = split_min_max(p, tour, 1, cap);
  const auto plain = split_min_max(p, tour, 1);
  ASSERT_EQ(fallback.tours.size(), 1u);
  EXPECT_EQ(fallback.tours[0], plain.tours[0]);
  EXPECT_TRUE(is_complete_tour(p, fallback.tours[0]));
}

TEST(MinMaxKTours, EndToEndCoversAllSites) {
  Rng rng(31);
  const TourProblem p = random_problem(100, rng, 200.0);
  const auto result = min_max_k_tours(p, 3);
  std::vector<char> seen(p.size(), 0);
  for (const auto& tour : result.tours) {
    for (SiteId v : tour) {
      EXPECT_FALSE(seen[v]);
      seen[v] = 1;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](char c) { return c; }));
  EXPECT_GT(result.max_delay, 0.0);
}

TEST(MinMaxKTours, SegmentImproveNeverHurts) {
  Rng rng(41);
  const TourProblem p = random_problem(80, rng, 200.0);
  MinMaxTourOptions with, without;
  with.improve_segments = true;
  without.improve_segments = false;
  const auto a = min_max_k_tours(p, 3, with);
  const auto b = min_max_k_tours(p, 3, without);
  EXPECT_LE(a.max_delay, b.max_delay + 1e-9);
}

// ---------- distance cache ----------

TEST(DistanceCache, MatchesOnTheFlyGeometryBitwise) {
  Rng rng(51);
  const TourProblem p = random_problem(60, rng);
  ASSERT_FALSE(p.has_distance_cache());
  // Record the uncached answers, then build the cache and re-query.
  std::vector<double> travel_before, depot_before;
  for (SiteId a = 0; a < p.size(); ++a) {
    depot_before.push_back(p.travel_depot(a));
    for (SiteId b = 0; b < p.size(); ++b) {
      travel_before.push_back(p.travel(a, b));
    }
  }
  p.ensure_distance_cache();
  ASSERT_TRUE(p.has_distance_cache());
  std::size_t idx = 0;
  for (SiteId a = 0; a < p.size(); ++a) {
    EXPECT_EQ(p.travel_depot(a), depot_before[a]);
    for (SiteId b = 0; b < p.size(); ++b) {
      EXPECT_EQ(p.travel(a, b), travel_before[idx++]);  // bitwise
    }
  }
}

TEST(DistanceCache, SymmetricAndZeroDiagonal) {
  Rng rng(52);
  const TourProblem p = random_problem(30, rng);
  p.ensure_distance_cache();
  for (SiteId a = 0; a < p.size(); ++a) {
    EXPECT_EQ(p.distance(a, a), 0.0);
    for (SiteId b = a + 1; b < p.size(); ++b) {
      EXPECT_EQ(p.distance(a, b), p.distance(b, a));
    }
  }
}

TEST(DistanceCache, DropRestoresOnTheFlyPath) {
  Rng rng(53);
  const TourProblem p = random_problem(10, rng);
  p.ensure_distance_cache();
  ASSERT_TRUE(p.has_distance_cache());
  p.drop_distance_cache();
  EXPECT_FALSE(p.has_distance_cache());
  EXPECT_EQ(p.travel(0, 1), geom::distance(p.sites[0], p.sites[1]) / p.speed);
}

TEST(DistanceCache, StaleSizeIsRebuilt) {
  Rng rng(54);
  TourProblem p = random_problem(10, rng);
  p.ensure_distance_cache();
  p.sites.push_back({1.0, 2.0});
  p.service.push_back(0.0);
  EXPECT_FALSE(p.has_distance_cache());  // size mismatch = stale
  p.ensure_distance_cache();
  ASSERT_TRUE(p.has_distance_cache());
  EXPECT_EQ(p.distance(0, 10), geom::distance(p.sites[0], p.sites[10]));
}

TEST(DistanceCache, EmptyProblemBuildIsANoOpButCounts) {
  TourProblem p;
  EXPECT_FALSE(p.has_distance_cache());
  p.ensure_distance_cache();
  // m == 0 allocates nothing, but the build is remembered: repeated
  // ensure/drop cycles on empty subproblems must stay allocation-free.
  EXPECT_TRUE(p.has_distance_cache());
  EXPECT_EQ(p.depot_distance_ptr(), nullptr);
  EXPECT_EQ(p.soa_x(), nullptr);
  p.drop_distance_cache();
  EXPECT_FALSE(p.has_distance_cache());
}

TEST(DistanceCache, SingleSiteBuildIsANoOp) {
  TourProblem p;
  p.sites.push_back({3.0, 4.0});
  p.service.push_back(1.0);
  p.ensure_distance_cache();
  EXPECT_TRUE(p.has_distance_cache());
  // No tables for a single site; queries fall through to on-the-fly
  // geometry and stay bitwise-correct.
  EXPECT_EQ(p.depot_distance_ptr(), nullptr);
  EXPECT_EQ(p.distance_row_ptr(0), nullptr);
  EXPECT_EQ(p.distance_depot(0), 5.0);
  EXPECT_EQ(p.distance(0, 0), 0.0);
}

TEST(DistanceCache, SingleSiteStaysCurrentUntilSitesGrow) {
  TourProblem p;
  p.sites.push_back({3.0, 4.0});
  p.service.push_back(1.0);
  p.ensure_distance_cache();
  ASSERT_TRUE(p.has_distance_cache());
  p.sites.push_back({6.0, 8.0});
  p.service.push_back(1.0);
  EXPECT_FALSE(p.has_distance_cache());
  p.ensure_distance_cache();
  ASSERT_TRUE(p.has_distance_cache());
  ASSERT_NE(p.distance_row_ptr(0), nullptr);
  EXPECT_EQ(p.distance(0, 1), 5.0);
}

TEST(DistanceCache, RowPointersMatchQueries) {
  Rng rng(58);
  const TourProblem p = random_problem(17, rng);
  p.ensure_distance_cache();
  ASSERT_NE(p.depot_distance_ptr(), nullptr);
  for (SiteId a = 0; a < p.size(); ++a) {
    EXPECT_EQ(p.depot_distance_ptr()[a], p.distance_depot(a));
    const double* row = p.distance_row_ptr(a);
    ASSERT_NE(row, nullptr);
    for (SiteId b = 0; b < p.size(); ++b) {
      EXPECT_EQ(row[b], p.distance(a, b));
    }
    EXPECT_EQ(p.soa_x()[a], p.sites[a].x);
    EXPECT_EQ(p.soa_y()[a], p.sites[a].y);
  }
}

TEST(DistanceCache, TwoOptIdenticalWithAndWithoutCache) {
  Rng rng(55);
  const TourProblem uncached = random_problem(80, rng);
  TourProblem cached = uncached;
  cached.ensure_distance_cache();

  Tour tour_uncached = nearest_neighbor_tour(uncached);
  // nearest_neighbor_tour builds the cache on its own problem; rebuild the
  // uncached starting tour without one to keep that path honest too.
  uncached.drop_distance_cache();
  Tour tour_cached = tour_uncached;

  const double saved_uncached = two_opt(uncached, tour_uncached);
  const double saved_cached = two_opt(cached, tour_cached);
  EXPECT_EQ(saved_uncached, saved_cached);  // bitwise-identical gains
  EXPECT_EQ(tour_uncached, tour_cached);    // identical final tours
}

TEST(DistanceCache, OrOptIdenticalWithAndWithoutCache) {
  Rng rng(56);
  const TourProblem uncached = random_problem(80, rng);
  TourProblem cached = uncached;
  cached.ensure_distance_cache();

  Tour base = nearest_neighbor_tour(cached);
  uncached.drop_distance_cache();
  Tour tour_uncached = base;
  Tour tour_cached = base;

  const double saved_uncached = or_opt(uncached, tour_uncached);
  const double saved_cached = or_opt(cached, tour_cached);
  EXPECT_EQ(saved_uncached, saved_cached);
  EXPECT_EQ(tour_uncached, tour_cached);
}

TEST(DistanceCache, MinMaxKToursIdenticalWithPrebuiltCache) {
  Rng rng(57);
  const TourProblem fresh = random_problem(60, rng, 200.0);
  TourProblem prebuilt = fresh;
  prebuilt.ensure_distance_cache();
  const auto a = min_max_k_tours(fresh, 3);     // builds its cache inside
  const auto b = min_max_k_tours(prebuilt, 3);  // reuses the prebuilt one
  EXPECT_EQ(a.max_delay, b.max_delay);
  EXPECT_EQ(a.tours, b.tours);
}

}  // namespace
}  // namespace mcharge::tsp
