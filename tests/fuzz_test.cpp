// Stress / failure-injection suite: extreme and degenerate parameter
// combinations through the full pipeline. Every case must either be
// rejected by a documented precondition (not exercised here) or produce a
// verifier-clean schedule.
#include <gtest/gtest.h>

#include <limits>

#include "baselines/aa.h"
#include "baselines/greedy_cover.h"
#include "baselines/kedf.h"
#include "baselines/kminmax.h"
#include "baselines/netwrap.h"
#include "core/appro.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace mcharge {
namespace {

std::vector<const sched::Scheduler*> everyone(
    const core::ApproScheduler& a, const baselines::KMinMaxScheduler& b,
    const baselines::KEdfScheduler& c, const baselines::NetwrapScheduler& d,
    const baselines::AaScheduler& e,
    const baselines::GreedyCoverScheduler& f) {
  return {&a, &b, &c, &d, &e, &f};
}

void expect_clean(const model::ChargingProblem& p, const char* label) {
  const core::ApproScheduler appro;
  const baselines::KMinMaxScheduler kminmax;
  const baselines::KEdfScheduler kedf;
  const baselines::NetwrapScheduler netwrap;
  const baselines::AaScheduler aa;
  const baselines::GreedyCoverScheduler cover;
  for (const auto* algo : everyone(appro, kminmax, kedf, netwrap, aa, cover)) {
    const auto schedule = sched::execute_plan(p, algo->plan(p));
    sched::VerifyOptions opts;
    opts.require_full_coverage = algo->name() != "AA";
    const auto violations = sched::verify_schedule(p, schedule, opts);
    EXPECT_TRUE(violations.empty())
        << label << " / " << algo->name() << ": "
        << (violations.empty() ? "" : violations[0]);
  }
}

TEST(Fuzz, AllSensorsAtOnePoint) {
  std::vector<geom::Point> pts(40, geom::Point{37.0, 81.0});
  std::vector<double> t(40, 2000.0);
  model::ChargingProblem p(std::move(pts), std::move(t), {50, 50}, 2.7, 1.0,
                           3);
  p.set_residual_lifetimes(std::vector<double>(40, 1e4));
  expect_clean(p, "co-located");
}

TEST(Fuzz, ZeroChargingRadiusDegeneratesToOneToOneGeometry) {
  Rng rng(1);
  std::vector<geom::Point> pts;
  std::vector<double> t;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});
    t.push_back(rng.uniform(100.0, 500.0));
  }
  model::ChargingProblem p(std::move(pts), std::move(t), {25, 25}, 0.0, 1.0,
                           2);
  p.set_residual_lifetimes(std::vector<double>(30, 1e5));
  expect_clean(p, "gamma=0");
}

TEST(Fuzz, HugeRadiusCoversWholeField) {
  Rng rng(2);
  std::vector<geom::Point> pts;
  std::vector<double> t;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    t.push_back(rng.uniform(100.0, 500.0));
  }
  model::ChargingProblem p(std::move(pts), std::move(t), {50, 50}, 500.0, 1.0,
                           2);
  p.set_residual_lifetimes(std::vector<double>(50, 1e5));
  // One stop charges everything; with gamma covering the field every pair
  // of stops conflicts, so multi-node plans must serialize.
  const core::ApproScheduler appro;
  const auto plan = appro.plan(p);
  EXPECT_EQ(plan.total_stops(), 1u);
  expect_clean(p, "gamma=field");
}

TEST(Fuzz, ZeroDeficits) {
  Rng rng(3);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 25; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  model::ChargingProblem p(std::move(pts), std::vector<double>(25, 0.0),
                           {50, 50}, 2.7, 1.0, 2);
  p.set_residual_lifetimes(std::vector<double>(25, 1e5));
  expect_clean(p, "zero-deficit");
}

TEST(Fuzz, ManyChargersFewSensors) {
  model::ChargingProblem p({{10, 10}, {90, 90}}, {500.0, 500.0}, {50, 50},
                           2.7, 1.0, 8);
  p.set_residual_lifetimes({1e4, 1e4});
  expect_clean(p, "K=8,n=2");
}

TEST(Fuzz, ExtremeSpeeds) {
  Rng rng(4);
  for (double speed : {1e-3, 1e3}) {
    std::vector<geom::Point> pts;
    std::vector<double> t;
    for (int i = 0; i < 20; ++i) {
      pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
      t.push_back(rng.uniform(10.0, 100.0));
    }
    model::ChargingProblem p(std::move(pts), std::move(t), {50, 50}, 2.7,
                             speed, 2);
    p.set_residual_lifetimes(std::vector<double>(20, 1e9));
    expect_clean(p, "extreme speed");
  }
}

TEST(Fuzz, DepotFarOutsideField) {
  Rng rng(5);
  std::vector<geom::Point> pts;
  std::vector<double> t;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    t.push_back(rng.uniform(100.0, 1000.0));
  }
  model::ChargingProblem p(std::move(pts), std::move(t), {-500.0, 1200.0},
                           2.7, 1.0, 3);
  p.set_residual_lifetimes(std::vector<double>(30, 1e6));
  expect_clean(p, "far depot");
}

TEST(Fuzz, WildDeficitSpread) {
  // tau_max / tau_min enormous: stresses the insertion bookkeeping.
  Rng rng(6);
  std::vector<geom::Point> pts;
  std::vector<double> t;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0)});
    t.push_back(i % 2 == 0 ? 1e-3 : 1e5);
  }
  model::ChargingProblem p(std::move(pts), std::move(t), {30, 30}, 2.7, 1.0,
                           2);
  p.set_residual_lifetimes(std::vector<double>(60, 1e7));
  expect_clean(p, "wild deficits");
}

TEST(Fuzz, RandomizedParameterSweep) {
  for (int trial = 0; trial < 25; ++trial) {
    Rng rng(1000 + static_cast<std::uint64_t>(trial) * 37);
    const std::size_t n = 1 + rng.below(150);
    const std::size_t k = 1 + rng.below(6);
    const double gamma = rng.uniform(0.0, 20.0);
    const double speed = rng.uniform(0.1, 10.0);
    const double field = rng.uniform(10.0, 200.0);
    std::vector<geom::Point> pts;
    std::vector<double> t;
    std::vector<double> life;
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(0.0, field), rng.uniform(0.0, field)});
      t.push_back(rng.uniform(0.0, 5000.0));
      life.push_back(rng.uniform(10.0, 1e6));
    }
    model::ChargingProblem p(std::move(pts), std::move(t),
                             {rng.uniform(0.0, field), rng.uniform(0.0, field)},
                             gamma, speed, k);
    p.set_residual_lifetimes(std::move(life));
    expect_clean(p, "random sweep");
  }
}

TEST(Fuzz, SimulatorSurvivesHarshConfigs) {
  core::ApproScheduler appro;
  model::NetworkConfig config;
  config.request_threshold = 0.5;  // half the fleet always hungry
  config.num_chargers = 1;
  Rng rng(7);
  auto instance = model::make_instance(config, 60, rng);
  for (auto& w : instance.consumption_w) w *= 10.0;  // very hot network
  sim::SimConfig sc;
  sc.monitoring_period_s = 60.0 * 86400.0;
  const auto result = sim::simulate(instance, appro, sc);
  EXPECT_EQ(result.verify_violations, 0u);
  EXPECT_GT(result.rounds, 0u);
  // Conservation: no sensor can be dead longer than the horizon.
  for (double dead : result.dead_seconds_per_sensor) {
    EXPECT_LE(dead, sc.monitoring_period_s + 1.0);
  }
}

}  // namespace
}  // namespace mcharge
