// Stress / failure-injection suite: extreme and degenerate parameter
// combinations through the full pipeline. Every case must either be
// rejected by a documented precondition (not exercised here) or produce a
// verifier-clean schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "baselines/aa.h"
#include "baselines/greedy_cover.h"
#include "baselines/kedf.h"
#include "baselines/kminmax.h"
#include "baselines/netwrap.h"
#include "core/appro.h"
#include "io/instance_io.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace mcharge {
namespace {

std::vector<const sched::Scheduler*> everyone(
    const core::ApproScheduler& a, const baselines::KMinMaxScheduler& b,
    const baselines::KEdfScheduler& c, const baselines::NetwrapScheduler& d,
    const baselines::AaScheduler& e,
    const baselines::GreedyCoverScheduler& f) {
  return {&a, &b, &c, &d, &e, &f};
}

void expect_clean(const model::ChargingProblem& p, const char* label) {
  const core::ApproScheduler appro;
  const baselines::KMinMaxScheduler kminmax;
  const baselines::KEdfScheduler kedf;
  const baselines::NetwrapScheduler netwrap;
  const baselines::AaScheduler aa;
  const baselines::GreedyCoverScheduler cover;
  for (const auto* algo : everyone(appro, kminmax, kedf, netwrap, aa, cover)) {
    const auto schedule = sched::execute_plan(p, algo->plan(p));
    sched::VerifyOptions opts;
    opts.require_full_coverage = algo->name() != "AA";
    const auto violations = sched::verify_schedule(p, schedule, opts);
    EXPECT_TRUE(violations.empty())
        << label << " / " << algo->name() << ": "
        << (violations.empty() ? "" : violations[0]);
  }
}

TEST(Fuzz, AllSensorsAtOnePoint) {
  std::vector<geom::Point> pts(40, geom::Point{37.0, 81.0});
  std::vector<double> t(40, 2000.0);
  model::ChargingProblem p(std::move(pts), std::move(t), {50, 50}, 2.7, 1.0,
                           3);
  p.set_residual_lifetimes(std::vector<double>(40, 1e4));
  expect_clean(p, "co-located");
}

TEST(Fuzz, ZeroChargingRadiusDegeneratesToOneToOneGeometry) {
  Rng rng(1);
  std::vector<geom::Point> pts;
  std::vector<double> t;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});
    t.push_back(rng.uniform(100.0, 500.0));
  }
  model::ChargingProblem p(std::move(pts), std::move(t), {25, 25}, 0.0, 1.0,
                           2);
  p.set_residual_lifetimes(std::vector<double>(30, 1e5));
  expect_clean(p, "gamma=0");
}

TEST(Fuzz, HugeRadiusCoversWholeField) {
  Rng rng(2);
  std::vector<geom::Point> pts;
  std::vector<double> t;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    t.push_back(rng.uniform(100.0, 500.0));
  }
  model::ChargingProblem p(std::move(pts), std::move(t), {50, 50}, 500.0, 1.0,
                           2);
  p.set_residual_lifetimes(std::vector<double>(50, 1e5));
  // One stop charges everything; with gamma covering the field every pair
  // of stops conflicts, so multi-node plans must serialize.
  const core::ApproScheduler appro;
  const auto plan = appro.plan(p);
  EXPECT_EQ(plan.total_stops(), 1u);
  expect_clean(p, "gamma=field");
}

TEST(Fuzz, ZeroDeficits) {
  Rng rng(3);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 25; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  model::ChargingProblem p(std::move(pts), std::vector<double>(25, 0.0),
                           {50, 50}, 2.7, 1.0, 2);
  p.set_residual_lifetimes(std::vector<double>(25, 1e5));
  expect_clean(p, "zero-deficit");
}

TEST(Fuzz, ManyChargersFewSensors) {
  model::ChargingProblem p({{10, 10}, {90, 90}}, {500.0, 500.0}, {50, 50},
                           2.7, 1.0, 8);
  p.set_residual_lifetimes({1e4, 1e4});
  expect_clean(p, "K=8,n=2");
}

TEST(Fuzz, ExtremeSpeeds) {
  Rng rng(4);
  for (double speed : {1e-3, 1e3}) {
    std::vector<geom::Point> pts;
    std::vector<double> t;
    for (int i = 0; i < 20; ++i) {
      pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
      t.push_back(rng.uniform(10.0, 100.0));
    }
    model::ChargingProblem p(std::move(pts), std::move(t), {50, 50}, 2.7,
                             speed, 2);
    p.set_residual_lifetimes(std::vector<double>(20, 1e9));
    expect_clean(p, "extreme speed");
  }
}

TEST(Fuzz, DepotFarOutsideField) {
  Rng rng(5);
  std::vector<geom::Point> pts;
  std::vector<double> t;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    t.push_back(rng.uniform(100.0, 1000.0));
  }
  model::ChargingProblem p(std::move(pts), std::move(t), {-500.0, 1200.0},
                           2.7, 1.0, 3);
  p.set_residual_lifetimes(std::vector<double>(30, 1e6));
  expect_clean(p, "far depot");
}

TEST(Fuzz, WildDeficitSpread) {
  // tau_max / tau_min enormous: stresses the insertion bookkeeping.
  Rng rng(6);
  std::vector<geom::Point> pts;
  std::vector<double> t;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform(0.0, 60.0), rng.uniform(0.0, 60.0)});
    t.push_back(i % 2 == 0 ? 1e-3 : 1e5);
  }
  model::ChargingProblem p(std::move(pts), std::move(t), {30, 30}, 2.7, 1.0,
                           2);
  p.set_residual_lifetimes(std::vector<double>(60, 1e7));
  expect_clean(p, "wild deficits");
}

TEST(Fuzz, RandomizedParameterSweep) {
  for (int trial = 0; trial < 25; ++trial) {
    Rng rng(1000 + static_cast<std::uint64_t>(trial) * 37);
    const std::size_t n = 1 + rng.below(150);
    const std::size_t k = 1 + rng.below(6);
    const double gamma = rng.uniform(0.0, 20.0);
    const double speed = rng.uniform(0.1, 10.0);
    const double field = rng.uniform(10.0, 200.0);
    std::vector<geom::Point> pts;
    std::vector<double> t;
    std::vector<double> life;
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(0.0, field), rng.uniform(0.0, field)});
      t.push_back(rng.uniform(0.0, 5000.0));
      life.push_back(rng.uniform(10.0, 1e6));
    }
    model::ChargingProblem p(std::move(pts), std::move(t),
                             {rng.uniform(0.0, field), rng.uniform(0.0, field)},
                             gamma, speed, k);
    p.set_residual_lifetimes(std::move(life));
    expect_clean(p, "random sweep");
  }
}

// ---------- malformed instance/round files ----------
//
// The loaders are the trust boundary for external data: every malformed
// file must come back as nullopt with a non-empty error, never as a crash
// or a silently-wrong instance.

constexpr const char* kGoodConfig =
    "config,100,100,50,50,0,0,10000,2.7,5,1,3,0.2\n";

std::string write_fuzz_file(const std::string& name,
                            const std::string& body) {
  const std::string path = ::testing::TempDir() + "/fuzz_" + name + ".csv";
  std::ofstream out(path);
  out << body;
  return path;
}

void expect_instance_rejected(const std::string& name,
                              const std::string& body) {
  const std::string path = write_fuzz_file(name, body);
  std::string error;
  const auto instance = io::read_instance_csv(path, &error);
  EXPECT_FALSE(instance.has_value()) << name;
  EXPECT_FALSE(error.empty()) << name;
  std::remove(path.c_str());
}

TEST(FuzzIo, MalformedInstanceFilesAreRejected) {
  const std::string good_sensor = "sensor,10,20,5,0.5\n";
  // Short and long sensor rows.
  expect_instance_rejected("short_row",
                           std::string(kGoodConfig) + "sensor,10,20,5\n");
  expect_instance_rejected(
      "long_row", std::string(kGoodConfig) + "sensor,0,10,20,5,0.5,99\n");
  // NaN / Inf fields in positions and physics.
  expect_instance_rejected(
      "nan_position", std::string(kGoodConfig) + "sensor,nan,20,5,0.5\n");
  expect_instance_rejected(
      "inf_position", std::string(kGoodConfig) + "sensor,10,inf,5,0.5\n");
  expect_instance_rejected(
      "nan_consumption", std::string(kGoodConfig) + "sensor,10,20,5,nan\n");
  expect_instance_rejected(
      "negative_rate", std::string(kGoodConfig) + "sensor,10,20,-5,0.5\n");
  expect_instance_rejected(
      "nan_config",
      "config,100,100,50,50,0,0,nan,2.7,5,1,3,0.2\n" + good_sensor);
  // Duplicate / out-of-order v2 sensor ids.
  expect_instance_rejected("dup_id", std::string(kGoodConfig) +
                                         "sensor,0,10,20,5,0.5\n"
                                         "sensor,0,30,40,5,0.5\n");
  expect_instance_rejected("skipped_id", std::string(kGoodConfig) +
                                             "sensor,0,10,20,5,0.5\n"
                                             "sensor,2,30,40,5,0.5\n");
  expect_instance_rejected(
      "fractional_id", std::string(kGoodConfig) + "sensor,0.5,10,20,5,0.5\n");
  // Trailing garbage after a number ("1.5abc" must not parse as 1.5).
  expect_instance_rejected(
      "trailing_garbage",
      std::string(kGoodConfig) + "sensor,10abc,20,5,0.5\n");
  // Config-line problems.
  expect_instance_rejected("no_config", good_sensor);
  expect_instance_rejected("dup_config", std::string(kGoodConfig) +
                                             std::string(kGoodConfig) +
                                             good_sensor);
  expect_instance_rejected(
      "zero_speed",
      "config,100,100,50,50,0,0,10000,2.7,5,0,3,0.2\n" + good_sensor);
  expect_instance_rejected(
      "fractional_k",
      "config,100,100,50,50,0,0,10000,2.7,5,1,2.5,0.2\n" + good_sensor);
  expect_instance_rejected(
      "bad_threshold",
      "config,100,100,50,50,0,0,10000,2.7,5,1,3,1.5\n" + good_sensor);
}

TEST(FuzzIo, MalformedRoundFilesAreRejected) {
  const char* cases[][2] = {
      {"short", "10,20\n"},
      {"long", "10,20,500,100,7\n"},
      {"nan_pos", "nan,20,500\n"},
      {"inf_deficit", "10,20,inf\n"},
      {"neg_deficit", "10,20,-500\n"},
      {"nan_lifetime", "10,20,500,nan\n"},
      {"neg_lifetime", "10,20,500,-1\n"},
      {"garbage", "10,20,5x0\n"},
      {"mixed_lifetimes", "10,20,500,100\n30,40,500\n"},
      {"empty", "# mcharge-round v1\n"},
  };
  for (const auto& c : cases) {
    const std::string path = write_fuzz_file(std::string("round_") + c[0],
                                             c[1]);
    std::string error;
    const auto round = io::read_round_csv(path, &error);
    EXPECT_FALSE(round.has_value()) << c[0];
    EXPECT_FALSE(error.empty()) << c[0];
    std::remove(path.c_str());
  }
}

TEST(FuzzIo, V2SensorRowsWithCorrectIdsLoad) {
  const std::string path = write_fuzz_file("v2_good",
                                           std::string(kGoodConfig) +
                                               "sensor,0,10,20,5,0.5\n"
                                               "sensor,1,30,40,6,0.6\n");
  std::string error;
  const auto instance = io::read_instance_csv(path, &error);
  ASSERT_TRUE(instance.has_value()) << error;
  EXPECT_EQ(instance->num_sensors(), 2u);
  EXPECT_DOUBLE_EQ(instance->positions[1].x, 30.0);
  EXPECT_DOUBLE_EQ(instance->consumption_w[1], 0.6);
  // +inf lifetime is legal in round files (a sensor that never drains).
  const std::string rpath =
      write_fuzz_file("round_inf_life", "10,20,500,inf\n");
  const auto round = io::read_round_csv(rpath, &error);
  ASSERT_TRUE(round.has_value()) << error;
  EXPECT_TRUE(std::isinf(round->residual_lifetime_s[0]));
  std::remove(path.c_str());
  std::remove(rpath.c_str());
}

TEST(Fuzz, SimulatorSurvivesHarshConfigs) {
  core::ApproScheduler appro;
  model::NetworkConfig config;
  config.request_threshold = 0.5;  // half the fleet always hungry
  config.num_chargers = 1;
  Rng rng(7);
  auto instance = model::make_instance(config, 60, rng);
  for (auto& w : instance.consumption_w) w *= 10.0;  // very hot network
  sim::SimConfig sc;
  sc.monitoring_period_s = 60.0 * 86400.0;
  const auto result = sim::simulate(instance, appro, sc);
  EXPECT_EQ(result.verify_violations, 0u);
  EXPECT_GT(result.rounds, 0u);
  // Conservation: no sensor can be dead longer than the horizon.
  for (double dead : result.dead_seconds_per_sensor) {
    EXPECT_LE(dead, sc.monitoring_period_s + 1.0);
  }
}

}  // namespace
}  // namespace mcharge
