// Bitwise determinism of sim::simulate across worker counts and SIMD
// backends.
//
// The contract under test (SimConfig::jobs): for a fixed instance and
// config, the full SimResult — every scalar, every per-sensor vector,
// every RunningStats moment, every RoundLog entry — is bit-identical no
// matter how many worker threads shard the per-sensor scans and no
// matter which SIMD backend serves the kernels. shard_grain is lowered
// so that jobs > 1 really splits the scans at test-sized n instead of
// falling back to the serial path.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/appro.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/simd.h"

namespace mcharge::sim {
namespace {

/// Pins a backend for a scope; restores the previous one on exit.
class BackendGuard {
 public:
  explicit BackendGuard(simd::Backend b) : prev_(simd::active_backend()) {
    active_ = simd::set_backend(b);
  }
  ~BackendGuard() { simd::set_backend(prev_); }
  simd::Backend active() const { return active_; }

 private:
  simd::Backend prev_;
  simd::Backend active_;
};

std::vector<simd::Backend> supported_backends() {
  std::vector<simd::Backend> out{simd::Backend::kScalar};
  for (simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kAvx512}) {
    BackendGuard guard(b);
    if (guard.active() == b) out.push_back(b);
  }
  return out;
}

/// Bitwise equality for doubles (EXPECT_EQ would treat -0.0 == 0.0 and
/// could be fooled by NaN; the contract is stronger).
::testing::AssertionResult bits_eq(const char* a_expr, const char* b_expr,
                                   double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a_expr << " and " << b_expr << " differ bitwise: " << a
         << " vs " << b;
}

#define EXPECT_BITS_EQ(a, b) EXPECT_PRED_FORMAT2(bits_eq, a, b)

void expect_stats_identical(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_BITS_EQ(a.sum(), b.sum());
  EXPECT_BITS_EQ(a.mean(), b.mean());
  EXPECT_BITS_EQ(a.variance(), b.variance());
  EXPECT_BITS_EQ(a.min(), b.min());
  EXPECT_BITS_EQ(a.max(), b.max());
}

void expect_results_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.sensors_charged, b.sensors_charged);
  EXPECT_BITS_EQ(a.total_dead_seconds, b.total_dead_seconds);
  EXPECT_BITS_EQ(a.mean_dead_minutes_per_sensor,
                 b.mean_dead_minutes_per_sensor);
  expect_stats_identical(a.round_longest_delay_s, b.round_longest_delay_s);
  expect_stats_identical(a.round_batch_size, b.round_batch_size);
  expect_stats_identical(a.request_latency_s, b.request_latency_s);
  EXPECT_BITS_EQ(a.total_conflict_wait_s, b.total_conflict_wait_s);
  EXPECT_EQ(a.verify_violations, b.verify_violations);
  EXPECT_BITS_EQ(a.busy_fraction, b.busy_fraction);
  ASSERT_EQ(a.dead_seconds_per_sensor.size(), b.dead_seconds_per_sensor.size());
  EXPECT_EQ(0, std::memcmp(a.dead_seconds_per_sensor.data(),
                           b.dead_seconds_per_sensor.data(),
                           a.dead_seconds_per_sensor.size() * sizeof(double)));
  ASSERT_EQ(a.charges_per_sensor.size(), b.charges_per_sensor.size());
  EXPECT_EQ(a.charges_per_sensor, b.charges_per_sensor);
  ASSERT_EQ(a.dead_seconds_by_month.size(), b.dead_seconds_by_month.size());
  EXPECT_EQ(0, std::memcmp(a.dead_seconds_by_month.data(),
                           b.dead_seconds_by_month.data(),
                           a.dead_seconds_by_month.size() * sizeof(double)));
  ASSERT_EQ(a.rounds_log.size(), b.rounds_log.size());
  for (std::size_t i = 0; i < a.rounds_log.size(); ++i) {
    EXPECT_BITS_EQ(a.rounds_log[i].dispatch_time,
                   b.rounds_log[i].dispatch_time);
    EXPECT_EQ(a.rounds_log[i].batch, b.rounds_log[i].batch);
    EXPECT_EQ(a.rounds_log[i].charged, b.rounds_log[i].charged);
    EXPECT_BITS_EQ(a.rounds_log[i].longest_delay_s,
                   b.rounds_log[i].longest_delay_s);
    EXPECT_BITS_EQ(a.rounds_log[i].wait_s, b.rounds_log[i].wait_s);
  }
}

struct Variant {
  double dispatch_epoch_s;
  double charge_target_fraction;
  const char* tag;
};

TEST(SimDeterminism, ByteIdenticalAcrossJobsAndBackends) {
  Rng rng(77);
  auto instance = model::make_instance(model::NetworkConfig{}, 300, rng);
  // Load the fleet so the run has dead sensors, censored rounds, and big
  // batches — every accounting path, not just the easy ones.
  for (auto& w : instance.consumption_w) w *= 3.0;
  core::ApproScheduler appro;

  const Variant variants[] = {
      {0.0, 1.0, "on-demand/full"},
      {86400.0, 1.0, "epoch/full"},
      {0.0, 0.6, "on-demand/partial"},
  };
  for (const Variant& variant : variants) {
    SimConfig config;
    config.monitoring_period_s = 60.0 * 86400.0;
    config.record_rounds = true;
    config.dispatch_epoch_s = variant.dispatch_epoch_s;
    config.charge_target_fraction = variant.charge_target_fraction;
    config.shard_grain = 32;  // force real sharding at n = 300

    // Reference: serial scan, scalar kernels.
    SimResult reference;
    {
      BackendGuard guard(simd::Backend::kScalar);
      config.jobs = 1;
      reference = simulate(instance, appro, config);
    }
    ASSERT_GT(reference.rounds, 0u) << variant.tag;

    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      for (std::size_t jobs : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
        config.jobs = jobs;
        const SimResult got = simulate(instance, appro, config);
        SCOPED_TRACE(std::string(variant.tag) + " jobs=" +
                     std::to_string(jobs) + " backend=" +
                     simd::backend_name(b));
        expect_results_identical(reference, got);
      }
    }
  }
}

TEST(SimDeterminism, JobsZeroUsesDefaultAndStaysIdentical) {
  Rng rng(78);
  const auto instance =
      model::make_instance(model::NetworkConfig{}, 200, rng);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 45.0 * 86400.0;
  config.record_rounds = true;
  config.shard_grain = 16;
  config.jobs = 1;
  const SimResult reference = simulate(instance, appro, config);
  config.jobs = 0;  // default_jobs()
  const SimResult got = simulate(instance, appro, config);
  expect_results_identical(reference, got);
}

}  // namespace
}  // namespace mcharge::sim
