// Bitwise determinism of sim::simulate across worker counts and SIMD
// backends.
//
// The contract under test (SimConfig::jobs): for a fixed instance and
// config, the full SimResult — every scalar, every per-sensor vector,
// every RunningStats moment, every RoundLog entry — is bit-identical no
// matter how many worker threads shard the per-sensor scans and no
// matter which SIMD backend serves the kernels. shard_grain is lowered
// so that jobs > 1 really splits the scans at test-sized n instead of
// falling back to the serial path.
#include <gtest/gtest.h>

#include <vector>

#include "core/appro.h"
#include "sim/simulation.h"
#include "sim_compare.h"
#include "util/rng.h"
#include "util/simd.h"

namespace mcharge::sim {
namespace {

struct Variant {
  double dispatch_epoch_s;
  double charge_target_fraction;
  const char* tag;
};

TEST(SimDeterminism, ByteIdenticalAcrossJobsAndBackends) {
  Rng rng(77);
  auto instance = model::make_instance(model::NetworkConfig{}, 300, rng);
  // Load the fleet so the run has dead sensors, censored rounds, and big
  // batches — every accounting path, not just the easy ones.
  for (auto& w : instance.consumption_w) w *= 3.0;
  core::ApproScheduler appro;

  const Variant variants[] = {
      {0.0, 1.0, "on-demand/full"},
      {86400.0, 1.0, "epoch/full"},
      {0.0, 0.6, "on-demand/partial"},
  };
  for (const Variant& variant : variants) {
    SimConfig config;
    config.monitoring_period_s = 60.0 * 86400.0;
    config.record_rounds = true;
    config.dispatch_epoch_s = variant.dispatch_epoch_s;
    config.charge_target_fraction = variant.charge_target_fraction;
    config.shard_grain = 32;  // force real sharding at n = 300

    // Reference: serial scan, scalar kernels.
    SimResult reference;
    {
      BackendGuard guard(simd::Backend::kScalar);
      config.jobs = 1;
      reference = simulate(instance, appro, config);
    }
    ASSERT_GT(reference.rounds, 0u) << variant.tag;

    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      for (std::size_t jobs : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
        config.jobs = jobs;
        const SimResult got = simulate(instance, appro, config);
        SCOPED_TRACE(std::string(variant.tag) + " jobs=" +
                     std::to_string(jobs) + " backend=" +
                     simd::backend_name(b));
        expect_results_identical(reference, got);
      }
    }
  }
}

TEST(SimDeterminism, JobsZeroUsesDefaultAndStaysIdentical) {
  Rng rng(78);
  const auto instance =
      model::make_instance(model::NetworkConfig{}, 200, rng);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 45.0 * 86400.0;
  config.record_rounds = true;
  config.shard_grain = 16;
  config.jobs = 1;
  const SimResult reference = simulate(instance, appro, config);
  config.jobs = 0;  // default_jobs()
  const SimResult got = simulate(instance, appro, config);
  expect_results_identical(reference, got);
}

}  // namespace
}  // namespace mcharge::sim
