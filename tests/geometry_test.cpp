// Unit and property tests for the geometry module.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geometry/field.h"
#include "geometry/grid_index.h"
#include "geometry/point.h"
#include "util/rng.h"

namespace mcharge::geom {
namespace {

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ((a + b), (Point{4.0, 1.0}));
  EXPECT_EQ((a - b), (Point{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Point{2.0, 4.0}));
}

TEST(Point, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Point, WithinIsInclusive) {
  EXPECT_TRUE(within({0, 0}, {3, 4}, 5.0));
  EXPECT_FALSE(within({0, 0}, {3, 4}, 4.999));
  EXPECT_TRUE(within({0, 0}, {0, 0}, 0.0));
}

TEST(BoundingBox, ExpandAndContains) {
  BoundingBox box;
  EXPECT_TRUE(box.empty);
  box.expand({1, 2});
  box.expand({-1, 5});
  EXPECT_FALSE(box.empty);
  EXPECT_TRUE(box.contains({0, 3}));
  EXPECT_FALSE(box.contains({2, 3}));
  EXPECT_DOUBLE_EQ(box.width(), 2.0);
  EXPECT_DOUBLE_EQ(box.height(), 3.0);
}

TEST(ClosedTourLength, SquarePerimeter) {
  const std::vector<Point> square{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(closed_tour_length(square), 4.0);
}

TEST(ClosedTourLength, DegenerateCases) {
  EXPECT_DOUBLE_EQ(closed_tour_length({}), 0.0);
  EXPECT_DOUBLE_EQ(closed_tour_length({{5, 5}}), 0.0);
  // Two points: out and back.
  EXPECT_DOUBLE_EQ(closed_tour_length({{0, 0}, {3, 4}}), 10.0);
}

TEST(Centroid, OfSquare) {
  const std::vector<Point> square{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const Point c = centroid(square);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
}

// ---------- GridIndex ----------

std::vector<std::uint32_t> brute_disk(const std::vector<Point>& pts,
                                      Point center, double r) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (within(center, pts[i], r)) out.push_back(i);
  }
  return out;
}

TEST(GridIndex, EmptyPointSet) {
  GridIndex index({}, 1.0);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.query_disk({0, 0}, 10.0).empty());
}

TEST(GridIndex, SinglePoint) {
  GridIndex index({{5, 5}}, 1.0);
  EXPECT_EQ(index.query_disk({5, 5}, 0.0).size(), 1u);
  EXPECT_TRUE(index.query_disk({7, 5}, 1.0).empty());
  EXPECT_EQ(index.query_disk({6, 5}, 1.0).size(), 1u);
}

TEST(GridIndex, ExcludesSelf) {
  GridIndex index({{0, 0}, {0.5, 0}}, 1.0);
  const auto r = index.query_disk_excluding({0, 0}, 1.0, 0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 1u);
}

class GridIndexProperty : public ::testing::TestWithParam<int> {};

TEST_P(GridIndexProperty, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 50 + rng.below(200);
  auto pts = uniform_field(n, 100.0, 100.0, rng);
  GridIndex index(pts, 2.7);
  for (int q = 0; q < 50; ++q) {
    const Point c{rng.uniform(-10, 110), rng.uniform(-10, 110)};
    const double r = rng.uniform(0.0, 15.0);
    auto got = index.query_disk(c, r);
    auto want = brute_disk(pts, c, r);
    EXPECT_EQ(got, want) << "center (" << c.x << "," << c.y << ") r " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexProperty, ::testing::Range(0, 8));

TEST(GridIndex, VisitEarlyStop) {
  Rng rng(3);
  auto pts = uniform_field(100, 10.0, 10.0, rng);
  GridIndex index(pts, 1.0);
  int count = 0;
  const bool completed = index.visit_disk({5, 5}, 20.0, [&](std::uint32_t) {
    return ++count < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 3);
}

// ---------- fields ----------

TEST(Field, UniformWithinBounds) {
  Rng rng(1);
  auto pts = uniform_field(500, 100.0, 50.0, rng);
  EXPECT_EQ(pts.size(), 500u);
  for (Point p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 50.0);
  }
}

TEST(Field, UniformCoversField) {
  Rng rng(2);
  auto pts = uniform_field(2000, 100.0, 100.0, rng);
  const auto box = bounding_box(pts);
  EXPECT_LT(box.lo.x, 10.0);
  EXPECT_GT(box.hi.x, 90.0);
  EXPECT_LT(box.lo.y, 10.0);
  EXPECT_GT(box.hi.y, 90.0);
}

TEST(Field, ClusteredWithinBoundsAndClumped) {
  Rng rng(4);
  auto pts = clustered_field(1000, 100.0, 100.0, 3, 5.0, rng);
  EXPECT_EQ(pts.size(), 1000u);
  for (Point p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 100.0);
  }
  // Clumped: the mean nearest-neighbor distance should be well below the
  // uniform expectation (~0.5 / sqrt(density) = 1.58 m for 1000 in 100x100).
  double total_nn = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    double best = 1e18;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, distance(pts[i], pts[j]));
    }
    total_nn += best;
  }
  EXPECT_LT(total_nn / 200.0, 1.2);
}

TEST(Field, GridLayoutIsSpread) {
  Rng rng(5);
  auto pts = grid_field(100, 100.0, 100.0, 0.1, rng);
  EXPECT_EQ(pts.size(), 100u);
  // Min pairwise distance should be close to the 10 m pitch.
  double min_d = 1e18;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      min_d = std::min(min_d, distance(pts[i], pts[j]));
    }
  }
  EXPECT_GT(min_d, 5.0);
}

TEST(Field, ZeroPoints) {
  Rng rng(6);
  EXPECT_TRUE(uniform_field(0, 10, 10, rng).empty());
  EXPECT_TRUE(grid_field(0, 10, 10, 0.1, rng).empty());
}

}  // namespace
}  // namespace mcharge::geom
