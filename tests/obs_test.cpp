// Tests for the tracing & metrics layer (src/obs) and its central
// contract: observation never changes behavior.
//
// Part 1 exercises the primitives themselves (spans, counters, gauges,
// enable scoping, report rendering) — compiled only when the layer is
// built in, since -DMCHARGE_NO_OBS=ON erases the macros by design.
//
// Part 2 asserts the byte-identity contract and compiles in BOTH build
// modes: for every supported SIMD backend x worker count x fault/recovery
// mode, a traced run's SimResult is bit-identical (every scalar, vector,
// stats moment, and RoundLog entry) to the untraced run's, and full Appro
// plans are identical with tracing on vs off. Under MCHARGE_NO_OBS the
// trace flag is inert and the same assertions pin that down.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/appro.h"
#include "geometry/point.h"
#include "model/charging_problem.h"
#include "model/network.h"
#include "obs/obs.h"
#include "sim/faults.h"
#include "sim/simulation.h"
#include "sim_compare.h"
#include "util/rng.h"
#include "util/simd.h"

namespace mcharge::sim {
namespace {

#ifndef MCHARGE_NO_OBS

/// Finds a metric by name in a captured report; fails the test if absent.
const obs::MetricSnapshot* find_metric(const obs::TraceReport& report,
                                       const std::string& name) {
  for (const auto& m : report.metrics) {
    if (m.name == name) return &m;
  }
  ADD_FAILURE() << "metric not captured: " << name;
  return nullptr;
}

TEST(ObsPrimitives, SpanCounterGaugeAccumulate) {
  obs::reset();
  const obs::EnabledScope scope(true);
  for (int i = 0; i < 3; ++i) {
    OBS_SPAN("obs_test.unit.span");
  }
  OBS_COUNT("obs_test.unit.counter", 5);
  OBS_COUNT("obs_test.unit.counter", 7);
  OBS_GAUGE("obs_test.unit.gauge", 9);
  OBS_GAUGE("obs_test.unit.gauge", 4);

  const obs::TraceReport report = obs::capture();
  const auto* span = find_metric(report, "obs_test.unit.span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->kind, obs::Kind::kSpan);
  EXPECT_EQ(span->count, 3u);
  EXPECT_GE(span->total_s, 0.0);

  const auto* counter = find_metric(report, "obs_test.unit.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->kind, obs::Kind::kCounter);
  EXPECT_EQ(counter->count, 2u);
  EXPECT_EQ(counter->value, 12);

  const auto* gauge = find_metric(report, "obs_test.unit.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, obs::Kind::kGauge);
  EXPECT_EQ(gauge->count, 2u);
  EXPECT_EQ(gauge->value, 4);
  EXPECT_EQ(gauge->max_value, 9);
}

TEST(ObsPrimitives, DisabledSitesRegisterButStayZero) {
  obs::reset();
  ASSERT_FALSE(obs::enabled());
  OBS_COUNT("obs_test.unit.disabled_counter", 100);
  {
    OBS_SPAN("obs_test.unit.disabled_span");
  }
  const obs::TraceReport report = obs::capture();
  const auto* counter =
      find_metric(report, "obs_test.unit.disabled_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->count, 0u);
  EXPECT_EQ(counter->value, 0);
  const auto* span = find_metric(report, "obs_test.unit.disabled_span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 0u);
}

TEST(ObsPrimitives, EnabledScopeRestoresPriorState) {
  ASSERT_FALSE(obs::enabled());
  {
    const obs::EnabledScope scope(true);
    EXPECT_TRUE(obs::enabled());
    {
      const obs::EnabledScope inner(false);  // no-op scope
      EXPECT_TRUE(obs::enabled());
    }
    EXPECT_TRUE(obs::enabled());
  }
  EXPECT_FALSE(obs::enabled());
}

TEST(ObsPrimitives, ResetZeroesAccumulatorsButKeepsSites) {
  obs::reset();
  {
    const obs::EnabledScope scope(true);
    OBS_COUNT("obs_test.unit.reset_counter", 3);
  }
  obs::reset();
  const auto* counter =
      find_metric(obs::capture(), "obs_test.unit.reset_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->count, 0u);
  EXPECT_EQ(counter->value, 0);
}

TEST(ObsReport, JsonCarriesSchemaAndSortedMetrics) {
  obs::reset();
  {
    const obs::EnabledScope scope(true);
    OBS_COUNT("obs_test.report.metric", 1);
  }
  const obs::TraceReport report = obs::capture();
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"mcharge.trace.v1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("obs_test.report.metric"), std::string::npos);
  for (std::size_t i = 1; i < report.metrics.size(); ++i) {
    EXPECT_LT(report.metrics[i - 1].name, report.metrics[i].name);
  }
  EXPECT_FALSE(report.to_table().empty());
}

TEST(ObsReport, SimulatorPopulatesCoreSpans) {
  // A traced simulation must light up the instrumented subsystems
  // end-to-end: planner phases, executor, and the simulator scans.
  obs::reset();
  Rng rng(5);
  const auto instance = model::make_instance(model::NetworkConfig{}, 60, rng);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 20.0 * 86400.0;
  config.trace = true;
  const SimResult result = simulate(instance, appro, config);
  ASSERT_GT(result.rounds, 0u);
  const obs::TraceReport report = obs::capture();
  for (const char* name : {"appro.plan", "exec.multinode", "sim.round"}) {
    const auto* m = find_metric(report, name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_GT(m->count, 0u) << name;
  }
}

#endif  // MCHARGE_NO_OBS

// ---------- byte-identity: tracing must never change results ----------

struct FaultMode {
  const char* tag;
  double breakdown_prob;
  core::RecoveryPolicy recovery;
};

FaultConfig identity_faults(double breakdown_prob) {
  FaultConfig f;
  f.seed = 99;
  f.mcv_breakdown_prob = breakdown_prob;
  f.travel_jitter = 0.2;
  f.charge_jitter = 0.2;
  f.dispatch_delay_prob = 0.2;
  f.dispatch_delay_max_s = 1200.0;
  return f;
}

TEST(ObsIdentity, SimResultsByteIdenticalTracedVsUntraced) {
  Rng rng(17);
  const auto instance = model::make_instance(model::NetworkConfig{}, 70, rng);
  core::ApproScheduler appro;

  const FaultMode modes[] = {
      {"fault-free", 0.0, core::RecoveryPolicy::kDefer},
      {"defer", 0.3, core::RecoveryPolicy::kDefer},
      {"graft", 0.3, core::RecoveryPolicy::kGraft},
      {"replan", 0.3, core::RecoveryPolicy::kReplan},
  };
  for (const FaultMode& mode : modes) {
    SimConfig config;
    config.monitoring_period_s = 25.0 * 86400.0;
    config.record_rounds = true;
    config.shard_grain = 8;  // real sharding at n = 70
    config.faults = identity_faults(mode.breakdown_prob);
    config.recovery = mode.recovery;
    for (const simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      for (const std::size_t jobs :
           {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        config.jobs = jobs;
        config.trace = false;
        const SimResult untraced = simulate(instance, appro, config);
        config.trace = true;
        const SimResult traced = simulate(instance, appro, config);
        SCOPED_TRACE(std::string(mode.tag) + " backend=" +
                     simd::backend_name(b) + " jobs=" +
                     std::to_string(jobs));
        ASSERT_GT(untraced.rounds, 0u);
        expect_results_identical(untraced, traced);
      }
    }
  }
}

TEST(ObsIdentity, PlansIdenticalTracedVsUntraced) {
  Rng rng(23);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < 240; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  const model::ChargingProblem problem(std::move(pts), std::move(deficits),
                                       {50.0, 50.0}, 2.7, 1.0, 3);

  const sched::ChargingPlan untraced = core::ApproScheduler().plan(problem);
  sched::ChargingPlan traced;
  {
    const obs::EnabledScope scope(true);
    traced = core::ApproScheduler().plan(problem);
  }
  EXPECT_EQ(untraced.mode, traced.mode);
  EXPECT_EQ(untraced.tours, traced.tours);
  EXPECT_EQ(untraced.starts, traced.starts);
}

}  // namespace
}  // namespace mcharge::sim
