// Differential tests for the geometric matching engines.
//
// The sparse price-and-repair engine and the dense blossom engine solve
// the SAME perturbed integer objective (matching/quantize.h), whose
// optimum is generically unique — so the two engines must return the
// IDENTICAL matching (not merely equal weight) on every instance:
// random geometric, clustered, collinear, duplicate-point, and the real
// odd-vertex sets Christofides produces at paper scales. Where the
// instance is small enough, both are also cross-checked against the
// exact bitmask DP on the real-valued objective. Finally, full Appro
// plans must be byte-identical under engine = dense vs sparse, across
// every SIMD backend this machine supports.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/appro.h"
#include "geometry/field.h"
#include "geometry/point.h"
#include "graph/mst.h"
#include "matching/blossom.h"
#include "matching/matching.h"
#include "model/charging_problem.h"
#include "schedule/scheduler.h"
#include "util/rng.h"
#include "util/simd.h"

namespace mcharge::matching {
namespace {

WeightFn euclidean(const std::vector<geom::Point>& pts) {
  return [&pts](std::uint32_t a, std::uint32_t b) {
    return geom::distance(pts[a], pts[b]);
  };
}

/// Asserts the full engine contract on one instance: both blossom engines
/// perfect and identical; DP agreement on the real objective when small.
void expect_engines_agree(const std::vector<geom::Point>& pts) {
  const std::size_t n = pts.size();
  const auto w = euclidean(pts);
  const Matching dense = dense_blossom_euclidean_matching(pts);
  ASSERT_TRUE(is_perfect_matching(n, dense)) << "n=" << n;
  const Matching sparse = sparse_blossom_euclidean_matching(pts);
  ASSERT_TRUE(is_perfect_matching(n, sparse)) << "n=" << n;
  EXPECT_EQ(dense, sparse) << "n=" << n;
  EXPECT_EQ(matching_weight(dense, w), matching_weight(sparse, w));
  if (n <= kExactLimit && n > 0) {
    const Matching dp = exact_min_weight_matching(n, w);
    // The DP optimizes the unquantized objective; agreement is up to the
    // quantizer's resolution (>= 2^20 steps over the bbox diagonal).
    const double diag = 150.0;
    const double tol =
        static_cast<double>(n) * diag / (1 << 20) + 1e-9;
    EXPECT_NEAR(matching_weight(dp, w), matching_weight(sparse, w), tol)
        << "n=" << n;
  }
}

class EnginesRandomGeometric : public ::testing::TestWithParam<int> {};

TEST_P(EnginesRandomGeometric, SparseEqualsDense) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 11);
  const std::size_t n = 2 * (1 + rng.below(90));  // 2..180
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  expect_engines_agree(pts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginesRandomGeometric,
                         ::testing::Range(0, 20));

class EnginesClustered : public ::testing::TestWithParam<int> {};

TEST_P(EnginesClustered, SparseEqualsDense) {
  // Tight clusters: many near-ties, heavy blossom formation, and a
  // candidate graph whose k-NN edges all stay inside one cluster — the
  // pricing pass must discover the inter-cluster edges itself.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7877 + 3);
  std::vector<geom::Point> pts;
  const int clusters = 3 + static_cast<int>(rng.below(3));
  for (int c = 0; c < clusters; ++c) {
    const geom::Point center{rng.uniform(0.0, 100.0),
                             rng.uniform(0.0, 100.0)};
    const int size = 3 + static_cast<int>(rng.below(8));
    for (int i = 0; i < size; ++i) {
      pts.push_back({center.x + rng.uniform(-0.5, 0.5),
                     center.y + rng.uniform(-0.5, 0.5)});
    }
  }
  if (pts.size() % 2 == 1) pts.push_back({50.0, 50.0});
  expect_engines_agree(pts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginesClustered, ::testing::Range(0, 12));

TEST(EnginesDegenerate, CollinearPoints) {
  for (const std::size_t n : {std::size_t{6}, std::size_t{16},
                              std::size_t{60}}) {
    std::vector<geom::Point> pts;
    Rng rng(n * 31 + 7);
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(0.0, 100.0), 25.0});
    }
    expect_engines_agree(pts);
  }
}

TEST(EnginesDegenerate, EvenlySpacedLine) {
  std::vector<geom::Point> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({static_cast<double>(i), 0.0});
  }
  expect_engines_agree(pts);
}

TEST(EnginesDegenerate, DuplicatePoints) {
  // Coincident points: every pairing has the same primary cost, so the
  // tie perturbation alone decides the optimum — both engines must pick
  // the same one.
  Rng rng(97);
  std::vector<geom::Point> pts;
  for (int site = 0; site < 5; ++site) {
    const geom::Point p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    for (int copy = 0; copy < 4; ++copy) pts.push_back(p);
  }
  expect_engines_agree(pts);
}

TEST(EnginesDegenerate, AllPointsIdentical) {
  const std::vector<geom::Point> pts(12, geom::Point{4.0, 4.0});
  expect_engines_agree(pts);
}

TEST(EnginesDegenerate, TinyInstances) {
  expect_engines_agree({});
  expect_engines_agree({{1.0, 2.0}, {3.0, 4.0}});
  expect_engines_agree({{0, 0}, {0, 1}, {100, 0}, {100, 1}});
}

/// Odd-degree MST vertices of a uniform instance — the exact population
/// the Christofides call site feeds the matching.
std::vector<geom::Point> christofides_odd_set(std::size_t sites,
                                              std::uint64_t seed) {
  Rng rng(seed);
  auto pts = geom::uniform_field(sites, 100.0, 100.0, rng);
  pts.insert(pts.begin(), geom::Point{50.0, 50.0});  // depot as vertex 0
  const auto mst =
      graph::prim_mst(pts.size(), [&](std::uint32_t a, std::uint32_t b) {
        return geom::distance(pts[a], pts[b]);
      });
  std::vector<std::size_t> degree(pts.size(), 0);
  for (const auto& e : mst) {
    ++degree[e.u];
    ++degree[e.v];
  }
  std::vector<geom::Point> odd;
  for (std::size_t v = 0; v < pts.size(); ++v) {
    if (degree[v] % 2 == 1) odd.push_back(pts[v]);
  }
  return odd;
}

TEST(EnginesChristofides, RealOddVertexSetsAtPaperScales) {
  // 300- and 1200-sensor rounds produce odd sets of a few hundred
  // vertices — the exact population the default engine must handle.
  for (const std::size_t sites : {std::size_t{300}, std::size_t{1200}}) {
    const auto odd = christofides_odd_set(sites, sites * 13 + 1);
    ASSERT_EQ(odd.size() % 2, 0u);
    ASSERT_GE(odd.size(), 32u);
    expect_engines_agree(odd);
  }
}

TEST(EnginesDispatch, AutoMatchesForcedEngines) {
  Rng rng(55);
  const auto small = geom::uniform_field(12, 100.0, 100.0, rng);
  const auto w_small = euclidean(small);
  // kAuto at n <= kExactLimit routes to the DP.
  const auto auto_small = min_weight_euclidean_matching(small);
  EXPECT_EQ(matching_weight(auto_small, w_small),
            matching_weight(exact_min_weight_matching(12, w_small), w_small));

  const auto mid = geom::uniform_field(120, 100.0, 100.0, rng);
  // kAuto above kExactLimit routes to a blossom engine (dense below
  // kSparseCrossover, sparse up to kBlossomLimit); either way the result
  // must equal the sparse engine's, since the engines are identical.
  const auto auto_mid = min_weight_euclidean_matching(mid);
  EXPECT_EQ(auto_mid, sparse_blossom_euclidean_matching(mid));
  const auto big = geom::uniform_field(
      2 * kSparseCrossover, 100.0, 100.0, rng);
  EXPECT_EQ(min_weight_euclidean_matching(big),
            sparse_blossom_euclidean_matching(big));
  MatchingOptions force_dense;
  force_dense.engine = MatchingEngine::kDenseBlossom;
  EXPECT_EQ(auto_mid, min_weight_euclidean_matching(mid, force_dense));
  MatchingOptions local;
  local.engine = MatchingEngine::kLocalSearch;
  const auto heuristic = min_weight_euclidean_matching(mid, local);
  EXPECT_TRUE(is_perfect_matching(120, heuristic));
  const auto w_mid = euclidean(mid);
  EXPECT_LE(matching_weight(auto_mid, w_mid),
            matching_weight(heuristic, w_mid) + 1e-9);
}

TEST(EnginesDispatch, SparseKnnInsensitive) {
  // The repair loop certifies optimality regardless of how sparse the
  // initial candidate graph is.
  Rng rng(91);
  const auto pts = geom::uniform_field(150, 100.0, 100.0, rng);
  const auto reference = sparse_blossom_euclidean_matching(pts, 8);
  for (const int knn : {1, 2, 5, 16}) {
    EXPECT_EQ(reference, sparse_blossom_euclidean_matching(pts, knn))
        << "knn=" << knn;
  }
}

class EnginesWarmStart : public ::testing::TestWithParam<int> {};

TEST_P(EnginesWarmStart, ManyPricingRoundsStayExact) {
  // Starved candidate graphs (knn = 1..2) force the maximum number of
  // price-and-repair rounds, so every round past the first re-solves
  // from warm duals and a warm matching. Each re-solve stresses the
  // warm-start entry invariants (feasibility bump, parity rounding,
  // tightness unmatch) on duals the solver itself exported — clustered
  // layouts add near-ties and blossom-heavy duals on top. The dense
  // engine is the oracle: identical matching, not merely equal weight.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9697 + 29);
  std::vector<geom::Point> pts;
  if (GetParam() % 2 == 0) {
    pts = geom::uniform_field(120 + 2 * rng.below(31), 100.0, 100.0, rng);
  } else {
    const int clusters = 4 + static_cast<int>(rng.below(3));
    for (int c = 0; c < clusters; ++c) {
      const geom::Point center{rng.uniform(0.0, 100.0),
                               rng.uniform(0.0, 100.0)};
      const int size = 10 + static_cast<int>(rng.below(12));
      for (int i = 0; i < size; ++i) {
        pts.push_back({center.x + rng.uniform(-0.8, 0.8),
                       center.y + rng.uniform(-0.8, 0.8)});
      }
    }
    if (pts.size() % 2 == 1) pts.push_back({50.0, 50.0});
  }
  const Matching dense = dense_blossom_euclidean_matching(pts);
  for (const int knn : {1, 2}) {
    EXPECT_EQ(dense, sparse_blossom_euclidean_matching(pts, knn))
        << "knn=" << knn << " n=" << pts.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginesWarmStart, ::testing::Range(0, 8));

// ---------- full-plan byte identity ----------

/// Pins a backend for a scope; restores the previous one on exit.
class BackendGuard {
 public:
  explicit BackendGuard(simd::Backend b) : prev_(simd::active_backend()) {
    active_ = simd::set_backend(b);
  }
  ~BackendGuard() { simd::set_backend(prev_); }
  simd::Backend active() const { return active_; }

 private:
  simd::Backend prev_;
  simd::Backend active_;
};

std::vector<simd::Backend> supported_backends() {
  std::vector<simd::Backend> out{simd::Backend::kScalar};
  for (simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kAvx512}) {
    BackendGuard guard(b);
    if (guard.active() == b) out.push_back(b);
  }
  return out;
}

/// Flat byte image of a plan (tour sites length-prefixed per tour).
std::vector<std::uint64_t> serialize(const sched::ChargingPlan& plan) {
  std::vector<std::uint64_t> out;
  out.push_back(plan.tours.size());
  for (const auto& tour : plan.tours) {
    out.push_back(tour.size());
    for (const auto v : tour) out.push_back(v);
  }
  return out;
}

TEST(EnginesPlan, ByteIdenticalAcrossEnginesAndBackends) {
  Rng rng(4242);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < 400; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  const model::ChargingProblem problem(std::move(pts), std::move(deficits),
                                       {50.0, 50.0}, 2.7, 1.0, 3);

  core::ApproOptions dense_opts;
  dense_opts.tour.matching.engine = MatchingEngine::kDenseBlossom;
  core::ApproOptions sparse_opts;
  sparse_opts.tour.matching.engine = MatchingEngine::kSparseBlossom;

  std::vector<std::uint64_t> reference;
  {
    BackendGuard guard(simd::Backend::kScalar);
    reference = serialize(core::ApproScheduler(dense_opts).plan(problem));
  }
  for (const simd::Backend b : supported_backends()) {
    BackendGuard guard(b);
    const auto dense_plan =
        serialize(core::ApproScheduler(dense_opts).plan(problem));
    const auto sparse_plan =
        serialize(core::ApproScheduler(sparse_opts).plan(problem));
    EXPECT_EQ(reference, dense_plan) << "backend=" << static_cast<int>(b);
    EXPECT_EQ(reference, sparse_plan) << "backend=" << static_cast<int>(b);
  }
}

}  // namespace
}  // namespace mcharge::matching
