// Tests for the four baseline schedulers: K-minMax, K-EDF, NETWRAP, AA.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "baselines/aa.h"
#include "baselines/greedy_cover.h"
#include "baselines/kedf.h"
#include "baselines/kminmax.h"
#include "baselines/netwrap.h"
#include "model/charging_problem.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/rng.h"

namespace mcharge::baselines {
namespace {

using model::ChargingProblem;

ChargingProblem random_problem(std::size_t n, std::size_t k, Rng& rng) {
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  std::vector<double> lifetimes;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
    lifetimes.push_back(rng.uniform(600.0, 4.0e5));
  }
  ChargingProblem p(std::move(pts), std::move(deficits), {50, 50}, 2.7, 1.0,
                    k);
  p.set_residual_lifetimes(std::move(lifetimes));
  return p;
}

void expect_one_to_one_cover_all(const sched::ChargingPlan& plan,
                                 std::size_t n) {
  EXPECT_EQ(plan.mode, sched::ChargeMode::kOneToOne);
  std::set<std::uint32_t> seen;
  for (const auto& tour : plan.tours) {
    for (std::uint32_t v : tour) {
      EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
    }
  }
  EXPECT_EQ(seen.size(), n);
}

// ---------- K-minMax ----------

TEST(KMinMax, CoversAllSensorsOnce) {
  Rng rng(1);
  const auto p = random_problem(120, 3, rng);
  KMinMaxScheduler sched_algo;
  const auto plan = sched_algo.plan(p);
  ASSERT_EQ(plan.tours.size(), 3u);
  expect_one_to_one_cover_all(plan, 120);
}

TEST(KMinMax, ExecutesFeasibly) {
  Rng rng(2);
  const auto p = random_problem(80, 2, rng);
  KMinMaxScheduler sched_algo;
  const auto schedule = sched::execute_plan(p, sched_algo.plan(p));
  EXPECT_TRUE(sched::verify_schedule(p, schedule).empty());
  EXPECT_TRUE(schedule.all_charged());
}

TEST(KMinMax, MoreChargersHelp) {
  Rng rng(3);
  const auto base = random_problem(150, 1, rng);
  double k1 = 0.0, k4 = 0.0;
  for (std::size_t k : {std::size_t{1}, std::size_t{4}}) {
    ChargingProblem p(std::vector<geom::Point>(base.positions()),
                      std::vector<double>(base.charge_seconds()), base.depot(),
                      base.gamma(), base.speed(), k);
    KMinMaxScheduler sched_algo;
    const double delay =
        sched::execute_plan(p, sched_algo.plan(p)).longest_delay();
    (k == 1 ? k1 : k4) = delay;
  }
  EXPECT_LT(k4, k1);
}

// ---------- K-EDF ----------

TEST(KEdf, CoversAllAndRespectsDeadlineGrouping) {
  Rng rng(4);
  const auto p = random_problem(60, 2, rng);
  KEdfScheduler sched_algo;
  const auto plan = sched_algo.plan(p);
  expect_one_to_one_cover_all(plan, 60);

  // Reconstruct the group index of each sensor: position in tour = group.
  // Every sensor in group g must have residual lifetime <= any in g+2
  // (groups of size K=2 taken in deadline order; adjacent groups may
  // interleave equal values, two groups apart may not).
  std::vector<double> group_deadline_max;
  for (std::size_t pos = 0;; ++pos) {
    double mx = -1.0;
    bool any = false;
    for (const auto& tour : plan.tours) {
      if (pos < tour.size()) {
        mx = std::max(mx, p.residual_lifetime(tour[pos]));
        any = true;
      }
    }
    if (!any) break;
    group_deadline_max.push_back(mx);
  }
  for (std::size_t g = 0; g + 2 < group_deadline_max.size(); ++g) {
    double later_min = std::numeric_limits<double>::infinity();
    for (const auto& tour : plan.tours) {
      if (g + 2 < tour.size()) {
        later_min = std::min(later_min, p.residual_lifetime(tour[g + 2]));
      }
    }
    if (later_min != std::numeric_limits<double>::infinity()) {
      EXPECT_LE(group_deadline_max[g], later_min + 1e-9);
    }
  }
}

TEST(KEdf, ExecutesFeasibly) {
  Rng rng(5);
  const auto p = random_problem(90, 3, rng);
  KEdfScheduler sched_algo;
  const auto schedule = sched::execute_plan(p, sched_algo.plan(p));
  EXPECT_TRUE(sched::verify_schedule(p, schedule).empty());
  EXPECT_TRUE(schedule.all_charged());
}

TEST(KEdf, SingleCharger) {
  Rng rng(6);
  const auto p = random_problem(30, 1, rng);
  KEdfScheduler sched_algo;
  const auto plan = sched_algo.plan(p);
  ASSERT_EQ(plan.tours.size(), 1u);
  // With K=1 the tour must be exactly deadline order.
  for (std::size_t i = 0; i + 1 < plan.tours[0].size(); ++i) {
    EXPECT_LE(p.residual_lifetime(plan.tours[0][i]),
              p.residual_lifetime(plan.tours[0][i + 1]) + 1e-9);
  }
}

TEST(KEdf, EmptyProblem) {
  ChargingProblem p({}, {}, {0, 0}, 2.7, 1.0, 2);
  KEdfScheduler sched_algo;
  const auto plan = sched_algo.plan(p);
  EXPECT_EQ(plan.total_stops(), 0u);
}

// ---------- NETWRAP ----------

TEST(Netwrap, CoversAllSensorsOnce) {
  Rng rng(7);
  const auto p = random_problem(70, 2, rng);
  NetwrapScheduler sched_algo;
  expect_one_to_one_cover_all(sched_algo.plan(p), 70);
}

TEST(Netwrap, ExecutesFeasibly) {
  Rng rng(8);
  const auto p = random_problem(100, 4, rng);
  NetwrapScheduler sched_algo;
  const auto schedule = sched::execute_plan(p, sched_algo.plan(p));
  EXPECT_TRUE(sched::verify_schedule(p, schedule).empty());
  EXPECT_TRUE(schedule.all_charged());
}

TEST(Netwrap, PureTravelWeightActsGreedyByDistance) {
  // travel_weight = 1: first pick is the sensor nearest the depot.
  Rng rng(9);
  const auto p = random_problem(50, 1, rng);
  NetwrapScheduler sched_algo(1.0);
  const auto plan = sched_algo.plan(p);
  ASSERT_FALSE(plan.tours[0].empty());
  std::uint32_t nearest = 0;
  for (std::uint32_t v = 1; v < p.size(); ++v) {
    if (geom::distance(p.depot(), p.position(v)) <
        geom::distance(p.depot(), p.position(nearest))) {
      nearest = v;
    }
  }
  EXPECT_EQ(plan.tours[0][0], nearest);
}

TEST(Netwrap, PureDeadlineWeightActsEdf) {
  // travel_weight = 0: K=1 visits in deadline order.
  Rng rng(10);
  const auto p = random_problem(40, 1, rng);
  NetwrapScheduler sched_algo(0.0);
  const auto plan = sched_algo.plan(p);
  for (std::size_t i = 0; i + 1 < plan.tours[0].size(); ++i) {
    EXPECT_LE(p.residual_lifetime(plan.tours[0][i]),
              p.residual_lifetime(plan.tours[0][i + 1]) + 1e-9);
  }
}

// ---------- AA ----------

TEST(Aa, PartitionsAndExecutesFeasibly) {
  Rng rng(11);
  const auto p = random_problem(120, 3, rng);
  AaScheduler sched_algo;
  const auto plan = sched_algo.plan(p);
  EXPECT_EQ(plan.tours.size(), 3u);
  const auto schedule = sched::execute_plan(p, plan);
  sched::VerifyOptions opts;
  opts.require_full_coverage = false;  // AA may prune unprofitable sensors
  EXPECT_TRUE(sched::verify_schedule(p, schedule, opts).empty());
}

TEST(Aa, ChargesEverythingWhenProfitable) {
  // Deep deficits in a small field: nothing is unprofitable.
  Rng rng(12);
  const auto p = random_problem(80, 2, rng);
  AaScheduler sched_algo;
  const auto plan = sched_algo.plan(p);
  expect_one_to_one_cover_all(plan, 80);
}

TEST(Aa, PrunesUnprofitableSensors) {
  // Tiny deficits + huge locomotion cost: everything is unprofitable.
  std::vector<geom::Point> pts{{10, 10}, {90, 90}};
  ChargingProblem p(std::move(pts), {1.0, 1.0}, {50, 50}, 2.7, 1.0, 1);
  p.set_residual_lifetimes({100.0, 200.0});
  AaScheduler::Options options;
  options.move_cost_j_per_m = 1e6;
  AaScheduler sched_algo(options);
  const auto plan = sched_algo.plan(p);
  EXPECT_EQ(plan.total_stops(), 0u);
}

TEST(Aa, GroupsAreSpatial) {
  // Two far-apart blobs with K=2: each tour stays inside one blob.
  Rng rng(13);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  std::vector<double> lifetimes;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    deficits.push_back(5000.0);
    lifetimes.push_back(rng.uniform(1e3, 1e5));
  }
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(90.0, 100.0), rng.uniform(90.0, 100.0)});
    deficits.push_back(5000.0);
    lifetimes.push_back(rng.uniform(1e3, 1e5));
  }
  ChargingProblem p(std::move(pts), std::move(deficits), {50, 50}, 2.7, 1.0,
                    2);
  p.set_residual_lifetimes(std::move(lifetimes));
  AaScheduler sched_algo;
  const auto plan = sched_algo.plan(p);
  for (const auto& tour : plan.tours) {
    if (tour.empty()) continue;
    const bool first_blob = tour[0] < 30;
    for (std::uint32_t v : tour) {
      EXPECT_EQ(v < 30, first_blob);
    }
  }
}

// ---------- GreedyCover ----------

TEST(GreedyCover, CoversEverySensorMultiNode) {
  Rng rng(21);
  const auto p = random_problem(200, 2, rng);
  GreedyCoverScheduler sched_algo;
  const auto plan = sched_algo.plan(p);
  EXPECT_EQ(plan.mode, sched::ChargeMode::kMultiNode);
  const auto schedule = sched::execute_plan(p, plan);
  EXPECT_TRUE(schedule.all_charged());
  const auto violations = sched::verify_schedule(p, schedule);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations[0]);
}

TEST(GreedyCover, NeverMoreStopsThanSensors) {
  Rng rng(22);
  const auto p = random_problem(150, 3, rng);
  GreedyCoverScheduler sched_algo;
  EXPECT_LE(sched_algo.plan(p).total_stops(), 150u);
}

TEST(GreedyCover, PicksDominatingLocationFirst) {
  // A hub covering three satellites plus one isolated sensor: the greedy
  // pick must be the hub, giving exactly two stops.
  std::vector<geom::Point> pts{{10, 10}, {12, 10}, {10, 12}, {8, 10},
                               {80, 80}};
  std::vector<double> deficits(5, 1000.0);
  ChargingProblem p(std::move(pts), std::move(deficits), {50, 50}, 2.7, 1.0,
                    1);
  GreedyCoverScheduler sched_algo;
  const auto plan = sched_algo.plan(p);
  EXPECT_EQ(plan.total_stops(), 2u);
  bool hub_used = false;
  for (const auto& tour : plan.tours) {
    for (auto v : tour) hub_used |= (v == 0);
  }
  EXPECT_TRUE(hub_used);
}

TEST(GreedyCover, EmptyProblem) {
  ChargingProblem p({}, {}, {0, 0}, 2.7, 1.0, 2);
  EXPECT_EQ(GreedyCoverScheduler().plan(p).total_stops(), 0u);
}

// ---------- cross-algorithm sanity ----------

TEST(AllBaselines, EmptyProblemYieldsEmptyPlans) {
  ChargingProblem p({}, {}, {0, 0}, 2.7, 1.0, 2);
  EXPECT_EQ(KMinMaxScheduler().plan(p).total_stops(), 0u);
  EXPECT_EQ(KEdfScheduler().plan(p).total_stops(), 0u);
  EXPECT_EQ(NetwrapScheduler().plan(p).total_stops(), 0u);
  EXPECT_EQ(AaScheduler().plan(p).total_stops(), 0u);
}

TEST(AllBaselines, NamesMatchPaperLegend) {
  EXPECT_EQ(KMinMaxScheduler().name(), "K-minMax");
  EXPECT_EQ(KEdfScheduler().name(), "K-EDF");
  EXPECT_EQ(NetwrapScheduler().name(), "NETWRAP");
  EXPECT_EQ(AaScheduler().name(), "AA");
}

class BaselineProperty : public ::testing::TestWithParam<int> {};

TEST_P(BaselineProperty, AllFeasibleAcrossSeedsAndK) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 503 + 19);
  const std::size_t n = 20 + rng.below(120);
  const std::size_t k = 1 + rng.below(5);
  const auto p = random_problem(n, k, rng);
  const KMinMaxScheduler a;
  const KEdfScheduler b;
  const NetwrapScheduler c;
  const AaScheduler d;
  for (const sched::Scheduler* s :
       std::initializer_list<const sched::Scheduler*>{&a, &b, &c, &d}) {
    const auto schedule = sched::execute_plan(p, s->plan(p));
    sched::VerifyOptions opts;
    opts.require_full_coverage = s->name() != "AA";
    const auto violations = sched::verify_schedule(p, schedule, opts);
    EXPECT_TRUE(violations.empty())
        << s->name() << ": " << (violations.empty() ? "" : violations[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace mcharge::baselines
