// Unit and property tests for the graph module: adjacency graph, unit-disk
// builder, MIS, DSU, MST, Euler circuits, traversal.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>

#include "geometry/field.h"
#include "graph/dsu.h"
#include "graph/euler.h"
#include "graph/graph.h"
#include "graph/mis.h"
#include "graph/mst.h"
#include "graph/traversal.h"
#include "graph/unit_disk.h"
#include "util/rng.h"

namespace mcharge::graph {
namespace {

TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, DuplicateEdgesIgnored) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto& nbrs = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 3u);
}

TEST(Graph, EdgesListLexicographic) {
  Graph g(4);
  g.add_edge(3, 1);
  g.add_edge(0, 2);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<Vertex, Vertex>{0, 2}));
  EXPECT_EQ(edges[1], (std::pair<Vertex, Vertex>{1, 3}));
}

TEST(Graph, MaxDegree) {
  Graph g(4);
  EXPECT_EQ(g.max_degree(), 0u);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(UnitDisk, MatchesBruteForce) {
  Rng rng(10);
  const auto pts = geom::uniform_field(150, 50.0, 50.0, rng);
  const double radius = 4.0;
  const Graph g = unit_disk_graph(pts, radius);
  for (Vertex u = 0; u < pts.size(); ++u) {
    for (Vertex v = u + 1; v < pts.size(); ++v) {
      const bool expect = geom::within(pts[u], pts[v], radius);
      EXPECT_EQ(g.has_edge(u, v), expect) << u << "," << v;
    }
  }
}

TEST(UnitDisk, ZeroRadiusOnlyCoincident) {
  const std::vector<geom::Point> pts{{0, 0}, {0, 0}, {1, 0}};
  // Coincident points would be self-distinct vertices at distance 0; the
  // builder must connect them and nothing else.
  const Graph g = unit_disk_graph(pts, 0.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
}

// ---------- MIS ----------

class MisProperty
    : public ::testing::TestWithParam<std::tuple<int, MisOrder>> {};

TEST_P(MisProperty, IndependentAndMaximal) {
  const auto [seed, order] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto pts = geom::uniform_field(120, 40.0, 40.0, rng);
  const Graph g = unit_disk_graph(pts, 3.0);
  std::vector<double> priority(g.num_vertices());
  for (auto& p : priority) p = rng.uniform();
  const auto set = maximal_independent_set(g, order, &priority, &rng);
  EXPECT_TRUE(is_independent_set(g, set));
  EXPECT_TRUE(is_maximal_independent_set(g, set));
}

INSTANTIATE_TEST_SUITE_P(
    SweepOrders, MisProperty,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(MisOrder::kIndex, MisOrder::kMinDegree,
                                         MisOrder::kMaxDegree,
                                         MisOrder::kPriority,
                                         MisOrder::kRandom)));

TEST(Mis, EmptyGraph) {
  Graph g(0);
  EXPECT_TRUE(maximal_independent_set(g).empty());
}

TEST(Mis, NoEdgesTakesAll) {
  Graph g(5);
  const auto set = maximal_independent_set(g);
  EXPECT_EQ(set.size(), 5u);
}

TEST(Mis, CompleteGraphTakesOne) {
  Graph g(5);
  for (Vertex u = 0; u < 5; ++u) {
    for (Vertex v = u + 1; v < 5; ++v) g.add_edge(u, v);
  }
  EXPECT_EQ(maximal_independent_set(g).size(), 1u);
}

TEST(Mis, PriorityOrderPicksUrgentFirst) {
  // Path 0-1-2: priority favors 1, so the MIS should be {1} rather than
  // {0, 2}.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<double> priority{5.0, 1.0, 5.0};
  const auto set =
      maximal_independent_set(g, MisOrder::kPriority, &priority, nullptr);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], 1u);
}

TEST(Mis, IsIndependentRejectsAdjacentPair) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_independent_set(g, {0, 1}));
  EXPECT_TRUE(is_independent_set(g, {0, 2}));
  // {0} is independent but not maximal (2 is undominated).
  EXPECT_FALSE(is_maximal_independent_set(g, {0}));
}

// ---------- DSU ----------

TEST(Dsu, UniteAndFind) {
  Dsu dsu(5);
  EXPECT_EQ(dsu.num_components(), 5u);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(1, 2));
  EXPECT_FALSE(dsu.unite(0, 2));
  EXPECT_TRUE(dsu.same(0, 2));
  EXPECT_FALSE(dsu.same(0, 3));
  EXPECT_EQ(dsu.num_components(), 3u);
  EXPECT_EQ(dsu.component_size(2), 3u);
  EXPECT_EQ(dsu.component_size(4), 1u);
}

// ---------- MST ----------

TEST(Mst, PrimOnSquare) {
  const std::vector<geom::Point> pts{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  const auto tree = euclidean_mst(pts);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_DOUBLE_EQ(total_weight(tree), 3.0);
}

TEST(Mst, PrimMatchesKruskalWeight) {
  Rng rng(77);
  const auto pts = geom::uniform_field(60, 100.0, 100.0, rng);
  const auto prim = euclidean_mst(pts);
  std::vector<WeightedEdge> edges;
  for (std::uint32_t u = 0; u < pts.size(); ++u) {
    for (std::uint32_t v = u + 1; v < pts.size(); ++v) {
      edges.push_back({u, v, geom::distance(pts[u], pts[v])});
    }
  }
  const auto kruskal = kruskal_mst(pts.size(), edges);
  EXPECT_EQ(prim.size(), kruskal.size());
  EXPECT_NEAR(total_weight(prim), total_weight(kruskal), 1e-9);
}

TEST(Mst, TrivialSizes) {
  EXPECT_TRUE(euclidean_mst({}).empty());
  EXPECT_TRUE(euclidean_mst({{1, 1}}).empty());
  const auto one = euclidean_mst({{0, 0}, {3, 4}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].weight, 5.0);
}

TEST(Mst, KruskalDisconnectedIsForest) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 2.0}};
  const auto forest = kruskal_mst(4, edges);
  EXPECT_EQ(forest.size(), 2u);
}

// ---------- Euler ----------

TEST(Euler, SimpleCycle) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 2}, {2, 0}};
  const auto walk = eulerian_circuit(3, edges, 0);
  ASSERT_EQ(walk.size(), 4u);
  EXPECT_EQ(walk.front(), 0u);
  EXPECT_EQ(walk.back(), 0u);
}

TEST(Euler, UsesEveryEdgeOnce) {
  // Doubled MST-style multigraph on 5 vertices.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> tree{
      {0, 1}, {1, 2}, {1, 3}, {3, 4}};
  for (auto e : tree) {
    edges.push_back(e);
    edges.push_back(e);
  }
  const auto walk = eulerian_circuit(5, edges, 0);
  EXPECT_EQ(walk.size(), edges.size() + 1);
  // Count undirected edge usages.
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> used;
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    auto key = std::minmax(walk[i], walk[i + 1]);
    ++used[{key.first, key.second}];
  }
  for (auto e : tree) {
    EXPECT_EQ((used[{std::min(e.first, e.second),
                     std::max(e.first, e.second)}]),
              2);
  }
}

TEST(Euler, EmptyEdgeSet) {
  const auto walk = eulerian_circuit(3, {}, 1);
  ASSERT_EQ(walk.size(), 1u);
  EXPECT_EQ(walk[0], 1u);
}

TEST(Euler, AllDegreesEvenPredicate) {
  EXPECT_TRUE(all_degrees_even(3, {{0, 1}, {1, 2}, {2, 0}}));
  EXPECT_FALSE(all_degrees_even(3, {{0, 1}}));
  EXPECT_TRUE(all_degrees_even(2, {{0, 1}, {0, 1}}));
}

class MstProperty : public ::testing::TestWithParam<int> {};

TEST_P(MstProperty, TreeIsSpanningAcyclicAndNoWorseThanRandomTrees) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 733 + 41);
  const std::size_t n = 2 + rng.below(40);
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  const auto tree = euclidean_mst(pts);
  ASSERT_EQ(tree.size(), n - 1);
  // Spanning and acyclic via DSU.
  Dsu dsu(n);
  for (const auto& e : tree) {
    EXPECT_TRUE(dsu.unite(e.u, e.v)) << "cycle in MST";
  }
  EXPECT_EQ(dsu.num_components(), 1u);
  // Weight no worse than a few random spanning trees (random permutation
  // chains).
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);
    double chain = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      chain += geom::distance(pts[order[i]], pts[order[i + 1]]);
    }
    EXPECT_LE(total_weight(tree), chain + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstProperty, ::testing::Range(0, 8));

class EulerProperty : public ::testing::TestWithParam<int> {};

TEST_P(EulerProperty, DoubledRandomTreeAlwaysHasCircuit) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 3);
  const std::size_t n = 2 + rng.below(60);
  // Random tree: attach each vertex to a random earlier one; double edges.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t v = 1; v < n; ++v) {
    const auto p = static_cast<std::uint32_t>(rng.below(v));
    edges.emplace_back(p, v);
    edges.emplace_back(p, v);
  }
  const auto start = static_cast<std::uint32_t>(rng.below(n));
  const auto walk = eulerian_circuit(n, edges, start);
  ASSERT_EQ(walk.size(), edges.size() + 1);
  EXPECT_EQ(walk.front(), start);
  EXPECT_EQ(walk.back(), start);
  // Every consecutive pair must be one of the multigraph's edges.
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> remaining;
  for (auto [a, b] : edges) {
    ++remaining[{std::min(a, b), std::max(a, b)}];
  }
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    auto key = std::minmax(walk[i], walk[i + 1]);
    auto it = remaining.find({key.first, key.second});
    ASSERT_NE(it, remaining.end());
    if (--it->second == 0) remaining.erase(it);
  }
  EXPECT_TRUE(remaining.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EulerProperty, ::testing::Range(0, 8));

TEST(Mis, RandomGraphsNotJustGeometric) {
  // Erdos-Renyi-ish graphs exercise MIS away from unit-disk structure.
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(6000 + static_cast<std::uint64_t>(trial));
    const std::size_t n = 5 + rng.below(80);
    Graph g(n);
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u + 1; v < n; ++v) {
        if (rng.uniform() < 0.15) g.add_edge(u, v);
      }
    }
    for (auto order : {MisOrder::kIndex, MisOrder::kMinDegree}) {
      const auto set = maximal_independent_set(g, order);
      EXPECT_TRUE(is_maximal_independent_set(g, set));
    }
  }
}

// ---------- Traversal ----------

TEST(Traversal, ComponentsOfDisjointPaths) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 3u);
  EXPECT_EQ(comps.id[0], comps.id[2]);
  EXPECT_EQ(comps.id[3], comps.id[4]);
  EXPECT_NE(comps.id[0], comps.id[3]);
  EXPECT_NE(comps.id[5], comps.id[0]);
}

TEST(Traversal, BfsTreeHops) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto tree = bfs_tree(g, 0);
  EXPECT_EQ(tree.hops[0], 0u);
  EXPECT_EQ(tree.hops[3], 3u);
  EXPECT_EQ(tree.parent[3], 2u);
  EXPECT_EQ(tree.parent[0], 0u);
  // Vertex 4 unreachable.
  EXPECT_EQ(tree.hops[4], std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(tree.parent[4], 4u);
}

}  // namespace
}  // namespace mcharge::graph
