// Tests for k-means clustering.
#include <gtest/gtest.h>

#include <set>

#include "cluster/kmeans.h"
#include "geometry/field.h"
#include "util/rng.h"

namespace mcharge::cluster {
namespace {

TEST(KMeans, EmptyInput) {
  Rng rng(1);
  const auto r = kmeans({}, 3, rng);
  EXPECT_TRUE(r.label.empty());
  EXPECT_TRUE(r.centroids.empty());
}

TEST(KMeans, KClampedToPointCount) {
  Rng rng(2);
  const std::vector<geom::Point> pts{{0, 0}, {1, 1}};
  const auto r = kmeans(pts, 5, rng);
  EXPECT_EQ(r.centroids.size(), 2u);
  EXPECT_EQ(r.label.size(), 2u);
}

TEST(KMeans, SeparatedClustersRecovered) {
  Rng rng(3);
  std::vector<geom::Point> pts;
  // Two tight blobs 80 m apart.
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
  }
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(80.0, 85.0), rng.uniform(80.0, 85.0)});
  }
  const auto r = kmeans(pts, 2, rng);
  // All of blob one shares a label, all of blob two the other.
  for (int i = 1; i < 50; ++i) EXPECT_EQ(r.label[i], r.label[0]);
  for (int i = 51; i < 100; ++i) EXPECT_EQ(r.label[i], r.label[50]);
  EXPECT_NE(r.label[0], r.label[50]);
}

TEST(KMeans, LabelsWithinRangeAndAllClustersUsed) {
  Rng rng(4);
  const auto pts = geom::uniform_field(200, 100.0, 100.0, rng);
  const std::size_t k = 4;
  const auto r = kmeans(pts, k, rng);
  std::set<std::uint32_t> used;
  for (auto label : r.label) {
    ASSERT_LT(label, k);
    used.insert(label);
  }
  EXPECT_EQ(used.size(), k);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(5);
  const auto pts = geom::uniform_field(300, 100.0, 100.0, rng);
  Rng r1(10), r2(10);
  const auto with2 = kmeans(pts, 2, r1);
  const auto with8 = kmeans(pts, 8, r2);
  EXPECT_LT(with8.inertia, with2.inertia);
}

TEST(KMeans, AllPointsCoincident) {
  Rng rng(6);
  const std::vector<geom::Point> pts(10, geom::Point{5.0, 5.0});
  const auto r = kmeans(pts, 3, rng);
  EXPECT_EQ(r.label.size(), 10u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-18);
}

TEST(KMeans, DeterministicGivenSeed) {
  const auto pts = [] {
    Rng rng(7);
    return geom::uniform_field(100, 50.0, 50.0, rng);
  }();
  Rng a(42), b(42);
  const auto ra = kmeans(pts, 3, a);
  const auto rb = kmeans(pts, 3, b);
  EXPECT_EQ(ra.label, rb.label);
  EXPECT_DOUBLE_EQ(ra.inertia, rb.inertia);
}

}  // namespace
}  // namespace mcharge::cluster
