// Unit tests for the thread pool and the parallel_for primitive.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.h"
#include "util/rng.h"

namespace mcharge {
namespace {

// ---------- ThreadPool ----------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    // No wait_idle: the destructor must still drain all 50 tasks.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, WaitIdleReturnsWithNoTasks) {
  ThreadPool pool(3);
  pool.wait_idle();  // must not deadlock on an empty pool
  SUCCEED();
}

// ---------- parallel_for ----------

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(
      n, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SerialFallbackRunsInlineAndInOrder) {
  // jobs = 1 must run on the calling thread, in index order, with no
  // worker threads involved.
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(
      100,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);  // unsynchronized: valid only inline
      },
      1);
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ZeroItemsIsANoop) {
  bool ran = false;
  parallel_for(
      0, [&](std::size_t) { ran = true; }, 4);
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, JobsClampedToItemCount) {
  // More jobs than items must still cover each index exactly once.
  std::vector<std::atomic<int>> hits(3);
  parallel_for(
      3, [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, DefaultJobsCoversAllIndices) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < 500; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, PropagatesExceptionFromWorker) {
  EXPECT_THROW(
      parallel_for(
          1000,
          [](std::size_t i) {
            if (i == 137) throw std::runtime_error("item 137 failed");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionStopsSchedulingNewItems) {
  std::atomic<std::size_t> ran{0};
  try {
    parallel_for(
        1u << 20,
        [&](std::size_t i) {
          if (i == 0) throw std::runtime_error("first item failed");
          ran.fetch_add(1);
        },
        2);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first item failed");
  }
  // The failure on item 0 must prevent the vast majority of the 2^20
  // items from starting (workers check the failure flag per item).
  EXPECT_LT(ran.load(), (1u << 20) - 1);
}

TEST(ParallelFor, SerialFallbackPropagatesException) {
  EXPECT_THROW(
      parallel_for(
          10, [](std::size_t i) { if (i == 5) throw std::logic_error("x"); },
          1),
      std::logic_error);
}

// ---------- derive_seed ----------

TEST(DeriveSeed, DeterministicPerItem) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_EQ(derive_seed(42, 17), derive_seed(42, 17));
}

TEST(DeriveSeed, DistinctAcrossItemsAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 1; base <= 4; ++base) {
    for (std::uint64_t item = 0; item < 256; ++item) {
      seen.insert(derive_seed(base, item));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 256u);
}

TEST(DeriveSeed, IndependentOfEvaluationOrder) {
  // The whole point: the seed for item i is a pure function of (base, i),
  // so any execution order (or thread assignment) yields the same streams.
  const std::uint64_t forward = derive_seed(7, 3);
  (void)derive_seed(7, 999);  // unrelated evaluation in between
  EXPECT_EQ(derive_seed(7, 3), forward);
}

}  // namespace
}  // namespace mcharge
