// Golden regression suite: pins down end-to-end behaviour for fixed seeds
// so that refactors which silently change results get caught. Structural
// properties (counts, orderings, invariant relations) are pinned exactly;
// floating-point aggregates are pinned to loose-but-meaningful windows so
// that benign numeric reorderings don't produce false alarms.
#include <gtest/gtest.h>

#include "baselines/kminmax.h"
#include "core/appro.h"
#include "schedule/execute.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace mcharge {
namespace {

model::ChargingProblem golden_round() {
  Rng rng(20260704);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  return model::ChargingProblem(std::move(pts), std::move(deficits), {50, 50},
                                2.7, 1.0, 2);
}

TEST(Regression, ApproPipelineShape) {
  const auto p = golden_round();
  core::ApproScheduler appro;
  core::ApproStats stats;
  const auto plan = appro.plan_with_stats(p, &stats);
  // Structural counts for this exact instance + seed + algorithm version.
  EXPECT_EQ(stats.v_s, 500u);
  // The MIS sizes are deterministic; allow no drift (any change means the
  // algorithm changed and EXPERIMENTS.md should be regenerated).
  EXPECT_EQ(stats.s_i, stats.v_h + stats.inserted_case_one +
                           stats.inserted_case_two + stats.dropped_covered);
  EXPECT_GT(stats.v_h, 200u);
  EXPECT_LT(stats.s_i, 400u);
  EXPECT_LE(stats.h_max_degree, 8u);  // uniform fields sit far below 26
  EXPECT_EQ(plan.total_stops(), stats.s_i - stats.dropped_covered);
}

TEST(Regression, ApproDelayWindow) {
  const auto p = golden_round();
  core::ApproScheduler appro;
  const auto schedule = sched::execute_plan(p, appro.plan(p));
  const double hours = schedule.longest_delay() / 3600.0;
  // 500 sensors, ~64-100% deficits, K=2: historically ~190 h. A drift
  // outside +-15% means scheduling behaviour changed materially.
  EXPECT_GT(hours, 160.0);
  EXPECT_LT(hours, 220.0);
  EXPECT_DOUBLE_EQ(schedule.total_wait(), 0.0);
}

TEST(Regression, ApproBeatsKMinMaxOnGoldenRound) {
  const auto p = golden_round();
  core::ApproScheduler appro;
  baselines::KMinMaxScheduler kminmax;
  const double a =
      sched::execute_plan(p, appro.plan(p)).longest_delay();
  const double b =
      sched::execute_plan(p, kminmax.plan(p)).longest_delay();
  // Multi-node advantage on a dense 500-sensor round: at least 25%.
  EXPECT_LT(a, 0.75 * b);
}

TEST(Regression, YearSimWindow) {
  model::NetworkConfig config;
  Rng rng(424242);
  const auto instance = model::make_instance(config, 300, rng);
  core::ApproScheduler appro;
  const auto result = sim::simulate(instance, appro);
  EXPECT_EQ(result.verify_violations, 0u);
  // Request cadence window for the calibrated energy model: each sensor
  // charges a handful of times per year.
  const double charges_per_sensor =
      static_cast<double>(result.sensors_charged) / 300.0;
  EXPECT_GT(charges_per_sensor, 2.0);
  EXPECT_LT(charges_per_sensor, 20.0);
  EXPECT_EQ(result.rounds, result.rounds_log.size() == 0
                               ? result.rounds
                               : result.rounds_log.size());
}

TEST(Regression, DeterminismAcrossRuns) {
  const auto p = golden_round();
  core::ApproScheduler appro;
  const auto s1 = sched::execute_plan(p, appro.plan(p));
  const auto s2 = sched::execute_plan(p, appro.plan(p));
  ASSERT_EQ(s1.mcvs.size(), s2.mcvs.size());
  for (std::size_t k = 0; k < s1.mcvs.size(); ++k) {
    ASSERT_EQ(s1.mcvs[k].sojourns.size(), s2.mcvs[k].sojourns.size());
    EXPECT_DOUBLE_EQ(s1.mcvs[k].return_time, s2.mcvs[k].return_time);
  }
}

}  // namespace
}  // namespace mcharge
