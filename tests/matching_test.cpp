// Tests for minimum-weight perfect matching: exact DP vs brute force, and
// local-search quality vs the exact optimum on small instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "geometry/field.h"
#include "geometry/point.h"
#include "matching/blossom.h"
#include "matching/matching.h"
#include "util/rng.h"

namespace mcharge::matching {
namespace {

/// Reference: minimum-weight perfect matching by recursive enumeration.
double brute_force_weight(std::size_t n, const WeightFn& w) {
  std::vector<char> used(n, 0);
  double best = std::numeric_limits<double>::infinity();
  // Recursive lambda via explicit stack of choices.
  std::function<void(double)> rec = [&](double acc) {
    std::size_t a = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!used[i]) {
        a = i;
        break;
      }
    }
    if (a == n) {
      best = std::min(best, acc);
      return;
    }
    used[a] = 1;
    for (std::size_t b = a + 1; b < n; ++b) {
      if (used[b]) continue;
      used[b] = 1;
      rec(acc + w(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b)));
      used[b] = 0;
    }
    used[a] = 0;
  };
  rec(0.0);
  return best;
}

WeightFn euclidean(const std::vector<geom::Point>& pts) {
  return [&pts](std::uint32_t a, std::uint32_t b) {
    return geom::distance(pts[a], pts[b]);
  };
}

TEST(ExactMatching, EmptyAndPair) {
  const auto none = exact_min_weight_matching(0, [](auto, auto) { return 1.0; });
  EXPECT_TRUE(none.empty());
  const auto pair = exact_min_weight_matching(2, [](auto, auto) { return 3.0; });
  ASSERT_EQ(pair.size(), 1u);
  EXPECT_TRUE(is_perfect_matching(2, pair));
}

TEST(ExactMatching, FourPointsChoosesCheapPairs) {
  // Two clusters far apart: {0,1} near, {2,3} near.
  const std::vector<geom::Point> pts{{0, 0}, {0, 1}, {100, 0}, {100, 1}};
  const auto m = exact_min_weight_matching(4, euclidean(pts));
  EXPECT_TRUE(is_perfect_matching(4, m));
  EXPECT_NEAR(matching_weight(m, euclidean(pts)), 2.0, 1e-12);
}

class ExactVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(ExactVsBrute, SameOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const std::size_t n = 2 * (1 + rng.below(5));  // 2..10
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  const auto w = euclidean(pts);
  const auto m = exact_min_weight_matching(n, w);
  EXPECT_TRUE(is_perfect_matching(n, m));
  EXPECT_NEAR(matching_weight(m, w), brute_force_weight(n, w), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBrute, ::testing::Range(0, 12));

class LocalSearchQuality : public ::testing::TestWithParam<int> {};

TEST_P(LocalSearchQuality, PerfectAndNearOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const std::size_t n = 2 * (2 + rng.below(6));  // 4..14
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  const auto w = euclidean(pts);
  const auto m = local_search_matching(n, w);
  ASSERT_TRUE(is_perfect_matching(n, m));
  const double opt = brute_force_weight(n, w);
  // 2-exchange local optimum on Euclidean inputs is empirically within a
  // small factor of optimal; assert a generous 1.25 bound.
  EXPECT_LE(matching_weight(m, w), 1.25 * opt + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchQuality, ::testing::Range(0, 12));

TEST(LocalSearchMatching, LargeInstanceIsPerfect) {
  Rng rng(5);
  const std::size_t n = 300;
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  const auto m = local_search_matching(n, euclidean(pts));
  EXPECT_TRUE(is_perfect_matching(n, m));
}

TEST(Dispatch, UsesExactBelowLimit) {
  Rng rng(9);
  const std::size_t n = kExactLimit;
  const auto pts = geom::uniform_field(n, 50.0, 50.0, rng);
  const auto w = euclidean(pts);
  const auto dispatched = min_weight_perfect_matching(n, w);
  const auto exact = exact_min_weight_matching(n, w);
  EXPECT_NEAR(matching_weight(dispatched, w), matching_weight(exact, w), 1e-9);
}

// ---------- blossom ----------

TEST(Blossom, EmptyAndPair) {
  EXPECT_TRUE(
      blossom_min_weight_matching(0, [](auto, auto) { return 1.0; }).empty());
  const auto pair =
      blossom_min_weight_matching(2, [](auto, auto) { return 3.0; });
  EXPECT_TRUE(is_perfect_matching(2, pair));
}

TEST(Blossom, FourPointsChoosesCheapPairs) {
  const std::vector<geom::Point> pts{{0, 0}, {0, 1}, {100, 0}, {100, 1}};
  const auto m = blossom_min_weight_matching(4, euclidean(pts));
  EXPECT_TRUE(is_perfect_matching(4, m));
  EXPECT_NEAR(matching_weight(m, euclidean(pts)), 2.0, 1e-3);
}

class BlossomVsExactDp : public ::testing::TestWithParam<int> {};

TEST_P(BlossomVsExactDp, GeometricInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 50021 + 9);
  const std::size_t n = 2 * (1 + rng.below(8));  // 2..16
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  const auto w = euclidean(pts);
  const auto blossom = blossom_min_weight_matching(n, w);
  ASSERT_TRUE(is_perfect_matching(n, blossom));
  const auto exact = exact_min_weight_matching(n, w);
  // Quantization can cost at most (range / resolution) per pair.
  const double tolerance =
      n * 150.0 / static_cast<double>(kBlossomResolution) + 1e-9;
  EXPECT_NEAR(matching_weight(blossom, w), matching_weight(exact, w),
              tolerance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlossomVsExactDp, ::testing::Range(0, 30));

class BlossomVsExactDpAdversarial : public ::testing::TestWithParam<int> {};

TEST_P(BlossomVsExactDpAdversarial, RandomIntegerWeights) {
  // Small random integer weights produce many ties and force blossom
  // formation far more often than geometric inputs do.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104651 + 17);
  const std::size_t n = 2 * (2 + rng.below(6));  // 4..14
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      w[u][v] = w[v][u] = static_cast<double>(rng.below(8));
    }
  }
  const WeightFn fn = [&](std::uint32_t a, std::uint32_t b) {
    return w[a][b];
  };
  const auto blossom = blossom_min_weight_matching(n, fn);
  ASSERT_TRUE(is_perfect_matching(n, blossom));
  const auto exact = exact_min_weight_matching(n, fn);
  const double tolerance =
      n * 8.0 / static_cast<double>(kBlossomResolution) + 1e-9;
  EXPECT_NEAR(matching_weight(blossom, fn), matching_weight(exact, fn),
              tolerance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlossomVsExactDpAdversarial,
                         ::testing::Range(0, 30));

TEST(Blossom, LargeGeometricInstanceBeatsLocalSearchOrTies) {
  Rng rng(77);
  const std::size_t n = 200;
  const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
  const auto w = euclidean(pts);
  const auto exact = blossom_min_weight_matching(n, w);
  ASSERT_TRUE(is_perfect_matching(n, exact));
  const auto heuristic = local_search_matching(n, w);
  EXPECT_LE(matching_weight(exact, w),
            matching_weight(heuristic, w) + 1e-3);
}

TEST(Blossom, AtTheDpFrontier) {
  // n = 14 and kExactLimit: the largest sizes the DP can certify (the DP
  // asserts n <= kExactLimit, matching its dispatch threshold).
  for (std::size_t n : {std::size_t{14}, kExactLimit}) {
    Rng rng(n * 977 + 5);
    const auto pts = geom::uniform_field(n, 100.0, 100.0, rng);
    const auto w = euclidean(pts);
    const auto blossom = blossom_min_weight_matching(n, w);
    const auto exact = exact_min_weight_matching(n, w);
    const double tolerance =
        n * 150.0 / static_cast<double>(kBlossomResolution) + 1e-9;
    EXPECT_NEAR(matching_weight(blossom, w), matching_weight(exact, w),
                tolerance);
  }
}

TEST(Blossom, ClusteredPointsWithManyTies) {
  // Points in tight clusters create near-ties and dense blossom structure.
  Rng rng(31);
  std::vector<geom::Point> pts;
  for (int c = 0; c < 4; ++c) {
    const geom::Point center{rng.uniform(0.0, 100.0),
                             rng.uniform(0.0, 100.0)};
    for (int i = 0; i < 4; ++i) {
      pts.push_back({center.x + rng.uniform(-0.5, 0.5),
                     center.y + rng.uniform(-0.5, 0.5)});
    }
  }
  const auto w = euclidean(pts);
  const auto blossom = blossom_min_weight_matching(pts.size(), w);
  const auto exact = exact_min_weight_matching(pts.size(), w);
  EXPECT_NEAR(matching_weight(blossom, w), matching_weight(exact, w), 1e-2);
}

TEST(Blossom, AllEqualWeights) {
  const auto m =
      blossom_min_weight_matching(10, [](auto, auto) { return 5.0; });
  EXPECT_TRUE(is_perfect_matching(10, m));
}

TEST(IsPerfectMatching, RejectsBadShapes) {
  EXPECT_FALSE(is_perfect_matching(4, {{0, 1}}));            // too few pairs
  EXPECT_FALSE(is_perfect_matching(4, {{0, 1}, {1, 2}}));    // reuse
  EXPECT_FALSE(is_perfect_matching(4, {{0, 0}, {2, 3}}));    // self-pair
  EXPECT_FALSE(is_perfect_matching(2, {{0, 5}}));            // out of range
  EXPECT_TRUE(is_perfect_matching(4, {{2, 3}, {0, 1}}));
}

}  // namespace
}  // namespace mcharge::matching
