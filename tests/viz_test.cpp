// Tests for the SVG canvas and domain renderers.
#include <gtest/gtest.h>

#include <fstream>

#include "core/appro.h"
#include "model/network.h"
#include "schedule/execute.h"
#include "util/rng.h"
#include "viz/render.h"
#include "viz/svg.h"

namespace mcharge::viz {
namespace {

std::size_t count(const std::string& haystack, const std::string& needle) {
  std::size_t total = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++total;
  }
  return total;
}

TEST(SvgCanvas, WellFormedDocument) {
  SvgCanvas svg(0, 0, 100, 50);
  svg.circle(10, 10, 2, "#ff0000");
  svg.line(0, 0, 100, 50, "#000000", 1.0);
  svg.rect(5, 5, 10, 10, "#00ff00");
  svg.polyline("0,0 10,10 20,0", "#0000ff", 0.5);
  svg.text(1, 1, "hello", 4);
  const std::string doc = svg.finish();
  EXPECT_EQ(doc.rfind("<svg", 0), 0u);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("viewBox=\"0 0 100 50\""), std::string::npos);
  EXPECT_EQ(count(doc, "<circle"), 1u);
  EXPECT_EQ(count(doc, "<line"), 1u);
  EXPECT_EQ(count(doc, "<polyline"), 1u);
  EXPECT_NE(doc.find(">hello</text>"), std::string::npos);
}

TEST(SvgCanvas, EscapesText) {
  SvgCanvas svg(0, 0, 10, 10);
  svg.text(0, 0, "a<b&c>d", 2);
  const std::string doc = svg.finish();
  EXPECT_NE(doc.find("a&lt;b&amp;c&gt;d"), std::string::npos);
}

TEST(SvgCanvas, WritesFile) {
  SvgCanvas svg(0, 0, 10, 10);
  svg.circle(5, 5, 1, "#123456");
  const std::string path = ::testing::TempDir() + "/canvas.svg";
  ASSERT_TRUE(svg.write(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("#123456"), std::string::npos);
}

TEST(LerpColor, Endpoints) {
  EXPECT_EQ(lerp_color("#000000", "#ffffff", 0.0), "#000000");
  EXPECT_EQ(lerp_color("#000000", "#ffffff", 1.0), "#ffffff");
  EXPECT_EQ(lerp_color("#000000", "#ffffff", 0.5), "#808080");
  // Clamped outside [0, 1].
  EXPECT_EQ(lerp_color("#102030", "#405060", -3.0), "#102030");
  EXPECT_EQ(lerp_color("#102030", "#405060", 9.0), "#405060");
}

TEST(McvColor, DistinctForSmallFleets) {
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = a + 1; b < 8; ++b) {
      EXPECT_NE(mcv_color(a), mcv_color(b));
    }
  }
  EXPECT_EQ(mcv_color(0), mcv_color(8));  // palette cycles
}

TEST(RenderInstance, ContainsEverySensor) {
  model::NetworkConfig config;
  Rng rng(1);
  const auto instance = model::make_instance(config, 60, rng);
  const std::string doc = render_instance_svg(instance);
  // 60 sensor dots + base-station marker (depot co-located, not drawn).
  EXPECT_EQ(count(doc, "<circle"), 60u);
  EXPECT_NE(doc.find("BS"), std::string::npos);
}

TEST(RenderInstance, DrawsSeparateDepot) {
  model::NetworkConfig config;
  config.depot = {0.0, 0.0};
  Rng rng(2);
  const auto instance = model::make_instance(config, 10, rng);
  const std::string doc = render_instance_svg(instance);
  EXPECT_NE(doc.find("depot"), std::string::npos);
}

TEST(RenderSchedule, ToursAndDisksPresent) {
  Rng rng(3);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(1000.0, 5400.0));
  }
  model::ChargingProblem problem(std::move(pts), std::move(deficits), {50, 50},
                                 2.7, 1.0, 2);
  core::ApproScheduler appro;
  const auto schedule = sched::execute_plan(problem, appro.plan(problem));
  const std::string doc = render_schedule_svg(problem, schedule);
  // One polyline per non-empty tour.
  std::size_t nonempty = 0;
  for (const auto& mcv : schedule.mcvs) nonempty += !mcv.sojourns.empty();
  EXPECT_EQ(count(doc, "<polyline"), nonempty);
  // A coverage disk per stop plus a dot per sensor.
  EXPECT_EQ(count(doc, "<circle"), schedule.num_stops() + problem.size());
  EXPECT_NE(doc.find("longest delay"), std::string::npos);
}

TEST(RenderSchedule, UnchargedSensorRinged) {
  model::ChargingProblem problem({{20, 0}, {80, 0}}, {100.0, 100.0}, {50, 0},
                                 2.7, 1.0, 1);
  sched::ChargingPlan plan;
  plan.tours = {{0}};  // sensor 1 never charged
  const auto schedule = sched::execute_plan(problem, plan);
  const std::string doc = render_schedule_svg(problem, schedule);
  EXPECT_NE(doc.find("stroke=\"#d62728\""), std::string::npos);
}

}  // namespace
}  // namespace mcharge::viz
