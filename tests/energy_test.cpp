// Tests for the energy module: battery, radio model, routing tree,
// consumption rates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "energy/battery.h"
#include "energy/consumption.h"
#include "energy/mcv_battery.h"
#include "energy/radio.h"
#include "energy/routing.h"
#include "geometry/field.h"
#include "util/rng.h"

namespace mcharge::energy {
namespace {

// ---------- Battery ----------

TEST(Battery, InitialStateClamped) {
  Battery b(100.0, 150.0);
  EXPECT_DOUBLE_EQ(b.level(), 100.0);
  EXPECT_TRUE(b.full());
  Battery c(100.0, -5.0);
  EXPECT_DOUBLE_EQ(c.level(), 0.0);
  EXPECT_TRUE(c.empty());
}

TEST(Battery, DrainSaturatesAtZero) {
  Battery b(100.0, 30.0);
  EXPECT_DOUBLE_EQ(b.drain(20.0), 20.0);
  EXPECT_DOUBLE_EQ(b.level(), 10.0);
  EXPECT_DOUBLE_EQ(b.drain(50.0), 10.0);
  EXPECT_TRUE(b.empty());
}

TEST(Battery, ChargeSaturatesAtCapacity) {
  Battery b(100.0, 90.0);
  EXPECT_DOUBLE_EQ(b.charge(5.0), 5.0);
  EXPECT_DOUBLE_EQ(b.charge(50.0), 5.0);
  EXPECT_TRUE(b.full());
  EXPECT_DOUBLE_EQ(b.deficit(), 0.0);
}

TEST(Battery, FractionAndDeficit) {
  Battery b(200.0, 50.0);
  EXPECT_DOUBLE_EQ(b.fraction(), 0.25);
  EXPECT_DOUBLE_EQ(b.deficit(), 150.0);
}

TEST(Battery, ZeroCapacity) {
  Battery b(0.0, 0.0);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.full());
  EXPECT_DOUBLE_EQ(b.fraction(), 0.0);
  EXPECT_DOUBLE_EQ(b.charge(10.0), 0.0);
}

// ---------- Battery hardening: bad joule amounts must abort ----------
// std::clamp passes NaN through both comparisons, so before the explicit
// isfinite asserts a NaN capacity or level silently poisoned every later
// drain/charge. These death tests pin the asserts in place.

TEST(BatteryDeathTest, NanCapacityAborts) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(Battery(nan, 0.0), "mcharge assertion failed");
}

TEST(BatteryDeathTest, NegativeCapacityAborts) {
  EXPECT_DEATH(Battery(-1.0, 0.0), "mcharge assertion failed");
}

TEST(BatteryDeathTest, NanSetLevelAborts) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Battery b(100.0, 50.0);
  EXPECT_DEATH(b.set_level(nan), "mcharge assertion failed");
}

TEST(BatteryDeathTest, BadDrainAborts) {
  Battery b(100.0, 50.0);
  EXPECT_DEATH(b.drain(-1.0), "mcharge assertion failed");
  EXPECT_DEATH(b.drain(std::numeric_limits<double>::quiet_NaN()),
               "mcharge assertion failed");
  EXPECT_DEATH(b.drain(std::numeric_limits<double>::infinity()),
               "mcharge assertion failed");
}

TEST(BatteryDeathTest, BadChargeAborts) {
  Battery b(100.0, 50.0);
  EXPECT_DEATH(b.charge(-1.0), "mcharge assertion failed");
  EXPECT_DEATH(b.charge(std::numeric_limits<double>::quiet_NaN()),
               "mcharge assertion failed");
}

// ---------- MCV battery ----------

TEST(McvBattery, DisabledSpecAlwaysAffords) {
  McvBudgetSpec spec;  // capacity 0 = disabled
  EXPECT_FALSE(spec.enabled());
  McvBattery b(spec);
  EXPECT_TRUE(b.draw(1e12));
  EXPECT_TRUE(b.draw(0.0));
  EXPECT_DOUBLE_EQ(b.spent(), 0.0);
}

TEST(McvBattery, CostModel) {
  McvBudgetSpec spec;
  spec.capacity_j = 1000.0;
  spec.move_cost_j_per_m = 50.0;
  spec.transfer_efficiency = 0.8;
  EXPECT_DOUBLE_EQ(spec.travel_cost_j(3.0), 150.0);
  EXPECT_DOUBLE_EQ(spec.transfer_cost_j(80.0), 100.0);
}

TEST(McvBattery, DrawIsAllOrNothing) {
  McvBudgetSpec spec;
  spec.capacity_j = 100.0;
  McvBattery b(spec);
  EXPECT_TRUE(b.draw(60.0));
  EXPECT_DOUBLE_EQ(b.level(), 40.0);
  // Unaffordable: refused, level untouched.
  EXPECT_FALSE(b.draw(40.1));
  EXPECT_DOUBLE_EQ(b.level(), 40.0);
  EXPECT_DOUBLE_EQ(b.spent(), 60.0);
  // Exactly affordable: drains to zero.
  EXPECT_TRUE(b.draw(40.0));
  EXPECT_DOUBLE_EQ(b.level(), 0.0);
  EXPECT_FALSE(b.draw(1e-9));
  EXPECT_TRUE(b.draw(0.0));
}

TEST(McvBattery, ResumeSeedsLevel) {
  McvBudgetSpec spec;
  spec.capacity_j = 100.0;
  McvBattery b(spec);
  b.set_level(25.0);
  EXPECT_DOUBLE_EQ(b.spent(), 75.0);
  EXPECT_FALSE(b.draw(30.0));
  EXPECT_TRUE(b.draw(25.0));
}

TEST(McvBatteryDeathTest, BadSpecAborts) {
  McvBudgetSpec spec;
  spec.capacity_j = 100.0;
  spec.transfer_efficiency = 0.0;
  EXPECT_DEATH(McvBattery{spec}, "mcharge assertion failed");
  spec.transfer_efficiency = 1.5;
  EXPECT_DEATH(McvBattery{spec}, "mcharge assertion failed");
}

TEST(McvBatteryDeathTest, BadResumeLevelAborts) {
  McvBudgetSpec spec;
  spec.capacity_j = 100.0;
  McvBattery b(spec);
  EXPECT_DEATH(b.set_level(-1.0), "mcharge assertion failed");
  EXPECT_DEATH(b.set_level(101.0), "mcharge assertion failed");
}

// ---------- Radio ----------

TEST(Radio, PerBitEnergies) {
  RadioParams r;
  EXPECT_DOUBLE_EQ(r.tx_per_bit(0.0), r.e_elec);
  EXPECT_DOUBLE_EQ(r.tx_per_bit(10.0), r.e_elec + r.e_amp * 100.0);
  EXPECT_DOUBLE_EQ(r.rx_per_bit(), r.e_elec);
  EXPECT_GT(r.tx_per_bit(20.0), r.tx_per_bit(10.0));
}

// ---------- Routing ----------

TEST(Routing, SingleSensorDirect) {
  RadioParams radio;
  const auto tree =
      build_routing_tree({{10.0, 0.0}}, {0.0, 0.0}, radio, {1000.0});
  ASSERT_EQ(tree.parent.size(), 1u);
  EXPECT_EQ(tree.parent[0], RoutingTree::kToBaseStation);
  EXPECT_EQ(tree.hops[0], 1u);
  EXPECT_DOUBLE_EQ(tree.link_length[0], 10.0);
  EXPECT_DOUBLE_EQ(tree.relay_rate_bps[0], 0.0);
}

TEST(Routing, ChainRelaysAccumulate) {
  RadioParams radio;
  radio.comm_range = 12.0;
  // Chain at x = 10, 20, 30; BS at origin. Only the first is within range
  // of the BS; each next hops through the previous.
  const std::vector<geom::Point> pts{{10, 0}, {20, 0}, {30, 0}};
  const std::vector<double> rates{100.0, 200.0, 400.0};
  const auto tree = build_routing_tree(pts, {0, 0}, radio, rates);
  EXPECT_EQ(tree.parent[0], RoutingTree::kToBaseStation);
  EXPECT_EQ(tree.parent[1], 0u);
  EXPECT_EQ(tree.parent[2], 1u);
  EXPECT_EQ(tree.hops[2], 3u);
  EXPECT_DOUBLE_EQ(tree.relay_rate_bps[2], 0.0);
  EXPECT_DOUBLE_EQ(tree.relay_rate_bps[1], 400.0);
  EXPECT_DOUBLE_EQ(tree.relay_rate_bps[0], 600.0);
  EXPECT_EQ(tree.direct_fallbacks, 0u);
}

TEST(Routing, DisconnectedFallsBackToDirectUplink) {
  RadioParams radio;
  radio.comm_range = 5.0;
  const std::vector<geom::Point> pts{{3, 0}, {90, 90}};
  const auto tree = build_routing_tree(pts, {0, 0}, radio, {1.0, 1.0});
  EXPECT_EQ(tree.parent[1], RoutingTree::kToBaseStation);
  EXPECT_EQ(tree.direct_fallbacks, 1u);
  EXPECT_NEAR(tree.link_length[1], std::hypot(90.0, 90.0), 1e-9);
}

TEST(Routing, ConservationOfTraffic) {
  // Sum of traffic entering the BS equals the sum of all data rates.
  Rng rng(8);
  RadioParams radio;
  const auto pts = geom::uniform_field(300, 100.0, 100.0, rng);
  std::vector<double> rates(pts.size());
  for (auto& r : rates) r = rng.uniform(1e3, 50e3);
  const auto tree = build_routing_tree(pts, {50, 50}, radio, rates);
  double into_bs = 0.0;
  double total = 0.0;
  for (std::size_t v = 0; v < pts.size(); ++v) {
    total += rates[v];
    if (tree.parent[v] == RoutingTree::kToBaseStation) {
      into_bs += rates[v] + tree.relay_rate_bps[v];
    }
  }
  EXPECT_NEAR(into_bs, total, total * 1e-12);
}

TEST(Routing, HopsMonotoneAlongParents) {
  Rng rng(9);
  RadioParams radio;
  const auto pts = geom::uniform_field(200, 100.0, 100.0, rng);
  std::vector<double> rates(pts.size(), 1000.0);
  const auto tree = build_routing_tree(pts, {50, 50}, radio, rates);
  for (std::size_t v = 0; v < pts.size(); ++v) {
    if (tree.parent[v] != RoutingTree::kToBaseStation) {
      EXPECT_EQ(tree.hops[v], tree.hops[tree.parent[v]] + 1);
      EXPECT_LE(tree.link_length[v], radio.comm_range + 1e-9);
    }
  }
}

// ---------- RoutingPolicy::kMinEnergy ----------

TEST(MinEnergyRouting, PrefersShortLinksOverLongHop) {
  RadioParams radio;
  radio.comm_range = 50.0;
  radio.e_amp = 1e-9;  // amplifier dominates: long links very expensive
  // Sensor 1 at x=40 can reach the BS directly (40 m) or hop through
  // sensor 0 at x=20 (two 20 m links). With quadratic amplifier cost the
  // two-hop route is cheaper per bit.
  const std::vector<geom::Point> pts{{20, 0}, {40, 0}};
  const std::vector<double> rates{1000.0, 1000.0};
  const auto hop = build_routing_tree(pts, {0, 0}, radio, rates,
                                      RoutingPolicy::kMinHop);
  const auto energy = build_routing_tree(pts, {0, 0}, radio, rates,
                                         RoutingPolicy::kMinEnergy);
  EXPECT_EQ(hop.parent[1], RoutingTree::kToBaseStation);  // 1 hop direct
  EXPECT_EQ(energy.parent[1], 0u);                        // relays via 0
  EXPECT_EQ(energy.hops[1], 2u);
}

TEST(MinEnergyRouting, ConservationStillHolds) {
  Rng rng(20);
  RadioParams radio;
  const auto pts = geom::uniform_field(250, 100.0, 100.0, rng);
  std::vector<double> rates(pts.size());
  for (auto& r : rates) r = rng.uniform(1e3, 50e3);
  const auto tree = build_routing_tree(pts, {50, 50}, radio, rates,
                                       RoutingPolicy::kMinEnergy);
  double into_bs = 0.0, total = 0.0;
  for (std::size_t v = 0; v < pts.size(); ++v) {
    total += rates[v];
    if (tree.parent[v] == RoutingTree::kToBaseStation) {
      into_bs += rates[v] + tree.relay_rate_bps[v];
    }
  }
  EXPECT_NEAR(into_bs, total, total * 1e-12);
  // Parent links never exceed the radio range (except fallbacks).
  for (std::size_t v = 0; v < pts.size(); ++v) {
    if (tree.parent[v] != RoutingTree::kToBaseStation) {
      EXPECT_LE(tree.link_length[v], radio.comm_range + 1e-9);
    }
  }
}

TEST(MinEnergyRouting, SpreadsHotspotLoad) {
  // The min-energy tree should not concentrate more load on its hottest
  // relay than min-hop does (it has no reason to use fewer relays).
  Rng rng(21);
  RadioParams radio;
  const auto pts = geom::uniform_field(600, 100.0, 100.0, rng);
  std::vector<double> rates(pts.size(), 10e3);
  const auto hop = build_routing_tree(pts, {50, 50}, radio, rates,
                                      RoutingPolicy::kMinHop);
  const auto energy = build_routing_tree(pts, {50, 50}, radio, rates,
                                         RoutingPolicy::kMinEnergy);
  const auto hottest = [](const RoutingTree& t) {
    double mx = 0.0;
    for (double r : t.relay_rate_bps) mx = std::max(mx, r);
    return mx;
  };
  EXPECT_LE(hottest(energy), hottest(hop) * 1.5);
}

// ---------- Consumption ----------

TEST(Consumption, LeafFormulaExact) {
  RadioParams radio;
  const std::vector<geom::Point> pts{{10.0, 0.0}};
  const std::vector<double> rates{1000.0};
  const auto watts = consumption_watts(pts, {0, 0}, radio, rates);
  const double expected = radio.idle_watts + radio.sense_per_bit() * 1000.0 +
                          radio.tx_per_bit(10.0) * 1000.0;
  ASSERT_EQ(watts.size(), 1u);
  EXPECT_NEAR(watts[0], expected, 1e-15);
}

TEST(Consumption, RelayNodesDrawMore) {
  RadioParams radio;
  radio.comm_range = 12.0;
  const std::vector<geom::Point> pts{{10, 0}, {20, 0}, {30, 0}};
  const std::vector<double> rates{1000.0, 1000.0, 1000.0};
  const auto watts = consumption_watts(pts, {0, 0}, radio, rates);
  // Node 0 relays two nodes' traffic, node 1 one, node 2 none.
  EXPECT_GT(watts[0], watts[1]);
  EXPECT_GT(watts[1], watts[2]);
}

TEST(Consumption, MagnitudesAreRealistic) {
  // With the paper's parameters the depletion time from full (10.8 kJ) to
  // the 20% threshold should be days-to-months, giving plausible request
  // cadences over a one-year horizon.
  Rng rng(12);
  RadioParams radio;
  const auto pts = geom::uniform_field(1000, 100.0, 100.0, rng);
  std::vector<double> rates(pts.size());
  for (auto& r : rates) r = rng.uniform(1e3, 50e3);
  const auto watts = consumption_watts(pts, {50, 50}, radio, rates);
  const double usable = 0.8 * 10.8e3;
  double min_days = 1e18, max_days = 0.0;
  for (double w : watts) {
    ASSERT_GT(w, 0.0);
    const double days = usable / w / 86400.0;
    min_days = std::min(min_days, days);
    max_days = std::max(max_days, days);
  }
  EXPECT_GT(min_days, 0.3);    // nothing dies within an hour
  EXPECT_LT(min_days, 30.0);   // hot sensors do need charging within a month
  EXPECT_GT(max_days, 10.0);
}

}  // namespace
}  // namespace mcharge::energy
