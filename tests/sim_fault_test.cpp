// Fault-injection suite: determinism of the fault streams, zero-fault
// byte-identity, verifier-clean recovery under heavy breakdown rates, the
// truncation flag, and the structured input validation.
//
// The contracts under test:
//  * for a fixed fault seed, the full SimResult is bit-identical across
//    worker counts, SIMD backends, and is so for every recovery policy
//    (the policies differ from each other, but each is deterministic);
//  * a FaultConfig with all rates at zero takes exactly the fault-free
//    code path — byte-identical to a default-constructed config;
//  * every executed (possibly partial) schedule passes the verifier with
//    zero violations at breakdown rates up to 0.5 per round;
//  * simulate_checked rejects malformed inputs with structured errors
//    instead of asserting deep in the round loop.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "core/appro.h"
#include "sim/faults.h"
#include "sim/simulation.h"
#include "sim/validate.h"
#include "sim_compare.h"
#include "util/rng.h"
#include "util/simd.h"

namespace mcharge::sim {
namespace {

model::WrsnInstance hot_instance(std::uint64_t seed, std::size_t n,
                                 double heat) {
  Rng rng(seed);
  auto instance = model::make_instance(model::NetworkConfig{}, n, rng);
  for (auto& w : instance.consumption_w) w *= heat;
  return instance;
}

FaultConfig harsh_faults(std::uint64_t seed) {
  FaultConfig f;
  f.seed = seed;
  f.mcv_breakdown_prob = 0.3;
  f.travel_jitter = 0.15;
  f.charge_jitter = 0.1;
  f.sensor_death_prob = 0.001;
  f.dispatch_delay_prob = 0.25;
  f.dispatch_delay_max_s = 1800.0;
  return f;
}

const char* policy_name(core::RecoveryPolicy p) {
  switch (p) {
    case core::RecoveryPolicy::kDefer: return "defer";
    case core::RecoveryPolicy::kGraft: return "graft";
    case core::RecoveryPolicy::kReplan: return "replan";
  }
  return "?";
}

constexpr core::RecoveryPolicy kPolicies[] = {core::RecoveryPolicy::kDefer,
                                              core::RecoveryPolicy::kGraft,
                                              core::RecoveryPolicy::kReplan};

TEST(SimFaults, ByteIdenticalAcrossJobsBackendsAndSeeds) {
  const auto instance = hot_instance(91, 250, 3.0);
  core::ApproScheduler appro;
  for (const std::uint64_t fault_seed : {1ULL, 42ULL}) {
    for (const core::RecoveryPolicy policy : kPolicies) {
      SimConfig config;
      config.monitoring_period_s = 45.0 * 86400.0;
      config.record_rounds = true;
      config.shard_grain = 32;  // force real sharding at n = 250
      config.faults = harsh_faults(fault_seed);
      config.recovery = policy;

      SimResult reference;
      {
        BackendGuard guard(simd::Backend::kScalar);
        config.jobs = 1;
        reference = simulate(instance, appro, config);
      }
      ASSERT_GT(reference.rounds, 0u);
      ASSERT_GT(reference.mcv_breakdowns, 0u);
      ASSERT_EQ(reference.verify_violations, 0u)
          << policy_name(policy) << " seed=" << fault_seed;

      for (simd::Backend b : supported_backends()) {
        BackendGuard guard(b);
        for (std::size_t jobs :
             {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
          config.jobs = jobs;
          const SimResult got = simulate(instance, appro, config);
          SCOPED_TRACE(std::string(policy_name(policy)) + " seed=" +
                       std::to_string(fault_seed) + " jobs=" +
                       std::to_string(jobs) + " backend=" +
                       simd::backend_name(b));
          expect_results_identical(reference, got);
        }
      }
    }
  }
}

TEST(SimFaults, ZeroRateFaultConfigIsByteIdenticalToFaultFree) {
  const auto instance = hot_instance(92, 200, 3.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 45.0 * 86400.0;
  config.record_rounds = true;
  const SimResult plain = simulate(instance, appro, config);

  // Same config with the fault layer "on" but every rate at zero — must
  // take the identical code path, including the executor's fast path.
  SimConfig zeroed = config;
  zeroed.faults.seed = 0xdeadbeef;  // seed alone must change nothing
  zeroed.recovery = core::RecoveryPolicy::kReplan;
  const SimResult got = simulate(instance, appro, zeroed);
  expect_results_identical(plain, got);
  EXPECT_NE(got.truncated_reason, TruncationReason::kMaxRounds);
  EXPECT_EQ(got.mcv_breakdowns, 0u);
  EXPECT_EQ(got.sensors_failed, 0u);
  EXPECT_BITS_EQ(got.extra_recovery_delay_s, 0.0);
}

TEST(SimFaults, VerifierCleanUpToHalfBreakdownRateAllPolicies) {
  const auto instance = hot_instance(93, 150, 3.0);
  core::ApproScheduler appro;
  for (const double rate : {0.25, 0.5}) {
    for (const core::RecoveryPolicy policy : kPolicies) {
      SimConfig config;
      config.monitoring_period_s = 30.0 * 86400.0;
      config.faults = harsh_faults(7);
      config.faults.mcv_breakdown_prob = rate;
      config.recovery = policy;
      const SimResult result = simulate(instance, appro, config);
      SCOPED_TRACE(std::string(policy_name(policy)) + " rate=" +
                   std::to_string(rate));
      EXPECT_EQ(result.verify_violations, 0u);
      EXPECT_GT(result.rounds, 0u);
      EXPECT_GT(result.mcv_breakdowns, 0u);
      if (policy == core::RecoveryPolicy::kDefer) {
        EXPECT_EQ(result.recovered_sensors, 0u);
      }
    }
  }
}

TEST(SimFaults, RecoveryPoliciesRescueOrphans) {
  const auto instance = hot_instance(94, 150, 3.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 30.0 * 86400.0;
  config.faults = harsh_faults(11);
  config.faults.mcv_breakdown_prob = 0.4;

  config.recovery = core::RecoveryPolicy::kDefer;
  const SimResult defer = simulate(instance, appro, config);
  config.recovery = core::RecoveryPolicy::kGraft;
  const SimResult graft = simulate(instance, appro, config);
  config.recovery = core::RecoveryPolicy::kReplan;
  const SimResult replan = simulate(instance, appro, config);

  ASSERT_GT(defer.deferred_sensors, 0u);
  EXPECT_GT(graft.recovered_sensors, 0u);
  EXPECT_GT(replan.recovered_sensors, 0u);
  // Recovery costs delay; the stat must record it.
  EXPECT_GT(graft.extra_recovery_delay_s, 0.0);
  EXPECT_GT(replan.extra_recovery_delay_s, 0.0);
}

TEST(SimFaults, SensorDeathIsAccountedAndHarmless) {
  const auto instance = hot_instance(95, 200, 3.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 45.0 * 86400.0;
  config.faults.seed = 3;
  config.faults.sensor_death_prob = 0.01;
  const SimResult result = simulate(instance, appro, config);
  EXPECT_GT(result.sensors_failed, 0u);
  EXPECT_LE(result.sensors_failed, instance.num_sensors());
  EXPECT_EQ(result.verify_violations, 0u);
  EXPECT_GT(result.rounds, 0u);
}

TEST(Truncation, MaxRoundsSetsFlagAndReason) {
  const auto instance = hot_instance(96, 120, 3.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 60.0 * 86400.0;
  config.max_rounds = 3;  // far fewer than the load demands
  const SimResult result = simulate(instance, appro, config);
  EXPECT_EQ(result.rounds, 3u);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.truncated_reason, TruncationReason::kMaxRounds);
}

TEST(Truncation, HorizonMidRoundMatchesRoundLog) {
  // Self-consistency: the flag is set iff some round was still out when
  // the period ended (and the run was not cut by max_rounds).
  const auto instance = hot_instance(97, 150, 5.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 20.0 * 86400.0;
  config.record_rounds = true;
  const SimResult result = simulate(instance, appro, config);
  ASSERT_GT(result.rounds, 0u);
  bool any_censored = false;
  for (const RoundLog& log : result.rounds_log) {
    if (log.longest_delay_s > 0.0 &&
        log.dispatch_time + log.longest_delay_s >
            config.monitoring_period_s) {
      any_censored = true;
    }
  }
  EXPECT_EQ(result.truncated, any_censored);
  EXPECT_EQ(result.truncated_reason, any_censored
                                         ? TruncationReason::kHorizonMidRound
                                         : TruncationReason::kNone);
}

TEST(Truncation, CleanRunIsNotTruncated) {
  // Build a horizon that provably ends between two rounds: run long once
  // to learn the round times, then cut the period midway through the idle
  // stretch after round 0. That run has exactly one round, fully inside
  // the horizon — truncated must stay false.
  const auto instance = hot_instance(98, 100, 1.0);
  core::ApproScheduler appro;
  SimConfig probe;
  probe.monitoring_period_s = 60.0 * 86400.0;
  // Epoch dispatch guarantees idle stretches: each round is far shorter
  // than the epoch between dispatches (on-demand keeps the fleet
  // continuously busy on this instance, leaving no gap to cut in).
  probe.dispatch_epoch_s = 10.0 * 86400.0;
  probe.record_rounds = true;
  const SimResult scout = simulate(instance, appro, probe);
  ASSERT_GE(scout.rounds, 2u);
  double cut = -1.0;
  std::size_t rounds_before = 0;
  for (std::size_t i = 0; i + 1 < scout.rounds_log.size(); ++i) {
    const double done = scout.rounds_log[i].dispatch_time +
                        scout.rounds_log[i].longest_delay_s;
    const double next = scout.rounds_log[i + 1].dispatch_time;
    if (done < next) {
      cut = 0.5 * (done + next);
      rounds_before = i + 1;
      break;
    }
  }
  ASSERT_GT(cut, 0.0) << "no idle stretch even under epoch dispatch";

  SimConfig config;
  config.dispatch_epoch_s = probe.dispatch_epoch_s;
  config.monitoring_period_s = cut;
  const SimResult result = simulate(instance, appro, config);
  EXPECT_EQ(result.rounds, rounds_before);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.truncated_reason, TruncationReason::kNone);
}

// ---------- structured input validation ----------

TEST(Validation, AcceptsDefaultsAndEmptyNetwork) {
  Rng rng(1);
  const auto instance = model::make_instance(model::NetworkConfig{}, 20, rng);
  EXPECT_FALSE(validate_sim_inputs(instance, SimConfig{}).has_value());
  model::WrsnInstance empty;
  EXPECT_FALSE(validate_sim_inputs(empty, SimConfig{}).has_value());
}

TEST(Validation, RejectsBadConfigsWithTheRightCode) {
  Rng rng(2);
  const auto instance = model::make_instance(model::NetworkConfig{}, 10, rng);

  SimConfig config;
  config.charge_target_fraction = 0.1;  // below the 0.2 request threshold
  auto err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadChargeTarget);

  config = SimConfig{};
  config.monitoring_period_s = 0.0;
  err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadHorizon);

  config = SimConfig{};
  config.faults.travel_jitter = 1.5;  // legs could go negative
  err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadFaultConfig);

  config = SimConfig{};
  config.faults.mcv_breakdown_prob = -0.1;
  err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadFaultConfig);

  auto broken = instance;
  broken.config.mcv_speed = 0.0;
  err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadSpeed);

  broken = instance;
  broken.config.num_chargers = 0;
  err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kEmptyFleet);

  broken = instance;
  broken.positions[3].x = std::numeric_limits<double>::quiet_NaN();
  err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kNonFiniteSensorData);

  broken = instance;
  broken.consumption_w[1] = -1.0;
  err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kNonFiniteSensorData);
}

TEST(Validation, SimulateCheckedReturnsErrorInsteadOfAborting) {
  Rng rng(3);
  const auto instance = model::make_instance(model::NetworkConfig{}, 15, rng);
  core::ApproScheduler appro;

  SimConfig bad;
  bad.charge_target_fraction = 0.05;
  const auto failed = simulate_checked(instance, appro, bad);
  ASSERT_FALSE(failed.has_value());
  EXPECT_EQ(failed.error().code, ConfigErrorCode::kBadChargeTarget);
  EXPECT_FALSE(failed.error().message.empty());

  SimConfig good;
  good.monitoring_period_s = 10.0 * 86400.0;
  const auto ok = simulate_checked(instance, appro, good);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->verify_violations, 0u);
}

}  // namespace
}  // namespace mcharge::sim
