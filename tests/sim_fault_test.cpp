// Fault-injection suite: determinism of the fault streams, zero-fault
// byte-identity, verifier-clean recovery under heavy breakdown rates, the
// truncation flag, and the structured input validation.
//
// The contracts under test:
//  * for a fixed fault seed, the full SimResult is bit-identical across
//    worker counts, SIMD backends, and is so for every recovery policy
//    (the policies differ from each other, but each is deterministic);
//  * a FaultConfig with all rates at zero takes exactly the fault-free
//    code path — byte-identical to a default-constructed config;
//  * every executed (possibly partial) schedule passes the verifier with
//    zero violations at breakdown rates up to 0.5 per round;
//  * simulate_checked rejects malformed inputs with structured errors
//    instead of asserting deep in the round loop.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include <algorithm>

#include "core/appro.h"
#include "core/replan.h"
#include "energy/mcv_battery.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "sim/faults.h"
#include "sim/simulation.h"
#include "sim/validate.h"
#include "sim_compare.h"
#include "util/rng.h"
#include "util/simd.h"

namespace mcharge::sim {
namespace {

model::WrsnInstance hot_instance(std::uint64_t seed, std::size_t n,
                                 double heat) {
  Rng rng(seed);
  auto instance = model::make_instance(model::NetworkConfig{}, n, rng);
  for (auto& w : instance.consumption_w) w *= heat;
  return instance;
}

FaultConfig harsh_faults(std::uint64_t seed) {
  FaultConfig f;
  f.seed = seed;
  f.mcv_breakdown_prob = 0.3;
  f.travel_jitter = 0.15;
  f.charge_jitter = 0.1;
  f.sensor_death_prob = 0.001;
  f.dispatch_delay_prob = 0.25;
  f.dispatch_delay_max_s = 1800.0;
  return f;
}

const char* policy_name(core::RecoveryPolicy p) {
  switch (p) {
    case core::RecoveryPolicy::kDefer: return "defer";
    case core::RecoveryPolicy::kGraft: return "graft";
    case core::RecoveryPolicy::kReplan: return "replan";
  }
  return "?";
}

constexpr core::RecoveryPolicy kPolicies[] = {core::RecoveryPolicy::kDefer,
                                              core::RecoveryPolicy::kGraft,
                                              core::RecoveryPolicy::kReplan};

TEST(SimFaults, ByteIdenticalAcrossJobsBackendsAndSeeds) {
  const auto instance = hot_instance(91, 250, 3.0);
  core::ApproScheduler appro;
  for (const std::uint64_t fault_seed : {1ULL, 42ULL}) {
    for (const core::RecoveryPolicy policy : kPolicies) {
      SimConfig config;
      config.monitoring_period_s = 45.0 * 86400.0;
      config.record_rounds = true;
      config.shard_grain = 32;  // force real sharding at n = 250
      config.faults = harsh_faults(fault_seed);
      config.recovery = policy;

      SimResult reference;
      {
        BackendGuard guard(simd::Backend::kScalar);
        config.jobs = 1;
        reference = simulate(instance, appro, config);
      }
      ASSERT_GT(reference.rounds, 0u);
      ASSERT_GT(reference.mcv_breakdowns, 0u);
      ASSERT_EQ(reference.verify_violations, 0u)
          << policy_name(policy) << " seed=" << fault_seed;

      for (simd::Backend b : supported_backends()) {
        BackendGuard guard(b);
        for (std::size_t jobs :
             {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
          config.jobs = jobs;
          const SimResult got = simulate(instance, appro, config);
          SCOPED_TRACE(std::string(policy_name(policy)) + " seed=" +
                       std::to_string(fault_seed) + " jobs=" +
                       std::to_string(jobs) + " backend=" +
                       simd::backend_name(b));
          expect_results_identical(reference, got);
        }
      }
    }
  }
}

TEST(SimFaults, ZeroRateFaultConfigIsByteIdenticalToFaultFree) {
  const auto instance = hot_instance(92, 200, 3.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 45.0 * 86400.0;
  config.record_rounds = true;
  const SimResult plain = simulate(instance, appro, config);

  // Same config with the fault layer "on" but every rate at zero — must
  // take the identical code path, including the executor's fast path.
  SimConfig zeroed = config;
  zeroed.faults.seed = 0xdeadbeef;  // seed alone must change nothing
  zeroed.recovery = core::RecoveryPolicy::kReplan;
  const SimResult got = simulate(instance, appro, zeroed);
  expect_results_identical(plain, got);
  EXPECT_NE(got.truncated_reason, TruncationReason::kMaxRounds);
  EXPECT_EQ(got.mcv_breakdowns, 0u);
  EXPECT_EQ(got.sensors_failed, 0u);
  EXPECT_BITS_EQ(got.extra_recovery_delay_s, 0.0);
}

TEST(SimFaults, VerifierCleanUpToHalfBreakdownRateAllPolicies) {
  const auto instance = hot_instance(93, 150, 3.0);
  core::ApproScheduler appro;
  for (const double rate : {0.25, 0.5}) {
    for (const core::RecoveryPolicy policy : kPolicies) {
      SimConfig config;
      config.monitoring_period_s = 30.0 * 86400.0;
      config.faults = harsh_faults(7);
      config.faults.mcv_breakdown_prob = rate;
      config.recovery = policy;
      const SimResult result = simulate(instance, appro, config);
      SCOPED_TRACE(std::string(policy_name(policy)) + " rate=" +
                   std::to_string(rate));
      EXPECT_EQ(result.verify_violations, 0u);
      EXPECT_GT(result.rounds, 0u);
      EXPECT_GT(result.mcv_breakdowns, 0u);
      if (policy == core::RecoveryPolicy::kDefer) {
        EXPECT_EQ(result.recovered_sensors, 0u);
      }
    }
  }
}

TEST(SimFaults, RecoveryPoliciesRescueOrphans) {
  const auto instance = hot_instance(94, 150, 3.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 30.0 * 86400.0;
  config.faults = harsh_faults(11);
  config.faults.mcv_breakdown_prob = 0.4;

  config.recovery = core::RecoveryPolicy::kDefer;
  const SimResult defer = simulate(instance, appro, config);
  config.recovery = core::RecoveryPolicy::kGraft;
  const SimResult graft = simulate(instance, appro, config);
  config.recovery = core::RecoveryPolicy::kReplan;
  const SimResult replan = simulate(instance, appro, config);

  ASSERT_GT(defer.deferred_sensors, 0u);
  EXPECT_GT(graft.recovered_sensors, 0u);
  EXPECT_GT(replan.recovered_sensors, 0u);
  // Recovery costs delay; the stat must record it.
  EXPECT_GT(graft.extra_recovery_delay_s, 0.0);
  EXPECT_GT(replan.extra_recovery_delay_s, 0.0);
}

TEST(SimFaults, SensorDeathIsAccountedAndHarmless) {
  const auto instance = hot_instance(95, 200, 3.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 45.0 * 86400.0;
  config.faults.seed = 3;
  config.faults.sensor_death_prob = 0.01;
  const SimResult result = simulate(instance, appro, config);
  EXPECT_GT(result.sensors_failed, 0u);
  EXPECT_LE(result.sensors_failed, instance.num_sensors());
  EXPECT_EQ(result.verify_violations, 0u);
  EXPECT_GT(result.rounds, 0u);
}

TEST(Truncation, MaxRoundsSetsFlagAndReason) {
  const auto instance = hot_instance(96, 120, 3.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 60.0 * 86400.0;
  config.max_rounds = 3;  // far fewer than the load demands
  const SimResult result = simulate(instance, appro, config);
  EXPECT_EQ(result.rounds, 3u);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.truncated_reason, TruncationReason::kMaxRounds);
}

TEST(Truncation, HorizonMidRoundMatchesRoundLog) {
  // Self-consistency: the flag is set iff some round was still out when
  // the period ended (and the run was not cut by max_rounds).
  const auto instance = hot_instance(97, 150, 5.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 20.0 * 86400.0;
  config.record_rounds = true;
  const SimResult result = simulate(instance, appro, config);
  ASSERT_GT(result.rounds, 0u);
  bool any_censored = false;
  for (const RoundLog& log : result.rounds_log) {
    if (log.longest_delay_s > 0.0 &&
        log.dispatch_time + log.longest_delay_s >
            config.monitoring_period_s) {
      any_censored = true;
    }
  }
  EXPECT_EQ(result.truncated, any_censored);
  EXPECT_EQ(result.truncated_reason, any_censored
                                         ? TruncationReason::kHorizonMidRound
                                         : TruncationReason::kNone);
}

TEST(Truncation, CleanRunIsNotTruncated) {
  // Build a horizon that provably ends between two rounds: run long once
  // to learn the round times, then cut the period midway through the idle
  // stretch after round 0. That run has exactly one round, fully inside
  // the horizon — truncated must stay false.
  const auto instance = hot_instance(98, 100, 1.0);
  core::ApproScheduler appro;
  SimConfig probe;
  probe.monitoring_period_s = 60.0 * 86400.0;
  // Epoch dispatch guarantees idle stretches: each round is far shorter
  // than the epoch between dispatches (on-demand keeps the fleet
  // continuously busy on this instance, leaving no gap to cut in).
  probe.dispatch_epoch_s = 10.0 * 86400.0;
  probe.record_rounds = true;
  const SimResult scout = simulate(instance, appro, probe);
  ASSERT_GE(scout.rounds, 2u);
  double cut = -1.0;
  std::size_t rounds_before = 0;
  for (std::size_t i = 0; i + 1 < scout.rounds_log.size(); ++i) {
    const double done = scout.rounds_log[i].dispatch_time +
                        scout.rounds_log[i].longest_delay_s;
    const double next = scout.rounds_log[i + 1].dispatch_time;
    if (done < next) {
      cut = 0.5 * (done + next);
      rounds_before = i + 1;
      break;
    }
  }
  ASSERT_GT(cut, 0.0) << "no idle stretch even under epoch dispatch";

  SimConfig config;
  config.dispatch_epoch_s = probe.dispatch_epoch_s;
  config.monitoring_period_s = cut;
  const SimResult result = simulate(instance, appro, config);
  EXPECT_EQ(result.rounds, rounds_before);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.truncated_reason, TruncationReason::kNone);
}

// ---------- MCV energy budget ----------

// Meters the fleet's actual draw with an effectively-unlimited (but
// enabled) budget, so tests can derive a deterministically-tight capacity
// from the instance itself instead of hard-coding joules.
double mean_mcv_round_energy(const model::WrsnInstance& instance,
                             const sched::Scheduler& scheduler,
                             SimConfig config, double efficiency) {
  config.mcv_budget.capacity_j = 1e18;
  config.mcv_budget.transfer_efficiency = efficiency;
  const SimResult metered = simulate(instance, scheduler, config);
  EXPECT_GT(metered.rounds, 0u);
  EXPECT_EQ(metered.mcv_energy_exhausted, 0u);
  EXPECT_GT(metered.mcv_energy_spent_j, 0.0);
  return metered.mcv_energy_spent_j /
         (static_cast<double>(metered.rounds) *
          static_cast<double>(instance.config.num_chargers));
}

TEST(SimEnergy, DisabledBudgetSpecIsByteIdenticalToBaseline) {
  const auto instance = hot_instance(120, 200, 3.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 45.0 * 86400.0;
  config.record_rounds = true;
  const SimResult plain = simulate(instance, appro, config);

  // Budget "configured" but disabled (capacity 0): the cost-model fields
  // must be inert and the whole run byte-identical to the baseline.
  SimConfig budgeted = config;
  budgeted.mcv_budget.move_cost_j_per_m = 75.0;
  budgeted.mcv_budget.transfer_efficiency = 0.8;
  budgeted.recovery = core::RecoveryPolicy::kReplan;
  const SimResult got = simulate(instance, appro, budgeted);
  expect_results_identical(plain, got);
  EXPECT_EQ(got.mcv_energy_exhausted, 0u);
  EXPECT_BITS_EQ(got.mcv_energy_spent_j, 0.0);
}

TEST(SimEnergy, TightBudgetAbortsAreAccountedAndVerifierClean) {
  const auto instance = hot_instance(121, 200, 3.0);
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 45.0 * 86400.0;
  config.record_rounds = true;
  const double mean_j = mean_mcv_round_energy(instance, appro, config, 0.9);

  for (const core::RecoveryPolicy policy : kPolicies) {
    SimConfig tight = config;
    tight.recovery = policy;
    tight.mcv_budget.capacity_j = 0.5 * mean_j;
    tight.mcv_budget.transfer_efficiency = 0.9;
    const SimResult result = simulate(instance, appro, tight);
    SCOPED_TRACE(policy_name(policy));
    EXPECT_EQ(result.verify_violations, 0u);
    EXPECT_GT(result.rounds, 0u);
    EXPECT_GT(result.mcv_energy_exhausted, 0u);
    EXPECT_GE(result.mcv_breakdowns, result.mcv_energy_exhausted);
    EXPECT_NE(result.truncated_reason, TruncationReason::kMaxRounds);

    // The per-round log must re-sum to the aggregates, bit for bit, and
    // the logged delays must reproduce the running-stats extremum.
    std::size_t aborts = 0;
    double spent_j = 0.0;
    double worst_delay = 0.0;
    for (const RoundLog& log : result.rounds_log) {
      aborts += log.energy_aborts;
      spent_j += log.energy_spent_j;
      worst_delay = std::max(worst_delay, log.longest_delay_s);
    }
    EXPECT_EQ(aborts, result.mcv_energy_exhausted);
    EXPECT_BITS_EQ(spent_j, result.mcv_energy_spent_j);
    EXPECT_BITS_EQ(worst_delay, result.round_longest_delay_s.max());
  }
}

TEST(SimEnergy, RecordedTourDrawsMatchAggregatesExactly) {
  const auto instance = hot_instance(125, 200, 3.0);
  const std::size_t k = instance.config.num_chargers;
  core::ApproScheduler appro;
  SimConfig config;
  config.monitoring_period_s = 45.0 * 86400.0;
  config.record_rounds = true;
  config.mcv_budget.capacity_j = 1e15;  // metering: nothing aborts
  const SimResult off = simulate(instance, appro, config);
  EXPECT_TRUE(off.mcv_tour_energy_j.empty());  // opt-in only

  SimConfig recording = config;
  recording.record_tour_energy = true;
  const SimResult on = simulate(instance, appro, recording);
  // Recording is pure observation: every aggregate stays bit-identical.
  expect_results_identical(off, on);

  // One draw per MCV per executed round, in round-major order, and the
  // per-round flat sums/maxima must reproduce the RoundLog entries bit
  // for bit (simulation.cpp folds the same values in the same order).
  const auto& draws = on.mcv_tour_energy_j;
  ASSERT_EQ(draws.size(), on.rounds_log.size() * k);
  double global_max = 0.0;
  for (std::size_t r = 0; r < on.rounds_log.size(); ++r) {
    double round_sum = 0.0;
    double round_max = 0.0;
    for (std::size_t m = 0; m < k; ++m) {
      const double d = draws[r * k + m];
      EXPECT_GE(d, 0.0);
      round_sum += d;
      round_max = std::max(round_max, d);
    }
    EXPECT_BITS_EQ(round_sum, on.rounds_log[r].energy_spent_j);
    EXPECT_BITS_EQ(round_max, on.rounds_log[r].energy_max_tour_j);
    global_max = std::max(global_max, round_max);
  }
  EXPECT_BITS_EQ(global_max, on.mcv_energy_max_tour_j);
}

TEST(SimEnergy, BudgetedRunsBitIdenticalAcrossJobsBackendsAndPolicies) {
  const auto instance = hot_instance(122, 250, 3.0);
  core::ApproScheduler appro;
  SimConfig base;
  base.monitoring_period_s = 45.0 * 86400.0;
  base.record_rounds = true;
  base.shard_grain = 32;  // force real sharding at n = 250
  const double mean_j = mean_mcv_round_energy(instance, appro, base, 0.9);

  for (const core::RecoveryPolicy policy : kPolicies) {
    SimConfig config = base;
    config.recovery = policy;
    config.mcv_budget.capacity_j = 0.6 * mean_j;
    config.mcv_budget.transfer_efficiency = 0.9;
    // Budget on top of the full fault soup: exhaustion and coin-flip
    // breakdowns must coexist deterministically.
    config.faults = harsh_faults(5);

    SimResult reference;
    {
      BackendGuard guard(simd::Backend::kScalar);
      config.jobs = 1;
      reference = simulate(instance, appro, config);
    }
    ASSERT_GT(reference.rounds, 0u);
    ASSERT_GT(reference.mcv_energy_exhausted, 0u) << policy_name(policy);
    ASSERT_EQ(reference.verify_violations, 0u) << policy_name(policy);

    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      for (std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        config.jobs = jobs;
        const SimResult got = simulate(instance, appro, config);
        SCOPED_TRACE(std::string(policy_name(policy)) + " jobs=" +
                     std::to_string(jobs) + " backend=" +
                     simd::backend_name(b));
        expect_results_identical(reference, got);
      }
    }
  }
}

// recover_round-level property: for random problems under a tight budget
// (with and without coin-flip breakdowns mixed in), every policy yields a
// verifier-clean outcome whose reported longest charge delay equals an
// independent recomputation from the raw per-MCV return times, exhaustion
// aborts are cause-tagged, and no MCV ever outspends its battery.
TEST(SimEnergy, RecoverRoundDelayAndEnergyAccountsAreConsistent) {
  std::size_t total_energy_aborts = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) * 77 + 2000);
    const std::size_t n = 30 + rng.below(80);
    const std::size_t k = 1 + rng.below(3);
    std::vector<geom::Point> pts;
    std::vector<double> deficits;
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
      deficits.push_back(rng.uniform(500.0, 3000.0));
    }
    model::ChargingProblem problem(std::move(pts), std::move(deficits),
                                   {50, 50}, 2.7, 1.0, k);

    energy::McvBudgetSpec spec;
    spec.capacity_j = 1e18;
    spec.transfer_efficiency = 0.9;
    core::ApproOptions options;
    options.mcv_budget = spec;  // budget-aware split (capacity is loose)
    core::ApproScheduler appro(options);
    const sched::ChargingPlan plan = appro.plan(problem);

    // Calibrate the tight capacity off the fault-free metered execution.
    sched::ExecutionFaults meter;
    meter.budget = spec;
    const auto metered = sched::execute_plan(problem, plan, meter);
    double max_spent = 0.0;
    for (const auto& m : metered.mcvs) {
      max_spent = std::max(max_spent, m.energy_spent_j);
    }
    ASSERT_GT(max_spent, 0.0);

    sched::ExecutionFaults bundle;
    bundle.budget = spec;
    bundle.budget.capacity_j = 0.6 * max_spent;
    if (trial % 2 == 1) {
      bundle.breakdown_after.assign(k, sched::ExecutionFaults::kNoBreakdown);
      bundle.breakdown_after[rng.below(static_cast<std::uint32_t>(k))] =
          rng.below(4);
    }

    for (const core::RecoveryPolicy policy : kPolicies) {
      SCOPED_TRACE(std::string(policy_name(policy)) + " trial=" +
                   std::to_string(trial));
      const core::RecoveryOutcome outcome =
          core::recover_round(problem, plan, bundle, policy);

      sched::VerifyOptions vo;
      vo.require_full_coverage = false;
      vo.allow_partial = true;
      vo.faults = &bundle;
      const auto violations =
          sched::verify_schedule(problem, outcome.primary, vo);
      EXPECT_TRUE(violations.empty())
          << violations.size() << " violations, first: "
          << (violations.empty() ? "" : violations.front());
      if (outcome.has_recovery) {
        const auto recovery_violations = sched::verify_schedule(
            outcome.replan.subproblem, outcome.recovery);
        EXPECT_TRUE(recovery_violations.empty())
            << (recovery_violations.empty() ? ""
                                            : recovery_violations.front());
      }

      double worst = 0.0;
      for (const auto& m : outcome.primary.mcvs) {
        worst = std::max(worst, m.return_time);
      }
      if (outcome.has_recovery) {
        double recovery_worst = 0.0;
        for (const auto& m : outcome.recovery.mcvs) {
          recovery_worst = std::max(recovery_worst, m.return_time);
        }
        worst = std::max(worst, outcome.recovery_offset_s + recovery_worst);
      }
      EXPECT_BITS_EQ(worst, outcome.longest_delay());

      for (const auto& m : outcome.primary.mcvs) {
        EXPECT_LE(m.energy_spent_j, bundle.budget.capacity_j);
        if (m.abort_cause == sched::BreakdownCause::kEnergyExhausted) {
          EXPECT_TRUE(m.aborted);
          ++total_energy_aborts;
        }
      }
    }
  }
  // The calibrated capacities must actually bite somewhere in the sweep.
  EXPECT_GT(total_energy_aborts, 0u);
}

// ---------- structured input validation ----------

TEST(Validation, AcceptsDefaultsAndEmptyNetwork) {
  Rng rng(1);
  const auto instance = model::make_instance(model::NetworkConfig{}, 20, rng);
  EXPECT_FALSE(validate_sim_inputs(instance, SimConfig{}).has_value());
  model::WrsnInstance empty;
  EXPECT_FALSE(validate_sim_inputs(empty, SimConfig{}).has_value());
}

TEST(Validation, RejectsBadConfigsWithTheRightCode) {
  Rng rng(2);
  const auto instance = model::make_instance(model::NetworkConfig{}, 10, rng);

  SimConfig config;
  config.charge_target_fraction = 0.1;  // below the 0.2 request threshold
  auto err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadChargeTarget);

  config = SimConfig{};
  config.monitoring_period_s = 0.0;
  err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadHorizon);

  config = SimConfig{};
  config.faults.travel_jitter = 1.5;  // legs could go negative
  err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadFaultConfig);

  config = SimConfig{};
  config.faults.mcv_breakdown_prob = -0.1;
  err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadFaultConfig);

  auto broken = instance;
  broken.config.mcv_speed = 0.0;
  err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadSpeed);

  broken = instance;
  broken.config.num_chargers = 0;
  err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kEmptyFleet);

  broken = instance;
  broken.positions[3].x = std::numeric_limits<double>::quiet_NaN();
  err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kNonFiniteSensorData);

  broken = instance;
  broken.consumption_w[1] = -1.0;
  err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kNonFiniteSensorData);
}

TEST(Validation, RejectsZeroOrNegativeSensorCapacity) {
  // Battery::fraction() reads a zero-capacity battery as permanently
  // empty (0.0) rather than erroring — the simulator must therefore never
  // accept one (a "charged" sensor would still read empty).
  Rng rng(4);
  const auto instance = model::make_instance(model::NetworkConfig{}, 10, rng);

  auto broken = instance;
  broken.config.battery_capacity_j = 0.0;
  auto err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadCapacity);

  broken.config.battery_capacity_j = -10.0;
  err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadCapacity);

  broken.config.battery_capacity_j = std::numeric_limits<double>::quiet_NaN();
  err = validate_sim_inputs(broken, SimConfig{});
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadCapacity);
}

TEST(Validation, RejectsBadMcvBudgets) {
  Rng rng(5);
  const auto instance = model::make_instance(model::NetworkConfig{}, 10, rng);

  SimConfig config;
  config.mcv_budget.capacity_j = -1.0;
  auto err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadMcvBudget);

  config = SimConfig{};
  config.mcv_budget.capacity_j = std::numeric_limits<double>::infinity();
  err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadMcvBudget);

  // A *disabled* budget must still carry a coherent cost model.
  config = SimConfig{};
  config.mcv_budget.move_cost_j_per_m = -5.0;
  err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadMcvBudget);

  config = SimConfig{};
  config.mcv_budget.transfer_efficiency = 0.0;
  err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadMcvBudget);

  config = SimConfig{};
  config.mcv_budget.transfer_efficiency = 1.2;
  err = validate_sim_inputs(instance, config);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ConfigErrorCode::kBadMcvBudget);

  // A well-formed enabled budget passes.
  config = SimConfig{};
  config.mcv_budget.capacity_j = 5e5;
  config.mcv_budget.transfer_efficiency = 0.85;
  EXPECT_FALSE(validate_sim_inputs(instance, config).has_value());
}

TEST(Validation, SimulateCheckedReturnsErrorInsteadOfAborting) {
  Rng rng(3);
  const auto instance = model::make_instance(model::NetworkConfig{}, 15, rng);
  core::ApproScheduler appro;

  SimConfig bad;
  bad.charge_target_fraction = 0.05;
  const auto failed = simulate_checked(instance, appro, bad);
  ASSERT_FALSE(failed.has_value());
  EXPECT_EQ(failed.error().code, ConfigErrorCode::kBadChargeTarget);
  EXPECT_FALSE(failed.error().message.empty());

  SimConfig good;
  good.monitoring_period_s = 10.0 * 86400.0;
  const auto ok = simulate_checked(instance, appro, good);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->verify_violations, 0u);
}

}  // namespace
}  // namespace mcharge::sim
