// Tests for the Hungarian assignment solver.
#include <gtest/gtest.h>

#include <vector>

#include "assignment/hungarian.h"
#include "util/rng.h"

namespace mcharge::assignment {
namespace {

TEST(Hungarian, EmptyInput) {
  const auto r = solve_assignment({});
  EXPECT_TRUE(r.column_of_row.empty());
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
}

TEST(Hungarian, SingleCell) {
  const auto r = solve_assignment({{7.5}});
  ASSERT_EQ(r.column_of_row.size(), 1u);
  EXPECT_EQ(r.column_of_row[0], 0u);
  EXPECT_DOUBLE_EQ(r.total_cost, 7.5);
}

TEST(Hungarian, TwoByTwoPicksCrossWhenCheaper) {
  // Diagonal costs 10+10, cross costs 1+1.
  const auto r = solve_assignment({{10.0, 1.0}, {1.0, 10.0}});
  EXPECT_EQ(r.column_of_row[0], 1u);
  EXPECT_EQ(r.column_of_row[1], 0u);
  EXPECT_DOUBLE_EQ(r.total_cost, 2.0);
}

TEST(Hungarian, RectangularLeavesColumnsUnused) {
  // 2 workers, 3 tasks; the expensive middle column should be skipped.
  const auto r = solve_assignment({{1.0, 50.0, 2.0}, {2.0, 50.0, 1.0}});
  ASSERT_EQ(r.column_of_row.size(), 2u);
  EXPECT_DOUBLE_EQ(r.total_cost, 2.0);
  EXPECT_NE(r.column_of_row[0], 1u);
  EXPECT_NE(r.column_of_row[1], 1u);
  EXPECT_NE(r.column_of_row[0], r.column_of_row[1]);
}

TEST(Hungarian, HandlesNegativeCosts) {
  const auto r = solve_assignment({{-5.0, 0.0}, {0.0, -5.0}});
  EXPECT_DOUBLE_EQ(r.total_cost, -10.0);
}

class HungarianVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(HungarianVsBrute, SquareRandomMatricesMatchOptimal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 17);
  const std::size_t n = 1 + rng.below(7);  // 1..7
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.uniform(0.0, 100.0);
  }
  const auto fast = solve_assignment(cost);
  const auto brute = solve_assignment_brute_force(cost);
  EXPECT_NEAR(fast.total_cost, brute.total_cost, 1e-9);
  // The assignment itself must be a valid permutation.
  std::vector<char> used(n, 0);
  for (auto col : fast.column_of_row) {
    ASSERT_LT(col, n);
    EXPECT_FALSE(used[col]);
    used[col] = 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianVsBrute, ::testing::Range(0, 20));

TEST(Hungarian, LargeInstanceRunsAndIsConsistent) {
  Rng rng(123);
  const std::size_t n = 120;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.uniform(0.0, 1.0);
  }
  const auto r = solve_assignment(cost);
  double recomputed = 0.0;
  std::vector<char> used(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(used[r.column_of_row[i]]);
    used[r.column_of_row[i]] = 1;
    recomputed += cost[i][r.column_of_row[i]];
  }
  EXPECT_NEAR(recomputed, r.total_cost, 1e-9);
  // Sanity: the optimum of n uniform(0,1) entries is far below a random
  // diagonal assignment (~n/2 expected).
  EXPECT_LT(r.total_cost, n * 0.25);
}

}  // namespace
}  // namespace mcharge::assignment
