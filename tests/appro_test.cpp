// Tests for algorithm Appro (the paper's contribution).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/appro.h"
#include "core/overlap_graph.h"
#include "geometry/field.h"
#include "graph/mis.h"
#include "model/charging_problem.h"
#include "schedule/estimate.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/rng.h"

namespace mcharge::core {
namespace {

using model::ChargingProblem;

ChargingProblem random_problem(std::size_t n, std::size_t k, Rng& rng,
                               double field = 100.0) {
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, field), rng.uniform(0.0, field)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));  // 64%..100% of 10.8kJ/2W
  }
  return ChargingProblem(std::move(pts), std::move(deficits),
                         {field / 2, field / 2}, 2.7, 1.0, k);
}

// ---------- overlap graph ----------

TEST(OverlapGraph, ChargingGraphEdges) {
  ChargingProblem p({{0, 0}, {2, 0}, {10, 0}}, {1, 1, 1}, {0, 0}, 2.7, 1.0, 1);
  const auto gc = charging_graph(p);
  EXPECT_TRUE(gc.has_edge(0, 1));
  EXPECT_FALSE(gc.has_edge(0, 2));
  EXPECT_FALSE(gc.has_edge(1, 2));
}

TEST(OverlapGraph, HEdgeIffCoverageIntersects) {
  // 0 at x=0, 1 at x=4 (share the sensor at x=2), 2 at x=20 (isolated).
  ChargingProblem p({{0, 0}, {4, 0}, {20, 0}, {2, 0}}, {1, 1, 1, 1}, {0, 0},
                    2.7, 1.0, 1);
  const std::vector<std::uint32_t> subset{0, 1, 2};
  const auto h = overlap_graph(p, subset);
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_FALSE(h.has_edge(0, 2));
  EXPECT_FALSE(h.has_edge(1, 2));
}

TEST(OverlapGraph, EmptySubset) {
  ChargingProblem p({{0, 0}}, {1}, {0, 0}, 2.7, 1.0, 1);
  const auto h = overlap_graph(p, {});
  EXPECT_EQ(h.num_vertices(), 0u);
}

TEST(OverlapGraph, MatchesBruteForcePredicate) {
  Rng rng(5);
  auto p = random_problem(150, 2, rng, 60.0);
  std::vector<std::uint32_t> subset;
  for (std::uint32_t v = 0; v < p.size(); v += 3) subset.push_back(v);
  const auto h = overlap_graph(p, subset);
  for (std::uint32_t i = 0; i < subset.size(); ++i) {
    for (std::uint32_t j = i + 1; j < subset.size(); ++j) {
      EXPECT_EQ(h.has_edge(i, j), p.overlapping(subset[i], subset[j]));
    }
  }
}

// ---------- Appro pipeline ----------

TEST(Appro, EmptyProblem) {
  ApproScheduler appro;
  ChargingProblem p({}, {}, {0, 0}, 2.7, 1.0, 3);
  const auto plan = appro.plan(p);
  EXPECT_EQ(plan.tours.size(), 3u);
  EXPECT_EQ(plan.total_stops(), 0u);
}

TEST(Appro, SingleSensor) {
  ApproScheduler appro;
  ChargingProblem p({{10, 10}}, {500.0}, {0, 0}, 2.7, 1.0, 2);
  const auto plan = appro.plan(p);
  EXPECT_EQ(plan.total_stops(), 1u);
  const auto schedule = sched::execute_plan(p, plan);
  EXPECT_TRUE(schedule.all_charged());
  EXPECT_TRUE(sched::verify_schedule(p, schedule).empty());
}

TEST(Appro, StatsAreConsistent) {
  Rng rng(11);
  const auto p = random_problem(400, 2, rng);
  ApproScheduler appro;
  ApproStats stats;
  const auto plan = appro.plan_with_stats(p, &stats);
  EXPECT_EQ(stats.v_s, 400u);
  EXPECT_GE(stats.s_i, stats.v_h);
  EXPECT_GT(stats.v_h, 0u);
  EXPECT_EQ(stats.v_h + stats.inserted_case_one + stats.inserted_case_two +
                stats.dropped_covered,
            stats.s_i);
  EXPECT_EQ(plan.total_stops(),
            stats.v_h + stats.inserted_case_one + stats.inserted_case_two);
}

TEST(Appro, SojournLocationsFormIndependentSetOfGc) {
  // All sojourn locations come from S_I, an independent set of G_c: no two
  // stops within gamma of each other.
  Rng rng(13);
  const auto p = random_problem(300, 3, rng);
  ApproScheduler appro;
  const auto plan = appro.plan(p);
  std::vector<std::uint32_t> stops;
  for (const auto& tour : plan.tours) {
    stops.insert(stops.end(), tour.begin(), tour.end());
  }
  for (std::size_t i = 0; i < stops.size(); ++i) {
    for (std::size_t j = i + 1; j < stops.size(); ++j) {
      EXPECT_GT(geom::distance(p.position(stops[i]), p.position(stops[j])),
                p.gamma());
    }
  }
}

class ApproProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ApproProperty, SchedulesAreFeasibleAndComplete) {
  const auto [seed, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 6151 + 2);
  const std::size_t n = 50 + rng.below(350);
  const auto p = random_problem(n, static_cast<std::size_t>(k), rng);
  ApproScheduler appro;
  const auto plan = appro.plan(p);
  EXPECT_EQ(plan.tours.size(), static_cast<std::size_t>(k));
  const auto schedule = sched::execute_plan(p, plan);
  const auto violations = sched::verify_schedule(p, schedule);
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
  EXPECT_TRUE(schedule.all_charged());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ApproProperty,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(1, 2, 4)));

class ApproBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(ApproBoundProperty, ExecutedDelayWithinEq5Bound) {
  // T'(k) <= T(k) (Section III-C): holds whenever the executor injects no
  // waiting, which is Appro's design goal. When waiting does occur the
  // bound may be exceeded by exactly the waiting time — also checked.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 8887 + 1);
  const std::size_t n = 50 + rng.below(250);
  const auto p = random_problem(n, 2, rng);
  ApproScheduler appro;
  const auto plan = appro.plan(p);
  const auto schedule = sched::execute_plan(p, plan);
  const auto bounds = sched::estimate_tour_bounds(p, plan);
  for (std::size_t k = 0; k < bounds.size(); ++k) {
    double waited = 0.0;
    for (const auto& s : schedule.mcvs[k].sojourns) waited += s.wait();
    EXPECT_LE(schedule.mcvs[k].return_time, bounds[k] + waited + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproBoundProperty, ::testing::Range(0, 8));

TEST(Appro, NearZeroConflictWaiting) {
  // The insertion rule is designed so MCVs (almost) never wait on each
  // other; executed waiting should be a negligible share of the delay.
  Rng rng(17);
  const auto p = random_problem(500, 3, rng);
  ApproScheduler appro;
  const auto schedule = sched::execute_plan(p, appro.plan(p));
  EXPECT_LE(schedule.total_wait(), 0.05 * schedule.longest_delay());
}

TEST(Appro, DenseFieldUsesMultiNodeGain) {
  // In a dense field Appro needs far fewer stops than sensors.
  Rng rng(19);
  const auto p = random_problem(800, 2, rng);
  ApproScheduler appro;
  const auto plan = appro.plan(p);
  EXPECT_LT(plan.total_stops(), 700u);
  const auto schedule = sched::execute_plan(p, plan);
  EXPECT_TRUE(schedule.all_charged());
}

TEST(Appro, DeltaHBoundHolds) {
  // Lemma 2: Delta_H <= ceil(8*pi) = 26.
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    const auto p = random_problem(600, 2, rng);
    ApproScheduler appro;
    ApproStats stats;
    appro.plan_with_stats(p, &stats);
    EXPECT_LE(stats.h_max_degree, 26u);
  }
}

TEST(Appro, CoincidentSensorsHandled) {
  std::vector<geom::Point> pts(20, geom::Point{5.0, 5.0});
  std::vector<double> deficits(20, 1000.0);
  ChargingProblem p(std::move(pts), std::move(deficits), {0, 0}, 2.7, 1.0, 2);
  ApproScheduler appro;
  const auto plan = appro.plan(p);
  EXPECT_EQ(plan.total_stops(), 1u);  // one stop charges all 20
  const auto schedule = sched::execute_plan(p, plan);
  EXPECT_TRUE(schedule.all_charged());
  EXPECT_TRUE(sched::verify_schedule(p, schedule).empty());
}

TEST(Appro, MoreChargersNeverMuchWorse) {
  // Longest delay should broadly decrease in K (splitting is monotone;
  // insertion adds noise, so allow 10% slack).
  Rng rng(29);
  const auto p1 = random_problem(400, 1, rng);
  ApproScheduler appro;
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= 4; ++k) {
    ChargingProblem p(
        std::vector<geom::Point>(p1.positions()),
        std::vector<double>(p1.charge_seconds()), p1.depot(), p1.gamma(),
        p1.speed(), k);
    const auto schedule = sched::execute_plan(p, appro.plan(p));
    EXPECT_LT(schedule.longest_delay(), prev * 1.10);
    prev = std::min(prev, schedule.longest_delay());
  }
}

TEST(Appro, CheapestDetourInsertionAlsoFeasible) {
  // The ablation insertion rule relies on executor waiting for feasibility;
  // the executed schedule must still verify clean.
  Rng rng(37);
  const auto p = random_problem(400, 2, rng);
  ApproOptions options;
  options.insertion = InsertionRule::kCheapestNeighborDetour;
  ApproScheduler appro(options);
  const auto schedule = sched::execute_plan(p, appro.plan(p));
  const auto violations = sched::verify_schedule(p, schedule);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations[0]);
  EXPECT_TRUE(schedule.all_charged());
}

TEST(Appro, InsertionRulesCoverSameSensors) {
  Rng rng(41);
  const auto p = random_problem(300, 2, rng);
  ApproOptions paper, ablation;
  ablation.insertion = InsertionRule::kCheapestNeighborDetour;
  const auto plan_a = ApproScheduler(paper).plan(p);
  const auto plan_b = ApproScheduler(ablation).plan(p);
  // Both rules process the same S_I in some order; stop multisets can
  // differ, but both must fully cover the problem when executed.
  EXPECT_TRUE(sched::execute_plan(p, plan_a).all_charged());
  EXPECT_TRUE(sched::execute_plan(p, plan_b).all_charged());
}

TEST(Appro, MisOrderOptionsAllFeasible) {
  Rng rng(31);
  const auto p = random_problem(300, 2, rng);
  for (auto order : {graph::MisOrder::kIndex, graph::MisOrder::kMinDegree,
                     graph::MisOrder::kMaxDegree, graph::MisOrder::kPriority}) {
    ApproOptions options;
    options.gc_mis_order = order;
    options.h_mis_order = order;
    ApproScheduler appro(options);
    const auto schedule = sched::execute_plan(p, appro.plan(p));
    EXPECT_TRUE(sched::verify_schedule(p, schedule).empty())
        << "order " << static_cast<int>(order);
    EXPECT_TRUE(schedule.all_charged());
  }
}

}  // namespace
}  // namespace mcharge::core
