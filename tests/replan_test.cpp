// Tests for mid-round fleet-state reconstruction and replanning, plus the
// start-position plumbing in the executor/verifier it relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/appro.h"
#include "core/replan.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/rng.h"

namespace mcharge::core {
namespace {

using model::ChargingProblem;

ChargingProblem random_problem(std::size_t n, std::size_t k, Rng& rng) {
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(500.0, 3000.0));
  }
  return ChargingProblem(std::move(pts), std::move(deficits), {50, 50}, 2.7,
                         1.0, k);
}

// ---------- start-position execution ----------

TEST(StartPositions, FirstLegUsesPlanStart) {
  ChargingProblem p({{10.0, 0.0}}, {100.0}, {0, 0}, 2.7, 1.0, 1);
  sched::ChargingPlan plan;
  plan.tours = {{0}};
  plan.starts = {{7.0, 4.0}};  // 5 m from the sensor instead of 10
  const auto schedule = sched::execute_plan(p, plan);
  ASSERT_EQ(schedule.mcvs[0].sojourns.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].sojourns[0].arrival, 5.0);
  // Return is still to the depot (10 m back).
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].return_time, 5.0 + 100.0 + 10.0);
  EXPECT_TRUE(sched::verify_schedule(p, schedule).empty());
}

TEST(StartPositions, DefaultIsDepot) {
  ChargingProblem p({{10.0, 0.0}}, {100.0}, {0, 0}, 2.7, 1.0, 1);
  sched::ChargingPlan plan;
  plan.tours = {{0}};
  const auto schedule = sched::execute_plan(p, plan);
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].sojourns[0].arrival, 10.0);
  ASSERT_EQ(schedule.starts.size(), 1u);
  EXPECT_EQ(schedule.starts[0], p.depot());
}

// ---------- fleet_state_at ----------

TEST(FleetState, InterpolatesAlongLegsAndParksAtStops) {
  // One MCV: depot (0,0) -> sensor at (10,0), charge 100 s, return.
  ChargingProblem p({{10.0, 0.0}}, {100.0}, {0, 0}, 2.7, 1.0, 1);
  sched::ChargingPlan plan;
  plan.tours = {{0}};
  const auto schedule = sched::execute_plan(p, plan);

  auto pos = [&](double t) { return fleet_state_at(p, schedule, t).mcv_positions[0]; };
  EXPECT_NEAR(pos(0.0).x, 0.0, 1e-9);
  EXPECT_NEAR(pos(5.0).x, 5.0, 1e-9);     // halfway out
  EXPECT_NEAR(pos(10.0).x, 10.0, 1e-9);   // arrived
  EXPECT_NEAR(pos(60.0).x, 10.0, 1e-9);   // parked, charging
  EXPECT_NEAR(pos(115.0).x, 5.0, 1e-9);   // halfway home (departed at 110)
  EXPECT_NEAR(pos(120.0).x, 0.0, 1e-9);   // home
  EXPECT_NEAR(pos(999.0).x, 0.0, 1e-9);   // stays home
}

TEST(FleetState, ChargedSetGrowsWithTime) {
  ChargingProblem p({{10, 0}, {40, 0}}, {100.0, 100.0}, {0, 0}, 2.7, 1.0, 1);
  sched::ChargingPlan plan;
  plan.tours = {{0, 1}};
  const auto schedule = sched::execute_plan(p, plan);
  EXPECT_EQ(fleet_state_at(p, schedule, 0.0).num_charged(), 0u);
  // Sensor 0 done at 110; sensor 1 done at 110 + 30 + 100 = 240.
  EXPECT_EQ(fleet_state_at(p, schedule, 115.0).num_charged(), 1u);
  EXPECT_EQ(fleet_state_at(p, schedule, 241.0).num_charged(), 2u);
}

TEST(FleetState, IdleMcvStaysAtStart) {
  ChargingProblem p({{10, 0}}, {100.0}, {0, 0}, 2.7, 1.0, 2);
  sched::ChargingPlan plan;
  plan.tours = {{0}, {}};
  const auto schedule = sched::execute_plan(p, plan);
  const auto state = fleet_state_at(p, schedule, 50.0);
  EXPECT_EQ(state.mcv_positions[1], p.depot());
}

// ---------- replanning ----------

TEST(Replan, EmptyWhenEverythingCharged) {
  Rng rng(1);
  const auto p = random_problem(30, 2, rng);
  ApproScheduler appro;
  const auto schedule = sched::execute_plan(p, appro.plan(p));
  const auto state = fleet_state_at(p, schedule, 1e12);
  EXPECT_EQ(state.num_charged(), 30u);
  const auto replan = replan_from(p, state);
  EXPECT_EQ(replan.subproblem.size(), 0u);
  EXPECT_EQ(replan.plan.total_stops(), 0u);
}

class ReplanProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReplanProperty, MidRoundReplanIsFeasibleAndComplete) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 457 + 11);
  const std::size_t n = 40 + rng.below(120);
  const std::size_t k = 1 + rng.below(3);
  const auto p = random_problem(n, k, rng);
  ApproScheduler appro;
  const auto schedule = sched::execute_plan(p, appro.plan(p));

  // Interrupt somewhere in the middle of the round.
  const double t = rng.uniform(0.1, 0.9) * schedule.longest_delay();
  const auto state = fleet_state_at(p, schedule, t);
  const auto replan = replan_from(p, state);

  ASSERT_EQ(replan.subproblem.size() + state.num_charged(), n);
  ASSERT_EQ(replan.plan.starts.size(), k);
  const auto new_schedule =
      sched::execute_plan(replan.subproblem, replan.plan);
  EXPECT_TRUE(new_schedule.all_charged());
  const auto violations =
      sched::verify_schedule(replan.subproblem, new_schedule);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplanProperty, ::testing::Range(0, 12));

TEST(Replan, OriginalIndexMapsBack) {
  Rng rng(5);
  const auto p = random_problem(50, 2, rng);
  ApproScheduler appro;
  const auto schedule = sched::execute_plan(p, appro.plan(p));
  const double t = 0.3 * schedule.longest_delay();
  const auto state = fleet_state_at(p, schedule, t);
  const auto replan = replan_from(p, state);
  for (std::size_t i = 0; i < replan.subproblem.size(); ++i) {
    const std::uint32_t orig = replan.original_index[i];
    EXPECT_FALSE(state.charged[orig]);
    EXPECT_EQ(replan.subproblem.position(static_cast<std::uint32_t>(i)).x,
              p.position(orig).x);
    EXPECT_DOUBLE_EQ(
        replan.subproblem.charge_seconds(static_cast<std::uint32_t>(i)),
        p.charge_seconds(orig));
  }
}

TEST(Replan, StartsFromCurrentPositionsSavesTravel) {
  // MCV interrupted far from the depot: replanning from its position must
  // not charge more travel than a depot restart for the first leg.
  ChargingProblem p({{80, 0}, {90, 0}}, {100.0, 100.0}, {0, 0}, 2.7, 1.0, 1);
  sched::ChargingPlan plan;
  plan.tours = {{0, 1}};
  const auto schedule = sched::execute_plan(p, plan);
  // Interrupt right after sensor 0 finished (t = 80 + 100 = 180).
  const auto state = fleet_state_at(p, schedule, 181.0);
  ASSERT_EQ(state.num_charged(), 1u);
  const auto replan = replan_from(p, state);
  const auto new_schedule =
      sched::execute_plan(replan.subproblem, replan.plan);
  // First leg from ~(80,0) toward (90,0): ~10 m, not 90 m.
  ASSERT_FALSE(new_schedule.mcvs[0].sojourns.empty());
  EXPECT_LT(new_schedule.mcvs[0].sojourns[0].arrival, 15.0);
}

// ---------- failure-aware execution ----------

TEST(Faults, BreakdownAtDispatchAbortsBeforeFirstStop) {
  ChargingProblem p({{10, 0}, {40, 0}}, {100.0, 100.0}, {0, 0}, 2.7, 1.0, 1);
  sched::ChargingPlan plan;
  plan.tours = {{0, 1}};
  sched::ExecutionFaults faults;
  faults.breakdown_after = {0};
  const auto schedule = sched::execute_plan(p, plan, faults);
  ASSERT_TRUE(schedule.mcvs[0].aborted);
  EXPECT_TRUE(schedule.mcvs[0].sojourns.empty());
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].return_time, 0.0);
  EXPECT_EQ(schedule.mcvs[0].skipped, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_TRUE(schedule.partial());
  EXPECT_EQ(schedule.num_aborted(), 1u);
  EXPECT_FALSE(schedule.all_charged());
  sched::VerifyOptions options;
  options.require_full_coverage = false;
  options.allow_partial = true;
  options.faults = &faults;
  const auto violations = sched::verify_schedule(p, schedule, options);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations[0]);
}

TEST(Faults, BreakdownBeforeLastStopKeepsCompletedPrefix) {
  ChargingProblem p({{10, 0}, {40, 0}, {70, 0}}, {100.0, 100.0, 100.0},
                    {0, 0}, 2.7, 1.0, 1);
  sched::ChargingPlan plan;
  plan.tours = {{0, 1, 2}};
  sched::ExecutionFaults faults;
  faults.breakdown_after = {2};  // fails after its second sojourn
  const auto schedule = sched::execute_plan(p, plan, faults);
  ASSERT_TRUE(schedule.mcvs[0].aborted);
  ASSERT_EQ(schedule.mcvs[0].sojourns.size(), 2u);
  // return_time is the moment execution stopped: the last finish, with no
  // depot leg (10 + 100 travel+charge at 0, then 30 + 100 at 1).
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].return_time, 240.0);
  EXPECT_EQ(schedule.mcvs[0].skipped, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(schedule.charged_at[2], sched::kNeverCharged);
  sched::VerifyOptions options;
  options.require_full_coverage = false;
  options.allow_partial = true;
  options.faults = &faults;
  EXPECT_TRUE(sched::verify_schedule(p, schedule, options).empty());
}

TEST(Faults, TravelAndChargeJitterRescaleTheTimeline) {
  ChargingProblem p({{10, 0}}, {100.0}, {0, 0}, 2.7, 1.0, 1);
  sched::ChargingPlan plan;
  plan.tours = {{0}};
  sched::ExecutionFaults faults;
  faults.travel_multiplier = [](std::uint32_t, std::size_t leg) {
    return leg == 0 ? 2.0 : 0.5;  // slow leg out, fast leg home
  };
  faults.charge_multiplier = [](std::uint32_t) { return 1.5; };
  const auto schedule = sched::execute_plan(p, plan, faults);
  ASSERT_EQ(schedule.mcvs[0].sojourns.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].sojourns[0].arrival, 20.0);
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].sojourns[0].finish, 20.0 + 150.0);
  EXPECT_DOUBLE_EQ(schedule.mcvs[0].return_time, 170.0 + 5.0);
  EXPECT_FALSE(schedule.partial());
  sched::VerifyOptions options;
  options.faults = &faults;
  EXPECT_TRUE(sched::verify_schedule(p, schedule, options).empty());
  // The same execution verified WITHOUT the fault bundle must fail: the
  // checker really is re-deriving times through the multipliers.
  EXPECT_FALSE(sched::verify_schedule(p, schedule).empty());
}

TEST(Faults, EmptyBundleIsByteIdenticalToPlainExecution) {
  Rng rng(17);
  const auto p = random_problem(60, 2, rng);
  ApproScheduler appro;
  const auto plan = appro.plan(p);
  const auto plain = sched::execute_plan(p, plan);
  const auto with_faults = sched::execute_plan(p, plan, sched::ExecutionFaults{});
  ASSERT_EQ(plain.mcvs.size(), with_faults.mcvs.size());
  for (std::size_t k = 0; k < plain.mcvs.size(); ++k) {
    ASSERT_EQ(plain.mcvs[k].sojourns.size(),
              with_faults.mcvs[k].sojourns.size());
    for (std::size_t i = 0; i < plain.mcvs[k].sojourns.size(); ++i) {
      EXPECT_EQ(std::memcmp(&plain.mcvs[k].sojourns[i].arrival,
                            &with_faults.mcvs[k].sojourns[i].arrival,
                            sizeof(double)),
                0);
      EXPECT_EQ(std::memcmp(&plain.mcvs[k].sojourns[i].finish,
                            &with_faults.mcvs[k].sojourns[i].finish,
                            sizeof(double)),
                0);
    }
    EXPECT_EQ(std::memcmp(&plain.mcvs[k].return_time,
                          &with_faults.mcvs[k].return_time, sizeof(double)),
              0);
  }
  EXPECT_EQ(plain.charged_at, with_faults.charged_at);
}

// ---------- recovery policies ----------

TEST(Recovery, NoBreakdownIsJustTheExecutedSchedule) {
  Rng rng(21);
  const auto p = random_problem(40, 2, rng);
  ApproScheduler appro;
  const auto plan = appro.plan(p);
  const auto outcome =
      recover_round(p, plan, sched::ExecutionFaults{}, RecoveryPolicy::kGraft);
  EXPECT_FALSE(outcome.has_recovery);
  EXPECT_EQ(outcome.stats.breakdowns, 0u);
  EXPECT_EQ(outcome.stats.orphaned_sensors, 0u);
  EXPECT_TRUE(outcome.primary.all_charged());
  EXPECT_DOUBLE_EQ(outcome.longest_delay(),
                   outcome.primary.longest_delay());
}

TEST(Recovery, AllMcvsFailedFallsBackToDefer) {
  Rng rng(22);
  const auto p = random_problem(40, 2, rng);
  ApproScheduler appro;
  const auto plan = appro.plan(p);
  sched::ExecutionFaults faults;
  faults.breakdown_after = {0, 0};  // the whole fleet dies at dispatch
  for (RecoveryPolicy policy :
       {RecoveryPolicy::kDefer, RecoveryPolicy::kGraft,
        RecoveryPolicy::kReplan}) {
    const auto outcome = recover_round(p, plan, faults, policy);
    EXPECT_FALSE(outcome.has_recovery);
    EXPECT_EQ(outcome.stats.breakdowns, 2u);
    EXPECT_EQ(outcome.stats.recovered_sensors, 0u);
    EXPECT_EQ(outcome.stats.deferred_sensors, outcome.stats.orphaned_sensors);
    EXPECT_GT(outcome.stats.orphaned_sensors, 0u);
    EXPECT_EQ(outcome.primary.num_aborted(), 2u);
  }
}

TEST(Recovery, GraftResumesSurvivorsFromBreakdownInstant) {
  // Hand-built line instance; every sensor is >= 30 m from the others, so
  // each stop charges only itself and no charging disks overlap.
  //   s0 = (10, 0)   deficit 100   MCV0's first stop
  //   s1 = (10, 40)  deficit  70   MCV0's second stop (orphaned)
  //   s2 = (40, 0)   deficit  10   MCV1's only stop
  ChargingProblem p({{10, 0}, {10, 40}, {40, 0}}, {100.0, 70.0, 10.0}, {0, 0},
                    2.7, 1.0, 2);
  sched::ChargingPlan plan;
  plan.tours = {{0, 1}, {2}};
  sched::ExecutionFaults faults;
  faults.breakdown_after = {1, sched::ExecutionFaults::kNoBreakdown};

  const auto outcome = recover_round(p, plan, faults, RecoveryPolicy::kGraft);

  // MCV0's history is untouched: depot -> s0 (10 s), charge 100 s, abort.
  const auto& victim = outcome.primary.mcvs[0];
  ASSERT_TRUE(victim.aborted);
  ASSERT_EQ(victim.sojourns.size(), 1u);
  EXPECT_NEAR(victim.sojourns[0].arrival, 10.0, 1e-9);
  EXPECT_NEAR(victim.sojourns[0].finish, 110.0, 1e-9);
  EXPECT_NEAR(victim.return_time, 110.0, 1e-9);  // = t1
  EXPECT_EQ(victim.skipped, (std::vector<std::uint32_t>{1}));

  // MCV1's own stop reads exactly as originally executed...
  const auto& survivor = outcome.primary.mcvs[1];
  ASSERT_FALSE(survivor.aborted);
  ASSERT_EQ(survivor.sojourns.size(), 2u);
  EXPECT_NEAR(survivor.sojourns[0].arrival, 40.0, 1e-9);
  EXPECT_NEAR(survivor.sojourns[0].finish, 50.0, 1e-9);
  // ...and then the grafted orphan. The base station learns of the
  // breakdown only at t1 = 110, so the survivor departs toward s1 at 110 —
  // not at its own finish (50), which would have it rescuing an orphan
  // before anyone knew there was one.
  const double t1 = 110.0;
  const double leg = p.travel(2, 1);  // (40,0) -> (10,40): 50 s
  EXPECT_EQ(survivor.sojourns[1].location, 1u);
  EXPECT_NEAR(survivor.sojourns[1].arrival, t1 + leg, 1e-9);
  EXPECT_NEAR(survivor.sojourns[1].start, t1 + leg, 1e-9);
  EXPECT_NEAR(survivor.sojourns[1].finish, t1 + leg + 70.0, 1e-9);
  EXPECT_NEAR(survivor.return_time, t1 + leg + 70.0 + p.travel_depot(1),
              1e-9);
  EXPECT_NEAR(outcome.primary.charged_at[1], t1 + leg + 70.0, 1e-9);

  // The merged schedule verifies like one uninterrupted execution.
  sched::VerifyOptions options;
  options.require_full_coverage = false;
  options.allow_partial = true;
  options.faults = &faults;
  const auto violations = sched::verify_schedule(p, outcome.primary, options);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations[0]);
}

TEST(Recovery, GraftWithJitterKeepsMergedLegIndexing) {
  // Same instance as above, with leg- and location-dependent jitter. The
  // grafted stop extends the survivor's tour, so its legs must draw fault
  // multipliers at the MERGED tour indices (s2->s1 is leg 1, the depot
  // return leg 2) — the verifier re-derives every leg that way and the
  // early-arrival check is one-sided, so a mis-indexed (faster) draw
  // surfaces as a violation.
  ChargingProblem p({{10, 0}, {10, 40}, {40, 0}}, {100.0, 70.0, 10.0}, {0, 0},
                    2.7, 1.0, 2);
  sched::ChargingPlan plan;
  plan.tours = {{0, 1}, {2}};
  sched::ExecutionFaults faults;
  faults.breakdown_after = {1, sched::ExecutionFaults::kNoBreakdown};
  faults.travel_multiplier = [](std::uint32_t mcv, std::size_t leg) {
    return 1.0 + 0.05 * static_cast<double>((mcv + 1) * (leg + 2));
  };
  faults.charge_multiplier = [](std::uint32_t loc) {
    return 1.0 + 0.1 * static_cast<double>(loc);
  };

  const auto outcome = recover_round(p, plan, faults, RecoveryPolicy::kGraft);
  sched::VerifyOptions options;
  options.require_full_coverage = false;
  options.allow_partial = true;
  options.faults = &faults;
  const auto violations = sched::verify_schedule(p, outcome.primary, options);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations[0]);

  // Causality holds in the jittered timeline too.
  const double t1 = outcome.primary.mcvs[0].return_time;
  const auto& survivor = outcome.primary.mcvs[1];
  ASSERT_EQ(survivor.sojourns.size(), 2u);
  EXPECT_EQ(survivor.sojourns[1].location, 1u);
  EXPECT_GE(survivor.sojourns[1].start, t1 - 1e-9);
  EXPECT_TRUE(outcome.primary.charged_at[1] !=
              sched::kNeverCharged);
}

class RecoveryProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryProperty, GraftAndReplanVerifyCleanAndRescueOrphans) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911 + 3);
  const std::size_t n = 40 + rng.below(80);
  const std::size_t k = 2 + rng.below(2);
  const auto p = random_problem(n, k, rng);
  ApproScheduler appro;
  const auto plan = appro.plan(p);

  // Break one MCV partway through its tour; leave the rest alive.
  sched::ExecutionFaults faults;
  faults.breakdown_after.assign(k, sched::ExecutionFaults::kNoBreakdown);
  const std::size_t victim = rng.below(k);
  const std::size_t tour_len = plan.tours[victim].size();
  if (tour_len == 0) GTEST_SKIP() << "victim drew an empty tour";
  faults.breakdown_after[victim] =
      static_cast<std::uint32_t>(rng.below(tour_len));

  const auto broken =
      recover_round(p, plan, faults, RecoveryPolicy::kDefer);
  for (RecoveryPolicy policy :
       {RecoveryPolicy::kGraft, RecoveryPolicy::kReplan}) {
    const auto outcome = recover_round(p, plan, faults, policy);
    SCOPED_TRACE(policy == RecoveryPolicy::kGraft ? "graft" : "replan");
    EXPECT_EQ(outcome.stats.breakdowns, 1u);
    // The primary (partial) schedule must verify under the fault bundle.
    sched::VerifyOptions options;
    options.require_full_coverage = false;
    options.allow_partial = true;
    options.faults = &faults;
    auto violations = sched::verify_schedule(p, outcome.primary, options);
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations[0]);
    // The recovery wave (if any) is a fault-free full schedule of its
    // sub-problem.
    if (outcome.has_recovery) {
      violations = sched::verify_schedule(outcome.replan.subproblem,
                                          outcome.recovery);
      EXPECT_TRUE(violations.empty())
          << (violations.empty() ? "" : violations[0]);
    }
    // Every orphan is either recovered this round or deferred; recovery
    // never loses sensors.
    EXPECT_EQ(outcome.stats.recovered_sensors + outcome.stats.deferred_sensors,
              outcome.stats.orphaned_sensors);
    // Rescuing orphans cannot beat the broken round's delay.
    EXPECT_GE(outcome.longest_delay(), broken.longest_delay() - 1e-9);
    EXPECT_GE(outcome.stats.extra_delay_s, 0.0);
    if (policy == RecoveryPolicy::kGraft) {
      // Causality: a grafted (previously orphaned) stop cannot begin
      // before the first breakdown was known, and the survivors' frozen
      // prefixes must read exactly as in the broken execution.
      double t1 = std::numeric_limits<double>::infinity();
      std::vector<char> orphan(n, 0);
      for (const auto& mcv : broken.primary.mcvs) {
        if (!mcv.aborted) continue;
        t1 = std::min(t1, mcv.return_time);
        for (std::uint32_t s : mcv.skipped) orphan[s] = 1;
      }
      for (std::size_t j = 0; j < outcome.primary.mcvs.size(); ++j) {
        const auto& mcv = outcome.primary.mcvs[j];
        std::size_t i = 0;
        for (const auto& s : mcv.sojourns) {
          if (orphan[s.location]) {
            EXPECT_GE(s.start, t1 - 1e-9);
          } else if (!mcv.aborted) {
            const auto& orig = broken.primary.mcvs[j].sojourns;
            ASSERT_LT(i, orig.size());
            if (orig[i].start <= t1) {
              EXPECT_DOUBLE_EQ(s.start, orig[i].start);
              EXPECT_DOUBLE_EQ(s.finish, orig[i].finish);
            }
            ++i;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace mcharge::core
