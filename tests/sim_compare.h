// Shared helpers for memcmp-grade SimResult comparison across SIMD
// backends and worker counts. Used by sim_determinism_test.cpp (fault-free
// contract) and sim_fault_test.cpp (fault-stream contract): the two suites
// must agree on what "bit-identical" means, including the fault and
// truncation fields.
#pragma once

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/simulation.h"
#include "util/simd.h"
#include "util/stats.h"

namespace mcharge::sim {

/// Pins a backend for a scope; restores the previous one on exit.
class BackendGuard {
 public:
  explicit BackendGuard(simd::Backend b) : prev_(simd::active_backend()) {
    active_ = simd::set_backend(b);
  }
  ~BackendGuard() { simd::set_backend(prev_); }
  simd::Backend active() const { return active_; }

 private:
  simd::Backend prev_;
  simd::Backend active_;
};

inline std::vector<simd::Backend> supported_backends() {
  std::vector<simd::Backend> out{simd::Backend::kScalar};
  for (simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kAvx512}) {
    BackendGuard guard(b);
    if (guard.active() == b) out.push_back(b);
  }
  return out;
}

/// Bitwise equality for doubles (EXPECT_EQ would treat -0.0 == 0.0 and
/// could be fooled by NaN; the contract is stronger).
inline ::testing::AssertionResult bits_eq(const char* a_expr,
                                          const char* b_expr, double a,
                                          double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a_expr << " and " << b_expr << " differ bitwise: " << a << " vs "
         << b;
}

#define EXPECT_BITS_EQ(a, b) EXPECT_PRED_FORMAT2(::mcharge::sim::bits_eq, a, b)

inline void expect_stats_identical(const RunningStats& a,
                                   const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_BITS_EQ(a.sum(), b.sum());
  EXPECT_BITS_EQ(a.mean(), b.mean());
  EXPECT_BITS_EQ(a.variance(), b.variance());
  EXPECT_BITS_EQ(a.min(), b.min());
  EXPECT_BITS_EQ(a.max(), b.max());
}

inline void expect_results_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.sensors_charged, b.sensors_charged);
  EXPECT_BITS_EQ(a.total_dead_seconds, b.total_dead_seconds);
  EXPECT_BITS_EQ(a.mean_dead_minutes_per_sensor,
                 b.mean_dead_minutes_per_sensor);
  expect_stats_identical(a.round_longest_delay_s, b.round_longest_delay_s);
  expect_stats_identical(a.round_batch_size, b.round_batch_size);
  expect_stats_identical(a.request_latency_s, b.request_latency_s);
  EXPECT_BITS_EQ(a.total_conflict_wait_s, b.total_conflict_wait_s);
  EXPECT_EQ(a.verify_violations, b.verify_violations);
  EXPECT_BITS_EQ(a.busy_fraction, b.busy_fraction);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.truncated_reason, b.truncated_reason);
  EXPECT_EQ(a.mcv_breakdowns, b.mcv_breakdowns);
  EXPECT_EQ(a.sensors_failed, b.sensors_failed);
  EXPECT_EQ(a.recovered_sensors, b.recovered_sensors);
  EXPECT_EQ(a.deferred_sensors, b.deferred_sensors);
  EXPECT_BITS_EQ(a.extra_recovery_delay_s, b.extra_recovery_delay_s);
  EXPECT_EQ(a.mcv_energy_exhausted, b.mcv_energy_exhausted);
  EXPECT_BITS_EQ(a.mcv_energy_spent_j, b.mcv_energy_spent_j);
  EXPECT_BITS_EQ(a.mcv_energy_max_tour_j, b.mcv_energy_max_tour_j);
  ASSERT_EQ(a.dead_seconds_per_sensor.size(),
            b.dead_seconds_per_sensor.size());
  EXPECT_EQ(0, std::memcmp(a.dead_seconds_per_sensor.data(),
                           b.dead_seconds_per_sensor.data(),
                           a.dead_seconds_per_sensor.size() * sizeof(double)));
  ASSERT_EQ(a.charges_per_sensor.size(), b.charges_per_sensor.size());
  EXPECT_EQ(a.charges_per_sensor, b.charges_per_sensor);
  ASSERT_EQ(a.dead_seconds_by_month.size(), b.dead_seconds_by_month.size());
  EXPECT_EQ(0, std::memcmp(a.dead_seconds_by_month.data(),
                           b.dead_seconds_by_month.data(),
                           a.dead_seconds_by_month.size() * sizeof(double)));
  ASSERT_EQ(a.rounds_log.size(), b.rounds_log.size());
  for (std::size_t i = 0; i < a.rounds_log.size(); ++i) {
    EXPECT_BITS_EQ(a.rounds_log[i].dispatch_time,
                   b.rounds_log[i].dispatch_time);
    EXPECT_EQ(a.rounds_log[i].batch, b.rounds_log[i].batch);
    EXPECT_EQ(a.rounds_log[i].charged, b.rounds_log[i].charged);
    EXPECT_BITS_EQ(a.rounds_log[i].longest_delay_s,
                   b.rounds_log[i].longest_delay_s);
    EXPECT_BITS_EQ(a.rounds_log[i].wait_s, b.rounds_log[i].wait_s);
    EXPECT_EQ(a.rounds_log[i].breakdowns, b.rounds_log[i].breakdowns);
    EXPECT_EQ(a.rounds_log[i].recovered, b.rounds_log[i].recovered);
    EXPECT_EQ(a.rounds_log[i].deferred, b.rounds_log[i].deferred);
    EXPECT_BITS_EQ(a.rounds_log[i].extra_delay_s,
                   b.rounds_log[i].extra_delay_s);
    EXPECT_EQ(a.rounds_log[i].energy_aborts, b.rounds_log[i].energy_aborts);
    EXPECT_BITS_EQ(a.rounds_log[i].energy_spent_j,
                   b.rounds_log[i].energy_spent_j);
    EXPECT_BITS_EQ(a.rounds_log[i].energy_max_tour_j,
                   b.rounds_log[i].energy_max_tour_j);
  }
}

}  // namespace mcharge::sim
