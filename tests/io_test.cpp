// Tests for the io module: instance/round CSV round-trips, schedule export,
// timeline rendering, and malformed-input handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/appro.h"
#include "io/instance_io.h"
#include "io/schedule_io.h"
#include "model/network.h"
#include "schedule/execute.h"
#include "util/rng.h"

namespace mcharge::io {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

TEST(InstanceIo, RoundTripPreservesEverything) {
  model::NetworkConfig config;
  config.num_chargers = 3;
  config.depot = {10.0, 20.0};
  Rng rng(1);
  const auto original = model::make_instance(config, 50, rng);
  const std::string path = temp_path("instance.csv");
  ASSERT_TRUE(write_instance_csv(path, original));

  std::string error;
  const auto loaded = read_instance_csv(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_sensors(), 50u);
  EXPECT_EQ(loaded->config.num_chargers, 3u);
  EXPECT_DOUBLE_EQ(loaded->config.depot.x, 10.0);
  EXPECT_DOUBLE_EQ(loaded->config.depot.y, 20.0);
  for (std::size_t v = 0; v < 50; ++v) {
    EXPECT_NEAR(loaded->positions[v].x, original.positions[v].x, 1e-4);
    EXPECT_NEAR(loaded->rate_bps[v], original.rate_bps[v], 1e-2);
    EXPECT_NEAR(loaded->consumption_w[v], original.consumption_w[v], 1e-6);
  }
}

TEST(InstanceIo, MissingFileFails) {
  std::string error;
  EXPECT_FALSE(read_instance_csv("/nonexistent/nowhere.csv", &error));
  EXPECT_FALSE(error.empty());
}

TEST(InstanceIo, MissingConfigRejected) {
  const std::string path = temp_path("noconfig.csv");
  write_text(path, "sensor,1,2,1000,0.001\n");
  std::string error;
  EXPECT_FALSE(read_instance_csv(path, &error));
  EXPECT_NE(error.find("config"), std::string::npos);
}

TEST(InstanceIo, GarbageRejectedWithLineNumber) {
  const std::string path = temp_path("garbage.csv");
  write_text(path,
             "config,100,100,50,50,50,50,10800,2.7,2,1,2,0.2\n"
             "sensor,1,2,abc,0.001\n");
  std::string error;
  EXPECT_FALSE(read_instance_csv(path, &error));
  EXPECT_NE(error.find("2"), std::string::npos);
}

TEST(RoundIo, RoundTripWithLifetimes) {
  RoundData round;
  round.positions = {{1, 2}, {3, 4}};
  round.deficit_joules = {8640.0, 5000.0};
  round.residual_lifetime_s = {1000.0, 2000.0};
  const std::string path = temp_path("round.csv");
  ASSERT_TRUE(write_round_csv(path, round));
  std::string error;
  const auto loaded = read_round_csv(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->positions.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->deficit_joules[1], 5000.0);
  EXPECT_DOUBLE_EQ(loaded->residual_lifetime_s[0], 1000.0);
}

TEST(RoundIo, ToProblemConvertsUnits) {
  RoundData round;
  round.positions = {{1, 2}};
  round.deficit_joules = {8640.0};
  const auto problem = round.to_problem({0, 0}, 2.7, 1.0, 2, 2.0);
  EXPECT_DOUBLE_EQ(problem.charge_seconds(0), 4320.0);
  EXPECT_EQ(problem.num_chargers(), 2u);
  EXPECT_DOUBLE_EQ(problem.charging_rate_w(), 2.0);
}

TEST(RoundIo, MixedLifetimeColumnsRejected) {
  const std::string path = temp_path("mixed.csv");
  write_text(path, "1,2,100,50\n3,4,100\n");
  std::string error;
  EXPECT_FALSE(read_round_csv(path, &error));
}

TEST(RoundIo, EmptyFileRejected) {
  const std::string path = temp_path("empty_round.csv");
  write_text(path, "# just a comment\n");
  EXPECT_FALSE(read_round_csv(path));
}

TEST(ScheduleIo, CsvHasRowPerSojourn) {
  Rng rng(2);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(1000.0, 5400.0));
  }
  model::ChargingProblem problem(std::move(pts), std::move(deficits), {50, 50},
                                 2.7, 1.0, 2);
  core::ApproScheduler appro;
  const auto schedule = sched::execute_plan(problem, appro.plan(problem));
  const std::string path = temp_path("schedule.csv");
  ASSERT_TRUE(write_schedule_csv(path, problem, schedule));

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  std::getline(in, line);  // header
  EXPECT_NE(line.find("mcv,stop"), std::string::npos);
  while (std::getline(in, line)) ++lines;
  // One row per sojourn plus one return row per MCV.
  EXPECT_EQ(lines, schedule.num_stops() + schedule.mcvs.size());
}

TEST(Timeline, MarksChargingAndWaiting) {
  // Two MCVs forced into a conflict: the second lane must show 'w'.
  model::ChargingProblem problem({{10, 0}, {12, 0}, {14, 0}},
                                 {100.0, 50.0, 200.0}, {0, 0}, 2.7, 1.0, 2);
  sched::ChargingPlan plan;
  plan.tours = {{0}, {2}};
  const auto schedule = sched::execute_plan(problem, plan);
  const std::string text = render_timeline(problem, schedule, 60);
  EXPECT_NE(text.find("mcv 0"), std::string::npos);
  EXPECT_NE(text.find("mcv 1"), std::string::npos);
  EXPECT_NE(text.find('='), std::string::npos);
  EXPECT_NE(text.find('w'), std::string::npos);
}

TEST(RoundIo, JunkLinesRejectedNotCrashed) {
  // A grab-bag of malformed content must produce parse errors, never
  // aborts or garbage data.
  const char* bad_contents[] = {
      "1,2\n",              // too few columns
      "1,2,3,4,5\n",        // too many columns
      "x,y,z\n",            // non-numeric
      ",,,\n",              // empty cells
      "1,2,3\n1,2\n",       // inconsistent rows
  };
  int idx = 0;
  for (const char* content : bad_contents) {
    const std::string path =
        temp_path("junk" + std::to_string(idx++) + ".csv");
    write_text(path, content);
    std::string error;
    EXPECT_FALSE(read_round_csv(path, &error)) << content;
    EXPECT_FALSE(error.empty());
  }
}

TEST(InstanceIo, CommentsAndBlankLinesIgnored) {
  const std::string path = temp_path("comments.csv");
  write_text(path,
             "# header comment\n"
             "\n"
             "config,100,100,50,50,50,50,10800,2.7,2,1,2,0.2\n"
             "# mid comment\n"
             "sensor,1,2,1000,0.001\n");
  const auto loaded = read_instance_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_sensors(), 1u);
}

TEST(Timeline, EmptyScheduleHandled) {
  model::ChargingProblem problem({}, {}, {0, 0}, 2.7, 1.0, 1);
  sched::ChargingSchedule schedule;
  schedule.mcvs.resize(1);
  EXPECT_NE(render_timeline(problem, schedule).find("empty"),
            std::string::npos);
}

}  // namespace
}  // namespace mcharge::io
