// Determinism of the parallel figure-bench harness: the statistics a
// sweep point produces must be byte-identical for every --jobs value.
#include <gtest/gtest.h>

#include <vector>

#include "figure_common.h"

namespace mcharge {
namespace {

bench::SweepSettings small_settings(std::size_t jobs) {
  bench::SweepSettings s;
  s.instances = 3;
  s.months = 0.5;
  s.seed = 7;
  s.jobs = jobs;
  return s;
}

bench::PointResult run_small_sweep(std::size_t jobs, std::size_t n) {
  const auto algorithms = bench::paper_algorithms();
  const auto settings = small_settings(jobs);
  model::NetworkConfig config;
  config.num_chargers = 2;
  return bench::run_point(settings, algorithms, [&](Rng& rng) {
    return model::make_instance(config, n, rng, settings.layout);
  });
}

void expect_identical(const bench::PointResult& a,
                      const bench::PointResult& b) {
  ASSERT_EQ(a.longest_tour_hours.size(), b.longest_tour_hours.size());
  for (std::size_t i = 0; i < a.longest_tour_hours.size(); ++i) {
    // EXPECT_EQ on doubles: bitwise equality is the claim, not closeness.
    EXPECT_EQ(a.longest_tour_hours[i], b.longest_tour_hours[i]);
    EXPECT_EQ(a.dead_minutes[i], b.dead_minutes[i]);
    EXPECT_EQ(a.tour_stddev[i], b.tour_stddev[i]);
    EXPECT_EQ(a.dead_stddev[i], b.dead_stddev[i]);
  }
  EXPECT_EQ(a.violations, b.violations);
}

TEST(ParallelSweep, FourJobsMatchesSerialExactly) {
  const auto serial = run_small_sweep(1, 120);
  const auto parallel = run_small_sweep(4, 120);
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, OddJobCountMatchesSerialExactly) {
  // A job count that does not divide the 15 work items (3 instances x 5
  // algorithms) exercises uneven item-to-thread assignment.
  const auto serial = run_small_sweep(1, 80);
  const auto parallel = run_small_sweep(7, 80);
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, RepeatedParallelRunsAreStable) {
  const auto first = run_small_sweep(4, 80);
  const auto second = run_small_sweep(4, 80);
  expect_identical(first, second);
}

TEST(ParallelSweep, ProducesNonDegenerateStatistics) {
  // Guard against the determinism tests passing vacuously on all-zero
  // output: the simulated tours must have positive duration.
  const auto result = run_small_sweep(2, 120);
  ASSERT_EQ(result.longest_tour_hours.size(), 5u);
  for (double v : result.longest_tour_hours) EXPECT_GT(v, 0.0);
  EXPECT_EQ(result.violations, 0u);
}

}  // namespace
}  // namespace mcharge
