// Determinism of the parallel figure-bench harness: the statistics a
// sweep point produces must be byte-identical for every --jobs value.
#include <gtest/gtest.h>

#include <vector>

#include "figure_common.h"

namespace mcharge {
namespace {

bench::SweepSettings small_settings(std::size_t jobs) {
  bench::SweepSettings s;
  s.instances = 3;
  s.months = 0.5;
  s.seed = 7;
  s.jobs = jobs;
  return s;
}

bench::PointResult run_small_sweep(std::size_t jobs, std::size_t n) {
  const auto algorithms = bench::paper_algorithms();
  const auto settings = small_settings(jobs);
  model::NetworkConfig config;
  config.num_chargers = 2;
  return bench::run_point(settings, algorithms, [&](Rng& rng) {
    return model::make_instance(config, n, rng, settings.layout);
  });
}

void expect_identical(const bench::PointResult& a,
                      const bench::PointResult& b) {
  ASSERT_EQ(a.longest_tour_hours.size(), b.longest_tour_hours.size());
  for (std::size_t i = 0; i < a.longest_tour_hours.size(); ++i) {
    // EXPECT_EQ on doubles: bitwise equality is the claim, not closeness.
    EXPECT_EQ(a.longest_tour_hours[i], b.longest_tour_hours[i]);
    EXPECT_EQ(a.dead_minutes[i], b.dead_minutes[i]);
    EXPECT_EQ(a.tour_stddev[i], b.tour_stddev[i]);
    EXPECT_EQ(a.dead_stddev[i], b.dead_stddev[i]);
  }
  EXPECT_EQ(a.violations, b.violations);
}

TEST(ParallelSweep, FourJobsMatchesSerialExactly) {
  const auto serial = run_small_sweep(1, 120);
  const auto parallel = run_small_sweep(4, 120);
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, OddJobCountMatchesSerialExactly) {
  // A job count that does not divide the 15 work items (3 instances x 5
  // algorithms) exercises uneven item-to-thread assignment.
  const auto serial = run_small_sweep(1, 80);
  const auto parallel = run_small_sweep(7, 80);
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, RepeatedParallelRunsAreStable) {
  const auto first = run_small_sweep(4, 80);
  const auto second = run_small_sweep(4, 80);
  expect_identical(first, second);
}

TEST(ShardedSweep, ShardUnionMatchesUnshardedBitwise) {
  // Run one sweep point unsharded, then as three --shard=i/3 slices.
  // Every work item must land in exactly one shard with the same bits,
  // and reducing the union must reproduce the unsharded PointResult.
  const auto algorithms = bench::paper_algorithms();
  model::NetworkConfig config;
  config.num_chargers = 2;
  const auto make = [&](Rng& rng) {
    return model::make_instance(config, 100, rng);
  };
  const auto settings = small_settings(2);
  const auto full =
      bench::run_point_samples(settings, algorithms, make, /*point_idx=*/1);

  std::vector<bench::ItemSample> merged(full.size());
  for (std::size_t shard = 0; shard < 3; ++shard) {
    auto sharded = settings;
    sharded.shard_index = shard;
    sharded.shard_count = 3;
    const auto part =
        bench::run_point_samples(sharded, algorithms, make, /*point_idx=*/1);
    ASSERT_EQ(part.size(), full.size());
    for (std::size_t idx = 0; idx < part.size(); ++idx) {
      if (!part[idx].present) continue;
      EXPECT_FALSE(merged[idx].present) << "item " << idx << " in two shards";
      merged[idx] = part[idx];
    }
  }
  for (std::size_t idx = 0; idx < full.size(); ++idx) {
    ASSERT_TRUE(full[idx].present);
    ASSERT_TRUE(merged[idx].present) << "item " << idx << " in no shard";
    EXPECT_EQ(full[idx].tour, merged[idx].tour);  // bitwise
    EXPECT_EQ(full[idx].dead, merged[idx].dead);
    EXPECT_EQ(full[idx].violations, merged[idx].violations);
  }
  expect_identical(
      bench::reduce_point(settings, algorithms.size(), full),
      bench::reduce_point(settings, algorithms.size(), merged));
}

TEST(ShardedSweep, ChunkFileRoundTripsBitsExactly) {
  bench::ChunkFile chunk;
  chunk.kind = "ablation_policy";
  chunk.figure = "Fig. 3";
  chunk.knob = "n";
  chunk.seed = 123456789012345ull;
  chunk.instances = 4;
  chunk.months = 1.0 / 3.0;  // not representable in short decimal
  chunk.shard_index = 2;
  chunk.shard_count = 5;
  chunk.params = {{"n", "1000"}, {"chargers", "2"}};
  chunk.algo_names = {"Appro", "K-EDF"};
  chunk.labels = {"200", "400"};
  // Values vectors of differing length, incl. a denormal and an empty one.
  chunk.items.push_back({0, 1, 0, 3, {0.1 + 0.2, 4.9e-324}});
  chunk.items.push_back({1, 3, 1, 0, {123.456789012345678, 0.0, -1.5}});
  chunk.items.push_back({0, 0, 1, 0, {}});

  const std::string path = ::testing::TempDir() + "/mcharge_chunk_test.txt";
  ASSERT_TRUE(bench::write_chunk(path, chunk));
  bench::ChunkFile back;
  std::string error;
  ASSERT_TRUE(bench::read_chunk(path, &back, &error)) << error;
  EXPECT_EQ(back.kind, chunk.kind);
  EXPECT_EQ(back.figure, chunk.figure);
  EXPECT_EQ(back.knob, chunk.knob);
  EXPECT_EQ(back.seed, chunk.seed);
  EXPECT_EQ(back.instances, chunk.instances);
  EXPECT_EQ(back.months, chunk.months);  // bitwise via %a round-trip
  EXPECT_EQ(back.shard_index, chunk.shard_index);
  EXPECT_EQ(back.shard_count, chunk.shard_count);
  EXPECT_EQ(back.params, chunk.params);
  EXPECT_EQ(back.param("chargers"), "2");
  EXPECT_EQ(back.param("absent"), "");
  EXPECT_EQ(back.algo_names, chunk.algo_names);
  EXPECT_EQ(back.labels, chunk.labels);
  ASSERT_EQ(back.items.size(), chunk.items.size());
  for (std::size_t i = 0; i < chunk.items.size(); ++i) {
    EXPECT_EQ(back.items[i].point, chunk.items[i].point);
    EXPECT_EQ(back.items[i].inst, chunk.items[i].inst);
    EXPECT_EQ(back.items[i].algo, chunk.items[i].algo);
    EXPECT_EQ(back.items[i].violations, chunk.items[i].violations);
    ASSERT_EQ(back.items[i].values.size(), chunk.items[i].values.size());
    for (std::size_t v = 0; v < chunk.items[i].values.size(); ++v) {
      EXPECT_EQ(back.items[i].values[v], chunk.items[i].values[v]);
    }
  }
  std::remove(path.c_str());
}

TEST(ParallelSweep, ProducesNonDegenerateStatistics) {
  // Guard against the determinism tests passing vacuously on all-zero
  // output: the simulated tours must have positive duration.
  const auto result = run_small_sweep(2, 120);
  ASSERT_EQ(result.longest_tour_hours.size(), 5u);
  for (double v : result.longest_tour_hours) EXPECT_GT(v, 0.0);
  EXPECT_EQ(result.violations, 0u);
}

}  // namespace
}  // namespace mcharge
