// Kernel-vs-scalar equivalence for util/simd.h.
//
// The claim under test is BITWISE identity: for every backend the build
// supports (scalar always; AVX2/AVX-512 when the CPU has them), each
// kernel must return exactly the bits of a naive scalar loop written
// against the documented operation sequence — including lowest-index
// tie-breaking, odd tail lengths, masked lanes, and empty inputs. The
// final test closes the loop end to end: a full Appro plan must be
// identical under every backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/appro.h"
#include "schedule/execute.h"
#include "util/rng.h"
#include "util/simd.h"

namespace mcharge {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Pins a backend for a scope; restores the previous one on exit.
class BackendGuard {
 public:
  explicit BackendGuard(simd::Backend b) : prev_(simd::active_backend()) {
    active_ = simd::set_backend(b);
  }
  ~BackendGuard() { simd::set_backend(prev_); }
  simd::Backend active() const { return active_; }

 private:
  simd::Backend prev_;
  simd::Backend active_;
};

/// All backends this build + CPU can actually run.
std::vector<simd::Backend> supported_backends() {
  std::vector<simd::Backend> out{simd::Backend::kScalar};
  for (simd::Backend b : {simd::Backend::kAvx2, simd::Backend::kAvx512}) {
    BackendGuard guard(b);
    if (guard.active() == b) out.push_back(b);
  }
  return out;
}

const std::vector<std::size_t> kLengths = {0,  1,  2,  3,  4,  5,   7,  8,
                                           9,  15, 16, 17, 31, 32,  33, 64,
                                           100};

double dist(double x1, double y1, double x2, double y2) {
  const double dx = x1 - x2;
  const double dy = y1 - y2;
  return std::sqrt(dx * dx + dy * dy);
}

struct Soa {
  std::vector<double> xs, ys;
};

Soa random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Soa p;
  for (std::size_t i = 0; i < n; ++i) {
    p.xs.push_back(rng.uniform(0.0, 100.0));
    p.ys.push_back(rng.uniform(0.0, 100.0));
  }
  return p;
}

TEST(Simd, ScalarBackendAlwaysAvailable) {
  BackendGuard guard(simd::Backend::kScalar);
  EXPECT_EQ(guard.active(), simd::Backend::kScalar);
  EXPECT_STREQ(simd::backend_name(simd::Backend::kScalar), "scalar");
}

#ifdef MCHARGE_NO_SIMD
TEST(Simd, NoSimdBuildPinsScalar) {
  EXPECT_EQ(simd::best_backend(), simd::Backend::kScalar);
  BackendGuard guard(simd::Backend::kAvx512);
  EXPECT_EQ(guard.active(), simd::Backend::kScalar);
}
#endif

TEST(Simd, DistanceRowMatchesScalarOnAllBackends) {
  for (std::size_t n : kLengths) {
    const Soa p = random_points(n, 100 + n);
    std::vector<double> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = dist(37.5, 42.25, p.xs[i], p.ys[i]);
    }
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      std::vector<double> out(n, -1.0);
      simd::distance_row(p.xs.data(), p.ys.data(), n, 37.5, 42.25,
                         out.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(expected[i], out[i])
            << "n=" << n << " i=" << i << " backend=" << static_cast<int>(b);
      }
    }
  }
}

TEST(Simd, DistanceMatrixSymmetricZeroDiagonalAndScalarIdentical) {
  for (std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{33}}) {
    const Soa p = random_points(m, 200 + m);
    std::vector<double> scalar(m * m, -1.0);
    {
      BackendGuard guard(simd::Backend::kScalar);
      simd::distance_matrix(p.xs.data(), p.ys.data(), m, scalar.data());
    }
    for (std::size_t a = 0; a < m; ++a) {
      EXPECT_EQ(scalar[a * m + a], 0.0);
      for (std::size_t b = 0; b < m; ++b) {
        EXPECT_EQ(scalar[a * m + b], scalar[b * m + a]);
        EXPECT_EQ(scalar[a * m + b], dist(p.xs[a], p.ys[a], p.xs[b], p.ys[b]));
      }
    }
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      std::vector<double> out(m * m, -1.0);
      simd::distance_matrix(p.xs.data(), p.ys.data(), m, out.data());
      EXPECT_EQ(0, std::memcmp(scalar.data(), out.data(),
                               m * m * sizeof(double)))
          << "m=" << m << " backend=" << static_cast<int>(b);
    }
  }
}

TEST(Simd, ArgminMaskedMatchesSequentialScan) {
  for (std::size_t n : kLengths) {
    Rng rng(300 + n);
    std::vector<double> values(n);
    std::vector<unsigned char> skip(n);
    // Quantized values force plenty of exact duplicates (tie-breaks).
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = std::floor(rng.uniform(0.0, 8.0));
      skip[i] = rng.uniform(0.0, 1.0) < 0.3 ? 1 : 0;
    }
    std::size_t want = simd::kNpos;
    double want_v = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i]) continue;
      if (values[i] < want_v) {
        want_v = values[i];
        want = i;
      }
    }
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      const simd::ArgMin got =
          simd::argmin_masked(values.data(), skip.data(), n);
      EXPECT_EQ(want, got.index)
          << "n=" << n << " backend=" << static_cast<int>(b);
      if (want != simd::kNpos) {
        EXPECT_EQ(want_v, got.value);
      }
    }
  }
}

TEST(Simd, ArgminMaskedAllSkippedReturnsNpos) {
  const std::vector<double> values(20, 1.0);
  const std::vector<unsigned char> skip(20, 1);
  for (simd::Backend b : supported_backends()) {
    BackendGuard guard(b);
    EXPECT_EQ(simd::kNpos,
              simd::argmin_masked(values.data(), skip.data(), 20).index);
    EXPECT_EQ(simd::kNpos, simd::argmin_masked(values.data(), skip.data(), 0)
                               .index);
  }
}

TEST(Simd, ArgminTieBreaksToLowestIndexAcrossLaneBoundaries) {
  // Duplicated minima placed across 4- and 8-lane boundaries: a reduction
  // that prefers a later lane (or the wrong half) would return the wrong
  // index while still returning the right value.
  for (std::size_t first : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                            std::size_t{11}}) {
    for (std::size_t second : {std::size_t{16}, std::size_t{19},
                               std::size_t{24}}) {
      std::vector<double> values(33, 5.0);
      values[first] = 1.0;
      values[second] = 1.0;
      for (simd::Backend b : supported_backends()) {
        BackendGuard guard(b);
        const simd::ArgMin got =
            simd::argmin_masked(values.data(), nullptr, values.size());
        EXPECT_EQ(first, got.index) << "backend=" << static_cast<int>(b);
        EXPECT_EQ(1.0, got.value);
      }
    }
  }
}

TEST(Simd, ArgminDistanceMaskedMatchesScalarWithDuplicatePoints) {
  for (std::size_t n : kLengths) {
    Soa p = random_points(n, 400 + n);
    // Duplicate coordinates (exact copies) create distance ties.
    for (std::size_t i = 3; i + 1 < n; i += 4) {
      p.xs[i + 1] = p.xs[i];
      p.ys[i + 1] = p.ys[i];
    }
    Rng rng(500 + n);
    std::vector<unsigned char> skip(n);
    for (auto& s : skip) s = rng.uniform(0.0, 1.0) < 0.25 ? 1 : 0;
    for (const unsigned char* mask :
         {static_cast<const unsigned char*>(skip.data()),
          static_cast<const unsigned char*>(nullptr)}) {
      std::size_t want = simd::kNpos;
      double want_v = kInf;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask && mask[i]) continue;
        const double d = dist(60.0, 40.0, p.xs[i], p.ys[i]);
        if (d < want_v) {
          want_v = d;
          want = i;
        }
      }
      for (simd::Backend b : supported_backends()) {
        BackendGuard guard(b);
        const simd::ArgMin got = simd::argmin_distance_masked(
            p.xs.data(), p.ys.data(), n, 60.0, 40.0, mask);
        EXPECT_EQ(want, got.index)
            << "n=" << n << " backend=" << static_cast<int>(b);
        if (want != simd::kNpos) {
        EXPECT_EQ(want_v, got.value);
      }
      }
    }
  }
}

TEST(Simd, MinMaxReduceMatchScalar) {
  for (std::size_t n : kLengths) {
    Rng rng(600 + n);
    std::vector<double> values(n);
    for (auto& v : values) v = rng.uniform(-50.0, 50.0);
    double want_min = kInf, want_max = -kInf;
    for (double v : values) {
      if (v < want_min) want_min = v;
      if (v > want_max) want_max = v;
    }
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      EXPECT_EQ(want_min, simd::min_reduce(values.data(), n)) << "n=" << n;
      EXPECT_EQ(want_max, simd::max_reduce(values.data(), n)) << "n=" << n;
    }
  }
}

TEST(Simd, TwoOptScanMatchesScalarLoop) {
  for (std::size_t n : {std::size_t{4}, std::size_t{9}, std::size_t{40}}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const Soa p = random_points(n + 1, 700 * n + seed);
      Rng rng(800 * n + seed);
      const double ax = rng.uniform(0.0, 100.0);
      const double ay = rng.uniform(0.0, 100.0);
      const double bx = rng.uniform(0.0, 100.0);
      const double by = rng.uniform(0.0, 100.0);
      const double speed = rng.uniform(0.5, 3.0);
      const double base = rng.uniform(0.0, 60.0);
      const double min_gain = seed % 3 == 0 ? 0.0 : 1e-9;
      const std::size_t j_begin = seed % n;
      std::vector<double> tc(n);
      for (std::size_t j = 0; j < n; ++j) {
        tc[j] = dist(p.xs[j], p.ys[j], p.xs[j + 1], p.ys[j + 1]) / speed;
      }
      std::size_t want = simd::kNpos;
      for (std::size_t j = j_begin; j < n; ++j) {
        const double da = dist(ax, ay, p.xs[j], p.ys[j]);
        const double db = dist(bx, by, p.xs[j + 1], p.ys[j + 1]);
        const double after = da / speed + db / speed;
        const double before = base + tc[j];
        if (after < before - min_gain) {
          want = j;
          break;
        }
      }
      for (simd::Backend b : supported_backends()) {
        BackendGuard guard(b);
        EXPECT_EQ(want, simd::two_opt_scan(p.xs.data(), p.ys.data(), tc.data(),
                                           j_begin, n, ax, ay, bx, by, speed,
                                           base, min_gain))
            << "n=" << n << " seed=" << seed
            << " backend=" << static_cast<int>(b);
      }
    }
  }
}

TEST(Simd, OrOptScanMatchesScalarLoop) {
  for (std::size_t n : {std::size_t{4}, std::size_t{9}, std::size_t{40}}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const Soa p = random_points(n + 1, 900 * n + seed);
      Rng rng(1000 * n + seed);
      const double ix = rng.uniform(0.0, 100.0);
      const double iy = rng.uniform(0.0, 100.0);
      const double ex = rng.uniform(0.0, 100.0);
      const double ey = rng.uniform(0.0, 100.0);
      const double speed = rng.uniform(0.5, 3.0);
      const double threshold = rng.uniform(-5.0, 30.0);
      const std::size_t k_begin = seed % n;
      std::vector<double> tc(n);
      for (std::size_t k = 0; k < n; ++k) {
        tc[k] = dist(p.xs[k], p.ys[k], p.xs[k + 1], p.ys[k + 1]) / speed;
      }
      std::size_t want = simd::kNpos;
      for (std::size_t k = k_begin; k < n; ++k) {
        const double da = dist(p.xs[k], p.ys[k], ix, iy);
        const double db = dist(ex, ey, p.xs[k + 1], p.ys[k + 1]);
        const double cost = (da / speed + db / speed) - tc[k];
        if (cost < threshold) {
          want = k;
          break;
        }
      }
      for (simd::Backend b : supported_backends()) {
        BackendGuard guard(b);
        EXPECT_EQ(want,
                  simd::or_opt_scan(p.xs.data(), p.ys.data(), tc.data(),
                                    k_begin, n, ix, iy, ex, ey, speed,
                                    threshold))
            << "n=" << n << " seed=" << seed
            << " backend=" << static_cast<int>(b);
      }
    }
  }
}

TEST(Simd, SelectWithinMatchesScalarFilter) {
  for (std::size_t n : kLengths) {
    const Soa p = random_points(n, 1100 + n);
    std::vector<std::uint32_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<std::uint32_t>(7 * i + 3);
    }
    const double cx = 50.0, cy = 50.0, r2 = 30.0 * 30.0;
    std::vector<std::uint32_t> want;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = p.xs[i] - cx;
      const double dy = p.ys[i] - cy;
      if (dx * dx + dy * dy <= r2) want.push_back(ids[i]);
    }
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      std::vector<std::uint32_t> out(n + 1, 0xdeadbeef);
      const std::size_t kept = simd::select_within(
          p.xs.data(), p.ys.data(), n, cx, cy, r2, ids.data(), out.data());
      ASSERT_EQ(want.size(), kept)
          << "n=" << n << " backend=" << static_cast<int>(b);
      for (std::size_t i = 0; i < kept; ++i) EXPECT_EQ(want[i], out[i]);
    }
  }
}

/// Random lazy-drain population exercising every kernel branch: healthy
/// sensors, zero-draw sensors, already-below-threshold sensors, and dead
/// (level 0, finite dead_since) sensors, with staggered as_of times.
struct DrainSoa {
  std::vector<double> level, as_of, dead_since, draw;
};

DrainSoa random_drain(std::size_t n, std::uint64_t seed, double threshold) {
  Rng rng(seed);
  DrainSoa s;
  for (std::size_t i = 0; i < n; ++i) {
    const double roll = rng.uniform(0.0, 1.0);
    double level = rng.uniform(threshold * 1.01, 10800.0);
    double draw = rng.uniform(0.01, 0.2);
    double dead_since = kInf;
    if (roll < 0.15) {
      level = rng.uniform(0.0, threshold * 0.99);  // already below
    } else if (roll < 0.25) {
      draw = roll < 0.2 ? 0.0 : -0.05;  // no (or negative) draw
    } else if (roll < 0.35) {
      level = 0.0;  // long dead
      dead_since = rng.uniform(0.0, 5000.0);
    }
    s.level.push_back(level);
    s.as_of.push_back(rng.uniform(0.0, 20000.0));
    s.dead_since.push_back(dead_since);
    s.draw.push_back(draw);
  }
  return s;
}

TEST(Simd, CrossingMinMatchesScalarOnAllBackends) {
  const double threshold = 2160.0;
  const double eps = 1e-6;
  for (std::size_t n : kLengths) {
    const DrainSoa s = random_drain(n, 1200 + n, threshold);
    double want = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      double c;
      if (s.level[i] < threshold) {
        c = s.as_of[i];
      } else if (s.draw[i] <= 0.0) {
        c = kInf;
      } else {
        c = s.as_of[i] + (s.level[i] - threshold) / s.draw[i] + eps;
      }
      if (c < want) want = c;
    }
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      EXPECT_EQ(want, simd::crossing_min(s.level.data(), s.as_of.data(),
                                         s.draw.data(), n, threshold, eps))
          << "n=" << n << " backend=" << static_cast<int>(b);
    }
  }
}

TEST(Simd, AdvanceSelectBelowMatchesScalarOnAllBackends) {
  const double threshold = 2160.0;
  for (std::size_t n : kLengths) {
    for (double t : {0.0, 10000.0, 60000.0, 4.0e6}) {
      const DrainSoa base = random_drain(n, 1300 + n, threshold);
      std::vector<std::uint32_t> ids(n);
      for (std::size_t i = 0; i < n; ++i) {
        ids[i] = static_cast<std::uint32_t>(3 * i + 1);
      }
      // Scalar reference on a copy, matching the documented semantics.
      DrainSoa want = base;
      std::vector<std::uint32_t> want_out;
      for (std::size_t i = 0; i < n; ++i) {
        if (t > want.as_of[i]) {
          const double drained = want.draw[i] * (t - want.as_of[i]);
          if (drained >= want.level[i] && want.draw[i] > 0.0) {
            if (want.dead_since[i] == kInf) {
              want.dead_since[i] =
                  want.as_of[i] + want.level[i] / want.draw[i];
            }
            want.level[i] = 0.0;
          } else {
            want.level[i] -= drained;
          }
          want.as_of[i] = t;
        }
        if (want.level[i] < threshold) want_out.push_back(ids[i]);
      }
      for (simd::Backend b : supported_backends()) {
        BackendGuard guard(b);
        DrainSoa got = base;
        std::vector<std::uint32_t> out(n + 1, 0xdeadbeef);
        const std::size_t kept = simd::advance_select_below(
            got.level.data(), got.as_of.data(), got.dead_since.data(),
            got.draw.data(), n, t, threshold, ids.data(), out.data());
        ASSERT_EQ(want_out.size(), kept)
            << "n=" << n << " t=" << t << " backend=" << static_cast<int>(b);
        for (std::size_t i = 0; i < kept; ++i) EXPECT_EQ(want_out[i], out[i]);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(want.level[i], got.level[i]) << "i=" << i;
          EXPECT_EQ(want.as_of[i], got.as_of[i]) << "i=" << i;
          EXPECT_EQ(want.dead_since[i], got.dead_since[i]) << "i=" << i;
        }
      }
    }
  }
}

TEST(Simd, ApproPlanIsByteIdenticalAcrossBackends) {
  // End-to-end regression of the bitwise-identity contract: the full Appro
  // pipeline (grid queries, MIS, blossom, Christofides, 2-opt/Or-opt,
  // min-max split) must produce the same tours and the same schedule bits
  // no matter which backend served the kernels.
  Rng rng(42);
  std::vector<geom::Point> pts;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < 250; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  const model::ChargingProblem problem(std::move(pts), std::move(deficits),
                                       {50.0, 50.0}, 2.7, 1.0, 2);
  core::ApproScheduler appro;

  sched::ChargingPlan scalar_plan;
  double scalar_delay = 0.0;
  {
    BackendGuard guard(simd::Backend::kScalar);
    scalar_plan = appro.plan(problem);
    scalar_delay = sched::execute_plan(problem, scalar_plan).longest_delay();
  }
  for (simd::Backend b : supported_backends()) {
    BackendGuard guard(b);
    const sched::ChargingPlan plan = appro.plan(problem);
    EXPECT_EQ(scalar_plan.tours, plan.tours)
        << "backend=" << static_cast<int>(b);
    const double delay = sched::execute_plan(problem, plan).longest_delay();
    EXPECT_EQ(scalar_delay, delay) << "backend=" << static_cast<int>(b);
  }
}

// ---------- blossom dual / pricing kernels ----------

struct BlossomArrays {
  std::vector<std::int64_t> lab, val;
  std::vector<std::int32_t> state, slack, st, s;
};

BlossomArrays random_blossom_arrays(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BlossomArrays a;
  for (std::size_t i = 0; i < n; ++i) {
    // Mix of small and near-2^61 magnitudes, as the solver produces.
    const std::int64_t big = std::int64_t{1} << 61;
    a.lab.push_back(static_cast<std::int64_t>(rng.below(1000)) *
                        (rng.below(2) ? 1 : -1) +
                    (rng.below(3) == 0 ? big : 0));
    a.val.push_back(static_cast<std::int64_t>(rng.below(1000)) +
                    (rng.below(4) == 0 ? big : 0));
    a.state.push_back(static_cast<std::int32_t>(rng.below(3)) - 1);
    a.slack.push_back(rng.below(3) == 0 ? 0
                                        : static_cast<std::int32_t>(
                                              1 + rng.below(n + 1)));
    a.st.push_back(rng.below(2) ? static_cast<std::int32_t>(i)
                                : static_cast<std::int32_t>(rng.below(n + 1)));
    a.s.push_back(static_cast<std::int32_t>(rng.below(3)) - 1);
  }
  return a;
}

TEST(Simd, I64MinWhereMatchesScalarOnAllBackends) {
  for (std::size_t n : kLengths) {
    const BlossomArrays a = random_blossom_arrays(n, 900 + n);
    for (std::size_t lo : {std::size_t{0}, std::size_t{1}}) {
      if (lo > n) continue;
      for (std::int32_t want : {-1, 0, 1}) {
        std::int64_t expected = std::numeric_limits<std::int64_t>::max();
        for (std::size_t i = lo; i < n; ++i) {
          if (a.state[i] == want) expected = std::min(expected, a.lab[i]);
        }
        for (simd::Backend b : supported_backends()) {
          BackendGuard guard(b);
          EXPECT_EQ(expected, simd::i64_min_where(a.lab.data(), a.state.data(),
                                                  want, lo, n))
              << "n=" << n << " lo=" << lo << " want=" << want
              << " backend=" << static_cast<int>(b);
        }
      }
    }
  }
}

TEST(Simd, I64DualApplyMatchesScalarOnAllBackends) {
  for (std::size_t n : kLengths) {
    const BlossomArrays a = random_blossom_arrays(n, 1300 + n);
    const std::int64_t d = 12345;
    std::vector<std::int64_t> expected = a.lab;
    for (std::size_t i = 1; i < n; ++i) {
      if (a.state[i] == 0) {
        expected[i] -= d;
      } else if (a.state[i] == 1) {
        expected[i] += d;
      }
    }
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      std::vector<std::int64_t> lab = a.lab;
      if (n >= 1) simd::i64_dual_apply(lab.data(), a.state.data(), 1, n, d);
      EXPECT_EQ(expected, lab) << "n=" << n
                               << " backend=" << static_cast<int>(b);
    }
  }
}

TEST(Simd, I64SlackBoundMatchesScalarOnAllBackends) {
  for (std::size_t n : kLengths) {
    const BlossomArrays a = random_blossom_arrays(n, 1700 + n);
    std::int64_t expected = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (a.st[i] != static_cast<std::int32_t>(i) || a.slack[i] == 0) continue;
      if (a.s[i] == -1) {
        expected = std::min(expected, a.val[i]);
      } else if (a.s[i] == 0) {
        expected = std::min(expected, a.val[i] >> 1);
      }
    }
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      EXPECT_EQ(expected,
                simd::i64_slack_bound(a.val.data(), a.slack.data(),
                                      a.st.data(), a.s.data(), 0, n))
          << "n=" << n << " backend=" << static_cast<int>(b);
    }
  }
}

TEST(Simd, I64SlackShiftMatchesScalarOnAllBackends) {
  for (std::size_t n : kLengths) {
    const BlossomArrays a = random_blossom_arrays(n, 2100 + n);
    const std::int64_t d = 777;
    std::vector<std::int64_t> expected = a.val;
    for (std::size_t i = 0; i < n; ++i) {
      if (a.st[i] != static_cast<std::int32_t>(i) || a.slack[i] == 0) continue;
      if (a.s[i] == -1) {
        expected[i] -= d;
      } else if (a.s[i] == 0) {
        expected[i] -= 2 * d;
      }
    }
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      std::vector<std::int64_t> val = a.val;
      simd::i64_slack_shift(val.data(), a.slack.data(), a.st.data(),
                            a.s.data(), 0, n, d);
      EXPECT_EQ(expected, val) << "n=" << n
                               << " backend=" << static_cast<int>(b);
    }
  }
}

TEST(Simd, PriceScanMatchesScalarOnAllBackends) {
  for (std::size_t n : kLengths) {
    const Soa p = random_points(n, 2500 + n);
    Rng rng(2600 + n);
    std::vector<double> adj(n);
    std::vector<std::uint32_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) {
      adj[i] = rng.uniform(0.0, 80.0);
      ids[i] = static_cast<std::uint32_t>(1000 + i);
    }
    const double px = 48.0, py = 52.0, bound = 90.0;
    std::vector<std::uint32_t> expected;
    for (std::size_t i = 0; i < n; ++i) {
      if (dist(px, py, p.xs[i], p.ys[i]) < bound - adj[i]) {
        expected.push_back(ids[i]);
      }
    }
    for (simd::Backend b : supported_backends()) {
      BackendGuard guard(b);
      std::vector<std::uint32_t> out(n + 1, 0xdeadbeef);
      const std::size_t count =
          simd::price_scan(p.xs.data(), p.ys.data(), n, px, py, bound,
                           adj.data(), ids.data(), out.data());
      ASSERT_EQ(expected.size(), count)
          << "n=" << n << " backend=" << static_cast<int>(b);
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(expected[i], out[i])
            << "n=" << n << " i=" << i << " backend=" << static_cast<int>(b);
      }
    }
  }
}

}  // namespace
}  // namespace mcharge
