// Unit and property tests for the util module (rng, stats, table, cli).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace mcharge {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(99);
  double sum = 0.0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.between(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(17);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

TEST(Rng, SplitMix64KnownDistinct) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

// ---------- RunningStats ----------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(21);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// ---------- SampleSet ----------

TEST(SampleSet, QuantilesOfKnownData) {
  SampleSet s;
  for (int i = 1; i <= 5; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SampleSet, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

// ---------- Table ----------

TEST(Table, CsvRoundTrip) {
  Table t({"n", "algo", "delay"});
  t.start_row();
  t.add(static_cast<long long>(200));
  t.add(std::string("Appro"));
  t.add(12.345, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "n,algo,delay\n200,Appro,12.35\n");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"a", "long_header"});
  t.start_row();
  t.add(std::string("x"));
  t.add(std::string("y"));
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowsCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.start_row();
  t.add(std::string("1"));
  t.start_row();
  t.add(std::string("2"));
  EXPECT_EQ(t.rows(), 2u);
}

// ---------- CliFlags ----------

TEST(CliFlags, ParsesKeyValueAndBare) {
  const char* argv[] = {"prog", "--n=500", "--verbose", "positional",
                        "--rate=2.5"};
  CliFlags flags(5, argv);
  EXPECT_EQ(flags.get_int("n", 0), 500);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  EXPECT_FALSE(flags.has("positional"));
}

TEST(CliFlags, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliFlags flags(1, argv);
  EXPECT_EQ(flags.get_int("n", 7), 7);
  EXPECT_EQ(flags.get("name", "x"), "x");
  EXPECT_FALSE(flags.get_bool("flag", false));
  EXPECT_TRUE(flags.get_bool("flag", true));
}

TEST(CliFlags, ExplicitBoolValues) {
  const char* argv[] = {"prog", "--a=false", "--b=1", "--c=yes"};
  CliFlags flags(4, argv);
  EXPECT_FALSE(flags.get_bool("a", true));
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_TRUE(flags.get_bool("c", false));
}

}  // namespace
}  // namespace mcharge
