// Disaster-response scenario: sensors air-dropped around incident hotspots
// (clustered field), high data rates, comparing algorithm Appro against the
// strongest one-to-one baseline (K-minMax) on a single urgent round.
//
// Demonstrates: clustered layouts, building a ChargingProblem directly from
// an instance snapshot, per-algorithm schedule inspection.
//
//   ./build/examples/disaster_response [--sensors=500] [--chargers=3]
#include <cstdio>

#include "baselines/kminmax.h"
#include "core/appro.h"
#include "energy/consumption.h"
#include "model/charging_problem.h"
#include "model/network.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 500));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 3));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 42)));

  model::NetworkConfig config;
  config.rate_max_bps = 50e3;  // video-capable sensors stream heavily
  config.num_chargers = k;
  const auto instance =
      model::make_instance(config, n, rng, model::FieldLayout::kClustered);

  // A storm of requests: every sensor is between 5% and 20% residual.
  std::vector<geom::Point> positions = instance.positions;
  std::vector<double> deficits;
  std::vector<double> lifetimes;
  for (std::size_t v = 0; v < n; ++v) {
    const double residual_fraction = rng.uniform(0.05, 0.20);
    const double residual_j = residual_fraction * config.battery_capacity_j;
    deficits.push_back(
        config.charge_seconds(config.battery_capacity_j - residual_j));
    lifetimes.push_back(residual_j / instance.consumption_w[v]);
  }
  model::ChargingProblem problem(std::move(positions), std::move(deficits),
                                 config.depot, config.charging_radius,
                                 config.mcv_speed, k);
  problem.set_residual_lifetimes(std::move(lifetimes));
  problem.set_charging_rate(config.charging_rate_w);

  std::printf("Disaster response: %zu clustered sensors, %zu chargers, "
              "request storm\n\n",
              n, k);

  core::ApproScheduler appro;
  baselines::KMinMaxScheduler kminmax;
  for (const sched::Scheduler* scheduler :
       {static_cast<const sched::Scheduler*>(&appro),
        static_cast<const sched::Scheduler*>(&kminmax)}) {
    const auto plan = scheduler->plan(problem);
    const auto schedule = sched::execute_plan(problem, plan);
    const auto violations = sched::verify_schedule(problem, schedule);
    std::printf("%-9s stops %4zu  longest delay %7.2f h  wait %6.1f s  "
                "violations %zu\n",
                scheduler->name().c_str(), schedule.num_stops(),
                schedule.longest_delay() / 3600.0, schedule.total_wait(),
                violations.size());
    if (!violations.empty()) return 1;
  }
  std::printf("\nThe multi-node scheme needs far fewer stops in clustered "
              "fields, which is exactly where simultaneous charging pays.\n");
  return 0;
}
