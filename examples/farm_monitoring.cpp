// Precision-agriculture scenario: a planned (jittered-grid) deployment of
// soil sensors monitored for a season, comparing charger fleet sizes.
//
// Demonstrates: instance generation with a grid layout, the simulator, and
// the K sweep a deployment planner would run to size the charger fleet.
//
//   ./build/examples/farm_monitoring [--sensors=400] [--days=120] [--seed=7]
#include <cstdio>

#include "core/appro.h"
#include "model/network.h"
#include "sim/simulation.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 400));
  const double days = flags.get_double("days", 120.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  std::printf("Farm monitoring: %zu soil sensors on a jittered grid, "
              "%.0f-day season\n\n",
              n, days);

  model::NetworkConfig config;
  config.rate_max_bps = 20e3;  // soil probes report slowly
  sim::SimConfig sim_config;
  sim_config.monitoring_period_s = days * 86400.0;

  Table table({"chargers", "rounds", "avg_batch", "longest_tour_h",
               "dead_min_per_sensor", "fleet_busy_%"});
  for (std::size_t k = 1; k <= 4; ++k) {
    config.num_chargers = k;
    Rng rng(seed);  // same field for every K
    const auto instance = model::make_instance(config, n, rng,
                                               model::FieldLayout::kGrid);
    core::ApproScheduler appro;
    const auto result = sim::simulate(instance, appro, sim_config);
    table.start_row();
    table.add(static_cast<long long>(k));
    table.add(static_cast<long long>(result.rounds));
    table.add(result.round_batch_size.mean(), 1);
    table.add(result.mean_longest_delay_hours(), 2);
    table.add(result.mean_dead_minutes_per_sensor, 1);
    table.add(result.busy_fraction * 100.0, 1);
    if (result.verify_violations != 0) {
      std::printf("UNEXPECTED: %zu schedule violations at K=%zu\n",
                  result.verify_violations, k);
      return 1;
    }
  }
  table.print(std::cout);
  std::printf("\nReading: pick the smallest K whose dead time and busy "
              "fraction are acceptable for the deployment.\n");
  return 0;
}
