// simulate_campaign — full-control CLI around the simulator. Runs one
// monitoring campaign of a WRSN under a chosen algorithm and reports every
// metric the library tracks; optionally persists the instance, the
// per-round log, and an SVG of the field.
//
//   ./build/examples/simulate_campaign --algo=appro --n=1000 --chargers=2
//             [--layout=uniform|clustered|grid] [--routing=minhop|minenergy]
//       [--months=12] [--epoch_h=0] [--target=1.0] [--threshold=0.2]
//       [--bmax_kbps=50] [--seed=1]
//       [--save_instance=inst.csv] [--load_instance=inst.csv]
//       [--rounds_csv=rounds.csv] [--svg=field.svg]
#include <cstdio>
#include <fstream>
#include <memory>

#include "baselines/aa.h"
#include "baselines/greedy_cover.h"
#include "baselines/kedf.h"
#include "baselines/kminmax.h"
#include "baselines/netwrap.h"
#include "core/appro.h"
#include "io/instance_io.h"
#include "sim/simulation.h"
#include "util/cli.h"
#include "util/rng.h"
#include "viz/render.h"

namespace {

using namespace mcharge;

sched::SchedulerPtr make_scheduler(const std::string& name) {
  if (name == "appro") return std::make_unique<core::ApproScheduler>();
  if (name == "kminmax") return std::make_unique<baselines::KMinMaxScheduler>();
  if (name == "kedf") return std::make_unique<baselines::KEdfScheduler>();
  if (name == "netwrap") return std::make_unique<baselines::NetwrapScheduler>();
  if (name == "aa") return std::make_unique<baselines::AaScheduler>();
  if (name == "greedycover") {
    return std::make_unique<baselines::GreedyCoverScheduler>();
  }
  return nullptr;
}

model::FieldLayout parse_layout(const std::string& name) {
  if (name == "clustered") return model::FieldLayout::kClustered;
  if (name == "grid") return model::FieldLayout::kGrid;
  return model::FieldLayout::kUniform;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::string algo_name = flags.get("algo", "appro");
  const auto scheduler = make_scheduler(algo_name);
  if (!scheduler) {
    std::fprintf(
        stderr,
        "unknown --algo=%s (appro|kminmax|kedf|netwrap|aa|greedycover)\n",
        algo_name.c_str());
    return 2;
  }

  model::WrsnInstance instance;
  if (flags.has("load_instance")) {
    std::string error;
    const auto loaded =
        io::read_instance_csv(flags.get("load_instance", ""), &error);
    if (!loaded) {
      std::fprintf(stderr, "failed to load instance: %s\n", error.c_str());
      return 2;
    }
    instance = *loaded;
  } else {
    model::NetworkConfig config;
    config.num_chargers =
        static_cast<std::size_t>(flags.get_int("chargers", 2));
    config.request_threshold = flags.get_double("threshold", 0.2);
    config.rate_max_bps = flags.get_double("bmax_kbps", 50.0) * 1e3;
    if (flags.get("routing", "minhop") == "minenergy") {
      config.routing = energy::RoutingPolicy::kMinEnergy;
    }
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
    instance = model::make_instance(
        config, static_cast<std::size_t>(flags.get_int("n", 1000)), rng,
        parse_layout(flags.get("layout", "uniform")));
  }
  if (flags.has("save_instance")) {
    if (!io::write_instance_csv(flags.get("save_instance", ""), instance)) {
      std::fprintf(stderr, "failed to save instance\n");
      return 2;
    }
  }

  sim::SimConfig sim_config;
  sim_config.monitoring_period_s =
      flags.get_double("months", 12.0) * 30.0 * 86400.0;
  sim_config.dispatch_epoch_s = flags.get_double("epoch_h", 0.0) * 3600.0;
  sim_config.charge_target_fraction = flags.get_double("target", 1.0);
  sim_config.record_rounds =
      flags.has("rounds_csv") || flags.get_bool("verbose", false);

  const auto result = sim::simulate(instance, *scheduler, sim_config);

  std::printf("campaign: algo=%s n=%zu K=%zu months=%.1f epoch_h=%.1f "
              "target=%.2f\n",
              scheduler->name().c_str(), instance.num_sensors(),
              instance.config.num_chargers,
              sim_config.monitoring_period_s / (30.0 * 86400.0),
              sim_config.dispatch_epoch_s / 3600.0,
              sim_config.charge_target_fraction);
  std::printf("  rounds                   %zu\n", result.rounds);
  std::printf("  charge events            %zu\n", result.sensors_charged);
  std::printf("  mean batch size          %.1f (max %.0f)\n",
              result.round_batch_size.mean(), result.round_batch_size.max());
  std::printf("  mean longest tour        %.2f h (max %.2f h)\n",
              result.mean_longest_delay_hours(),
              result.round_longest_delay_s.max() / 3600.0);
  std::printf("  dead time per sensor     %.1f min mean, %.1f min worst\n",
              result.mean_dead_minutes_per_sensor,
              result.max_dead_minutes_per_sensor());
  std::printf("  request latency          %.2f h mean, %.2f h worst\n",
              result.request_latency_s.mean() / 3600.0,
              result.request_latency_s.max() / 3600.0);
  std::printf("  fleet busy fraction      %.3f\n", result.busy_fraction);
  std::printf("  conflict waiting         %.1f s total\n",
              result.total_conflict_wait_s);
  std::printf("  verifier violations      %zu\n", result.verify_violations);
  if (result.total_dead_seconds > 0.0) {
    std::printf("  dead minutes by 30-day window:");
    for (double s : result.dead_seconds_by_month) {
      std::printf(" %.0f", s / 60.0);
    }
    std::printf("\n");
  }

  if (flags.has("rounds_csv")) {
    std::ofstream out(flags.get("rounds_csv", ""));
    out << "dispatch_s,batch,charged,longest_delay_s,wait_s\n";
    for (const auto& r : result.rounds_log) {
      out << r.dispatch_time << ',' << r.batch << ',' << r.charged << ','
          << r.longest_delay_s << ',' << r.wait_s << '\n';
    }
    std::printf("  rounds log               %s\n",
                flags.get("rounds_csv", "").c_str());
  }
  if (flags.has("svg")) {
    std::ofstream out(flags.get("svg", ""));
    out << viz::render_instance_svg(instance);
    std::printf("  field SVG                %s\n", flags.get("svg", "").c_str());
  }
  return result.verify_violations == 0 ? 0 : 1;
}
