// Live operations: plan a round with Appro, interrupt it mid-flight,
// reconstruct the fleet state, replan the remainder from the MCVs' current
// positions, and export SVG snapshots of both plans.
//
//   ./build/examples/live_operations [--sensors=250] [--chargers=3]
//       [--interrupt=0.4] [--svg_prefix=/tmp/ops]
#include <cstdio>
#include <fstream>

#include "core/appro.h"
#include "core/replan.h"
#include "io/schedule_io.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/cli.h"
#include "util/rng.h"
#include "viz/render.h"
#include "viz/svg.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 250));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 3));
  const double interrupt = flags.get_double("interrupt", 0.4);
  const std::string svg_prefix = flags.get("svg_prefix", "");
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 17)));

  // A charging round.
  std::vector<geom::Point> positions;
  std::vector<double> deficits;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    deficits.push_back(rng.uniform(3456.0, 5400.0));
  }
  model::ChargingProblem problem(std::move(positions), std::move(deficits),
                                 {50.0, 50.0}, 2.7, 1.0, k);

  core::ApproScheduler appro;
  const auto schedule = sched::execute_plan(problem, appro.plan(problem));
  std::printf("initial plan: %zu stops, longest delay %.2f h\n",
              schedule.num_stops(), schedule.longest_delay() / 3600.0);

  // Interrupt mid-round.
  const double t = interrupt * schedule.longest_delay();
  const auto state = core::fleet_state_at(problem, schedule, t);
  std::printf("interrupt at %.2f h: %zu/%zu sensors charged, fleet at:\n",
              t / 3600.0, state.num_charged(), n);
  for (std::size_t j = 0; j < state.mcv_positions.size(); ++j) {
    std::printf("  MCV %zu at (%.1f, %.1f)\n", j, state.mcv_positions[j].x,
                state.mcv_positions[j].y);
  }

  // Replan the remainder from where the fleet stands.
  const auto replan = core::replan_from(problem, state);
  const auto new_schedule =
      sched::execute_plan(replan.subproblem, replan.plan);
  const auto violations =
      sched::verify_schedule(replan.subproblem, new_schedule);
  std::printf("replanned %zu remaining sensors: %zu stops, finish in "
              "%.2f h, %zu violations\n",
              replan.subproblem.size(), new_schedule.num_stops(),
              new_schedule.longest_delay() / 3600.0, violations.size());
  std::printf("%s", io::render_timeline(replan.subproblem, new_schedule, 80)
                        .c_str());

  if (!svg_prefix.empty()) {
    const auto save = [](const std::string& path, const std::string& doc) {
      std::ofstream out(path);
      out << doc;
      std::printf("wrote %s\n", path.c_str());
      return static_cast<bool>(out);
    };
    save(svg_prefix + "_initial.svg",
         viz::render_schedule_svg(problem, schedule));
    save(svg_prefix + "_replanned.svg",
         viz::render_schedule_svg(replan.subproblem, new_schedule));
  }
  return violations.empty() && new_schedule.all_charged() ? 0 : 1;
}
