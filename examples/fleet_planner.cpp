// Fleet planner CLI: reads a charging round from a CSV (x,y,deficit_j and
// optionally residual lifetime per line), runs a chosen algorithm, and
// prints the tour for each MCV in dispatch-ready order. Without --input it
// generates a demo round.
//
//   ./build/examples/fleet_planner --input=round.csv --algo=appro
//             --chargers=2 [--gamma=2.7] [--speed=1] [--depot_x=50] [--depot_y=50]
//       [--gantt] [--schedule_csv=out.csv]
#include <cstdio>
#include <string>

#include "baselines/aa.h"
#include "baselines/greedy_cover.h"
#include "baselines/kedf.h"
#include "baselines/kminmax.h"
#include "baselines/netwrap.h"
#include "core/appro.h"
#include "io/instance_io.h"
#include "io/schedule_io.h"
#include "model/charging_problem.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace mcharge;

sched::SchedulerPtr make_scheduler(const std::string& name) {
  if (name == "appro") return std::make_unique<core::ApproScheduler>();
  if (name == "kminmax") return std::make_unique<baselines::KMinMaxScheduler>();
  if (name == "kedf") return std::make_unique<baselines::KEdfScheduler>();
  if (name == "netwrap") return std::make_unique<baselines::NetwrapScheduler>();
  if (name == "aa") return std::make_unique<baselines::AaScheduler>();
  if (name == "greedycover") {
    return std::make_unique<baselines::GreedyCoverScheduler>();
  }
  return nullptr;
}

io::RoundData demo_round(std::uint64_t seed) {
  Rng rng(seed);
  io::RoundData round;
  for (int i = 0; i < 200; ++i) {
    round.positions.push_back(
        {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    round.deficit_joules.push_back(rng.uniform(0.7, 1.0) * 10.8e3);
  }
  return round;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::string algo_name = flags.get("algo", "appro");
  const auto scheduler = make_scheduler(algo_name);
  if (!scheduler) {
    std::fprintf(
        stderr,
        "unknown --algo=%s (appro|kminmax|kedf|netwrap|aa|greedycover)\n",
        algo_name.c_str());
    return 2;
  }

  io::RoundData round;
  if (flags.has("input")) {
    std::string error;
    const auto loaded = io::read_round_csv(flags.get("input", ""), &error);
    if (!loaded) {
      std::fprintf(stderr, "failed to read round CSV: %s\n", error.c_str());
      return 2;
    }
    round = *loaded;
  } else {
    std::printf("# no --input given; generating a demo round\n");
    round = demo_round(static_cast<std::uint64_t>(flags.get_int("seed", 9)));
  }

  const double eta = flags.get_double("rate_w", 2.0);
  model::ChargingProblem problem = round.to_problem(
      {flags.get_double("depot_x", 50.0), flags.get_double("depot_y", 50.0)},
      flags.get_double("gamma", 2.7), flags.get_double("speed", 1.0),
      static_cast<std::size_t>(flags.get_int("chargers", 2)), eta);

  const auto plan = scheduler->plan(problem);
  const auto schedule = sched::execute_plan(problem, plan);
  sched::VerifyOptions opts;
  opts.require_full_coverage = algo_name != "aa";
  const auto violations = sched::verify_schedule(problem, schedule, opts);

  std::printf("# algorithm: %s   sensors: %zu   chargers: %zu\n",
              scheduler->name().c_str(), problem.size(),
              problem.num_chargers());
  std::printf("# longest delay: %.2f h   conflict wait: %.1f s   "
              "violations: %zu\n",
              schedule.longest_delay() / 3600.0, schedule.total_wait(),
              violations.size());
  const auto energy = schedule.energy_use(problem);
  for (std::size_t k = 0; k < schedule.mcvs.size(); ++k) {
    std::printf("mcv %zu (return %.1f s, delivers %.1f kJ, drives %.1f kJ):\n",
                k, schedule.mcvs[k].return_time,
                energy[k].delivered_j / 1e3, energy[k].locomotion_j / 1e3);
    for (const auto& s : schedule.mcvs[k].sojourns) {
      std::printf(
          "  stop at sensor %4u (%.1f, %.1f)  arrive %8.1f  charge "
          "[%8.1f, %8.1f]  charges %zu sensor(s)\n",
          s.location, problem.position(s.location).x,
          problem.position(s.location).y, s.arrival, s.start, s.finish,
          s.charged.size());
    }
  }
  if (flags.get_bool("gantt", false)) {
    std::printf("\n%s", io::render_timeline(problem, schedule, 100).c_str());
  }
  if (flags.has("schedule_csv")) {
    const std::string out = flags.get("schedule_csv", "");
    if (io::write_schedule_csv(out, problem, schedule)) {
      std::printf("# schedule written to %s\n", out.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", out.c_str());
      return 2;
    }
  }
  for (const auto& v : violations) std::printf("VIOLATION: %s\n", v.c_str());
  return violations.empty() ? 0 : 1;
}
