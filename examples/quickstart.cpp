// Quickstart: build a charging round by hand, run algorithm Appro, execute
// the plan, and print the resulting tours and delays.
//
//   ./build/examples/quickstart [--sensors=300] [--chargers=2] [--seed=1]
#include <cstdio>

#include "core/appro.h"
#include "model/charging_problem.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace mcharge;
  const CliFlags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("sensors", 300));
  const auto k = static_cast<std::size_t>(flags.get_int("chargers", 2));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));

  // --- 1. A charging round: n sensors that requested charging, each with a
  // deficit, in a 100 x 100 m field with the depot at the center. ---
  std::vector<geom::Point> positions;
  std::vector<double> deficits_seconds;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    // 64%..100% of a full battery at the paper's 2 W charging rate.
    deficits_seconds.push_back(rng.uniform(3456.0, 5400.0));
  }
  model::ChargingProblem problem(std::move(positions),
                                 std::move(deficits_seconds), {50.0, 50.0},
                                 /*gamma=*/2.7, /*speed=*/1.0, k);

  // --- 2. Run the paper's algorithm. ---
  core::ApproScheduler appro;
  core::ApproStats stats;
  const sched::ChargingPlan plan = appro.plan_with_stats(problem, &stats);

  // --- 3. Execute and certify the schedule. ---
  const sched::ChargingSchedule schedule = sched::execute_plan(problem, plan);
  const auto violations = sched::verify_schedule(problem, schedule);

  std::printf("mcharge quickstart\n");
  std::printf("  sensors to charge      %zu\n", n);
  std::printf("  mobile chargers (K)    %zu\n", k);
  std::printf("  |S_I| (MIS of G_c)     %zu\n", stats.s_i);
  std::printf("  |V'_H| (MIS of H)      %zu\n", stats.v_h);
  std::printf("  Delta_H                %zu (Lemma 2 bound: 26)\n",
              stats.h_max_degree);
  std::printf("  insertions case (i)    %zu\n", stats.inserted_case_one);
  std::printf("  insertions case (ii)   %zu\n", stats.inserted_case_two);
  std::printf("  dropped (covered)      %zu\n", stats.dropped_covered);
  std::printf("  total sojourn stops    %zu\n", plan.total_stops());
  for (std::size_t i = 0; i < schedule.mcvs.size(); ++i) {
    std::printf("  MCV %zu: %3zu stops, tour delay %8.1f s (%.2f h)\n", i,
                schedule.mcvs[i].sojourns.size(),
                schedule.mcvs[i].return_time,
                schedule.mcvs[i].return_time / 3600.0);
  }
  std::printf("  longest charge delay   %.2f h\n",
              schedule.longest_delay() / 3600.0);
  std::printf("  conflict waiting       %.1f s\n", schedule.total_wait());
  std::printf("  all sensors charged    %s\n",
              schedule.all_charged() ? "yes" : "NO");
  std::printf("  verifier violations    %zu\n", violations.size());
  for (const auto& v : violations) std::printf("    %s\n", v.c_str());
  return violations.empty() && schedule.all_charged() ? 0 : 1;
}
