// WRSN instance description and generation.
//
// A WrsnInstance is the static part of an experiment: sensor positions,
// per-sensor data rates, the derived steady-state power draw of every
// sensor, and the network-wide configuration (Section VI-A of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "energy/radio.h"
#include "energy/routing.h"
#include "geometry/point.h"
#include "util/rng.h"

namespace mcharge::model {

/// Network-wide parameters. Defaults reproduce the paper's evaluation
/// settings (Section VI-A).
struct NetworkConfig {
  double field_width = 100.0;        ///< m
  double field_height = 100.0;       ///< m
  geom::Point base_station{50.0, 50.0};
  geom::Point depot{50.0, 50.0};     ///< MCV home; co-located with BS here
  double battery_capacity_j = 10.8e3;  ///< C_v = 10.8 kJ
  double rate_min_bps = 1e3;         ///< b_min = 1 kbps
  double rate_max_bps = 50e3;        ///< b_max = 50 kbps
  double charging_radius = 2.7;      ///< gamma, m
  double charging_rate_w = 2.0;      ///< eta, W
  double mcv_speed = 1.0;            ///< s, m/s
  std::size_t num_chargers = 2;      ///< K
  double request_threshold = 0.20;   ///< request when residual < 20% C_v
  energy::RadioParams radio;         ///< consumption model parameters
  /// Routing policy used to derive relay loads (min-hop by default).
  energy::RoutingPolicy routing = energy::RoutingPolicy::kMinHop;

  /// Seconds to charge a battery deficit of `deficit_j` joules.
  double charge_seconds(double deficit_j) const {
    return deficit_j / charging_rate_w;
  }
};

/// A concrete sensor field with derived per-sensor consumption rates.
struct WrsnInstance {
  NetworkConfig config;
  std::vector<geom::Point> positions;
  std::vector<double> rate_bps;        ///< own data generation rate
  std::vector<double> consumption_w;   ///< steady-state draw (incl. relaying)

  std::size_t num_sensors() const { return positions.size(); }

  /// Time for sensor v to go from `fraction_from` to `fraction_to` of
  /// capacity under its steady-state draw. Infinite if it draws nothing.
  double depletion_seconds(std::uint32_t v, double fraction_from,
                           double fraction_to) const;
};

/// Field layout used by the generator.
enum class FieldLayout { kUniform, kClustered, kGrid };

/// Generates an instance with n sensors. Positions follow `layout`
/// (clustered: 5 hotspots with sigma = 8 m; grid: 10% jitter), data rates
/// are uniform in [rate_min_bps, rate_max_bps], and consumption is derived
/// from the routing tree toward the base station.
WrsnInstance make_instance(const NetworkConfig& config, std::size_t n,
                           Rng& rng,
                           FieldLayout layout = FieldLayout::kUniform);

}  // namespace mcharge::model
