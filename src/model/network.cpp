#include "model/network.h"

#include <limits>

#include "energy/consumption.h"
#include "geometry/field.h"
#include "util/assert.h"

namespace mcharge::model {

double WrsnInstance::depletion_seconds(std::uint32_t v, double fraction_from,
                                       double fraction_to) const {
  MCHARGE_ASSERT(v < num_sensors(), "sensor index out of range");
  MCHARGE_ASSERT(fraction_from >= fraction_to,
                 "depletion goes from higher to lower fraction");
  const double watts = consumption_w[v];
  if (watts <= 0.0) return std::numeric_limits<double>::infinity();
  return (fraction_from - fraction_to) * config.battery_capacity_j / watts;
}

WrsnInstance make_instance(const NetworkConfig& config, std::size_t n,
                           Rng& rng, FieldLayout layout) {
  MCHARGE_ASSERT(config.rate_min_bps <= config.rate_max_bps,
                 "rate_min must be <= rate_max");
  WrsnInstance instance;
  instance.config = config;
  switch (layout) {
    case FieldLayout::kUniform:
      instance.positions =
          geom::uniform_field(n, config.field_width, config.field_height, rng);
      break;
    case FieldLayout::kClustered:
      instance.positions = geom::clustered_field(
          n, config.field_width, config.field_height, 5, 8.0, rng);
      break;
    case FieldLayout::kGrid:
      instance.positions = geom::grid_field(n, config.field_width,
                                            config.field_height, 0.1, rng);
      break;
  }
  instance.rate_bps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    instance.rate_bps.push_back(
        rng.uniform(config.rate_min_bps, config.rate_max_bps));
  }
  instance.consumption_w = energy::consumption_watts(
      instance.positions, config.base_station, config.radio,
      instance.rate_bps, config.routing);
  return instance;
}

}  // namespace mcharge::model
