#include "model/charging_problem.h"

#include <algorithm>
#include <limits>

#include "util/assert.h"

namespace mcharge::model {

ChargingProblem::ChargingProblem(std::vector<geom::Point> positions,
                                 std::vector<double> charge_seconds,
                                 geom::Point depot, double gamma, double speed,
                                 std::size_t num_chargers)
    : positions_(std::move(positions)),
      charge_seconds_(std::move(charge_seconds)),
      depot_(depot),
      gamma_(gamma),
      speed_(speed),
      num_chargers_(num_chargers) {
  MCHARGE_ASSERT(charge_seconds_.size() == positions_.size(),
                 "one charging duration per sensor required");
  MCHARGE_ASSERT(gamma_ >= 0.0, "charging radius must be >= 0");
  MCHARGE_ASSERT(speed_ > 0.0, "MCV speed must be positive");
  MCHARGE_ASSERT(num_chargers_ >= 1, "at least one MCV required");
  for (double t : charge_seconds_) {
    MCHARGE_ASSERT(t >= 0.0, "charging durations must be >= 0");
  }

  coverage_.resize(positions_.size());
  tau_.resize(positions_.size());
  if (positions_.empty()) return;
  const double cell = gamma_ > 0.0 ? gamma_ : 1.0;
  geom::GridIndex index(positions_, cell);
  for (std::uint32_t v = 0; v < positions_.size(); ++v) {
    coverage_[v] = index.query_disk(positions_[v], gamma_);
    // query_disk includes v itself (distance 0); results come sorted.
    double worst = 0.0;
    for (std::uint32_t u : coverage_[v]) {
      worst = std::max(worst, charge_seconds_[u]);
    }
    tau_[v] = worst;
  }
}

double ChargingProblem::residual_lifetime(std::uint32_t v) const {
  MCHARGE_ASSERT(v < positions_.size(), "sensor index out of range");
  if (residual_lifetime_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return residual_lifetime_[v];
}

void ChargingProblem::set_residual_lifetimes(std::vector<double> seconds) {
  MCHARGE_ASSERT(seconds.size() == positions_.size(),
                 "one residual lifetime per sensor required");
  residual_lifetime_ = std::move(seconds);
}

void ChargingProblem::set_charging_rate(double watts) {
  MCHARGE_ASSERT(watts > 0.0, "charging rate must be positive");
  charging_rate_w_ = watts;
}

const std::vector<std::uint32_t>& ChargingProblem::coverage(
    std::uint32_t v) const {
  MCHARGE_ASSERT(v < coverage_.size(), "sensor index out of range");
  return coverage_[v];
}

double ChargingProblem::tau(std::uint32_t v) const {
  MCHARGE_ASSERT(v < tau_.size(), "sensor index out of range");
  return tau_[v];
}

bool ChargingProblem::overlapping(std::uint32_t u, std::uint32_t v) const {
  const auto& cu = coverage(u);
  const auto& cv = coverage(v);
  // Sorted-list intersection test.
  std::size_t i = 0, j = 0;
  while (i < cu.size() && j < cv.size()) {
    if (cu[i] == cv[j]) return true;
    if (cu[i] < cv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

double ChargingProblem::travel(std::uint32_t u, std::uint32_t v) const {
  return geom::distance(positions_[u], positions_[v]) / speed_;
}

double ChargingProblem::travel_depot(std::uint32_t v) const {
  return geom::distance(depot_, positions_[v]) / speed_;
}

}  // namespace mcharge::model
