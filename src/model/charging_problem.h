// The scheduler-facing view of one charging round.
//
// When the base station has identified the set V_s of lifetime-critical
// sensors, it freezes a ChargingProblem: the positions of those sensors,
// the charging duration t_v = (C_v - RE_v) / eta needed to fill each one
// (Eq. (1)), the depot, the charging radius gamma, the MCV speed, and K.
// Coverage sets N_c+(v) (Section III-B) are precomputed.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/grid_index.h"
#include "geometry/point.h"

namespace mcharge::model {

class ChargingProblem {
 public:
  /// An empty problem (no sensors, one MCV, zero radius). Useful as a
  /// placeholder to assign a real problem into.
  ChargingProblem() = default;

  /// `positions` and `charge_seconds` are parallel over the sensors of V_s.
  ChargingProblem(std::vector<geom::Point> positions,
                  std::vector<double> charge_seconds, geom::Point depot,
                  double gamma, double speed, std::size_t num_chargers);

  std::size_t size() const { return positions_.size(); }
  std::size_t num_chargers() const { return num_chargers_; }
  double gamma() const { return gamma_; }
  double speed() const { return speed_; }
  geom::Point depot() const { return depot_; }
  const std::vector<geom::Point>& positions() const { return positions_; }

  geom::Point position(std::uint32_t v) const { return positions_[v]; }
  /// t_v: seconds to fully charge sensor v (Eq. (1)).
  double charge_seconds(std::uint32_t v) const { return charge_seconds_[v]; }
  const std::vector<double>& charge_seconds() const { return charge_seconds_; }

  /// Seconds until sensor v's battery would hit zero under its current
  /// draw (its deadline). +infinity when not provided. Used by the
  /// deadline-driven baselines (K-EDF, NETWRAP, AA); algorithm Appro does
  /// not depend on it.
  double residual_lifetime(std::uint32_t v) const;
  /// Installs per-sensor deadlines (one per sensor; asserted).
  void set_residual_lifetimes(std::vector<double> seconds);

  /// The MCVs' wireless charging rate eta in watts (default 2 W, the
  /// paper's setting). Only used by energy-profit computations (AA);
  /// durations t_v are already rate-normalized.
  double charging_rate_w() const { return charging_rate_w_; }
  void set_charging_rate(double watts);

  /// N_c+(v): sensors within gamma of v's location, v included; sorted.
  const std::vector<std::uint32_t>& coverage(std::uint32_t v) const;

  /// tau(v) = max t_u over N_c+(v) (Eq. (2)): the worst-case sojourn time.
  double tau(std::uint32_t v) const;

  /// True iff an MCV at u and an MCV at v could charge a common sensor,
  /// i.e. N_c+(u) and N_c+(v) intersect (the H-graph edge predicate).
  bool overlapping(std::uint32_t u, std::uint32_t v) const;

  /// Travel time between sensor locations u and v.
  double travel(std::uint32_t u, std::uint32_t v) const;
  /// Travel time between the depot and location v.
  double travel_depot(std::uint32_t v) const;

 private:
  std::vector<geom::Point> positions_;
  std::vector<double> charge_seconds_;
  std::vector<double> residual_lifetime_;  ///< empty = all +infinity
  double charging_rate_w_ = 2.0;
  geom::Point depot_{0.0, 0.0};
  double gamma_ = 0.0;
  double speed_ = 1.0;
  std::size_t num_chargers_ = 1;
  std::vector<std::vector<std::uint32_t>> coverage_;  ///< N_c+ per sensor
  std::vector<double> tau_;                           ///< Eq. (2) per sensor
};

}  // namespace mcharge::model
