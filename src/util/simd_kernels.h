// Internal kernel table shared between the simd dispatch layer and the
// per-ISA translation units. Not part of the public API.
//
// The per-ISA TUs (simd_avx2.cpp, simd_avx512.cpp) are compiled with
// -mavx2 / -mavx512f and -ffp-contract=off. They must include ONLY this
// header and freestanding system headers: pulling repo headers with
// inline FP functions (e.g. geom::distance) into a TU built with wider
// ISA flags would let the linker pick an ISA-specialized weak definition
// for the whole binary, breaking both portability and the bitwise
// determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/simd.h"

#if !defined(MCHARGE_NO_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define MCHARGE_SIMD_X86 1
#else
#define MCHARGE_SIMD_X86 0
#endif

namespace mcharge::simd::detail {

struct KernelTable {
  void (*distance_row)(const double* xs, const double* ys, std::size_t n,
                       double px, double py, double* out);
  ArgMin (*argmin_masked)(const double* values, const unsigned char* skip,
                          std::size_t n);
  ArgMin (*argmin_distance_masked)(const double* xs, const double* ys,
                                   std::size_t n, double px, double py,
                                   const unsigned char* skip);
  double (*min_reduce)(const double* values, std::size_t n);
  double (*max_reduce)(const double* values, std::size_t n);
  std::size_t (*two_opt_scan)(const double* px, const double* py,
                              const double* tc, std::size_t j_begin,
                              std::size_t j_end, double ax, double ay,
                              double bx, double by, double speed, double base,
                              double min_gain);
  std::size_t (*or_opt_scan)(const double* px, const double* py,
                             const double* tc, std::size_t k_begin,
                             std::size_t k_end, double ix, double iy,
                             double ex, double ey, double speed,
                             double threshold);
  std::size_t (*select_within)(const double* xs, const double* ys,
                               std::size_t n, double cx, double cy, double r2,
                               const std::uint32_t* ids, std::uint32_t* out);
  double (*crossing_min)(const double* level, const double* as_of,
                         const double* draw, std::size_t n, double threshold,
                         double eps);
  std::size_t (*advance_select_below)(double* level, double* as_of,
                                      double* dead_since, const double* draw,
                                      std::size_t n, double t,
                                      double threshold,
                                      const std::uint32_t* ids,
                                      std::uint32_t* out);
  std::int64_t (*i64_min_where)(const std::int64_t* lab,
                                const std::int32_t* state, std::int32_t want,
                                std::size_t lo, std::size_t hi);
  void (*i64_dual_apply)(std::int64_t* lab, const std::int32_t* state,
                         std::size_t lo, std::size_t hi, std::int64_t d);
  std::int64_t (*i64_slack_bound)(const std::int64_t* val,
                                  const std::int32_t* slack,
                                  const std::int32_t* st,
                                  const std::int32_t* s, std::size_t lo,
                                  std::size_t hi);
  void (*i64_slack_shift)(std::int64_t* val, const std::int32_t* slack,
                          const std::int32_t* st, const std::int32_t* s,
                          std::size_t lo, std::size_t hi, std::int64_t d);
  std::size_t (*price_scan)(const double* xs, const double* ys, std::size_t n,
                            double px, double py, double bound,
                            const double* adj, const std::uint32_t* ids,
                            std::uint32_t* out);
};

extern const KernelTable kScalarKernels;
#if MCHARGE_SIMD_X86
extern const KernelTable kAvx2Kernels;    // defined in simd_avx2.cpp
extern const KernelTable kAvx512Kernels;  // defined in simd_avx512.cpp
#endif

}  // namespace mcharge::simd::detail
