// Deterministic, seedable random number generation.
//
// All stochastic components of the library (instance generation, tie
// breaking, k-means seeding) draw from an explicitly passed Rng so that
// every experiment is reproducible from a single 64-bit seed. The engine is
// xoshiro256**, seeded through splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.h"

namespace mcharge {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives the seed for independent work item `item` from a base seed:
/// the splitmix64 hash of the item's position in the base stream. Every
/// (base, item) pair yields a statistically independent stream, and the
/// derivation depends only on the pair — not on how many items run, in
/// what order, or on which thread — so parallel sweeps that seed each
/// work item this way are bit-identical to serial ones.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t item) {
  std::uint64_t state = base + item * 0x9e3779b97f4a7c15ULL;
  return splitmix64(state);
}

/// xoshiro256** pseudo-random generator. Satisfies the needs of simulation
/// work (fast, 256-bit state, passes BigCrush); not cryptographic.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d1ecb8f0563bd27ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    MCHARGE_ASSERT(lo <= hi, "uniform(lo, hi) requires lo <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be positive.
  std::uint64_t below(std::uint64_t n) {
    MCHARGE_ASSERT(n > 0, "below(n) requires n > 0");
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    MCHARGE_ASSERT(lo <= hi, "between(lo, hi) requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = below(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child stream (for per-instance seeding).
  Rng fork() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace mcharge
