// Fixed-size thread pool and a parallel_for primitive for embarrassingly
// parallel work (independent simulations, benchmark sweeps).
//
// Design rules that keep parallel runs bit-identical to serial runs:
//  * callers decompose work into independent items indexed 0..n-1 and
//    write each item's result into a preallocated slot for that index;
//  * any randomness is seeded per item (see derive_seed in util/rng.h),
//    never drawn from a stream shared across items;
//  * reductions over the slots happen after parallel_for returns, in
//    index order, on the calling thread.
// Under those rules the number of worker threads cannot influence any
// result, only the wall-clock time.
#pragma once

#include <cstddef>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcharge {

/// Worker count used when a caller passes jobs = 0: the hardware
/// concurrency, with a floor of 1 (hardware_concurrency may report 0).
std::size_t default_jobs();

/// A fixed-size pool of worker threads draining a FIFO task queue.
/// Tasks must not throw; wrap throwing work (parallel_for does this and
/// rethrows the first exception on the caller).
///
/// When tracing is enabled (obs/obs.h) the pool reports
/// `pool.tasks_submitted` / `pool.tasks_executed` counters and a
/// `pool.queue_depth` gauge (depth at submit time; `max` = high-water
/// mark). There is no work stealing to count: tasks are popped FIFO by
/// whichever worker wakes first, so queue depth is the congestion signal.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Must not be called after the destructor has begun.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< signals workers: queue or stop
  std::condition_variable idle_cv_;   ///< signals wait_idle: all drained
  std::size_t active_ = 0;            ///< tasks currently executing
  bool stop_ = false;
};

/// Runs fn(i) for every i in [0, n) exactly once, across up to `jobs`
/// worker threads (jobs = 0 means default_jobs()). With jobs <= 1 the
/// loop runs inline on the calling thread — no pool, no synchronization —
/// which is the reference serial behavior.
///
/// Items are claimed dynamically (an atomic counter), so the mapping of
/// items to threads is nondeterministic; see the header comment for the
/// rules that make results deterministic anyway. If any fn(i) throws, no
/// new items are started and the first exception (by completion time) is
/// rethrown on the calling thread after all workers stop.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t jobs = 0);

}  // namespace mcharge
