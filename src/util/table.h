// Plain-text table and CSV emission for benchmark harnesses.
//
// Every figure-reproduction binary prints (a) an aligned human-readable
// table mirroring the paper's plotted series and (b) a CSV block that can be
// piped into a plotting tool.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mcharge {

/// A simple column-ordered table of strings with numeric helpers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add() calls fill it left to right.
  void start_row();
  void add(const std::string& cell);
  void add(double value, int precision = 2);
  void add(long long value);

  std::size_t rows() const { return cells_.size(); }

  /// Render with aligned columns.
  void print(std::ostream& os) const;
  /// Render as CSV (headers + rows).
  void print_csv(std::ostream& os) const;
  /// Write CSV to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace mcharge
