// Streaming statistics accumulators used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace mcharge {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples; supports exact quantiles. For small sample counts
/// (benchmark replications), memory is not a concern.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  /// Exact q-quantile by linear interpolation, q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace mcharge
