// A minimal std::expected-style result type (C++20; std::expected is
// C++23). Holds either a value T or an error E. Used by the up-front
// input validators (sim/validate.h, model/charging_problem.h) so callers
// can branch on structured errors instead of tripping asserts or UB deep
// inside the round loop.
#pragma once

#include <utility>
#include <variant>

#include "util/assert.h"

namespace mcharge {

/// Tag wrapper marking an error value for Expected's converting
/// constructor (mirrors std::unexpected).
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
Unexpected<std::decay_t<E>> make_unexpected(E&& error) {
  return {std::forward<E>(error)};
}

/// Either a T (success) or an E (failure). Accessors assert on misuse,
/// matching the repo's fail-fast invariant style.
template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> error)
      : state_(std::in_place_index<1>, std::move(error.error)) {}

  bool has_value() const { return state_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  T& value() {
    MCHARGE_ASSERT(has_value(), "Expected::value() on an error");
    return std::get<0>(state_);
  }
  const T& value() const {
    MCHARGE_ASSERT(has_value(), "Expected::value() on an error");
    return std::get<0>(state_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  E& error() {
    MCHARGE_ASSERT(!has_value(), "Expected::error() on a value");
    return std::get<1>(state_);
  }
  const E& error() const {
    MCHARGE_ASSERT(!has_value(), "Expected::error() on a value");
    return std::get<1>(state_);
  }

  template <typename U>
  T value_or(U&& fallback) const {
    return has_value() ? std::get<0>(state_)
                       : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::variant<T, E> state_;
};

}  // namespace mcharge
