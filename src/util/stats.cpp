#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace mcharge {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  MCHARGE_ASSERT(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  MCHARGE_ASSERT(!samples_.empty(), "quantile of empty sample set");
  ensure_sorted();
  sorted_ = false;  // add() may follow; simplest correct policy
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  const double result = samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
  sorted_ = true;
  return result;
}

}  // namespace mcharge
