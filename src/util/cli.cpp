#include "util/cli.h"

#include <cstdlib>
#include <string_view>

namespace mcharge {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      flags_[std::string(arg)] = "true";
    } else {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool CliFlags::has(const std::string& key) const {
  return flags_.count(key) > 0;
}

std::string CliFlags::get(const std::string& key,
                          const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

long long CliFlags::get_int(const std::string& key, long long fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::atoll(it->second.c_str());
}

double CliFlags::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::atof(it->second.c_str());
}

bool CliFlags::get_bool(const std::string& key, bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace mcharge
