// Invariant-checking macros for the mcharge library.
//
// MCHARGE_ASSERT is active in all build types (the library is a research
// artifact: a silently wrong schedule is worse than an abort). Use
// MCHARGE_DASSERT for hot-path checks that should compile out in release.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mcharge::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "mcharge assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace mcharge::detail

#define MCHARGE_ASSERT(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::mcharge::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
    }                                                               \
  } while (false)

#ifdef NDEBUG
#define MCHARGE_DASSERT(expr, msg) ((void)0)
#else
#define MCHARGE_DASSERT(expr, msg) MCHARGE_ASSERT(expr, msg)
#endif
