#include "util/rng.h"

// Header-only in practice; this TU anchors the library target.
namespace mcharge {}
