#include "util/table.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace mcharge {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MCHARGE_ASSERT(!headers_.empty(), "table requires at least one column");
}

void Table::start_row() { cells_.emplace_back(); }

void Table::add(const std::string& cell) {
  MCHARGE_ASSERT(!cells_.empty(), "start_row() before add()");
  MCHARGE_ASSERT(cells_.back().size() < headers_.size(),
                 "row has more cells than headers");
  cells_.back().push_back(cell);
}

void Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  add(os.str());
}

void Table::add(long long value) { add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "  " << std::setw(static_cast<int>(widths[c])) << cell;
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 2;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : cells_) emit(row);
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  print_csv(f);
  return static_cast<bool>(f);
}

}  // namespace mcharge
