#include "util/parallel.h"

#include <atomic>
#include <exception>

#include "obs/obs.h"
#include "util/assert.h"

namespace mcharge {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = threads == 0 ? 1 : threads;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MCHARGE_ASSERT(task != nullptr, "ThreadPool::submit requires a task");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    MCHARGE_ASSERT(!stop_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
    // The pool has no work stealing — a task runs on whichever worker
    // pops it — so backlog is the one congestion signal worth watching:
    // the queue depth at submit time (its `max` is the high-water mark).
    OBS_GAUGE("pool.queue_depth",
              static_cast<std::int64_t>(queue_.size()));
  }
  OBS_COUNT("pool.tasks_submitted", 1);
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining tasks even when stopping, so the destructor's
      // contract (queue fully drained) holds.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    OBS_COUNT("pool.tasks_executed", 1);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t jobs) {
  if (n == 0) return;
  if (jobs == 0) jobs = default_jobs();
  if (jobs > n) jobs = n;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  ThreadPool pool(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    pool.submit([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mcharge
