#include "util/simd.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "util/simd_kernels.h"

namespace mcharge::simd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- Scalar reference kernels -------------------------------------------
// These ARE the determinism contract: every vector backend must reproduce
// them bit for bit. Each loop body performs the exact operation sequence
// of the code the kernel replaced (see the call sites in tsp/ and
// geometry/).

void scalar_distance_row(const double* xs, const double* ys, std::size_t n,
                         double px, double py, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px - xs[i];
    const double dy = py - ys[i];
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

ArgMin scalar_argmin_masked(const double* values, const unsigned char* skip,
                            std::size_t n) {
  ArgMin best{kNpos, kInf};
  for (std::size_t i = 0; i < n; ++i) {
    if (skip != nullptr && skip[i]) continue;
    if (values[i] < best.value) {
      best.value = values[i];
      best.index = i;
    }
  }
  return best;
}

ArgMin scalar_argmin_distance_masked(const double* xs, const double* ys,
                                     std::size_t n, double px, double py,
                                     const unsigned char* skip) {
  ArgMin best{kNpos, kInf};
  for (std::size_t i = 0; i < n; ++i) {
    if (skip != nullptr && skip[i]) continue;
    const double dx = px - xs[i];
    const double dy = py - ys[i];
    const double d = std::sqrt(dx * dx + dy * dy);
    if (d < best.value) {
      best.value = d;
      best.index = i;
    }
  }
  return best;
}

double scalar_min_reduce(const double* values, std::size_t n) {
  double best = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i] < best) best = values[i];
  }
  return best;
}

double scalar_max_reduce(const double* values, std::size_t n) {
  double best = -kInf;
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i] > best) best = values[i];
  }
  return best;
}

std::size_t scalar_two_opt_scan(const double* px, const double* py,
                                const double* tc, std::size_t j_begin,
                                std::size_t j_end, double ax, double ay,
                                double bx, double by, double speed,
                                double base, double min_gain) {
  for (std::size_t j = j_begin; j < j_end; ++j) {
    const double dax = ax - px[j];
    const double day = ay - py[j];
    const double da = std::sqrt(dax * dax + day * day);
    const double dbx = bx - px[j + 1];
    const double dby = by - py[j + 1];
    const double db = std::sqrt(dbx * dbx + dby * dby);
    const double after = da / speed + db / speed;
    const double before = base + tc[j];
    if (after < before - min_gain) return j;
  }
  return kNpos;
}

std::size_t scalar_or_opt_scan(const double* px, const double* py,
                               const double* tc, std::size_t k_begin,
                               std::size_t k_end, double ix, double iy,
                               double ex, double ey, double speed,
                               double threshold) {
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const double dax = px[k] - ix;
    const double day = py[k] - iy;
    const double da = std::sqrt(dax * dax + day * day);
    const double dbx = ex - px[k + 1];
    const double dby = ey - py[k + 1];
    const double db = std::sqrt(dbx * dbx + dby * dby);
    const double cost = da / speed + db / speed - tc[k];
    if (cost < threshold) return k;
  }
  return kNpos;
}

double scalar_crossing_min(const double* level, const double* as_of,
                           const double* draw, std::size_t n,
                           double threshold, double eps) {
  double best = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    double c;
    if (level[i] < threshold) {
      c = as_of[i];
    } else if (draw[i] <= 0.0) {
      c = kInf;
    } else {
      c = as_of[i] + (level[i] - threshold) / draw[i] + eps;
    }
    if (c < best) best = c;
  }
  return best;
}

std::size_t scalar_advance_select_below(double* level, double* as_of,
                                        double* dead_since,
                                        const double* draw, std::size_t n,
                                        double t, double threshold,
                                        const std::uint32_t* ids,
                                        std::uint32_t* out) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (t > as_of[i]) {
      const double drained = draw[i] * (t - as_of[i]);
      if (drained >= level[i] && draw[i] > 0.0) {
        if (dead_since[i] == kInf) {
          dead_since[i] = as_of[i] + level[i] / draw[i];
        }
        level[i] = 0.0;
      } else {
        level[i] -= drained;
      }
      as_of[i] = t;
    }
    if (level[i] < threshold) out[count++] = ids[i];
  }
  return count;
}

std::int64_t scalar_i64_min_where(const std::int64_t* lab,
                                  const std::int32_t* state,
                                  std::int32_t want, std::size_t lo,
                                  std::size_t hi) {
  std::int64_t best = kI64Max;
  for (std::size_t i = lo; i < hi; ++i) {
    if (state[i] == want && lab[i] < best) best = lab[i];
  }
  return best;
}

void scalar_i64_dual_apply(std::int64_t* lab, const std::int32_t* state,
                           std::size_t lo, std::size_t hi, std::int64_t d) {
  for (std::size_t i = lo; i < hi; ++i) {
    if (state[i] == 0) {
      lab[i] -= d;
    } else if (state[i] == 1) {
      lab[i] += d;
    }
  }
}

std::int64_t scalar_i64_slack_bound(const std::int64_t* val,
                                    const std::int32_t* slack,
                                    const std::int32_t* st,
                                    const std::int32_t* s, std::size_t lo,
                                    std::size_t hi) {
  std::int64_t best = kI64Max;
  for (std::size_t i = lo; i < hi; ++i) {
    if (st[i] != static_cast<std::int32_t>(i) || slack[i] == 0) continue;
    std::int64_t c;
    if (s[i] == -1) {
      c = val[i];
    } else if (s[i] == 0) {
      c = val[i] >> 1;  // val >= 0, so >> 1 == / 2
    } else {
      continue;
    }
    if (c < best) best = c;
  }
  return best;
}

void scalar_i64_slack_shift(std::int64_t* val, const std::int32_t* slack,
                            const std::int32_t* st, const std::int32_t* s,
                            std::size_t lo, std::size_t hi, std::int64_t d) {
  for (std::size_t i = lo; i < hi; ++i) {
    if (st[i] != static_cast<std::int32_t>(i) || slack[i] == 0) continue;
    if (s[i] == -1) {
      val[i] -= d;
    } else if (s[i] == 0) {
      val[i] -= 2 * d;
    }
  }
}

std::size_t scalar_price_scan(const double* xs, const double* ys,
                              std::size_t n, double px, double py,
                              double bound, const double* adj,
                              const std::uint32_t* ids, std::uint32_t* out) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = px - xs[i];
    const double dy = py - ys[i];
    const double d = std::sqrt(dx * dx + dy * dy);
    if (d < bound - adj[i]) out[count++] = ids[i];
  }
  return count;
}

std::size_t scalar_select_within(const double* xs, const double* ys,
                                 std::size_t n, double cx, double cy,
                                 double r2, const std::uint32_t* ids,
                                 std::uint32_t* out) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - cx;
    const double dy = ys[i] - cy;
    if (dx * dx + dy * dy <= r2) out[count++] = ids[i];
  }
  return count;
}

// --- Dispatch ------------------------------------------------------------

const detail::KernelTable* table_for(Backend backend) {
  switch (backend) {
#if MCHARGE_SIMD_X86
    case Backend::kAvx2:
      return &detail::kAvx2Kernels;
    case Backend::kAvx512:
      return &detail::kAvx512Kernels;
#endif
    default:
      return &detail::kScalarKernels;
  }
}

Backend hardware_best() {
#if MCHARGE_SIMD_X86
  if (__builtin_cpu_supports("avx512f")) return Backend::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
#endif
  return Backend::kScalar;
}

/// MCHARGE_SIMD=scalar|avx2|avx512 caps the backend from the environment
/// (it can only lower, never enable something the CPU lacks).
Backend env_capped(Backend best) {
  const char* env = std::getenv("MCHARGE_SIMD");
  if (env == nullptr) return best;
  const std::string v(env);
  Backend cap = best;
  if (v == "scalar") cap = Backend::kScalar;
  if (v == "avx2") cap = Backend::kAvx2;
  if (v == "avx512") cap = Backend::kAvx512;
  return static_cast<int>(cap) < static_cast<int>(best) ? cap : best;
}

struct Dispatch {
  Backend best;
  Backend active;
  const detail::KernelTable* table;

  Dispatch() {
    best = env_capped(hardware_best());
    active = best;
    table = table_for(active);
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

}  // namespace

namespace detail {
const KernelTable kScalarKernels = {
    scalar_distance_row,  scalar_argmin_masked, scalar_argmin_distance_masked,
    scalar_min_reduce,    scalar_max_reduce,    scalar_two_opt_scan,
    scalar_or_opt_scan,   scalar_select_within, scalar_crossing_min,
    scalar_advance_select_below,
    scalar_i64_min_where, scalar_i64_dual_apply, scalar_i64_slack_bound,
    scalar_i64_slack_shift, scalar_price_scan,
};
}  // namespace detail

Backend best_backend() { return dispatch().best; }

Backend active_backend() { return dispatch().active; }

Backend set_backend(Backend backend) {
  Dispatch& d = dispatch();
  const Backend clamped =
      static_cast<int>(backend) <= static_cast<int>(d.best) ? backend : d.best;
  d.active = clamped;
  d.table = table_for(clamped);
  return d.active;
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
    default:
      return "scalar";
  }
}

void distance_row(const double* xs, const double* ys, std::size_t n,
                  double px, double py, double* out) {
  dispatch().table->distance_row(xs, ys, n, px, py, out);
}

void distance_matrix(const double* xs, const double* ys, std::size_t m,
                     double* out) {
  // Row a is filled from the diagonal rightwards with the row kernel, then
  // mirrored into column a. Mirroring is bitwise-safe: dx and -dx square
  // to the same double, so d(a, b) == d(b, a) exactly.
  const auto* table = dispatch().table;
  for (std::size_t a = 0; a < m; ++a) {
    double* row = out + a * m;
    table->distance_row(xs + a, ys + a, m - a, xs[a], ys[a], row + a);
    for (std::size_t b = a + 1; b < m; ++b) {
      out[b * m + a] = row[b];
    }
  }
}

ArgMin argmin_masked(const double* values, const unsigned char* skip,
                     std::size_t n) {
  return dispatch().table->argmin_masked(values, skip, n);
}

ArgMin argmin_distance_masked(const double* xs, const double* ys,
                              std::size_t n, double px, double py,
                              const unsigned char* skip) {
  return dispatch().table->argmin_distance_masked(xs, ys, n, px, py, skip);
}

double min_reduce(const double* values, std::size_t n) {
  return dispatch().table->min_reduce(values, n);
}

double max_reduce(const double* values, std::size_t n) {
  return dispatch().table->max_reduce(values, n);
}

std::size_t two_opt_scan(const double* px, const double* py, const double* tc,
                         std::size_t j_begin, std::size_t j_end, double ax,
                         double ay, double bx, double by, double speed,
                         double base, double min_gain) {
  return dispatch().table->two_opt_scan(px, py, tc, j_begin, j_end, ax, ay,
                                        bx, by, speed, base, min_gain);
}

std::size_t or_opt_scan(const double* px, const double* py, const double* tc,
                        std::size_t k_begin, std::size_t k_end, double ix,
                        double iy, double ex, double ey, double speed,
                        double threshold) {
  return dispatch().table->or_opt_scan(px, py, tc, k_begin, k_end, ix, iy, ex,
                                       ey, speed, threshold);
}

std::size_t select_within(const double* xs, const double* ys, std::size_t n,
                          double cx, double cy, double r2,
                          const std::uint32_t* ids, std::uint32_t* out) {
  return dispatch().table->select_within(xs, ys, n, cx, cy, r2, ids, out);
}

double crossing_min(const double* level, const double* as_of,
                    const double* draw, std::size_t n, double threshold,
                    double eps) {
  return dispatch().table->crossing_min(level, as_of, draw, n, threshold,
                                        eps);
}

std::size_t advance_select_below(double* level, double* as_of,
                                 double* dead_since, const double* draw,
                                 std::size_t n, double t, double threshold,
                                 const std::uint32_t* ids,
                                 std::uint32_t* out) {
  return dispatch().table->advance_select_below(level, as_of, dead_since,
                                                draw, n, t, threshold, ids,
                                                out);
}

std::int64_t i64_min_where(const std::int64_t* lab, const std::int32_t* state,
                           std::int32_t want, std::size_t lo, std::size_t hi) {
  return dispatch().table->i64_min_where(lab, state, want, lo, hi);
}

void i64_dual_apply(std::int64_t* lab, const std::int32_t* state,
                    std::size_t lo, std::size_t hi, std::int64_t d) {
  dispatch().table->i64_dual_apply(lab, state, lo, hi, d);
}

std::int64_t i64_slack_bound(const std::int64_t* val, const std::int32_t* slack,
                             const std::int32_t* st, const std::int32_t* s,
                             std::size_t lo, std::size_t hi) {
  return dispatch().table->i64_slack_bound(val, slack, st, s, lo, hi);
}

void i64_slack_shift(std::int64_t* val, const std::int32_t* slack,
                     const std::int32_t* st, const std::int32_t* s,
                     std::size_t lo, std::size_t hi, std::int64_t d) {
  dispatch().table->i64_slack_shift(val, slack, st, s, lo, hi, d);
}

std::size_t price_scan(const double* xs, const double* ys, std::size_t n,
                       double px, double py, double bound, const double* adj,
                       const std::uint32_t* ids, std::uint32_t* out) {
  return dispatch().table->price_scan(xs, ys, n, px, py, bound, adj, ids, out);
}

}  // namespace mcharge::simd
