// Minimal --key=value command-line parsing for bench and example binaries.
#pragma once

#include <map>
#include <string>

namespace mcharge {

/// Parses flags of the form --key=value (or bare --key, value "true").
/// Unrecognized positional arguments are collected separately.
class CliFlags {
 public:
  CliFlags(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& flags() const { return flags_; }

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace mcharge
