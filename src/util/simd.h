// Portable SIMD kernels for the dense geometry hot paths: SoA distance
// rows / matrices, fused distance+argmin scans, min/max reductions, and
// the 2-opt / Or-opt first-improvement gain scans.
//
// Bitwise-identity contract
// -------------------------
// Every kernel is REQUIRED to produce results bitwise identical to the
// scalar reference path (geom::distance and the hand-written loops it
// replaced). That holds because each kernel performs exactly the same
// per-element IEEE-754 double operations as the scalar code — per-element
// dx*dx + dy*dy, one correctly-rounded sqrt, one divide by speed — only
// on 4 or 8 lanes at a time. No FMA contraction (the vector TUs compile
// with -ffp-contract=off), no reassociation across elements, and argmin
// ties break to the lowest index exactly like a sequential strict-<
// scan. Tests in tests/simd_test.cpp enforce lane-for-lane equality
// against the scalar backend; the byte-compare regressions enforce it
// end to end.
//
// Dispatch
// --------
// Backends: scalar (always), AVX2 (4 x double) and AVX-512F (8 x double)
// on x86-64 GNU-compatible compilers. The best supported backend is
// chosen at runtime via CPU detection on first use; MCHARGE_SIMD=scalar|
// avx2|avx512 in the environment overrides downward, and building with
// -DMCHARGE_NO_SIMD=ON compiles the scalar backend only. set_backend()
// lets tests pin a backend explicitly.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mcharge::simd {

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

enum class Backend { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Best backend supported by this build + CPU (respects MCHARGE_SIMD).
Backend best_backend();
/// Backend the kernels currently dispatch to.
Backend active_backend();
/// Requests a backend; clamped to best_backend() if unsupported. Returns
/// the backend actually active afterwards. Not thread-safe; intended for
/// tests and single-threaded setup.
Backend set_backend(Backend backend);
const char* backend_name(Backend backend);

/// out[i] = sqrt((px - xs[i])^2 + (py - ys[i])^2) for i in [0, n).
void distance_row(const double* xs, const double* ys, std::size_t n,
                  double px, double py, double* out);

/// Fills the dense m x m symmetric Euclidean distance matrix (row-major)
/// for the SoA point set (xs, ys). Diagonal is +0.0.
void distance_matrix(const double* xs, const double* ys, std::size_t m,
                     double* out);

struct ArgMin {
  std::size_t index = kNpos;
  double value = 0.0;
};

/// Lowest-index minimum of values[i] over i with skip[i] == 0. Equivalent
/// to the sequential scan `if (v < best) ...`; returns kNpos if every
/// element is skipped or n == 0. skip may be nullptr (no mask).
ArgMin argmin_masked(const double* values, const unsigned char* skip,
                     std::size_t n);

/// Fused distance + argmin: lowest-index minimum of
/// sqrt((px - xs[i])^2 + (py - ys[i])^2) over i with skip[i] == 0.
/// skip may be nullptr (no mask).
ArgMin argmin_distance_masked(const double* xs, const double* ys,
                              std::size_t n, double px, double py,
                              const unsigned char* skip);

/// Exact min/max reductions (order-independent for non-NaN input).
/// Return +inf / -inf respectively for n == 0.
double min_reduce(const double* values, std::size_t n);
double max_reduce(const double* values, std::size_t n);

/// First-improvement scan of the 2-opt move set for a fixed left edge.
///
/// Positions are given as SoA arrays px/py over tour positions, with the
/// depot appended as a sentinel at the last index; the scan reads
/// px[j] and px[j + 1] for j in [j_begin, j_end), so px/py must be valid
/// up to index j_end inclusive. tc[j] is the precomputed travel time of
/// the (j, j+1) leg, i.e. exactly the bits of
/// dist(P[j], P[j+1]) / speed — hoisting it out of the scan removes a
/// sqrt and a divide per element without changing any compared value.
/// (ax, ay) is the point at position i-1 (depot for i == 0), (bx, by)
/// the point at position i, `base` the travel time of the (i-1, i) leg.
/// Returns the first j such that
///   dist((ax,ay), P[j])/speed + dist((bx,by), P[j+1])/speed
///     < (base + tc[j]) - min_gain
/// evaluated with exactly the scalar operation sequence, or kNpos.
std::size_t two_opt_scan(const double* px, const double* py,
                         const double* tc, std::size_t j_begin,
                         std::size_t j_end, double ax, double ay, double bx,
                         double by, double speed, double base,
                         double min_gain);

/// First-improvement scan of Or-opt insertion positions for a fixed
/// segment. (ix, iy) is the segment's first point, (ex, ey) its last;
/// the scan reads px[k], px[k + 1] and tc[k] for k in [k_begin, k_end)
/// (depot sentinel at the last index and leg travel times tc as above).
/// Returns the first k such that
///   (dist(P[k], (ix,iy))/speed + dist((ex,ey), P[k+1])/speed)
///     - tc[k] < threshold
/// evaluated with exactly the scalar operation sequence, or kNpos.
std::size_t or_opt_scan(const double* px, const double* py, const double* tc,
                        std::size_t k_begin, std::size_t k_end, double ix,
                        double iy, double ex, double ey, double speed,
                        double threshold);

/// Disk filter: appends ids[i] to out for every i in [0, n) with
/// (xs[i] - cx)^2 + (ys[i] - cy)^2 <= r2, preserving order. Returns the
/// number of ids written; out must have room for n entries.
std::size_t select_within(const double* xs, const double* ys, std::size_t n,
                          double cx, double cy, double r2,
                          const std::uint32_t* ids, std::uint32_t* out);

/// Simulator drain kernels (sim::simulate's SoA per-sensor state). Both
/// follow the same bitwise-identity contract as the geometry kernels:
/// per-element IEEE-754 operation sequences identical to the scalar
/// reference, reductions that are order-independent for non-NaN input.

/// Earliest request-threshold crossing over the lazy drain states
/// (level[i] at time as_of[i], draining at draw[i] W): per element
///   level[i] <  threshold -> as_of[i]            (already below)
///   draw[i]  <= 0         -> +inf                (never crosses)
///   otherwise             -> as_of[i] + (level[i] - threshold) / draw[i]
///                            + eps
/// and the minimum over the range (inf for n == 0). eps is the caller's
/// strictly-past-the-threshold nudge.
double crossing_min(const double* level, const double* as_of,
                    const double* draw, std::size_t n, double threshold,
                    double eps);

/// Advances every lazy drain state to time t (elements with as_of[i] >= t
/// are untouched), recording first-death instants into dead_since
/// (as_of + level/draw, only where dead_since was +inf), then appends
/// ids[i] to out for every element with level[i] < threshold after the
/// advance, preserving order. Returns the number of ids written; out must
/// have room for n entries.
std::size_t advance_select_below(double* level, double* as_of,
                                 double* dead_since, const double* draw,
                                 std::size_t n, double t, double threshold,
                                 const std::uint32_t* ids, std::uint32_t* out);

/// Blossom dual-adjustment kernels (matching/blossom_core.h). All-integer:
/// every backend is trivially bitwise identical to the scalar loops, and
/// min reductions are order-independent.

inline constexpr std::int64_t kI64Max = INT64_MAX;

/// Min of lab[i] over i in [lo, hi) with state[i] == want; kI64Max if the
/// range is empty or no element matches.
std::int64_t i64_min_where(const std::int64_t* lab, const std::int32_t* state,
                           std::int32_t want, std::size_t lo, std::size_t hi);

/// Batched dual-delta: lab[i] -= d where state[i] == 0 (outer),
/// lab[i] += d where state[i] == 1 (inner); other states untouched.
void i64_dual_apply(std::int64_t* lab, const std::int32_t* state,
                    std::size_t lo, std::size_t hi, std::int64_t d);

/// Min-slack reduction over base ids x in [lo, hi): elements with
/// st[x] == x and slack[x] != 0 contribute val[x] if s[x] == -1 (free) or
/// val[x] >> 1 if s[x] == 0 (outer); inner bases and everything else
/// contribute nothing. val entries reachable by the reduction must be
/// non-negative (dual feasibility guarantees it). Returns kI64Max if no
/// element contributes.
std::int64_t i64_slack_bound(const std::int64_t* val, const std::int32_t* slack,
                             const std::int32_t* st, const std::int32_t* s,
                             std::size_t lo, std::size_t hi);

/// Shifts the cached slack deltas after a dual adjustment by d: elements
/// with st[x] == x and slack[x] != 0 get val[x] -= d if s[x] == -1,
/// val[x] -= 2d if s[x] == 0; inner bases (s[x] == 1) are unchanged (the
/// -d source shift cancels the +d target shift).
void i64_slack_shift(std::int64_t* val, const std::int32_t* slack,
                     const std::int32_t* st, const std::int32_t* s,
                     std::size_t lo, std::size_t hi, std::int64_t d);

/// Pricing prefilter for the sparse blossom engine: appends ids[i] to out
/// for every i in [0, n) with
///   sqrt((px - xs[i])^2 + (py - ys[i])^2) < bound - adj[i]
/// preserving order (same operation sequence as geom::distance). Returns
/// the number of ids written; out must have room for n entries.
std::size_t price_scan(const double* xs, const double* ys, std::size_t n,
                       double px, double py, double bound, const double* adj,
                       const std::uint32_t* ids, std::uint32_t* out);

}  // namespace mcharge::simd
