// AVX2 (4 x double) backend. Compiled with -mavx2 -ffp-contract=off; see
// simd_kernels.h for why this TU must stay free of repo headers.
//
// Bitwise identity with the scalar backend: every lane performs the same
// mul / add / div / sqrt sequence as the scalar loop (all IEEE-754
// correctly rounded, no FMA), and every reduction breaks ties toward the
// lowest index exactly like a sequential strict-< scan.
#include "util/simd_kernels.h"

#if MCHARGE_SIMD_X86

#include <immintrin.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace mcharge::simd::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline __m256d dist4(__m256d xs, __m256d ys, __m256d px, __m256d py) {
  const __m256d dx = _mm256_sub_pd(px, xs);
  const __m256d dy = _mm256_sub_pd(py, ys);
  return _mm256_sqrt_pd(
      _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
}

/// 0xFF.. lanes where the skip byte is zero (i.e. the lane is live).
inline __m256d live_mask4(const unsigned char* skip, std::size_t i) {
  std::uint32_t packed;
  std::memcpy(&packed, skip + i, sizeof(packed));
  const __m256i bytes =
      _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(packed)));
  return _mm256_castsi256_pd(
      _mm256_cmpeq_epi64(bytes, _mm256_setzero_si256()));
}

/// Sequential-equivalent argmin update over 4 lanes plus scalar state.
/// Lane l of block i holds element i + l, so within a lane strict-<
/// keeps the lowest index; across lanes/tail the (value, index) compare
/// below restores the global lowest-index rule.
inline void reduce_argmin4(__m256d bestv, __m256i besti, ArgMin& best) {
  alignas(32) double vals[4];
  alignas(32) std::int64_t idx[4];
  _mm256_store_pd(vals, bestv);
  _mm256_store_si256(reinterpret_cast<__m256i*>(idx), besti);
  for (int l = 0; l < 4; ++l) {
    // Skip lanes that never saw a live element, and +inf lanes: the
    // scalar strict-< scan can never select an infinite value either.
    if (idx[l] < 0 || vals[l] == kInf) continue;
    const auto index = static_cast<std::size_t>(idx[l]);
    if (vals[l] < best.value ||
        (vals[l] == best.value && index < best.index)) {
      best.value = vals[l];
      best.index = index;
    }
  }
}

ArgMin avx2_argmin_masked(const double* values, const unsigned char* skip,
                          std::size_t n) {
  ArgMin best{kNpos, kInf};
  std::size_t i = 0;
  if (n >= 4) {
    const __m256d inf = _mm256_set1_pd(kInf);
    __m256d bestv = inf;
    __m256i besti = _mm256_set1_epi64x(-1);
    __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
    const __m256i step = _mm256_set1_epi64x(4);
    for (; i + 4 <= n; i += 4) {
      __m256d val = _mm256_loadu_pd(values + i);
      if (skip != nullptr) {
        val = _mm256_blendv_pd(inf, val, live_mask4(skip, i));
      }
      const __m256d lt = _mm256_cmp_pd(val, bestv, _CMP_LT_OQ);
      bestv = _mm256_blendv_pd(bestv, val, lt);
      besti = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(besti), _mm256_castsi256_pd(idx), lt));
      idx = _mm256_add_epi64(idx, step);
    }
    reduce_argmin4(bestv, besti, best);
  }
  for (; i < n; ++i) {
    if (skip != nullptr && skip[i]) continue;
    if (values[i] < best.value) {
      best.value = values[i];
      best.index = i;
    }
  }
  return best;
}

ArgMin avx2_argmin_distance_masked(const double* xs, const double* ys,
                                   std::size_t n, double px, double py,
                                   const unsigned char* skip) {
  ArgMin best{kNpos, kInf};
  std::size_t i = 0;
  if (n >= 4) {
    const __m256d inf = _mm256_set1_pd(kInf);
    const __m256d vpx = _mm256_set1_pd(px);
    const __m256d vpy = _mm256_set1_pd(py);
    __m256d bestv = inf;
    __m256i besti = _mm256_set1_epi64x(-1);
    __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
    const __m256i step = _mm256_set1_epi64x(4);
    for (; i + 4 <= n; i += 4) {
      __m256d val = dist4(_mm256_loadu_pd(xs + i), _mm256_loadu_pd(ys + i),
                          vpx, vpy);
      if (skip != nullptr) {
        val = _mm256_blendv_pd(inf, val, live_mask4(skip, i));
      }
      const __m256d lt = _mm256_cmp_pd(val, bestv, _CMP_LT_OQ);
      bestv = _mm256_blendv_pd(bestv, val, lt);
      besti = _mm256_castpd_si256(_mm256_blendv_pd(
          _mm256_castsi256_pd(besti), _mm256_castsi256_pd(idx), lt));
      idx = _mm256_add_epi64(idx, step);
    }
    reduce_argmin4(bestv, besti, best);
  }
  for (; i < n; ++i) {
    if (skip != nullptr && skip[i]) continue;
    const double dx = px - xs[i];
    const double dy = py - ys[i];
    const double d = std::sqrt(dx * dx + dy * dy);
    if (d < best.value) {
      best.value = d;
      best.index = i;
    }
  }
  return best;
}

void avx2_distance_row(const double* xs, const double* ys, std::size_t n,
                       double px, double py, double* out) {
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, dist4(_mm256_loadu_pd(xs + i),
                                    _mm256_loadu_pd(ys + i), vpx, vpy));
  }
  for (; i < n; ++i) {
    const double dx = px - xs[i];
    const double dy = py - ys[i];
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

double avx2_min_reduce(const double* values, std::size_t n) {
  double best = kInf;
  std::size_t i = 0;
  if (n >= 4) {
    __m256d acc = _mm256_set1_pd(kInf);
    for (; i + 4 <= n; i += 4) {
      acc = _mm256_min_pd(acc, _mm256_loadu_pd(values + i));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (double v : lanes) {
      if (v < best) best = v;
    }
  }
  for (; i < n; ++i) {
    if (values[i] < best) best = values[i];
  }
  return best;
}

double avx2_max_reduce(const double* values, std::size_t n) {
  double best = -kInf;
  std::size_t i = 0;
  if (n >= 4) {
    __m256d acc = _mm256_set1_pd(-kInf);
    for (; i + 4 <= n; i += 4) {
      acc = _mm256_max_pd(acc, _mm256_loadu_pd(values + i));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (double v : lanes) {
      if (v > best) best = v;
    }
  }
  for (; i < n; ++i) {
    if (values[i] > best) best = values[i];
  }
  return best;
}

std::size_t avx2_two_opt_scan(const double* px, const double* py,
                              const double* tc, std::size_t j_begin,
                              std::size_t j_end, double ax, double ay,
                              double bx, double by, double speed, double base,
                              double min_gain) {
  const __m256d vax = _mm256_set1_pd(ax), vay = _mm256_set1_pd(ay);
  const __m256d vbx = _mm256_set1_pd(bx), vby = _mm256_set1_pd(by);
  const __m256d vspeed = _mm256_set1_pd(speed);
  const __m256d vbase = _mm256_set1_pd(base);
  const __m256d vgain = _mm256_set1_pd(min_gain);
  std::size_t j = j_begin;
  for (; j + 4 <= j_end; j += 4) {
    const __m256d jx = _mm256_loadu_pd(px + j);
    const __m256d jy = _mm256_loadu_pd(py + j);
    const __m256d j1x = _mm256_loadu_pd(px + j + 1);
    const __m256d j1y = _mm256_loadu_pd(py + j + 1);
    const __m256d da = dist4(jx, jy, vax, vay);
    const __m256d db = dist4(j1x, j1y, vbx, vby);
    const __m256d after =
        _mm256_add_pd(_mm256_div_pd(da, vspeed), _mm256_div_pd(db, vspeed));
    const __m256d before = _mm256_add_pd(vbase, _mm256_loadu_pd(tc + j));
    const __m256d rhs = _mm256_sub_pd(before, vgain);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(after, rhs, _CMP_LT_OQ));
    if (mask != 0) return j + static_cast<std::size_t>(__builtin_ctz(mask));
  }
  for (; j < j_end; ++j) {
    const double dax = ax - px[j];
    const double day = ay - py[j];
    const double da = std::sqrt(dax * dax + day * day);
    const double dbx = bx - px[j + 1];
    const double dby = by - py[j + 1];
    const double db = std::sqrt(dbx * dbx + dby * dby);
    const double after = da / speed + db / speed;
    const double before = base + tc[j];
    if (after < before - min_gain) return j;
  }
  return kNpos;
}

std::size_t avx2_or_opt_scan(const double* px, const double* py,
                             const double* tc, std::size_t k_begin,
                             std::size_t k_end, double ix, double iy,
                             double ex, double ey, double speed,
                             double threshold) {
  const __m256d vix = _mm256_set1_pd(ix), viy = _mm256_set1_pd(iy);
  const __m256d vex = _mm256_set1_pd(ex), vey = _mm256_set1_pd(ey);
  const __m256d vspeed = _mm256_set1_pd(speed);
  const __m256d vthresh = _mm256_set1_pd(threshold);
  std::size_t k = k_begin;
  for (; k + 4 <= k_end; k += 4) {
    const __m256d kx = _mm256_loadu_pd(px + k);
    const __m256d ky = _mm256_loadu_pd(py + k);
    const __m256d k1x = _mm256_loadu_pd(px + k + 1);
    const __m256d k1y = _mm256_loadu_pd(py + k + 1);
    // dist(P[k], seg front): dx = px[k] - ix.
    const __m256d dax = _mm256_sub_pd(kx, vix);
    const __m256d day = _mm256_sub_pd(ky, viy);
    const __m256d da = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(dax, dax), _mm256_mul_pd(day, day)));
    const __m256d db = dist4(k1x, k1y, vex, vey);
    const __m256d cost = _mm256_sub_pd(
        _mm256_add_pd(_mm256_div_pd(da, vspeed), _mm256_div_pd(db, vspeed)),
        _mm256_loadu_pd(tc + k));
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(cost, vthresh, _CMP_LT_OQ));
    if (mask != 0) return k + static_cast<std::size_t>(__builtin_ctz(mask));
  }
  for (; k < k_end; ++k) {
    const double dax = px[k] - ix;
    const double day = py[k] - iy;
    const double da = std::sqrt(dax * dax + day * day);
    const double dbx = ex - px[k + 1];
    const double dby = ey - py[k + 1];
    const double db = std::sqrt(dbx * dbx + dby * dby);
    const double cost = da / speed + db / speed - tc[k];
    if (cost < threshold) return k;
  }
  return kNpos;
}

std::size_t avx2_select_within(const double* xs, const double* ys,
                               std::size_t n, double cx, double cy, double r2,
                               const std::uint32_t* ids, std::uint32_t* out) {
  const __m256d vcx = _mm256_set1_pd(cx);
  const __m256d vcy = _mm256_set1_pd(cy);
  const __m256d vr2 = _mm256_set1_pd(r2);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), vcx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), vcy);
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    int mask = _mm256_movemask_pd(_mm256_cmp_pd(d2, vr2, _CMP_LE_OQ));
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[count++] = ids[i + static_cast<std::size_t>(lane)];
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    const double dx = xs[i] - cx;
    const double dy = ys[i] - cy;
    if (dx * dx + dy * dy <= r2) out[count++] = ids[i];
  }
  return count;
}

double avx2_crossing_min(const double* level, const double* as_of,
                         const double* draw, std::size_t n, double threshold,
                         double eps) {
  double best = kInf;
  std::size_t i = 0;
  if (n >= 4) {
    const __m256d inf = _mm256_set1_pd(kInf);
    const __m256d zero = _mm256_setzero_pd();
    const __m256d vthr = _mm256_set1_pd(threshold);
    const __m256d veps = _mm256_set1_pd(eps);
    __m256d acc = inf;
    for (; i + 4 <= n; i += 4) {
      const __m256d lvl = _mm256_loadu_pd(level + i);
      const __m256d at = _mm256_loadu_pd(as_of + i);
      const __m256d drw = _mm256_loadu_pd(draw + i);
      // as_of + (level - threshold) / draw + eps, with the scalar's
      // operation order (two separate adds, no FMA).
      const __m256d c0 = _mm256_add_pd(
          _mm256_add_pd(at, _mm256_div_pd(_mm256_sub_pd(lvl, vthr), drw)),
          veps);
      // draw <= 0 lanes never cross; level < threshold lanes cross "now".
      // Both blends run before the min so no NaN (0/0 above) survives.
      const __m256d nodraw = _mm256_cmp_pd(drw, zero, _CMP_LE_OQ);
      const __m256d below = _mm256_cmp_pd(lvl, vthr, _CMP_LT_OQ);
      __m256d c = _mm256_blendv_pd(c0, inf, nodraw);
      c = _mm256_blendv_pd(c, at, below);
      acc = _mm256_min_pd(acc, c);
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (double v : lanes) {
      if (v < best) best = v;
    }
  }
  for (; i < n; ++i) {
    double c;
    if (level[i] < threshold) {
      c = as_of[i];
    } else if (draw[i] <= 0.0) {
      c = kInf;
    } else {
      c = as_of[i] + (level[i] - threshold) / draw[i] + eps;
    }
    if (c < best) best = c;
  }
  return best;
}

std::size_t avx2_advance_select_below(double* level, double* as_of,
                                      double* dead_since, const double* draw,
                                      std::size_t n, double t,
                                      double threshold,
                                      const std::uint32_t* ids,
                                      std::uint32_t* out) {
  std::size_t count = 0;
  std::size_t i = 0;
  if (n >= 4) {
    const __m256d inf = _mm256_set1_pd(kInf);
    const __m256d zero = _mm256_setzero_pd();
    const __m256d vt = _mm256_set1_pd(t);
    const __m256d vthr = _mm256_set1_pd(threshold);
    for (; i + 4 <= n; i += 4) {
      const __m256d lvl = _mm256_loadu_pd(level + i);
      const __m256d at = _mm256_loadu_pd(as_of + i);
      const __m256d drw = _mm256_loadu_pd(draw + i);
      const __m256d dsi = _mm256_loadu_pd(dead_since + i);
      const __m256d adv = _mm256_cmp_pd(vt, at, _CMP_GT_OQ);
      const __m256d drained = _mm256_mul_pd(drw, _mm256_sub_pd(vt, at));
      // Death: the drain empties the battery on an advancing lane with a
      // positive draw. Division garbage in non-dead lanes is blended away.
      const __m256d dead = _mm256_and_pd(
          _mm256_and_pd(_mm256_cmp_pd(drained, lvl, _CMP_GE_OQ),
                        _mm256_cmp_pd(drw, zero, _CMP_GT_OQ)),
          adv);
      const __m256d newly =
          _mm256_and_pd(dead, _mm256_cmp_pd(dsi, inf, _CMP_EQ_OQ));
      const __m256d death_t = _mm256_add_pd(at, _mm256_div_pd(lvl, drw));
      _mm256_storeu_pd(dead_since + i,
                       _mm256_blendv_pd(dsi, death_t, newly));
      __m256d new_lvl = _mm256_blendv_pd(_mm256_sub_pd(lvl, drained), zero,
                                         dead);
      new_lvl = _mm256_blendv_pd(lvl, new_lvl, adv);
      _mm256_storeu_pd(level + i, new_lvl);
      _mm256_storeu_pd(as_of + i, _mm256_blendv_pd(at, vt, adv));
      int mask =
          _mm256_movemask_pd(_mm256_cmp_pd(new_lvl, vthr, _CMP_LT_OQ));
      while (mask != 0) {
        const int lane = __builtin_ctz(mask);
        out[count++] = ids[i + static_cast<std::size_t>(lane)];
        mask &= mask - 1;
      }
    }
  }
  for (; i < n; ++i) {
    if (t > as_of[i]) {
      const double drained = draw[i] * (t - as_of[i]);
      if (drained >= level[i] && draw[i] > 0.0) {
        if (dead_since[i] == kInf) {
          dead_since[i] = as_of[i] + level[i] / draw[i];
        }
        level[i] = 0.0;
      } else {
        level[i] -= drained;
      }
      as_of[i] = t;
    }
    if (level[i] < threshold) out[count++] = ids[i];
  }
  return count;
}

// --- Blossom dual-adjustment kernels (all-integer, trivially bitwise) ----

constexpr std::int64_t kI64MaxLocal = INT64_MAX;

/// Widens 4 x int32 at p + i to 4 x int64 lanes.
inline __m256i load_i32x4(const std::int32_t* p, std::size_t i) {
  return _mm256_cvtepi32_epi64(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)));
}

/// Lane-wise signed 64-bit min (AVX2 has no vpminsq; emulate via compare
/// + blend — exact for all values).
inline __m256i min_epi64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

std::int64_t avx2_i64_min_where(const std::int64_t* lab,
                                const std::int32_t* state, std::int32_t want,
                                std::size_t lo, std::size_t hi) {
  std::int64_t best = kI64MaxLocal;
  std::size_t i = lo;
  if (i + 4 <= hi) {
    const __m256i vmax = _mm256_set1_epi64x(kI64MaxLocal);
    const __m256i vwant = _mm256_set1_epi64x(want);
    __m256i acc = vmax;
    for (; i + 4 <= hi; i += 4) {
      const __m256i eq = _mm256_cmpeq_epi64(load_i32x4(state, i), vwant);
      const __m256i val =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lab + i));
      acc = min_epi64(acc, _mm256_blendv_epi8(vmax, val, eq));
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (std::int64_t v : lanes) {
      if (v < best) best = v;
    }
  }
  for (; i < hi; ++i) {
    if (state[i] == want && lab[i] < best) best = lab[i];
  }
  return best;
}

void avx2_i64_dual_apply(std::int64_t* lab, const std::int32_t* state,
                         std::size_t lo, std::size_t hi, std::int64_t d) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i vd = _mm256_set1_epi64x(d);
  std::size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256i st4 = load_i32x4(state, i);
    const __m256i sub = _mm256_and_si256(_mm256_cmpeq_epi64(st4, zero), vd);
    const __m256i add = _mm256_and_si256(_mm256_cmpeq_epi64(st4, one), vd);
    __m256i val = _mm256_loadu_si256(reinterpret_cast<__m256i*>(lab + i));
    val = _mm256_sub_epi64(_mm256_add_epi64(val, add), sub);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lab + i), val);
  }
  for (; i < hi; ++i) {
    if (state[i] == 0) {
      lab[i] -= d;
    } else if (state[i] == 1) {
      lab[i] += d;
    }
  }
}

std::int64_t avx2_i64_slack_bound(const std::int64_t* val,
                                  const std::int32_t* slack,
                                  const std::int32_t* st,
                                  const std::int32_t* s, std::size_t lo,
                                  std::size_t hi) {
  std::int64_t best = kI64MaxLocal;
  std::size_t i = lo;
  if (i + 4 <= hi) {
    const __m256i vmax = _mm256_set1_epi64x(kI64MaxLocal);
    const __m256i zero = _mm256_setzero_si256();
    const __m256i minus1 = _mm256_set1_epi64x(-1);
    const __m256i step = _mm256_set1_epi64x(4);
    __m256i idx = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<std::int64_t>(i)),
        _mm256_setr_epi64x(0, 1, 2, 3));
    __m256i acc = vmax;
    for (; i + 4 <= hi; i += 4, idx = _mm256_add_epi64(idx, step)) {
      const __m256i live = _mm256_andnot_si256(
          _mm256_cmpeq_epi64(load_i32x4(slack, i), zero),
          _mm256_cmpeq_epi64(load_i32x4(st, i), idx));
      const __m256i sv = load_i32x4(s, i);
      const __m256i free_m = _mm256_and_si256(live,
                                              _mm256_cmpeq_epi64(sv, minus1));
      const __m256i outer_m = _mm256_and_si256(live,
                                               _mm256_cmpeq_epi64(sv, zero));
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(val + i));
      // Contributing lanes are non-negative, so the logical shift is the
      // arithmetic halving of the scalar reference.
      const __m256i half = _mm256_srli_epi64(v, 1);
      __m256i cand = _mm256_blendv_epi8(vmax, v, free_m);
      cand = _mm256_blendv_epi8(cand, half, outer_m);
      acc = min_epi64(acc, cand);
    }
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    for (std::int64_t v : lanes) {
      if (v < best) best = v;
    }
  }
  for (; i < hi; ++i) {
    if (st[i] != static_cast<std::int32_t>(i) || slack[i] == 0) continue;
    std::int64_t c;
    if (s[i] == -1) {
      c = val[i];
    } else if (s[i] == 0) {
      c = val[i] >> 1;
    } else {
      continue;
    }
    if (c < best) best = c;
  }
  return best;
}

void avx2_i64_slack_shift(std::int64_t* val, const std::int32_t* slack,
                          const std::int32_t* st, const std::int32_t* s,
                          std::size_t lo, std::size_t hi, std::int64_t d) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i minus1 = _mm256_set1_epi64x(-1);
  const __m256i vd = _mm256_set1_epi64x(d);
  const __m256i vd2 = _mm256_set1_epi64x(2 * d);
  const __m256i step = _mm256_set1_epi64x(4);
  std::size_t i = lo;
  __m256i idx = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<std::int64_t>(i)),
      _mm256_setr_epi64x(0, 1, 2, 3));
  for (; i + 4 <= hi; i += 4, idx = _mm256_add_epi64(idx, step)) {
    const __m256i live = _mm256_andnot_si256(
        _mm256_cmpeq_epi64(load_i32x4(slack, i), zero),
        _mm256_cmpeq_epi64(load_i32x4(st, i), idx));
    const __m256i sv = load_i32x4(s, i);
    const __m256i sub1 = _mm256_and_si256(
        _mm256_and_si256(live, _mm256_cmpeq_epi64(sv, minus1)), vd);
    const __m256i sub2 = _mm256_and_si256(
        _mm256_and_si256(live, _mm256_cmpeq_epi64(sv, zero)), vd2);
    __m256i v = _mm256_loadu_si256(reinterpret_cast<__m256i*>(val + i));
    v = _mm256_sub_epi64(_mm256_sub_epi64(v, sub1), sub2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(val + i), v);
  }
  for (; i < hi; ++i) {
    if (st[i] != static_cast<std::int32_t>(i) || slack[i] == 0) continue;
    if (s[i] == -1) {
      val[i] -= d;
    } else if (s[i] == 0) {
      val[i] -= 2 * d;
    }
  }
}

std::size_t avx2_price_scan(const double* xs, const double* ys, std::size_t n,
                            double px, double py, double bound,
                            const double* adj, const std::uint32_t* ids,
                            std::uint32_t* out) {
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  const __m256d vbound = _mm256_set1_pd(bound);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = dist4(_mm256_loadu_pd(xs + i), _mm256_loadu_pd(ys + i),
                            vpx, vpy);
    const __m256d rhs = _mm256_sub_pd(vbound, _mm256_loadu_pd(adj + i));
    int mask = _mm256_movemask_pd(_mm256_cmp_pd(d, rhs, _CMP_LT_OQ));
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[count++] = ids[i + static_cast<std::size_t>(lane)];
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    const double dx = px - xs[i];
    const double dy = py - ys[i];
    const double d = std::sqrt(dx * dx + dy * dy);
    if (d < bound - adj[i]) out[count++] = ids[i];
  }
  return count;
}

}  // namespace

const KernelTable kAvx2Kernels = {
    avx2_distance_row,  avx2_argmin_masked, avx2_argmin_distance_masked,
    avx2_min_reduce,    avx2_max_reduce,    avx2_two_opt_scan,
    avx2_or_opt_scan,   avx2_select_within, avx2_crossing_min,
    avx2_advance_select_below,
    avx2_i64_min_where, avx2_i64_dual_apply, avx2_i64_slack_bound,
    avx2_i64_slack_shift, avx2_price_scan,
};

}  // namespace mcharge::simd::detail

#endif  // MCHARGE_SIMD_X86
