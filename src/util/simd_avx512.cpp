// AVX-512F (8 x double) backend. Compiled with -mavx512f
// -ffp-contract=off; see simd_kernels.h for the header-hygiene rule and
// simd_avx2.cpp for the lane-for-lane bitwise-identity reasoning, which
// applies unchanged at 8 lanes.
#include "util/simd_kernels.h"

#if MCHARGE_SIMD_X86

#include <immintrin.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace mcharge::simd::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline __m512d dist8(__m512d xs, __m512d ys, __m512d px, __m512d py) {
  const __m512d dx = _mm512_sub_pd(px, xs);
  const __m512d dy = _mm512_sub_pd(py, ys);
  return _mm512_sqrt_pd(
      _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy)));
}

/// Mask bit set where the skip byte is zero (lane live).
inline __mmask8 live_mask8(const unsigned char* skip, std::size_t i) {
  std::uint64_t packed;
  std::memcpy(&packed, skip + i, sizeof(packed));
  const __m512i bytes = _mm512_cvtepu8_epi64(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(&packed)));
  return _mm512_cmpeq_epi64_mask(bytes, _mm512_setzero_si512());
}

inline void reduce_argmin8(__m512d bestv, __m512i besti, ArgMin& best) {
  alignas(64) double vals[8];
  alignas(64) std::int64_t idx[8];
  _mm512_store_pd(vals, bestv);
  _mm512_store_si512(idx, besti);
  for (int l = 0; l < 8; ++l) {
    // Skip lanes that never saw a live element, and +inf lanes: the
    // scalar strict-< scan can never select an infinite value either.
    if (idx[l] < 0 || vals[l] == kInf) continue;
    const auto index = static_cast<std::size_t>(idx[l]);
    if (vals[l] < best.value ||
        (vals[l] == best.value && index < best.index)) {
      best.value = vals[l];
      best.index = index;
    }
  }
}

ArgMin avx512_argmin_masked(const double* values, const unsigned char* skip,
                            std::size_t n) {
  ArgMin best{kNpos, kInf};
  std::size_t i = 0;
  if (n >= 8) {
    const __m512d inf = _mm512_set1_pd(kInf);
    __m512d bestv = inf;
    __m512i besti = _mm512_set1_epi64(-1);
    __m512i idx = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
    const __m512i step = _mm512_set1_epi64(8);
    for (; i + 8 <= n; i += 8) {
      const __mmask8 live =
          skip != nullptr ? live_mask8(skip, i) : static_cast<__mmask8>(0xff);
      const __m512d val = _mm512_mask_loadu_pd(inf, live, values + i);
      const __mmask8 lt = _mm512_cmp_pd_mask(val, bestv, _CMP_LT_OQ);
      bestv = _mm512_mask_blend_pd(lt, bestv, val);
      besti = _mm512_mask_blend_epi64(lt, besti, idx);
      idx = _mm512_add_epi64(idx, step);
    }
    reduce_argmin8(bestv, besti, best);
  }
  for (; i < n; ++i) {
    if (skip != nullptr && skip[i]) continue;
    if (values[i] < best.value) {
      best.value = values[i];
      best.index = i;
    }
  }
  return best;
}

ArgMin avx512_argmin_distance_masked(const double* xs, const double* ys,
                                     std::size_t n, double px, double py,
                                     const unsigned char* skip) {
  ArgMin best{kNpos, kInf};
  std::size_t i = 0;
  if (n >= 8) {
    const __m512d inf = _mm512_set1_pd(kInf);
    const __m512d vpx = _mm512_set1_pd(px);
    const __m512d vpy = _mm512_set1_pd(py);
    __m512d bestv = inf;
    __m512i besti = _mm512_set1_epi64(-1);
    __m512i idx = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
    const __m512i step = _mm512_set1_epi64(8);
    for (; i + 8 <= n; i += 8) {
      __m512d val = dist8(_mm512_loadu_pd(xs + i), _mm512_loadu_pd(ys + i),
                          vpx, vpy);
      if (skip != nullptr) {
        val = _mm512_mask_blend_pd(live_mask8(skip, i), inf, val);
      }
      const __mmask8 lt = _mm512_cmp_pd_mask(val, bestv, _CMP_LT_OQ);
      bestv = _mm512_mask_blend_pd(lt, bestv, val);
      besti = _mm512_mask_blend_epi64(lt, besti, idx);
      idx = _mm512_add_epi64(idx, step);
    }
    reduce_argmin8(bestv, besti, best);
  }
  for (; i < n; ++i) {
    if (skip != nullptr && skip[i]) continue;
    const double dx = px - xs[i];
    const double dy = py - ys[i];
    const double d = std::sqrt(dx * dx + dy * dy);
    if (d < best.value) {
      best.value = d;
      best.index = i;
    }
  }
  return best;
}

void avx512_distance_row(const double* xs, const double* ys, std::size_t n,
                         double px, double py, double* out) {
  const __m512d vpx = _mm512_set1_pd(px);
  const __m512d vpy = _mm512_set1_pd(py);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(out + i, dist8(_mm512_loadu_pd(xs + i),
                                    _mm512_loadu_pd(ys + i), vpx, vpy));
  }
  for (; i < n; ++i) {
    const double dx = px - xs[i];
    const double dy = py - ys[i];
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

double avx512_min_reduce(const double* values, std::size_t n) {
  double best = kInf;
  std::size_t i = 0;
  if (n >= 8) {
    __m512d acc = _mm512_set1_pd(kInf);
    for (; i + 8 <= n; i += 8) {
      acc = _mm512_min_pd(acc, _mm512_loadu_pd(values + i));
    }
    best = _mm512_reduce_min_pd(acc);
  }
  for (; i < n; ++i) {
    if (values[i] < best) best = values[i];
  }
  return best;
}

double avx512_max_reduce(const double* values, std::size_t n) {
  double best = -kInf;
  std::size_t i = 0;
  if (n >= 8) {
    __m512d acc = _mm512_set1_pd(-kInf);
    for (; i + 8 <= n; i += 8) {
      acc = _mm512_max_pd(acc, _mm512_loadu_pd(values + i));
    }
    best = _mm512_reduce_max_pd(acc);
  }
  for (; i < n; ++i) {
    if (values[i] > best) best = values[i];
  }
  return best;
}

std::size_t avx512_two_opt_scan(const double* px, const double* py,
                                const double* tc, std::size_t j_begin,
                                std::size_t j_end, double ax, double ay,
                                double bx, double by, double speed,
                                double base, double min_gain) {
  const __m512d vax = _mm512_set1_pd(ax), vay = _mm512_set1_pd(ay);
  const __m512d vbx = _mm512_set1_pd(bx), vby = _mm512_set1_pd(by);
  const __m512d vspeed = _mm512_set1_pd(speed);
  const __m512d vbase = _mm512_set1_pd(base);
  const __m512d vgain = _mm512_set1_pd(min_gain);
  std::size_t j = j_begin;
  for (; j + 8 <= j_end; j += 8) {
    const __m512d jx = _mm512_loadu_pd(px + j);
    const __m512d jy = _mm512_loadu_pd(py + j);
    const __m512d j1x = _mm512_loadu_pd(px + j + 1);
    const __m512d j1y = _mm512_loadu_pd(py + j + 1);
    const __m512d da = dist8(jx, jy, vax, vay);
    const __m512d db = dist8(j1x, j1y, vbx, vby);
    const __m512d after =
        _mm512_add_pd(_mm512_div_pd(da, vspeed), _mm512_div_pd(db, vspeed));
    const __m512d before = _mm512_add_pd(vbase, _mm512_loadu_pd(tc + j));
    const __m512d rhs = _mm512_sub_pd(before, vgain);
    const __mmask8 mask = _mm512_cmp_pd_mask(after, rhs, _CMP_LT_OQ);
    if (mask != 0) {
      return j + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; j < j_end; ++j) {
    const double dax = ax - px[j];
    const double day = ay - py[j];
    const double da = std::sqrt(dax * dax + day * day);
    const double dbx = bx - px[j + 1];
    const double dby = by - py[j + 1];
    const double db = std::sqrt(dbx * dbx + dby * dby);
    const double after = da / speed + db / speed;
    const double before = base + tc[j];
    if (after < before - min_gain) return j;
  }
  return kNpos;
}

std::size_t avx512_or_opt_scan(const double* px, const double* py,
                               const double* tc, std::size_t k_begin,
                               std::size_t k_end, double ix, double iy,
                               double ex, double ey, double speed,
                               double threshold) {
  const __m512d vix = _mm512_set1_pd(ix), viy = _mm512_set1_pd(iy);
  const __m512d vex = _mm512_set1_pd(ex), vey = _mm512_set1_pd(ey);
  const __m512d vspeed = _mm512_set1_pd(speed);
  const __m512d vthresh = _mm512_set1_pd(threshold);
  std::size_t k = k_begin;
  for (; k + 8 <= k_end; k += 8) {
    const __m512d kx = _mm512_loadu_pd(px + k);
    const __m512d ky = _mm512_loadu_pd(py + k);
    const __m512d k1x = _mm512_loadu_pd(px + k + 1);
    const __m512d k1y = _mm512_loadu_pd(py + k + 1);
    const __m512d dax = _mm512_sub_pd(kx, vix);
    const __m512d day = _mm512_sub_pd(ky, viy);
    const __m512d da = _mm512_sqrt_pd(
        _mm512_add_pd(_mm512_mul_pd(dax, dax), _mm512_mul_pd(day, day)));
    const __m512d db = dist8(k1x, k1y, vex, vey);
    const __m512d cost = _mm512_sub_pd(
        _mm512_add_pd(_mm512_div_pd(da, vspeed), _mm512_div_pd(db, vspeed)),
        _mm512_loadu_pd(tc + k));
    const __mmask8 mask = _mm512_cmp_pd_mask(cost, vthresh, _CMP_LT_OQ);
    if (mask != 0) {
      return k + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  for (; k < k_end; ++k) {
    const double dax = px[k] - ix;
    const double day = py[k] - iy;
    const double da = std::sqrt(dax * dax + day * day);
    const double dbx = ex - px[k + 1];
    const double dby = ey - py[k + 1];
    const double db = std::sqrt(dbx * dbx + dby * dby);
    const double cost = da / speed + db / speed - tc[k];
    if (cost < threshold) return k;
  }
  return kNpos;
}

std::size_t avx512_select_within(const double* xs, const double* ys,
                                 std::size_t n, double cx, double cy,
                                 double r2, const std::uint32_t* ids,
                                 std::uint32_t* out) {
  const __m512d vcx = _mm512_set1_pd(cx);
  const __m512d vcy = _mm512_set1_pd(cy);
  const __m512d vr2 = _mm512_set1_pd(r2);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d dx = _mm512_sub_pd(_mm512_loadu_pd(xs + i), vcx);
    const __m512d dy = _mm512_sub_pd(_mm512_loadu_pd(ys + i), vcy);
    const __m512d d2 =
        _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy));
    unsigned mask = _mm512_cmp_pd_mask(d2, vr2, _CMP_LE_OQ);
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[count++] = ids[i + static_cast<std::size_t>(lane)];
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    const double dx = xs[i] - cx;
    const double dy = ys[i] - cy;
    if (dx * dx + dy * dy <= r2) out[count++] = ids[i];
  }
  return count;
}

double avx512_crossing_min(const double* level, const double* as_of,
                           const double* draw, std::size_t n,
                           double threshold, double eps) {
  double best = kInf;
  std::size_t i = 0;
  if (n >= 8) {
    const __m512d inf = _mm512_set1_pd(kInf);
    const __m512d zero = _mm512_setzero_pd();
    const __m512d vthr = _mm512_set1_pd(threshold);
    const __m512d veps = _mm512_set1_pd(eps);
    __m512d acc = inf;
    for (; i + 8 <= n; i += 8) {
      const __m512d lvl = _mm512_loadu_pd(level + i);
      const __m512d at = _mm512_loadu_pd(as_of + i);
      const __m512d drw = _mm512_loadu_pd(draw + i);
      // as_of + (level - threshold) / draw + eps, with the scalar's
      // operation order (two separate adds, no FMA).
      const __m512d c0 = _mm512_add_pd(
          _mm512_add_pd(at, _mm512_div_pd(_mm512_sub_pd(lvl, vthr), drw)),
          veps);
      // draw <= 0 lanes never cross; level < threshold lanes cross "now".
      // Both blends run before the min so no NaN (0/0 above) survives.
      const __mmask8 nodraw = _mm512_cmp_pd_mask(drw, zero, _CMP_LE_OQ);
      const __mmask8 below = _mm512_cmp_pd_mask(lvl, vthr, _CMP_LT_OQ);
      __m512d c = _mm512_mask_blend_pd(nodraw, c0, inf);
      c = _mm512_mask_blend_pd(below, c, at);
      acc = _mm512_min_pd(acc, c);
    }
    best = _mm512_reduce_min_pd(acc);
  }
  for (; i < n; ++i) {
    double c;
    if (level[i] < threshold) {
      c = as_of[i];
    } else if (draw[i] <= 0.0) {
      c = kInf;
    } else {
      c = as_of[i] + (level[i] - threshold) / draw[i] + eps;
    }
    if (c < best) best = c;
  }
  return best;
}

std::size_t avx512_advance_select_below(double* level, double* as_of,
                                        double* dead_since,
                                        const double* draw, std::size_t n,
                                        double t, double threshold,
                                        const std::uint32_t* ids,
                                        std::uint32_t* out) {
  std::size_t count = 0;
  std::size_t i = 0;
  if (n >= 8) {
    const __m512d inf = _mm512_set1_pd(kInf);
    const __m512d zero = _mm512_setzero_pd();
    const __m512d vt = _mm512_set1_pd(t);
    const __m512d vthr = _mm512_set1_pd(threshold);
    for (; i + 8 <= n; i += 8) {
      const __m512d lvl = _mm512_loadu_pd(level + i);
      const __m512d at = _mm512_loadu_pd(as_of + i);
      const __m512d drw = _mm512_loadu_pd(draw + i);
      const __m512d dsi = _mm512_loadu_pd(dead_since + i);
      const __mmask8 adv = _mm512_cmp_pd_mask(vt, at, _CMP_GT_OQ);
      const __m512d drained = _mm512_mul_pd(drw, _mm512_sub_pd(vt, at));
      // Death: the drain empties the battery on an advancing lane with a
      // positive draw. Division garbage in non-dead lanes is blended away.
      const __mmask8 dead = _mm512_cmp_pd_mask(drained, lvl, _CMP_GE_OQ) &
                            _mm512_cmp_pd_mask(drw, zero, _CMP_GT_OQ) & adv;
      const __mmask8 newly =
          dead & _mm512_cmp_pd_mask(dsi, inf, _CMP_EQ_OQ);
      const __m512d death_t = _mm512_add_pd(at, _mm512_div_pd(lvl, drw));
      _mm512_storeu_pd(dead_since + i,
                       _mm512_mask_blend_pd(newly, dsi, death_t));
      __m512d new_lvl =
          _mm512_mask_blend_pd(dead, _mm512_sub_pd(lvl, drained), zero);
      new_lvl = _mm512_mask_blend_pd(adv, lvl, new_lvl);
      _mm512_storeu_pd(level + i, new_lvl);
      _mm512_storeu_pd(as_of + i, _mm512_mask_blend_pd(adv, at, vt));
      unsigned mask = _mm512_cmp_pd_mask(new_lvl, vthr, _CMP_LT_OQ);
      while (mask != 0) {
        const int lane = __builtin_ctz(mask);
        out[count++] = ids[i + static_cast<std::size_t>(lane)];
        mask &= mask - 1;
      }
    }
  }
  for (; i < n; ++i) {
    if (t > as_of[i]) {
      const double drained = draw[i] * (t - as_of[i]);
      if (drained >= level[i] && draw[i] > 0.0) {
        if (dead_since[i] == kInf) {
          dead_since[i] = as_of[i] + level[i] / draw[i];
        }
        level[i] = 0.0;
      } else {
        level[i] -= drained;
      }
      as_of[i] = t;
    }
    if (level[i] < threshold) out[count++] = ids[i];
  }
  return count;
}

// --- Blossom dual-adjustment kernels (all-integer, trivially bitwise) ----

constexpr std::int64_t kI64MaxLocal = INT64_MAX;

/// Widens 8 x int32 at p + i to 8 x int64 lanes.
inline __m512i load_i32x8(const std::int32_t* p, std::size_t i) {
  return _mm512_cvtepi32_epi64(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)));
}

std::int64_t avx512_i64_min_where(const std::int64_t* lab,
                                  const std::int32_t* state,
                                  std::int32_t want, std::size_t lo,
                                  std::size_t hi) {
  std::int64_t best = kI64MaxLocal;
  std::size_t i = lo;
  if (i + 8 <= hi) {
    const __m512i vwant = _mm512_set1_epi64(want);
    __m512i acc = _mm512_set1_epi64(kI64MaxLocal);
    for (; i + 8 <= hi; i += 8) {
      const __mmask8 m = _mm512_cmpeq_epi64_mask(load_i32x8(state, i), vwant);
      const __m512i val =
          _mm512_loadu_si512(reinterpret_cast<const void*>(lab + i));
      acc = _mm512_mask_min_epi64(acc, m, acc, val);
    }
    best = _mm512_reduce_min_epi64(acc);
  }
  for (; i < hi; ++i) {
    if (state[i] == want && lab[i] < best) best = lab[i];
  }
  return best;
}

void avx512_i64_dual_apply(std::int64_t* lab, const std::int32_t* state,
                           std::size_t lo, std::size_t hi, std::int64_t d) {
  const __m512i zero = _mm512_setzero_si512();
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i vd = _mm512_set1_epi64(d);
  std::size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m512i st8 = load_i32x8(state, i);
    const __mmask8 m0 = _mm512_cmpeq_epi64_mask(st8, zero);
    const __mmask8 m1 = _mm512_cmpeq_epi64_mask(st8, one);
    __m512i val = _mm512_loadu_si512(reinterpret_cast<void*>(lab + i));
    val = _mm512_mask_sub_epi64(val, m0, val, vd);
    val = _mm512_mask_add_epi64(val, m1, val, vd);
    _mm512_storeu_si512(reinterpret_cast<void*>(lab + i), val);
  }
  for (; i < hi; ++i) {
    if (state[i] == 0) {
      lab[i] -= d;
    } else if (state[i] == 1) {
      lab[i] += d;
    }
  }
}

std::int64_t avx512_i64_slack_bound(const std::int64_t* val,
                                    const std::int32_t* slack,
                                    const std::int32_t* st,
                                    const std::int32_t* s, std::size_t lo,
                                    std::size_t hi) {
  std::int64_t best = kI64MaxLocal;
  std::size_t i = lo;
  if (i + 8 <= hi) {
    const __m512i zero = _mm512_setzero_si512();
    const __m512i minus1 = _mm512_set1_epi64(-1);
    const __m512i step = _mm512_set1_epi64(8);
    __m512i idx = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<std::int64_t>(i)),
        _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
    __m512i acc = _mm512_set1_epi64(kI64MaxLocal);
    for (; i + 8 <= hi; i += 8, idx = _mm512_add_epi64(idx, step)) {
      const __mmask8 live =
          _mm512_cmpeq_epi64_mask(load_i32x8(st, i), idx) &
          _mm512_cmpneq_epi64_mask(load_i32x8(slack, i), zero);
      const __m512i sv = load_i32x8(s, i);
      const __mmask8 free_m = live & _mm512_cmpeq_epi64_mask(sv, minus1);
      const __mmask8 outer_m = live & _mm512_cmpeq_epi64_mask(sv, zero);
      const __m512i v =
          _mm512_loadu_si512(reinterpret_cast<const void*>(val + i));
      // Contributing lanes are non-negative, so the logical shift is the
      // arithmetic halving of the scalar reference.
      acc = _mm512_mask_min_epi64(acc, free_m, acc, v);
      acc = _mm512_mask_min_epi64(acc, outer_m, acc, _mm512_srli_epi64(v, 1));
    }
    best = _mm512_reduce_min_epi64(acc);
  }
  for (; i < hi; ++i) {
    if (st[i] != static_cast<std::int32_t>(i) || slack[i] == 0) continue;
    std::int64_t c;
    if (s[i] == -1) {
      c = val[i];
    } else if (s[i] == 0) {
      c = val[i] >> 1;
    } else {
      continue;
    }
    if (c < best) best = c;
  }
  return best;
}

void avx512_i64_slack_shift(std::int64_t* val, const std::int32_t* slack,
                            const std::int32_t* st, const std::int32_t* s,
                            std::size_t lo, std::size_t hi, std::int64_t d) {
  const __m512i zero = _mm512_setzero_si512();
  const __m512i minus1 = _mm512_set1_epi64(-1);
  const __m512i vd = _mm512_set1_epi64(d);
  const __m512i vd2 = _mm512_set1_epi64(2 * d);
  const __m512i step = _mm512_set1_epi64(8);
  std::size_t i = lo;
  __m512i idx = _mm512_add_epi64(
      _mm512_set1_epi64(static_cast<std::int64_t>(i)),
      _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
  for (; i + 8 <= hi; i += 8, idx = _mm512_add_epi64(idx, step)) {
    const __mmask8 live =
        _mm512_cmpeq_epi64_mask(load_i32x8(st, i), idx) &
        _mm512_cmpneq_epi64_mask(load_i32x8(slack, i), zero);
    const __m512i sv = load_i32x8(s, i);
    const __mmask8 free_m = live & _mm512_cmpeq_epi64_mask(sv, minus1);
    const __mmask8 outer_m = live & _mm512_cmpeq_epi64_mask(sv, zero);
    __m512i v = _mm512_loadu_si512(reinterpret_cast<void*>(val + i));
    v = _mm512_mask_sub_epi64(v, free_m, v, vd);
    v = _mm512_mask_sub_epi64(v, outer_m, v, vd2);
    _mm512_storeu_si512(reinterpret_cast<void*>(val + i), v);
  }
  for (; i < hi; ++i) {
    if (st[i] != static_cast<std::int32_t>(i) || slack[i] == 0) continue;
    if (s[i] == -1) {
      val[i] -= d;
    } else if (s[i] == 0) {
      val[i] -= 2 * d;
    }
  }
}

std::size_t avx512_price_scan(const double* xs, const double* ys,
                              std::size_t n, double px, double py,
                              double bound, const double* adj,
                              const std::uint32_t* ids, std::uint32_t* out) {
  const __m512d vpx = _mm512_set1_pd(px);
  const __m512d vpy = _mm512_set1_pd(py);
  const __m512d vbound = _mm512_set1_pd(bound);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d = dist8(_mm512_loadu_pd(xs + i), _mm512_loadu_pd(ys + i),
                            vpx, vpy);
    const __m512d rhs = _mm512_sub_pd(vbound, _mm512_loadu_pd(adj + i));
    unsigned mask = _mm512_cmp_pd_mask(d, rhs, _CMP_LT_OQ);
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      out[count++] = ids[i + static_cast<std::size_t>(lane)];
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    const double dx = px - xs[i];
    const double dy = py - ys[i];
    const double d = std::sqrt(dx * dx + dy * dy);
    if (d < bound - adj[i]) out[count++] = ids[i];
  }
  return count;
}

}  // namespace

const KernelTable kAvx512Kernels = {
    avx512_distance_row,  avx512_argmin_masked,
    avx512_argmin_distance_masked,
    avx512_min_reduce,    avx512_max_reduce,    avx512_two_opt_scan,
    avx512_or_opt_scan,   avx512_select_within, avx512_crossing_min,
    avx512_advance_select_below,
    avx512_i64_min_where, avx512_i64_dual_apply, avx512_i64_slack_bound,
    avx512_i64_slack_shift, avx512_price_scan,
};

}  // namespace mcharge::simd::detail

#endif  // MCHARGE_SIMD_X86
