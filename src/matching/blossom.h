// Exact minimum-weight perfect matching on complete graphs via the
// O(n^3) weighted blossom algorithm (Galil's primal-dual scheme with lazy
// slack maintenance, the classic formulation used throughout the
// literature).
//
// Internally the solver maximizes total weight with integer arithmetic:
// the caller's real-valued costs are affinely transformed (shift + scale
// + negate) into positive integers, so the result is exact for the scaled
// weights — with the default resolution of 2^20 steps over the cost range,
// the matching it returns is optimal to within ~1e-6 of the true optimum
// on typical geometric inputs, and the tests verify it against the exact
// bitmask DP on every instance small enough to cross-check.
//
// Complexity O(n^3); practical well beyond the odd-vertex sets Christofides
// produces at this project's scales (n <= ~700).
#pragma once

#include <cstdint>

#include "matching/matching.h"

namespace mcharge::matching {

/// Exact blossom solver. Requires even n > 0 handled by caller (n == 0
/// returns empty). Complete graph; weights from `weight` (any real
/// values).
Matching blossom_min_weight_matching(std::size_t n, const WeightFn& weight);

/// Resolution used when quantizing real weights to integers.
inline constexpr std::int64_t kBlossomResolution = 1 << 20;

}  // namespace mcharge::matching
