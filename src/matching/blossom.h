// Exact minimum-weight perfect matching via the O(n^3) weighted blossom
// algorithm (Galil's primal-dual scheme with lazy slack maintenance, the
// classic formulation used throughout the literature).
//
// Two engines share the same templated primal-dual core
// (blossom_core.h), differing only in how edges are supplied:
//
//  * Dense: every pair is materialized into an (n+1)^2 weight matrix.
//    Simple and exact, but O(n^2) memory and O(n^3) time make it the
//    right choice only up to a few hundred vertices.
//
//  * Sparse price-and-repair: an exact solve on a k-nearest-neighbor
//    candidate graph, followed by a SIMD-accelerated pricing pass that
//    scans all absent pairs against the solver's final duals and
//    re-solves with any violated edge added, until complementary
//    slackness holds on the COMPLETE graph. The result is certified
//    optimal for the same integer objective the dense engine solves —
//    not a heuristic — while doing (empirically) a small constant number
//    of near-linear-size solves.
//
// Internally both maximize total integer "profit": real costs are
// quantized through the shared perturbed quantizer (quantize.h), whose
// pseudo-random sub-integer tie perturbation makes the integer optimum
// (generically) unique — so the two engines return identical matchings,
// which the differential tests assert. With at least 2^20 quantization
// steps over the cost range the matching is optimal to within ~1e-6 of
// the true real-valued optimum on typical geometric inputs, and the
// tests verify it against the exact bitmask DP on every instance small
// enough to cross-check.
//
// Complexity: dense O(n^3); sparse roughly O(n * k * sqrt(n) * alpha)
// per repair round in practice — comfortably fast at the odd-vertex sets
// Christofides produces at this project's scales (n up to ~4096).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "matching/matching.h"

namespace mcharge::matching {

/// Exact blossom solver on an arbitrary complete weighted graph. Requires
/// even n (n == 0 returns empty); weights from `weight` (any real
/// values). Dense: O(n^2) memory.
Matching blossom_min_weight_matching(std::size_t n, const WeightFn& weight);

/// Dense-engine exact matching on Euclidean points (even count). Uses the
/// shared perturbed quantizer, so the result is bit-identical to the
/// sparse engine's.
Matching dense_blossom_euclidean_matching(const std::vector<geom::Point>& pts);

/// Sparse price-and-repair exact matching on Euclidean points (even
/// count). Optimal for the same quantized objective as the dense engine
/// (certified by a complete-graph dual feasibility check), at a small
/// fraction of the dense cost for large n. `knn` is the candidate-graph
/// neighbor count (>= 1; 8 is a good default).
Matching sparse_blossom_euclidean_matching(const std::vector<geom::Point>& pts,
                                           int knn = 8);

/// Guaranteed minimum resolution when quantizing real weights to
/// integers. The geometric engines use an adaptive resolution that is
/// never below this (see matching/quantize.h).
inline constexpr std::int64_t kBlossomResolution = 1 << 20;

}  // namespace mcharge::matching
