#include "matching/blossom.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "matching/blossom_core.h"
#include "matching/quantize.h"
#include "util/assert.h"

namespace mcharge::matching {

namespace detail {

BlossomArena& thread_arena() {
  static thread_local BlossomArena arena;
  return arena;
}

}  // namespace detail

namespace {

Matching extract_matching(std::size_t n, const auto& core) {
  Matching result;
  result.reserve(n / 2);
  for (std::uint32_t v = 0; v < n; ++v) {
    const int mate = core.partner(static_cast<int>(v) + 1);
    MCHARGE_ASSERT(mate >= 1, "blossom did not produce a perfect matching");
    const auto m = static_cast<std::uint32_t>(mate - 1);
    if (v < m) result.emplace_back(v, m);
  }
  MCHARGE_ASSERT(is_perfect_matching(n, result),
                 "blossom produced a non-perfect matching");
  return result;
}

}  // namespace

Matching blossom_min_weight_matching(std::size_t n, const WeightFn& weight) {
  MCHARGE_ASSERT(n % 2 == 0, "perfect matching requires even n");
  if (n == 0) return {};
  if (n == 2) return {{0, 1}};

  // Quantize the costs onto [1, kBlossomResolution + 1] and negate into
  // "profits" so that maximizing profit minimizes cost; all profits are
  // kept strictly positive so the maximum-weight matching is perfect.
  // The WeightFn is evaluated exactly once per pair, into the dense
  // store: the O(n^3) core itself never touches a std::function.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      const double w = weight(u, v);
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
  }
  const double span = hi > lo ? hi - lo : 1.0;
  const double scale = static_cast<double>(kBlossomResolution) / span;

  detail::BlossomArena& arena = detail::thread_arena();
  detail::DenseStore store(static_cast<int>(n), arena);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      const auto cost =
          static_cast<std::int64_t>(std::llround((weight(u, v) - lo) * scale));
      const std::int64_t profit = kBlossomResolution + 1 - cost;
      store.set2(static_cast<int>(u) + 1, static_cast<int>(v) + 1, 2 * profit);
    }
  }
  detail::BlossomCore<detail::DenseStore> core(static_cast<int>(n), store,
                                              arena);
  core.solve();
  return extract_matching(n, core);
}

Matching dense_blossom_euclidean_matching(const std::vector<geom::Point>& pts) {
  const std::size_t n = pts.size();
  MCHARGE_ASSERT(n % 2 == 0, "perfect matching requires even n");
  if (n == 0) return {};
  if (n == 2) return {{0, 1}};

  const detail::BlossomQuantizer qz = detail::make_point_quantizer(pts);
  detail::BlossomArena& arena = detail::thread_arena();
  detail::DenseStore store(static_cast<int>(n), arena);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      const std::int64_t profit =
          qz.profit(geom::distance(pts[u], pts[v]), u, v);
      store.set2(static_cast<int>(u) + 1, static_cast<int>(v) + 1, 2 * profit);
    }
  }
  detail::BlossomCore<detail::DenseStore> core(static_cast<int>(n), store,
                                              arena);
  core.solve();
  return extract_matching(n, core);
}

}  // namespace mcharge::matching
