#include "matching/blossom.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "util/assert.h"

namespace mcharge::matching {

namespace {

// Primal-dual weighted blossom algorithm (maximum weight matching). All
// vertex ids are 1-based; ids in (n, n_x] are contracted blossoms. Edge
// weights are stored doubled so that all dual values stay integral.
class Blossom {
 public:
  explicit Blossom(int n)
      : n_(n),
        cap_(2 * n + 1),
        g_(cap_ * cap_),
        w_(static_cast<std::size_t>(cap_) * cap_, 0),
        lab_(cap_, 0),
        match_(cap_, 0),
        slack_(cap_, 0),
        st_(cap_, 0),
        pa_(cap_, 0),
        s_(cap_, -1),
        vis_(cap_, 0),
        from_(cap_, std::vector<int>(n + 1, 0)),
        flower_(cap_) {
    for (int u = 1; u <= 2 * n_; ++u) {
      for (int v = 1; v <= 2 * n_; ++v) {
        edge(u, v) = Edge{u, v};
      }
    }
  }

  void set_weight(int u, int v, std::int64_t w) {
    wt(u, v) = 2 * w;
    wt(v, u) = 2 * w;
  }

  /// Runs the solver; afterwards partner(v) gives v's mate (1-based).
  void solve() {
    n_x_ = n_;
    std::int64_t w_max = 0;
    for (int u = 1; u <= n_; ++u) {
      st_[u] = u;
      from_[u][u] = u;
      for (int v = 1; v <= n_; ++v) {
        w_max = std::max(w_max, wt(u, v));
      }
    }
    for (int u = 1; u <= n_; ++u) lab_[u] = w_max;
    while (matching_phase()) {
    }
  }

  int partner(int v) const { return match_[v]; }

 private:
  // Edge endpoints and weights live in separate arrays: the dual-adjustment
  // queue scan touches only the weight row for a vertex, and splitting the
  // 16-byte {u, v, w} record halves its memory traffic. The weight of the
  // (u, v) slot is always wt(u, v); when add_blossom copies an Edge record
  // wholesale, the matching w_ slot is copied alongside it.
  struct Edge {
    int u = 0, v = 0;
  };

  Edge& edge(int u, int v) { return g_[u * cap_ + v]; }
  const Edge& edge(int u, int v) const { return g_[u * cap_ + v]; }

  std::int64_t& wt(int u, int v) {
    return w_[static_cast<std::size_t>(u) * cap_ + v];
  }
  std::int64_t wt(int u, int v) const {
    return w_[static_cast<std::size_t>(u) * cap_ + v];
  }

  std::int64_t e_delta(const Edge& e) const {
    return lab_[e.u] + lab_[e.v] - wt(e.u, e.v);
  }

  void update_slack(int u, int x) {
    if (!slack_[x] || e_delta(edge(u, x)) < e_delta(edge(slack_[x], x))) {
      slack_[x] = u;
    }
  }

  void set_slack(int x) {
    slack_[x] = 0;
    for (int u = 1; u <= n_; ++u) {
      if (wt(u, x) > 0 && st_[u] != x && s_[st_[u]] == 0) {
        update_slack(u, x);
      }
    }
  }

  void q_push(int x) {
    if (x <= n_) {
      queue_.push_back(x);
    } else {
      for (int y : flower_[x]) q_push(y);
    }
  }

  void set_st(int x, int b) {
    st_[x] = b;
    if (x > n_) {
      for (int y : flower_[x]) set_st(y, b);
    }
  }

  int get_pr(int b, int xr) {
    const auto it = std::find(flower_[b].begin(), flower_[b].end(), xr);
    int pr = static_cast<int>(it - flower_[b].begin());
    if (pr % 2 == 1) {
      std::reverse(flower_[b].begin() + 1, flower_[b].end());
      return static_cast<int>(flower_[b].size()) - pr;
    }
    return pr;
  }

  void set_match(int u, int v) {
    Edge& e = edge(u, v);
    match_[u] = e.v;
    if (u > n_) {
      const int xr = from_[u][e.u];
      const int pr = get_pr(u, xr);
      for (int i = 0; i < pr; ++i) {
        set_match(flower_[u][i], flower_[u][i ^ 1]);
      }
      set_match(xr, v);
      std::rotate(flower_[u].begin(), flower_[u].begin() + pr,
                  flower_[u].end());
    }
  }

  void augment(int u, int v) {
    for (;;) {
      const int xnv = st_[match_[u]];
      set_match(u, v);
      if (!xnv) return;
      set_match(xnv, st_[pa_[xnv]]);
      u = st_[pa_[xnv]];
      v = xnv;
    }
  }

  int get_lca(int u, int v) {
    for (++timestamp_; u || v; std::swap(u, v)) {
      if (u == 0) continue;
      if (vis_[u] == timestamp_) return u;
      vis_[u] = timestamp_;
      u = st_[match_[u]];
      if (u) u = st_[pa_[u]];
    }
    return 0;
  }

  void add_blossom(int u, int lca, int v) {
    int b = n_ + 1;
    while (b <= n_x_ && st_[b]) ++b;
    if (b > n_x_) ++n_x_;
    lab_[b] = 0;
    s_[b] = 0;
    match_[b] = match_[lca];
    flower_[b].clear();
    flower_[b].push_back(lca);
    for (int x = u, y; x != lca; x = st_[pa_[y]]) {
      flower_[b].push_back(x);
      flower_[b].push_back(y = st_[match_[x]]);
      q_push(y);
    }
    std::reverse(flower_[b].begin() + 1, flower_[b].end());
    for (int x = v, y; x != lca; x = st_[pa_[y]]) {
      flower_[b].push_back(x);
      flower_[b].push_back(y = st_[match_[x]]);
      q_push(y);
    }
    set_st(b, b);
    for (int x = 1; x <= n_x_; ++x) {
      wt(b, x) = 0;
      wt(x, b) = 0;
    }
    for (int x = 1; x <= n_; ++x) from_[b][x] = 0;
    for (int xs : flower_[b]) {
      for (int x = 1; x <= n_x_; ++x) {
        if (wt(b, x) == 0 || e_delta(edge(xs, x)) < e_delta(edge(b, x))) {
          edge(b, x) = edge(xs, x);
          edge(x, b) = edge(x, xs);
          wt(b, x) = wt(xs, x);
          wt(x, b) = wt(x, xs);
        }
      }
      for (int x = 1; x <= n_; ++x) {
        if (from_[xs][x]) from_[b][x] = xs;
      }
    }
    set_slack(b);
  }

  void expand_blossom(int b) {
    for (int x : flower_[b]) set_st(x, x);
    const int xr = from_[b][edge(b, pa_[b]).u];
    const int pr = get_pr(b, xr);
    for (int i = 0; i < pr; i += 2) {
      const int xs = flower_[b][i];
      const int xns = flower_[b][i + 1];
      pa_[xs] = edge(xns, xs).u;
      s_[xs] = 1;
      s_[xns] = 0;
      slack_[xs] = 0;
      set_slack(xns);
      q_push(xns);
    }
    s_[xr] = 1;
    pa_[xr] = pa_[b];
    for (int i = pr + 1; i < static_cast<int>(flower_[b].size()); ++i) {
      const int xs = flower_[b][i];
      s_[xs] = -1;
      set_slack(xs);
    }
    st_[b] = 0;
  }

  bool on_found_edge(const Edge& e) {
    const int u = st_[e.u];
    const int v = st_[e.v];
    if (s_[v] == -1) {
      pa_[v] = e.u;
      s_[v] = 1;
      const int nu = st_[match_[v]];
      slack_[v] = 0;
      slack_[nu] = 0;
      s_[nu] = 0;
      q_push(nu);
    } else if (s_[v] == 0) {
      const int lca = get_lca(u, v);
      if (!lca) {
        augment(u, v);
        augment(v, u);
        return true;
      }
      add_blossom(u, lca, v);
    }
    return false;
  }

  bool matching_phase() {
    std::fill(s_.begin(), s_.begin() + n_x_ + 1, -1);
    std::fill(slack_.begin(), slack_.begin() + n_x_ + 1, 0);
    queue_.clear();
    bool any_free = false;
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && !match_[x]) {
        pa_[x] = 0;
        s_[x] = 0;
        q_push(x);
        any_free = true;
      }
    }
    if (!any_free) return false;

    // Safety: a correct run needs O(n^2) dual adjustments per phase; a
    // runaway loop means a bug, so fail loudly instead of hanging.
    const int max_adjustments = 64 * (n_ + 2) * (n_ + 2);
    for (int guard = 0; guard <= max_adjustments; ++guard) {
      MCHARGE_ASSERT(guard < max_adjustments,
                     "blossom: dual adjustment loop did not terminate");
      while (!queue_.empty()) {
        const int u = queue_.front();
        queue_.pop_front();
        if (s_[st_[u]] == 1) continue;
        // u is a base vertex (q_push expands blossoms), so edge(u, v) for
        // v <= n_ is never overwritten and e_delta reduces to the direct
        // label/weight expression on the row of w_.
        const std::int64_t* wrow = &w_[static_cast<std::size_t>(u) * cap_];
        const std::int64_t lab_u = lab_[u];
        for (int v = 1; v <= n_; ++v) {
          if (wrow[v] > 0 && st_[u] != st_[v]) {
            if (lab_u + lab_[v] - wrow[v] == 0) {
              if (on_found_edge(edge(u, v))) return true;
            } else {
              update_slack(u, st_[v]);
            }
          }
        }
      }

      std::int64_t d = std::numeric_limits<std::int64_t>::max();
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1) d = std::min(d, lab_[b] / 2);
      }
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x]) {
          if (s_[x] == -1) {
            d = std::min(d, e_delta(edge(slack_[x], x)));
          } else if (s_[x] == 0) {
            d = std::min(d, e_delta(edge(slack_[x], x)) / 2);
          }
        }
      }
      MCHARGE_ASSERT(d != std::numeric_limits<std::int64_t>::max(),
                     "blossom: no dual adjustment available");

      for (int u = 1; u <= n_; ++u) {
        if (s_[st_[u]] == 0) {
          if (lab_[u] <= d) return false;  // dual exhausted: no augmenting
          lab_[u] -= d;
        } else if (s_[st_[u]] == 1) {
          lab_[u] += d;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b) {
          if (s_[b] == 0) {
            lab_[b] += 2 * d;
          } else if (s_[b] == 1) {
            lab_[b] -= 2 * d;
          }
        }
      }

      queue_.clear();
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x] && st_[slack_[x]] != x &&
            e_delta(edge(slack_[x], x)) == 0) {
          if (on_found_edge(edge(slack_[x], x))) return true;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1 && lab_[b] == 0) expand_blossom(b);
      }
    }
    return false;  // unreachable: the guard asserts first
  }

  int n_;
  int n_x_ = 0;
  int cap_;
  std::vector<Edge> g_;
  std::vector<std::int64_t> w_;
  std::vector<std::int64_t> lab_;
  std::vector<int> match_, slack_, st_, pa_, s_, vis_;
  std::vector<std::vector<int>> from_;
  std::vector<std::vector<int>> flower_;
  std::deque<int> queue_;
  int timestamp_ = 0;
};

}  // namespace

Matching blossom_min_weight_matching(std::size_t n, const WeightFn& weight) {
  MCHARGE_ASSERT(n % 2 == 0, "perfect matching requires even n");
  if (n == 0) return {};
  if (n == 2) return {{0, 1}};

  // Quantize the costs onto [1, kBlossomResolution + 1] and negate into
  // "profits" so that maximizing profit minimizes cost; all profits are
  // kept strictly positive so the maximum-weight matching is perfect.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      const double w = weight(u, v);
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
  }
  const double span = hi > lo ? hi - lo : 1.0;
  const double scale = static_cast<double>(kBlossomResolution) / span;

  Blossom solver(static_cast<int>(n));
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      const auto cost =
          static_cast<std::int64_t>(std::llround((weight(u, v) - lo) * scale));
      const std::int64_t profit = kBlossomResolution + 1 - cost;
      solver.set_weight(static_cast<int>(u) + 1, static_cast<int>(v) + 1,
                        profit);
    }
  }
  solver.solve();

  Matching result;
  result.reserve(n / 2);
  for (std::uint32_t v = 0; v < n; ++v) {
    const int mate = solver.partner(static_cast<int>(v) + 1);
    MCHARGE_ASSERT(mate >= 1, "blossom did not produce a perfect matching");
    const auto m = static_cast<std::uint32_t>(mate - 1);
    if (v < m) result.emplace_back(v, m);
  }
  MCHARGE_ASSERT(is_perfect_matching(n, result),
                 "blossom produced a non-perfect matching");
  return result;
}

}  // namespace mcharge::matching
