// Templated primal-dual weighted blossom core shared by the dense and
// sparse matching engines.
//
// This is the O(n^3) Galil primal-dual scheme of the original dense
// solver, lifted out of its (2n+1)^2 adjacency matrix:
//
//  * The edge Store is a template parameter providing REAL-REAL weights
//    only (DenseStore: an (n+1)^2 doubled-weight matrix; SparseStore: CSR
//    candidate rows). A weight of 0 means "no edge" — exactly how the
//    dense solver already treated missing edges, which is what makes the
//    core sparse-capable without algorithmic changes.
//
//  * All per-blossom bookkeeping (the best member edge toward every other
//    node, the from / flower structures) is owned by the core and
//    allocated lazily per active blossom id out of a reusable
//    BlossomArena, replacing the per-call (2n+1)^2 Edge + weight matrix
//    allocations. Symmetric cells of the old matrix were always exact
//    mirrors, so only the blossom-side row is stored and the opposite
//    orientation is derived by swapping record endpoints.
//
//  * The dual-adjustment inner loops run through the simd::i64_* kernels
//    over flat arrays: su_[u] mirrors s_[st_[u]] for real u (maintained
//    alongside every relabel), and slack_val_[x] caches the reduced cost
//    of base x's recorded slack edge. The cache stays exact because
//    within a phase slack sources remain outer (their labels all move by
//    -d), and every state change of a target base coincides with a slack
//    reset or recompute; a batched shift (-d free / -2d outer / 0 inner)
//    after each dual adjustment keeps it current. This turns both the
//    min-slack reduction and the label update into branch-free scans with
//    bitwise-identical scalar semantics (util/simd.h).
//
// All vertex ids are 1-based; ids in (n, 2n] are contracted blossoms.
// Edge weights are doubled so every dual value stays integral.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <tuple>
#include <utility>
#include <vector>

#include "util/assert.h"
#include "util/simd.h"

namespace mcharge::matching::detail {

struct BlossomEdge {
  int u = 0, v = 0;
};

/// Reusable scratch for blossom solves; obtain via thread_arena(). Rows
/// keep their capacity across solves, so steady-state solves allocate
/// nothing.
struct BlossomArena {
  std::vector<std::int64_t> lab, slack_val;
  std::vector<std::int32_t> match, slack, st, pa, s, vis, su;
  // Per-blossom-slot rows (slot = id - n - 1), allocated on first use.
  std::vector<std::vector<BlossomEdge>> brow_e;
  std::vector<std::vector<std::int64_t>> brow_w;
  std::vector<std::vector<std::int32_t>> from;
  std::vector<std::vector<std::int32_t>> flower;
  std::deque<std::int32_t> queue;
  std::vector<std::int64_t> dense_w;  ///< DenseStore backing matrix
};

/// The per-thread arena (matching solves never nest or cross threads).
BlossomArena& thread_arena();

/// Complete-graph store: (n+1)^2 doubled-weight matrix in the arena.
class DenseStore {
 public:
  DenseStore(int n, BlossomArena& arena) : n_(n), w_(arena.dense_w) {
    w_.assign(static_cast<std::size_t>(n + 1) * (n + 1), 0);
  }

  /// Doubled weight for the 1-based pair (u, v); call before solving.
  void set2(int u, int v, std::int64_t w2) {
    w_[idx(u, v)] = w2;
    w_[idx(v, u)] = w2;
  }

  std::int64_t weight(int u, int v) const { return w_[idx(u, v)]; }

  std::int64_t max_weight() const {
    std::int64_t best = 0;
    for (const std::int64_t w : w_) best = std::max(best, w);
    return best;
  }

  /// Calls f(v, w2) for v in ascending order with weight(u, v) > 0; stops
  /// early (returning false) when f does.
  template <class F>
  bool for_neighbors(int u, F&& f) const {
    const std::int64_t* row = w_.data() + idx(u, 0);
    for (int v = 1; v <= n_; ++v) {
      if (row[v] > 0 && !f(v, row[v])) return false;
    }
    return true;
  }

 private:
  std::size_t idx(int u, int v) const {
    return static_cast<std::size_t>(u) * (n_ + 1) + v;
  }

  int n_;
  std::vector<std::int64_t>& w_;
};

/// Candidate-graph store: CSR adjacency with doubled weights, rows sorted
/// by neighbor id (so tie-breaking scans visit sources in the same
/// ascending order as the dense row scan).
class SparseStore {
 public:
  /// Each undirected edge ((u, v) 1-based, u != v) appears once in
  /// `edges` with its doubled weight in `w2`.
  SparseStore(int n, const std::vector<std::pair<int, int>>& edges,
              const std::vector<std::int64_t>& w2)
      : n_(n) {
    std::vector<std::tuple<std::int32_t, std::int32_t, std::int64_t>> dir;
    dir.reserve(edges.size() * 2);
    for (std::size_t k = 0; k < edges.size(); ++k) {
      dir.emplace_back(edges[k].first, edges[k].second, w2[k]);
      dir.emplace_back(edges[k].second, edges[k].first, w2[k]);
    }
    std::sort(dir.begin(), dir.end());
    head_.assign(n + 2, 0);
    nbr_.resize(dir.size());
    w_.resize(dir.size());
    for (std::size_t k = 0; k < dir.size(); ++k) {
      ++head_[std::get<0>(dir[k]) + 1];
      nbr_[k] = std::get<1>(dir[k]);
      w_[k] = std::get<2>(dir[k]);
    }
    for (int u = 1; u <= n + 1; ++u) head_[u] += head_[u - 1];
  }

  std::int64_t weight(int u, int v) const {
    const auto* begin = nbr_.data() + head_[u];
    const auto* end = nbr_.data() + head_[u + 1];
    const auto* it = std::lower_bound(begin, end, v);
    if (it == end || *it != v) return 0;
    return w_[it - nbr_.data()];
  }

  std::int64_t max_weight() const {
    std::int64_t best = 0;
    for (const std::int64_t w : w_) best = std::max(best, w);
    return best;
  }

  template <class F>
  bool for_neighbors(int u, F&& f) const {
    for (std::int32_t k = head_[u]; k < head_[u + 1]; ++k) {
      if (!f(static_cast<int>(nbr_[k]), w_[k])) return false;
    }
    return true;
  }

 private:
  int n_;
  std::vector<std::int32_t> head_, nbr_;
  std::vector<std::int64_t> w_;
};

template <class Store>
class BlossomCore {
 public:
  BlossomCore(int n, const Store& store, BlossomArena& arena)
      : n_(n), cap_(2 * n + 1), store_(store), a_(arena) {
    a_.lab.assign(cap_, 0);
    a_.slack_val.assign(cap_, 0);
    a_.match.assign(cap_, 0);
    a_.slack.assign(cap_, 0);
    a_.st.assign(cap_, 0);
    a_.pa.assign(cap_, 0);
    a_.s.assign(cap_, -1);
    a_.vis.assign(cap_, 0);
    a_.su.assign(n + 1, -1);
    if (static_cast<int>(a_.brow_e.size()) < n_) {
      a_.brow_e.resize(n_);
      a_.brow_w.resize(n_);
      a_.from.resize(n_);
      a_.flower.resize(n_);
    }
    a_.queue.clear();
    lab_ = a_.lab.data();
    slack_val_ = a_.slack_val.data();
    match_ = a_.match.data();
    slack_ = a_.slack.data();
    st_ = a_.st.data();
    pa_ = a_.pa.data();
    s_ = a_.s.data();
    vis_ = a_.vis.data();
    su_ = a_.su.data();
  }

  /// Runs the solver; afterwards partner(v) gives v's mate (1-based, 0 if
  /// unmatched) and dual2(v) the final doubled dual label.
  void solve() {
    n_x_ = n_;
    for (int u = 1; u <= n_; ++u) st_[u] = u;
    const std::int64_t w_max = store_.max_weight();
    for (int u = 1; u <= n_; ++u) lab_[u] = w_max;
    while (matching_phase()) {
    }
  }

  /// Warm-start entry: seeds labels and matching from a previous solve
  /// over a subset of this store's edges, then runs the same phases as
  /// solve(). Preconditions (the caller's bump/round/unmatch passes
  /// establish all three): labels are nonnegative, EVEN, and
  /// dual-feasible on EVERY store edge (lab2[u] + lab2[v] >= w2(u, v)),
  /// and every matched pair is tight (equality) with mate[] involutive.
  /// The parity requirement matters for termination, not feasibility:
  /// i64_slack_bound halves outer-target slacks and the post-adjustment
  /// rescan only fires at slack exactly 0, so an ODD outer-outer slack
  /// pins d at floor(1/2) = 0 forever. An all-even entry has the same
  /// shape as solve()'s own entry (w_max of doubled weights is even), so
  /// the phases see nothing a cold start could not have produced — only
  /// the amount of remaining work differs. `lab2` and `mate` are
  /// 0-indexed by vertex; mate values are 1-based partners (0 =
  /// unmatched).
  void solve_from(const std::vector<std::int64_t>& lab2,
                  const std::vector<std::int32_t>& mate) {
    n_x_ = n_;
    for (int u = 1; u <= n_; ++u) {
      st_[u] = u;
      lab_[u] = lab2[u - 1];
      match_[u] = mate[u - 1];
    }
    while (matching_phase()) {
    }
  }

  int partner(int v) const { return match_[v]; }
  std::int64_t dual2(int v) const { return lab_[v]; }

  /// Exports, for every real vertex v, the chain of surviving blossoms
  /// containing v at termination — outermost first — as (id, doubled z_B)
  /// pairs written to chains[v - 1] (cleared for blossom-free vertices).
  /// The complete-graph dual constraint of a pair (u, v) carries the z of
  /// exactly the blossoms containing BOTH, i.e. the common prefix of the
  /// two chains; pricing on labels alone spuriously flags close
  /// intra-blossom pairs, whose z mass can sit at any nesting depth.
  void export_blossom_chains(
      std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>>& chains)
      const {
    for (auto& c : chains) c.clear();
    std::vector<std::pair<std::int32_t, std::int64_t>> stack;
    for (int b = n_ + 1; b <= n_x_; ++b) {
      if (st_[b] == b) chain_dfs(b, stack, chains);
    }
  }

 private:
  static constexpr std::int64_t kI64Max =
      std::numeric_limits<std::int64_t>::max();

  static BlossomEdge flip(BlossomEdge e) { return {e.v, e.u}; }
  int slot(int b) const { return b - n_ - 1; }

  void chain_dfs(
      int x, std::vector<std::pair<std::int32_t, std::int64_t>>& stack,
      std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>>& chains)
      const {
    if (x <= n_) {
      chains[x - 1].assign(stack.begin(), stack.end());
      return;
    }
    stack.emplace_back(x, lab_[x]);
    for (const std::int32_t y : a_.flower[slot(x)]) chain_dfs(y, stack, chains);
    stack.pop_back();
  }
  std::vector<std::int32_t>& flower(int b) { return a_.flower[slot(b)]; }

  void ensure_brow(int b) {
    const int sl = slot(b);
    if (static_cast<int>(a_.brow_e[sl].size()) < cap_) {
      a_.brow_e[sl].assign(cap_, {});
      a_.brow_w[sl].assign(cap_, 0);
    }
    if (static_cast<int>(a_.from[sl].size()) < n_ + 1) {
      a_.from[sl].assign(n_ + 1, 0);
    }
  }

  /// Edge record of the (u, v) slot: synthesized for real-real pairs,
  /// blossom rows otherwise (the v-side orientation is the flipped
  /// u-side record; the old dense matrix kept both as exact mirrors).
  BlossomEdge rec(int u, int v) const {
    if (u > n_) return a_.brow_e[slot(u)][v];
    if (v > n_) return flip(a_.brow_e[slot(v)][u]);
    return {u, v};
  }

  std::int64_t weight(int u, int v) const {
    if (u > n_) return a_.brow_w[slot(u)][v];
    if (v > n_) return a_.brow_w[slot(v)][u];
    return store_.weight(u, v);
  }

  /// Reduced cost of a stored record (w is the record's weight slot — by
  /// invariant exactly wt(e.u, e.v)).
  std::int64_t e_delta2(BlossomEdge e, std::int64_t w) const {
    return lab_[e.u] + lab_[e.v] - w;
  }
  std::int64_t e_delta(int u, int v) const {
    return e_delta2(rec(u, v), weight(u, v));
  }

  /// cand must be the current reduced cost of the (u, x) slot; the cached
  /// slack_val_ of the incumbent is current by the shift invariant.
  void update_slack(int u, int x, std::int64_t cand) {
    if (slack_[x] == 0 || cand < slack_val_[x]) {
      slack_[x] = u;
      slack_val_[x] = cand;
    }
  }

  void set_slack(int x) {
    slack_[x] = 0;
    if (x <= n_) {
      const std::int64_t lab_x = lab_[x];
      store_.for_neighbors(x, [&](int u, std::int64_t w) {
        if (st_[u] != x && su_[u] == 0) {
          update_slack(u, x, lab_[u] + lab_x - w);
        }
        return true;
      });
    } else {
      const auto& re = a_.brow_e[slot(x)];
      const auto& rw = a_.brow_w[slot(x)];
      for (int u = 1; u <= n_; ++u) {
        if (rw[u] > 0 && st_[u] != x && su_[u] == 0) {
          update_slack(u, x, e_delta2(re[u], rw[u]));
        }
      }
    }
  }

  void q_push(int x) {
    if (x <= n_) {
      a_.queue.push_back(x);
      return;
    }
    for (const int y : flower(x)) q_push(y);
  }

  void set_st(int x, int b) {
    st_[x] = b;
    if (x > n_) {
      for (const int y : flower(x)) set_st(y, b);
    }
  }

  /// Mirrors s_[st_[u]] into su_[u] for every real leaf of x.
  void mark_state(int x, std::int32_t sv) {
    if (x <= n_) {
      su_[x] = sv;
      return;
    }
    for (const int y : flower(x)) mark_state(y, sv);
  }

  int from_at(int x, int r) const {
    if (x <= n_) return x == r ? x : 0;
    return a_.from[slot(x)][r];
  }

  int get_pr(int b, int xr) {
    auto& fl = flower(b);
    const auto it = std::find(fl.begin(), fl.end(), xr);
    int pr = static_cast<int>(it - fl.begin());
    if (pr % 2 == 1) {
      std::reverse(fl.begin() + 1, fl.end());
      return static_cast<int>(fl.size()) - pr;
    }
    return pr;
  }

  void set_match(int u, int v) {
    const BlossomEdge e = rec(u, v);
    match_[u] = e.v;
    if (u <= n_) return;
    const int xr = from_at(u, e.u);
    const int pr = get_pr(u, xr);
    auto& fl = flower(u);
    for (int i = 0; i < pr; ++i) {
      set_match(fl[i], fl[i ^ 1]);
    }
    set_match(xr, v);
    std::rotate(fl.begin(), fl.begin() + pr, fl.end());
  }

  void augment(int u, int v) {
    for (;;) {
      const int xnv = st_[match_[u]];
      set_match(u, v);
      if (!xnv) return;
      set_match(xnv, st_[pa_[xnv]]);
      u = st_[pa_[xnv]];
      v = xnv;
    }
  }

  int get_lca(int u, int v) {
    for (++timestamp_; u || v; std::swap(u, v)) {
      if (u == 0) continue;
      if (vis_[u] == timestamp_) return u;
      vis_[u] = timestamp_;
      u = st_[match_[u]];
      if (u) u = st_[pa_[u]];
    }
    return 0;
  }

  void add_blossom(int u, int lca, int v) {
    int b = n_ + 1;
    while (b <= n_x_ && st_[b]) ++b;
    if (b > n_x_) ++n_x_;
    ensure_brow(b);
    lab_[b] = 0;
    s_[b] = 0;
    match_[b] = match_[lca];
    auto& fl = flower(b);
    fl.clear();
    fl.push_back(lca);
    for (int x = u, y; x != lca; x = st_[pa_[y]]) {
      fl.push_back(x);
      fl.push_back(y = st_[match_[x]]);
      q_push(y);
    }
    std::reverse(fl.begin() + 1, fl.end());
    for (int x = v, y; x != lca; x = st_[pa_[y]]) {
      fl.push_back(x);
      fl.push_back(y = st_[match_[x]]);
      q_push(y);
    }
    set_st(b, b);
    mark_state(b, 0);
    auto& be = a_.brow_e[slot(b)];
    auto& bw = a_.brow_w[slot(b)];
    for (int x = 1; x <= n_x_; ++x) {
      bw[x] = 0;
      if (x > n_ && x != b && !a_.brow_w[slot(x)].empty()) {
        a_.brow_w[slot(x)][b] = 0;
      }
    }
    auto& fr = a_.from[slot(b)];
    std::fill(fr.begin(), fr.begin() + n_ + 1, 0);
    for (const int xs : fl) {
      for (int x = 1; x <= n_x_; ++x) {
        const BlossomEdge e = rec(xs, x);
        const std::int64_t w = weight(xs, x);
        if (bw[x] == 0 || e_delta2(e, w) < e_delta2(be[x], bw[x])) {
          be[x] = e;
          bw[x] = w;
          if (x > n_ && x != b) {
            a_.brow_e[slot(x)][b] = flip(e);
            a_.brow_w[slot(x)][b] = w;
          }
        }
      }
      if (xs <= n_) {
        fr[xs] = xs;
      } else {
        const auto& xfr = a_.from[slot(xs)];
        for (int x = 1; x <= n_; ++x) {
          if (xfr[x]) fr[x] = xs;
        }
      }
    }
    set_slack(b);
  }

  void expand_blossom(int b) {
    auto& fl = flower(b);
    for (const int x : fl) set_st(x, x);
    const int xr = from_at(b, rec(b, pa_[b]).u);
    const int pr = get_pr(b, xr);
    for (int i = 0; i < pr; i += 2) {
      const int xs = fl[i];
      const int xns = fl[i + 1];
      pa_[xs] = rec(xns, xs).u;
      s_[xs] = 1;
      mark_state(xs, 1);
      s_[xns] = 0;
      mark_state(xns, 0);
      slack_[xs] = 0;
      set_slack(xns);
      q_push(xns);
    }
    s_[xr] = 1;
    mark_state(xr, 1);
    pa_[xr] = pa_[b];
    for (int i = pr + 1; i < static_cast<int>(fl.size()); ++i) {
      const int xs = fl[i];
      s_[xs] = -1;
      mark_state(xs, -1);
      set_slack(xs);
    }
    st_[b] = 0;
  }

  bool on_found_edge(const BlossomEdge& e) {
    const int u = st_[e.u];
    const int v = st_[e.v];
    if (s_[v] == -1) {
      pa_[v] = e.u;
      s_[v] = 1;
      mark_state(v, 1);
      const int nu = st_[match_[v]];
      slack_[v] = 0;
      slack_[nu] = 0;
      s_[nu] = 0;
      mark_state(nu, 0);
      q_push(nu);
    } else if (s_[v] == 0) {
      const int lca = get_lca(u, v);
      if (!lca) {
        augment(u, v);
        augment(v, u);
        return true;
      }
      add_blossom(u, lca, v);
    }
    return false;
  }

  bool matching_phase() {
    std::fill(s_, s_ + n_x_ + 1, -1);
    std::fill(slack_, slack_ + n_x_ + 1, 0);
    std::fill(su_ + 1, su_ + n_ + 1, -1);
    a_.queue.clear();
    bool any_free = false;
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && !match_[x]) {
        pa_[x] = 0;
        s_[x] = 0;
        mark_state(x, 0);
        q_push(x);
        any_free = true;
      }
    }
    if (!any_free) return false;

    // Safety: a correct run needs O(n^2) dual adjustments per phase; a
    // runaway loop means a bug, so fail loudly instead of hanging.
    const int max_adjustments = 64 * (n_ + 2) * (n_ + 2);
    for (int guard = 0; guard <= max_adjustments; ++guard) {
      MCHARGE_ASSERT(guard < max_adjustments,
                     "blossom: dual adjustment loop did not terminate");
      while (!a_.queue.empty()) {
        const int u = a_.queue.front();
        a_.queue.pop_front();
        if (s_[st_[u]] == 1) continue;
        // u is a base vertex (q_push expands blossoms), so the (u, v)
        // slot for real v is never overwritten and its reduced cost is
        // the direct label/weight expression on the store row.
        const std::int64_t lab_u = lab_[u];
        bool augmented = false;
        store_.for_neighbors(u, [&](int v, std::int64_t w) {
          const int x = st_[v];
          if (st_[u] == x) return true;
          const std::int64_t delta = lab_u + lab_[v] - w;
          if (delta == 0) {
            if (on_found_edge(BlossomEdge{u, v})) {
              augmented = true;
              return false;
            }
          } else if (x == v) {
            update_slack(u, x, delta);
          } else {
            // v is inside blossom x: the candidate is the stored best
            // (u, x) member edge, not the scanned pair.
            update_slack(u, x, e_delta(u, x));
          }
          return true;
        });
        if (augmented) return true;
      }

      std::int64_t d = kI64Max;
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1) d = std::min(d, lab_[b] / 2);
      }
      d = std::min(d, simd::i64_slack_bound(slack_val_, slack_, st_, s_, 1,
                                            n_x_ + 1));
      MCHARGE_ASSERT(d != kI64Max, "blossom: no dual adjustment available");

      // Dual exhausted -> no augmenting path. Checked BEFORE applying so
      // the duals stay a consistent feasible solution (the pricing pass
      // reads them after the solver stops).
      if (simd::i64_min_where(lab_, su_, 0, 1, n_ + 1) <= d) return false;
      simd::i64_dual_apply(lab_, su_, 1, n_ + 1, d);
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b) {
          if (s_[b] == 0) {
            lab_[b] += 2 * d;
          } else if (s_[b] == 1) {
            lab_[b] -= 2 * d;
          }
        }
      }
      simd::i64_slack_shift(slack_val_, slack_, st_, s_, 1, n_x_ + 1, d);

      a_.queue.clear();
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x] && st_[slack_[x]] != x &&
            slack_val_[x] == 0) {
          if (on_found_edge(rec(slack_[x], x))) return true;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1 && lab_[b] == 0) expand_blossom(b);
      }
    }
    return false;  // unreachable: the guard asserts first
  }

  int n_;
  int n_x_ = 0;
  int cap_;
  const Store& store_;
  BlossomArena& a_;
  std::int64_t* lab_ = nullptr;
  std::int64_t* slack_val_ = nullptr;
  std::int32_t* match_ = nullptr;
  std::int32_t* slack_ = nullptr;
  std::int32_t* st_ = nullptr;
  std::int32_t* pa_ = nullptr;
  std::int32_t* s_ = nullptr;
  std::int32_t* vis_ = nullptr;
  std::int32_t* su_ = nullptr;
  int timestamp_ = 0;
};

}  // namespace mcharge::matching::detail
