// Shared integer quantization for the geometric blossom engines.
//
// Both the dense and the sparse price-and-repair engine transform real
// Euclidean costs into integer "profits" through the SAME quantizer, so
// they optimize the identical integer objective. Two properties matter:
//
//  * Adaptive resolution. The primary quantization step count is a power
//    of two chosen so that the largest doubled solver label fits well
//    inside int64 (resolution * tie_scale * 2 <= 2^61): at n = 4096 that
//    is 2^29 steps over the bounding-box diagonal, growing toward 2^40
//    for small instances — always at least the documented
//    kBlossomResolution (2^20) minimum.
//
//  * Deterministic tie-breaking. A per-edge pseudo-random perturbation
//    r(u, v) in [0, 2^18) (splitmix64 of the packed index pair) is
//    subtracted below the primary digit: profit = P * S + (2^18 - r)
//    with S = (n/2 + 1) * 2^18, so no sum of n/2 tie terms can ever
//    overflow into a primary step. Any two matchings with equal primary
//    cost are (generically) separated by their tie sums, making the
//    optimum unique — which is what lets two different exact engines
//    return byte-identical matchings. A vertex-index bonus would NOT
//    work: any vertex-separable term sums to the same constant over
//    every perfect matching.
//
// The bounding-box diagonal upper-bounds every pairwise distance in
// floating point too (each of sub/mul/add/sqrt is correctly rounded and
// monotone), so quantized costs never exceed the resolution by more than
// the final llround — clamped defensively.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "util/assert.h"

namespace mcharge::matching::detail {

inline constexpr int kTieBits = 18;
inline constexpr std::int64_t kTieRange = std::int64_t{1} << kTieBits;

inline std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic per-edge tie perturbation in [0, kTieRange). Requires
/// u < v (one canonical orientation per undirected edge).
inline std::int64_t tie_hash(std::uint32_t u, std::uint32_t v) {
  const std::uint64_t key = (std::uint64_t{u} << 32) | v;
  return static_cast<std::int64_t>(splitmix64(key) >> (64 - kTieBits));
}

struct BlossomQuantizer {
  double scale = 1.0;            ///< cost -> primary quantization steps
  std::int64_t resolution = 0;   ///< primary step count (power of two)
  std::int64_t tie_scale = 0;    ///< S: one primary step in perturbed units

  /// Perturbed integer profit of edge (u, v), u < v, with Euclidean cost
  /// `cost` in [0, diagonal]. Maximizing total profit minimizes total
  /// cost; strictly positive so the max-weight matching is perfect.
  std::int64_t profit(double cost, std::uint32_t u, std::uint32_t v) const {
    auto q = static_cast<std::int64_t>(std::llround(cost * scale));
    if (q > resolution) q = resolution;  // FP slack on the farthest pairs
    return (resolution + 1 - q) * tie_scale + (kTieRange - tie_hash(u, v));
  }
};

/// Quantizer over the point set's bounding-box diagonal. Both geometric
/// engines must build their quantizer through this function: identical
/// inputs give identical transforms, hence the identical integer optimum.
inline BlossomQuantizer make_point_quantizer(
    const std::vector<geom::Point>& pts) {
  const geom::BoundingBox box = geom::bounding_box(pts);
  const double diag = box.empty ? 0.0 : geom::distance(box.lo, box.hi);
  const double span = diag > 0.0 ? diag : 1.0;
  BlossomQuantizer qz;
  const auto half = static_cast<std::int64_t>(pts.size()) / 2 + 1;
  qz.tie_scale = half << kTieBits;
  const int resolution_bits = std::min(
      40, 59 - static_cast<int>(
                   std::bit_width(static_cast<std::uint64_t>(qz.tie_scale))));
  MCHARGE_ASSERT(resolution_bits >= 20,
                 "blossom quantizer: instance too large for int64 duals");
  qz.resolution = std::int64_t{1} << resolution_bits;
  qz.scale = static_cast<double>(qz.resolution) / span;
  return qz;
}

}  // namespace mcharge::matching::detail
