// Minimum-weight perfect matching on complete graphs with an even number of
// vertices (the matching step of Christofides' TSP construction).
//
// Engines:
//  * exact DP: bitmask dynamic program, O(2^n * n); used for
//    n <= kExactLimit and as the reference oracle in tests.
//  * dense blossom (matching/blossom.h): exact O(n^3) primal-dual solver
//    on a materialized (n+1)^2 weight matrix.
//  * sparse blossom (matching/blossom.h): exact price-and-repair solver
//    on a k-NN candidate graph, certified optimal against the complete
//    graph by a SIMD pricing pass over the final duals. The default
//    geometric engine — same answers as dense, small fraction of the
//    cost at large n.
//  * local search: greedy nearest-pair construction followed by repeated
//    2-exchange improvement to a local optimum; the fallback beyond
//    kBlossomLimit and a comparison point in the micro benches (within
//    ~2% of optimal on Euclidean inputs).
//
// Geometric callers (Christofides odd-vertex matching) should use
// min_weight_euclidean_matching, which keeps Christofides' real
// 1.5-approx guarantee intact up to kBlossomLimit = 4096 vertices — the
// sparse engine covers every paper-scale instance exactly; only beyond
// that does the heuristic local search take over. The generic WeightFn
// dispatch (min_weight_perfect_matching) cannot use the sparse engine
// (no geometry to prune with) and caps the dense engine at
// kDenseBlossomLimit to bound its O(n^2) weight matrix.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "geometry/point.h"

namespace mcharge::matching {

using WeightFn = std::function<double(std::uint32_t, std::uint32_t)>;

/// Pairs in a perfect matching; each vertex appears exactly once.
using Matching = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Largest n routed to the exact bitmask DP (and the DP's own hard
/// assert: 2^n states are materialized).
inline constexpr std::size_t kExactLimit = 16;

/// Largest n routed to an exact blossom engine on geometric instances;
/// above this the 2-exchange local search takes over. 4096 covers every
/// odd-vertex set the paper-scale Christofides runs produce, so the
/// 1.5-approximation guarantee holds throughout the evaluated range.
inline constexpr std::size_t kBlossomLimit = 4096;

/// Largest n routed to the DENSE blossom engine from the generic
/// (non-geometric) dispatch: the dense engine materializes an (n+1)^2
/// int64 weight matrix, so it is kept to instances where that footprint
/// is trivial. Geometric callers are not affected (the sparse engine
/// handles them up to kBlossomLimit).
inline constexpr std::size_t kDenseBlossomLimit = 256;

/// Below this size kAuto prefers the dense engine over the sparse one:
/// the sparse engine's candidate-build + multi-round pricing overhead
/// only amortizes once the (n+1)^2 dense solve is expensive enough
/// (measured crossover ~128-256 on uniform fields; see EXPERIMENTS.md).
/// Both engines return the identical matching, so this is purely a
/// latency knob.
inline constexpr std::size_t kSparseCrossover = 128;

/// Which matching engine to run on geometric instances.
enum class MatchingEngine : std::uint8_t {
  kAuto = 0,       ///< size-based: DP, sparse blossom, local search
  kExactDp,        ///< bitmask DP (n <= kExactLimit enforced by the DP)
  kDenseBlossom,   ///< dense O(n^3) blossom, exact
  kSparseBlossom,  ///< sparse price-and-repair blossom, exact
  kLocalSearch,    ///< greedy + 2-exchange heuristic
};

struct MatchingOptions {
  MatchingEngine engine = MatchingEngine::kAuto;
  /// Candidate-graph neighbor count for the sparse engine (>= 1).
  int knn = 8;
};

/// Exact minimum-weight perfect matching by bitmask DP. Requires even n,
/// n <= kExactLimit (asserted; 2^n states are materialized).
Matching exact_min_weight_matching(std::size_t n, const WeightFn& weight);

/// Greedy + 2-exchange local-search matching. Requires even n.
Matching local_search_matching(std::size_t n, const WeightFn& weight);

/// Generic dispatch by size: exact DP (n <= kExactLimit), dense blossom
/// (n <= kDenseBlossomLimit), local search beyond. Prefer
/// min_weight_euclidean_matching when coordinates are available.
Matching min_weight_perfect_matching(std::size_t n, const WeightFn& weight);

/// Geometric dispatch: minimum-weight perfect matching on `pts` (even
/// count) under Euclidean distance, engine per `opts`. kAuto routes
/// n <= kExactLimit to the DP, n < kSparseCrossover to the dense
/// blossom, n <= kBlossomLimit to the sparse blossom, local search
/// beyond. Both blossom engines share one quantized objective with
/// deterministic tie-breaking, so forcing kDenseBlossom vs
/// kSparseBlossom yields identical matchings — the crossover is purely
/// a latency choice.
Matching min_weight_euclidean_matching(const std::vector<geom::Point>& pts,
                                       const MatchingOptions& opts = {});

/// Sum of edge weights in a matching.
double matching_weight(const Matching& m, const WeightFn& weight);

/// True iff m is a perfect matching over n vertices.
bool is_perfect_matching(std::size_t n, const Matching& m);

}  // namespace mcharge::matching
