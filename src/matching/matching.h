// Minimum-weight perfect matching on complete graphs with an even number of
// vertices (the matching step of Christofides' TSP construction).
//
// Three engines:
//  * exact DP: bitmask dynamic program, O(2^n * n); used for
//    n <= kExactLimit and as the reference oracle in tests.
//  * blossom (matching/blossom.h): exact O(n^3) primal-dual solver; the
//    default above kExactLimit, giving Christofides its real 1.5-approx
//    guarantee.
//  * local search: greedy nearest-pair construction followed by repeated
//    2-exchange improvement to a local optimum; kept as a fast fallback
//    and as a comparison point in the micro benches (within ~2% of optimal
//    on Euclidean inputs).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace mcharge::matching {

using WeightFn = std::function<double(std::uint32_t, std::uint32_t)>;

/// Pairs in a perfect matching; each vertex appears exactly once.
using Matching = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Largest n routed to the exact bitmask DP.
inline constexpr std::size_t kExactLimit = 16;

/// Largest n routed to the exact O(n^3) blossom solver; above this the
/// 2-exchange local search takes over (the n^3 constant starts to matter
/// inside simulation inner loops, and at those sizes the matching feeds a
/// tour that is 2-opted anyway).
inline constexpr std::size_t kBlossomLimit = 256;

/// Exact minimum-weight perfect matching by bitmask DP. Requires even n,
/// n <= 20 (asserted; 2^n states are materialized).
Matching exact_min_weight_matching(std::size_t n, const WeightFn& weight);

/// Greedy + 2-exchange local-search matching. Requires even n.
Matching local_search_matching(std::size_t n, const WeightFn& weight);

/// Dispatches by size: exact DP (n <= kExactLimit), blossom
/// (n <= kBlossomLimit), local search beyond.
Matching min_weight_perfect_matching(std::size_t n, const WeightFn& weight);

/// Sum of edge weights in a matching.
double matching_weight(const Matching& m, const WeightFn& weight);

/// True iff m is a perfect matching over n vertices.
bool is_perfect_matching(std::size_t n, const Matching& m);

}  // namespace mcharge::matching
