#include "matching/matching.h"

#include <algorithm>
#include <limits>

#include "matching/blossom.h"
#include "util/assert.h"

namespace mcharge::matching {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int lowest_set_bit(std::uint32_t mask) {
  return __builtin_ctz(mask);
}

}  // namespace

Matching exact_min_weight_matching(std::size_t n, const WeightFn& weight) {
  MCHARGE_ASSERT(n % 2 == 0, "perfect matching requires even n");
  MCHARGE_ASSERT(n <= kExactLimit,
                 "exact matching limited to n <= kExactLimit");
  if (n == 0) return {};

  const std::uint32_t full = (1u << n) - 1u;
  std::vector<double> best(static_cast<std::size_t>(full) + 1, kInf);
  // For each reached state, the pair (a, b) added last, packed as a*32 + b.
  std::vector<std::int32_t> choice(static_cast<std::size_t>(full) + 1, -1);
  best[0] = 0.0;
  for (std::uint32_t mask = 0; mask < full; ++mask) {
    if (best[mask] == kInf) continue;
    // Pair the lowest unmatched vertex with every other unmatched vertex.
    const std::uint32_t rem = full & ~mask;
    const int a = lowest_set_bit(rem);
    std::uint32_t rest = rem & ~(1u << a);
    while (rest) {
      const int b = lowest_set_bit(rest);
      rest &= rest - 1;
      const std::uint32_t next = mask | (1u << a) | (1u << b);
      const double cost = best[mask] + weight(static_cast<std::uint32_t>(a),
                                              static_cast<std::uint32_t>(b));
      if (cost < best[next]) {
        best[next] = cost;
        choice[next] = a * 32 + b;
      }
    }
  }

  Matching result;
  std::uint32_t mask = full;
  while (mask) {
    const std::int32_t packed = choice[mask];
    MCHARGE_ASSERT(packed >= 0, "exact matching reconstruction failed");
    const auto a = static_cast<std::uint32_t>(packed / 32);
    const auto b = static_cast<std::uint32_t>(packed % 32);
    result.emplace_back(a, b);
    mask &= ~((1u << a) | (1u << b));
  }
  std::reverse(result.begin(), result.end());
  return result;
}

Matching local_search_matching(std::size_t n, const WeightFn& weight) {
  MCHARGE_ASSERT(n % 2 == 0, "perfect matching requires even n");
  if (n == 0) return {};

  // Greedy: repeatedly match the unmatched vertex with its nearest
  // unmatched partner (scanning in index order for determinism).
  std::vector<char> matched(n, 0);
  std::vector<std::uint32_t> partner(n, 0);
  for (std::uint32_t a = 0; a < n; ++a) {
    if (matched[a]) continue;
    double best_w = kInf;
    std::uint32_t best_b = a;
    for (std::uint32_t b = a + 1; b < n; ++b) {
      if (matched[b]) continue;
      const double w = weight(a, b);
      if (w < best_w) {
        best_w = w;
        best_b = b;
      }
    }
    MCHARGE_ASSERT(best_b != a, "odd number of unmatched vertices");
    matched[a] = matched[best_b] = 1;
    partner[a] = best_b;
    partner[best_b] = a;
  }

  // 2-exchange improvement: for pairs {a,b} and {c,d}, try {a,c}/{b,d} and
  // {a,d}/{b,c}. Repeat passes until no improvement (guaranteed to
  // terminate: total weight strictly decreases).
  std::vector<std::uint32_t> reps;  // one representative per pair, a < partner
  reps.reserve(n / 2);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (v < partner[v]) reps.push_back(v);
  }
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i < reps.size(); ++i) {
      for (std::size_t j = i + 1; j < reps.size(); ++j) {
        const std::uint32_t a = reps[i], b = partner[a];
        const std::uint32_t c = reps[j], d = partner[c];
        const double current = weight(a, b) + weight(c, d);
        const double alt1 = weight(a, c) + weight(b, d);
        const double alt2 = weight(a, d) + weight(b, c);
        if (alt1 < current - 1e-12 && alt1 <= alt2) {
          partner[a] = c;
          partner[c] = a;
          partner[b] = d;
          partner[d] = b;
          reps[i] = std::min(a, c);
          reps[j] = std::min(b, d);
          improved = true;
        } else if (alt2 < current - 1e-12) {
          partner[a] = d;
          partner[d] = a;
          partner[b] = c;
          partner[c] = b;
          reps[i] = std::min(a, d);
          reps[j] = std::min(b, c);
          improved = true;
        }
      }
    }
  }

  Matching result;
  result.reserve(n / 2);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (v < partner[v]) result.emplace_back(v, partner[v]);
  }
  return result;
}

Matching min_weight_perfect_matching(std::size_t n, const WeightFn& weight) {
  if (n <= kExactLimit) return exact_min_weight_matching(n, weight);
  if (n <= kDenseBlossomLimit) return blossom_min_weight_matching(n, weight);
  return local_search_matching(n, weight);
}

Matching min_weight_euclidean_matching(const std::vector<geom::Point>& pts,
                                       const MatchingOptions& opts) {
  const std::size_t n = pts.size();
  const auto euclid = [&pts](std::uint32_t a, std::uint32_t b) {
    return geom::distance(pts[a], pts[b]);
  };
  switch (opts.engine) {
    case MatchingEngine::kExactDp:
      return exact_min_weight_matching(n, euclid);
    case MatchingEngine::kDenseBlossom:
      return dense_blossom_euclidean_matching(pts);
    case MatchingEngine::kSparseBlossom:
      return sparse_blossom_euclidean_matching(pts, opts.knn);
    case MatchingEngine::kLocalSearch:
      return local_search_matching(n, euclid);
    case MatchingEngine::kAuto:
      break;
  }
  if (n <= kExactLimit) return exact_min_weight_matching(n, euclid);
  if (n < kSparseCrossover) return dense_blossom_euclidean_matching(pts);
  if (n <= kBlossomLimit) return sparse_blossom_euclidean_matching(pts, opts.knn);
  return local_search_matching(n, euclid);
}

double matching_weight(const Matching& m, const WeightFn& weight) {
  double total = 0.0;
  for (const auto& [a, b] : m) total += weight(a, b);
  return total;
}

bool is_perfect_matching(std::size_t n, const Matching& m) {
  if (m.size() * 2 != n) return false;
  std::vector<char> seen(n, 0);
  for (const auto& [a, b] : m) {
    if (a >= n || b >= n || a == b) return false;
    if (seen[a] || seen[b]) return false;
    seen[a] = seen[b] = 1;
  }
  return true;
}

}  // namespace mcharge::matching
