// Sparse price-and-repair blossom engine (Cook & Rohe style).
//
// 1. Build a candidate graph: k nearest neighbors per vertex (grid index,
//    expanding-radius queries) plus a trivial backbone pairing
//    (2i, 2i+1) so a perfect matching always exists.
// 2. Solve exactly on the candidate graph with the shared blossom core.
// 3. Price: scan every non-candidate pair against the solver's final
//    duals. The solver's labels are a feasible dual solution for the
//    candidate graph; a pair (u, v) outside it violates complete-graph
//    dual feasibility only if lab2_u + lab2_v + z2(u, v) < 2 * profit,
//    where z2(u, v) sums the duals of every surviving blossom containing
//    both endpoints (the common prefix of the two nesting chains).
//    Pricing on labels ALONE is also sound (z >= 0 only tightens the
//    left side) but spuriously flags close pairs inside surviving
//    blossoms, and after a warm re-solve those spurious admissions
//    snowball into an extra full solve round (the BM_Blossom/1024
//    regression).
// 4. Add all violated pairs as candidate edges and re-solve. Every round
//    adds only absent pairs, so the edge set strictly grows and the loop
//    terminates; when no absent pair violates, the duals are feasible on
//    the COMPLETE graph and complementary slackness certifies the current
//    matching as the exact optimum of the same quantized objective the
//    dense engine solves. Re-solves warm-start from the previous round's
//    duals and matching (see the in-loop comment) instead of from cold
//    labels; this changes only the work per round, never the optimum —
//    the quantizer's tie perturbation makes the optimum generically
//    unique, so the dense/sparse identical-matching invariant holds.
//
// The pricing scan is the only O(n^2) part and runs through the
// simd::price_scan kernel: the int64 dual test is relaxed to a
// conservative double-precision distance bound
//     dist(u, v) < base - a_u - a_v      (a_x = lab2_x / (2 S scale))
// with a safety margin of several quantization steps (covering llround,
// the resolution clamp, and double rounding), so the kernel can reject
// almost all pairs with one fused coordinate sweep; survivors are
// re-checked exactly in int64.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "geometry/grid_index.h"
#include "geometry/point.h"
#include "matching/blossom.h"
#include "matching/blossom_core.h"
#include "matching/quantize.h"
#include "obs/obs.h"
#include "util/assert.h"
#include "util/simd.h"

namespace mcharge::matching {

namespace {

/// k-NN + backbone candidate edges, 0-based, u < v, sorted, unique.
std::vector<std::pair<int, int>> candidate_edges(
    const std::vector<geom::Point>& pts, int knn) {
  const int n = static_cast<int>(pts.size());
  knn = std::clamp(knn, 1, n - 1);

  const geom::BoundingBox box = geom::bounding_box(pts);
  const double diag = box.empty ? 0.0 : geom::distance(box.lo, box.hi);
  const double cell =
      diag > 0.0 ? diag / std::sqrt(static_cast<double>(n)) : 1.0;
  const geom::GridIndex grid(pts, cell);

  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(n) * knn / 2 + n);
  std::vector<std::pair<double, std::uint32_t>> near;
  for (int i = 0; i < n; ++i) {
    double radius = cell;
    std::vector<std::uint32_t> ids;
    for (;;) {
      ids = grid.query_disk_excluding(pts[i], radius,
                                      static_cast<std::uint32_t>(i));
      if (static_cast<int>(ids.size()) >= knn || radius > diag) break;
      radius *= 2.0;
    }
    near.clear();
    near.reserve(ids.size());
    for (const std::uint32_t id : ids) {
      near.emplace_back(geom::distance_sq(pts[i], pts[id]), id);
    }
    std::sort(near.begin(), near.end());
    const int take = std::min<int>(knn, static_cast<int>(near.size()));
    for (int k = 0; k < take; ++k) {
      const int j = static_cast<int>(near[k].second);
      edges.emplace_back(std::min(i, j), std::max(i, j));
    }
  }
  // Backbone: guarantees the candidate graph admits a perfect matching.
  for (int i = 0; i + 1 < n; i += 2) edges.emplace_back(i, i + 1);

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace

Matching sparse_blossom_euclidean_matching(const std::vector<geom::Point>& pts,
                                           int knn) {
  const std::size_t n = pts.size();
  MCHARGE_ASSERT(n % 2 == 0, "perfect matching requires even n");
  if (n == 0) return {};
  if (n == 2) return {{0, 1}};

  const detail::BlossomQuantizer qz = detail::make_point_quantizer(pts);
  std::vector<std::pair<int, int>> edges0 = candidate_edges(pts, knn);

  // SoA coordinates + per-vertex pricing terms for the kernel sweep.
  std::vector<double> xs(n), ys(n), av(n);
  std::vector<std::uint32_t> ids(n), flagged(n);
  for (std::size_t v = 0; v < n; ++v) {
    xs[v] = pts[v].x;
    ys[v] = pts[v].y;
    ids[v] = static_cast<std::uint32_t>(v);
  }
  const double two_s_scale =
      2.0 * static_cast<double>(qz.tie_scale) * qz.scale;
  const double inv = 1.0 / two_s_scale;
  const double margin = 4.0 / qz.scale;
  const double base =
      (2.0 * static_cast<double>(qz.tie_scale) *
           (static_cast<double>(qz.resolution) + 3.5) +
       2.0 * static_cast<double>(detail::kTieRange)) *
          inv +
      margin;

  // First-scan admission margin: the first (cold) pricing also admits
  // pairs that are within ~1% of violating. Re-solve exit duals drift
  // toward tightness near the structures they repair, so pairs that
  // barely survive the first scan are exactly the ones a later exact
  // scan flags, at the price of one more full solve round; admitting
  // them up front lets the second scan come back clean. Later scans use
  // the exact test only — the termination certificate needs it, and a
  // margin there would re-admit feasible pairs forever.
  const std::int64_t w2_max =
      2 * (qz.resolution + 1) * qz.tie_scale + 2 * detail::kTieRange;
  const std::int64_t first_margin2 = w2_max >> 7;

  std::vector<std::pair<int, int>> edges1;
  std::vector<std::int64_t> w2;
  std::vector<std::int64_t> lab2(n);
  std::vector<std::int32_t> mate(n, 0);
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> chains(n);
  bool warm = false;
  int round = 0;
  for (;; ++round) {
    OBS_COUNT("blossom.rounds", 1);
    edges1.clear();
    w2.clear();
    edges1.reserve(edges0.size());
    w2.reserve(edges0.size());
    for (const auto& [u, v] : edges0) {
      edges1.emplace_back(u + 1, v + 1);
      w2.push_back(2 * qz.profit(geom::distance(pts[u], pts[v]),
                                 static_cast<std::uint32_t>(u),
                                 static_cast<std::uint32_t>(v)));
    }
    const detail::SparseStore store(static_cast<int>(n), edges1, w2);
    detail::BlossomArena& arena = detail::thread_arena();
    detail::BlossomCore<detail::SparseStore> core(static_cast<int>(n), store,
                                                  arena);
    {
      OBS_SPAN("blossom.solve");
      if (!warm) {
        core.solve();
      } else {
        // Warm start from the previous round's duals and matching instead
        // of re-deriving everything from lab = w_max. Four passes restore
        // the solver's entry invariants (even labels, feasibility on the
        // grown edge set, matched edges tight) while breaking as few
        // matched pairs as possible:
        //  1. Fold blossom duals into the labels: lab2_v += Z2(v) / 2,
        //     Z2(v) = sum of z over v's nesting chain. solve_from starts
        //     blossom-free, so the z mass must live in the labels. The
        //     fold keeps every matched pair with IDENTICAL chains exactly
        //     tight (their full constraint held with equality and both
        //     sides gain the same amount) and preserves feasibility
        //     everywhere: a pair's two chain sums each dominate the
        //     common-prefix sum its constraint carries, so the average
        //     does too. Before this fold, dropping z broke tightness of
        //     nearly every intra-blossom matched edge, and the bump pass
        //     below cascaded that into unmatching 50-90% of all vertices
        //     — a "warm" start that was doing cold work.
        //  2. Parity: the phases only terminate from an all-even entry
        //     (see solve_from). A matched pair's label sum is even
        //     (weights are even, as are the folded z's), so its labels
        //     are odd together; shifting +1 / -1 across the pair evens
        //     both WITHOUT breaking tightness. Free vertices round up.
        //     The -1 can dent feasibility of a neighboring edge by one
        //     unit; pass 3 repairs it.
        //  3. Feasibility bump: newly added edges were by construction
        //     violated, and pass 2 can leave unit deficits. Raising the
        //     lower endpoint by the (even) deficit restores
        //     lab_u + lab_v >= w for that edge and cannot break any
        //     other (labels only ever increase).
        //  4. Unmatch pairs whose edge is no longer tight: pairs whose
        //     chains differed (their fold overshoots), pairs dented by
        //     pass 3, and pairs adjacent to genuinely new structure.
        // The re-solve then only repairs the damage near the new edges
        // rather than rebuilding the whole matching.
        for (std::size_t v = 0; v < n; ++v) {
          std::int64_t zsum2 = 0;
          for (const auto& [b, z2] : chains[v]) zsum2 += z2;
          lab2[v] += zsum2 / 2;
        }
        for (std::size_t u = 0; u < n; ++u) {
          if ((lab2[u] & 1) == 0) continue;
          const std::int32_t m = mate[u];
          const auto v = static_cast<std::size_t>(m) - 1;
          if (m == 0 || v < u) {
            lab2[u] += 1;  // free vertex, or pair already evened from v
          } else {
            lab2[u] += 1;
            lab2[v] -= 1;
          }
        }
        for (std::size_t k = 0; k < edges0.size(); ++k) {
          const auto u = static_cast<std::size_t>(edges0[k].first);
          const auto v = static_cast<std::size_t>(edges0[k].second);
          const std::int64_t need = w2[k] - lab2[u] - lab2[v];
          if (need > 0) lab2[u] += need;
        }
        for (std::size_t u = 0; u < n; ++u) {
          const std::int32_t m = mate[u];
          if (m == 0) continue;
          const auto v = static_cast<std::size_t>(m) - 1;
          if (v < u) continue;  // each pair once, from its lower endpoint
          if (lab2[u] + lab2[v] != store.weight(static_cast<int>(u) + 1, m)) {
            mate[u] = 0;
            mate[v] = 0;
          }
        }
        core.solve_from(lab2, mate);
      }
    }

    for (std::size_t v = 0; v < n; ++v) {
      lab2[v] = core.dual2(static_cast<int>(v) + 1);
      mate[v] = static_cast<std::int32_t>(core.partner(static_cast<int>(v) + 1));
      av[v] = static_cast<double>(lab2[v]) * inv;
    }
    core.export_blossom_chains(chains);
    warm = true;

    std::size_t added = 0;
    const std::int64_t admit2 = round == 0 ? first_margin2 : 0;
    const double scan_base = base + static_cast<double>(admit2) * inv;
    {
      OBS_SPAN("blossom.price_scan");
      for (std::size_t u = 0; u + 1 < n; ++u) {
        const std::size_t m = n - u - 1;
        const std::size_t hits =
            simd::price_scan(xs.data() + u + 1, ys.data() + u + 1, m, xs[u],
                             ys[u], scan_base - av[u], av.data() + u + 1,
                             ids.data() + u + 1, flagged.data());
        for (std::size_t k = 0; k < hits; ++k) {
          const auto v = flagged[k];
          if (store.weight(static_cast<int>(u) + 1, static_cast<int>(v) + 1) !=
              0) {
            continue;  // already a candidate; its constraint is enforced
          }
          const std::int64_t p2 =
              2 * qz.profit(geom::distance(pts[u], pts[v]),
                            static_cast<std::uint32_t>(u), v);
          // Full dual test. A pair inside a surviving blossom carries
          // every shared blossom's z on the left side of its
          // complete-graph constraint; pricing on labels alone spuriously
          // flags every close intra-blossom pair (z is large exactly
          // because the blossom is tight), and after a warm re-solve
          // those spurious admissions snowballed into an extra full
          // round. The shared blossoms are the common prefix of the two
          // nesting chains (outermost first), so the exact test sums z
          // over that prefix.
          std::int64_t lhs2 = lab2[u] + lab2[v];
          const auto& cu = chains[u];
          const auto& cv = chains[v];
          const std::size_t depth = std::min(cu.size(), cv.size());
          for (std::size_t i = 0; i < depth && cu[i].first == cv[i].first;
               ++i) {
            lhs2 += cu[i].second;
          }
          if (lhs2 < p2 + admit2) {
            edges0.emplace_back(static_cast<int>(u), static_cast<int>(v));
            // Only a genuine violation forces a re-solve; a margin-only
            // admission is already feasible, so if the whole scan stays
            // exact-clean the certificate below still stands and the
            // soft admissions are simply discarded with the loop.
            if (lhs2 < p2) ++added;
          }
        }
      }
    }
    OBS_COUNT("blossom.edges_added", static_cast<std::int64_t>(added));
    if (added == 0) {
      bool perfect = true;
      for (std::size_t v = 0; v < n && perfect; ++v) {
        perfect = core.partner(static_cast<int>(v) + 1) != 0;
      }
      if (perfect) {
        // Clean pricing + clean solver termination: labels plus the
        // surviving blossom duals are feasible on the complete graph
        // (the solver's blossoms are valid odd sets of the complete
        // graph, and z_B > 0 only on blossoms its matching keeps full),
        // and complementary slackness holds, so this matching is the
        // complete-graph optimum.
        Matching result;
        result.reserve(n / 2);
        for (std::uint32_t v = 0; v < n; ++v) {
          const int mate = core.partner(static_cast<int>(v) + 1);
          const auto m = static_cast<std::uint32_t>(mate - 1);
          if (v < m) result.emplace_back(v, m);
        }
        MCHARGE_ASSERT(is_perfect_matching(n, result),
                       "sparse blossom produced a non-perfect matching");
        return result;
      }
      // The candidate-graph MAX-WEIGHT matching can legitimately leave
      // vertices free (two free vertices whose connecting paths all run
      // through heavier edges than any augmentation gains), and at dual
      // exhaustion complementary slackness fails, so clean pricing does
      // not certify anything yet. Repair: complete the edge rows of the
      // free vertices — on their (now locally complete) neighborhoods an
      // uncovered pair is always directly augmentable, and the edge set
      // strictly grows, so the loop terminates.
      const std::size_t before = edges0.size();
      {
        OBS_SPAN("blossom.repair");
        for (std::size_t u = 0; u < n; ++u) {
          if (core.partner(static_cast<int>(u) + 1) != 0) continue;
          for (std::size_t v = 0; v < n; ++v) {
            if (v == u || store.weight(static_cast<int>(u) + 1,
                                       static_cast<int>(v) + 1) != 0) {
              continue;
            }
            edges0.emplace_back(static_cast<int>(std::min(u, v)),
                                static_cast<int>(std::max(u, v)));
          }
        }
        std::sort(edges0.begin(), edges0.end());
        edges0.erase(std::unique(edges0.begin(), edges0.end()), edges0.end());
      }
      if (edges0.size() == before) {
        // Free vertices already have complete rows — cannot repair
        // further sparsely; the dense engine solves the identical
        // objective, so the answer (and its bits) are unchanged.
        return dense_blossom_euclidean_matching(pts);
      }
      continue;
    }
    std::sort(edges0.begin(), edges0.end());
  }
}

}  // namespace mcharge::matching
