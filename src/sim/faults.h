// Deterministic fault injection for the simulator.
//
// A FaultModel turns a FaultConfig into per-round, per-entity fault draws:
//  * per-MCV breakdowns — the vehicle fails at a point along its tour and
//    the remaining sojourns go uncharged (executed via
//    sched::ExecutionFaults in schedule/execute.h);
//  * multiplicative travel-time and charging-time jitter;
//  * permanent sensor death — the sensor drops out of the network for the
//    rest of the run;
//  * transient depot-dispatch delay — the whole fleet leaves late.
//
// Every draw is a pure function of (config.seed, stream tag, round index,
// entity id), hashed through util/rng.h's splitmix64/derive_seed. Nothing
// here keeps mutable state, so fault outcomes are bit-identical for any
// `jobs` value, SIMD backend, dispatch policy, or call order — the same
// determinism contract the rest of the repo holds. Each fault class is
// independently enabled by its own rate; a config with all rates at zero
// behaves exactly like no fault model at all.
#pragma once

#include <cstdint>

#include "schedule/execute.h"
#include "schedule/plan.h"

namespace mcharge::sim {

/// Knobs of the fault layer. All probabilities are per round (breakdown:
/// per MCV per round; death: per sensor per round). Zero everywhere (the
/// default) disables the layer entirely.
struct FaultConfig {
  std::uint64_t seed = 0;  ///< fault stream seed, independent of sim seed

  /// P[an MCV breaks down somewhere along its tour] per round. The failure
  /// point is uniform over the tour's stops (it may fail before reaching
  /// the first stop).
  double mcv_breakdown_prob = 0.0;
  /// Travel legs are scaled by a factor uniform in [1-j, 1+j). Must be in
  /// [0, 0.9] so legs never shrink to nothing.
  double travel_jitter = 0.0;
  /// Charging durations are scaled by a factor uniform in [1-j, 1+j).
  /// Must be in [0, 0.9].
  double charge_jitter = 0.0;
  /// P[a live sensor dies permanently] per round, evaluated at the round's
  /// start. A dead sensor stops consuming, never requests charging, and is
  /// excluded from coverage/dead-time accounting from that instant on.
  double sensor_death_prob = 0.0;
  /// P[the depot delays this round's dispatch] per round.
  double dispatch_delay_prob = 0.0;
  /// When a dispatch delay fires, its length is uniform in
  /// [0, dispatch_delay_max_s).
  double dispatch_delay_max_s = 0.0;

  bool enabled() const {
    return mcv_breakdown_prob > 0.0 || travel_jitter > 0.0 ||
           charge_jitter > 0.0 || sensor_death_prob > 0.0 ||
           dispatch_delay_prob > 0.0;
  }
};

/// Stateless fault-draw oracle. Cheap to construct; copyable; safe to call
/// concurrently from any number of threads.
class FaultModel {
 public:
  explicit FaultModel(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// True iff MCV `mcv` breaks down during round `round`.
  bool mcv_breaks(std::uint64_t round, std::uint32_t mcv) const;
  /// Number of sojourns MCV `mcv` completes before failing, uniform in
  /// [0, tour_len). Only meaningful when mcv_breaks() is true and
  /// tour_len > 0.
  std::uint32_t breakdown_stop(std::uint64_t round, std::uint32_t mcv,
                               std::uint32_t tour_len) const;
  /// Travel multiplier in [1-j, 1+j) for (round, mcv, leg).
  double travel_multiplier(std::uint64_t round, std::uint32_t mcv,
                           std::size_t leg) const;
  /// Charging-duration multiplier in [1-j, 1+j) for (round, location).
  double charge_multiplier(std::uint64_t round, std::uint32_t location) const;
  /// True iff sensor `v` dies at the start of round `round` (given it is
  /// still alive then — the model itself is memoryless).
  bool sensor_dies(std::uint64_t round, std::uint32_t v) const;
  /// Dispatch delay in seconds for round `round` (0 when the delay fault
  /// does not fire).
  double dispatch_delay(std::uint64_t round) const;

  /// Assembles the executor-facing fault bundle for `round` against `plan`:
  /// breakdown_after per tour plus jitter closures. Fault classes with a
  /// zero rate contribute nothing (no closure installed, no breakdown
  /// entries), so a disabled model yields an empty bundle.
  sched::ExecutionFaults round_faults(std::uint64_t round,
                                      const sched::ChargingPlan& plan) const;

 private:
  FaultConfig config_;
};

}  // namespace mcharge::sim
