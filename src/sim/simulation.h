// Round-based WRSN charging simulation over a monitoring period.
//
// Sensors deplete linearly at their steady-state draw. When a sensor's
// residual falls below the request threshold it raises a charging request.
// Whenever the MCV fleet is at the depot and requests are pending, the base
// station freezes the pending set V_s into a ChargingProblem, runs the
// scheduler under test, executes the plan (with the no-overlap constraint
// enforced), and advances time to the fleet's return. Sensors keep draining
// while they wait; a sensor whose battery hits zero accrues dead time until
// the moment it is fully charged (the paper's Fig. 3(b)/4(b)/5(b) metric).
//
// Deliberate modeling choices (documented in DESIGN.md):
//  * charging durations t_v are frozen at dispatch time (as in the paper);
//    the marginal extra drain between request and charge is ignored;
//  * the fleet is dispatched and recalled as a unit (the base station
//    schedules all K tours at once; MCVs recharge at the depot between
//    rounds);
//  * every executed schedule is verified; violations are counted in the
//    result (expected zero).
#pragma once

#include <cstddef>
#include <vector>

#include "core/replan.h"
#include "energy/mcv_battery.h"
#include "model/network.h"
#include "schedule/scheduler.h"
#include "sim/faults.h"
#include "util/stats.h"

namespace mcharge::sim {

struct SimConfig {
  double monitoring_period_s = 365.0 * 24.0 * 3600.0;  ///< T_M = 1 year
  double initial_level_fraction = 1.0;  ///< batteries start full
  /// Safety cap on charging rounds (a scheduler that never charges anything
  /// would otherwise spin); generously above any realistic round count.
  std::size_t max_rounds = 200000;
  /// Re-dispatch backoff when a round charged nothing (seconds).
  double empty_round_backoff_s = 600.0;
  /// Dispatch policy. 0 = on-demand: the fleet leaves as soon as it is home
  /// and at least one request is pending. > 0 = epoch-based: the fleet only
  /// leaves at multiples of this period (requests batch up between epochs),
  /// which trades request latency for larger batches — and larger batches
  /// are exactly where multi-node charging pays (ablation_policy bench).
  double dispatch_epoch_s = 0.0;
  /// Record one RoundLog entry per charging round in SimResult::rounds_log.
  bool record_rounds = false;
  /// Partial-charging model: each visit charges a sensor up to this
  /// fraction of capacity instead of full (1.0 = the paper's full-charging
  /// model). Must exceed the request threshold. Smaller targets shorten
  /// every sojourn but make sensors request again sooner — the classic
  /// full-vs-partial tradeoff of the charging literature.
  double charge_target_fraction = 1.0;
  /// Worker threads for the per-sensor drain scans (0 = default_jobs(),
  /// 1 = the serial reference path). Every value produces bit-identical
  /// SimResults: the scans split into contiguous index shards, per-shard
  /// minima reduce in shard order on the calling thread, and per-shard
  /// batch fragments concatenate in shard order, so the global index
  /// order — and every IEEE-754 operation — matches the serial scan
  /// exactly (the util/parallel.h determinism rules).
  std::size_t jobs = 1;
  /// Minimum sensors per shard before the scans actually split; below
  /// jobs * shard_grain sensors the round loop stays on the serial path,
  /// where pool handoff would cost more than the scan. Tests lower this
  /// to force multi-shard execution at moderate n.
  std::size_t shard_grain = 1024;
  /// Worker threads handed to the scheduler for its internal parallel
  /// sections (Scheduler::plan_with_jobs): the per-segment tour
  /// improvement and the eager travel-cache fill of the Appro planner.
  /// 0 = leave the scheduler's own configuration in effect. Like `jobs`,
  /// every value produces bit-identical SimResults — the planner writes
  /// each segment into its own slot and reduces in index order.
  std::size_t plan_jobs = 0;
  /// Deterministic fault injection (sim/faults.h). All rates default to
  /// zero; a zero-rate config takes exactly the fault-free code path, so
  /// its SimResult is byte-identical to a run without the fault layer.
  FaultConfig faults;
  /// What to do with the stops orphaned when an MCV breaks down mid-tour
  /// (core/replan.h). Irrelevant while faults.mcv_breakdown_prob == 0 and
  /// the energy budget below is disabled.
  core::RecoveryPolicy recovery = core::RecoveryPolicy::kDefer;
  /// Finite per-MCV energy budget (energy/mcv_battery.h). Disabled (the
  /// default, capacity_j == 0) takes exactly the unlimited-energy code
  /// path, byte for byte. Enabled: every MCV departs each round with a
  /// full battery (depot recharge between rounds), the executor debits
  /// locomotion + transfer energy per sojourn, and an unaffordable debit
  /// aborts the tour with BreakdownCause::kEnergyExhausted — routed
  /// through the same `recovery` policy as coin-flip breakdowns. Purely
  /// deterministic: budgeted runs are bit-identical across jobs, SIMD
  /// backends and recovery-irrelevant knobs, independent of the fault
  /// rates in `faults`.
  energy::McvBudgetSpec mcv_budget;
  /// Record every per-MCV tour draw (joules) into
  /// SimResult::mcv_tour_energy_j, in round order and MCV order within a
  /// round. Only meaningful with mcv_budget enabled (the budget-disabled
  /// path never meters); off by default to keep long runs lean. Budget
  /// sweeps use a metering run with an effectively unlimited capacity and
  /// this flag on to learn the full draw distribution, then anchor the
  /// swept capacities on its quantiles (bench/fault_ablation).
  bool record_tour_energy = false;
  /// Enable the tracing layer (obs/obs.h) for the duration of this run:
  /// spans/counters across the planner, matching engine, executor and the
  /// simulator's own scans accumulate into the process-wide registry
  /// (read it back with obs::capture() or obs::write_trace_json()).
  /// Tracing never feeds back into an algorithmic decision, so the
  /// SimResult is byte-identical with it on or off (tests/obs_test.cpp);
  /// under -DMCHARGE_NO_OBS=ON the flag is accepted but records nothing.
  bool trace = false;
};

/// One charging round as seen by the base station.
struct RoundLog {
  double dispatch_time = 0.0;   ///< when the fleet left the depot
  std::size_t batch = 0;        ///< |V_s|
  std::size_t charged = 0;      ///< sensors actually charged
  double longest_delay_s = 0.0; ///< max_k T'(k) of the round
  double wait_s = 0.0;          ///< conflict waiting within the round
  std::size_t breakdowns = 0;   ///< MCVs that failed this round (any cause)
  std::size_t recovered = 0;    ///< orphaned sensors charged anyway
  std::size_t deferred = 0;     ///< orphaned sensors pushed to next round
  double extra_delay_s = 0.0;   ///< recovery delay added this round
  std::size_t energy_aborts = 0;  ///< breakdowns caused by battery exhaustion
  double energy_spent_j = 0.0;    ///< fleet joules drawn this round
  double energy_max_tour_j = 0.0; ///< heaviest single-MCV draw this round
};

/// Why a simulation stopped before cleanly exhausting its horizon.
enum class TruncationReason {
  kNone,            ///< ran to the end of the monitoring period
  kMaxRounds,       ///< hit SimConfig::max_rounds — results are partial
  kHorizonMidRound, ///< the period ended while the fleet was still out
};

struct SimResult {
  std::size_t rounds = 0;
  std::size_t sensors_charged = 0;      ///< charge events over the period
  double total_dead_seconds = 0.0;      ///< summed over all sensors
  double mean_dead_minutes_per_sensor = 0.0;
  RunningStats round_longest_delay_s;   ///< per-round max_k T'(k)
  RunningStats round_batch_size;        ///< |V_s| per round
  /// Per charge event: seconds between the sensor's charging request
  /// (threshold crossing) and its full charge — the "charge as soon as
  /// possible" quantity the paper's objective is a proxy for.
  RunningStats request_latency_s;
  double total_conflict_wait_s = 0.0;   ///< waiting injected by the executor
  std::size_t verify_violations = 0;    ///< should stay 0
  /// Fraction of the *simulated* time the fleet spends away from the
  /// depot. A round dispatched at time d with longest delay D contributes
  /// min(d + D, T_M) - d busy seconds: a round still out when the period
  /// ends is censored and counts only its in-horizon prefix. Degenerate
  /// rounds that charge nothing contribute zero — the empty-round backoff
  /// is idle time at the depot, not busy time. The denominator is the
  /// horizon T_M for a run that covers it, but only the elapsed simulated
  /// time (the fleet's last return) when the run truncates early via
  /// kMaxRounds — dividing a partial run's busy seconds by the full
  /// horizon would silently under-report utilization.
  double busy_fraction = 0.0;
  std::vector<double> dead_seconds_per_sensor;   ///< indexed by sensor
  std::vector<std::size_t> charges_per_sensor;   ///< charge events per sensor
  /// Network-wide dead time bucketed into 30-day windows of the horizon.
  /// A fleet that keeps up shows a flat profile; an overloaded one shows
  /// the queue building month over month.
  std::vector<double> dead_seconds_by_month;
  std::vector<RoundLog> rounds_log;     ///< filled iff config.record_rounds
  /// True when the run stopped early (see truncated_reason). Aggregates
  /// (dead time, delays) then cover only the simulated prefix; figure
  /// benches assert the reason is never kMaxRounds before plotting.
  bool truncated = false;
  TruncationReason truncated_reason = TruncationReason::kNone;
  // --- Fault-layer accounting (all zero in a fault-free run). ---
  std::size_t mcv_breakdowns = 0;   ///< MCV failures over the period,
                                    ///< energy exhaustions included
  std::size_t sensors_failed = 0;   ///< sensors that died permanently
  std::size_t recovered_sensors = 0;  ///< orphans charged by recovery
  std::size_t deferred_sensors = 0;   ///< orphans pushed to a later round
  double extra_recovery_delay_s = 0.0;  ///< total delay added by recovery
  // --- Energy accounting (zero unless config.mcv_budget is enabled). ---
  /// Tours aborted by battery exhaustion (subset of mcv_breakdowns).
  std::size_t mcv_energy_exhausted = 0;
  /// Total joules the fleet drew over the period, summed over the primary
  /// execution of every round. The kReplan recovery wave departs the
  /// depot recharged and runs budget-free, so its draw is not metered.
  double mcv_energy_spent_j = 0.0;
  /// Largest draw any single MCV made on one tour over the whole period —
  /// the capacity at which no tour would have exhausted. Calibration
  /// anchor for budget sweeps (bench/fault_ablation).
  double mcv_energy_max_tour_j = 0.0;
  /// Every per-MCV tour draw over the period (round order, MCV order
  /// within a round) — filled iff config.record_tour_energy and the
  /// budget is enabled. Sorting this gives the exact draw distribution a
  /// sweep needs to place a capacity at a target abort quantile.
  std::vector<double> mcv_tour_energy_j;

  double mean_longest_delay_hours() const {
    return round_longest_delay_s.mean() / 3600.0;
  }
  /// Largest per-sensor dead time, in minutes (0 for an empty network).
  double max_dead_minutes_per_sensor() const;
};

/// Snaps a dispatch instant up to the next boundary of `epoch` (> 0),
/// never before `fleet_ready`. The 1e-12 relative fudge keeps a dispatch
/// already sitting on a boundary from being pushed a whole epoch by
/// floating-point noise — but that same fudge can round *down* past
/// fleet_ready when the fleet returns a hair after a boundary, which
/// would dispatch the fleet before it is home; this helper re-snaps from
/// fleet_ready (and clamps) so the result is always >= fleet_ready.
/// Exposed for direct adversarial testing (sim_test.cpp).
double snap_dispatch_to_epoch(double dispatch, double epoch,
                              double fleet_ready);

/// Runs one full monitoring period of `instance` under `scheduler`.
SimResult simulate(const model::WrsnInstance& instance,
                   const sched::Scheduler& scheduler,
                   const SimConfig& config = {});

}  // namespace mcharge::sim
