#include "sim/faults.h"

#include "util/assert.h"
#include "util/rng.h"

namespace mcharge::sim {

namespace {

// Stream tags keep the fault classes on statistically independent draw
// sequences even when they share a (round, entity) key.
enum Stream : std::uint64_t {
  kStreamBreakdown = 1,
  kStreamBreakdownAt = 2,
  kStreamTravel = 3,
  kStreamCharge = 4,
  kStreamDeath = 5,
  kStreamDispatch = 6,
};

std::uint64_t draw(std::uint64_t seed, std::uint64_t stream,
                   std::uint64_t round, std::uint64_t entity) {
  return derive_seed(derive_seed(seed ^ (stream * 0x9e3779b97f4a7c15ULL),
                                 round),
                     entity);
}

/// Uniform double in [0, 1) from a single hash output.
double u01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Multiplier uniform in [1-j, 1+j).
double jitter_mult(std::uint64_t bits, double j) {
  return 1.0 + j * (2.0 * u01(bits) - 1.0);
}

}  // namespace

FaultModel::FaultModel(const FaultConfig& config) : config_(config) {
  MCHARGE_ASSERT(config.mcv_breakdown_prob >= 0.0 &&
                     config.mcv_breakdown_prob <= 1.0,
                 "mcv_breakdown_prob must be in [0, 1]");
  MCHARGE_ASSERT(config.travel_jitter >= 0.0 && config.travel_jitter <= 0.9,
                 "travel_jitter must be in [0, 0.9]");
  MCHARGE_ASSERT(config.charge_jitter >= 0.0 && config.charge_jitter <= 0.9,
                 "charge_jitter must be in [0, 0.9]");
  MCHARGE_ASSERT(config.sensor_death_prob >= 0.0 &&
                     config.sensor_death_prob <= 1.0,
                 "sensor_death_prob must be in [0, 1]");
  MCHARGE_ASSERT(config.dispatch_delay_prob >= 0.0 &&
                     config.dispatch_delay_prob <= 1.0,
                 "dispatch_delay_prob must be in [0, 1]");
  MCHARGE_ASSERT(config.dispatch_delay_max_s >= 0.0,
                 "dispatch_delay_max_s must be >= 0");
}

bool FaultModel::mcv_breaks(std::uint64_t round, std::uint32_t mcv) const {
  if (config_.mcv_breakdown_prob <= 0.0) return false;
  return u01(draw(config_.seed, kStreamBreakdown, round, mcv)) <
         config_.mcv_breakdown_prob;
}

std::uint32_t FaultModel::breakdown_stop(std::uint64_t round,
                                         std::uint32_t mcv,
                                         std::uint32_t tour_len) const {
  MCHARGE_ASSERT(tour_len > 0, "breakdown_stop needs a non-empty tour");
  const double u = u01(draw(config_.seed, kStreamBreakdownAt, round, mcv));
  auto stop = static_cast<std::uint32_t>(u * tour_len);
  return stop < tour_len ? stop : tour_len - 1;
}

double FaultModel::travel_multiplier(std::uint64_t round, std::uint32_t mcv,
                                     std::size_t leg) const {
  if (config_.travel_jitter <= 0.0) return 1.0;
  const std::uint64_t entity =
      (static_cast<std::uint64_t>(mcv) << 32) | static_cast<std::uint64_t>(leg);
  return jitter_mult(draw(config_.seed, kStreamTravel, round, entity),
                     config_.travel_jitter);
}

double FaultModel::charge_multiplier(std::uint64_t round,
                                     std::uint32_t location) const {
  if (config_.charge_jitter <= 0.0) return 1.0;
  return jitter_mult(draw(config_.seed, kStreamCharge, round, location),
                     config_.charge_jitter);
}

bool FaultModel::sensor_dies(std::uint64_t round, std::uint32_t v) const {
  if (config_.sensor_death_prob <= 0.0) return false;
  return u01(draw(config_.seed, kStreamDeath, round, v)) <
         config_.sensor_death_prob;
}

double FaultModel::dispatch_delay(std::uint64_t round) const {
  if (config_.dispatch_delay_prob <= 0.0 || config_.dispatch_delay_max_s <= 0.0)
    return 0.0;
  if (u01(draw(config_.seed, kStreamDispatch, round, 0)) >=
      config_.dispatch_delay_prob)
    return 0.0;
  return config_.dispatch_delay_max_s *
         u01(draw(config_.seed, kStreamDispatch, round, 1));
}

sched::ExecutionFaults FaultModel::round_faults(
    std::uint64_t round, const sched::ChargingPlan& plan) const {
  sched::ExecutionFaults faults;
  if (config_.mcv_breakdown_prob > 0.0) {
    bool any = false;
    faults.breakdown_after.assign(plan.tours.size(),
                                  sched::ExecutionFaults::kNoBreakdown);
    for (std::uint32_t k = 0; k < plan.tours.size(); ++k) {
      const auto len = static_cast<std::uint32_t>(plan.tours[k].size());
      if (len == 0 || !mcv_breaks(round, k)) continue;
      faults.breakdown_after[k] = breakdown_stop(round, k, len);
      any = true;
    }
    if (!any) faults.breakdown_after.clear();
  }
  if (config_.travel_jitter > 0.0) {
    // Capture by value: the closure must stay a pure function of its
    // arguments even if this FaultModel goes away.
    const std::uint64_t seed = config_.seed;
    const double j = config_.travel_jitter;
    faults.travel_multiplier = [seed, j, round](std::uint32_t mcv,
                                                std::size_t leg) {
      const std::uint64_t entity = (static_cast<std::uint64_t>(mcv) << 32) |
                                   static_cast<std::uint64_t>(leg);
      return jitter_mult(draw(seed, kStreamTravel, round, entity), j);
    };
  }
  if (config_.charge_jitter > 0.0) {
    const std::uint64_t seed = config_.seed;
    const double j = config_.charge_jitter;
    faults.charge_multiplier = [seed, j, round](std::uint32_t location) {
      return jitter_mult(draw(seed, kStreamCharge, round, location), j);
    };
  }
  return faults;
}

}  // namespace mcharge::sim
