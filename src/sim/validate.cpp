#include "sim/validate.h"

#include <cmath>
#include <sstream>

namespace mcharge::sim {

namespace {

bool pos_finite(double x) { return std::isfinite(x) && x > 0.0; }

std::optional<ConfigError> err(ConfigErrorCode code, const std::string& msg) {
  return ConfigError{code, msg};
}

}  // namespace

std::optional<ConfigError> validate_sim_inputs(
    const model::WrsnInstance& instance, const SimConfig& config) {
  const model::NetworkConfig& net = instance.config;

  if (net.num_chargers < 1) {
    return err(ConfigErrorCode::kEmptyFleet, "num_chargers must be >= 1");
  }
  if (!pos_finite(net.battery_capacity_j)) {
    return err(ConfigErrorCode::kBadCapacity,
               "battery_capacity_j must be positive and finite");
  }
  if (!pos_finite(net.charging_rate_w)) {
    return err(ConfigErrorCode::kBadChargingRate,
               "charging_rate_w must be positive and finite");
  }
  if (!pos_finite(net.mcv_speed)) {
    return err(ConfigErrorCode::kBadSpeed,
               "mcv_speed must be positive and finite");
  }
  if (!pos_finite(net.charging_radius)) {
    return err(ConfigErrorCode::kBadChargingRadius,
               "charging_radius must be positive and finite");
  }
  if (!std::isfinite(net.request_threshold) || net.request_threshold <= 0.0 ||
      net.request_threshold >= 1.0) {
    return err(ConfigErrorCode::kBadThreshold,
               "request_threshold must be in (0, 1)");
  }
  if (!std::isfinite(config.charge_target_fraction) ||
      config.charge_target_fraction <= net.request_threshold ||
      config.charge_target_fraction > 1.0) {
    return err(ConfigErrorCode::kBadChargeTarget,
               "charge_target_fraction must be in (request_threshold, 1]");
  }
  if (!pos_finite(config.monitoring_period_s)) {
    return err(ConfigErrorCode::kBadHorizon,
               "monitoring_period_s must be positive and finite");
  }
  if (!std::isfinite(config.initial_level_fraction) ||
      config.initial_level_fraction < 0.0 ||
      config.initial_level_fraction > 1.0) {
    return err(ConfigErrorCode::kBadInitialLevel,
               "initial_level_fraction must be in [0, 1]");
  }
  if (!pos_finite(config.empty_round_backoff_s)) {
    return err(ConfigErrorCode::kBadBackoff,
               "empty_round_backoff_s must be positive and finite");
  }
  if (!std::isfinite(config.dispatch_epoch_s) ||
      config.dispatch_epoch_s < 0.0) {
    return err(ConfigErrorCode::kBadEpoch,
               "dispatch_epoch_s must be >= 0 and finite");
  }
  if (config.max_rounds == 0) {
    return err(ConfigErrorCode::kBadMaxRounds, "max_rounds must be >= 1");
  }

  const FaultConfig& f = config.faults;
  auto bad_prob = [](double p) { return !std::isfinite(p) || p < 0.0 || p > 1.0; };
  if (bad_prob(f.mcv_breakdown_prob)) {
    return err(ConfigErrorCode::kBadFaultConfig,
               "faults.mcv_breakdown_prob must be in [0, 1]");
  }
  if (bad_prob(f.sensor_death_prob)) {
    return err(ConfigErrorCode::kBadFaultConfig,
               "faults.sensor_death_prob must be in [0, 1]");
  }
  if (bad_prob(f.dispatch_delay_prob)) {
    return err(ConfigErrorCode::kBadFaultConfig,
               "faults.dispatch_delay_prob must be in [0, 1]");
  }
  if (!std::isfinite(f.travel_jitter) || f.travel_jitter < 0.0 ||
      f.travel_jitter > 0.9) {
    return err(ConfigErrorCode::kBadFaultConfig,
               "faults.travel_jitter must be in [0, 0.9]");
  }
  if (!std::isfinite(f.charge_jitter) || f.charge_jitter < 0.0 ||
      f.charge_jitter > 0.9) {
    return err(ConfigErrorCode::kBadFaultConfig,
               "faults.charge_jitter must be in [0, 0.9]");
  }
  if (!std::isfinite(f.dispatch_delay_max_s) || f.dispatch_delay_max_s < 0.0) {
    return err(ConfigErrorCode::kBadFaultConfig,
               "faults.dispatch_delay_max_s must be >= 0 and finite");
  }

  // MCV energy budget: 0 capacity disables the whole subsystem, but the
  // cost-model fields must stay coherent even then (an enabled run built
  // from a disabled template must not inherit a poisoned cost model).
  const energy::McvBudgetSpec& b = config.mcv_budget;
  if (!std::isfinite(b.capacity_j) || b.capacity_j < 0.0) {
    return err(ConfigErrorCode::kBadMcvBudget,
               "mcv_budget.capacity_j must be >= 0 and finite");
  }
  if (!std::isfinite(b.move_cost_j_per_m) || b.move_cost_j_per_m < 0.0) {
    return err(ConfigErrorCode::kBadMcvBudget,
               "mcv_budget.move_cost_j_per_m must be >= 0 and finite");
  }
  if (!std::isfinite(b.transfer_efficiency) || b.transfer_efficiency <= 0.0 ||
      b.transfer_efficiency > 1.0) {
    return err(ConfigErrorCode::kBadMcvBudget,
               "mcv_budget.transfer_efficiency must be in (0, 1]");
  }

  if (!std::isfinite(net.depot.x) || !std::isfinite(net.depot.y)) {
    return err(ConfigErrorCode::kNonFiniteSensorData,
               "depot position must be finite");
  }
  for (std::size_t v = 0; v < instance.num_sensors(); ++v) {
    const geom::Point p = instance.positions[v];
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      std::ostringstream os;
      os << "sensor " << v << " has a non-finite position";
      return err(ConfigErrorCode::kNonFiniteSensorData, os.str());
    }
    const double w = instance.consumption_w[v];
    if (!std::isfinite(w) || w < 0.0) {
      std::ostringstream os;
      os << "sensor " << v << " has a non-finite or negative consumption";
      return err(ConfigErrorCode::kNonFiniteSensorData, os.str());
    }
  }
  return std::nullopt;
}

Expected<SimResult, ConfigError> simulate_checked(
    const model::WrsnInstance& instance, const sched::Scheduler& scheduler,
    const SimConfig& config) {
  if (auto error = validate_sim_inputs(instance, config)) {
    return make_unexpected(std::move(*error));
  }
  return simulate(instance, scheduler, config);
}

}  // namespace mcharge::sim
