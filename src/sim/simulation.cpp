#include "sim/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <vector>

#include "core/replan.h"
#include "obs/obs.h"
#include "schedule/execute.h"
#include "schedule/verify.h"
#include "sim/faults.h"
#include "sim/validate.h"
#include "util/assert.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace mcharge::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Strictly-past-the-threshold nudge on predicted crossings, so that the
/// batch collector (which tests `level < threshold`) sees the sensor even
/// under floating-point rounding of the lazy level update.
constexpr double kCrossingEps = 1e-6;

/// Per-sensor dynamic state in SoA layout, so the two per-round scans
/// (earliest crossing, advance + batch collection) run through the
/// simd::crossing_min / simd::advance_select_below kernels. Levels are
/// tracked lazily: level[v] is the battery level at time as_of[v]; the
/// linear draw makes any later level a closed-form expression.
/// dead_since[v] is the instant the battery hit zero (inf while alive).
struct SensorSoa {
  std::vector<double> level;
  std::vector<double> as_of;
  std::vector<double> dead_since;
};

/// Contiguous index shards for the per-sensor scans. The shard count is a
/// pure function of (n, jobs, shard_grain) — never of thread timing — and
/// the reductions below preserve global index order, so any shard count
/// yields bit-identical results (see SimConfig::jobs).
struct ShardPlan {
  std::size_t n = 0;
  std::size_t shards = 1;

  ShardPlan(std::size_t n_, std::size_t jobs, std::size_t grain) : n(n_) {
    const std::size_t j = jobs == 0 ? default_jobs() : jobs;
    const std::size_t g = std::max<std::size_t>(1, grain);
    shards = j <= 1 ? 1 : std::min(j, std::max<std::size_t>(1, n / g));
  }
  std::size_t begin(std::size_t s) const { return s * n / shards; }
  std::size_t end(std::size_t s) const { return (s + 1) * n / shards; }
};

}  // namespace

double SimResult::max_dead_minutes_per_sensor() const {
  double worst = 0.0;
  for (double s : dead_seconds_per_sensor) worst = std::max(worst, s);
  return worst / 60.0;
}

double snap_dispatch_to_epoch(double dispatch, double epoch,
                              double fleet_ready) {
  MCHARGE_ASSERT(epoch > 0.0, "epoch snap needs a positive epoch");
  double snapped = std::ceil(dispatch / epoch - 1e-12) * epoch;
  if (snapped < fleet_ready) {
    // The fudge rounded down past the fleet's return; take the first
    // boundary at or after fleet_ready instead (no fudge: here rounding
    // up a whole epoch is correct, dispatching early is not).
    snapped = std::ceil(fleet_ready / epoch) * epoch;
    if (snapped < fleet_ready) snapped = fleet_ready;
  }
  MCHARGE_ASSERT(snapped >= fleet_ready, "epoch dispatch before fleet return");
  return snapped;
}

SimResult simulate(const model::WrsnInstance& instance,
                   const sched::Scheduler& scheduler,
                   const SimConfig& config) {
  const obs::EnabledScope trace_scope(config.trace);
  const std::size_t n = instance.num_sensors();
  const model::NetworkConfig& net = instance.config;
  const double capacity = net.battery_capacity_j;
  const double threshold_j = net.request_threshold * capacity;
  const double horizon = config.monitoring_period_s;

  // Up-front structured validation: every precondition of the round loop
  // is checked here; simulate_checked() exposes the same check without the
  // abort for callers that must survive hostile input.
  if (auto input_error = validate_sim_inputs(instance, config)) {
    MCHARGE_ASSERT(false, input_error->message.c_str());
  }
  const double target_j = config.charge_target_fraction * capacity;

  SimResult result;
  if (n == 0) return result;
  result.dead_seconds_per_sensor.assign(n, 0.0);
  result.charges_per_sensor.assign(n, 0);
  constexpr double kMonth = 30.0 * 86400.0;
  result.dead_seconds_by_month.assign(
      static_cast<std::size_t>(std::ceil(horizon / kMonth)), 0.0);

  // Credits the dead interval [from, to) to sensor v and to the 30-day
  // buckets it spans.
  auto credit_dead = [&](std::size_t v, double from, double to) {
    if (to <= from) return;
    result.total_dead_seconds += to - from;
    result.dead_seconds_per_sensor[v] += to - from;
    double at = from;
    while (at < to) {
      const auto bucket = std::min(
          result.dead_seconds_by_month.size() - 1,
          static_cast<std::size_t>(at / kMonth));
      const double bucket_end = (static_cast<double>(bucket) + 1.0) * kMonth;
      const double end = std::min(to, bucket_end);
      result.dead_seconds_by_month[bucket] += end - at;
      at = end;
    }
  };

  const FaultModel fault_model(config.faults);
  const bool deaths_on = config.faults.sensor_death_prob > 0.0;
  const double* draw = instance.consumption_w.data();
  // Sensor death needs a mutable draw array (a dead sensor stops
  // consuming); copy only when that fault class is enabled so the
  // fault-free path reads the instance's own memory as before.
  std::vector<double> draw_override;
  if (deaths_on) {
    draw_override = instance.consumption_w;
    draw = draw_override.data();
  }
  std::vector<char> failed(deaths_on ? n : 0, 0);
  SensorSoa state;
  state.level.assign(n, config.initial_level_fraction * capacity);
  state.as_of.assign(n, 0.0);
  state.dead_since.assign(n, kInf);
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);

  const ShardPlan plan_shards(n, config.jobs, config.shard_grain);
  const std::size_t shards = plan_shards.shards;
  std::optional<ThreadPool> pool;
  if (shards > 1) pool.emplace(shards);
  std::vector<double> shard_min(shards, kInf);
  std::vector<std::size_t> shard_count(shards, 0);
  std::vector<std::uint32_t> select_scratch(n);

  // Advances sensor v's lazy state to time t; the scalar twin of the
  // simd::advance_select_below per-element update, for the sparse
  // per-completion advances where a vector scan has nothing to batch.
  auto advance_one = [&](std::size_t v, double t) {
    if (t <= state.as_of[v]) return;
    const double drained = draw[v] * (t - state.as_of[v]);
    if (drained >= state.level[v] && draw[v] > 0.0) {
      if (state.dead_since[v] == kInf) {
        state.dead_since[v] = state.as_of[v] + state.level[v] / draw[v];
      }
      state.level[v] = 0.0;
    } else {
      state.level[v] -= drained;
    }
    state.as_of[v] = t;
  };

  double fleet_ready = 0.0;
  double busy_seconds = 0.0;
  // Time each sensor's pending request was raised (kInf = not pending).
  std::vector<double> pending_since(n, kInf);

  while (true) {
    // Permanent sensor deaths, drawn per (round, sensor) at the moment the
    // base station could next react. A dead sensor settles its dead-time
    // account, then leaves the network: zero draw and a full "level" keep
    // it out of both scans and the batch forever.
    if (deaths_on) {
      const double t_now = std::min(fleet_ready, horizon);
      for (std::size_t v = 0; v < n; ++v) {
        if (failed[v] || !fault_model.sensor_dies(result.rounds,
                                                  static_cast<std::uint32_t>(v)))
          continue;
        advance_one(v, t_now);
        if (state.dead_since[v] != kInf) {
          credit_dead(v, state.dead_since[v], t_now);
          state.dead_since[v] = kInf;
        }
        failed[v] = 1;
        ++result.sensors_failed;
        draw_override[v] = 0.0;
        state.level[v] = capacity;
        state.as_of[v] = t_now;
        pending_since[v] = kInf;
      }
    }

    // Next request among all sensors: per-sensor threshold crossings (now
    // for already-below sensors), min-reduced in shard index order.
    OBS_SPAN("sim.round");
    double first_request = kInf;
    {
      OBS_SPAN("sim.crossing_scan");
      if (shards == 1) {
        first_request =
            simd::crossing_min(state.level.data(), state.as_of.data(), draw,
                               n, threshold_j, kCrossingEps);
      } else {
        for (std::size_t s = 0; s < shards; ++s) {
          pool->submit([&, s] {
            const std::size_t b = plan_shards.begin(s);
            shard_min[s] = simd::crossing_min(
                state.level.data() + b, state.as_of.data() + b, draw + b,
                plan_shards.end(s) - b, threshold_j, kCrossingEps);
          });
        }
        pool->wait_idle();
        for (std::size_t s = 0; s < shards; ++s) {
          if (shard_min[s] < first_request) first_request = shard_min[s];
        }
      }
    }
    if (first_request >= horizon) break;
    if (result.rounds >= config.max_rounds) {
      // Work remains but the round budget is exhausted: the aggregates
      // cover only a prefix of the period. Callers must not read this as
      // a full-horizon result.
      result.truncated = true;
      result.truncated_reason = TruncationReason::kMaxRounds;
      break;
    }

    double dispatch = std::max(first_request, fleet_ready);
    if (config.dispatch_epoch_s > 0.0) {
      // Epoch policy: the fleet only leaves on epoch boundaries.
      dispatch =
          snap_dispatch_to_epoch(dispatch, config.dispatch_epoch_s,
                                 fleet_ready);
    }
    if (config.faults.dispatch_delay_prob > 0.0) {
      // Transient depot fault: the whole fleet leaves late this round.
      dispatch += fault_model.dispatch_delay(result.rounds);
    }
    if (dispatch >= horizon) break;
    MCHARGE_ASSERT(dispatch >= fleet_ready,
                   "dispatch while the fleet is still out");

    // Freeze V_s: advance everyone to dispatch time and collect everything
    // below threshold. Per-shard fragments land at the shard's own offset
    // in the scratch buffer (a shard selects at most its own length), then
    // concatenate in shard index order == global index order.
    std::vector<std::uint32_t> batch;
    {
      OBS_SPAN("sim.select_scan");
      if (shards == 1) {
        const std::size_t got = simd::advance_select_below(
            state.level.data(), state.as_of.data(), state.dead_since.data(),
            draw, n, dispatch, threshold_j, ids.data(),
            select_scratch.data());
        batch.assign(
            select_scratch.begin(),
            select_scratch.begin() + static_cast<std::ptrdiff_t>(got));
      } else {
        for (std::size_t s = 0; s < shards; ++s) {
          pool->submit([&, s, dispatch] {
            const std::size_t b = plan_shards.begin(s);
            shard_count[s] = simd::advance_select_below(
                state.level.data() + b, state.as_of.data() + b,
                state.dead_since.data() + b, draw + b, plan_shards.end(s) - b,
                dispatch, threshold_j, ids.data() + b,
                select_scratch.data() + b);
          });
        }
        pool->wait_idle();
        for (std::size_t s = 0; s < shards; ++s) {
          const std::size_t b = plan_shards.begin(s);
          batch.insert(batch.end(), select_scratch.begin() + b,
                       select_scratch.begin() + b + shard_count[s]);
        }
      }
    }
    MCHARGE_ASSERT(!batch.empty(), "dispatch with an empty request set");

    for (std::uint32_t v : batch) {
      if (pending_since[v] == kInf) {
        // Reconstruct the actual crossing instant from the linear draw.
        // A sensor that *started* below the threshold never crossed it —
        // the reconstruction would land before t = 0 — so the request is
        // pending from the start of the period, never earlier.
        pending_since[v] =
            draw[v] > 0.0
                ? std::max(0.0, dispatch -
                                    (threshold_j - state.level[v]) / draw[v])
                : dispatch;
      }
    }

    std::vector<geom::Point> positions;
    std::vector<double> charge_seconds;
    std::vector<double> lifetimes;
    positions.reserve(batch.size());
    charge_seconds.reserve(batch.size());
    lifetimes.reserve(batch.size());
    for (std::uint32_t v : batch) {
      positions.push_back(instance.positions[v]);
      charge_seconds.push_back(
          net.charge_seconds(std::max(0.0, target_j - state.level[v])));
      lifetimes.push_back(draw[v] > 0.0 ? state.level[v] / draw[v] : kInf);
    }
    model::ChargingProblem problem(
        std::move(positions), std::move(charge_seconds), net.depot,
        net.charging_radius, net.mcv_speed, net.num_chargers);
    problem.set_residual_lifetimes(std::move(lifetimes));
    problem.set_charging_rate(net.charging_rate_w);

    sched::ChargingPlan plan;
    {
      OBS_SPAN("sim.plan");
      plan = scheduler.plan_with_jobs(problem, config.plan_jobs);
    }
    sched::ExecutionFaults round_fault;
    if (fault_model.enabled()) {
      round_fault = fault_model.round_faults(result.rounds, plan);
    }
    // The energy budget rides the fault bundle: budget.enabled() makes
    // round_fault.any() true, routing the round through recover_round so
    // exhaustion aborts hit the same recovery machinery as breakdowns.
    // MCVs recharge at the depot between rounds, so each round's bundle
    // carries the full budget.
    if (config.mcv_budget.enabled()) round_fault.budget = config.mcv_budget;

    sched::ChargingSchedule schedule;
    std::vector<double> merged_charged_at;
    const std::vector<double>* charged_at = nullptr;
    double round_delay = 0.0;
    double round_wait = 0.0;
    RoundLog round_log;
    if (round_fault.any()) {
      // Faulty round: execute under the fault bundle and let the recovery
      // policy deal with whatever the breakdowns orphaned. The primary
      // (possibly partial) schedule is verified against the same fault
      // bundle; a recovery wave is verified as a normal full-coverage
      // schedule of its own sub-problem.
      core::RecoveryOutcome outcome =
          core::recover_round(problem, plan, round_fault, config.recovery);
      OBS_COUNT("sim.faulty_rounds", 1);
      sched::VerifyOptions verify_options;
      verify_options.require_full_coverage = false;
      verify_options.allow_partial = true;
      verify_options.faults = &round_fault;
      result.verify_violations +=
          sched::verify_schedule(problem, outcome.primary, verify_options)
              .size();
      round_wait = outcome.primary.total_wait();
      merged_charged_at = outcome.primary.charged_at;
      if (outcome.has_recovery) {
        result.verify_violations +=
            sched::verify_schedule(outcome.replan.subproblem,
                                   outcome.recovery)
                .size();
        round_wait += outcome.recovery.total_wait();
        for (std::size_t i = 0; i < outcome.replan.original_index.size();
             ++i) {
          if (outcome.recovery.charged_at[i] == sched::kNeverCharged) {
            continue;
          }
          merged_charged_at[outcome.replan.original_index[i]] =
              outcome.recovery_offset_s + outcome.recovery.charged_at[i];
        }
      }
      charged_at = &merged_charged_at;
      round_delay = outcome.longest_delay();
      result.mcv_breakdowns += outcome.stats.breakdowns;
      result.recovered_sensors += outcome.stats.recovered_sensors;
      result.deferred_sensors += outcome.stats.deferred_sensors;
      result.extra_recovery_delay_s += outcome.stats.extra_delay_s;
      round_log.breakdowns = outcome.stats.breakdowns;
      round_log.recovered = outcome.stats.recovered_sensors;
      round_log.deferred = outcome.stats.deferred_sensors;
      round_log.extra_delay_s = outcome.stats.extra_delay_s;
      if (config.mcv_budget.enabled()) {
        std::size_t exhausted = 0;
        double spent_j = 0.0;
        double max_tour_j = 0.0;
        for (const auto& m : outcome.primary.mcvs) {
          if (m.abort_cause == sched::BreakdownCause::kEnergyExhausted) {
            ++exhausted;
          }
          spent_j += m.energy_spent_j;
          max_tour_j = std::max(max_tour_j, m.energy_spent_j);
          if (config.record_tour_energy) {
            result.mcv_tour_energy_j.push_back(m.energy_spent_j);
          }
        }
        result.mcv_energy_exhausted += exhausted;
        result.mcv_energy_spent_j += spent_j;
        result.mcv_energy_max_tour_j =
            std::max(result.mcv_energy_max_tour_j, max_tour_j);
        round_log.energy_aborts = exhausted;
        round_log.energy_spent_j = spent_j;
        round_log.energy_max_tour_j = max_tour_j;
        OBS_COUNT("sim.energy_spent", std::llround(spent_j));
      }
    } else {
      schedule = sched::execute_plan(problem, plan);

      // One-to-one baselines may legitimately skip sensors (AA's profit
      // pruning); do not demand full coverage, only internal consistency.
      sched::VerifyOptions verify_options;
      verify_options.require_full_coverage = false;
      result.verify_violations +=
          sched::verify_schedule(problem, schedule, verify_options).size();
      charged_at = &schedule.charged_at;
      round_delay = schedule.longest_delay();
      round_wait = schedule.total_wait();
    }

    ++result.rounds;
    result.round_batch_size.add(static_cast<double>(batch.size()));
    result.round_longest_delay_s.add(round_delay);
    result.total_conflict_wait_s += round_wait;

    // Apply charge completions.
    std::size_t charged_count = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if ((*charged_at)[i] == sched::kNeverCharged) continue;
      const std::uint32_t v = batch[i];
      const double done = dispatch + (*charged_at)[i];
      // Dead-time accounting up to the charge completion (or horizon).
      advance_one(v, std::min(done, horizon));
      if (state.dead_since[v] != kInf) {
        credit_dead(v, state.dead_since[v], std::min(done, horizon));
        state.dead_since[v] = kInf;
      }
      if (done < horizon) {
        state.level[v] = target_j;
        state.as_of[v] = done;
        ++charged_count;
        ++result.charges_per_sensor[v];
        if (pending_since[v] != kInf) {
          result.request_latency_s.add(done - pending_since[v]);
          pending_since[v] = kInf;
        }
      } else {
        // Charge completes after the monitoring period; the event is
        // censored and contributes no latency sample.
        state.level[v] = target_j;
        state.as_of[v] = horizon;
        pending_since[v] = kInf;
      }
    }
    result.sensors_charged += charged_count;
    if (config.record_rounds) {
      round_log.dispatch_time = dispatch;
      round_log.batch = batch.size();
      round_log.charged = charged_count;
      round_log.longest_delay_s = round_delay;
      round_log.wait_s = round_wait;
      result.rounds_log.push_back(round_log);
    }

    if (round_delay > 0.0) {
      if (dispatch + round_delay > horizon) {
        // The period ended while the fleet was still out: this round's
        // contribution is censored at the horizon.
        result.truncated = true;
        result.truncated_reason = TruncationReason::kHorizonMidRound;
      }
      busy_seconds += std::min(dispatch + round_delay, horizon) - dispatch;
      fleet_ready = dispatch + round_delay;
    } else {
      // Nothing was charged (degenerate plan); back off to avoid spinning.
      fleet_ready = dispatch + config.empty_round_backoff_s;
    }
  }

  // Close out dead time for sensors still dead at the horizon.
  for (std::size_t v = 0; v < n; ++v) {
    advance_one(v, horizon);
    if (state.dead_since[v] != kInf) {
      credit_dead(v, state.dead_since[v], horizon);
      state.dead_since[v] = kInf;
    }
  }

  result.mean_dead_minutes_per_sensor =
      result.total_dead_seconds / static_cast<double>(n) / 60.0;
  // Utilization is busy time over *simulated* time. For a run that covers
  // the period that is the horizon; for a kMaxRounds truncation only the
  // prefix up to the fleet's last return was simulated, and dividing by
  // the full horizon would shrink busy_fraction with the (arbitrary)
  // round budget instead of measuring the fleet.
  const double elapsed =
      result.truncated_reason == TruncationReason::kMaxRounds
          ? std::min(fleet_ready, horizon)
          : horizon;
  result.busy_fraction = elapsed > 0.0 ? busy_seconds / elapsed : 0.0;
  return result;
}

}  // namespace mcharge::sim
