#include "sim/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/assert.h"

namespace mcharge::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-sensor dynamic state. Levels are tracked lazily: `level` is the
/// battery level at time `as_of`; the linear draw makes any later level a
/// closed-form expression.
struct SensorState {
  double level = 0.0;
  double as_of = 0.0;
  double dead_since = kInf;  ///< time the battery hit zero (inf if alive)
};

}  // namespace

double SimResult::max_dead_minutes_per_sensor() const {
  double worst = 0.0;
  for (double s : dead_seconds_per_sensor) worst = std::max(worst, s);
  return worst / 60.0;
}

SimResult simulate(const model::WrsnInstance& instance,
                   const sched::Scheduler& scheduler,
                   const SimConfig& config) {
  const std::size_t n = instance.num_sensors();
  const model::NetworkConfig& net = instance.config;
  const double capacity = net.battery_capacity_j;
  const double threshold_j = net.request_threshold * capacity;
  const double horizon = config.monitoring_period_s;

  MCHARGE_ASSERT(config.charge_target_fraction > net.request_threshold &&
                     config.charge_target_fraction <= 1.0,
                 "charge target must be in (threshold, 1]");
  const double target_j = config.charge_target_fraction * capacity;

  SimResult result;
  if (n == 0) return result;
  result.dead_seconds_per_sensor.assign(n, 0.0);
  result.charges_per_sensor.assign(n, 0);
  constexpr double kMonth = 30.0 * 86400.0;
  result.dead_seconds_by_month.assign(
      static_cast<std::size_t>(std::ceil(horizon / kMonth)), 0.0);

  // Credits the dead interval [from, to) to sensor v and to the 30-day
  // buckets it spans.
  auto credit_dead = [&](std::size_t v, double from, double to) {
    if (to <= from) return;
    result.total_dead_seconds += to - from;
    result.dead_seconds_per_sensor[v] += to - from;
    double at = from;
    while (at < to) {
      const auto bucket = std::min(
          result.dead_seconds_by_month.size() - 1,
          static_cast<std::size_t>(at / kMonth));
      const double bucket_end = (static_cast<double>(bucket) + 1.0) * kMonth;
      const double end = std::min(to, bucket_end);
      result.dead_seconds_by_month[bucket] += end - at;
      at = end;
    }
  };

  std::vector<SensorState> state(n);
  for (std::size_t v = 0; v < n; ++v) {
    state[v].level = config.initial_level_fraction * capacity;
    state[v].as_of = 0.0;
  }

  // Advances sensor v's lazy state to time t (t >= as_of), accruing dead
  // time into result when the battery empties.
  auto advance = [&](std::size_t v, double t) {
    SensorState& s = state[v];
    if (t <= s.as_of) return;
    const double draw = instance.consumption_w[v];
    const double drained = draw * (t - s.as_of);
    if (drained >= s.level && draw > 0.0) {
      if (s.dead_since == kInf) {
        s.dead_since = s.as_of + s.level / draw;
      }
      s.level = 0.0;
    } else {
      s.level -= drained;
    }
    s.as_of = t;
  };

  // Earliest time sensor v (currently not awaiting charge) crosses the
  // request threshold; now if already below. The tiny epsilon pushes the
  // crossing strictly past the threshold so that the batch collector (which
  // tests `level < threshold`) sees the sensor even under floating-point
  // rounding of the lazy level update.
  auto crossing_time = [&](std::size_t v) {
    const SensorState& s = state[v];
    if (s.level < threshold_j) return s.as_of;
    const double draw = instance.consumption_w[v];
    if (draw <= 0.0) return kInf;
    return s.as_of + (s.level - threshold_j) / draw + 1e-6;
  };

  double fleet_ready = 0.0;
  double busy_seconds = 0.0;
  // Time each sensor's pending request was raised (kInf = not pending).
  std::vector<double> pending_since(n, kInf);

  while (result.rounds < config.max_rounds) {
    // Next request among all sensors.
    double first_request = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      first_request = std::min(first_request, crossing_time(v));
    }
    if (first_request >= horizon) break;

    double dispatch = std::max(first_request, fleet_ready);
    if (config.dispatch_epoch_s > 0.0) {
      // Epoch policy: the fleet only leaves on epoch boundaries.
      const double epoch = config.dispatch_epoch_s;
      dispatch = std::ceil(dispatch / epoch - 1e-12) * epoch;
    }
    if (dispatch >= horizon) break;

    // Freeze V_s: everything below threshold at dispatch time.
    std::vector<std::uint32_t> batch;
    for (std::size_t v = 0; v < n; ++v) {
      advance(v, dispatch);
      if (state[v].level < threshold_j) {
        batch.push_back(static_cast<std::uint32_t>(v));
        if (pending_since[v] == kInf) {
          // Reconstruct the actual crossing instant from the linear draw.
          const double draw = instance.consumption_w[v];
          pending_since[v] =
              draw > 0.0
                  ? dispatch - (threshold_j - state[v].level) / draw
                  : dispatch;
        }
      }
    }
    MCHARGE_ASSERT(!batch.empty(), "dispatch with an empty request set");

    std::vector<geom::Point> positions;
    std::vector<double> charge_seconds;
    std::vector<double> lifetimes;
    positions.reserve(batch.size());
    charge_seconds.reserve(batch.size());
    lifetimes.reserve(batch.size());
    for (std::uint32_t v : batch) {
      positions.push_back(instance.positions[v]);
      charge_seconds.push_back(
          net.charge_seconds(std::max(0.0, target_j - state[v].level)));
      const double draw = instance.consumption_w[v];
      lifetimes.push_back(draw > 0.0 ? state[v].level / draw : kInf);
    }
    model::ChargingProblem problem(
        std::move(positions), std::move(charge_seconds), net.depot,
        net.charging_radius, net.mcv_speed, net.num_chargers);
    problem.set_residual_lifetimes(std::move(lifetimes));
    problem.set_charging_rate(net.charging_rate_w);

    const sched::ChargingPlan plan = scheduler.plan(problem);
    const sched::ChargingSchedule schedule =
        sched::execute_plan(problem, plan);

    // One-to-one baselines may legitimately skip sensors (AA's profit
    // pruning); do not demand full coverage, only internal consistency.
    sched::VerifyOptions verify_options;
    verify_options.require_full_coverage = false;
    result.verify_violations +=
        sched::verify_schedule(problem, schedule, verify_options).size();

    ++result.rounds;
    result.round_batch_size.add(static_cast<double>(batch.size()));
    const double round_delay = schedule.longest_delay();
    result.round_longest_delay_s.add(round_delay);
    result.total_conflict_wait_s += schedule.total_wait();

    // Apply charge completions.
    std::size_t charged_count = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (schedule.charged_at[i] == sched::kNeverCharged) continue;
      const std::uint32_t v = batch[i];
      const double done = dispatch + schedule.charged_at[i];
      // Dead-time accounting up to the charge completion (or horizon).
      advance(v, std::min(done, horizon));
      SensorState& s = state[v];
      if (s.dead_since != kInf) {
        credit_dead(v, s.dead_since, std::min(done, horizon));
        s.dead_since = kInf;
      }
      if (done < horizon) {
        s.level = target_j;
        s.as_of = done;
        ++charged_count;
        ++result.charges_per_sensor[v];
        if (pending_since[v] != kInf) {
          result.request_latency_s.add(done - pending_since[v]);
          pending_since[v] = kInf;
        }
      } else {
        // Charge completes after the monitoring period; the event is
        // censored and contributes no latency sample.
        s.level = target_j;
        s.as_of = horizon;
        pending_since[v] = kInf;
      }
    }
    result.sensors_charged += charged_count;
    if (config.record_rounds) {
      result.rounds_log.push_back({dispatch, batch.size(), charged_count,
                                   round_delay, schedule.total_wait()});
    }

    if (round_delay > 0.0) {
      busy_seconds += std::min(dispatch + round_delay, horizon) - dispatch;
      fleet_ready = dispatch + round_delay;
    } else {
      // Nothing was charged (degenerate plan); back off to avoid spinning.
      fleet_ready = dispatch + config.empty_round_backoff_s;
    }
  }

  // Close out dead time for sensors still dead at the horizon.
  for (std::size_t v = 0; v < n; ++v) {
    advance(v, horizon);
    if (state[v].dead_since != kInf) {
      credit_dead(v, state[v].dead_since, horizon);
      state[v].dead_since = kInf;
    }
  }

  result.mean_dead_minutes_per_sensor =
      result.total_dead_seconds / static_cast<double>(n) / 60.0;
  result.busy_fraction = busy_seconds / horizon;
  return result;
}

}  // namespace mcharge::sim
