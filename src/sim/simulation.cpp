#include "sim/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <vector>

#include "schedule/execute.h"
#include "schedule/verify.h"
#include "util/assert.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace mcharge::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Strictly-past-the-threshold nudge on predicted crossings, so that the
/// batch collector (which tests `level < threshold`) sees the sensor even
/// under floating-point rounding of the lazy level update.
constexpr double kCrossingEps = 1e-6;

/// Per-sensor dynamic state in SoA layout, so the two per-round scans
/// (earliest crossing, advance + batch collection) run through the
/// simd::crossing_min / simd::advance_select_below kernels. Levels are
/// tracked lazily: level[v] is the battery level at time as_of[v]; the
/// linear draw makes any later level a closed-form expression.
/// dead_since[v] is the instant the battery hit zero (inf while alive).
struct SensorSoa {
  std::vector<double> level;
  std::vector<double> as_of;
  std::vector<double> dead_since;
};

/// Contiguous index shards for the per-sensor scans. The shard count is a
/// pure function of (n, jobs, shard_grain) — never of thread timing — and
/// the reductions below preserve global index order, so any shard count
/// yields bit-identical results (see SimConfig::jobs).
struct ShardPlan {
  std::size_t n = 0;
  std::size_t shards = 1;

  ShardPlan(std::size_t n_, std::size_t jobs, std::size_t grain) : n(n_) {
    const std::size_t j = jobs == 0 ? default_jobs() : jobs;
    const std::size_t g = std::max<std::size_t>(1, grain);
    shards = j <= 1 ? 1 : std::min(j, std::max<std::size_t>(1, n / g));
  }
  std::size_t begin(std::size_t s) const { return s * n / shards; }
  std::size_t end(std::size_t s) const { return (s + 1) * n / shards; }
};

}  // namespace

double SimResult::max_dead_minutes_per_sensor() const {
  double worst = 0.0;
  for (double s : dead_seconds_per_sensor) worst = std::max(worst, s);
  return worst / 60.0;
}

double snap_dispatch_to_epoch(double dispatch, double epoch,
                              double fleet_ready) {
  MCHARGE_ASSERT(epoch > 0.0, "epoch snap needs a positive epoch");
  double snapped = std::ceil(dispatch / epoch - 1e-12) * epoch;
  if (snapped < fleet_ready) {
    // The fudge rounded down past the fleet's return; take the first
    // boundary at or after fleet_ready instead (no fudge: here rounding
    // up a whole epoch is correct, dispatching early is not).
    snapped = std::ceil(fleet_ready / epoch) * epoch;
    if (snapped < fleet_ready) snapped = fleet_ready;
  }
  MCHARGE_ASSERT(snapped >= fleet_ready, "epoch dispatch before fleet return");
  return snapped;
}

SimResult simulate(const model::WrsnInstance& instance,
                   const sched::Scheduler& scheduler,
                   const SimConfig& config) {
  const std::size_t n = instance.num_sensors();
  const model::NetworkConfig& net = instance.config;
  const double capacity = net.battery_capacity_j;
  const double threshold_j = net.request_threshold * capacity;
  const double horizon = config.monitoring_period_s;

  MCHARGE_ASSERT(config.charge_target_fraction > net.request_threshold &&
                     config.charge_target_fraction <= 1.0,
                 "charge target must be in (threshold, 1]");
  const double target_j = config.charge_target_fraction * capacity;

  SimResult result;
  if (n == 0) return result;
  result.dead_seconds_per_sensor.assign(n, 0.0);
  result.charges_per_sensor.assign(n, 0);
  constexpr double kMonth = 30.0 * 86400.0;
  result.dead_seconds_by_month.assign(
      static_cast<std::size_t>(std::ceil(horizon / kMonth)), 0.0);

  // Credits the dead interval [from, to) to sensor v and to the 30-day
  // buckets it spans.
  auto credit_dead = [&](std::size_t v, double from, double to) {
    if (to <= from) return;
    result.total_dead_seconds += to - from;
    result.dead_seconds_per_sensor[v] += to - from;
    double at = from;
    while (at < to) {
      const auto bucket = std::min(
          result.dead_seconds_by_month.size() - 1,
          static_cast<std::size_t>(at / kMonth));
      const double bucket_end = (static_cast<double>(bucket) + 1.0) * kMonth;
      const double end = std::min(to, bucket_end);
      result.dead_seconds_by_month[bucket] += end - at;
      at = end;
    }
  };

  const double* draw = instance.consumption_w.data();
  SensorSoa state;
  state.level.assign(n, config.initial_level_fraction * capacity);
  state.as_of.assign(n, 0.0);
  state.dead_since.assign(n, kInf);
  std::vector<std::uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);

  const ShardPlan plan_shards(n, config.jobs, config.shard_grain);
  const std::size_t shards = plan_shards.shards;
  std::optional<ThreadPool> pool;
  if (shards > 1) pool.emplace(shards);
  std::vector<double> shard_min(shards, kInf);
  std::vector<std::size_t> shard_count(shards, 0);
  std::vector<std::uint32_t> select_scratch(n);

  // Advances sensor v's lazy state to time t; the scalar twin of the
  // simd::advance_select_below per-element update, for the sparse
  // per-completion advances where a vector scan has nothing to batch.
  auto advance_one = [&](std::size_t v, double t) {
    if (t <= state.as_of[v]) return;
    const double drained = draw[v] * (t - state.as_of[v]);
    if (drained >= state.level[v] && draw[v] > 0.0) {
      if (state.dead_since[v] == kInf) {
        state.dead_since[v] = state.as_of[v] + state.level[v] / draw[v];
      }
      state.level[v] = 0.0;
    } else {
      state.level[v] -= drained;
    }
    state.as_of[v] = t;
  };

  double fleet_ready = 0.0;
  double busy_seconds = 0.0;
  // Time each sensor's pending request was raised (kInf = not pending).
  std::vector<double> pending_since(n, kInf);

  while (result.rounds < config.max_rounds) {
    // Next request among all sensors: per-sensor threshold crossings (now
    // for already-below sensors), min-reduced in shard index order.
    double first_request = kInf;
    if (shards == 1) {
      first_request =
          simd::crossing_min(state.level.data(), state.as_of.data(), draw, n,
                             threshold_j, kCrossingEps);
    } else {
      for (std::size_t s = 0; s < shards; ++s) {
        pool->submit([&, s] {
          const std::size_t b = plan_shards.begin(s);
          shard_min[s] = simd::crossing_min(
              state.level.data() + b, state.as_of.data() + b, draw + b,
              plan_shards.end(s) - b, threshold_j, kCrossingEps);
        });
      }
      pool->wait_idle();
      for (std::size_t s = 0; s < shards; ++s) {
        if (shard_min[s] < first_request) first_request = shard_min[s];
      }
    }
    if (first_request >= horizon) break;

    double dispatch = std::max(first_request, fleet_ready);
    if (config.dispatch_epoch_s > 0.0) {
      // Epoch policy: the fleet only leaves on epoch boundaries.
      dispatch =
          snap_dispatch_to_epoch(dispatch, config.dispatch_epoch_s,
                                 fleet_ready);
    }
    if (dispatch >= horizon) break;
    MCHARGE_ASSERT(dispatch >= fleet_ready,
                   "dispatch while the fleet is still out");

    // Freeze V_s: advance everyone to dispatch time and collect everything
    // below threshold. Per-shard fragments land at the shard's own offset
    // in the scratch buffer (a shard selects at most its own length), then
    // concatenate in shard index order == global index order.
    std::vector<std::uint32_t> batch;
    if (shards == 1) {
      const std::size_t got = simd::advance_select_below(
          state.level.data(), state.as_of.data(), state.dead_since.data(),
          draw, n, dispatch, threshold_j, ids.data(), select_scratch.data());
      batch.assign(select_scratch.begin(),
                   select_scratch.begin() + static_cast<std::ptrdiff_t>(got));
    } else {
      for (std::size_t s = 0; s < shards; ++s) {
        pool->submit([&, s, dispatch] {
          const std::size_t b = plan_shards.begin(s);
          shard_count[s] = simd::advance_select_below(
              state.level.data() + b, state.as_of.data() + b,
              state.dead_since.data() + b, draw + b, plan_shards.end(s) - b,
              dispatch, threshold_j, ids.data() + b,
              select_scratch.data() + b);
        });
      }
      pool->wait_idle();
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t b = plan_shards.begin(s);
        batch.insert(batch.end(), select_scratch.begin() + b,
                     select_scratch.begin() + b + shard_count[s]);
      }
    }
    MCHARGE_ASSERT(!batch.empty(), "dispatch with an empty request set");

    for (std::uint32_t v : batch) {
      if (pending_since[v] == kInf) {
        // Reconstruct the actual crossing instant from the linear draw.
        // A sensor that *started* below the threshold never crossed it —
        // the reconstruction would land before t = 0 — so the request is
        // pending from the start of the period, never earlier.
        pending_since[v] =
            draw[v] > 0.0
                ? std::max(0.0, dispatch -
                                    (threshold_j - state.level[v]) / draw[v])
                : dispatch;
      }
    }

    std::vector<geom::Point> positions;
    std::vector<double> charge_seconds;
    std::vector<double> lifetimes;
    positions.reserve(batch.size());
    charge_seconds.reserve(batch.size());
    lifetimes.reserve(batch.size());
    for (std::uint32_t v : batch) {
      positions.push_back(instance.positions[v]);
      charge_seconds.push_back(
          net.charge_seconds(std::max(0.0, target_j - state.level[v])));
      lifetimes.push_back(draw[v] > 0.0 ? state.level[v] / draw[v] : kInf);
    }
    model::ChargingProblem problem(
        std::move(positions), std::move(charge_seconds), net.depot,
        net.charging_radius, net.mcv_speed, net.num_chargers);
    problem.set_residual_lifetimes(std::move(lifetimes));
    problem.set_charging_rate(net.charging_rate_w);

    const sched::ChargingPlan plan =
        scheduler.plan_with_jobs(problem, config.plan_jobs);
    const sched::ChargingSchedule schedule =
        sched::execute_plan(problem, plan);

    // One-to-one baselines may legitimately skip sensors (AA's profit
    // pruning); do not demand full coverage, only internal consistency.
    sched::VerifyOptions verify_options;
    verify_options.require_full_coverage = false;
    result.verify_violations +=
        sched::verify_schedule(problem, schedule, verify_options).size();

    ++result.rounds;
    result.round_batch_size.add(static_cast<double>(batch.size()));
    const double round_delay = schedule.longest_delay();
    result.round_longest_delay_s.add(round_delay);
    result.total_conflict_wait_s += schedule.total_wait();

    // Apply charge completions.
    std::size_t charged_count = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (schedule.charged_at[i] == sched::kNeverCharged) continue;
      const std::uint32_t v = batch[i];
      const double done = dispatch + schedule.charged_at[i];
      // Dead-time accounting up to the charge completion (or horizon).
      advance_one(v, std::min(done, horizon));
      if (state.dead_since[v] != kInf) {
        credit_dead(v, state.dead_since[v], std::min(done, horizon));
        state.dead_since[v] = kInf;
      }
      if (done < horizon) {
        state.level[v] = target_j;
        state.as_of[v] = done;
        ++charged_count;
        ++result.charges_per_sensor[v];
        if (pending_since[v] != kInf) {
          result.request_latency_s.add(done - pending_since[v]);
          pending_since[v] = kInf;
        }
      } else {
        // Charge completes after the monitoring period; the event is
        // censored and contributes no latency sample.
        state.level[v] = target_j;
        state.as_of[v] = horizon;
        pending_since[v] = kInf;
      }
    }
    result.sensors_charged += charged_count;
    if (config.record_rounds) {
      result.rounds_log.push_back({dispatch, batch.size(), charged_count,
                                   round_delay, schedule.total_wait()});
    }

    if (round_delay > 0.0) {
      busy_seconds += std::min(dispatch + round_delay, horizon) - dispatch;
      fleet_ready = dispatch + round_delay;
    } else {
      // Nothing was charged (degenerate plan); back off to avoid spinning.
      fleet_ready = dispatch + config.empty_round_backoff_s;
    }
  }

  // Close out dead time for sensors still dead at the horizon.
  for (std::size_t v = 0; v < n; ++v) {
    advance_one(v, horizon);
    if (state.dead_since[v] != kInf) {
      credit_dead(v, state.dead_since[v], horizon);
      state.dead_since[v] = kInf;
    }
  }

  result.mean_dead_minutes_per_sensor =
      result.total_dead_seconds / static_cast<double>(n) / 60.0;
  result.busy_fraction = busy_seconds / horizon;
  return result;
}

}  // namespace mcharge::sim
