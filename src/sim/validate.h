// Up-front validation of simulation inputs.
//
// simulate() requires a coherent instance + config; historically a bad
// combination (charge target below the request threshold, zero MCV speed,
// NaN sensor positions) tripped an assert deep inside the round loop — or
// worse, spun silently. validate_sim_inputs() checks everything before the
// loop starts and reports a structured error; simulate_checked() is the
// non-aborting front door built on it for callers (CLIs, loaders, fuzzers)
// that must survive hostile input.
#pragma once

#include <optional>
#include <string>

#include "model/network.h"
#include "sim/simulation.h"
#include "util/expected.h"

namespace mcharge::sim {

enum class ConfigErrorCode {
  kEmptyFleet,           ///< num_chargers < 1
  kBadCapacity,          ///< battery capacity not positive/finite
  kBadChargingRate,      ///< charging rate not positive/finite
  kBadSpeed,             ///< MCV speed not positive/finite
  kBadChargingRadius,    ///< charging radius not positive/finite
  kBadThreshold,         ///< request threshold outside (0, 1)
  kBadChargeTarget,      ///< charge target outside (threshold, 1]
  kBadHorizon,           ///< monitoring period not positive/finite
  kBadInitialLevel,      ///< initial level fraction outside [0, 1]
  kBadBackoff,           ///< empty-round backoff not positive/finite
  kBadEpoch,             ///< dispatch epoch negative or non-finite
  kBadMaxRounds,         ///< max_rounds == 0
  kBadFaultConfig,       ///< fault probability/jitter out of range
  kNonFiniteSensorData,  ///< NaN/Inf position or bad consumption
  kBadMcvBudget,         ///< MCV energy budget spec out of range
};

struct ConfigError {
  ConfigErrorCode code;
  std::string message;  ///< human-readable, names the offending field
};

/// Checks `instance` + `config` for every precondition of simulate().
/// Returns nullopt when the inputs are valid. An empty network (zero
/// sensors) is valid — simulate() returns an empty result for it.
std::optional<ConfigError> validate_sim_inputs(
    const model::WrsnInstance& instance, const SimConfig& config);

/// Non-aborting simulate(): validates first and returns the structured
/// error instead of tripping the assert inside simulate().
Expected<SimResult, ConfigError> simulate_checked(
    const model::WrsnInstance& instance, const sched::Scheduler& scheduler,
    const SimConfig& config = {});

}  // namespace mcharge::sim
