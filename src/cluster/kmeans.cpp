#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "util/assert.h"

namespace mcharge::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// k-means++ seeding: first centroid uniform, subsequent ones with
/// probability proportional to squared distance from the nearest chosen.
std::vector<geom::Point> seed_centroids(const std::vector<geom::Point>& points,
                                        std::size_t k, Rng& rng) {
  std::vector<geom::Point> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.below(points.size())]);
  std::vector<double> dist2(points.size(), kInf);
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i],
                          geom::distance_sq(points[i], centroids.back()));
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All points coincide with chosen centroids; duplicate arbitrarily.
      centroids.push_back(points[rng.below(points.size())]);
      continue;
    }
    double target = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const std::vector<geom::Point>& points, std::size_t k,
                    Rng& rng, std::size_t max_iterations) {
  KMeansResult result;
  if (points.empty() || k == 0) return result;
  k = std::min(k, points.size());

  result.centroids = seed_centroids(points, k, rng);
  result.label.assign(points.size(), 0);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = kInf;
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d2 = geom::distance_sq(points[i], result.centroids[c]);
        if (d2 < best) {
          best = d2;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      if (result.label[i] != best_c) {
        result.label[i] = best_c;
        changed = true;
      }
    }
    // Update step.
    std::vector<geom::Point> sums(k, {0.0, 0.0});
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sums[result.label[i]] = sums[result.label[i]] + points[i];
      ++counts[result.label[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = sums[c] * (1.0 / static_cast<double>(counts[c]));
      } else {
        // Re-seed an empty cluster at the point farthest from its centroid.
        double far_d = -1.0;
        std::size_t far_i = 0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d2 =
              geom::distance_sq(points[i], result.centroids[result.label[i]]);
          if (d2 > far_d) {
            far_d = d2;
            far_i = i;
          }
        }
        result.centroids[c] = points[far_i];
        result.label[far_i] = static_cast<std::uint32_t>(c);
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += geom::distance_sq(points[i], result.centroids[result.label[i]]);
  }
  return result;
}

}  // namespace mcharge::cluster
