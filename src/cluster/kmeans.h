// Lloyd's k-means with k-means++ seeding, for the AA baseline's spatial
// partition of to-be-charged sensors into K charger groups.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "util/rng.h"

namespace mcharge::cluster {

struct KMeansResult {
  std::vector<std::uint32_t> label;     ///< cluster id per input point
  std::vector<geom::Point> centroids;  ///< one per cluster
  double inertia = 0.0;                ///< sum of squared distances
  std::size_t iterations = 0;
};

/// Runs k-means over `points`. `k` is clamped to the number of points.
/// Empty clusters are re-seeded from the farthest point. Deterministic
/// given the Rng state.
KMeansResult kmeans(const std::vector<geom::Point>& points, std::size_t k,
                    Rng& rng, std::size_t max_iterations = 100);

}  // namespace mcharge::cluster
