#include "graph/euler.h"

#include <algorithm>

#include "util/assert.h"

namespace mcharge::graph {

bool all_degrees_even(
    std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  std::vector<std::size_t> degree(n, 0);
  for (const auto& [u, v] : edges) {
    MCHARGE_ASSERT(u < n && v < n, "euler: vertex out of range");
    ++degree[u];
    ++degree[v];
  }
  return std::all_of(degree.begin(), degree.end(),
                     [](std::size_t d) { return d % 2 == 0; });
}

std::vector<std::uint32_t> eulerian_circuit(
    std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    std::uint32_t start) {
  MCHARGE_ASSERT(start < n, "euler: start vertex out of range");
  if (edges.empty()) return {start};
  MCHARGE_ASSERT(all_degrees_even(n, edges),
                 "eulerian circuit requires all-even degrees");

  // Adjacency as lists of edge ids; each undirected edge used once.
  std::vector<std::vector<std::size_t>> incident(n);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    incident[edges[e].first].push_back(e);
    incident[edges[e].second].push_back(e);
  }
  std::vector<char> used(edges.size(), 0);
  std::vector<std::size_t> cursor(n, 0);

  // Iterative Hierholzer.
  std::vector<std::uint32_t> stack{start};
  std::vector<std::uint32_t> circuit;
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    bool advanced = false;
    while (cursor[v] < incident[v].size()) {
      const std::size_t e = incident[v][cursor[v]++];
      if (used[e]) continue;
      used[e] = 1;
      const std::uint32_t w =
          edges[e].first == v ? edges[e].second : edges[e].first;
      stack.push_back(w);
      advanced = true;
      break;
    }
    if (!advanced) {
      circuit.push_back(v);
      stack.pop_back();
    }
  }
  MCHARGE_ASSERT(circuit.size() == edges.size() + 1,
                 "eulerian circuit did not use every edge; graph disconnected?");
  std::reverse(circuit.begin(), circuit.end());
  return circuit;
}

}  // namespace mcharge::graph
