#include "graph/traversal.h"

#include <deque>
#include <limits>

#include "util/assert.h"

namespace mcharge::graph {

Components connected_components(const Graph& g) {
  const std::size_t n = g.num_vertices();
  Components result;
  result.id.assign(n, std::numeric_limits<std::uint32_t>::max());
  std::deque<Vertex> queue;
  for (Vertex s = 0; s < n; ++s) {
    if (result.id[s] != std::numeric_limits<std::uint32_t>::max()) continue;
    const auto comp = static_cast<std::uint32_t>(result.count++);
    result.id[s] = comp;
    queue.push_back(s);
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop_front();
      for (Vertex u : g.neighbors(v)) {
        if (result.id[u] == std::numeric_limits<std::uint32_t>::max()) {
          result.id[u] = comp;
          queue.push_back(u);
        }
      }
    }
  }
  return result;
}

BfsTree bfs_tree(const Graph& g, Vertex root) {
  const std::size_t n = g.num_vertices();
  MCHARGE_ASSERT(root < n, "bfs root out of range");
  BfsTree tree;
  tree.hops.assign(n, std::numeric_limits<std::uint32_t>::max());
  tree.parent.resize(n);
  for (Vertex v = 0; v < n; ++v) tree.parent[v] = v;
  std::deque<Vertex> queue{root};
  tree.hops[root] = 0;
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    for (Vertex u : g.neighbors(v)) {
      if (tree.hops[u] == std::numeric_limits<std::uint32_t>::max()) {
        tree.hops[u] = tree.hops[v] + 1;
        tree.parent[u] = v;
        queue.push_back(u);
      }
    }
  }
  return tree;
}

}  // namespace mcharge::graph
