// Builders for geometric (unit-disk style) graphs over point sets.
#pragma once

#include <vector>

#include "geometry/grid_index.h"
#include "geometry/point.h"
#include "graph/graph.h"

namespace mcharge::graph {

/// The charging graph G_c of the paper: vertices are the points, with an
/// edge whenever the Euclidean distance is <= radius. Built with a grid
/// index, expected O(n + |E|).
Graph unit_disk_graph(const std::vector<geom::Point>& points, double radius);

/// As unit_disk_graph but reusing a prebuilt index over the same points.
Graph unit_disk_graph(const geom::GridIndex& index, double radius);

}  // namespace mcharge::graph
