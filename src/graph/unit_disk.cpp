#include "graph/unit_disk.h"

#include "util/assert.h"

namespace mcharge::graph {

Graph unit_disk_graph(const geom::GridIndex& index, double radius) {
  MCHARGE_ASSERT(radius >= 0.0, "disk radius must be non-negative");
  const auto& pts = index.points();
  Graph g(pts.size());
  for (Vertex u = 0; u < pts.size(); ++u) {
    index.visit_disk(pts[u], radius, [&](std::uint32_t v) {
      if (v > u) g.add_edge(u, static_cast<Vertex>(v));
      return true;
    });
  }
  return g;
}

Graph unit_disk_graph(const std::vector<geom::Point>& points, double radius) {
  const double cell = radius > 0.0 ? radius : 1.0;
  geom::GridIndex index(points, cell);
  return unit_disk_graph(index, radius);
}

}  // namespace mcharge::graph
