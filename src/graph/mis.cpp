#include "graph/mis.h"

#include <algorithm>
#include <numeric>

#include "util/assert.h"

namespace mcharge::graph {

std::vector<Vertex> maximal_independent_set(
    const Graph& g, MisOrder order, const std::vector<double>* priority,
    Rng* rng) {
  const std::size_t n = g.num_vertices();
  std::vector<Vertex> scan(n);
  std::iota(scan.begin(), scan.end(), Vertex{0});

  switch (order) {
    case MisOrder::kIndex:
      break;
    case MisOrder::kMinDegree:
      std::stable_sort(scan.begin(), scan.end(), [&](Vertex a, Vertex b) {
        return g.degree(a) < g.degree(b);
      });
      break;
    case MisOrder::kMaxDegree:
      std::stable_sort(scan.begin(), scan.end(), [&](Vertex a, Vertex b) {
        return g.degree(a) > g.degree(b);
      });
      break;
    case MisOrder::kPriority:
      MCHARGE_ASSERT(priority != nullptr && priority->size() == n,
                     "kPriority needs one key per vertex");
      std::stable_sort(scan.begin(), scan.end(), [&](Vertex a, Vertex b) {
        return (*priority)[a] < (*priority)[b];
      });
      break;
    case MisOrder::kRandom:
      MCHARGE_ASSERT(rng != nullptr, "kRandom needs an Rng");
      rng->shuffle(scan);
      break;
  }

  std::vector<char> blocked(n, 0);
  std::vector<Vertex> result;
  for (Vertex v : scan) {
    if (blocked[v]) continue;
    result.push_back(v);
    blocked[v] = 1;
    for (Vertex u : g.neighbors(v)) blocked[u] = 1;
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool is_independent_set(const Graph& g, const std::vector<Vertex>& set) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      if (g.has_edge(set[i], set[j])) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<Vertex>& set) {
  if (!is_independent_set(g, set)) return false;
  std::vector<char> in_set(g.num_vertices(), 0);
  for (Vertex v : set) in_set[v] = 1;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (in_set[v]) continue;
    bool dominated = false;
    for (Vertex u : g.neighbors(v)) {
      if (in_set[u]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

}  // namespace mcharge::graph
