#include "graph/dsu.h"

#include <numeric>

#include "util/assert.h"

namespace mcharge::graph {

Dsu::Dsu(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

std::uint32_t Dsu::find(std::uint32_t x) {
  MCHARGE_ASSERT(x < parent_.size(), "DSU element out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool Dsu::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --components_;
  return true;
}

std::size_t Dsu::component_size(std::uint32_t x) { return size_[find(x)]; }

}  // namespace mcharge::graph
