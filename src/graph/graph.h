// Simple undirected graph with adjacency lists.
//
// Vertices are dense integer ids [0, n). Parallel edges and self-loops are
// rejected at insertion; neighbor lists are kept sorted for fast membership
// tests and deterministic iteration.
#pragma once

#include <cstdint>
#include <vector>

namespace mcharge::graph {

using Vertex = std::uint32_t;

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t num_vertices) : adj_(num_vertices) {}

  std::size_t num_vertices() const { return adj_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Adds undirected edge {u, v}. Ignores duplicates; rejects self-loops.
  void add_edge(Vertex u, Vertex v);

  bool has_edge(Vertex u, Vertex v) const;
  const std::vector<Vertex>& neighbors(Vertex v) const;
  std::size_t degree(Vertex v) const { return neighbors(v).size(); }
  std::size_t max_degree() const;

  /// All edges as (u, v) with u < v, lexicographically sorted.
  std::vector<std::pair<Vertex, Vertex>> edges() const;

 private:
  std::vector<std::vector<Vertex>> adj_;
  std::size_t num_edges_ = 0;
};

}  // namespace mcharge::graph
