// Disjoint-set union (union-find) with path halving and union by size.
#pragma once

#include <cstdint>
#include <vector>

namespace mcharge::graph {

class Dsu {
 public:
  explicit Dsu(std::size_t n);

  std::uint32_t find(std::uint32_t x);
  /// Unites the sets of a and b; returns false iff already united.
  bool unite(std::uint32_t a, std::uint32_t b);
  bool same(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }
  std::size_t num_components() const { return components_; }
  std::size_t component_size(std::uint32_t x);

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t components_;
};

}  // namespace mcharge::graph
