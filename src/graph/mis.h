// Maximal independent set algorithms.
//
// Algorithm Appro uses two MIS computations: S_I on the charging graph G_c
// and V'_H on the overlap graph H. The MIS is maximal (no vertex can be
// added), not maximum; the vertex scan order is a quality knob that the
// ablation bench exercises.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace mcharge::graph {

enum class MisOrder {
  kIndex,      ///< scan vertices 0..n-1 (deterministic baseline)
  kMinDegree,  ///< ascending degree (tends to produce larger sets)
  kMaxDegree,  ///< descending degree (tends to produce smaller sets)
  kPriority,   ///< caller-supplied key, ascending (e.g. charging duration)
  kRandom,     ///< uniformly random permutation
};

/// Greedy maximal independent set in the given scan order. For kPriority the
/// `priority` vector (one key per vertex, lower = earlier) is required; for
/// kRandom an Rng is required. Returns sorted vertex ids.
std::vector<Vertex> maximal_independent_set(
    const Graph& g, MisOrder order = MisOrder::kIndex,
    const std::vector<double>* priority = nullptr, Rng* rng = nullptr);

/// True iff `set` is an independent set of g (no two members adjacent).
bool is_independent_set(const Graph& g, const std::vector<Vertex>& set);

/// True iff `set` is independent AND maximal (every vertex outside the set
/// has a neighbor inside it).
bool is_maximal_independent_set(const Graph& g,
                                const std::vector<Vertex>& set);

}  // namespace mcharge::graph
