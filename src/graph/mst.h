// Minimum spanning trees: Prim for dense/complete geometric inputs,
// Kruskal for explicit weighted edge lists.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geometry/point.h"

namespace mcharge::graph {

struct WeightedEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double weight = 0.0;
};

/// MST of the complete graph over n vertices with weights from `weight`,
/// via Prim in O(n^2). Returns n-1 edges (empty for n <= 1).
std::vector<WeightedEdge> prim_mst(
    std::size_t n, const std::function<double(std::uint32_t, std::uint32_t)>& weight);

/// MST of the complete Euclidean graph over `points`.
std::vector<WeightedEdge> euclidean_mst(const std::vector<geom::Point>& points);

/// Kruskal over an explicit edge list. If the graph is disconnected the
/// result is a minimum spanning forest.
std::vector<WeightedEdge> kruskal_mst(std::size_t n,
                                      std::vector<WeightedEdge> edges);

/// Total weight of an edge set.
double total_weight(const std::vector<WeightedEdge>& edges);

}  // namespace mcharge::graph
