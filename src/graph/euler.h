// Eulerian circuits on undirected multigraphs (Hierholzer's algorithm).
//
// Used by the Christofides and double-tree TSP constructions, where the
// multigraph (MST + matching, or doubled MST) has all-even degrees.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace mcharge::graph {

/// Computes an Eulerian circuit of the connected multigraph on `n` vertices
/// given by `edges` (parallel edges allowed), starting at `start`. The
/// result lists vertices in visit order; first == last == start unless the
/// edge set is empty, in which case the result is {start}.
///
/// Preconditions (asserted): every vertex with positive degree is reachable
/// from `start` through the edge set, and all degrees are even.
std::vector<std::uint32_t> eulerian_circuit(
    std::size_t n, const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    std::uint32_t start);

/// True iff every vertex of the multigraph has even degree.
bool all_degrees_even(
    std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

}  // namespace mcharge::graph
