#include "graph/graph.h"

#include <algorithm>

#include "util/assert.h"

namespace mcharge::graph {

void Graph::add_edge(Vertex u, Vertex v) {
  MCHARGE_ASSERT(u < adj_.size() && v < adj_.size(), "edge vertex out of range");
  MCHARGE_ASSERT(u != v, "self-loops are not allowed");
  auto& nu = adj_[u];
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return;  // duplicate
  nu.insert(it, v);
  auto& nv = adj_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++num_edges_;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  MCHARGE_ASSERT(u < adj_.size() && v < adj_.size(), "vertex out of range");
  const auto& nu = adj_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

const std::vector<Vertex>& Graph::neighbors(Vertex v) const {
  MCHARGE_ASSERT(v < adj_.size(), "vertex out of range");
  return adj_[v];
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& nbrs : adj_) best = std::max(best, nbrs.size());
  return best;
}

std::vector<std::pair<Vertex, Vertex>> Graph::edges() const {
  std::vector<std::pair<Vertex, Vertex>> out;
  out.reserve(num_edges_);
  for (Vertex u = 0; u < adj_.size(); ++u) {
    for (Vertex v : adj_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

}  // namespace mcharge::graph
