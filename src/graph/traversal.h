// Breadth-first traversal utilities: connected components and BFS trees.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mcharge::graph {

/// Component id per vertex (ids are dense, assigned in discovery order) and
/// the number of components.
struct Components {
  std::vector<std::uint32_t> id;
  std::size_t count = 0;
};

Components connected_components(const Graph& g);

/// BFS tree rooted at `root`: hop distance (UINT32_MAX if unreachable) and
/// parent per vertex (parent[root] == root; parent of unreachable == self).
struct BfsTree {
  std::vector<std::uint32_t> hops;
  std::vector<Vertex> parent;
};

BfsTree bfs_tree(const Graph& g, Vertex root);

}  // namespace mcharge::graph
