#include "graph/mst.h"

#include <algorithm>
#include <limits>

#include "graph/dsu.h"
#include "util/assert.h"

namespace mcharge::graph {

std::vector<WeightedEdge> prim_mst(
    std::size_t n,
    const std::function<double(std::uint32_t, std::uint32_t)>& weight) {
  std::vector<WeightedEdge> tree;
  if (n <= 1) return tree;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n, kInf);
  std::vector<std::uint32_t> parent(n, 0);
  std::vector<char> in_tree(n, 0);
  best[0] = 0.0;
  for (std::size_t iter = 0; iter < n; ++iter) {
    std::uint32_t next = 0;
    double next_cost = kInf;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < next_cost) {
        next_cost = best[v];
        next = v;
      }
    }
    MCHARGE_ASSERT(next_cost < kInf, "prim: graph must be complete");
    in_tree[next] = 1;
    if (next != 0) tree.push_back({parent[next], next, best[next]});
    for (std::uint32_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double w = weight(next, v);
      if (w < best[v]) {
        best[v] = w;
        parent[v] = next;
      }
    }
  }
  return tree;
}

std::vector<WeightedEdge> euclidean_mst(
    const std::vector<geom::Point>& points) {
  return prim_mst(points.size(), [&](std::uint32_t a, std::uint32_t b) {
    return geom::distance(points[a], points[b]);
  });
}

std::vector<WeightedEdge> kruskal_mst(std::size_t n,
                                      std::vector<WeightedEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.weight < b.weight;
            });
  Dsu dsu(n);
  std::vector<WeightedEdge> tree;
  for (const auto& e : edges) {
    if (dsu.unite(e.u, e.v)) tree.push_back(e);
  }
  return tree;
}

double total_weight(const std::vector<WeightedEdge>& edges) {
  double w = 0.0;
  for (const auto& e : edges) w += e.weight;
  return w;
}

}  // namespace mcharge::graph
