// Construction of the paper's two auxiliary graphs.
//
//  * G_c — the charging graph: vertices are the to-be-charged sensors, an
//    edge joins two sensors within charging radius gamma (Section IV).
//  * H — the overlap graph on a subset S of sensors: an edge joins u, v in
//    S whenever N_c+(u) and N_c+(v) intersect, i.e. two MCVs parked at u
//    and v could energize a common sensor (gamma < d(u,v) < 2*gamma when S
//    is independent in G_c).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "model/charging_problem.h"

namespace mcharge::core {

/// G_c over all sensors of the problem.
graph::Graph charging_graph(const model::ChargingProblem& problem);

/// H over `subset` (sensor ids of the problem). Vertex i of the result
/// corresponds to subset[i]. Candidate pairs are found with a grid index
/// over the subset (within 2*gamma), then confirmed with the exact
/// coverage-intersection predicate.
graph::Graph overlap_graph(const model::ChargingProblem& problem,
                           const std::vector<std::uint32_t>& subset);

}  // namespace mcharge::core
