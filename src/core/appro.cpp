#include "core/appro.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/overlap_graph.h"
#include "obs/obs.h"
#include "util/assert.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace mcharge::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-plan travel-time memo over the sensors the insertion phase can
/// touch (the members of S_I: tour stops and insertion candidates). The
/// insertion rounds re-derive the same legs over and over — every
/// recompute_finish walks its whole tour, every candidate probes its
/// neighbors — so pairs are computed once and then served from a dense
/// |S_I| x |S_I| table. Rows are filled lazily at row granularity through
/// the SIMD distance kernel over an SoA copy of the member coordinates
/// (first touch of any pair fills the whole source row); depot legs are
/// filled eagerly as one more row. dx*dx squares away the operand-order
/// sign difference, so every value matches ChargingProblem::travel bit
/// for bit — plans are unchanged.
class TravelCache {
 public:
  TravelCache(const model::ChargingProblem& p,
              const std::vector<std::uint32_t>& sensors)
      : speed_(p.speed()), compact_(p.size(), -1) {
    for (std::uint32_t s : sensors) {
      if (compact_[s] < 0) {
        compact_[s] = static_cast<std::int32_t>(ids_.size());
        ids_.push_back(s);
      }
    }
    const std::size_t m = ids_.size();
    xs_.reserve(m);
    ys_.reserve(m);
    for (std::uint32_t s : ids_) {
      const geom::Point pt = p.position(s);
      xs_.push_back(pt.x);
      ys_.push_back(pt.y);
    }
    pair_.assign(m * m, 0.0);
    row_filled_.assign(m, 0);
    depot_.resize(m);
    simd::distance_row(xs_.data(), ys_.data(), m, p.depot().x, p.depot().y,
                       depot_.data());
    for (double& d : depot_) d /= speed_;
  }

  double travel(std::uint32_t u, std::uint32_t v) {
    const auto iu = static_cast<std::size_t>(compact_[u]);
    if (!row_filled_[iu]) fill_row(iu);
    return pair_[iu * ids_.size() + static_cast<std::size_t>(compact_[v])];
  }

  double travel_depot(std::uint32_t u) {
    return depot_[static_cast<std::size_t>(compact_[u])];
  }

  /// Eagerly fills every pair row with up to `jobs` workers. Each row is a
  /// disjoint preallocated slot (and each row_filled_ flag a distinct
  /// byte), so the fan-out follows the parallel_for determinism rules; a
  /// filled row holds exactly the bits the lazy first-touch fill would
  /// produce — same kernel, same operands — so plans cannot change, only
  /// where the fill latency is paid.
  void fill_all(std::size_t jobs) {
    parallel_for(
        ids_.size(),
        [this](std::size_t iu) {
          if (!row_filled_[iu]) fill_row(iu);
        },
        jobs);
  }

 private:
  void fill_row(std::size_t iu) {
    const std::size_t m = ids_.size();
    double* row = pair_.data() + iu * m;
    simd::distance_row(xs_.data(), ys_.data(), m, xs_[iu], ys_[iu], row);
    for (std::size_t i = 0; i < m; ++i) row[i] /= speed_;
    row_filled_[iu] = 1;
  }

  double speed_;
  std::vector<std::int32_t> compact_;  ///< sensor id -> cache index, -1 = out
  std::vector<std::uint32_t> ids_;     ///< cache index -> sensor id
  std::vector<double> xs_, ys_;        ///< SoA member coordinates
  std::vector<double> pair_;           ///< row-major, valid iff row_filled_
  std::vector<unsigned char> row_filled_;
  std::vector<double> depot_;
};

/// Working state of one charging tour during the insertion phase.
struct WorkTour {
  std::vector<std::uint32_t> seq;       ///< sensor ids, visit order
  std::vector<double> tau_prime;        ///< charging duration per stop
  std::vector<double> finish;           ///< charging finish time f (Eq. (6))
};

/// Recomputes f from position `from` onward, seeding the clock with the
/// stored finish of the stop before `from`. An insertion at position
/// `from` leaves seq/tau_prime on [0, from) untouched, so the stored
/// finish[from - 1] holds exactly the bits a full forward pass would
/// reach at that stop — the suffix pass therefore reproduces the
/// from-scratch recomputation bit for bit (DESIGN.md, planner
/// determinism).
void recompute_finish_from(TravelCache& travel, WorkTour& tour,
                           std::size_t from) {
  double clock = from == 0 ? 0.0 : tour.finish[from - 1];
  for (std::size_t l = from; l < tour.seq.size(); ++l) {
    clock += l == 0 ? travel.travel_depot(tour.seq[l])
                    : travel.travel(tour.seq[l - 1], tour.seq[l]);
    clock += tour.tau_prime[l];
    tour.finish[l] = clock;
  }
}

/// Recomputes f along a tour from scratch (Eqs. (6), (11), (12) fold into
/// a single forward pass once every stop's tau' is fixed).
void recompute_finish(TravelCache& travel, WorkTour& tour) {
  recompute_finish_from(travel, tour, 0);
}

/// Travel detour of inserting sensor `u` right after position `pos`:
/// d(seq[pos], u) + d(u, succ) - d(seq[pos], succ), where succ is the next
/// stop (or the depot leg for the last position).
double p_travel_after(TravelCache& travel, const WorkTour& tour,
                      std::size_t pos, std::uint32_t u) {
  const std::uint32_t at = tour.seq[pos];
  if (pos + 1 < tour.seq.size()) {
    const std::uint32_t succ = tour.seq[pos + 1];
    return travel.travel(at, u) + travel.travel(u, succ) -
           travel.travel(at, succ);
  }
  return travel.travel(at, u) + travel.travel_depot(u) -
         travel.travel_depot(at);
}

}  // namespace

ApproScheduler::ApproScheduler(ApproOptions options)
    : options_(std::move(options)) {}

sched::ChargingPlan ApproScheduler::plan(
    const model::ChargingProblem& problem) const {
  return plan_with_stats(problem, nullptr);
}

sched::ChargingPlan ApproScheduler::plan_with_jobs(
    const model::ChargingProblem& problem, std::size_t jobs) const {
  if (jobs == 0 || jobs == options_.jobs) return plan(problem);
  ApproOptions tuned = options_;
  tuned.jobs = jobs;
  return ApproScheduler(std::move(tuned)).plan(problem);
}

sched::ChargingPlan ApproScheduler::plan_with_stats(
    const model::ChargingProblem& problem, ApproStats* stats) const {
  const std::size_t n = problem.size();
  const std::size_t k = problem.num_chargers();
  sched::ChargingPlan plan;
  plan.mode = sched::ChargeMode::kMultiNode;
  plan.tours.assign(k, {});
  if (n == 0) {
    if (stats) *stats = ApproStats{};
    return plan;
  }

  MCHARGE_ASSERT(options_.gc_mis_order != graph::MisOrder::kRandom &&
                     options_.h_mis_order != graph::MisOrder::kRandom,
                 "Appro is deterministic; use kIndex/kMinDegree/kPriority");

  OBS_SPAN("appro.plan");

  // Steps 1-2: charging graph and its MIS S_I. Priority orders use the
  // worst-case sojourn time tau(v) as the key (urgent locations first).
  graph::Graph gc;
  std::vector<double> tau_key(n);
  std::vector<graph::Vertex> s_i;
  {
    OBS_SPAN("appro.charging_graph_mis");
    gc = charging_graph(problem);
    for (std::uint32_t v = 0; v < n; ++v) tau_key[v] = problem.tau(v);
    s_i = graph::maximal_independent_set(gc, options_.gc_mis_order, &tau_key,
                                         nullptr);
    MCHARGE_ASSERT(graph::is_maximal_independent_set(gc, s_i),
                   "S_I must be a maximal independent set of G_c");
  }

  // Step 3: overlap graph H on S_I (vertex i of H is s_i[i]).
  graph::Graph h;
  {
    OBS_SPAN("appro.overlap_graph");
    h = overlap_graph(problem, s_i);
  }

  // Step 4: MIS V'_H of H.
  std::vector<graph::Vertex> vh_local;
  {
    OBS_SPAN("appro.h_mis");
    std::vector<double> tau_key_h(s_i.size());
    for (std::size_t i = 0; i < s_i.size(); ++i) {
      tau_key_h[i] = tau_key[s_i[i]];
    }
    vh_local = graph::maximal_independent_set(h, options_.h_mis_order,
                                              &tau_key_h, nullptr);
  }

  // Step 5: K min-max closed tours over V'_H with service times tau(v).
  tsp::TourProblem tour_problem;
  tour_problem.depot = problem.depot();
  tour_problem.speed = problem.speed();
  std::vector<std::uint32_t> vh_sensors;  // sensor id per tour site
  vh_sensors.reserve(vh_local.size());
  for (graph::Vertex i : vh_local) {
    const std::uint32_t sensor = s_i[i];
    vh_sensors.push_back(sensor);
    tour_problem.sites.push_back(problem.position(sensor));
    tour_problem.service.push_back(problem.tau(sensor));
  }
  tsp::MinMaxTourOptions tour_options = options_.tour;
  if (tour_options.jobs == 0) tour_options.jobs = options_.jobs;
  if (options_.mcv_budget.enabled() && !tour_options.energy.enabled()) {
    // Price the split's segments in the executor's battery units: a
    // second of driving burns move-cost x speed joules, a second of
    // charging service radiates rate / efficiency joules.
    tour_options.energy.budget_j = options_.mcv_budget.capacity_j;
    tour_options.energy.travel_power_w =
        options_.mcv_budget.move_cost_j_per_m * problem.speed();
    tour_options.energy.service_power_w =
        problem.charging_rate_w() / options_.mcv_budget.transfer_efficiency;
  }
  tsp::SplitResult split;
  {
    OBS_SPAN("appro.k_tours");
    split = tsp::min_max_k_tours(tour_problem, k, tour_options);
  }

  // Travel memo over the sensors the insertion phase can touch: every
  // tour stop and every insertion candidate is a member of S_I. With a
  // worker budget the rows are filled eagerly in one sharded pass (same
  // bits as the lazy fills, see fill_all); serially the lazy first-touch
  // fill avoids computing rows the insertion never reads.
  std::vector<std::uint32_t> si_sensors(s_i.begin(), s_i.end());
  TravelCache travel(problem, si_sensors);
  {
    // Bills the eager sharded fill; serial runs fill lazily on first
    // touch, which lands in appro.insertion instead.
    OBS_SPAN("appro.travel_cache");
    if (options_.jobs > 1) travel.fill_all(options_.jobs);
  }

  // Working tours over sensor ids, with tau' = tau (coverage disks of V'_H
  // nodes are pairwise disjoint, so nothing is double-counted initially).
  std::vector<WorkTour> tours(k);
  std::vector<char> covered(n, 0);  // sensors covered by committed stops
  for (std::size_t t = 0; t < k; ++t) {
    for (tsp::SiteId site : split.tours[t]) {
      const std::uint32_t sensor = vh_sensors[site];
      tours[t].seq.push_back(sensor);
      tours[t].tau_prime.push_back(problem.tau(sensor));
      for (std::uint32_t u : problem.coverage(sensor)) covered[u] = 1;
    }
    tours[t].finish.resize(tours[t].seq.size());
    recompute_finish(travel, tours[t]);
  }

  // Position lookup: for each sensor in a tour, (tour, index).
  std::vector<std::int32_t> tour_of(n, -1);
  std::vector<std::size_t> pos_of(n, 0);
  auto index_tours = [&](std::size_t t) {
    for (std::size_t l = 0; l < tours[t].seq.size(); ++l) {
      tour_of[tours[t].seq[l]] = static_cast<std::int32_t>(t);
      pos_of[tours[t].seq[l]] = l;
    }
  };
  for (std::size_t t = 0; t < k; ++t) index_tours(t);

  ApproStats local_stats;
  local_stats.v_s = n;
  local_stats.s_i = s_i.size();
  local_stats.v_h = vh_local.size();
  local_stats.h_max_degree = h.max_degree();

  // Step 6: insert U = S_I \ V'_H by increasing latest-neighbor finish
  // time f_N (Eq. (8)). H-neighbors are looked up through the H graph
  // (vertex i of H <-> sensor s_i[i]). The span runs to the end of the
  // function: final plan assembly is a few pushes.
  OBS_SPAN("appro.insertion");
  std::vector<char> in_vh(s_i.size(), 0);
  for (graph::Vertex i : vh_local) in_vh[i] = 1;
  std::vector<std::uint32_t> pending;  // indices into s_i
  for (std::uint32_t i = 0; i < s_i.size(); ++i) {
    if (!in_vh[i]) pending.push_back(i);
  }

  // Distinct placed tours among the current node's H-neighbors (Case (i)
  // vs Case (ii) of the analysis); buffer reused across rounds.
  std::vector<std::int32_t> seen_tours;
  seen_tours.reserve(k);

  // f_N(u): max finish over u's H-neighbors that sit in a tour, via the
  // exact scalar op sequence both insertion paths below replay.
  auto latest_neighbor_finish = [&](std::uint32_t hi) {
    double best = -kInf;
    for (graph::Vertex nb : h.neighbors(hi)) {
      const std::uint32_t sensor = s_i[nb];
      if (tour_of[sensor] >= 0) {
        best = std::max(
            best, tours[static_cast<std::size_t>(tour_of[sensor])]
                      .finish[pos_of[sensor]]);
      }
    }
    return best;
  };

  // Line 10: drop u when everything it would charge is already covered;
  // otherwise report the charging duration its sojourn needs.
  auto coverage_probe = [&](std::uint32_t u, double& tau_prime_u) {
    bool fully_covered = true;
    tau_prime_u = 0.0;
    for (std::uint32_t w : problem.coverage(u)) {
      if (!covered[w]) {
        fully_covered = false;
        tau_prime_u = std::max(tau_prime_u, problem.charge_seconds(w));
      }
    }
    return fully_covered;
  };

  // N'_H(u): H-neighbors already placed in tours. Non-empty because V'_H
  // is maximal in H (u must have a neighbor in V'_H). Picks the placed
  // neighbor the insertion rule prefers and bumps the case counters.
  auto choose_placement = [&](std::uint32_t hi, std::uint32_t u,
                              std::int32_t& best_tour, std::size_t& best_pos) {
    best_tour = -1;
    best_pos = 0;
    double best_key = -kInf;
    seen_tours.clear();
    for (graph::Vertex nb : h.neighbors(hi)) {
      const std::uint32_t sensor = s_i[nb];
      const std::int32_t t = tour_of[sensor];
      if (t < 0) continue;
      if (std::find(seen_tours.begin(), seen_tours.end(), t) ==
          seen_tours.end()) {
        seen_tours.push_back(t);
      }
      const auto& wt = tours[static_cast<std::size_t>(t)];
      const std::size_t pos = pos_of[sensor];
      double key;
      if (options_.insertion == InsertionRule::kAfterMaxFinishNeighbor) {
        // Paper: maximize the neighbor's charging finish time.
        key = wt.finish[pos];
      } else {
        // Ablation: minimize the travel detour of inserting after `pos`
        // (maximize its negation).
        const double to_u = p_travel_after(travel, wt, pos, u);
        key = -to_u;
      }
      if (key > best_key) {
        best_key = key;
        best_tour = t;
        best_pos = pos;
      }
    }
    MCHARGE_ASSERT(best_tour >= 0,
                   "u in S_I \\ V'_H must have a placed H-neighbor");
    const std::size_t distinct_tours = seen_tours.size();
    MCHARGE_ASSERT(distinct_tours >= 1,
                   "a placed H-neighbor implies at least one distinct tour");
    if (distinct_tours <= 1) {
      ++local_stats.inserted_case_one;  // Case (i)
    } else {
      ++local_stats.inserted_case_two;  // Case (ii)
    }
  };

  // Insert u just after its chosen neighbor (Eqs. (9)/(13)): splice the
  // stop, its charging duration and a finish slot in at `insert_at`.
  auto splice = [](WorkTour& tour, std::size_t insert_at, std::uint32_t u,
                   double tau_prime_u) {
    tour.seq.insert(tour.seq.begin() + static_cast<std::ptrdiff_t>(insert_at),
                    u);
    tour.tau_prime.insert(
        tour.tau_prime.begin() + static_cast<std::ptrdiff_t>(insert_at),
        tau_prime_u);
    tour.finish.insert(
        tour.finish.begin() + static_cast<std::ptrdiff_t>(insert_at), 0.0);
  };

  if (options_.legacy_insertion) {
    // Reference path: full f_N rescans, whole-tour finish recomputation
    // and a mid-vector erase every round — O(|P|^2 * deg) overall. Kept
    // so the incremental path can be differentially tested against it.
    while (!pending.empty()) {
      // Pick the pending node with the smallest f_N (Algorithm 1, line 9).
      std::size_t pick = 0;
      double pick_fn = kInf;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        const double fn = latest_neighbor_finish(pending[i]);
        if (fn < pick_fn) {
          pick_fn = fn;
          pick = i;
        }
      }
      const std::uint32_t hi = pending[pick];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
      const std::uint32_t u = s_i[hi];

      double tau_prime_u = 0.0;
      if (coverage_probe(u, tau_prime_u)) {
        ++local_stats.dropped_covered;
        continue;
      }
      std::int32_t best_tour = -1;
      std::size_t best_pos = 0;
      choose_placement(hi, u, best_tour, best_pos);

      auto& tour = tours[static_cast<std::size_t>(best_tour)];
      const std::size_t insert_at = best_pos + 1;
      splice(tour, insert_at, u, tau_prime_u);
      recompute_finish(travel, tour);
      index_tours(static_cast<std::size_t>(best_tour));
      for (std::uint32_t w : problem.coverage(u)) covered[w] = 1;
    }
  } else {
    // Incremental path — bit-identical to the reference by construction
    // (DESIGN.md, "planner determinism"):
    //  * f_N is cached per pending node. An insertion into tour t changes
    //    finishes only in t (the suffix) and adds one placed neighbor (u,
    //    in t), so only nodes with a placed H-neighbor in t can observe a
    //    different value; per-(node, tour) placed-neighbor counts find
    //    them. Dirty nodes recompute with the same scalar scan the
    //    reference runs; clean nodes keep bits computed by that same scan
    //    over operands that have not changed.
    //  * finish times recompute from the insertion point only — the
    //    prefix clock is the stored finish of the previous stop.
    //  * picked nodes are tombstoned; the list compacts in order once
    //    half the slots are dead. The alive scan visits survivors in the
    //    exact order the erase-based reference keeps them, so the
    //    lowest-index tie-break on equal f_N is preserved.
    std::vector<std::uint32_t> nb_in_tour(s_i.size() * k, 0);
    const auto count_placement = [&](std::uint32_t hi, std::size_t t) {
      for (graph::Vertex nb : h.neighbors(hi)) {
        ++nb_in_tour[static_cast<std::size_t>(nb) * k + t];
      }
    };
    for (std::size_t i = 0; i < vh_local.size(); ++i) {
      const std::uint32_t sensor = vh_sensors[i];
      MCHARGE_ASSERT(tour_of[sensor] >= 0,
                     "every V'_H member sits in an initial tour");
      count_placement(vh_local[i], static_cast<std::size_t>(tour_of[sensor]));
    }

    std::vector<double> fn_cache(s_i.size(), -kInf);
    for (std::uint32_t p : pending) {
      fn_cache[p] = latest_neighbor_finish(p);
    }

    std::vector<char> gone(pending.size(), 0);
    std::size_t alive = pending.size();
    std::size_t dead = 0;
    while (alive > 0) {
      // Pick the pending node with the smallest f_N (Algorithm 1, line 9).
      std::size_t pick = 0;
      double pick_fn = kInf;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (gone[i]) continue;
        const double fn = fn_cache[pending[i]];
        if (fn < pick_fn) {
          pick_fn = fn;
          pick = i;
        }
      }
      const std::uint32_t hi = pending[pick];
      gone[pick] = 1;
      --alive;
      if (++dead * 2 >= pending.size()) {
        std::size_t w = 0;
        for (std::size_t r = 0; r < pending.size(); ++r) {
          if (!gone[r]) pending[w++] = pending[r];
        }
        pending.resize(w);
        gone.assign(w, 0);
        dead = 0;
      }
      const std::uint32_t u = s_i[hi];

      double tau_prime_u = 0.0;
      if (coverage_probe(u, tau_prime_u)) {
        ++local_stats.dropped_covered;
        continue;  // no tour changed: every cached f_N stays valid
      }
      std::int32_t best_tour = -1;
      std::size_t best_pos = 0;
      choose_placement(hi, u, best_tour, best_pos);

      const auto t = static_cast<std::size_t>(best_tour);
      auto& tour = tours[t];
      const std::size_t insert_at = best_pos + 1;
      splice(tour, insert_at, u, tau_prime_u);
      recompute_finish_from(travel, tour, insert_at);
      // Only positions at and after the insertion moved; earlier stops
      // keep their (tour, position).
      tour_of[u] = best_tour;
      for (std::size_t l = insert_at; l < tour.seq.size(); ++l) {
        pos_of[tour.seq[l]] = l;
      }
      for (std::uint32_t w : problem.coverage(u)) covered[w] = 1;
      count_placement(hi, t);
      // Dirty-set recompute: exactly the alive nodes with a placed
      // H-neighbor in the mutated tour (now including u's neighbors).
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (gone[i]) continue;
        const std::uint32_t p = pending[i];
        if (nb_in_tour[static_cast<std::size_t>(p) * k + t] > 0) {
          fn_cache[p] = latest_neighbor_finish(p);
        }
      }
    }
  }

  // Every sensor must now be covered (S_I dominates G_c).
  for (std::uint32_t v = 0; v < n; ++v) {
    MCHARGE_ASSERT(covered[v], "Appro left a sensor uncovered");
  }

  for (std::size_t t = 0; t < k; ++t) plan.tours[t] = std::move(tours[t].seq);
  if (stats) *stats = local_stats;
  return plan;
}

}  // namespace mcharge::core
