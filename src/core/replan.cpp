#include "core/replan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/overlap_graph.h"
#include "graph/mis.h"
#include "util/assert.h"

namespace mcharge::core {

std::size_t FleetState::num_charged() const {
  std::size_t total = 0;
  for (char c : charged) total += (c != 0);
  return total;
}

namespace {

geom::Point interpolate(geom::Point from, geom::Point to, double fraction) {
  return from + (to - from) * fraction;
}

/// Position of one MCV at time t.
geom::Point mcv_position_at(const model::ChargingProblem& problem,
                            const sched::McvSchedule& mcv, geom::Point start,
                            double t) {
  if (mcv.sojourns.empty()) return start;
  // Before reaching the first stop: on the start -> first leg.
  const geom::Point first = problem.position(mcv.sojourns.front().location);
  if (t <= mcv.sojourns.front().arrival) {
    const double leg = mcv.sojourns.front().arrival;
    return leg > 0.0 ? interpolate(start, first, std::max(0.0, t) / leg)
                     : first;
  }
  for (std::size_t i = 0; i < mcv.sojourns.size(); ++i) {
    const auto& s = mcv.sojourns[i];
    if (t <= s.finish) return problem.position(s.location);
    const geom::Point here = problem.position(s.location);
    const bool last = i + 1 == mcv.sojourns.size();
    const geom::Point next =
        last ? problem.depot() : problem.position(mcv.sojourns[i + 1].location);
    const double depart = s.finish;
    const double arrive = last ? mcv.return_time : mcv.sojourns[i + 1].arrival;
    if (t < arrive) {
      const double span = arrive - depart;
      return span > 0.0 ? interpolate(here, next, (t - depart) / span) : next;
    }
  }
  return problem.depot();  // tour completed
}

}  // namespace

FleetState fleet_state_at(const model::ChargingProblem& problem,
                          const sched::ChargingSchedule& schedule, double t) {
  FleetState state;
  state.time = t;
  state.charged.assign(problem.size(), 0);
  for (std::uint32_t v = 0; v < problem.size(); ++v) {
    if (v < schedule.charged_at.size() &&
        schedule.charged_at[v] != sched::kNeverCharged &&
        schedule.charged_at[v] <= t) {
      state.charged[v] = 1;
    }
  }
  for (std::size_t k = 0; k < schedule.mcvs.size(); ++k) {
    const geom::Point start =
        k < schedule.starts.size() ? schedule.starts[k] : problem.depot();
    state.mcv_positions.push_back(
        mcv_position_at(problem, schedule.mcvs[k], start, t));
  }
  return state;
}

ReplanResult replan_from(const model::ChargingProblem& problem,
                         const FleetState& state) {
  MCHARGE_ASSERT(state.charged.size() == problem.size(),
                 "fleet state does not match problem");
  const std::size_t k = state.mcv_positions.size();
  MCHARGE_ASSERT(k >= 1, "replan requires at least one MCV position");

  ReplanResult result;
  // Sub-problem over the uncharged sensors.
  std::vector<geom::Point> positions;
  std::vector<double> deficits;
  for (std::uint32_t v = 0; v < problem.size(); ++v) {
    if (state.charged[v]) continue;
    result.original_index.push_back(v);
    positions.push_back(problem.position(v));
    deficits.push_back(problem.charge_seconds(v));
  }
  result.subproblem = model::ChargingProblem(
      std::move(positions), std::move(deficits), problem.depot(),
      problem.gamma(), problem.speed(), k);
  result.subproblem.set_charging_rate(problem.charging_rate_w());

  result.plan.mode = sched::ChargeMode::kMultiNode;
  result.plan.tours.assign(k, {});
  result.plan.starts = state.mcv_positions;
  if (result.subproblem.size() == 0) return result;

  // Sojourn stops: MIS of the charging graph over the remaining sensors
  // (a dominating set, so every uncharged sensor is covered).
  const graph::Graph gc = charging_graph(result.subproblem);
  std::vector<graph::Vertex> stops = graph::maximal_independent_set(gc);

  // Greedy balanced assignment: the MCV with the least accumulated delay
  // takes its nearest unassigned stop.
  std::vector<geom::Point> at = state.mcv_positions;
  std::vector<double> load(k, 0.0);
  std::vector<char> taken(stops.size(), 0);
  for (std::size_t step = 0; step < stops.size(); ++step) {
    std::size_t mcv = 0;
    for (std::size_t j = 1; j < k; ++j) {
      if (load[j] < load[mcv]) mcv = j;
    }
    // Nearest-stop argmin over squared distances: sqrt is strictly
    // monotone, so the strict < keeps the same winner and the same
    // lowest-index tie-break as comparing geom::distance directly —
    // byte-identical tours for one sqrt per step instead of per scan.
    const geom::Point from = at[mcv];
    double best_sq = std::numeric_limits<double>::infinity();
    std::size_t best_i = 0;
    bool found = false;
    for (std::size_t i = 0; i < stops.size(); ++i) {
      if (taken[i]) continue;
      const double d_sq =
          geom::distance_sq(from, result.subproblem.position(stops[i]));
      if (d_sq < best_sq) {
        best_sq = d_sq;
        best_i = i;
        found = true;
      }
    }
    MCHARGE_ASSERT(found, "an untaken stop must remain");
    taken[best_i] = 1;
    const graph::Vertex stop = stops[best_i];
    result.plan.tours[mcv].push_back(stop);
    load[mcv] += std::sqrt(best_sq) / result.subproblem.speed() +
                 result.subproblem.tau(stop);
    at[mcv] = result.subproblem.position(stop);
  }
  return result;
}

}  // namespace mcharge::core
