#include "core/replan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/overlap_graph.h"
#include "graph/mis.h"
#include "obs/obs.h"
#include "util/assert.h"

namespace mcharge::core {

std::size_t FleetState::num_charged() const {
  std::size_t total = 0;
  for (char c : charged) total += (c != 0);
  return total;
}

namespace {

geom::Point interpolate(geom::Point from, geom::Point to, double fraction) {
  return from + (to - from) * fraction;
}

/// Position of one MCV at time t.
geom::Point mcv_position_at(const model::ChargingProblem& problem,
                            const sched::McvSchedule& mcv, geom::Point start,
                            double t) {
  if (mcv.sojourns.empty()) return start;
  // Before reaching the first stop: on the start -> first leg.
  const geom::Point first = problem.position(mcv.sojourns.front().location);
  if (t <= mcv.sojourns.front().arrival) {
    const double leg = mcv.sojourns.front().arrival;
    return leg > 0.0 ? interpolate(start, first, std::max(0.0, t) / leg)
                     : first;
  }
  for (std::size_t i = 0; i < mcv.sojourns.size(); ++i) {
    const auto& s = mcv.sojourns[i];
    if (t <= s.finish) return problem.position(s.location);
    const geom::Point here = problem.position(s.location);
    const bool last = i + 1 == mcv.sojourns.size();
    const geom::Point next =
        last ? problem.depot() : problem.position(mcv.sojourns[i + 1].location);
    const double depart = s.finish;
    const double arrive = last ? mcv.return_time : mcv.sojourns[i + 1].arrival;
    if (t < arrive) {
      const double span = arrive - depart;
      return span > 0.0 ? interpolate(here, next, (t - depart) / span) : next;
    }
  }
  return problem.depot();  // tour completed
}

}  // namespace

FleetState fleet_state_at(const model::ChargingProblem& problem,
                          const sched::ChargingSchedule& schedule, double t) {
  FleetState state;
  state.time = t;
  state.charged.assign(problem.size(), 0);
  for (std::uint32_t v = 0; v < problem.size(); ++v) {
    if (v < schedule.charged_at.size() &&
        schedule.charged_at[v] != sched::kNeverCharged &&
        schedule.charged_at[v] <= t) {
      state.charged[v] = 1;
    }
  }
  for (std::size_t k = 0; k < schedule.mcvs.size(); ++k) {
    const geom::Point start =
        k < schedule.starts.size() ? schedule.starts[k] : problem.depot();
    state.mcv_positions.push_back(
        mcv_position_at(problem, schedule.mcvs[k], start, t));
  }
  return state;
}

double RecoveryOutcome::longest_delay() const {
  double worst = primary.longest_delay();
  if (has_recovery) {
    worst = std::max(worst, recovery_offset_s + recovery.longest_delay());
  }
  return worst;
}

ReplanResult replan_from(const model::ChargingProblem& problem,
                         const FleetState& state) {
  MCHARGE_ASSERT(state.charged.size() == problem.size(),
                 "fleet state does not match problem");
  const std::size_t k = state.mcv_positions.size();
  MCHARGE_ASSERT(k >= 1, "replan requires at least one MCV position");

  ReplanResult result;
  // Sub-problem over the uncharged sensors.
  std::vector<geom::Point> positions;
  std::vector<double> deficits;
  for (std::uint32_t v = 0; v < problem.size(); ++v) {
    if (state.charged[v]) continue;
    result.original_index.push_back(v);
    positions.push_back(problem.position(v));
    deficits.push_back(problem.charge_seconds(v));
  }
  result.subproblem = model::ChargingProblem(
      std::move(positions), std::move(deficits), problem.depot(),
      problem.gamma(), problem.speed(), k);
  result.subproblem.set_charging_rate(problem.charging_rate_w());

  result.plan.mode = sched::ChargeMode::kMultiNode;
  result.plan.tours.assign(k, {});
  result.plan.starts = state.mcv_positions;
  if (result.subproblem.size() == 0) return result;

  // Sojourn stops: MIS of the charging graph over the remaining sensors
  // (a dominating set, so every uncharged sensor is covered).
  const graph::Graph gc = charging_graph(result.subproblem);
  std::vector<graph::Vertex> stops = graph::maximal_independent_set(gc);

  // Greedy balanced assignment: the MCV with the least accumulated delay
  // takes its nearest unassigned stop.
  std::vector<geom::Point> at = state.mcv_positions;
  std::vector<double> load(k, 0.0);
  std::vector<char> taken(stops.size(), 0);
  for (std::size_t step = 0; step < stops.size(); ++step) {
    std::size_t mcv = 0;
    for (std::size_t j = 1; j < k; ++j) {
      if (load[j] < load[mcv]) mcv = j;
    }
    // Nearest-stop argmin over squared distances: sqrt is strictly
    // monotone, so the strict < keeps the same winner and the same
    // lowest-index tie-break as comparing geom::distance directly —
    // byte-identical tours for one sqrt per step instead of per scan.
    const geom::Point from = at[mcv];
    double best_sq = std::numeric_limits<double>::infinity();
    std::size_t best_i = 0;
    bool found = false;
    for (std::size_t i = 0; i < stops.size(); ++i) {
      if (taken[i]) continue;
      const double d_sq =
          geom::distance_sq(from, result.subproblem.position(stops[i]));
      if (d_sq < best_sq) {
        best_sq = d_sq;
        best_i = i;
        found = true;
      }
    }
    MCHARGE_ASSERT(found, "an untaken stop must remain");
    taken[best_i] = 1;
    const graph::Vertex stop = stops[best_i];
    result.plan.tours[mcv].push_back(stop);
    load[mcv] += std::sqrt(best_sq) / result.subproblem.speed() +
                 result.subproblem.tau(stop);
    at[mcv] = result.subproblem.position(stop);
  }
  return result;
}

namespace {

/// Cost of inserting stop `o` at position `p` of MCV `k`'s tour: travel
/// delta (nominal, jitter-free — it is a routing estimate) plus the stop's
/// sojourn duration. `p` may equal tour.size() (insert before the depot
/// leg).
double insertion_delta(const model::ChargingProblem& problem,
                       const sched::ChargingPlan& plan, std::size_t k,
                       const std::vector<std::uint32_t>& tour, std::size_t p,
                       std::uint32_t o) {
  const double tau = problem.tau(o);
  if (tour.empty()) {
    const geom::Point start = plan.start_of(k, problem.depot());
    return geom::distance(start, problem.position(o)) / problem.speed() +
           tau + problem.travel_depot(o);
  }
  if (p == 0) {
    const geom::Point start = plan.start_of(k, problem.depot());
    const double to_o =
        geom::distance(start, problem.position(o)) / problem.speed();
    const double old_leg =
        geom::distance(start, problem.position(tour[0])) / problem.speed();
    return to_o + problem.travel(o, tour[0]) - old_leg + tau;
  }
  if (p == tour.size()) {
    return problem.travel(tour[p - 1], o) + problem.travel_depot(o) -
           problem.travel_depot(tour[p - 1]) + tau;
  }
  return problem.travel(tour[p - 1], o) + problem.travel(o, tour[p]) -
         problem.travel(tour[p - 1], tour[p]) + tau;
}

}  // namespace

RecoveryOutcome recover_round(const model::ChargingProblem& problem,
                              const sched::ChargingPlan& plan,
                              const sched::ExecutionFaults& faults,
                              RecoveryPolicy policy) {
  OBS_SPAN("exec.recover_round");
  RecoveryOutcome out;
  out.primary = sched::execute_plan(problem, plan, faults);
  out.stats.breakdowns = out.primary.num_aborted();
  if (!out.primary.partial()) return out;
  const double broken_delay = out.primary.longest_delay();

  // Orphans: sensors this plan would have charged absent the breakdowns
  // (same jitter draws), but the broken execution did not. Comparing
  // against the intended execution — not against full coverage — keeps
  // the notion correct for baseline plans that legitimately skip sensors.
  // The energy budget is lifted too: an energy-exhaustion abort orphans
  // its remaining stops exactly like a coin-flip breakdown does.
  sched::ExecutionFaults no_break = faults;
  no_break.breakdown_after.clear();
  no_break.budget = energy::McvBudgetSpec{};
  const sched::ChargingSchedule intended =
      sched::execute_plan(problem, plan, no_break);
  std::vector<std::uint32_t> orphans;
  for (std::uint32_t v = 0; v < problem.size(); ++v) {
    if (intended.charged_at[v] != sched::kNeverCharged &&
        out.primary.charged_at[v] == sched::kNeverCharged) {
      orphans.push_back(v);
    }
  }
  out.stats.orphaned_sensors = orphans.size();

  const std::size_t num_survivors =
      plan.tours.size() - out.primary.num_aborted();
  if (policy == RecoveryPolicy::kDefer || orphans.empty() ||
      num_survivors == 0) {
    out.stats.deferred_sensors = orphans.size();
    return out;
  }

  if (policy == RecoveryPolicy::kGraft) {
    // The base station learns of the first breakdown at t1; stops a
    // survivor has already begun by then cannot be rerouted.
    double t1 = std::numeric_limits<double>::infinity();
    for (const auto& mcv : out.primary.mcvs) {
      if (mcv.aborted) t1 = std::min(t1, mcv.return_time);
    }
    sched::ChargingPlan patched = plan;
    std::vector<std::uint32_t> orphan_stops;
    std::vector<std::size_t> cut(plan.tours.size(), 0);
    std::vector<double> est(plan.tours.size(), 0.0);
    for (std::size_t k = 0; k < plan.tours.size(); ++k) {
      const auto& mcv = out.primary.mcvs[k];
      if (mcv.aborted) {
        // Keep only the completed prefix so the orphaned stops can be
        // reassigned without breaking node-disjointness. The completed
        // sojourn count truncates the tour at exactly the breakdown
        // sojourn for a coin-flip abort and at the unaffordable stop for
        // an energy abort (whose breakdown_of is kNoBreakdown).
        for (std::uint32_t s : mcv.skipped) orphan_stops.push_back(s);
        patched.tours[k].resize(mcv.sojourns.size());
        cut[k] = std::numeric_limits<std::size_t>::max();  // ineligible
      } else {
        for (const auto& s : mcv.sojourns) {
          if (s.start <= t1) ++cut[k];
        }
        est[k] = mcv.return_time;
      }
    }
    // Cheapest insertion of each orphaned stop into a surviving tour, at
    // or after the survivor's fixed prefix; ties break to the lowest MCV
    // id, then the lowest position — deterministic by construction.
    for (std::uint32_t o : orphan_stops) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_k = 0, best_p = 0;
      for (std::size_t k = 0; k < patched.tours.size(); ++k) {
        if (cut[k] == std::numeric_limits<std::size_t>::max()) continue;
        const auto& tour = patched.tours[k];
        const std::size_t first_p = std::min(cut[k], tour.size());
        for (std::size_t p = first_p; p <= tour.size(); ++p) {
          const double cost =
              est[k] + insertion_delta(problem, patched, k, tour, p, o);
          if (cost < best) {
            best = cost;
            best_k = k;
            best_p = p;
          }
          if (tour.empty()) break;  // only one insertion point
        }
      }
      MCHARGE_ASSERT(best < std::numeric_limits<double>::infinity(),
                     "graft requires a surviving MCV");
      est[best_k] += insertion_delta(problem, patched, best_k,
                                     patched.tours[best_k], best_p, o);
      patched.tours[best_k].insert(
          patched.tours[best_k].begin() +
              static_cast<std::ptrdiff_t>(best_p),
          o);
    }
    OBS_COUNT("exec.grafted_stops", static_cast<std::int64_t>(
                                        orphan_stops.size()));
    // Execute only the part of the patched plan that has not happened
    // yet. The first cut[k] sojourns of each survivor (and everything an
    // aborted MCV did) are physical history: re-executing the patched
    // plan from t = 0 would rewind time — grafted stops could start
    // before the breakdown was even known, and inserted stops would
    // shift the fault-leg indices of legs already driven. Instead,
    // freeze those prefixes and resume each survivor from its prefix's
    // finish with suffix legs indexed at cut[k] + i, so the merged
    // schedule reads exactly like one uninterrupted execution.
    std::vector<char> is_orphan(problem.size(), 0);
    for (std::uint32_t o : orphan_stops) is_orphan[o] = 1;
    sched::ChargingPlan suffix;
    suffix.mode = sched::ChargeMode::kMultiNode;
    suffix.tours.assign(plan.tours.size(), {});
    suffix.starts.resize(plan.tours.size());
    sched::ResumeState resume;
    resume.depart_at.assign(plan.tours.size(), 0.0);
    resume.leg_offset.assign(plan.tours.size(), 0);
    resume.charged.assign(problem.size(), 0);
    std::vector<std::size_t> prefix_lens(plan.tours.size(), 0);
    for (std::size_t k = 0; k < plan.tours.size(); ++k) {
      const auto& mcv = out.primary.mcvs[k];
      const std::size_t prefix_len =
          mcv.aborted ? mcv.sojourns.size() : std::min(cut[k],
                                                       mcv.sojourns.size());
      prefix_lens[k] = prefix_len;
      for (std::size_t i = 0; i < prefix_len; ++i) {
        const auto& s = mcv.sojourns[i];
        for (std::uint32_t u : s.charged) resume.charged[u] = 1;
        if (s.finish > s.start) {
          resume.busy.push_back({static_cast<std::uint32_t>(k), s.location,
                                 s.start, s.finish});
        }
      }
      if (mcv.aborted) continue;  // no suffix; merged output keeps it as is
      const auto& tour = patched.tours[k];
      suffix.tours[k].assign(tour.begin() +
                                 static_cast<std::ptrdiff_t>(prefix_len),
                             tour.end());
      suffix.starts[k] =
          prefix_len == 0
              ? plan.start_of(k, problem.depot())
              : problem.position(mcv.sojourns[prefix_len - 1].location);
      resume.leg_offset[k] = static_cast<std::uint32_t>(prefix_len);
      resume.depart_at[k] =
          prefix_len == 0 ? 0.0 : mcv.sojourns[prefix_len - 1].finish;
      // The base station learns of the breakdown at t1; a survivor can be
      // sent to a grafted stop no earlier than that. Planned stops of its
      // own tour need no hold — the MCV was already on its way.
      if (!suffix.tours[k].empty() && is_orphan[suffix.tours[k][0]]) {
        resume.depart_at[k] = std::max(resume.depart_at[k], t1);
      }
    }
    // Same jitter draws, but the breakdowns already happened in the
    // prefix — the suffix must not truncate again. The energy budget
    // stays in force (a survivor's battery does not refill mid-round):
    // each battery resumes from the joules its frozen prefix left, so a
    // grafted detour can itself exhaust a survivor — another
    // kEnergyExhausted abort, whose stops simply defer to the next round.
    sched::ExecutionFaults resume_faults = faults;
    resume_faults.breakdown_after.clear();
    if (faults.budget.enabled()) {
      resume.energy_left = sched::prefix_energy_left(
          problem, out.primary, prefix_lens, faults.budget);
    }
    const sched::ChargingSchedule resumed =
        sched::execute_plan(problem, suffix, resume_faults, resume);

    sched::ChargingSchedule merged;
    merged.mode = sched::ChargeMode::kMultiNode;
    merged.starts = out.primary.starts;
    merged.mcvs.resize(plan.tours.size());
    merged.charged_at.assign(problem.size(), sched::kNeverCharged);
    for (std::size_t k = 0; k < plan.tours.size(); ++k) {
      const auto& orig = out.primary.mcvs[k];
      auto& m = merged.mcvs[k];
      if (orig.aborted) {
        m = orig;
        continue;
      }
      m.sojourns.assign(orig.sojourns.begin(),
                        orig.sojourns.begin() +
                            static_cast<std::ptrdiff_t>(
                                std::min(cut[k], orig.sojourns.size())));
      if (suffix.tours[k].empty()) {
        m.sojourns = orig.sojourns;
        m.return_time = orig.return_time;
        m.energy_spent_j = orig.energy_spent_j;
      } else {
        const auto& res = resumed.mcvs[k];
        m.sojourns.insert(m.sojourns.end(), res.sojourns.begin(),
                          res.sojourns.end());
        // The suffix battery resumed from the prefix's joules, so its
        // spend is already cumulative over the whole round — and under a
        // tight budget the suffix itself may have aborted. An abort before
        // the first suffix stop reports the suffix-local instant 0; the
        // merged tour ends at its last completed sojourn instead.
        m.return_time = res.aborted
                            ? (m.sojourns.empty() ? 0.0
                                                  : m.sojourns.back().finish)
                            : res.return_time;
        m.energy_spent_j = res.energy_spent_j;
        m.aborted = res.aborted;
        m.abort_cause = res.abort_cause;
        m.skipped = res.skipped;
      }
    }
    for (const auto& mcv : merged.mcvs) {
      for (const auto& s : mcv.sojourns) {
        for (std::uint32_t u : s.charged) merged.charged_at[u] = s.finish;
      }
    }
    out.primary = std::move(merged);
    // A grafted detour can exhaust a survivor's battery, so the suffix
    // may have added failures the pre-graft count missed. Without a
    // budget the suffix cannot abort (its breakdowns are cleared) and
    // this recount is a no-op.
    out.stats.breakdowns = out.primary.num_aborted();
  } else {
    // kReplan: once the last breakdown is known (t_rec), recall every
    // survivor after the stop it is executing, then run a fresh
    // reduced-fleet plan over everything still uncharged as a second
    // wave that starts only after all primary activity has ended.
    double t_rec = 0.0;
    for (const auto& mcv : out.primary.mcvs) {
      if (mcv.aborted) t_rec = std::max(t_rec, mcv.return_time);
    }
    sched::ChargingSchedule kept = out.primary;
    for (std::size_t k = 0; k < kept.mcvs.size(); ++k) {
      auto& mcv = kept.mcvs[k];
      if (mcv.aborted) continue;
      std::size_t keep = 0;
      while (keep < mcv.sojourns.size() &&
             mcv.sojourns[keep].start <= t_rec) {
        ++keep;
      }
      if (keep == mcv.sojourns.size()) continue;  // tour completes normally
      for (std::size_t i = keep; i < mcv.sojourns.size(); ++i) {
        mcv.skipped.push_back(mcv.sojourns[i].location);
      }
      mcv.sojourns.resize(keep);
      mcv.aborted = true;
      mcv.return_time = keep == 0 ? 0.0 : mcv.sojourns.back().finish;
    }
    kept.charged_at.assign(problem.size(), sched::kNeverCharged);
    for (const auto& mcv : kept.mcvs) {
      for (const auto& s : mcv.sojourns) {
        for (std::uint32_t u : s.charged) kept.charged_at[u] = s.finish;
      }
    }
    if (faults.budget.enabled()) {
      // A recalled survivor's tour was truncated above, so its energy
      // account must be re-settled to the recall point (the primary
      // execution's figure includes sojourns that now never happen).
      std::vector<std::size_t> kept_len(kept.mcvs.size(), 0);
      for (std::size_t k = 0; k < kept.mcvs.size(); ++k) {
        kept_len[k] = kept.mcvs[k].sojourns.size();
      }
      const std::vector<double> left =
          sched::prefix_energy_left(problem, kept, kept_len, faults.budget);
      for (std::size_t k = 0; k < kept.mcvs.size(); ++k) {
        if (kept.mcvs[k].aborted && !out.primary.mcvs[k].aborted) {
          kept.mcvs[k].energy_spent_j = faults.budget.capacity_j - left[k];
        }
      }
    }
    // The recovery wave starts after every kept sojourn has finished and
    // every un-recalled survivor is back home, so the two waves can never
    // charge concurrently.
    double t_base = t_rec;
    for (const auto& mcv : kept.mcvs) {
      if (!mcv.sojourns.empty()) {
        t_base = std::max(t_base, mcv.sojourns.back().finish);
      }
      if (!mcv.aborted) t_base = std::max(t_base, mcv.return_time);
    }
    FleetState state;
    state.time = t_base;
    state.charged.assign(problem.size(), 0);
    for (std::uint32_t v = 0; v < problem.size(); ++v) {
      if (kept.charged_at[v] != sched::kNeverCharged) state.charged[v] = 1;
    }
    for (std::size_t k = 0; k < kept.mcvs.size(); ++k) {
      if (out.primary.mcvs[k].aborted) continue;  // vehicle lost this round
      const auto& mcv = kept.mcvs[k];
      if (mcv.aborted) {  // recalled mid-tour: parked at its last stop
        state.mcv_positions.push_back(
            mcv.sojourns.empty()
                ? plan.start_of(k, problem.depot())
                : problem.position(mcv.sojourns.back().location));
      } else {
        state.mcv_positions.push_back(mcv.sojourns.empty()
                                          ? plan.start_of(k, problem.depot())
                                          : problem.depot());
      }
    }
    out.primary = std::move(kept);
    out.replan = replan_from(problem, state);
    out.recovery = sched::execute_plan(out.replan.subproblem, out.replan.plan);
    out.recovery_offset_s = t_base;
    out.has_recovery = true;
  }

  // Stats: compare what the round finally charged against the broken
  // execution (recovered) and the intended one (deferred).
  std::vector<char> final_charged(problem.size(), 0);
  for (std::uint32_t v = 0; v < problem.size(); ++v) {
    if (out.primary.charged_at[v] != sched::kNeverCharged) {
      final_charged[v] = 1;
    }
  }
  if (out.has_recovery) {
    for (std::size_t i = 0; i < out.replan.original_index.size(); ++i) {
      if (out.recovery.charged_at[i] != sched::kNeverCharged) {
        final_charged[out.replan.original_index[i]] = 1;
      }
    }
  }
  for (std::uint32_t v : orphans) {
    if (final_charged[v]) ++out.stats.recovered_sensors;
  }
  for (std::uint32_t v = 0; v < problem.size(); ++v) {
    if (intended.charged_at[v] != sched::kNeverCharged && !final_charged[v]) {
      ++out.stats.deferred_sensors;
    }
  }
  out.stats.extra_delay_s =
      std::max(0.0, out.longest_delay() - broken_delay);
  return out;
}

}  // namespace mcharge::core
