// Lower bounds on the optimal longest charge delay.
//
// Used to report empirical approximation ratios (Appro / lower-bound) in
// bench/approx_ratio and to sanity-check the exact solver in tests. All
// bounds hold for ANY feasible schedule of the problem (any number of
// stops, any assignment to the K MCVs):
//
//  * kHardestSensor — some MCV must reach the farthest-needed sensor's
//    disk, charge at least t_v, and return: for every sensor v,
//    OPT >= 2 * (d(depot, v) - gamma)/s + t_v.
//  * kChargingVolume — take any subset I of sensors that pairwise share no
//    potential sojourn disk (pairwise distance > 2*gamma). No stop charges
//    two of them, so summed over the fleet the pure charging time is at
//    least sum_{v in I} t_v, and the busiest MCV carries >= 1/K of it:
//    OPT >= (sum_{v in I} t_v) / K. I is built greedily (largest t_v
//    first) on the 2*gamma conflict graph.
//  * kTravelVolume — every sensor of the 2*gamma-separated subset I needs
//    its own stop within gamma of it, and the union of the K closed tours
//    (all through the depot) is a connected subgraph spanning every stop,
//    so the fleet's total travel is >= MST({depot} + stops). Perturbing
//    each of I's points by <= gamma changes the MST weight by <= 2*gamma
//    per tree edge, hence total travel >= MST({depot} + I) - 2*gamma*|I|
//    and OPT >= that / (K * speed).
//
// lower_bound() returns the max of the enabled bounds.
#pragma once

#include "model/charging_problem.h"

namespace mcharge::core {

struct DelayLowerBounds {
  double hardest_sensor = 0.0;
  double charging_volume = 0.0;
  double travel_volume = 0.0;

  double best() const;
};

/// Computes all bounds for the problem (each valid individually).
DelayLowerBounds delay_lower_bounds(const model::ChargingProblem& problem);

/// max of the individual bounds; 0 for an empty problem.
double delay_lower_bound(const model::ChargingProblem& problem);

}  // namespace mcharge::core
