// Exact solver for the longest charge delay minimization problem on tiny
// instances, by exhaustive branch-and-bound over multi-node plans.
//
// Semantics match the executor: a candidate is a covering set of sojourn
// locations partitioned into K ordered tours; its value is the executed
// longest delay (including any conflict waiting the executor inserts). The
// search enumerates every covering location subset and every ordered
// partition of it, pruning branches whose partial delay already exceeds
// the incumbent. Exponential — usable up to ~7 sensors / stops — and meant
// for tests and the empirical-approximation-ratio bench, not production.
#pragma once

#include <cstddef>

#include "model/charging_problem.h"
#include "schedule/plan.h"

namespace mcharge::core {

struct ExactOptions {
  /// Hard cap on problem size (asserted); the search is O(m! * K^m) per
  /// covering subset, over all 2^n covering subsets.
  std::size_t max_sensors = 7;
};

struct ExactResult {
  sched::ChargingPlan plan;      ///< an optimal plan
  double longest_delay = 0.0;    ///< its executed longest delay
  std::size_t nodes_explored = 0;
};

/// Exhaustively minimizes the executed longest delay. The problem must
/// have at most options.max_sensors sensors.
ExactResult exact_min_longest_delay(const model::ChargingProblem& problem,
                                    const ExactOptions& options = {});

}  // namespace mcharge::core
