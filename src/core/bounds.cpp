#include "core/bounds.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/mst.h"

namespace mcharge::core {

double DelayLowerBounds::best() const {
  return std::max({hardest_sensor, charging_volume, travel_volume});
}

DelayLowerBounds delay_lower_bounds(const model::ChargingProblem& problem) {
  DelayLowerBounds bounds;
  const std::size_t n = problem.size();
  if (n == 0) return bounds;
  const double gamma = problem.gamma();
  const double speed = problem.speed();
  const auto k = static_cast<double>(problem.num_chargers());

  // --- hardest sensor ---
  for (std::uint32_t v = 0; v < n; ++v) {
    const double approach =
        std::max(0.0, geom::distance(problem.depot(), problem.position(v)) -
                          gamma);
    bounds.hardest_sensor =
        std::max(bounds.hardest_sensor,
                 2.0 * approach / speed + problem.charge_seconds(v));
  }

  // --- 2*gamma-separated subset I, greedy by charging time ---
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return problem.charge_seconds(a) > problem.charge_seconds(b);
  });
  std::vector<std::uint32_t> separated;
  const double min_dist_sq = 4.0 * gamma * gamma;
  for (std::uint32_t v : order) {
    bool ok = true;
    for (std::uint32_t u : separated) {
      if (geom::distance_sq(problem.position(v), problem.position(u)) <=
          min_dist_sq) {
        ok = false;
        break;
      }
    }
    if (ok) separated.push_back(v);
  }

  // --- charging volume over I ---
  double total_charge = 0.0;
  for (std::uint32_t v : separated) total_charge += problem.charge_seconds(v);
  bounds.charging_volume = total_charge / k;

  // --- travel volume over I ---
  std::vector<geom::Point> pts;
  pts.reserve(separated.size() + 1);
  pts.push_back(problem.depot());
  for (std::uint32_t v : separated) pts.push_back(problem.position(v));
  const double mst = graph::total_weight(graph::euclidean_mst(pts));
  const double shrunk =
      mst - 2.0 * gamma * static_cast<double>(separated.size());
  bounds.travel_volume = std::max(0.0, shrunk) / (k * speed);

  return bounds;
}

double delay_lower_bound(const model::ChargingProblem& problem) {
  return delay_lower_bounds(problem).best();
}

}  // namespace mcharge::core
