#include "core/overlap_graph.h"

#include "geometry/grid_index.h"
#include "graph/unit_disk.h"

namespace mcharge::core {

graph::Graph charging_graph(const model::ChargingProblem& problem) {
  return graph::unit_disk_graph(problem.positions(), problem.gamma());
}

graph::Graph overlap_graph(const model::ChargingProblem& problem,
                           const std::vector<std::uint32_t>& subset) {
  graph::Graph h(subset.size());
  if (subset.empty()) return h;
  std::vector<geom::Point> pts;
  pts.reserve(subset.size());
  for (std::uint32_t v : subset) pts.push_back(problem.position(v));
  const double reach = 2.0 * problem.gamma();
  geom::GridIndex index(pts, reach > 0.0 ? reach : 1.0);
  for (std::uint32_t i = 0; i < subset.size(); ++i) {
    index.visit_disk(pts[i], reach, [&](std::uint32_t j) {
      if (j > i && problem.overlapping(subset[i], subset[j])) {
        h.add_edge(i, j);
      }
      return true;
    });
  }
  return h;
}

}  // namespace mcharge::core
