// Algorithm Appro — the paper's approximation algorithm for the longest
// charge delay minimization problem (Algorithm 1, Sections IV-V).
//
// Pipeline:
//  1. build the charging graph G_c over V_s (edge iff distance <= gamma);
//  2. S_I  <- maximal independent set of G_c (a dominating set: parking an
//     MCV at every S_I node covers all of V_s);
//  3. H    <- overlap graph on S_I (edge iff coverage disks intersect);
//  4. V'_H <- maximal independent set of H: pairwise conflict-free sojourn
//     locations;
//  5. find K node-disjoint depot-rooted closed tours over V'_H minimizing
//     the max (travel + charging) delay — the K-optimal closed tour
//     substrate (tsp::min_max_k_tours, the Liang et al. [14] plug-in);
//  6. insert the remaining nodes of S_I \ V'_H one at a time, in increasing
//     latest-neighbor-finish-time f_N (Eq. (8)), each placed immediately
//     after its max-finish-time tour neighbor (Eqs. (9)/(13)); a node whose
//     coverage is already fully covered is dropped (Algorithm 1, line 10);
//     charging finish times are maintained per Eqs. (6), (11), (12).
//
// The returned plan uses multi-node charging; executing it yields
// (near-)zero conflict waiting because inserted nodes start only after the
// latest conflicting neighbor finished. The executor still enforces the
// constraint exactly, so the final schedule is certified conflict-free.
//
// Approximation ratio: 40*pi*(tau_max/tau_min) + 1 (Theorem 1).
#pragma once

#include <cstdint>
#include <vector>

#include "energy/mcv_battery.h"
#include "graph/mis.h"
#include "schedule/scheduler.h"
#include "tsp/split.h"

namespace mcharge::core {

/// Where step 6 places a pending node relative to its placed H-neighbors.
enum class InsertionRule {
  /// The paper's rule (Eqs. (9)/(13)): right after the H-neighbor with the
  /// largest charging finish time — the choice that argues away overlap.
  kAfterMaxFinishNeighbor,
  /// Ablation: right after the H-neighbor whose tour position minimizes the
  /// travel detour. Can produce shorter tours but relies on the executor's
  /// conflict waiting for feasibility; the ablation bench measures how much
  /// waiting this actually induces.
  kCheapestNeighborDetour,
};

struct ApproOptions {
  /// Scan order for the MIS over G_c (step 2). kIndex reproduces the
  /// paper's unspecified "find an MIS"; other orders are ablation knobs.
  graph::MisOrder gc_mis_order = graph::MisOrder::kIndex;
  /// Scan order for the MIS over H (step 4).
  graph::MisOrder h_mis_order = graph::MisOrder::kIndex;
  /// Tour construction for the K-optimal closed tour substrate (step 5).
  tsp::MinMaxTourOptions tour;
  /// Placement rule for the insertion phase (step 6).
  InsertionRule insertion = InsertionRule::kAfterMaxFinishNeighbor;
  /// Worker threads for the planner's parallel sections — the per-segment
  /// tour improvement in step 5 and the eager travel-cache row fill that
  /// feeds step 6. 0 = serial (the default; note this differs from
  /// parallel_for, where 0 means default_jobs()). Forwarded into
  /// tour.jobs when tour.jobs == 0. Any value yields byte-identical plans.
  std::size_t jobs = 0;
  /// Run the insertion phase (step 6) through the reference O(|P|^2 * deg)
  /// implementation: full f_N rescans every round, whole-tour finish
  /// recomputation and a mid-vector pending erase per insertion. The
  /// default incremental path is bit-identical; the legacy path is kept so
  /// tests can memcmp the two (see tests/appro_incremental_test.cpp).
  bool legacy_insertion = false;
  /// Per-MCV energy budget the fleet will execute under (disabled by
  /// default — the planner is then byte-identical to the budget-free
  /// one). When enabled, step 5's K-tour split also cuts on each
  /// segment's planned battery draw (converted to a
  /// tsp::SegmentEnergyCap: travel power = move cost per meter x MCV
  /// speed, service power = charging rate / transfer efficiency), so
  /// tours that would exhaust an MCV mid-round are split up front instead
  /// of aborting at execution time. Best effort: if the cap cannot be met
  /// with K tours it is dropped, and step 6 insertions may still push a
  /// tour over budget — the executor's exhaustion machinery stays the
  /// backstop. An explicitly set tour.energy wins over this conversion.
  energy::McvBudgetSpec mcv_budget;
};

/// Per-run diagnostics (sizes of the intermediate structures).
struct ApproStats {
  std::size_t v_s = 0;          ///< |V_s|
  std::size_t s_i = 0;          ///< |S_I|
  std::size_t v_h = 0;          ///< |V'_H|
  std::size_t h_max_degree = 0; ///< Delta_H (Lemma 2 bounds it by ~8*pi)
  std::size_t inserted_case_one = 0;  ///< Case (i) insertions
  std::size_t inserted_case_two = 0;  ///< Case (ii) insertions
  std::size_t dropped_covered = 0;    ///< S_I nodes skipped as covered
};

class ApproScheduler : public sched::Scheduler {
 public:
  explicit ApproScheduler(ApproOptions options = {});

  std::string name() const override { return "Appro"; }
  sched::ChargingPlan plan(const model::ChargingProblem& problem) const override;
  /// Plans with options_.jobs overridden to `jobs` (0 keeps options_.jobs).
  /// Byte-identical to plan() for every thread count.
  sched::ChargingPlan plan_with_jobs(const model::ChargingProblem& problem,
                                     std::size_t jobs) const override;

  /// Plan and also report the pipeline diagnostics.
  sched::ChargingPlan plan_with_stats(const model::ChargingProblem& problem,
                                      ApproStats* stats) const;

 private:
  ApproOptions options_;
};

}  // namespace mcharge::core
