// Mid-round fleet-state reconstruction and replanning.
//
// Engineering extension beyond the paper: when a round is interrupted at
// time t (new urgent requests arrived, an MCV must be re-tasked), the base
// station needs (a) where every MCV is at time t and what has already been
// charged, and (b) a fresh plan for everything still uncharged that starts
// from the MCVs' CURRENT positions (not the depot) and ends at the depot.
//
// The replanner selects sojourn stops exactly like Appro (MIS of the
// charging graph over the remaining sensors — a dominating set, so
// coverage is guaranteed) and then assigns stops greedily: the MCV with
// the least accumulated delay takes its nearest remaining stop. Conflict
// feasibility is delegated to the executor's waiting rule, as with any
// plan.
#pragma once

#include <cstdint>
#include <vector>

#include "model/charging_problem.h"
#include "schedule/plan.h"

namespace mcharge::core {

/// Snapshot of the fleet mid-execution.
struct FleetState {
  double time = 0.0;
  std::vector<geom::Point> mcv_positions;
  std::vector<char> charged;  ///< per sensor: fully charged by `time`?

  std::size_t num_charged() const;
};

/// Reconstructs where each MCV is at time `t` of an executed schedule
/// (interpolating along travel legs; parked during sojourns; back at the
/// depot after its return time) and which sensors are charged by then.
FleetState fleet_state_at(const model::ChargingProblem& problem,
                          const sched::ChargingSchedule& schedule, double t);

/// A replan: a fresh sub-problem over the still-uncharged sensors plus a
/// plan for it whose tours start at the MCVs' current positions.
struct ReplanResult {
  model::ChargingProblem subproblem;          ///< uncharged sensors only
  sched::ChargingPlan plan;                   ///< indexes `subproblem`
  std::vector<std::uint32_t> original_index;  ///< subproblem id -> original
};

/// Plans the still-uncharged sensors of `problem` from the given fleet
/// state. Execute and verify the result against `result.subproblem`.
ReplanResult replan_from(const model::ChargingProblem& problem,
                         const FleetState& state);

}  // namespace mcharge::core
