// Mid-round fleet-state reconstruction and replanning.
//
// Engineering extension beyond the paper: when a round is interrupted at
// time t (new urgent requests arrived, an MCV must be re-tasked), the base
// station needs (a) where every MCV is at time t and what has already been
// charged, and (b) a fresh plan for everything still uncharged that starts
// from the MCVs' CURRENT positions (not the depot) and ends at the depot.
//
// The replanner selects sojourn stops exactly like Appro (MIS of the
// charging graph over the remaining sensors — a dominating set, so
// coverage is guaranteed) and then assigns stops greedily: the MCV with
// the least accumulated delay takes its nearest remaining stop. Conflict
// feasibility is delegated to the executor's waiting rule, as with any
// plan.
#pragma once

#include <cstdint>
#include <vector>

#include "model/charging_problem.h"
#include "schedule/execute.h"
#include "schedule/plan.h"

namespace mcharge::core {

/// Snapshot of the fleet mid-execution.
struct FleetState {
  double time = 0.0;
  std::vector<geom::Point> mcv_positions;
  std::vector<char> charged;  ///< per sensor: fully charged by `time`?

  std::size_t num_charged() const;
};

/// Reconstructs where each MCV is at time `t` of an executed schedule
/// (interpolating along travel legs; parked during sojourns; back at the
/// depot after its return time) and which sensors are charged by then.
FleetState fleet_state_at(const model::ChargingProblem& problem,
                          const sched::ChargingSchedule& schedule, double t);

/// A replan: a fresh sub-problem over the still-uncharged sensors plus a
/// plan for it whose tours start at the MCVs' current positions.
struct ReplanResult {
  model::ChargingProblem subproblem;          ///< uncharged sensors only
  sched::ChargingPlan plan;                   ///< indexes `subproblem`
  std::vector<std::uint32_t> original_index;  ///< subproblem id -> original
};

/// Plans the still-uncharged sensors of `problem` from the given fleet
/// state. Execute and verify the result against `result.subproblem`.
ReplanResult replan_from(const model::ChargingProblem& problem,
                         const FleetState& state);

/// What the base station does with the stops orphaned by MCV breakdowns.
enum class RecoveryPolicy {
  /// Leave orphaned sensors uncharged; they re-request next round.
  kDefer,
  /// Graft the orphaned stops onto surviving MCVs' remaining tours by
  /// cheapest insertion (only after the stops each survivor has already
  /// begun by the time the first breakdown is known), then re-execute.
  kGraft,
  /// Recall the surviving MCVs once the last breakdown is known and run a
  /// fresh reduced-fleet replan (replan_from) over everything still
  /// uncharged, executed as a second wave after all primary activity ends.
  kReplan,
};

/// Bookkeeping of one recovered round.
struct RecoveryStats {
  std::size_t breakdowns = 0;         ///< MCVs that failed mid-tour
  std::size_t orphaned_sensors = 0;   ///< sensors the breakdowns left behind
  std::size_t recovered_sensors = 0;  ///< orphans charged anyway this round
  std::size_t deferred_sensors = 0;   ///< sensors pushed to the next round
  double extra_delay_s = 0.0;         ///< delay added vs the broken schedule
};

/// The executed result of one fault round: the primary (possibly partial,
/// possibly graft-patched) schedule plus, under kReplan, a second recovery
/// wave against a sub-problem of the still-uncharged sensors.
struct RecoveryOutcome {
  sched::ChargingSchedule primary;  ///< indexes the original problem
  bool has_recovery = false;        ///< kReplan fired a second wave
  ReplanResult replan;              ///< valid iff has_recovery
  sched::ChargingSchedule recovery;  ///< indexes replan.subproblem
  double recovery_offset_s = 0.0;   ///< absolute start time of the wave
  RecoveryStats stats;

  /// The round's realized longest charge delay across both waves.
  double longest_delay() const;
};

/// Executes `plan` under `faults` and applies `policy` to whatever the
/// breakdowns orphaned. With no breakdown in `faults` this is exactly
/// execute_plan(problem, plan, faults) wrapped in an outcome. An enabled
/// energy budget (faults.budget) feeds the same machinery: exhaustion
/// aborts orphan their remaining stops just like coin-flip breakdowns,
/// and a grafted survivor resumes with the joules its prefix left (its
/// battery does not refill mid-round), so a graft detour can exhaust it
/// again. The recovery wave (kReplan) always uses multi-node charging and
/// runs fault-free AND budget-free: at most one fault event per MCV per
/// round, and the wave departs the depot fully recharged — its energy
/// feasibility is the planner's job, not the executor's.
RecoveryOutcome recover_round(const model::ChargingProblem& problem,
                              const sched::ChargingPlan& plan,
                              const sched::ExecutionFaults& faults,
                              RecoveryPolicy policy);

}  // namespace mcharge::core
