#include "core/exact.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "schedule/execute.h"
#include "util/assert.h"

namespace mcharge::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Search {
  const model::ChargingProblem& problem;
  std::size_t k;
  std::vector<std::uint32_t> stops;           // candidate locations (a cover)
  std::vector<char> used;                     // per stops index
  std::vector<std::vector<std::uint32_t>> tours;
  ExactResult* best;
  std::size_t* explored;

  /// Optimistic per-tour delay if the MCV went straight home now:
  /// travel so far + minimal remaining service. Service times are not
  /// counted here (a stop's tau' can be zero if others covered its disk),
  /// keeping the bound admissible.
  double partial_bound() const {
    double worst = 0.0;
    for (const auto& tour : tours) {
      if (tour.empty()) continue;
      double travel = problem.travel_depot(tour.front());
      for (std::size_t i = 0; i + 1 < tour.size(); ++i) {
        travel += problem.travel(tour[i], tour[i + 1]);
      }
      travel += problem.travel_depot(tour.back());
      worst = std::max(worst, travel);
    }
    return worst;
  }

  void evaluate_leaf() {
    sched::ChargingPlan plan;
    plan.mode = sched::ChargeMode::kMultiNode;
    plan.tours = tours;
    const auto schedule = sched::execute_plan(problem, plan);
    if (!schedule.all_charged()) return;  // over-pruned cover orderings
    const double delay = schedule.longest_delay();
    if (delay < best->longest_delay) {
      best->longest_delay = delay;
      best->plan = std::move(plan);
    }
  }

  void recurse(std::size_t assigned) {
    ++*explored;
    if (partial_bound() >= best->longest_delay) return;
    if (assigned == stops.size()) {
      evaluate_leaf();
      return;
    }
    for (std::size_t i = 0; i < stops.size(); ++i) {
      if (used[i]) continue;
      used[i] = 1;
      // Appending to two empty tours is symmetric; only try the first.
      bool tried_empty = false;
      for (std::size_t t = 0; t < k; ++t) {
        if (tours[t].empty()) {
          if (tried_empty) continue;
          tried_empty = true;
        }
        tours[t].push_back(stops[i]);
        recurse(assigned + 1);
        tours[t].pop_back();
      }
      used[i] = 0;
    }
  }
};

}  // namespace

ExactResult exact_min_longest_delay(const model::ChargingProblem& problem,
                                    const ExactOptions& options) {
  const std::size_t n = problem.size();
  MCHARGE_ASSERT(n <= options.max_sensors,
                 "exact solver limited to tiny instances");
  MCHARGE_ASSERT(n <= 16, "exact solver hard cap");
  ExactResult best;
  best.longest_delay = kInf;
  best.plan.mode = sched::ChargeMode::kMultiNode;
  best.plan.tours.assign(problem.num_chargers(), {});
  if (n == 0) {
    best.longest_delay = 0.0;
    return best;
  }

  // Precompute coverage bitmasks.
  std::vector<std::uint32_t> cover_mask(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t u : problem.coverage(v)) cover_mask[v] |= 1u << u;
  }
  const std::uint32_t full = (1u << n) - 1u;

  std::size_t explored = 0;
  for (std::uint32_t subset = 1; subset <= full; ++subset) {
    std::uint32_t covered = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (subset & (1u << v)) covered |= cover_mask[v];
    }
    if (covered != full) continue;
    // Note: covers with "coverage-redundant" stops are NOT pruned — an
    // extra stop can strictly help by peeling a slow sensor off another
    // stop's charge set (shorter tau' there), so exactness requires
    // exploring them.

    Search search{problem, problem.num_chargers(), {}, {}, {}, &best,
                  &explored};
    for (std::uint32_t v = 0; v < n; ++v) {
      if (subset & (1u << v)) search.stops.push_back(v);
    }
    search.used.assign(search.stops.size(), 0);
    search.tours.assign(problem.num_chargers(), {});
    search.recurse(0);
  }
  best.nodes_explored = explored;
  MCHARGE_ASSERT(best.longest_delay < kInf, "exact search found no plan");
  return best;
}

}  // namespace mcharge::core
