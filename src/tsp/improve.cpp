#include "tsp/improve.h"

#include <algorithm>

#include "util/assert.h"

namespace mcharge::tsp {

namespace {

// Distance helpers treating position -1 and position m as the depot.
double leg(const TourProblem& p, const Tour& t, std::ptrdiff_t i,
           std::ptrdiff_t j) {
  const bool i_depot = i < 0 || i >= static_cast<std::ptrdiff_t>(t.size());
  const bool j_depot = j < 0 || j >= static_cast<std::ptrdiff_t>(t.size());
  if (i_depot && j_depot) return 0.0;
  if (i_depot) return p.travel_depot(t[static_cast<std::size_t>(j)]);
  if (j_depot) return p.travel_depot(t[static_cast<std::size_t>(i)]);
  return p.travel(t[static_cast<std::size_t>(i)], t[static_cast<std::size_t>(j)]);
}

}  // namespace

double two_opt(const TourProblem& problem, Tour& tour,
               const ImproveOptions& options) {
  const auto m = static_cast<std::ptrdiff_t>(tour.size());
  if (m < 2) return 0.0;
  double saved = 0.0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    // Reverse tour[i..j]; affected legs: (i-1, i) and (j, j+1) become
    // (i-1, j) and (i, j+1). Depot legs included via sentinel positions.
    for (std::ptrdiff_t i = 0; i < m - 1; ++i) {
      for (std::ptrdiff_t j = i + 1; j < m; ++j) {
        if (i == 0 && j == m - 1) continue;  // full reversal: no change
        const double before = leg(problem, tour, i - 1, i) +
                              leg(problem, tour, j, j + 1);
        const double after = leg(problem, tour, i - 1, j) +
                             leg(problem, tour, i, j + 1);
        if (after < before - options.min_gain) {
          std::reverse(tour.begin() + i, tour.begin() + j + 1);
          saved += before - after;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return saved;
}

double or_opt(const TourProblem& problem, Tour& tour,
              const ImproveOptions& options) {
  const auto m = static_cast<std::ptrdiff_t>(tour.size());
  if (m < 3) return 0.0;
  double saved = 0.0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    for (std::ptrdiff_t len = 1; len <= 3 && len < m; ++len) {
      for (std::ptrdiff_t i = 0; i + len <= m; ++i) {
        // Segment [i, i+len); try inserting after position k (k outside the
        // segment), i.e. between k and k+1.
        const double removal_gain = leg(problem, tour, i - 1, i) +
                                    leg(problem, tour, i + len - 1, i + len) -
                                    leg(problem, tour, i - 1, i + len);
        if (removal_gain <= options.min_gain) continue;
        for (std::ptrdiff_t k = -1; k < m; ++k) {
          if (k >= i - 1 && k < i + len) continue;  // no-op positions
          const double insert_cost =
              leg(problem, tour, k, i) + leg(problem, tour, i + len - 1, k + 1) -
              leg(problem, tour, k, k + 1);
          if (insert_cost < removal_gain - options.min_gain) {
            // Perform the move on a copy of the segment.
            Tour segment(tour.begin() + i, tour.begin() + i + len);
            tour.erase(tour.begin() + i, tour.begin() + i + len);
            std::ptrdiff_t dest = k < i ? k + 1 : k + 1 - len;
            tour.insert(tour.begin() + dest, segment.begin(), segment.end());
            saved += removal_gain - insert_cost;
            improved = true;
            break;  // positions shifted; restart the i loop conservatively
          }
        }
        if (improved) break;
      }
      if (improved) break;
    }
    if (!improved) break;
  }
  return saved;
}

double improve_tour(const TourProblem& problem, Tour& tour,
                    const ImproveOptions& options) {
  double saved = 0.0;
  for (std::size_t round = 0; round < options.max_passes; ++round) {
    double round_gain = 0.0;
    if (options.use_two_opt) round_gain += two_opt(problem, tour, options);
    if (options.use_or_opt) round_gain += or_opt(problem, tour, options);
    saved += round_gain;
    if (round_gain <= options.min_gain) break;
  }
  return saved;
}

}  // namespace mcharge::tsp
