#include "tsp/improve.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/assert.h"
#include "util/simd.h"

namespace mcharge::tsp {

namespace {

// Distance helpers treating position -1 and position m as the depot.
double leg(const TourProblem& p, const Tour& t, std::ptrdiff_t i,
           std::ptrdiff_t j) {
  const bool i_depot = i < 0 || i >= static_cast<std::ptrdiff_t>(t.size());
  const bool j_depot = j < 0 || j >= static_cast<std::ptrdiff_t>(t.size());
  if (i_depot && j_depot) return 0.0;
  if (i_depot) return p.travel_depot(t[static_cast<std::size_t>(j)]);
  if (j_depot) return p.travel_depot(t[static_cast<std::size_t>(i)]);
  return p.travel(t[static_cast<std::size_t>(i)], t[static_cast<std::size_t>(j)]);
}

// Position-ordered SoA mirror of the tour (px[p], py[p] = coordinates of
// tour[p]) with the depot appended as a sentinel at index m so the gain
// kernels may read P[j + 1] for j == m - 1. Recomputing a distance from
// these coordinates yields exactly the bits a cache read (or geom::distance)
// would — the precondition for routing the scans through util/simd.h.
void mirror_tour(const TourProblem& problem, const Tour& tour,
                 std::vector<double>& px, std::vector<double>& py) {
  const std::size_t m = tour.size();
  px.resize(m + 1);
  py.resize(m + 1);
  for (std::size_t p = 0; p < m; ++p) {
    px[p] = problem.sites[tour[p]].x;
    py[p] = problem.sites[tour[p]].y;
  }
  px[m] = problem.depot.x;
  py[m] = problem.depot.y;
}

// Travel time of the (k, k+1) leg from the mirrored coordinates — the
// exact bits the scan kernels previously recomputed per element.
double leg_time(const std::vector<double>& px, const std::vector<double>& py,
                double speed, std::size_t k) {
  const double dx = px[k] - px[k + 1];
  const double dy = py[k] - py[k + 1];
  return std::sqrt(dx * dx + dy * dy) / speed;
}

// tc[k] = travel time of leg (P[k], P[k+1]) for k in [0, m); the last
// entry is the (P[m-1], depot) leg via the sentinel. Hoisting these out
// of the 2-opt / Or-opt scans removes a sqrt and a divide per scanned
// element; every compared value keeps identical bits.
void fill_leg_times(const std::vector<double>& px,
                    const std::vector<double>& py, double speed,
                    std::vector<double>& tc) {
  const std::size_t m = px.size() - 1;
  tc.resize(m);
  for (std::size_t k = 0; k < m; ++k) tc[k] = leg_time(px, py, speed, k);
}

// Shared implementations with an optional convergence report. `converged`
// (when non-null) is set to true iff the operator's final full scan over
// the move set was clean — i.e. re-running the operator on the returned
// tour would provably apply no move and return exactly 0.0 — and to false
// when the pass/move budget ran out while moves were still being applied.
// improve_tour uses this to skip rounds that are guaranteed no-ops.

double two_opt_impl(const TourProblem& problem, Tour& tour,
                    const ImproveOptions& options, bool* converged) {
  if (converged) *converged = true;
  const std::size_t m = tour.size();
  if (m < 2) return 0.0;
  std::vector<double> px, py, tc;
  mirror_tour(problem, tour, px, py);
  fill_leg_times(px, py, problem.speed, tc);

  // Exact-replay cache over left edges: clean[i] == 1 records that edge
  // i's whole j scan completed with zero hits against the current tour.
  // That scan reads only positions >= i - 1 (ax/bx/base from i-1 and i,
  // P[j], P[j+1] and tc[j] for j > i), and a reversal of [i*, j*] changes
  // positions [i*, j*] and the legs beside them only — so facts for
  // i >= j* + 2 survive every reversal and the later passes of the
  // restart loop, which would re-scan those edges and find nothing, skip
  // them with identical bits. An edge whose scan hit at least once is
  // never marked: the scalar loop resumes after the reversed window
  // without rescanning it, so "no further hit" says nothing about the
  // positions behind the resume point.
  std::vector<unsigned char> clean(m, 0);

  double saved = 0.0;
  bool improved = true;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    improved = false;
    // Reverse tour[i..j]; affected legs: (i-1, i) and (j, j+1) become
    // (i-1, j) and (i, j+1). Depot legs included via sentinel positions.
    // For each left edge the j loop is a first-improvement scan with a
    // fixed (ax, ay), (bx, by) and base leg — exactly the shape of
    // simd::two_opt_scan, which returns the first improving j (or kNpos)
    // with the scalar comparison sequence. After a reversal the scan
    // resumes at j + 1 on the updated tour, as the scalar loop did.
    for (std::size_t i = 0; i + 1 < m; ++i) {
      if (clean[i]) continue;
      const auto ip = static_cast<std::ptrdiff_t>(i);
      const double ax = i == 0 ? problem.depot.x : px[i - 1];
      const double ay = i == 0 ? problem.depot.y : py[i - 1];
      double bx = px[i];
      double by = py[i];
      double base = leg(problem, tour, ip - 1, ip);
      // i == 0 with j == m - 1 is the full reversal (no change): the
      // scalar loop skipped it, so the scan simply ends one j earlier.
      const std::size_t j_end = i == 0 ? m - 1 : m;
      std::size_t j = i + 1;
      bool any_hit = false;
      while (j < j_end) {
        const std::size_t hit = simd::two_opt_scan(
            px.data(), py.data(), tc.data(), j, j_end, ax, ay, bx, by,
            problem.speed, base, options.min_gain);
        if (hit == simd::kNpos) break;
        const auto jp = static_cast<std::ptrdiff_t>(hit);
        const double before =
            leg(problem, tour, ip - 1, ip) + leg(problem, tour, jp, jp + 1);
        const double after =
            leg(problem, tour, ip - 1, jp) + leg(problem, tour, ip, jp + 1);
        std::reverse(tour.begin() + ip, tour.begin() + jp + 1);
        std::reverse(px.begin() + ip, px.begin() + jp + 1);
        std::reverse(py.begin() + ip, py.begin() + jp + 1);
        // Internal legs keep their lengths with reversed orientation (the
        // squares make direction exact); only the boundary legs change.
        std::reverse(tc.begin() + ip, tc.begin() + jp);
        tc[hit] = leg_time(px, py, problem.speed, hit);
        if (i > 0) tc[i - 1] = leg_time(px, py, problem.speed, i - 1);
        saved += before - after;
        improved = true;
        any_hit = true;
        // The reversal moved positions [i, hit]: every left-edge fact that
        // reads any of them (i' <= hit + 1) is stale.
        std::fill(clean.begin(),
                  clean.begin() + static_cast<std::ptrdiff_t>(
                                      std::min(hit + 2, m)),
                  0);
        // Position i now holds a different point; position i-1 did not move.
        bx = px[i];
        by = py[i];
        base = leg(problem, tour, ip - 1, ip);
        j = hit + 1;
      }
      if (!any_hit) clean[i] = 1;
    }
    if (!improved) break;
  }
  if (converged) *converged = !improved;
  return saved;
}

// Or-opt with exact-replay candidate caching.
//
// The scalar reference is a restart loop: after every applied move the
// walk over candidates (segment length 1..3, start position i ascending,
// insertion slots k = depot, then [0, i-1), then [i+len, m)) starts over
// from the beginning, so every candidate before the next improving one is
// re-evaluated against an unchanged tour and reaches the same conclusion
// it reached last time, bit for bit. This implementation records those
// conclusions instead of recomputing them. A recorded fact describes the
// *current* tour:
//   kRemovalFail — removal_gain <= min_gain, so no insertion slot was
//                  even scanned; only the removal legs matter.
//   kScanClean   — removal_gain > min_gain but no insertion slot beats
//                  the threshold (cached in `thr`).
// A move relocates segment [i, i+len) to slot k. Positions outside the
// contiguous window W = [k+1, i+len) (move left, k < i) or W = [i, k+1)
// (move right, k >= i+len) keep their points, so after each move:
//   * facts whose removal legs touch W (start position in
//     [W.lo - len', W.hi]) are discarded;
//   * surviving kRemovalFail facts need nothing else;
//   * surviving kScanClean facts re-check only the insertion slots whose
//     inputs changed (k in [W.lo - 1, W.hi), plus the depot slot when
//     W.lo == 0); an improving re-check demotes the fact to kUnknown and
//     the main walk re-evaluates that candidate in order.
// Each conclusion the walk skips is exactly the conclusion the restart
// loop would recompute, so the sequence of applied moves — and the final
// tour and total gain — keep identical bits while the per-move cost drops
// from a full O(m^2) rescan to O(m + m * |W|).
double or_opt_impl(const TourProblem& problem, Tour& tour,
                   const ImproveOptions& options, bool* converged) {
  if (converged) *converged = true;
  const auto m = static_cast<std::ptrdiff_t>(tour.size());
  if (m < 3) return 0.0;
  std::vector<double> px, py, tc;
  mirror_tour(problem, tour, px, py);
  fill_leg_times(px, py, problem.speed, tc);

  enum : unsigned char { kUnknown = 0, kRemovalFail = 1, kScanClean = 2 };
  const auto mu = static_cast<std::size_t>(m);
  std::vector<unsigned char> fact(3 * mu, kUnknown);
  std::vector<double> thr(3 * mu, 0.0);  // threshold, valid under kScanClean
  const auto slot = [mu](std::ptrdiff_t len, std::ptrdiff_t i) {
    return static_cast<std::size_t>(len - 1) * mu + static_cast<std::size_t>(i);
  };

  // "Does any slot in [a, b) beat the threshold?" — the kernels promise
  // the scalar comparison sequence bit for bit, so short windows may skip
  // the dispatch and run the same sequence inline; the length cutoff can
  // steer only where the identical verdict is computed, never what it is.
  const auto any_improving = [&](std::size_t a, std::size_t b, double ix,
                                 double iy, double ex, double ey,
                                 double threshold) {
    if (b - a < 24) {
      for (std::size_t kk = a; kk < b; ++kk) {
        const double dax = px[kk] - ix;
        const double day = py[kk] - iy;
        const double da = std::sqrt(dax * dax + day * day);
        const double dbx = ex - px[kk + 1];
        const double dby = ey - py[kk + 1];
        const double db = std::sqrt(dbx * dbx + dby * dby);
        if (da / problem.speed + db / problem.speed - tc[kk] < threshold) {
          return true;
        }
      }
      return false;
    }
    return simd::or_opt_scan(px.data(), py.data(), tc.data(), a, b, ix, iy,
                             ex, ey, problem.speed,
                             threshold) != simd::kNpos;
  };

  // Repairs recorded facts after a move changed positions [lo, hi).
  const auto refresh_facts = [&](std::ptrdiff_t lo, std::ptrdiff_t hi) {
    const auto ka =
        static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, lo - 1));
    const auto kb = static_cast<std::size_t>(hi);  // changed slots: [ka, kb)
    for (std::ptrdiff_t len = 1; len <= 3 && len < m; ++len) {
      for (std::ptrdiff_t i = 0; i + len <= m; ++i) {
        unsigned char& f = fact[slot(len, i)];
        if (f == kUnknown) continue;
        if (i >= lo - len && i <= hi) {  // removal legs touch W
          f = kUnknown;
          continue;
        }
        if (f == kRemovalFail) continue;
        // kScanClean: the removal legs are untouched, so the cached
        // threshold keeps its bits; re-check the changed slots only.
        const double threshold = thr[slot(len, i)];
        const double ix = px[static_cast<std::size_t>(i)];
        const double iy = py[static_cast<std::size_t>(i)];
        const double ex = px[static_cast<std::size_t>(i + len - 1)];
        const double ey = py[static_cast<std::size_t>(i + len - 1)];
        bool improving = false;
        if (lo == 0 && i > 0) {  // depot slot reads position 0
          const double depot_cost = leg(problem, tour, -1, i) +
                                    leg(problem, tour, i + len - 1, 0) -
                                    leg(problem, tour, -1, 0);
          if (depot_cost < threshold) improving = true;
        }
        if (!improving && i >= 2) {
          const std::size_t b =
              std::min<std::size_t>(kb, static_cast<std::size_t>(i - 1));
          if (ka < b && any_improving(ka, b, ix, iy, ex, ey, threshold)) {
            improving = true;
          }
        }
        if (!improving) {
          const std::size_t a =
              std::max<std::size_t>(ka, static_cast<std::size_t>(i + len));
          const std::size_t b = std::min<std::size_t>(kb, mu);
          if (a < b && any_improving(a, b, ix, iy, ex, ey, threshold)) {
            improving = true;
          }
        }
        if (improving) f = kUnknown;
      }
    }
  };

  double saved = 0.0;
  bool applied = true;
  for (std::size_t moves = 0; applied && moves < options.max_passes;) {
    applied = false;
    for (std::ptrdiff_t len = 1; len <= 3 && len < m; ++len) {
      for (std::ptrdiff_t i = 0; i + len <= m && !applied; ++i) {
        if (fact[slot(len, i)] != kUnknown) continue;
        // Segment [i, i+len); try inserting after position k (k outside the
        // segment), i.e. between k and k+1.
        const double removal_gain = leg(problem, tour, i - 1, i) +
                                    leg(problem, tour, i + len - 1, i + len) -
                                    leg(problem, tour, i - 1, i + len);
        if (removal_gain <= options.min_gain) {
          fact[slot(len, i)] = kRemovalFail;
          continue;
        }
        const double threshold = removal_gain - options.min_gain;
        const double ix = px[static_cast<std::size_t>(i)];
        const double iy = py[static_cast<std::size_t>(i)];
        const double ex = px[static_cast<std::size_t>(i + len - 1)];
        const double ey = py[static_cast<std::size_t>(i + len - 1)];
        // The scalar k loop ran -1, 0, .., m-1 skipping the no-op window
        // [i-1, i+len). Same order here: the depot slot k = -1 (checked
        // scalar-style; the window swallows it when i == 0), then the
        // kernel scans [0, i-1) and [i+len, m).
        std::ptrdiff_t k = -2;  // -2: no improving position found
        if (i > 0) {
          const double depot_cost = leg(problem, tour, -1, i) +
                                    leg(problem, tour, i + len - 1, 0) -
                                    leg(problem, tour, -1, 0);
          if (depot_cost < threshold) k = -1;
        }
        if (k == -2 && i >= 2) {
          const std::size_t hit = simd::or_opt_scan(
              px.data(), py.data(), tc.data(), 0,
              static_cast<std::size_t>(i - 1), ix, iy, ex, ey, problem.speed,
              threshold);
          if (hit != simd::kNpos) k = static_cast<std::ptrdiff_t>(hit);
        }
        if (k == -2) {
          const std::size_t hit = simd::or_opt_scan(
              px.data(), py.data(), tc.data(),
              static_cast<std::size_t>(i + len), static_cast<std::size_t>(m),
              ix, iy, ex, ey, problem.speed, threshold);
          if (hit != simd::kNpos) k = static_cast<std::ptrdiff_t>(hit);
        }
        if (k == -2) {
          fact[slot(len, i)] = kScanClean;
          thr[slot(len, i)] = threshold;
          continue;
        }
        const double insert_cost = leg(problem, tour, k, i) +
                                   leg(problem, tour, i + len - 1, k + 1) -
                                   leg(problem, tour, k, k + 1);
        // Perform the move on a copy of the segment.
        Tour segment(tour.begin() + i, tour.begin() + i + len);
        tour.erase(tour.begin() + i, tour.begin() + i + len);
        const std::ptrdiff_t dest = k < i ? k + 1 : k + 1 - len;
        tour.insert(tour.begin() + dest, segment.begin(), segment.end());
        saved += removal_gain - insert_cost;
        ++moves;
        applied = true;  // positions shifted; restart the walk
        // Re-mirror (pure function of the tour — identical bits to the
        // per-pass rebuild of the restart loop), then repair the facts.
        mirror_tour(problem, tour, px, py);
        fill_leg_times(px, py, problem.speed, tc);
        refresh_facts(k < i ? k + 1 : i, k < i ? i + len : k + 1);
      }
      if (applied) break;
    }
  }
  if (converged) *converged = !applied;
  return saved;
}

}  // namespace

double two_opt(const TourProblem& problem, Tour& tour,
               const ImproveOptions& options) {
  return two_opt_impl(problem, tour, options, nullptr);
}

double or_opt(const TourProblem& problem, Tour& tour,
              const ImproveOptions& options) {
  return or_opt_impl(problem, tour, options, nullptr);
}

double improve_tour(const TourProblem& problem, Tour& tour,
                    const ImproveOptions& options) {
  double saved = 0.0;
  // "The current tour was verified move-free by a full or_opt walk" — set
  // by a converged or_opt and preserved while nothing touches the tour.
  // Every applied move gains strictly more than min_gain > 0, so an
  // operator returns exactly 0.0 iff it applied no move and left the tour
  // untouched; that makes both skips below provably bit-neutral: the
  // skipped work would have contributed 0.0 and changed nothing.
  bool or_clean = false;
  for (std::size_t round = 0; round < options.max_passes; ++round) {
    double two_gain = 0.0;
    double or_gain = 0.0;
    bool two_converged = true;
    bool or_converged = true;
    if (options.use_two_opt) {
      two_gain = two_opt_impl(problem, tour, options, &two_converged);
      if (two_gain != 0.0) or_clean = false;  // tour changed under the fact
    }
    if (options.use_or_opt && !or_clean) {
      or_gain = or_opt_impl(problem, tour, options, &or_converged);
      or_clean = or_converged;
    }
    const double round_gain = two_gain + or_gain;
    saved += round_gain;
    if (round_gain <= options.min_gain) break;
    // A follow-up round is provably a no-op when two_opt's last full scan
    // was clean with nothing running after it (or_gain == 0.0) and the
    // or-opt move set is verified clean as well.
    const bool two_settled =
        !options.use_two_opt || (two_converged && or_gain == 0.0);
    const bool or_settled = !options.use_or_opt || or_clean;
    if (two_settled && or_settled) break;
  }
  return saved;
}

}  // namespace mcharge::tsp
