#include "tsp/improve.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/assert.h"
#include "util/simd.h"

namespace mcharge::tsp {

namespace {

// Distance helpers treating position -1 and position m as the depot.
double leg(const TourProblem& p, const Tour& t, std::ptrdiff_t i,
           std::ptrdiff_t j) {
  const bool i_depot = i < 0 || i >= static_cast<std::ptrdiff_t>(t.size());
  const bool j_depot = j < 0 || j >= static_cast<std::ptrdiff_t>(t.size());
  if (i_depot && j_depot) return 0.0;
  if (i_depot) return p.travel_depot(t[static_cast<std::size_t>(j)]);
  if (j_depot) return p.travel_depot(t[static_cast<std::size_t>(i)]);
  return p.travel(t[static_cast<std::size_t>(i)], t[static_cast<std::size_t>(j)]);
}

// Position-ordered SoA mirror of the tour (px[p], py[p] = coordinates of
// tour[p]) with the depot appended as a sentinel at index m so the gain
// kernels may read P[j + 1] for j == m - 1. Recomputing a distance from
// these coordinates yields exactly the bits a cache read (or geom::distance)
// would — the precondition for routing the scans through util/simd.h.
void mirror_tour(const TourProblem& problem, const Tour& tour,
                 std::vector<double>& px, std::vector<double>& py) {
  const std::size_t m = tour.size();
  px.resize(m + 1);
  py.resize(m + 1);
  for (std::size_t p = 0; p < m; ++p) {
    px[p] = problem.sites[tour[p]].x;
    py[p] = problem.sites[tour[p]].y;
  }
  px[m] = problem.depot.x;
  py[m] = problem.depot.y;
}

// Travel time of the (k, k+1) leg from the mirrored coordinates — the
// exact bits the scan kernels previously recomputed per element.
double leg_time(const std::vector<double>& px, const std::vector<double>& py,
                double speed, std::size_t k) {
  const double dx = px[k] - px[k + 1];
  const double dy = py[k] - py[k + 1];
  return std::sqrt(dx * dx + dy * dy) / speed;
}

// tc[k] = travel time of leg (P[k], P[k+1]) for k in [0, m); the last
// entry is the (P[m-1], depot) leg via the sentinel. Hoisting these out
// of the 2-opt / Or-opt scans removes a sqrt and a divide per scanned
// element; every compared value keeps identical bits.
void fill_leg_times(const std::vector<double>& px,
                    const std::vector<double>& py, double speed,
                    std::vector<double>& tc) {
  const std::size_t m = px.size() - 1;
  tc.resize(m);
  for (std::size_t k = 0; k < m; ++k) tc[k] = leg_time(px, py, speed, k);
}

}  // namespace

double two_opt(const TourProblem& problem, Tour& tour,
               const ImproveOptions& options) {
  const std::size_t m = tour.size();
  if (m < 2) return 0.0;
  std::vector<double> px, py, tc;
  mirror_tour(problem, tour, px, py);
  fill_leg_times(px, py, problem.speed, tc);

  double saved = 0.0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    // Reverse tour[i..j]; affected legs: (i-1, i) and (j, j+1) become
    // (i-1, j) and (i, j+1). Depot legs included via sentinel positions.
    // For each left edge the j loop is a first-improvement scan with a
    // fixed (ax, ay), (bx, by) and base leg — exactly the shape of
    // simd::two_opt_scan, which returns the first improving j (or kNpos)
    // with the scalar comparison sequence. After a reversal the scan
    // resumes at j + 1 on the updated tour, as the scalar loop did.
    for (std::size_t i = 0; i + 1 < m; ++i) {
      const auto ip = static_cast<std::ptrdiff_t>(i);
      const double ax = i == 0 ? problem.depot.x : px[i - 1];
      const double ay = i == 0 ? problem.depot.y : py[i - 1];
      double bx = px[i];
      double by = py[i];
      double base = leg(problem, tour, ip - 1, ip);
      // i == 0 with j == m - 1 is the full reversal (no change): the
      // scalar loop skipped it, so the scan simply ends one j earlier.
      const std::size_t j_end = i == 0 ? m - 1 : m;
      std::size_t j = i + 1;
      while (j < j_end) {
        const std::size_t hit = simd::two_opt_scan(
            px.data(), py.data(), tc.data(), j, j_end, ax, ay, bx, by,
            problem.speed, base, options.min_gain);
        if (hit == simd::kNpos) break;
        const auto jp = static_cast<std::ptrdiff_t>(hit);
        const double before =
            leg(problem, tour, ip - 1, ip) + leg(problem, tour, jp, jp + 1);
        const double after =
            leg(problem, tour, ip - 1, jp) + leg(problem, tour, ip, jp + 1);
        std::reverse(tour.begin() + ip, tour.begin() + jp + 1);
        std::reverse(px.begin() + ip, px.begin() + jp + 1);
        std::reverse(py.begin() + ip, py.begin() + jp + 1);
        // Internal legs keep their lengths with reversed orientation (the
        // squares make direction exact); only the boundary legs change.
        std::reverse(tc.begin() + ip, tc.begin() + jp);
        tc[hit] = leg_time(px, py, problem.speed, hit);
        if (i > 0) tc[i - 1] = leg_time(px, py, problem.speed, i - 1);
        saved += before - after;
        improved = true;
        // Position i now holds a different point; position i-1 did not move.
        bx = px[i];
        by = py[i];
        base = leg(problem, tour, ip - 1, ip);
        j = hit + 1;
      }
    }
    if (!improved) break;
  }
  return saved;
}

double or_opt(const TourProblem& problem, Tour& tour,
              const ImproveOptions& options) {
  const auto m = static_cast<std::ptrdiff_t>(tour.size());
  if (m < 3) return 0.0;
  std::vector<double> px, py, tc;
  double saved = 0.0;
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    mirror_tour(problem, tour, px, py);
    fill_leg_times(px, py, problem.speed, tc);
    for (std::ptrdiff_t len = 1; len <= 3 && len < m; ++len) {
      for (std::ptrdiff_t i = 0; i + len <= m && !improved; ++i) {
        // Segment [i, i+len); try inserting after position k (k outside the
        // segment), i.e. between k and k+1.
        const double removal_gain = leg(problem, tour, i - 1, i) +
                                    leg(problem, tour, i + len - 1, i + len) -
                                    leg(problem, tour, i - 1, i + len);
        if (removal_gain <= options.min_gain) continue;
        const double threshold = removal_gain - options.min_gain;
        const double ix = px[static_cast<std::size_t>(i)];
        const double iy = py[static_cast<std::size_t>(i)];
        const double ex = px[static_cast<std::size_t>(i + len - 1)];
        const double ey = py[static_cast<std::size_t>(i + len - 1)];
        // The scalar k loop ran -1, 0, .., m-1 skipping the no-op window
        // [i-1, i+len). Same order here: the depot slot k = -1 (checked
        // scalar-style; the window swallows it when i == 0), then the
        // kernel scans [0, i-1) and [i+len, m).
        std::ptrdiff_t k = -2;  // -2: no improving position found
        if (i > 0) {
          const double depot_cost = leg(problem, tour, -1, i) +
                                    leg(problem, tour, i + len - 1, 0) -
                                    leg(problem, tour, -1, 0);
          if (depot_cost < threshold) k = -1;
        }
        if (k == -2 && i >= 2) {
          const std::size_t hit = simd::or_opt_scan(
              px.data(), py.data(), tc.data(), 0,
              static_cast<std::size_t>(i - 1), ix, iy, ex, ey, problem.speed,
              threshold);
          if (hit != simd::kNpos) k = static_cast<std::ptrdiff_t>(hit);
        }
        if (k == -2) {
          const std::size_t hit = simd::or_opt_scan(
              px.data(), py.data(), tc.data(),
              static_cast<std::size_t>(i + len), static_cast<std::size_t>(m),
              ix, iy, ex, ey, problem.speed, threshold);
          if (hit != simd::kNpos) k = static_cast<std::ptrdiff_t>(hit);
        }
        if (k == -2) continue;
        const double insert_cost = leg(problem, tour, k, i) +
                                   leg(problem, tour, i + len - 1, k + 1) -
                                   leg(problem, tour, k, k + 1);
        // Perform the move on a copy of the segment.
        Tour segment(tour.begin() + i, tour.begin() + i + len);
        tour.erase(tour.begin() + i, tour.begin() + i + len);
        const std::ptrdiff_t dest = k < i ? k + 1 : k + 1 - len;
        tour.insert(tour.begin() + dest, segment.begin(), segment.end());
        saved += removal_gain - insert_cost;
        improved = true;  // positions shifted; restart the pass conservatively
      }
      if (improved) break;
    }
    if (!improved) break;
  }
  return saved;
}

double improve_tour(const TourProblem& problem, Tour& tour,
                    const ImproveOptions& options) {
  double saved = 0.0;
  for (std::size_t round = 0; round < options.max_passes; ++round) {
    double round_gain = 0.0;
    if (options.use_two_opt) round_gain += two_opt(problem, tour, options);
    if (options.use_or_opt) round_gain += or_opt(problem, tour, options);
    saved += round_gain;
    if (round_gain <= options.min_gain) break;
  }
  return saved;
}

}  // namespace mcharge::tsp
