// Min-max K-tour splitting — the "K-optimal closed tour" substrate.
//
// Liang et al. (ACM TOSN'16) give a 5-approximation for finding K
// node-disjoint depot-rooted closed tours covering a node set while
// minimizing the longest (travel + service) tour delay. We implement the
// classic tour-splitting scheme behind that family of results
// (Frederickson, Hecht & Kim): build one node-weighted TSP tour over all
// sites, then cut it into at most K consecutive segments, connecting each
// segment's endpoints to the depot. The cut positions are chosen by binary
// search on the max segment delay with a greedy feasibility check, which
// finds the optimal cut of the given tour (up to numeric tolerance).
#pragma once

#include <cstddef>
#include <vector>

#include "tsp/construct.h"
#include "tsp/improve.h"
#include "tsp/tour_problem.h"

namespace mcharge::tsp {

struct SplitResult {
  std::vector<Tour> tours;  ///< exactly K tours; trailing ones may be empty
  double max_delay = 0.0;   ///< delay of the longest tour
};

/// Optional per-segment energy cap for the split. A segment's energy is
/// its travel seconds (depot -> sites -> depot) times travel_power_w plus
/// its service seconds times service_power_w; core/appro.cpp derives the
/// powers from an energy::McvBudgetSpec (travel_power_w = move cost per
/// meter x MCV speed, service_power_w = charging rate / transfer
/// efficiency), making a segment's energy exactly the planner's estimate
/// of the executor's battery draw. budget_j == 0 disables the cap — the
/// split then takes exactly the delay-only code path.
struct SegmentEnergyCap {
  double budget_j = 0.0;        ///< per-segment joule cap; 0 = disabled
  double travel_power_w = 0.0;  ///< joules per second of driving
  double service_power_w = 0.0; ///< joules per second of charging service
  bool enabled() const { return budget_j > 0.0; }
};

/// Cuts the given complete closed tour into at most K depot-rooted segments
/// minimizing the maximum segment delay. The input tour's site order is
/// preserved inside each segment. With an enabled `cap`, the greedy cut
/// also closes a segment whenever extending it would push its energy over
/// cap.budget_j, so every returned segment fits the cap — except when even
/// the loosest delay budget cannot satisfy cap and K together, in which
/// case the cap is dropped entirely (best effort: the executor's budget
/// machinery turns any residual overdraw into a recoverable abort). A
/// single site whose own energy exceeds the cap is always allowed as its
/// own segment for the same reason.
SplitResult split_min_max(const TourProblem& problem, const Tour& tour,
                          std::size_t k, const SegmentEnergyCap& cap = {});

struct MinMaxTourOptions {
  TourBuilder builder = TourBuilder::kChristofides;
  /// Odd-vertex matching engine for kChristofides (sparse blossom by
  /// default; forcing dense yields byte-identical tours).
  matching::MatchingOptions matching;
  ImproveOptions improve;       ///< applied to the global tour before split
  bool improve_segments = true; ///< 2-opt each segment after splitting
  /// Worker threads for the per-segment improvement pass — the K segments
  /// are independent, so each is improved in place in its own slot and
  /// the max-delay reduction runs afterwards in index order; any thread
  /// count yields byte-identical tours. 0 = serial (unlike parallel_for,
  /// where 0 means default_jobs()).
  std::size_t jobs = 0;
  /// Per-segment energy cap forwarded to split_min_max. Disabled by
  /// default; per-segment 2-opt can only shorten travel, so it never
  /// pushes a cap-respecting segment back over the cap.
  SegmentEnergyCap energy;
};

/// End-to-end K min-max closed tours over all sites of `problem`:
/// construct -> improve -> split -> (optionally) improve each segment.
SplitResult min_max_k_tours(const TourProblem& problem, std::size_t k,
                            const MinMaxTourOptions& options = {});

}  // namespace mcharge::tsp
