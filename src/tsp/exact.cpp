#include "tsp/exact.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/assert.h"

namespace mcharge::tsp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Held-Karp table: best[mask][last] = cheapest travel time starting at the
/// depot, visiting exactly the sites in `mask`, ending at site `last`.
struct HeldKarp {
  std::size_t m;
  std::vector<double> best;        // (mask, last) flattened
  std::vector<std::int32_t> prev;  // predecessor site for reconstruction

  double& at(std::uint32_t mask, std::size_t last) {
    return best[static_cast<std::size_t>(mask) * m + last];
  }
  std::int32_t& from(std::uint32_t mask, std::size_t last) {
    return prev[static_cast<std::size_t>(mask) * m + last];
  }
};

HeldKarp solve(const TourProblem& p) {
  const std::size_t m = p.size();
  MCHARGE_ASSERT(m <= kHeldKarpLimit, "Held-Karp limited to 20 sites");
  p.ensure_distance_cache();
  HeldKarp hk;
  hk.m = m;
  const std::size_t states = (std::size_t{1} << m) * m;
  hk.best.assign(states, kInf);
  hk.prev.assign(states, -1);
  for (std::size_t v = 0; v < m; ++v) {
    hk.at(1u << v, v) = p.travel_depot(static_cast<SiteId>(v));
  }
  const std::uint32_t full = (1u << m) - 1u;
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    for (std::size_t last = 0; last < m; ++last) {
      if (!(mask & (1u << last))) continue;
      const double cost = hk.at(mask, last);
      if (cost == kInf) continue;
      for (std::size_t next = 0; next < m; ++next) {
        if (mask & (1u << next)) continue;
        const std::uint32_t nmask = mask | (1u << next);
        const double ncost = cost + p.travel(static_cast<SiteId>(last),
                                             static_cast<SiteId>(next));
        if (ncost < hk.at(nmask, next)) {
          hk.at(nmask, next) = ncost;
          hk.from(nmask, next) = static_cast<std::int32_t>(last);
        }
      }
    }
  }
  return hk;
}

}  // namespace

double held_karp_travel_time(const TourProblem& problem) {
  const std::size_t m = problem.size();
  if (m == 0) return 0.0;
  HeldKarp hk = solve(problem);
  const std::uint32_t full = (1u << m) - 1u;
  double best = kInf;
  for (std::size_t last = 0; last < m; ++last) {
    best = std::min(best, hk.at(full, last) +
                              problem.travel_depot(static_cast<SiteId>(last)));
  }
  return best;
}

Tour held_karp_tour(const TourProblem& problem) {
  const std::size_t m = problem.size();
  if (m == 0) return {};
  HeldKarp hk = solve(problem);
  const std::uint32_t full = (1u << m) - 1u;
  double best = kInf;
  std::size_t last = 0;
  for (std::size_t v = 0; v < m; ++v) {
    const double cost =
        hk.at(full, v) + problem.travel_depot(static_cast<SiteId>(v));
    if (cost < best) {
      best = cost;
      last = v;
    }
  }
  Tour tour;
  std::uint32_t mask = full;
  std::int32_t at = static_cast<std::int32_t>(last);
  while (at >= 0) {
    tour.push_back(static_cast<SiteId>(at));
    const std::int32_t prev = hk.from(mask, static_cast<std::size_t>(at));
    mask &= ~(1u << at);
    at = prev;
  }
  std::reverse(tour.begin(), tour.end());
  MCHARGE_ASSERT(is_complete_tour(problem, tour),
                 "Held-Karp reconstruction failed");
  return tour;
}

}  // namespace mcharge::tsp
