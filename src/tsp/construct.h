// Closed-tour construction heuristics over a TourProblem.
//
// All constructors return a complete tour (a permutation of all sites); the
// depot is implicit at both ends. The TSP is solved over sites + depot; the
// returned order is the cycle cut at the depot.
#pragma once

#include "matching/matching.h"
#include "tsp/tour_problem.h"

namespace mcharge::tsp {

enum class TourBuilder {
  kNearestNeighbor,  ///< start at depot, repeatedly visit nearest unvisited
  kGreedyEdge,       ///< cheapest-edge cycle construction
  kDoubleTree,       ///< MST doubling + Euler shortcut (2-approx on travel)
  kChristofides,     ///< MST + odd-vertex matching + Euler (1.5-approx)
};

Tour nearest_neighbor_tour(const TourProblem& problem);
Tour greedy_edge_tour(const TourProblem& problem);
Tour double_tree_tour(const TourProblem& problem);
/// Christofides: MST + minimum-weight matching on the odd-degree
/// vertices + Euler shortcut. The matching runs on the odd vertices'
/// coordinates through the geometric engine dispatch, so `matching`
/// selects the engine (exact blossom up to matching::kBlossomLimit odd
/// vertices by default — the 1.5-approximation holds throughout).
Tour christofides_tour(const TourProblem& problem,
                       const matching::MatchingOptions& matching = {});

/// Dispatch on TourBuilder; `matching` applies to kChristofides only.
Tour build_tour(const TourProblem& problem, TourBuilder builder,
                const matching::MatchingOptions& matching = {});

}  // namespace mcharge::tsp
