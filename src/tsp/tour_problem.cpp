#include "tsp/tour_problem.h"

#include <algorithm>

#include "util/assert.h"
#include "util/simd.h"

namespace mcharge::tsp {

void TourProblem::ensure_distance_cache() const {
  if (has_distance_cache()) return;
  drop_distance_cache();
  const std::size_t m = sites.size();
  cache_built_ = true;
  cached_m_ = m;
  // Nothing to tabulate for m <= 1: distance() never consults the matrix
  // (the only pair is the zero diagonal) and a lone depot leg is cheaper
  // recomputed than cached. Keeping this a no-op makes repeated
  // ensure/drop cycles on tiny subproblems allocation-free.
  if (m <= 1) return;
  xs_.resize(m);
  ys_.resize(m);
  for (std::size_t a = 0; a < m; ++a) {
    xs_[a] = sites[a].x;
    ys_[a] = sites[a].y;
  }
  depot_dist_.resize(m);
  simd::distance_row(xs_.data(), ys_.data(), m, depot.x, depot.y,
                     depot_dist_.data());
  site_dist_.resize(m * m);
  // Row-wise kernel fill of the upper triangle (diagonal included: the
  // kernel yields +0.0 there), mirrored into the lower triangle so the
  // matrix stays structurally symmetric. Every entry carries exactly the
  // bits geom::distance would produce.
  simd::distance_matrix(xs_.data(), ys_.data(), m, site_dist_.data());
}

void TourProblem::drop_distance_cache() const {
  site_dist_.clear();
  depot_dist_.clear();
  xs_.clear();
  ys_.clear();
  cache_built_ = false;
  cached_m_ = 0;
}

void TourProblem::check() const {
  MCHARGE_ASSERT(service.size() == sites.size(),
                 "one service time per site required");
  MCHARGE_ASSERT(speed > 0.0, "vehicle speed must be positive");
  for (double s : service) {
    MCHARGE_ASSERT(s >= 0.0, "service times must be non-negative");
  }
}

double tour_travel_time(const TourProblem& problem, const Tour& tour) {
  if (tour.empty()) return 0.0;
  double total = problem.travel_depot(tour.front());
  for (std::size_t i = 0; i + 1 < tour.size(); ++i) {
    total += problem.travel(tour[i], tour[i + 1]);
  }
  total += problem.travel_depot(tour.back());
  return total;
}

double tour_service_time(const TourProblem& problem, const Tour& tour) {
  double total = 0.0;
  for (SiteId v : tour) total += problem.service[v];
  return total;
}

double tour_delay(const TourProblem& problem, const Tour& tour) {
  return tour_travel_time(problem, tour) + tour_service_time(problem, tour);
}

bool is_complete_tour(const TourProblem& problem, const Tour& tour) {
  if (tour.size() != problem.size()) return false;
  std::vector<char> seen(problem.size(), 0);
  for (SiteId v : tour) {
    if (v >= problem.size() || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

}  // namespace mcharge::tsp
