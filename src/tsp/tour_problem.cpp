#include "tsp/tour_problem.h"

#include <algorithm>

#include "util/assert.h"

namespace mcharge::tsp {

void TourProblem::ensure_distance_cache() const {
  if (has_distance_cache()) return;
  const std::size_t m = sites.size();
  if (m == 0) {
    drop_distance_cache();
    return;
  }
  depot_dist_.resize(m);
  site_dist_.assign(m * m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    depot_dist_[a] = geom::distance(depot, sites[a]);
    // Fill both triangles from one computation so the matrix is exactly
    // symmetric (geom::distance is, but this makes it structural).
    for (std::size_t b = a + 1; b < m; ++b) {
      const double d = geom::distance(sites[a], sites[b]);
      site_dist_[a * m + b] = d;
      site_dist_[b * m + a] = d;
    }
  }
}

void TourProblem::drop_distance_cache() const {
  site_dist_.clear();
  depot_dist_.clear();
}

void TourProblem::check() const {
  MCHARGE_ASSERT(service.size() == sites.size(),
                 "one service time per site required");
  MCHARGE_ASSERT(speed > 0.0, "vehicle speed must be positive");
  for (double s : service) {
    MCHARGE_ASSERT(s >= 0.0, "service times must be non-negative");
  }
}

double tour_travel_time(const TourProblem& problem, const Tour& tour) {
  if (tour.empty()) return 0.0;
  double total = problem.travel_depot(tour.front());
  for (std::size_t i = 0; i + 1 < tour.size(); ++i) {
    total += problem.travel(tour[i], tour[i + 1]);
  }
  total += problem.travel_depot(tour.back());
  return total;
}

double tour_service_time(const TourProblem& problem, const Tour& tour) {
  double total = 0.0;
  for (SiteId v : tour) total += problem.service[v];
  return total;
}

double tour_delay(const TourProblem& problem, const Tour& tour) {
  return tour_travel_time(problem, tour) + tour_service_time(problem, tour);
}

bool is_complete_tour(const TourProblem& problem, const Tour& tour) {
  if (tour.size() != problem.size()) return false;
  std::vector<char> seen(problem.size(), 0);
  for (SiteId v : tour) {
    if (v >= problem.size() || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

}  // namespace mcharge::tsp
