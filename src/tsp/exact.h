// Exact TSP via Held-Karp dynamic programming.
//
// Used as the reference oracle in tests and by the ablation benches to
// measure construction-heuristic gaps on small instances. Exponential in
// the number of sites (O(2^m * m^2) time, O(2^m * m) space); capped at
// m <= 20.
#pragma once

#include "tsp/tour_problem.h"

namespace mcharge::tsp {

/// Largest site count accepted by held_karp_tour (2^m states are
/// materialized).
inline constexpr std::size_t kHeldKarpLimit = 20;

/// The optimal closed tour (minimum travel time; service times are
/// order-invariant and excluded from the optimization). Requires
/// problem.size() <= kHeldKarpLimit (asserted).
Tour held_karp_tour(const TourProblem& problem);

/// The optimal closed-tour travel time without reconstructing the tour.
double held_karp_travel_time(const TourProblem& problem);

}  // namespace mcharge::tsp
