// Local-search improvement of closed tours: 2-opt and Or-opt.
//
// Service times are invariant under reordering, so both moves optimize the
// travel component only. Tours are depot-rooted: the depot legs at both
// ends participate in the move evaluation.
#pragma once

#include "tsp/tour_problem.h"

namespace mcharge::tsp {

struct ImproveOptions {
  bool use_two_opt = true;
  bool use_or_opt = true;
  std::size_t max_passes = 64;   ///< safety bound on improvement sweeps
  double min_gain = 1e-9;        ///< ignore numerically-zero improvements
};

/// 2-opt to a local optimum (reverses tour segments). Returns total travel
/// time saved.
double two_opt(const TourProblem& problem, Tour& tour,
               const ImproveOptions& options = {});

/// Or-opt to a local optimum (relocates segments of length 1..3). Returns
/// travel time saved.
double or_opt(const TourProblem& problem, Tour& tour,
              const ImproveOptions& options = {});

/// Runs the enabled moves alternately until neither improves.
double improve_tour(const TourProblem& problem, Tour& tour,
                    const ImproveOptions& options = {});

}  // namespace mcharge::tsp
