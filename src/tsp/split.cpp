#include "tsp/split.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/assert.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace mcharge::tsp {

namespace {

/// Greedily cuts `tour` into segments of delay <= budget. Returns the
/// segments, or an empty optional-equivalent (ok=false) if some single
/// site alone exceeds the budget.
struct GreedyCut {
  bool ok = false;
  std::vector<Tour> segments;
};

GreedyCut greedy_cut(const TourProblem& p, const Tour& tour, double budget,
                     const SegmentEnergyCap& cap) {
  GreedyCut result;
  Tour current;
  double internal = 0.0;  // travel within segment + service
  // Energy bookkeeping (cap only): internal travel / service seconds,
  // tracked separately so joules can be priced per component. The delay
  // accumulator above is left bit-for-bit untouched — with a disabled cap
  // the cut decisions are exactly the delay-only ones.
  double etravel = 0.0;
  double eservice = 0.0;
  for (std::size_t i = 0; i < tour.size(); ++i) {
    const SiteId v = tour[i];
    const double solo = 2.0 * p.travel_depot(v) + p.service[v];
    if (solo > budget) return result;  // infeasible budget
    if (current.empty()) {
      current.push_back(v);
      internal = p.service[v];
      etravel = 0.0;
      eservice = p.service[v];
      continue;
    }
    const double extended = p.travel_depot(current.front()) + internal +
                            p.travel(current.back(), v) + p.service[v] +
                            p.travel_depot(v);
    bool fits = extended <= budget;
    if (fits && cap.enabled()) {
      // A single site over the cap is still admitted as its own segment
      // (the executor's budget machinery handles the overdraw); only
      // *extending* past the cap forces a cut.
      const double joules =
          (p.travel_depot(current.front()) + etravel +
           p.travel(current.back(), v) + p.travel_depot(v)) *
              cap.travel_power_w +
          (eservice + p.service[v]) * cap.service_power_w;
      fits = joules <= cap.budget_j;
    }
    if (fits) {
      internal += p.travel(current.back(), v) + p.service[v];
      etravel += p.travel(current.back(), v);
      eservice += p.service[v];
      current.push_back(v);
    } else {
      result.segments.push_back(std::move(current));
      current = {v};
      internal = p.service[v];
      etravel = 0.0;
      eservice = p.service[v];
    }
  }
  if (!current.empty()) result.segments.push_back(std::move(current));
  result.ok = true;
  return result;
}

double max_segment_delay(const TourProblem& p, const std::vector<Tour>& segs) {
  double worst = 0.0;
  for (const auto& s : segs) worst = std::max(worst, tour_delay(p, s));
  return worst;
}

}  // namespace

SplitResult split_min_max(const TourProblem& problem, const Tour& tour,
                          std::size_t k, const SegmentEnergyCap& cap) {
  MCHARGE_ASSERT(k >= 1, "split requires k >= 1");
  MCHARGE_ASSERT(is_complete_tour(problem, tour),
                 "split requires a complete tour");
  problem.ensure_distance_cache();
  SplitResult result;
  if (tour.empty()) {
    result.tours.assign(k, Tour{});
    return result;
  }

  // Lower bound: the hardest single site. Upper bound: whole tour as one.
  // The upper bound gets a relative nudge so that accumulation-order
  // floating-point noise cannot make the whole-tour budget "infeasible".
  // Solo delays go through the simd max reduction — max is exact (no
  // rounding), so any reduction order gives the scalar loop's bits.
  std::vector<double> solo(tour.size());
  for (std::size_t idx = 0; idx < tour.size(); ++idx) {
    const SiteId v = tour[idx];
    solo[idx] = 2.0 * problem.travel_depot(v) + problem.service[v];
  }
  const double lo0 = simd::max_reduce(solo.data(), solo.size());
  double lo = std::max(0.0, lo0);
  double hi = std::max(lo, tour_delay(problem, tour));
  hi += 1e-9 * std::max(1.0, hi);

  SegmentEnergyCap use = cap;
  GreedyCut best = greedy_cut(problem, tour, hi, use);
  if (use.enabled() && best.ok && best.segments.size() > k) {
    // The energy cap and the fleet size cannot both hold even at the
    // loosest delay budget: drop the cap (best effort — the executor's
    // budget machinery turns any residual overdraw into a recoverable,
    // cause-tagged abort) and redo the feasibility anchor.
    use = SegmentEnergyCap{};
    best = greedy_cut(problem, tour, hi, use);
  }
  MCHARGE_ASSERT(best.ok && best.segments.size() <= std::max<std::size_t>(k, 1),
                 "whole-tour budget must be feasible");

  // Binary search the smallest budget whose greedy cut uses <= k segments.
  for (int iter = 0; iter < 64 && hi - lo > 1e-9 * std::max(1.0, hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    GreedyCut cut = greedy_cut(problem, tour, mid, use);
    if (cut.ok && cut.segments.size() <= k) {
      best = std::move(cut);
      hi = mid;
    } else {
      lo = mid;
    }
  }

  result.tours = std::move(best.segments);
  result.tours.resize(k);  // pad with empty tours
  result.max_delay = max_segment_delay(problem, result.tours);
  return result;
}

SplitResult min_max_k_tours(const TourProblem& problem, std::size_t k,
                            const MinMaxTourOptions& options) {
  problem.check();
  if (problem.size() == 0) {
    SplitResult r;
    r.tours.assign(k, Tour{});
    return r;
  }
  // One O(m^2) distance build serves construction, improvement, and
  // splitting below; every travel() call after this is a table read.
  problem.ensure_distance_cache();
  Tour tour = build_tour(problem, options.builder, options.matching);
  improve_tour(problem, tour, options.improve);
  SplitResult result = split_min_max(problem, tour, k, options.energy);
  if (options.improve_segments) {
    // The segments are disjoint, every two_opt reads only the (already
    // built) distance cache and writes only its own tour, and the
    // max-delay reduction below runs after the fan-out in index order —
    // so the thread count cannot change a single bit of any tour.
    parallel_for(
        result.tours.size(),
        [&](std::size_t t) { two_opt(problem, result.tours[t], options.improve); },
        std::max<std::size_t>(1, options.jobs));
    result.max_delay = max_segment_delay(problem, result.tours);
  }
  return result;
}

}  // namespace mcharge::tsp
