#include "tsp/construct.h"

#include <algorithm>
#include <limits>

#include "graph/dsu.h"
#include "graph/euler.h"
#include "graph/mst.h"
#include "matching/matching.h"
#include "util/assert.h"
#include "util/simd.h"

namespace mcharge::tsp {

namespace {

// Internally the TSP runs over m+1 vertices: 0 is the depot, vertex v >= 1
// is site v-1. Distances are served from the problem's cache (the public
// entry points ensure it below).
double vertex_distance(const TourProblem& p, std::uint32_t a, std::uint32_t b) {
  if (a == 0) return b == 0 ? 0.0 : p.distance_depot(b - 1);
  if (b == 0) return p.distance_depot(a - 1);
  return p.distance(a - 1, b - 1);
}

/// Converts a vertex cycle (containing vertex 0 exactly once after
/// shortcutting) into a site tour starting after the depot.
Tour cycle_to_tour(const std::vector<std::uint32_t>& cycle) {
  // Find depot position.
  std::size_t depot_pos = 0;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (cycle[i] == 0) {
      depot_pos = i;
      break;
    }
  }
  Tour tour;
  tour.reserve(cycle.size() - 1);
  for (std::size_t step = 1; step < cycle.size(); ++step) {
    const std::uint32_t v = cycle[(depot_pos + step) % cycle.size()];
    tour.push_back(v - 1);
  }
  return tour;
}

/// Shortcuts an Eulerian walk into a Hamiltonian cycle (first occurrences).
std::vector<std::uint32_t> shortcut(const std::vector<std::uint32_t>& walk,
                                    std::size_t num_vertices) {
  std::vector<char> seen(num_vertices, 0);
  std::vector<std::uint32_t> cycle;
  cycle.reserve(num_vertices);
  for (std::uint32_t v : walk) {
    if (!seen[v]) {
      seen[v] = 1;
      cycle.push_back(v);
    }
  }
  return cycle;
}

}  // namespace

Tour nearest_neighbor_tour(const TourProblem& problem) {
  const std::size_t m = problem.size();
  problem.ensure_distance_cache();
  if (m <= 1) return m == 0 ? Tour{} : Tour{0};
  Tour tour;
  tour.reserve(m);
  // Each step is a masked lowest-index argmin over a contiguous cache row
  // (the depot vector for the first hop) — the simd kernel reproduces the
  // scalar strict-< scan bit for bit, ties included.
  std::vector<unsigned char> visited(m, 0);
  const double* row = problem.depot_distance_ptr();
  for (std::size_t step = 0; step < m; ++step) {
    const simd::ArgMin pick = simd::argmin_masked(row, visited.data(), m);
    MCHARGE_ASSERT(pick.index != simd::kNpos, "unvisited site must exist");
    const auto best_v = static_cast<SiteId>(pick.index);
    visited[best_v] = 1;
    tour.push_back(best_v);
    row = problem.distance_row_ptr(best_v);
  }
  return tour;
}

Tour greedy_edge_tour(const TourProblem& problem) {
  const std::size_t n = problem.size() + 1;  // vertices incl. depot
  if (problem.size() == 0) return {};
  if (problem.size() == 1) return {0};
  problem.ensure_distance_cache();

  // Sort all vertex pairs by distance; accept an edge if both endpoints
  // have degree < 2 and it does not close a subtour prematurely.
  struct Edge {
    std::uint32_t u, v;
    double w;
  };
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      edges.push_back({u, v, vertex_distance(problem, u, v)});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.w < b.w; });

  std::vector<std::uint32_t> degree(n, 0);
  graph::Dsu dsu(n);
  std::vector<std::vector<std::uint32_t>> adj(n);
  std::size_t accepted = 0;
  for (const Edge& e : edges) {
    if (accepted == n) break;
    if (degree[e.u] >= 2 || degree[e.v] >= 2) continue;
    const bool closes = dsu.same(e.u, e.v);
    if (closes && accepted != n - 1) continue;  // only final edge may close
    dsu.unite(e.u, e.v);
    ++degree[e.u];
    ++degree[e.v];
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
    ++accepted;
  }
  MCHARGE_ASSERT(accepted == n, "greedy edge construction incomplete");

  // Walk the cycle starting from the depot.
  std::vector<std::uint32_t> cycle;
  cycle.reserve(n);
  std::uint32_t prev = 0, at = 0;
  do {
    cycle.push_back(at);
    const std::uint32_t next =
        (adj[at][0] != prev || adj[at].size() == 1) ? adj[at][0] : adj[at][1];
    prev = at;
    at = next;
  } while (at != 0);
  return cycle_to_tour(cycle);
}

Tour double_tree_tour(const TourProblem& problem) {
  const std::size_t n = problem.size() + 1;
  if (problem.size() == 0) return {};
  problem.ensure_distance_cache();
  auto mst = graph::prim_mst(n, [&](std::uint32_t a, std::uint32_t b) {
    return vertex_distance(problem, a, b);
  });
  std::vector<std::pair<std::uint32_t, std::uint32_t>> doubled;
  doubled.reserve(mst.size() * 2);
  for (const auto& e : mst) {
    doubled.emplace_back(e.u, e.v);
    doubled.emplace_back(e.u, e.v);
  }
  const auto walk = graph::eulerian_circuit(n, doubled, 0);
  return cycle_to_tour(shortcut(walk, n));
}

Tour christofides_tour(const TourProblem& problem,
                       const matching::MatchingOptions& matching) {
  const std::size_t n = problem.size() + 1;
  if (problem.size() == 0) return {};
  if (problem.size() == 1) return {0};
  problem.ensure_distance_cache();

  auto mst = graph::prim_mst(n, [&](std::uint32_t a, std::uint32_t b) {
    return vertex_distance(problem, a, b);
  });

  std::vector<std::size_t> degree(n, 0);
  for (const auto& e : mst) {
    ++degree[e.u];
    ++degree[e.v];
  }
  std::vector<std::uint32_t> odd;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (degree[v] % 2 == 1) odd.push_back(v);
  }
  // Handshake lemma: |odd| is even. Match on the odd vertices'
  // coordinates so the geometric engines (sparse blossom by default)
  // apply; the distance cache serves exactly geom::distance bits, so
  // the quantized objective matches the cached metric.
  std::vector<geom::Point> odd_pts;
  odd_pts.reserve(odd.size());
  for (const std::uint32_t v : odd) {
    odd_pts.push_back(v == 0 ? problem.depot : problem.sites[v - 1]);
  }
  const auto match = matching::min_weight_euclidean_matching(odd_pts, matching);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> multigraph;
  multigraph.reserve(mst.size() + match.size());
  for (const auto& e : mst) multigraph.emplace_back(e.u, e.v);
  for (const auto& [a, b] : match) multigraph.emplace_back(odd[a], odd[b]);

  const auto walk = graph::eulerian_circuit(n, multigraph, 0);
  return cycle_to_tour(shortcut(walk, n));
}

Tour build_tour(const TourProblem& problem, TourBuilder builder,
                const matching::MatchingOptions& matching) {
  switch (builder) {
    case TourBuilder::kNearestNeighbor:
      return nearest_neighbor_tour(problem);
    case TourBuilder::kGreedyEdge:
      return greedy_edge_tour(problem);
    case TourBuilder::kDoubleTree:
      return double_tree_tour(problem);
    case TourBuilder::kChristofides:
      return christofides_tour(problem, matching);
  }
  MCHARGE_ASSERT(false, "unknown tour builder");
  return {};
}

}  // namespace mcharge::tsp
