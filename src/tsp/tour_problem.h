// The node-weighted, depot-rooted closed-tour problem underlying both the
// K-optimal closed tour substrate (Liang et al. [14]) and the K-minMax
// baseline.
//
// A TourProblem has m "sites" (sojourn locations), each with a service time
// (the charging duration tau(v)), plus a depot. A tour is an ordering of a
// subset of site indices; its delay is depot->first travel, inter-site
// travel, service at every site, and last->depot travel, all divided by the
// vehicle speed where applicable (Eq. (5) of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.h"

namespace mcharge::tsp {

using SiteId = std::uint32_t;
using Tour = std::vector<SiteId>;  // visiting order; depot implicit at ends

struct TourProblem {
  std::vector<geom::Point> sites;   ///< sojourn locations (depot excluded)
  std::vector<double> service;      ///< service (charging) seconds per site
  geom::Point depot{0.0, 0.0};
  double speed = 1.0;               ///< vehicle speed, m/s

  std::size_t size() const { return sites.size(); }

  /// Euclidean distance between two sites, read from the distance cache
  /// when one is built (bitwise-identical either way).
  double distance(SiteId a, SiteId b) const {
    if (!site_dist_.empty()) return site_dist_[a * sites.size() + b];
    return geom::distance(sites[a], sites[b]);
  }
  /// Euclidean distance between the depot and a site.
  double distance_depot(SiteId a) const {
    if (!depot_dist_.empty()) return depot_dist_[a];
    return geom::distance(depot, sites[a]);
  }

  /// Travel time between two sites.
  double travel(SiteId a, SiteId b) const { return distance(a, b) / speed; }
  /// Travel time between the depot and a site.
  double travel_depot(SiteId a) const { return distance_depot(a) / speed; }

  /// Builds the O(m^2) symmetric site-distance matrix and the depot
  /// distance vector if absent (or stale in size after sites changed).
  /// The tour algorithms (construct / split / exact entry points) call
  /// this themselves; direct users of two_opt / or_opt opt in explicitly.
  /// Mutating `sites` or `depot` in place invalidates the cache — call
  /// drop_distance_cache() first. Not safe to call concurrently on a
  /// shared instance; build before handing the problem to other threads.
  void ensure_distance_cache() const;
  /// Discards the cache; travel queries fall back to on-the-fly geometry.
  void drop_distance_cache() const;
  bool has_distance_cache() const {
    return site_dist_.size() == sites.size() * sites.size() &&
           depot_dist_.size() == sites.size() && !sites.empty();
  }

  /// Validates invariants (matching vector sizes, positive speed,
  /// non-negative service). Aborts on violation.
  void check() const;

 private:
  mutable std::vector<double> site_dist_;   ///< m*m, row-major, symmetric
  mutable std::vector<double> depot_dist_;  ///< m
};

/// Total delay of a closed tour: travel (incl. both depot legs) + service.
/// An empty tour has zero delay.
double tour_delay(const TourProblem& problem, const Tour& tour);

/// Travel-only component of the closed-tour delay.
double tour_travel_time(const TourProblem& problem, const Tour& tour);

/// Service-only component.
double tour_service_time(const TourProblem& problem, const Tour& tour);

/// True iff `tour` is a permutation of {0..m-1}.
bool is_complete_tour(const TourProblem& problem, const Tour& tour);

}  // namespace mcharge::tsp
