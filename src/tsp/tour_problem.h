// The node-weighted, depot-rooted closed-tour problem underlying both the
// K-optimal closed tour substrate (Liang et al. [14]) and the K-minMax
// baseline.
//
// A TourProblem has m "sites" (sojourn locations), each with a service time
// (the charging duration tau(v)), plus a depot. A tour is an ordering of a
// subset of site indices; its delay is depot->first travel, inter-site
// travel, service at every site, and last->depot travel, all divided by the
// vehicle speed where applicable (Eq. (5) of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.h"

namespace mcharge::tsp {

using SiteId = std::uint32_t;
using Tour = std::vector<SiteId>;  // visiting order; depot implicit at ends

struct TourProblem {
  std::vector<geom::Point> sites;   ///< sojourn locations (depot excluded)
  std::vector<double> service;      ///< service (charging) seconds per site
  geom::Point depot{0.0, 0.0};
  double speed = 1.0;               ///< vehicle speed, m/s

  std::size_t size() const { return sites.size(); }

  /// Euclidean distance between two sites, read from the distance cache
  /// when one is built (bitwise-identical either way).
  double distance(SiteId a, SiteId b) const {
    if (!site_dist_.empty()) return site_dist_[a * sites.size() + b];
    return geom::distance(sites[a], sites[b]);
  }
  /// Euclidean distance between the depot and a site.
  double distance_depot(SiteId a) const {
    if (!depot_dist_.empty()) return depot_dist_[a];
    return geom::distance(depot, sites[a]);
  }

  /// Travel time between two sites.
  double travel(SiteId a, SiteId b) const { return distance(a, b) / speed; }
  /// Travel time between the depot and a site.
  double travel_depot(SiteId a) const { return distance_depot(a) / speed; }

  /// Builds the O(m^2) symmetric site-distance matrix, the depot distance
  /// vector and an SoA (x[], y[]) mirror of `sites` if absent (or stale in
  /// size after sites changed). The matrix is filled row-wise with the
  /// simd::distance_row kernel; every entry is bitwise identical to
  /// geom::distance. For m <= 1 the build is a cheap no-op (no
  /// allocation): there are no site pairs to cache and distance queries
  /// fall through to on-the-fly geometry.
  /// The tour algorithms (construct / split / exact entry points) call
  /// this themselves; direct users of two_opt / or_opt opt in explicitly.
  /// Mutating `sites` or `depot` IN PLACE (same size) is invisible to the
  /// staleness check — call drop_distance_cache() first. (Audited call
  /// sites — appro, kminmax, greedy_cover — only populate `sites` before
  /// the first cache build.) Not safe to call concurrently on a shared
  /// instance; build before handing the problem to other threads.
  void ensure_distance_cache() const;
  /// Discards the cache; travel queries fall back to on-the-fly geometry.
  void drop_distance_cache() const;
  /// True once ensure_distance_cache() ran for the current site count —
  /// including for m == 0 / m == 1, where the build allocates nothing.
  bool has_distance_cache() const {
    return cache_built_ && cached_m_ == sites.size();
  }

  /// Raw cache rows for kernel scans; nullptr unless a cache with
  /// allocated tables is present (i.e. has_distance_cache() and m >= 2).
  const double* distance_row_ptr(SiteId a) const {
    return site_dist_.empty() ? nullptr : site_dist_.data() + a * sites.size();
  }
  const double* depot_distance_ptr() const {
    return depot_dist_.empty() ? nullptr : depot_dist_.data();
  }
  /// SoA coordinate mirror (x[], y[]); nullptr under the same conditions.
  const double* soa_x() const { return xs_.empty() ? nullptr : xs_.data(); }
  const double* soa_y() const { return ys_.empty() ? nullptr : ys_.data(); }

  /// Validates invariants (matching vector sizes, positive speed,
  /// non-negative service). Aborts on violation.
  void check() const;

 private:
  mutable std::vector<double> site_dist_;   ///< m*m, row-major, symmetric
  mutable std::vector<double> depot_dist_;  ///< m
  mutable std::vector<double> xs_, ys_;     ///< SoA mirror of `sites`
  mutable bool cache_built_ = false;
  mutable std::size_t cached_m_ = 0;        ///< site count at build time
};

/// Total delay of a closed tour: travel (incl. both depot legs) + service.
/// An empty tour has zero delay.
double tour_delay(const TourProblem& problem, const Tour& tour);

/// Travel-only component of the closed-tour delay.
double tour_travel_time(const TourProblem& problem, const Tour& tour);

/// Service-only component.
double tour_service_time(const TourProblem& problem, const Tour& tour);

/// True iff `tour` is a permutation of {0..m-1}.
bool is_complete_tour(const TourProblem& problem, const Tour& tour);

}  // namespace mcharge::tsp
