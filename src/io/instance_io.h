// CSV persistence for WRSN instances and charging rounds.
//
// Formats are line-oriented, '#'-comments allowed, designed to be easy to
// produce from spreadsheets or scripts:
//
// Instance file:
//   # mcharge-instance v1
//   config,<field_w>,<field_h>,<bs_x>,<bs_y>,<depot_x>,<depot_y>,
//          <capacity_j>,<gamma>,<eta_w>,<speed>,<K>,<threshold>
//   sensor,<x>,<y>,<rate_bps>,<consumption_w>
//   ... one sensor line per node ...
// v2 sensor rows carry a leading id that must equal the 0-based row index
// (sensor,<id>,<x>,<y>,<rate_bps>,<consumption_w>); duplicate or
// out-of-order ids are rejected. The writer emits v1.
//
// Both readers reject malformed input with a structured error instead of
// crashing: short/long rows, non-numeric or NaN/Inf fields, non-positive
// physical constants, duplicate config lines.
//
// Round file (one charging round, the fleet_planner input):
//   # mcharge-round v1
//   <x>,<y>,<deficit_joules>[,<residual_lifetime_s>]
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/charging_problem.h"
#include "model/network.h"

namespace mcharge::io {

/// Writes the instance (config + per-sensor rows). Returns false on I/O
/// failure.
bool write_instance_csv(const std::string& path,
                        const model::WrsnInstance& instance);

/// Reads an instance written by write_instance_csv. Returns nullopt on
/// parse or I/O failure (a short reason is appended to `error` if given).
std::optional<model::WrsnInstance> read_instance_csv(const std::string& path,
                                                     std::string* error = nullptr);

/// One charging round in file form.
struct RoundData {
  std::vector<geom::Point> positions;
  std::vector<double> deficit_joules;
  std::vector<double> residual_lifetime_s;  ///< empty if absent from file

  /// Builds the scheduler-facing problem (deficits converted to seconds at
  /// `charging_rate_w`).
  model::ChargingProblem to_problem(geom::Point depot, double gamma,
                                    double speed, std::size_t num_chargers,
                                    double charging_rate_w) const;
};

bool write_round_csv(const std::string& path, const RoundData& round);
std::optional<RoundData> read_round_csv(const std::string& path,
                                        std::string* error = nullptr);

}  // namespace mcharge::io
