// Schedule export: CSV of executed sojourns and an ASCII timeline (Gantt)
// rendering for terminal inspection.
#pragma once

#include <string>

#include "model/charging_problem.h"
#include "schedule/plan.h"

namespace mcharge::io {

/// Writes one row per sojourn:
///   mcv,stop,location,x,y,arrival,start,finish,wait,charged_count
/// plus a trailing `return` row per MCV.
bool write_schedule_csv(const std::string& path,
                        const model::ChargingProblem& problem,
                        const sched::ChargingSchedule& schedule);

/// Renders an ASCII timeline: one lane per MCV, time on the horizontal
/// axis scaled to `width` columns. '=' marks charging, '-' travel/idle,
/// 'w' waiting on the no-overlap constraint.
std::string render_timeline(const model::ChargingProblem& problem,
                            const sched::ChargingSchedule& schedule,
                            std::size_t width = 100);

}  // namespace mcharge::io
