#include "io/instance_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/assert.h"

namespace mcharge::io {

namespace {

void fail(std::string* error, const std::string& why) {
  if (error) *error = why;
}

std::vector<std::string> split(const std::string& line, char sep = ',') {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, sep)) cells.push_back(cell);
  return cells;
}

bool parse_doubles(const std::vector<std::string>& cells, std::size_t from,
                   std::vector<double>* out) {
  for (std::size_t i = from; i < cells.size(); ++i) {
    char* end = nullptr;
    const double v = std::strtod(cells[i].c_str(), &end);
    if (end == cells[i].c_str()) return false;
    // The whole cell must be one number (strtod would silently accept
    // "1.5abc"); trailing spaces and the \r of CRLF files are fine.
    while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
    if (*end != '\0') return false;
    out->push_back(v);
  }
  return true;
}

/// True iff `x` holds a non-negative integer exactly.
bool is_index(double x) {
  return std::isfinite(x) && x >= 0.0 && x == std::floor(x);
}

}  // namespace

bool write_instance_csv(const std::string& path,
                        const model::WrsnInstance& instance) {
  std::ofstream out(path);
  if (!out) return false;
  out << std::setprecision(17);  // lossless double round-trip
  const model::NetworkConfig& c = instance.config;
  out << "# mcharge-instance v1\n";
  out << "config," << c.field_width << ',' << c.field_height << ','
      << c.base_station.x << ',' << c.base_station.y << ',' << c.depot.x
      << ',' << c.depot.y << ',' << c.battery_capacity_j << ','
      << c.charging_radius << ',' << c.charging_rate_w << ',' << c.mcv_speed
      << ',' << c.num_chargers << ',' << c.request_threshold << '\n';
  for (std::size_t v = 0; v < instance.num_sensors(); ++v) {
    out << "sensor," << instance.positions[v].x << ','
        << instance.positions[v].y << ',' << instance.rate_bps[v] << ','
        << instance.consumption_w[v] << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<model::WrsnInstance> read_instance_csv(const std::string& path,
                                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  model::WrsnInstance instance;
  bool saw_config = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto cells = split(line);
    if (cells.empty()) continue;
    std::vector<double> values;
    if (!parse_doubles(cells, 1, &values)) {
      fail(error, "bad number on line " + std::to_string(lineno));
      return std::nullopt;
    }
    if (cells[0] == "config") {
      if (saw_config) {
        fail(error, "duplicate config line on line " + std::to_string(lineno));
        return std::nullopt;
      }
      if (values.size() != 12) {
        fail(error, "config line needs 12 values");
        return std::nullopt;
      }
      for (double v : values) {
        if (!std::isfinite(v)) {
          fail(error, "config contains a non-finite value on line " +
                          std::to_string(lineno));
          return std::nullopt;
        }
      }
      if (values[6] <= 0.0 || values[7] <= 0.0 || values[8] <= 0.0 ||
          values[9] <= 0.0) {
        fail(error,
             "capacity, charging radius, charging rate, and speed must all "
             "be positive");
        return std::nullopt;
      }
      if (!is_index(values[10]) || values[10] < 1.0) {
        fail(error, "num_chargers must be a positive integer");
        return std::nullopt;
      }
      if (values[11] <= 0.0 || values[11] >= 1.0) {
        fail(error, "request threshold must be in (0, 1)");
        return std::nullopt;
      }
      model::NetworkConfig& c = instance.config;
      c.field_width = values[0];
      c.field_height = values[1];
      c.base_station = {values[2], values[3]};
      c.depot = {values[4], values[5]};
      c.battery_capacity_j = values[6];
      c.charging_radius = values[7];
      c.charging_rate_w = values[8];
      c.mcv_speed = values[9];
      c.num_chargers = static_cast<std::size_t>(values[10]);
      c.request_threshold = values[11];
      saw_config = true;
    } else if (cells[0] == "sensor") {
      // v1: x,y,rate,consumption. v2: id,x,y,rate,consumption — the id
      // must equal the 0-based row index, which rejects duplicate and
      // out-of-order sensor ids outright.
      if (values.size() != 4 && values.size() != 5) {
        fail(error, "sensor line needs 4 values (v1) or id + 4 values (v2)");
        return std::nullopt;
      }
      std::size_t at = 0;
      if (values.size() == 5) {
        if (!is_index(values[0]) ||
            static_cast<std::size_t>(values[0]) != instance.positions.size()) {
          fail(error, "sensor id on line " + std::to_string(lineno) +
                          " must equal its 0-based row index (duplicate, "
                          "out-of-order, or non-integer id)");
          return std::nullopt;
        }
        at = 1;
      }
      if (!std::isfinite(values[at]) || !std::isfinite(values[at + 1])) {
        fail(error, "sensor position on line " + std::to_string(lineno) +
                        " is not finite");
        return std::nullopt;
      }
      if (!std::isfinite(values[at + 2]) || values[at + 2] < 0.0 ||
          !std::isfinite(values[at + 3]) || values[at + 3] < 0.0) {
        fail(error, "sensor rate/consumption on line " +
                        std::to_string(lineno) +
                        " must be finite and non-negative");
        return std::nullopt;
      }
      instance.positions.push_back({values[at], values[at + 1]});
      instance.rate_bps.push_back(values[at + 2]);
      instance.consumption_w.push_back(values[at + 3]);
    } else {
      fail(error, "unknown record '" + cells[0] + "' on line " +
                      std::to_string(lineno));
      return std::nullopt;
    }
  }
  if (!saw_config) {
    fail(error, "missing config line");
    return std::nullopt;
  }
  return instance;
}

model::ChargingProblem RoundData::to_problem(geom::Point depot, double gamma,
                                             double speed,
                                             std::size_t num_chargers,
                                             double charging_rate_w) const {
  MCHARGE_ASSERT(deficit_joules.size() == positions.size(),
                 "round data size mismatch");
  std::vector<double> seconds;
  seconds.reserve(deficit_joules.size());
  for (double j : deficit_joules) seconds.push_back(j / charging_rate_w);
  model::ChargingProblem problem(positions, std::move(seconds), depot, gamma,
                                 speed, num_chargers);
  if (!residual_lifetime_s.empty()) {
    MCHARGE_ASSERT(residual_lifetime_s.size() == positions.size(),
                   "lifetimes must match positions");
    problem.set_residual_lifetimes(residual_lifetime_s);
  }
  problem.set_charging_rate(charging_rate_w);
  return problem;
}

bool write_round_csv(const std::string& path, const RoundData& round) {
  std::ofstream out(path);
  if (!out) return false;
  out << std::setprecision(17);  // lossless double round-trip
  out << "# mcharge-round v1\n";
  const bool lifetimes = !round.residual_lifetime_s.empty();
  for (std::size_t i = 0; i < round.positions.size(); ++i) {
    out << round.positions[i].x << ',' << round.positions[i].y << ','
        << round.deficit_joules[i];
    if (lifetimes) out << ',' << round.residual_lifetime_s[i];
    out << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<RoundData> read_round_csv(const std::string& path,
                                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  RoundData round;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto cells = split(line);
    std::vector<double> values;
    if (!parse_doubles(cells, 0, &values) || values.size() < 3 ||
        values.size() > 4) {
      fail(error, "line " + std::to_string(lineno) +
                      " must be x,y,deficit_j[,lifetime_s]");
      return std::nullopt;
    }
    if (!std::isfinite(values[0]) || !std::isfinite(values[1])) {
      fail(error,
           "position on line " + std::to_string(lineno) + " is not finite");
      return std::nullopt;
    }
    if (!std::isfinite(values[2]) || values[2] < 0.0) {
      fail(error, "deficit on line " + std::to_string(lineno) +
                      " must be finite and non-negative");
      return std::nullopt;
    }
    if (values.size() == 4 &&
        (std::isnan(values[3]) || values[3] < 0.0)) {
      // +inf is a legal lifetime (a sensor that never drains); NaN and
      // negative values are not.
      fail(error, "lifetime on line " + std::to_string(lineno) +
                      " must be non-negative (inf allowed)");
      return std::nullopt;
    }
    round.positions.push_back({values[0], values[1]});
    round.deficit_joules.push_back(values[2]);
    if (values.size() == 4) round.residual_lifetime_s.push_back(values[3]);
  }
  if (!round.residual_lifetime_s.empty() &&
      round.residual_lifetime_s.size() != round.positions.size()) {
    fail(error, "lifetime column must be present on all lines or none");
    return std::nullopt;
  }
  if (round.positions.empty()) {
    fail(error, "no sensors in file");
    return std::nullopt;
  }
  return round;
}

}  // namespace mcharge::io
