#include "io/schedule_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/assert.h"

namespace mcharge::io {

bool write_schedule_csv(const std::string& path,
                        const model::ChargingProblem& problem,
                        const sched::ChargingSchedule& schedule) {
  std::ofstream out(path);
  if (!out) return false;
  out << "mcv,stop,location,x,y,arrival,start,finish,wait,charged_count\n";
  for (std::size_t k = 0; k < schedule.mcvs.size(); ++k) {
    const auto& mcv = schedule.mcvs[k];
    for (std::size_t i = 0; i < mcv.sojourns.size(); ++i) {
      const auto& s = mcv.sojourns[i];
      out << k << ',' << i << ',' << s.location << ','
          << problem.position(s.location).x << ','
          << problem.position(s.location).y << ',' << s.arrival << ','
          << s.start << ',' << s.finish << ',' << s.wait() << ','
          << s.charged.size() << '\n';
    }
    out << k << ",return,,,," << mcv.return_time << ",,,,\n";
  }
  return static_cast<bool>(out);
}

std::string render_timeline(const model::ChargingProblem& problem,
                            const sched::ChargingSchedule& schedule,
                            std::size_t width) {
  (void)problem;
  MCHARGE_ASSERT(width >= 10, "timeline needs at least 10 columns");
  double span = 0.0;
  for (const auto& mcv : schedule.mcvs) {
    span = std::max(span, mcv.return_time);
  }
  std::ostringstream out;
  if (span <= 0.0) {
    out << "(empty schedule)\n";
    return out.str();
  }
  const double per_col = span / static_cast<double>(width);
  out << "timeline: " << span << " s total, one column = " << per_col
      << " s  ('=' charging, 'w' waiting, '-' travel/idle)\n";
  for (std::size_t k = 0; k < schedule.mcvs.size(); ++k) {
    std::string lane(width, ' ');
    const auto& mcv = schedule.mcvs[k];
    auto paint = [&](double from, double to, char c) {
      if (to <= from) return;
      auto lo = static_cast<std::size_t>(from / per_col);
      auto hi = static_cast<std::size_t>(to / per_col);
      lo = std::min(lo, width - 1);
      hi = std::min(hi, width - 1);
      for (std::size_t col = lo; col <= hi; ++col) {
        // Never overwrite a stronger mark ('=' > 'w' > '-').
        if (c == '=' || lane[col] == ' ' || (c == 'w' && lane[col] == '-')) {
          lane[col] = c;
        }
      }
    };
    paint(0.0, mcv.return_time, '-');
    for (const auto& s : mcv.sojourns) {
      paint(s.arrival, s.start, 'w');
      paint(s.start, s.finish, '=');
    }
    out << "mcv " << k << " |" << lane << "| " << mcv.return_time << " s\n";
  }
  return out.str();
}

}  // namespace mcharge::io
