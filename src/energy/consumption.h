// Per-sensor steady-state power draw from the radio model + routing tree.
#pragma once

#include <vector>

#include "energy/radio.h"
#include "energy/routing.h"
#include "geometry/point.h"

namespace mcharge::energy {

/// Computes each sensor's power draw in watts:
///   P(v) = e_sense * b_v                      (sensing own data)
///        + e_elec  * relay_v                  (receiving relayed traffic)
///        + tx_per_bit(link_v) * (b_v + relay_v)  (forwarding everything up)
/// where b_v is the sensor's own data rate and relay_v the traffic routed
/// through it after in-network aggregation (raw subtree rate scaled by
/// RadioParams::aggregation_ratio).
std::vector<double> consumption_watts(
    const std::vector<geom::Point>& positions, geom::Point base_station,
    const RadioParams& radio, const std::vector<double>& rate_bps,
    RoutingPolicy policy = RoutingPolicy::kMinHop);

/// Variant reusing a prebuilt routing tree.
std::vector<double> consumption_watts(const RoutingTree& tree,
                                      const RadioParams& radio,
                                      const std::vector<double>& rate_bps);

}  // namespace mcharge::energy
