// First-order radio energy model (the standard WSN model used by Li &
// Mohapatra's energy-hole analysis, which the paper cites as its sensor
// consumption model).
//
// Transmitting one bit over distance d costs  e_elec + e_amp * d^alpha;
// receiving one bit costs e_elec; sensing one bit costs e_sense. Defaults
// are the values used throughout the WSN literature (50 nJ/bit electronics,
// 100 pJ/bit/m^2 amplifier, free-space exponent 2).
#pragma once

namespace mcharge::energy {

struct RadioParams {
  double e_elec = 50e-9;    ///< J/bit, TX/RX electronics
  double e_amp = 100e-12;   ///< J/bit/m^alpha, TX amplifier
  double alpha = 2.0;       ///< path-loss exponent
  double e_sense = 5e-9;    ///< J/bit, sensing/processing
  double comm_range = 15.0; ///< m, radio transmission range
  /// In-network aggregation: relayed traffic is compressed to this fraction
  /// of its raw rate before forwarding. 1.0 reproduces the raw energy-hole
  /// model of Li & Mohapatra (inner-ring sensors die within hours at the
  /// paper's data rates); the default 0.3 keeps the energy-hole shape
  /// (near-sink sensors still deplete fastest) while producing request
  /// cadences of days-to-weeks, which reproduces the paper's load regime
  /// (one-to-one charger fleets saturate as n grows past ~800 while the
  /// multi-node fleet keeps up — the driver of Figs. 3-5).
  double aggregation_ratio = 0.3;
  /// Radio link capacity in bits/second (802.15.4-class hardware is
  /// 250 kbps; duty-cycled MACs sustain less). Forwarded and received
  /// traffic are clipped to this rate, which bounds the power draw of the
  /// hottest inner-ring relays — a real radio cannot burn more energy than
  /// its bandwidth allows.
  double link_capacity_bps = 100e3;
  /// Constant idle/listening draw in watts. Duty-cycled WSN radios spend
  /// most of their time listening; ~1 mW is typical for 802.15.4-class
  /// motes with moderate duty cycles.
  double idle_watts = 1.0e-3;

  /// Energy to transmit one bit over distance d (meters).
  double tx_per_bit(double d) const;
  /// Energy to receive one bit.
  double rx_per_bit() const { return e_elec; }
  /// Energy to sense/process one bit.
  double sense_per_bit() const { return e_sense; }
};

}  // namespace mcharge::energy
