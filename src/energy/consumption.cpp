#include "energy/consumption.h"

#include <algorithm>

#include "util/assert.h"

namespace mcharge::energy {

std::vector<double> consumption_watts(const RoutingTree& tree,
                                      const RadioParams& radio,
                                      const std::vector<double>& rate_bps) {
  const std::size_t n = rate_bps.size();
  MCHARGE_ASSERT(tree.parent.size() == n, "tree/rate size mismatch");
  std::vector<double> watts(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const double own = rate_bps[v];
    const double relayed = std::min(
        tree.relay_rate_bps[v] * radio.aggregation_ratio,
        radio.link_capacity_bps);
    const double forwarded = std::min(own + relayed, radio.link_capacity_bps);
    watts[v] = radio.idle_watts + radio.sense_per_bit() * own +
               radio.rx_per_bit() * relayed +
               radio.tx_per_bit(tree.link_length[v]) * forwarded;
  }
  return watts;
}

std::vector<double> consumption_watts(
    const std::vector<geom::Point>& positions, geom::Point base_station,
    const RadioParams& radio, const std::vector<double>& rate_bps,
    RoutingPolicy policy) {
  const RoutingTree tree =
      build_routing_tree(positions, base_station, radio, rate_bps, policy);
  return consumption_watts(tree, radio, rate_bps);
}

}  // namespace mcharge::energy
