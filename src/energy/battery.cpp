#include "energy/battery.h"

#include <algorithm>

namespace mcharge::energy {

Battery::Battery(double capacity_joules, double initial_level)
    : capacity_(capacity_joules) {
  MCHARGE_ASSERT(capacity_joules >= 0.0, "battery capacity must be >= 0");
  set_level(initial_level);
}

double Battery::drain(double joules) {
  MCHARGE_ASSERT(joules >= 0.0, "drain amount must be >= 0");
  const double removed = std::min(joules, level_);
  level_ -= removed;
  return removed;
}

double Battery::charge(double joules) {
  MCHARGE_ASSERT(joules >= 0.0, "charge amount must be >= 0");
  const double stored = std::min(joules, deficit());
  level_ += stored;
  return stored;
}

void Battery::set_level(double joules) {
  level_ = std::clamp(joules, 0.0, capacity_);
}

}  // namespace mcharge::energy
