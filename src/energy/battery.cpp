#include "energy/battery.h"

#include <algorithm>
#include <cmath>

namespace mcharge::energy {

Battery::Battery(double capacity_joules, double initial_level)
    : capacity_(capacity_joules) {
  MCHARGE_ASSERT(std::isfinite(capacity_joules) && capacity_joules >= 0.0,
                 "battery capacity must be finite and >= 0");
  set_level(initial_level);
}

double Battery::drain(double joules) {
  MCHARGE_ASSERT(std::isfinite(joules) && joules >= 0.0,
                 "drain amount must be finite and >= 0");
  const double removed = std::min(joules, level_);
  level_ -= removed;
  return removed;
}

double Battery::charge(double joules) {
  MCHARGE_ASSERT(std::isfinite(joules) && joules >= 0.0,
                 "charge amount must be finite and >= 0");
  const double stored = std::min(joules, deficit());
  level_ += stored;
  return stored;
}

void Battery::set_level(double joules) {
  // std::clamp passes NaN straight through (both comparisons are false),
  // so a NaN level would silently poison every later drain/charge.
  MCHARGE_ASSERT(std::isfinite(joules), "battery level must be finite");
  level_ = std::clamp(joules, 0.0, capacity_);
}

}  // namespace mcharge::energy
