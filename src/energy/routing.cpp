#include "energy/routing.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <queue>

#include "geometry/grid_index.h"
#include "util/assert.h"

namespace mcharge::energy {

namespace {

constexpr double kInfD = std::numeric_limits<double>::infinity();
constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();

/// Multi-source BFS from the base station (fewest hops).
void route_min_hop(const std::vector<geom::Point>& positions,
                   geom::Point base_station, const RadioParams& radio,
                   const geom::GridIndex& index, RoutingTree* tree) {
  const std::size_t n = positions.size();
  std::deque<std::uint32_t> queue;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (geom::within(base_station, positions[v], radio.comm_range)) {
      tree->hops[v] = 1;
      tree->parent[v] = RoutingTree::kToBaseStation;
      tree->link_length[v] = geom::distance(base_station, positions[v]);
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    index.visit_disk(positions[v], radio.comm_range, [&](std::uint32_t u) {
      if (tree->hops[u] == kUnreached) {
        tree->hops[u] = tree->hops[v] + 1;
        tree->parent[u] = v;
        tree->link_length[u] = geom::distance(positions[u], positions[v]);
        queue.push_back(u);
      }
      return true;
    });
  }
}

/// Dijkstra from the base station on per-bit forwarding energy.
void route_min_energy(const std::vector<geom::Point>& positions,
                      geom::Point base_station, const RadioParams& radio,
                      const geom::GridIndex& index, RoutingTree* tree) {
  const std::size_t n = positions.size();
  std::vector<double> cost(n, kInfD);
  using Item = std::pair<double, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  for (std::uint32_t v = 0; v < n; ++v) {
    const double d = geom::distance(base_station, positions[v]);
    if (d <= radio.comm_range) {
      cost[v] = radio.tx_per_bit(d);
      tree->parent[v] = RoutingTree::kToBaseStation;
      tree->link_length[v] = d;
      tree->hops[v] = 1;
      heap.push({cost[v], v});
    }
  }
  while (!heap.empty()) {
    const auto [c, v] = heap.top();
    heap.pop();
    if (c > cost[v]) continue;  // stale entry
    index.visit_disk(positions[v], radio.comm_range, [&](std::uint32_t u) {
      if (u == v) return true;
      const double d = geom::distance(positions[u], positions[v]);
      // u transmits to v (tx), v receives (rx) before forwarding onward.
      const double via = cost[v] + radio.tx_per_bit(d) + radio.rx_per_bit();
      if (via < cost[u]) {
        cost[u] = via;
        tree->parent[u] = v;
        tree->link_length[u] = d;
        tree->hops[u] = tree->hops[v] + 1;
        heap.push({via, u});
      }
      return true;
    });
  }
}

}  // namespace

RoutingTree build_routing_tree(const std::vector<geom::Point>& positions,
                               geom::Point base_station,
                               const RadioParams& radio,
                               const std::vector<double>& rate_bps,
                               RoutingPolicy policy) {
  const std::size_t n = positions.size();
  MCHARGE_ASSERT(rate_bps.size() == n, "one data rate per sensor required");
  RoutingTree tree;
  tree.parent.assign(n, RoutingTree::kToBaseStation);
  tree.hops.assign(n, kUnreached);
  tree.link_length.assign(n, 0.0);
  tree.relay_rate_bps.assign(n, 0.0);
  if (n == 0) return tree;

  geom::GridIndex index(positions, radio.comm_range);
  if (policy == RoutingPolicy::kMinHop) {
    route_min_hop(positions, base_station, radio, index, &tree);
  } else {
    route_min_energy(positions, base_station, radio, index, &tree);
  }

  // Disconnected sensors fall back to a direct (long) uplink to the BS.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (tree.hops[v] == kUnreached) {
      tree.hops[v] = 1;
      tree.parent[v] = RoutingTree::kToBaseStation;
      tree.link_length[v] = geom::distance(base_station, positions[v]);
      ++tree.direct_fallbacks;
    }
  }

  // Accumulate relay load: process sensors in decreasing hop count so every
  // child is handled before its parent.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return tree.hops[a] > tree.hops[b];
  });
  for (std::uint32_t v : order) {
    const std::uint32_t p = tree.parent[v];
    if (p != RoutingTree::kToBaseStation) {
      tree.relay_rate_bps[p] += tree.relay_rate_bps[v] + rate_bps[v];
    }
  }
  return tree;
}

}  // namespace mcharge::energy
