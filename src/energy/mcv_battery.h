// Finite energy budget of a mobile charging vehicle.
//
// The paper assumes every MCV carries enough energy to finish its tour;
// this module makes charger exhaustion a first-class, deterministic
// failure mode instead. An McvBudgetSpec describes the draw model:
//  * locomotion draws move_cost_j_per_m joules per meter driven;
//  * wireless transfer draws delivered_j / transfer_efficiency joules from
//    the MCV battery per joule radiated (the transmitter runs for the
//    whole sojourn at the problem's charging rate, so delivered_j is
//    duration * charging_rate_w regardless of how many sensors absorb it);
//  * the MCV recharges to full capacity at the depot between rounds —
//    no battery state crosses a round boundary.
//
// capacity_j == 0 disables the budget entirely: every consumer must then
// take exactly the unbudgeted code path (the repo-wide byte-identity
// contract). All arithmetic here is plain double add/subtract applied in
// tour order, so budgeted results are bit-identical across jobs, SIMD
// backends, and recovery policies.
#pragma once

#include "util/assert.h"

namespace mcharge::energy {

/// The draw model + capacity of one MCV battery. Plain aggregate so it can
/// ride inside sched::ExecutionFaults and sim::SimConfig by value.
struct McvBudgetSpec {
  /// Usable battery capacity in joules. 0 (the default) = unlimited:
  /// the budget layer is disabled and no energy accounting runs at all.
  double capacity_j = 0.0;
  /// Locomotion draw per meter driven. The default matches the fleet-
  /// sizing convention of sched::ChargingSchedule::energy_use.
  double move_cost_j_per_m = 50.0;
  /// Delivered joules per joule drawn from the MCV battery, in (0, 1].
  /// 1 = lossless transfer (the paper's implicit assumption).
  double transfer_efficiency = 1.0;

  bool enabled() const { return capacity_j > 0.0; }
  /// Battery draw of driving `meters` meters.
  double travel_cost_j(double meters) const {
    return move_cost_j_per_m * meters;
  }
  /// Battery draw of radiating `delivered_j` joules at the antenna.
  double transfer_cost_j(double delivered_j) const {
    return delivered_j / transfer_efficiency;
  }
};

/// One MCV's battery over one charging round. Starts full (depot
/// recharge); draw() is all-or-nothing so an exhausted vehicle aborts
/// cleanly instead of going energy-negative mid-action.
class McvBattery {
 public:
  explicit McvBattery(const McvBudgetSpec& spec)
      : spec_(spec), level_(spec.capacity_j) {
    MCHARGE_ASSERT(spec.capacity_j >= 0.0,
                   "MCV battery capacity must be >= 0");
    MCHARGE_ASSERT(spec.transfer_efficiency > 0.0 &&
                       spec.transfer_efficiency <= 1.0,
                   "transfer efficiency must be in (0, 1]");
  }

  const McvBudgetSpec& spec() const { return spec_; }
  double level() const { return level_; }
  double spent() const { return spec_.capacity_j - level_; }

  /// Resumes a partially executed round (core/replan.h graft): overrides
  /// the depot-fresh level with the energy left after the frozen prefix.
  void set_level(double joules) {
    MCHARGE_ASSERT(joules >= 0.0 && joules <= spec_.capacity_j,
                   "resume level must be within [0, capacity]");
    level_ = joules;
  }

  /// Draws `joules` if the battery can afford it; returns false and leaves
  /// the level untouched otherwise. With a disabled spec every draw
  /// succeeds and nothing is tracked.
  bool draw(double joules) {
    MCHARGE_ASSERT(joules >= 0.0, "MCV battery draw must be >= 0");
    if (!spec_.enabled()) return true;
    if (joules > level_) return false;
    level_ -= joules;
    return true;
  }

 private:
  McvBudgetSpec spec_;
  double level_ = 0.0;
};

}  // namespace mcharge::energy
