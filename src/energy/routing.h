// Data-routing tree from sensors to the base station.
//
// Sensors relay their readings hop by hop toward the sink over the
// communication graph (unit-disk graph with the radio's comm_range). The
// relay load of a sensor is the sum of the data rates of its subtree; this
// is what creates the energy-hole effect (sensors near the sink deplete
// faster) that the charging algorithms must cope with.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/radio.h"
#include "geometry/point.h"

namespace mcharge::energy {

/// How each sensor picks its parent toward the base station.
enum class RoutingPolicy {
  /// Fewest hops (multi-source BFS). Short paths but long, amplifier-heavy
  /// links. The default (and the classic energy-hole setting).
  kMinHop,
  /// Minimum total per-bit transmission energy to the BS (Dijkstra with
  /// edge cost tx_per_bit(d) + rx_per_bit()). Prefers many short links;
  /// spreads load onto more relays.
  kMinEnergy,
};

struct RoutingTree {
  /// Parent index per sensor; kToBaseStation means the sensor uplinks
  /// directly to the base station (either within comm range of it, or
  /// disconnected from the tree and falling back to a long direct link).
  static constexpr std::uint32_t kToBaseStation = 0xffffffffu;

  std::vector<std::uint32_t> parent;
  std::vector<std::uint32_t> hops;      ///< hop count to the base station
  std::vector<double> link_length;      ///< meters to parent (or BS)
  std::vector<double> relay_rate_bps;   ///< traffic relayed THROUGH the node
  std::size_t direct_fallbacks = 0;     ///< sensors with no multi-hop path
};

/// Builds a routing tree over `positions` toward `base_station` under the
/// chosen policy, then accumulates per-node relay load from `rate_bps`
/// (own data generation rate per sensor, bits/second).
RoutingTree build_routing_tree(const std::vector<geom::Point>& positions,
                               geom::Point base_station,
                               const RadioParams& radio,
                               const std::vector<double>& rate_bps,
                               RoutingPolicy policy = RoutingPolicy::kMinHop);

}  // namespace mcharge::energy
