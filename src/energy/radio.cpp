#include "energy/radio.h"

#include <cmath>

namespace mcharge::energy {

double RadioParams::tx_per_bit(double d) const {
  return e_elec + e_amp * std::pow(d, alpha);
}

}  // namespace mcharge::energy
