// Rechargeable battery with clamped charge/discharge semantics.
#pragma once

#include "util/assert.h"

namespace mcharge::energy {

/// A sensor battery. Energies are in joules. Level is always in
/// [0, capacity]; draining below zero saturates (the sensor is then dead
/// until recharged) and charging above capacity saturates (full).
class Battery {
 public:
  Battery() = default;
  Battery(double capacity_joules, double initial_level);

  double capacity() const { return capacity_; }
  double level() const { return level_; }
  double deficit() const { return capacity_ - level_; }
  /// Fraction of capacity remaining, in [0, 1]. A zero-capacity battery
  /// reads 0.0 — permanently empty, not an error. Callers that treat
  /// "empty" as a live, chargeable state must reject zero capacities up
  /// front (sim/validate.h does, with ConfigErrorCode::kBadCapacity).
  double fraction() const { return capacity_ > 0.0 ? level_ / capacity_ : 0.0; }
  bool empty() const { return level_ <= 0.0; }
  bool full() const { return level_ >= capacity_; }

  /// Removes `joules` (finite, >= 0; asserted); returns the amount
  /// actually removed (may be less if the battery hits empty).
  double drain(double joules);

  /// Adds `joules` (finite, >= 0; asserted); returns the amount actually
  /// stored.
  double charge(double joules);

  /// Sets the level directly (finite; clamped to [0, capacity]).
  void set_level(double joules);

 private:
  double capacity_ = 0.0;
  double level_ = 0.0;
};

}  // namespace mcharge::energy
