#include "geometry/point.h"

#include "util/assert.h"

namespace mcharge::geom {

void BoundingBox::expand(Point p) {
  if (empty) {
    lo = hi = p;
    empty = false;
    return;
  }
  lo.x = std::min(lo.x, p.x);
  lo.y = std::min(lo.y, p.y);
  hi.x = std::max(hi.x, p.x);
  hi.y = std::max(hi.y, p.y);
}

BoundingBox bounding_box(const std::vector<Point>& pts) {
  BoundingBox box;
  for (Point p : pts) box.expand(p);
  return box;
}

double closed_tour_length(const std::vector<Point>& pts) {
  if (pts.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    total += distance(pts[i], pts[i + 1]);
  }
  total += distance(pts.back(), pts.front());
  return total;
}

Point centroid(const std::vector<Point>& pts) {
  MCHARGE_ASSERT(!pts.empty(), "centroid of empty point set");
  Point c{0.0, 0.0};
  for (Point p : pts) c = c + p;
  return c * (1.0 / static_cast<double>(pts.size()));
}

}  // namespace mcharge::geom
