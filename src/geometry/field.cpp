#include "geometry/field.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace mcharge::geom {

std::vector<Point> uniform_field(std::size_t n, double width, double height,
                                 Rng& rng) {
  MCHARGE_ASSERT(width > 0.0 && height > 0.0, "field must have positive size");
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, width), rng.uniform(0.0, height)});
  }
  return pts;
}

namespace {

double clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

/// Box-Muller standard normal variate.
double standard_normal(Rng& rng) {
  double u1 = rng.uniform();
  while (u1 <= 0.0) u1 = rng.uniform();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

std::vector<Point> clustered_field(std::size_t n, double width, double height,
                                   std::size_t clusters, double sigma,
                                   Rng& rng) {
  MCHARGE_ASSERT(clusters > 0, "clustered_field requires >= 1 cluster");
  std::vector<Point> centers = uniform_field(clusters, width, height, rng);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& c = centers[rng.below(clusters)];
    pts.push_back({clamp(c.x + sigma * standard_normal(rng), 0.0, width),
                   clamp(c.y + sigma * standard_normal(rng), 0.0, height)});
  }
  return pts;
}

std::vector<Point> grid_field(std::size_t n, double width, double height,
                              double jitter_fraction, Rng& rng) {
  if (n == 0) return {};
  const auto side =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double px = width / static_cast<double>(side);
  const double py = height / static_cast<double>(side);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto gx = static_cast<double>(i % side);
    const auto gy = static_cast<double>(i / side);
    const double jx = rng.uniform(-jitter_fraction, jitter_fraction) * px;
    const double jy = rng.uniform(-jitter_fraction, jitter_fraction) * py;
    pts.push_back({clamp((gx + 0.5) * px + jx, 0.0, width),
                   clamp((gy + 0.5) * py + jy, 0.0, height)});
  }
  return pts;
}

}  // namespace mcharge::geom
