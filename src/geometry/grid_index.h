// Uniform-grid spatial index over a static point set.
//
// Supports disk queries in O(points in neighborhood) expected time; this is
// what makes building the charging graph G_c over 1,200 sensors cheap
// (radius gamma = 2.7 m in a 100 x 100 m field).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.h"

namespace mcharge::geom {

class GridIndex {
 public:
  /// Builds an index over `points` with the given grid cell size. Cell size
  /// should be on the order of the typical query radius. The point set is
  /// referenced by index; the caller keeps ownership of coordinates.
  GridIndex(std::vector<Point> points, double cell_size);

  /// All point indices within distance `radius` of `center` (inclusive).
  /// Materializing queries filter each candidate bucket with the
  /// simd::select_within kernel over an SoA coordinate mirror laid out in
  /// CSR order; results are identical to the scalar visit_disk filter.
  std::vector<std::uint32_t> query_disk(Point center, double radius) const;

  /// As query_disk, but excludes the point with index `self` from results.
  std::vector<std::uint32_t> query_disk_excluding(Point center, double radius,
                                                  std::uint32_t self) const;

  /// Visits point indices within `radius` of `center`; the callback may
  /// return false to stop early. Returns false iff stopped early.
  template <typename Visitor>
  bool visit_disk(Point center, double radius, Visitor&& visit) const;

  std::size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::int64_t cell_of(double coord) const;
  std::size_t bucket(std::int64_t cx, std::int64_t cy) const;
  /// Unsorted ids within `radius` of `center`, appended to `out` via the
  /// per-bucket simd filter.
  void collect_disk(Point center, double radius,
                    std::vector<std::uint32_t>& out) const;

  std::vector<Point> points_;
  double cell_size_;
  std::int64_t min_cx_ = 0, min_cy_ = 0;
  std::int64_t num_cx_ = 1, num_cy_ = 1;
  // CSR layout: ids of points in bucket b are cell_points_[cell_start_[b] ..
  // cell_start_[b+1]).
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_points_;
  // SoA coordinates permuted into cell_points_ order (sx_[i] is the x of
  // point cell_points_[i]); gives the disk kernel contiguous lanes.
  std::vector<double> sx_, sy_;
};

template <typename Visitor>
bool GridIndex::visit_disk(Point center, double radius,
                           Visitor&& visit) const {
  if (points_.empty()) return true;
  const double r2 = radius * radius;
  const std::int64_t cx_lo = cell_of(center.x - radius);
  const std::int64_t cx_hi = cell_of(center.x + radius);
  const std::int64_t cy_lo = cell_of(center.y - radius);
  const std::int64_t cy_hi = cell_of(center.y + radius);
  for (std::int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
    if (cx < min_cx_ || cx >= min_cx_ + num_cx_) continue;
    for (std::int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
      if (cy < min_cy_ || cy >= min_cy_ + num_cy_) continue;
      const std::size_t b = bucket(cx, cy);
      for (std::uint32_t i = cell_start_[b]; i < cell_start_[b + 1]; ++i) {
        const std::uint32_t id = cell_points_[i];
        if (distance_sq(points_[id], center) <= r2) {
          if (!visit(id)) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace mcharge::geom
