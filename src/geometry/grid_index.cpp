#include "geometry/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/simd.h"

namespace mcharge::geom {

GridIndex::GridIndex(std::vector<Point> points, double cell_size)
    : points_(std::move(points)), cell_size_(cell_size) {
  MCHARGE_ASSERT(cell_size > 0.0, "grid cell size must be positive");
  if (points_.empty()) {
    cell_start_ = {0, 0};
    return;
  }
  const BoundingBox box = bounding_box(points_);
  min_cx_ = cell_of(box.lo.x);
  min_cy_ = cell_of(box.lo.y);
  num_cx_ = cell_of(box.hi.x) - min_cx_ + 1;
  num_cy_ = cell_of(box.hi.y) - min_cy_ + 1;

  const std::size_t num_buckets =
      static_cast<std::size_t>(num_cx_) * static_cast<std::size_t>(num_cy_);
  // Counting sort of points into buckets (CSR build).
  cell_start_.assign(num_buckets + 1, 0);
  std::vector<std::size_t> point_bucket(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::size_t b = bucket(cell_of(points_[i].x), cell_of(points_[i].y));
    point_bucket[i] = b;
    ++cell_start_[b + 1];
  }
  for (std::size_t b = 0; b < num_buckets; ++b) {
    cell_start_[b + 1] += cell_start_[b];
  }
  cell_points_.resize(points_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cell_points_[cursor[point_bucket[i]]++] = static_cast<std::uint32_t>(i);
  }
  sx_.resize(points_.size());
  sy_.resize(points_.size());
  for (std::size_t i = 0; i < cell_points_.size(); ++i) {
    sx_[i] = points_[cell_points_[i]].x;
    sy_[i] = points_[cell_points_[i]].y;
  }
}

std::int64_t GridIndex::cell_of(double coord) const {
  return static_cast<std::int64_t>(std::floor(coord / cell_size_));
}

std::size_t GridIndex::bucket(std::int64_t cx, std::int64_t cy) const {
  return static_cast<std::size_t>(cx - min_cx_) * static_cast<std::size_t>(num_cy_) +
         static_cast<std::size_t>(cy - min_cy_);
}

void GridIndex::collect_disk(Point center, double radius,
                             std::vector<std::uint32_t>& out) const {
  if (points_.empty()) return;
  // Same cell walk as visit_disk, but each bucket goes through the disk
  // kernel over the CSR-ordered SoA coordinates. The kernel evaluates
  // exactly distance_sq(point, center) <= radius^2, so the surviving id
  // set matches the scalar visitor's.
  const double r2 = radius * radius;
  const std::int64_t cx_lo = cell_of(center.x - radius);
  const std::int64_t cx_hi = cell_of(center.x + radius);
  const std::int64_t cy_lo = cell_of(center.y - radius);
  const std::int64_t cy_hi = cell_of(center.y + radius);
  for (std::int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
    if (cx < min_cx_ || cx >= min_cx_ + num_cx_) continue;
    for (std::int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
      if (cy < min_cy_ || cy >= min_cy_ + num_cy_) continue;
      const std::size_t b = bucket(cx, cy);
      const std::size_t begin = cell_start_[b];
      const std::size_t count = cell_start_[b + 1] - begin;
      if (count == 0) continue;
      const std::size_t old = out.size();
      out.resize(old + count);
      const std::size_t kept = simd::select_within(
          sx_.data() + begin, sy_.data() + begin, count, center.x, center.y,
          r2, cell_points_.data() + begin, out.data() + old);
      out.resize(old + kept);
    }
  }
}

std::vector<std::uint32_t> GridIndex::query_disk(Point center,
                                                 double radius) const {
  std::vector<std::uint32_t> out;
  collect_disk(center, radius, out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> GridIndex::query_disk_excluding(
    Point center, double radius, std::uint32_t self) const {
  std::vector<std::uint32_t> out;
  collect_disk(center, radius, out);
  out.erase(std::remove(out.begin(), out.end(), self), out.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mcharge::geom
