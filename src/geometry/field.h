// Random point-field generation for WRSN instances.
#pragma once

#include <vector>

#include "geometry/point.h"
#include "util/rng.h"

namespace mcharge::geom {

/// Uniform random points in the axis-aligned rectangle [0,w] x [0,h].
std::vector<Point> uniform_field(std::size_t n, double width, double height,
                                 Rng& rng);

/// Clustered field: `clusters` Gaussian hotspots with the given standard
/// deviation, cluster centers uniform in the rectangle, points clipped to
/// the field. Models e.g. disaster-response deployments where sensors are
/// dropped around incident sites.
std::vector<Point> clustered_field(std::size_t n, double width, double height,
                                   std::size_t clusters, double sigma,
                                   Rng& rng);

/// Regular jittered grid: sensors on a sqrt(n) x sqrt(n) lattice perturbed
/// by uniform jitter (fraction of lattice pitch). Models planned
/// agricultural deployments.
std::vector<Point> grid_field(std::size_t n, double width, double height,
                              double jitter_fraction, Rng& rng);

}  // namespace mcharge::geom
