// 2-D points and basic Euclidean geometry for the WRSN plane.
#pragma once

#include <cmath>
#include <vector>

namespace mcharge::geom {

/// A point (or free vector) in the 2-D monitoring plane, in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(Point a, double k) {
    return {a.x * k, a.y * k};
  }
  friend constexpr Point operator*(double k, Point a) { return a * k; }
  friend constexpr bool operator==(Point a, Point b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Squared Euclidean distance (avoids the sqrt in comparisons).
constexpr double distance_sq(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double distance(Point a, Point b) {
  return std::sqrt(distance_sq(a, b));
}

/// True iff b lies within (or on) the disk of radius r centered at a.
inline bool within(Point a, Point b, double r) {
  return distance_sq(a, b) <= r * r;
}

/// Axis-aligned bounding box of a point set; empty() if no points.
struct BoundingBox {
  Point lo{0.0, 0.0};
  Point hi{0.0, 0.0};
  bool empty = true;

  void expand(Point p);
  bool contains(Point p) const {
    return !empty && p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  double width() const { return empty ? 0.0 : hi.x - lo.x; }
  double height() const { return empty ? 0.0 : hi.y - lo.y; }
};

BoundingBox bounding_box(const std::vector<Point>& pts);

/// Total length of the closed polygon visiting pts in order (last -> first
/// edge included). Zero for fewer than two points.
double closed_tour_length(const std::vector<Point>& pts);

/// Centroid of a non-empty point set.
Point centroid(const std::vector<Point>& pts);

}  // namespace mcharge::geom
