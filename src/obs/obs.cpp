#include "obs/obs.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <mutex>

namespace mcharge::obs {
namespace {

std::atomic<bool> g_enabled{false};

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kSpan:
      return "span";
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
  }
  return "?";
}

#ifndef MCHARGE_NO_OBS
/// Registry of every site ever created. Sites are heap-allocated and
/// intentionally leaked: worker threads may still be flushing a span
/// while static destructors run, so the accumulators must outlive main.
struct Registry {
  std::mutex mu;
  std::vector<Site*> sites;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}
#endif

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

bool set_enabled(bool on) {
  return g_enabled.exchange(on, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

#ifndef MCHARGE_NO_OBS

Site& site(const char* name, Kind kind) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  // Two call sites may share a metric name (e.g. the serial and sharded
  // variants of the same scan); they aggregate into one site.
  for (Site* s : reg.sites) {
    if (std::string_view(s->name) == name) return *s;
  }
  Site* s = new Site{name, kind, {}, {}, {}, {}};
  reg.sites.push_back(s);
  return *s;
}

TraceReport capture() {
  TraceReport report;
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  report.metrics.reserve(reg.sites.size());
  for (const Site* s : reg.sites) {
    MetricSnapshot m;
    m.name = s->name;
    m.kind = s->kind;
    m.count = s->count.load(std::memory_order_relaxed);
    m.total_s =
        static_cast<double>(s->total_ns.load(std::memory_order_relaxed)) *
        1e-9;
    m.value = s->value.load(std::memory_order_relaxed);
    m.max_value = s->max_value.load(std::memory_order_relaxed);
    report.metrics.push_back(std::move(m));
  }
  std::sort(report.metrics.begin(), report.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return report;
}

void reset() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (Site* s : reg.sites) {
    s->count.store(0, std::memory_order_relaxed);
    s->total_ns.store(0, std::memory_order_relaxed);
    s->value.store(0, std::memory_order_relaxed);
    s->max_value.store(0, std::memory_order_relaxed);
  }
}

#else  // MCHARGE_NO_OBS

TraceReport capture() { return {}; }
void reset() {}

#endif  // MCHARGE_NO_OBS

std::string TraceReport::to_json() const {
  std::string out = "{\n  \"schema\": \"mcharge.trace.v1\",\n  \"metrics\": [";
  char buf[256];
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const MetricSnapshot& m = metrics[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_json_escaped(out, m.name);
    out += "\", \"kind\": \"";
    out += kind_name(m.kind);
    out += "\"";
    std::snprintf(buf, sizeof(buf), ", \"count\": %" PRIu64, m.count);
    out += buf;
    if (m.kind == Kind::kSpan) {
      std::snprintf(buf, sizeof(buf), ", \"total_s\": %.9f", m.total_s);
      out += buf;
    } else {
      std::snprintf(buf, sizeof(buf), ", \"value\": %" PRId64, m.value);
      out += buf;
      if (m.kind == Kind::kGauge) {
        std::snprintf(buf, sizeof(buf), ", \"max\": %" PRId64, m.max_value);
        out += buf;
      }
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string TraceReport::to_table() const {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%-28s %-8s %12s %14s %14s\n", "metric",
                "kind", "count", "total_s", "value(max)");
  out += buf;
  for (const MetricSnapshot& m : metrics) {
    if (m.kind == Kind::kSpan) {
      std::snprintf(buf, sizeof(buf), "%-28s %-8s %12" PRIu64 " %14.6f %14s\n",
                    m.name.c_str(), kind_name(m.kind), m.count, m.total_s, "");
    } else {
      char val[64];
      std::snprintf(val, sizeof(val), "%" PRId64 "(%" PRId64 ")", m.value,
                    m.max_value);
      std::snprintf(buf, sizeof(buf), "%-28s %-8s %12" PRIu64 " %14s %14s\n",
                    m.name.c_str(), kind_name(m.kind), m.count, "", val);
    }
    out += buf;
  }
  return out;
}

bool write_trace_json(const std::string& path) {
  const std::string json = capture().to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mcharge::obs
