// Zero-overhead tracing & metrics layer.
//
// Three primitives, all usable from any thread:
//
//   OBS_SPAN("blossom.price_scan");      // scoped wall-clock timing span
//   OBS_COUNT("blossom.rounds", 1);      // monotonic counter
//   OBS_GAUGE("pool.queue_depth", n);    // last-value gauge + high-water mark
//
// Each macro expands to a function-local static site registration (one
// registry lookup per call site for the whole process lifetime) plus a
// handful of relaxed atomic operations — and only when tracing has been
// switched on with `set_enabled(true)` do spans read the clock at all.
// Under -DMCHARGE_NO_OBS=ON every macro compiles out to `((void)0)` and
// the instrumented TUs carry no obs code whatsoever; the registry API
// below stays available (returning empty reports) so callers need no
// #ifdefs of their own.
//
// Determinism: the layer only ever reads clocks and writes its own
// buffers. It never influences an algorithmic decision, so traced and
// untraced runs produce byte-identical plans and SimResults — asserted
// by tests/obs_test.cpp across jobs x SIMD backends x fault policies.
//
// Aggregation: `capture()` snapshots every site into a TraceReport
// (sorted by metric name) which renders as versioned JSON
// (`mcharge.trace.v1`, see scripts/check_trace.sh) or a human-readable
// table. Benches expose this as `--trace-out=PATH`; the simulator as
// `SimConfig::trace`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcharge::obs {

/// What a call site measures.
enum class Kind : std::uint8_t {
  kSpan = 0,     ///< scoped timing: count + accumulated seconds
  kCounter = 1,  ///< monotonic sum of deltas
  kGauge = 2,    ///< last written value + high-water mark
};

/// One metric in a captured report.
struct MetricSnapshot {
  std::string name;
  Kind kind = Kind::kSpan;
  std::uint64_t count = 0;     ///< span entries / counter increments
  double total_s = 0.0;        ///< spans: accumulated wall seconds
  std::int64_t value = 0;      ///< counters: sum; gauges: last value
  std::int64_t max_value = 0;  ///< gauges: high-water mark
};

/// A point-in-time aggregation of every registered site, sorted by name.
struct TraceReport {
  std::vector<MetricSnapshot> metrics;

  /// Versioned JSON (schema "mcharge.trace.v1").
  std::string to_json() const;
  /// Human-readable fixed-width table.
  std::string to_table() const;
};

/// Turns span clock reads and counter updates on or off process-wide.
/// Returns the previous state. Off (the default) leaves only the
/// per-site static-init branch in the hot path.
bool set_enabled(bool on);
bool enabled();

/// Snapshots all sites registered so far.
TraceReport capture();

/// Zeroes every site's accumulators (sites stay registered).
void reset();

/// capture() + to_json() to a file. Returns false on I/O failure.
bool write_trace_json(const std::string& path);

/// Enables tracing for a scope when `on` (restores the prior state on
/// destruction); a no-op scope otherwise. Used by SimConfig::trace.
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : restore_(on) {
    if (on) prev_ = set_enabled(true);
  }
  ~EnabledScope() {
    if (restore_) set_enabled(prev_);
  }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool restore_;
  bool prev_ = false;
};

}  // namespace mcharge::obs

#ifndef MCHARGE_NO_OBS

#include <atomic>
#include <chrono>

namespace mcharge::obs {

/// One call site's accumulators. Never destroyed (sites live in a global
/// registry until process exit) so worker threads may touch them during
/// static teardown.
struct Site {
  const char* name;
  Kind kind;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::int64_t> value{0};
  std::atomic<std::int64_t> max_value{0};
};

/// Registers (once) and returns the site for `name`. Call sites cache the
/// result in a function-local static, so the mutex inside is taken once
/// per site per process.
Site& site(const char* name, Kind kind);

/// RAII span body: reads the steady clock on entry/exit only while
/// tracing is enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(Site& s) : site_(s), armed_(enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() {
    if (!armed_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    site_.count.fetch_add(1, std::memory_order_relaxed);
    site_.total_ns.fetch_add(static_cast<std::uint64_t>(ns),
                             std::memory_order_relaxed);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Site& site_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

inline void count_add(Site& s, std::int64_t delta) {
  if (!enabled()) return;
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.value.fetch_add(delta, std::memory_order_relaxed);
}

inline void gauge_set(Site& s, std::int64_t v) {
  if (!enabled()) return;
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.value.store(v, std::memory_order_relaxed);
  std::int64_t prev = s.max_value.load(std::memory_order_relaxed);
  while (prev < v && !s.max_value.compare_exchange_weak(
                         prev, v, std::memory_order_relaxed)) {
  }
}

}  // namespace mcharge::obs

#define MCHARGE_OBS_CAT_(a, b) a##b
#define MCHARGE_OBS_CAT(a, b) MCHARGE_OBS_CAT_(a, b)

#define OBS_SPAN(name_literal)                                             \
  static ::mcharge::obs::Site& MCHARGE_OBS_CAT(obs_site_, __LINE__) =      \
      ::mcharge::obs::site(name_literal, ::mcharge::obs::Kind::kSpan);     \
  ::mcharge::obs::ScopedSpan MCHARGE_OBS_CAT(obs_span_, __LINE__)(         \
      MCHARGE_OBS_CAT(obs_site_, __LINE__))

#define OBS_COUNT(name_literal, delta)                                     \
  do {                                                                     \
    static ::mcharge::obs::Site& obs_site_c_ =                             \
        ::mcharge::obs::site(name_literal, ::mcharge::obs::Kind::kCounter);\
    ::mcharge::obs::count_add(obs_site_c_, (delta));                       \
  } while (0)

#define OBS_GAUGE(name_literal, v)                                         \
  do {                                                                     \
    static ::mcharge::obs::Site& obs_site_g_ =                             \
        ::mcharge::obs::site(name_literal, ::mcharge::obs::Kind::kGauge);  \
    ::mcharge::obs::gauge_set(obs_site_g_, (v));                           \
  } while (0)

#else  // MCHARGE_NO_OBS

#define OBS_SPAN(name_literal) ((void)0)
#define OBS_COUNT(name_literal, delta) ((void)0)
#define OBS_GAUGE(name_literal, v) ((void)0)

#endif  // MCHARGE_NO_OBS
