// Baseline K-minMax (Liang et al., ACM TOSN'16; benchmark (iii) in the
// paper's evaluation).
//
// Finds K node-disjoint depot-rooted closed tours visiting every
// to-be-charged sensor individually (one-to-one charging; the sojourn at a
// sensor lasts exactly its own charging time t_v) such that the longest
// tour delay is minimized. A 5-approximation via node-weighted TSP tour
// construction + min-max splitting.
#pragma once

#include "schedule/scheduler.h"
#include "tsp/split.h"

namespace mcharge::baselines {

class KMinMaxScheduler : public sched::Scheduler {
 public:
  explicit KMinMaxScheduler(tsp::MinMaxTourOptions options = {});

  std::string name() const override { return "K-minMax"; }
  sched::ChargingPlan plan(const model::ChargingProblem& problem) const override;

 private:
  tsp::MinMaxTourOptions options_;
};

}  // namespace mcharge::baselines
