// Baseline K-EDF — Earliest Deadline First with K MCVs (benchmark (i)).
//
// Sorts the to-be-charged sensors by residual lifetime ascending,
// partitions them into consecutive groups of K, and assigns each group's
// sensors to the K MCVs with a minimum-total-travel assignment (Hungarian
// algorithm) from the MCVs' current locations. One-to-one charging.
#pragma once

#include "schedule/scheduler.h"

namespace mcharge::baselines {

class KEdfScheduler : public sched::Scheduler {
 public:
  std::string name() const override { return "K-EDF"; }
  sched::ChargingPlan plan(const model::ChargingProblem& problem) const override;
};

}  // namespace mcharge::baselines
