#include "baselines/aa.h"

#include <algorithm>
#include <numeric>

#include "cluster/kmeans.h"
#include "util/assert.h"

namespace mcharge::baselines {

AaScheduler::AaScheduler() : AaScheduler(Options{}) {}

AaScheduler::AaScheduler(Options options) : options_(options) {}

sched::ChargingPlan AaScheduler::plan(
    const model::ChargingProblem& problem) const {
  const std::size_t n = problem.size();
  const std::size_t k = problem.num_chargers();
  sched::ChargingPlan plan;
  plan.mode = sched::ChargeMode::kOneToOne;
  plan.tours.assign(k, {});
  if (n == 0) return plan;

  // Spatial partition into K groups (k-means over sensor positions).
  Rng rng(options_.kmeans_seed);
  const auto clustering = cluster::kmeans(problem.positions(), k, rng);

  for (std::size_t g = 0; g < k; ++g) {
    // Members of this group in deadline order.
    std::vector<std::uint32_t> members;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (clustering.label.size() > v && clustering.label[v] == g) {
        members.push_back(v);
      }
    }
    std::stable_sort(members.begin(), members.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return problem.residual_lifetime(a) <
                              problem.residual_lifetime(b);
                     });

    // Profit pruning: charge the sensor only if the energy it receives
    // exceeds the locomotion energy of the detour to reach it.
    geom::Point at = problem.depot();
    for (std::uint32_t v : members) {
      const double detour_m = geom::distance(at, problem.position(v));
      const double travel_energy = options_.move_cost_j_per_m * detour_m;
      const double delivered_j =
          problem.charge_seconds(v) * problem.charging_rate_w();
      if (delivered_j <= travel_energy) continue;  // unprofitable: skip
      plan.tours[g].push_back(v);
      at = problem.position(v);
    }
  }
  return plan;
}

}  // namespace mcharge::baselines
