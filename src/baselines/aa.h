// Baseline AA (Wang et al., IEEE TC'16; benchmark (iv)).
//
// Partitions the to-be-charged sensors into K spatial groups with k-means,
// assigns one MCV per group, and has each MCV serve its group in residual-
// lifetime (deadline) order, charging a sensor only when it is profitable:
// the energy delivered must exceed the MCV's travel energy spent reaching
// it (move_cost_j_per_m * detour meters). Unprofitable sensors are dropped
// from the plan (they are what drives AA's large dead durations in the
// paper's Fig. 3(b)). One-to-one charging.
#pragma once

#include "schedule/scheduler.h"
#include "util/rng.h"

namespace mcharge::baselines {

class AaScheduler : public sched::Scheduler {
 public:
  struct Options {
    double move_cost_j_per_m = 50.0;  ///< MCV locomotion energy per meter
    std::uint64_t kmeans_seed = 0x5eedu;
  };

  AaScheduler();
  explicit AaScheduler(Options options);

  std::string name() const override { return "AA"; }
  sched::ChargingPlan plan(const model::ChargingProblem& problem) const override;

 private:
  Options options_;
};

}  // namespace mcharge::baselines
