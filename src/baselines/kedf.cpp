#include "baselines/kedf.h"

#include <algorithm>
#include <numeric>

#include "assignment/hungarian.h"
#include "util/assert.h"

namespace mcharge::baselines {

sched::ChargingPlan KEdfScheduler::plan(
    const model::ChargingProblem& problem) const {
  const std::size_t n = problem.size();
  const std::size_t k = problem.num_chargers();
  sched::ChargingPlan plan;
  plan.mode = sched::ChargeMode::kOneToOne;
  plan.tours.assign(k, {});
  if (n == 0) return plan;

  // Deadline order (ties by sensor id for determinism).
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return problem.residual_lifetime(a) <
                            problem.residual_lifetime(b);
                   });

  // MCVs start at the depot and move as they get assigned.
  std::vector<geom::Point> at(k, problem.depot());
  for (std::size_t g = 0; g < n; g += k) {
    const std::size_t group = std::min(k, n - g);
    // rows = sensors of the group, cols = MCVs; rows <= cols always.
    std::vector<std::vector<double>> cost(group, std::vector<double>(k));
    for (std::size_t i = 0; i < group; ++i) {
      const geom::Point p = problem.position(order[g + i]);
      for (std::size_t j = 0; j < k; ++j) {
        cost[i][j] = geom::distance(at[j], p);
      }
    }
    const auto assignment = assignment::solve_assignment(cost);
    for (std::size_t i = 0; i < group; ++i) {
      const std::uint32_t mcv = assignment.column_of_row[i];
      const std::uint32_t sensor = order[g + i];
      plan.tours[mcv].push_back(sensor);
      at[mcv] = problem.position(sensor);
    }
  }
  return plan;
}

}  // namespace mcharge::baselines
