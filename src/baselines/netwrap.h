// Baseline NETWRAP (Wang et al., IEEE TC'16; benchmark (ii)).
//
// Greedy online selection: the MCV that becomes idle first picks the
// unassigned sensor minimizing a weighted sum of (a) travel time from the
// MCV's current location and (b) the sensor's residual lifetime. Both terms
// are normalized by their maxima over the remaining candidates (they live
// on very different scales); `travel_weight` balances them. Ties are broken
// by sensor id. One-to-one charging.
#pragma once

#include "schedule/scheduler.h"

namespace mcharge::baselines {

class NetwrapScheduler : public sched::Scheduler {
 public:
  explicit NetwrapScheduler(double travel_weight = 0.5);

  std::string name() const override { return "NETWRAP"; }
  sched::ChargingPlan plan(const model::ChargingProblem& problem) const override;

 private:
  double travel_weight_;
};

}  // namespace mcharge::baselines
