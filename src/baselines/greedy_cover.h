// GreedyCover — an extra multi-node comparator (not from the paper).
//
// Picks sojourn locations by greedy maximum coverage (repeatedly take the
// location whose charging disk covers the most still-uncovered sensors),
// then routes the K MCVs over the chosen locations with the same min-max
// tour splitting Appro uses. Unlike Appro it ignores the overlap structure:
// chosen disks may intersect, so the executor has to serialize conflicting
// sojourns by waiting. The ablation bench uses it to quantify what the
// paper's MIS + overlap-graph machinery actually buys.
#pragma once

#include "schedule/scheduler.h"
#include "tsp/split.h"

namespace mcharge::baselines {

class GreedyCoverScheduler : public sched::Scheduler {
 public:
  GreedyCoverScheduler();
  explicit GreedyCoverScheduler(tsp::MinMaxTourOptions options);

  std::string name() const override { return "GreedyCover"; }
  sched::ChargingPlan plan(const model::ChargingProblem& problem) const override;

 private:
  tsp::MinMaxTourOptions options_;
};

}  // namespace mcharge::baselines
