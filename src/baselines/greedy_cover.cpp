#include "baselines/greedy_cover.h"

#include <algorithm>

#include "util/assert.h"

namespace mcharge::baselines {

GreedyCoverScheduler::GreedyCoverScheduler()
    : GreedyCoverScheduler(tsp::MinMaxTourOptions{}) {}

GreedyCoverScheduler::GreedyCoverScheduler(tsp::MinMaxTourOptions options)
    : options_(std::move(options)) {}

sched::ChargingPlan GreedyCoverScheduler::plan(
    const model::ChargingProblem& problem) const {
  const std::size_t n = problem.size();
  const std::size_t k = problem.num_chargers();
  sched::ChargingPlan plan;
  plan.mode = sched::ChargeMode::kMultiNode;
  plan.tours.assign(k, {});
  if (n == 0) return plan;

  // Greedy maximum coverage. Gains only shrink as sensors get covered, so
  // a simple re-scan with cached gains and lazy invalidation keeps this
  // near O(picks * n) in practice.
  std::vector<char> covered(n, 0);
  std::vector<std::size_t> gain(n);
  for (std::uint32_t v = 0; v < n; ++v) gain[v] = problem.coverage(v).size();
  std::vector<char> picked(n, 0);
  std::vector<std::uint32_t> stops;
  std::size_t covered_count = 0;
  while (covered_count < n) {
    std::uint32_t best = 0;
    std::size_t best_gain = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (picked[v]) continue;
      if (gain[v] <= best_gain) continue;
      // Refresh the cached gain before trusting it.
      std::size_t fresh = 0;
      for (std::uint32_t u : problem.coverage(v)) fresh += !covered[u];
      gain[v] = fresh;
      if (fresh > best_gain) {
        best_gain = fresh;
        best = v;
      }
    }
    MCHARGE_ASSERT(best_gain > 0, "greedy cover stalled before full coverage");
    picked[best] = 1;
    stops.push_back(best);
    for (std::uint32_t u : problem.coverage(best)) {
      if (!covered[u]) {
        covered[u] = 1;
        ++covered_count;
      }
    }
  }

  // Route the chosen stops: min-max K closed tours with tau(v) service.
  tsp::TourProblem tour_problem;
  tour_problem.depot = problem.depot();
  tour_problem.speed = problem.speed();
  for (std::uint32_t v : stops) {
    tour_problem.sites.push_back(problem.position(v));
    tour_problem.service.push_back(problem.tau(v));
  }
  const tsp::SplitResult split =
      tsp::min_max_k_tours(tour_problem, k, options_);
  for (std::size_t t = 0; t < k; ++t) {
    for (tsp::SiteId site : split.tours[t]) {
      plan.tours[t].push_back(stops[site]);
    }
  }
  return plan;
}

}  // namespace mcharge::baselines
